/**
 * @file
 * Google-benchmark microbenchmarks of the hot simulator structures:
 * rename/commit throughput for both renamers, squash cost, cache
 * access, emulation speed, and trace analysis.  These guard the
 * simulator's own performance (the sweeps run hundreds of timing
 * simulations) and document the relative cost of the proposed
 * renamer's extra bookkeeping.
 */

#include <benchmark/benchmark.h>

#include "common/threadpool.hh"
#include "emu/emulator.hh"
#include "harness/sweep.hh"
#include "mem/memsystem.hh"
#include "rename/baseline.hh"
#include "rename/reuse.hh"
#include "trace/analysis.hh"
#include "workloads/workloads.hh"

using namespace rrs;

namespace {

trace::DynInst
chainInst(int i)
{
    trace::DynInst di;
    di.si.op = isa::Opcode::Add;
    di.si.dest = isa::intReg(static_cast<LogRegIndex>(1 + (i % 8)));
    di.si.srcs[0] = isa::intReg(static_cast<LogRegIndex>(1 + (i % 8)));
    di.si.srcs[1] = isa::intReg(static_cast<LogRegIndex>(9 + (i % 4)));
    di.pc = 0x1000 + 4 * static_cast<Addr>(i % 64);
    return di;
}

void
BM_BaselineRenameCommit(benchmark::State &state)
{
    rename::BaselineRenamer rn(rename::BaselineParams{128, 128});
    int i = 0;
    for (auto _ : state) {
        auto r = rn.rename(chainInst(i++));
        benchmark::DoNotOptimize(r);
        rn.commit(r);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BaselineRenameCommit);

void
BM_ReuseRenameCommit(benchmark::State &state)
{
    rename::ReuseRenamer rn(rename::ReuseRenamerParams{});
    int i = 0;
    for (auto _ : state) {
        auto r = rn.rename(chainInst(i++));
        benchmark::DoNotOptimize(r);
        rn.commit(r);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReuseRenameCommit);

void
BM_ReuseRenameSquash(benchmark::State &state)
{
    rename::ReuseRenamer rn(rename::ReuseRenamerParams{});
    int i = 0;
    for (auto _ : state) {
        auto token = rn.historyPosition();
        for (int k = 0; k < 8; ++k)
            rn.rename(chainInst(i++));
        rn.squashTo(token);
    }
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_ReuseRenameSquash);

void
BM_CacheHit(benchmark::State &state)
{
    mem::MemSystem ms{mem::MemSystemParams{}};
    Tick now = ms.dataAccess(0x1000, 0x100000, false, 0);
    for (auto _ : state) {
        now = ms.dataAccess(0x1000, 0x100000, false, now);
        benchmark::DoNotOptimize(now);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHit);

void
BM_EmulatorThroughput(benchmark::State &state)
{
    const auto &w = workloads::workload("int_crc");
    auto stream = workloads::makeEmulator(w, 1'000'000'000);
    trace::DynInst di;
    std::uint64_t n = 0;
    for (auto _ : state) {
        if (!stream->step(di))
            stream = workloads::makeEmulator(w, 1'000'000'000);
        benchmark::DoNotOptimize(di);
        ++n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EmulatorThroughput);

void
BM_UsageAnalysis(benchmark::State &state)
{
    for (auto _ : state) {
        auto stream =
            workloads::makeEmulator(workloads::workload("fp_horner"),
                                  50'000);
        auto rep = trace::analyzeUsage(*stream, 50'000);
        benchmark::DoNotOptimize(rep);
    }
    state.SetItemsProcessed(state.iterations() * 50'000);
}
BENCHMARK(BM_UsageAnalysis);

void
BM_ThreadPoolSubmitDrain(benchmark::State &state)
{
    // Overhead of the sweep engine's fan-out machinery: submit a batch
    // of no-op tasks and drain it.  Guards the pool's bookkeeping cost
    // against regressions (it sits under every paper artifact).
    ThreadPool pool;
    constexpr int batch = 256;
    for (auto _ : state) {
        for (int i = 0; i < batch; ++i)
            pool.submit([] {});
        pool.wait();
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ThreadPoolSubmitDrain);

void
BM_ThreadPoolParallelFor(benchmark::State &state)
{
    ThreadPool pool;
    constexpr std::size_t n = 256;
    std::vector<std::uint64_t> out(n);
    for (auto _ : state) {
        pool.parallelFor(n, [&](std::size_t i) { out[i] = i * i; });
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ThreadPoolParallelFor);

void
BM_SweepRunnerTinySweep(benchmark::State &state)
{
    // End-to-end sweep throughput on a tiny config grid; items/s here
    // is simulation runs per second, the number the sweep footer
    // reports on real artifacts.
    harness::SweepRunner runner;
    std::vector<harness::SweepItem> items;
    const auto &w = workloads::workload("int_crc");
    for (std::uint32_t n : {56u, 96u}) {
        auto base = harness::baselineConfig(n);
        base.maxInsts = 2'000;
        auto prop = harness::reuseConfig(n);
        prop.maxInsts = 2'000;
        items.push_back(harness::sweepItem(w, base));
        items.push_back(harness::sweepItem(w, prop));
    }
    for (auto _ : state) {
        auto results = runner.run(items);
        benchmark::DoNotOptimize(results.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(items.size()));
}
BENCHMARK(BM_SweepRunnerTinySweep);

} // namespace

BENCHMARK_MAIN();
