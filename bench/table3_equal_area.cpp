/**
 * @file
 * Table III: equal-area register-file configurations — for each
 * baseline size, the 4-bank organisation of the same total area.
 * Prints the paper's rows, this repository's tuned rows (bank shapes
 * from our Fig. 9 study), and the area-model verification of both.
 *
 * The per-size equal-area solves run through the parallel sizing loop
 * (harness::solveEqualAreaTable).
 */

#include "area/area.hh"
#include "common.hh"

using namespace rrs;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Table III: equal-area register file configurations",
                  "48 -> 28+4+4+4, 56 -> 28+6+6+6, 64 -> 36+6+6+6, "
                  "72 -> 36+8+8+8, 80 -> 42+8+8+8, 96 -> 58+8+8+8, "
                  "112 -> 75+8+8+8");

    // The table and its shape-check note come from the shared renderer
    // the golden tests lock byte-for-byte (harness/figures.hh).
    area::AreaModel m;
    std::cout << harness::renderTable3(m, bench::rfSizes());
    bench::finish("table3_equal_area");
    return 0;
}
