/**
 * @file
 * Table III: equal-area register-file configurations — for each
 * baseline size, the 4-bank organisation of the same total area.
 * Prints the paper's rows, this repository's tuned rows (bank shapes
 * from our Fig. 9 study), and the area-model verification of both.
 *
 * The per-size equal-area solves run through the parallel sizing loop
 * (harness::solveEqualAreaTable).
 */

#include "area/area.hh"
#include "common.hh"

using namespace rrs;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Table III: equal-area register file configurations",
                  "48 -> 28+4+4+4, 56 -> 28+6+6+6, 64 -> 36+6+6+6, "
                  "72 -> 36+8+8+8, 80 -> 42+8+8+8, 96 -> 58+8+8+8, "
                  "112 -> 75+8+8+8");

    area::AreaModel m;
    auto solvedAll = harness::solveEqualAreaTable(m, bench::rfSizes(),
                                                  64, false);

    stats::TextTable t({"baseline", "paper banks", "paper area%",
                        "tuned banks", "tuned area%", "solver bank0"});
    for (std::size_t i = 0; i < bench::rfSizes().size(); ++i) {
        std::uint32_t n = bench::rfSizes()[i];
        double budget = m.regFileArea(n, 64);
        auto fmt = [](const rename::BankConfig &b) {
            return std::to_string(b[0]) + "+" + std::to_string(b[1]) +
                   "+" + std::to_string(b[2]) + "+" + std::to_string(b[3]);
        };
        rename::BankConfig paper = harness::equalAreaBanks(n, true);
        rename::BankConfig tuned = harness::equalAreaBanks(n, false);
        const rename::BankConfig &solved = solvedAll[i];
        t.row()
            .cell(n)
            .cell(fmt(paper))
            .cell(100.0 * m.bankedRegFileArea(paper, 64) / budget, 1)
            .cell(fmt(tuned))
            .cell(100.0 * m.bankedRegFileArea(tuned, 64) / budget, 1)
            .cell(solved[0]);
    }
    t.print(std::cout,
            "Equal-area configurations (area%% = fraction of the "
            "baseline file's area used)");
    std::printf("\nShape checks: every configuration fits within 100%% "
                "of its baseline's area; the solver's bank0 matches the "
                "stored tuned rows.\n");
    bench::finish("table3_equal_area");
    return 0;
}
