/**
 * @file
 * Ablation C: sensitivity to the single-use fraction, swept directly
 * with the synthetic stream generator — something no fixed workload
 * can do.  Validates the paper's core premise: the benefit of register
 * sharing grows with the fraction of single-use values.
 *
 * The (fraction x scheme) grid runs in parallel on the thread pool;
 * every run owns its stream, models and seed, so the table is
 * bit-identical for every RRS_THREADS value.
 */

#include "bpred/bpred.hh"
#include "common.hh"
#include "core/o3core.hh"
#include "rename/scheme.hh"
#include "trace/synthetic.hh"

using namespace rrs;

namespace {

double
runSynthetic(double singleUse, bool reuseScheme)
{
    trace::SyntheticParams sp;
    sp.numInsts = 120'000;
    sp.singleUseFraction = singleUse;
    sp.redefFraction = 0.8;
    // Keep control flow predictable and memory light so register
    // pressure, not branch or cache behaviour, dominates the sweep.
    sp.branchFraction = 0.06;
    sp.takenFraction = 0.98;
    sp.loadFraction = 0.15;
    sp.storeFraction = 0.05;
    trace::SyntheticStream stream(sp);

    mem::MemSystem mem{mem::MemSystemParams{}};
    bpred::BranchPredictor bp{bpred::BPredParams{}};
    // Both renamers come from the scheme registry at their 48-register
    // equal-area configurations, like every harness run.
    const rename::RenameScheme &scheme =
        rename::renameScheme(reuseScheme ? "reuse" : "baseline");
    rename::SchemeParams rp;
    scheme.configureEqualArea(rp, 48);
    std::unique_ptr<rename::Renamer> rn = scheme.makeRenamer(rp);
    core::O3Core core(core::CoreParams{}, *rn, mem, bp, stream);
    return static_cast<double>(core.run().cycles);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Ablation: single-use fraction sweep (synthetic)",
                  "speedup of the proposed scheme grows with the "
                  "injected single-use fraction");

    const std::vector<double> fractions = {0.0, 0.2, 0.4, 0.6, 0.8};
    // Grid cells: [2*i] baseline, [2*i+1] proposed.
    std::vector<double> cycles(fractions.size() * 2);
    ThreadPool pool;
    pool.parallelFor(cycles.size(), [&](std::size_t k) {
        cycles[k] = runSynthetic(fractions[k / 2], k % 2 == 1);
    });

    stats::TextTable t({"single-use fraction", "baseline cycles",
                        "proposed cycles", "speedup"});
    double last = 0;
    for (std::size_t i = 0; i < fractions.size(); ++i) {
        double b = cycles[2 * i];
        double p = cycles[2 * i + 1];
        t.row().cell(fractions[i], 1).cell(b, 0).cell(p, 0)
            .cell(b / p, 3);
        last = b / p;
    }
    t.print(std::cout,
            "Equal-area speedup vs injected single-use fraction "
            "(48-register class, synthetic workload)");
    std::printf("\nShape checks: speedup rises with the single-use "
                "fraction (%.3f at 0.8); at 0.0 the proposed scheme "
                "pays its capacity deficit with little reuse to "
                "recover it.\n", last);
    bench::finish("abl_synthetic");
    return 0;
}
