/**
 * @file
 * Ablation B: register type predictor capacity (64..4096 entries; the
 * paper uses 512 x 2 bits = 1 Kbit) plus the policy ablations: no
 * non-redefining (speculative) reuse, and no reuse at all.
 */

#include "common.hh"

using namespace rrs;

namespace {

double
geomeanSpeedup(const harness::RunConfig &prop)
{
    std::vector<double> speedups;
    for (const auto &w : workloads::allWorkloads()) {
        auto base = harness::baselineConfig(56);
        base.maxInsts = bench::timingInsts;
        auto cfg = prop;
        cfg.maxInsts = bench::timingInsts;
        auto ob = harness::runOn(w, base);
        auto op = harness::runOn(w, cfg);
        speedups.push_back(static_cast<double>(ob.sim.cycles) /
                           static_cast<double>(op.sim.cycles));
    }
    return harness::geomean(speedups);
}

} // namespace

int
main()
{
    bench::banner("Ablation: predictor size and reuse policy",
                  "paper uses a 512-entry, 2-bit predictor (1 Kbit); "
                  "speculative reuse needs the predictor");

    stats::TextTable t({"configuration", "geomean speedup @56"});
    for (std::uint32_t entries : {64u, 128u, 512u, 2048u, 4096u}) {
        auto cfg = harness::reuseConfig(56);
        cfg.reuse.predictor.entries = entries;
        t.row()
            .cell(std::to_string(entries) + "-entry predictor")
            .cell(geomeanSpeedup(cfg), 4);
    }
    {
        auto cfg = harness::reuseConfig(56);
        cfg.reuse.reuseNonRedef = false;
        t.row().cell("redefining-only reuse").cell(geomeanSpeedup(cfg),
                                                   4);
    }
    {
        auto cfg = harness::reuseConfig(56);
        cfg.reuse.nonRedefConfidence = 2;
        t.row().cell("high-confidence speculation")
            .cell(geomeanSpeedup(cfg), 4);
    }
    {
        auto cfg = harness::reuseConfig(56);
        cfg.reuse.reuseEnabled = false;
        t.row().cell("reuse disabled (capacity-only)")
            .cell(geomeanSpeedup(cfg), 4);
    }
    t.print(std::cout, "Predictor/policy ablation at the 56-register "
                       "equal-area point");
    std::printf("\nShape checks: 512 entries is within noise of 4096 "
                "(small kernels fit easily); disabling reuse exposes "
                "the raw capacity deficit of the equal-area file; "
                "speculative reuse recovers more than redefining-only "
                "reuse.\n");
    return 0;
}
