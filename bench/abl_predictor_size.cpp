/**
 * @file
 * Ablation B: register type predictor capacity (64..4096 entries; the
 * paper uses 512 x 2 bits = 1 Kbit) plus the policy ablations: no
 * non-redefining (speculative) reuse, and no reuse at all.
 *
 * Every (workload x config) run — all predictor sizes and all policy
 * variants — executes in one parallel sweep.
 */

#include "common.hh"

using namespace rrs;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Ablation: predictor size and reuse policy",
                  "paper uses a 512-entry, 2-bit predictor (1 Kbit); "
                  "speculative reuse needs the predictor");

    std::vector<harness::RunConfig> configs;
    std::vector<std::string> labels;
    for (std::uint32_t entries : {64u, 128u, 512u, 2048u, 4096u}) {
        auto cfg = harness::reuseConfig(56);
        cfg.reuse.predictor.entries = entries;
        configs.push_back(cfg);
        labels.push_back(std::to_string(entries) + "-entry predictor");
    }
    {
        auto cfg = harness::reuseConfig(56);
        cfg.reuse.reuseNonRedef = false;
        configs.push_back(cfg);
        labels.push_back("redefining-only reuse");
    }
    {
        auto cfg = harness::reuseConfig(56);
        cfg.reuse.nonRedefConfidence = 2;
        configs.push_back(cfg);
        labels.push_back("high-confidence speculation");
    }
    {
        auto cfg = harness::reuseConfig(56);
        cfg.reuse.reuseEnabled = false;
        configs.push_back(cfg);
        labels.push_back("reuse disabled (capacity-only)");
    }

    auto speedups = bench::geomeanSpeedups(configs, 56);

    stats::TextTable t({"configuration", "geomean speedup @56"});
    for (std::size_t i = 0; i < configs.size(); ++i)
        t.row().cell(labels[i]).cell(speedups[i], 4);
    t.print(std::cout, "Predictor/policy ablation at the 56-register "
                       "equal-area point");
    std::printf("\nShape checks: 512 entries is within noise of 4096 "
                "(small kernels fit easily); disabling reuse exposes "
                "the raw capacity deficit of the equal-area file; "
                "speculative reuse recovers more than redefining-only "
                "reuse.\n");
    bench::finish("abl_predictor_size");
    return 0;
}
