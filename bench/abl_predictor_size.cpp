/**
 * @file
 * Ablation B: register type predictor capacity (64..4096 entries; the
 * paper uses 512 x 2 bits = 1 Kbit) plus the policy ablations: no
 * non-redefining (speculative) reuse, and no reuse at all.
 *
 * Every (workload x config) run — all predictor sizes and all policy
 * variants — executes in one parallel sweep.
 */

#include "common.hh"

using namespace rrs;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Ablation: predictor size and reuse policy",
                  "paper uses a 512-entry, 2-bit predictor (1 Kbit); "
                  "speculative reuse needs the predictor");

    // Declarative ablation: column 0 is the reference baseline; the
    // column labels double as the table's row names.
    const auto matrix = harness::parseSweepMatrix(R"json({
  "schemes": ["baseline",
              {"scheme": "reuse", "label": "64-entry predictor",
               "params": {"predictor_entries": 64}},
              {"scheme": "reuse", "label": "128-entry predictor",
               "params": {"predictor_entries": 128}},
              {"scheme": "reuse", "label": "512-entry predictor",
               "params": {"predictor_entries": 512}},
              {"scheme": "reuse", "label": "2048-entry predictor",
               "params": {"predictor_entries": 2048}},
              {"scheme": "reuse", "label": "4096-entry predictor",
               "params": {"predictor_entries": 4096}},
              {"scheme": "reuse", "label": "redefining-only reuse",
               "params": {"reuse_non_redef": false}},
              {"scheme": "reuse", "label": "high-confidence speculation",
               "params": {"non_redef_confidence": 2}},
              {"scheme": "reuse", "label": "reuse disabled (capacity-only)",
               "params": {"reuse_enabled": false}}],
  "rf_sizes": [56]
})json");

    auto speedups = bench::geomeanSpeedups(matrix);

    stats::TextTable t({"configuration", "geomean speedup @56"});
    for (std::size_t i = 0; i < speedups.size(); ++i)
        t.row().cell(matrix.schemes[i + 1].label).cell(speedups[i], 4);
    t.print(std::cout, "Predictor/policy ablation at the 56-register "
                       "equal-area point");
    std::printf("\nShape checks: 512 entries is within noise of 4096 "
                "(small kernels fit easily); disabling reuse exposes "
                "the raw capacity deficit of the equal-area file; "
                "speculative reuse recovers more than redefining-only "
                "reuse.\n");
    bench::finish("abl_predictor_size");
    return 0;
}
