/**
 * @file
 * Figure 9: the bank-sizing study — how many physical registers with
 * 1, 2 and 3 shadow cells are needed to cover a given percentage of
 * execution time, measured with effectively unbounded shadow banks on
 * the SPECfp-like suite (the paper's methodology for tuning Table III).
 *
 * The per-workload sampling runs execute in one parallel sweep; the
 * sampled series are concatenated in submission order, so the
 * percentile table is bit-identical for every thread count.
 */

#include <algorithm>

#include "common.hh"

using namespace rrs;

namespace {

std::uint32_t
percentile(std::vector<std::uint32_t> values, double p)
{
    if (values.empty())
        return 0;
    std::sort(values.begin(), values.end());
    auto idx = static_cast<std::size_t>(
        p * static_cast<double>(values.size() - 1));
    return values[idx];
}

} // namespace

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Figure 9: shadow-cell bank sizing",
                  "registers with k shadow cells needed to cover X% of "
                  "SPECfp execution time; small counts suffice");

    // Unbounded banks: every free register has 3 shadow cells.  The
    // bank overrides replace the equal-area configuration wholesale.
    const auto m = harness::parseSweepMatrix(R"({
  "schemes": [{"scheme": "reuse", "label": "unbounded shadow banks",
               "params": {"bank0": 32, "bank1": 0,
                          "bank2": 0, "bank3": 96}}],
  "rf_sizes": [64],
  "suite": "specfp",
  "sample_sharing": true
})");
    const auto ws = bench::matrixWorkloads(m);
    auto outs = bench::sweeper().outcomes(
        harness::expandSweepMatrix(m, ws, bench::capInsts()));

    std::vector<std::uint32_t> s1, s2, s3;
    for (const auto &out : outs) {
        s1.insert(s1.end(), out.sharedAtLeast1.begin(),
                  out.sharedAtLeast1.end());
        s2.insert(s2.end(), out.sharedAtLeast2.begin(),
                  out.sharedAtLeast2.end());
        s3.insert(s3.end(), out.sharedAtLeast3.begin(),
                  out.sharedAtLeast3.end());
    }

    stats::TextTable t({"coverage", ">=1 shadow", ">=2 shadow",
                        ">=3 shadow"});
    for (double p : {0.50, 0.75, 0.90, 0.95, 0.99}) {
        t.row()
            .cell(std::to_string(static_cast<int>(p * 100)) + "%")
            .cell(static_cast<std::uint64_t>(percentile(s1, p)))
            .cell(static_cast<std::uint64_t>(percentile(s2, p)))
            .cell(static_cast<std::uint64_t>(percentile(s3, p)));
    }
    t.print(std::cout,
            "Registers simultaneously sharing at >= k versions "
            "(both classes combined, percentile over sampled cycles)");
    std::printf("\nShape checks: counts fall steeply with k (deep "
                "chains are rare) and the 90-95%% coverage points "
                "motivate small shadow banks, as in the paper's "
                "Table III and this repo's tuned rows.\n");
    bench::finish("fig09_bank_sizing");
    return 0;
}
