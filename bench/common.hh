/**
 * @file
 * Shared helpers for the benchmark harness binaries.  Each bench
 * regenerates one of the paper's tables or figures: it runs the
 * required simulations, prints the measured rows/series next to the
 * paper's reference values, and states the shape being validated.
 */

#ifndef RRS_BENCH_COMMON_HH
#define RRS_BENCH_COMMON_HH

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "stats/table.hh"
#include "trace/analysis.hh"
#include "workloads/workloads.hh"

namespace rrs::bench {

/** Default timing-run length per workload (post-warmup). */
constexpr std::uint64_t timingInsts = 150'000;

/** Default analysis window per workload. */
constexpr std::uint64_t analysisInsts = 300'000;

/** Paper register-file sweep points (Table III column 1). */
inline const std::vector<std::uint32_t> &
rfSizes()
{
    static const std::vector<std::uint32_t> sizes = {48, 56, 64, 72,
                                                     80, 96, 112};
    return sizes;
}

/** Print a bench banner. */
inline void
banner(const std::string &what, const std::string &paperRef)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", what.c_str());
    std::printf("Paper reference: %s\n", paperRef.c_str());
    std::printf("==============================================================\n");
}

/** Value-usage analysis for one workload. */
inline trace::UsageReport
usageOf(const workloads::Workload &w,
        std::uint64_t window = analysisInsts)
{
    auto stream = workloads::makeStream(w, window);
    return trace::analyzeUsage(*stream, window);
}

/** Speedup of the proposed scheme at one equal-area sweep point. */
inline double
speedupAt(const workloads::Workload &w, std::uint32_t baselineRegs,
          bool paperPreset = false,
          std::uint64_t insts = timingInsts)
{
    auto base = harness::baselineConfig(baselineRegs);
    base.maxInsts = insts;
    auto prop = harness::reuseConfig(baselineRegs);
    prop.reuse.intBanks = harness::equalAreaBanks(baselineRegs,
                                                  paperPreset);
    prop.reuse.fpBanks = prop.reuse.intBanks;
    prop.maxInsts = insts;
    auto ob = harness::runOn(w, base);
    auto op = harness::runOn(w, prop);
    return static_cast<double>(ob.sim.cycles) /
           static_cast<double>(op.sim.cycles);
}

} // namespace rrs::bench

#endif // RRS_BENCH_COMMON_HH
