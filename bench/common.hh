/**
 * @file
 * Shared helpers for the benchmark harness binaries.  Each bench
 * regenerates one of the paper's tables or figures: it runs the
 * required simulations, prints the measured rows/series next to the
 * paper's reference values, and states the shape being validated.
 *
 * All benches fan their simulations out through the parallel sweep
 * engine (harness/sweep.hh): build every RunConfig up front, run one
 * sweep, then print from the in-order results.  `RRS_THREADS` caps the
 * lane count; the printed tables are bit-identical for every value of
 * it, and each bench appends a one-line throughput footer
 * (runs/s, Minst/s) so sweep speed is measurable.  When rename
 * invariant auditing is on (`RRS_AUDIT`, see rename/audit.hh) the
 * footer adds an audit line — checks run and violations found — so a
 * published table doubles as a self-check receipt.
 *
 * Machine-readable export: every bench calls init(argc, argv) first
 * and finish(name) last.  `--stats-json <path>` (or the RRS_STATS_JSON
 * environment variable) makes finish() dump the sweep's stats group as
 * JSON to that path, so scripts can consume a bench without scraping
 * its tables.  `--bench-json <dir>` (or RRS_BENCH_JSON) additionally
 * records a versioned BENCH_<name>.json perf baseline
 * (harness/benchjson.hh) for the rrs-benchdiff regression gate; both
 * exports create missing parent directories and write atomically
 * (tmp+rename).  `--prof` (or RRS_PROF=1) turns on the host-side phase
 * profiler (obs/profiler.hh) and makes finish() print its report;
 * `--cap <insts>` overrides the default per-run timing length for
 * quick CI smoke runs (the printed tables then differ from the paper's,
 * but stay deterministic for that cap).
 */

#ifndef RRS_BENCH_COMMON_HH
#define RRS_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"

#include "common/atomicfile.hh"
#include "common/threadpool.hh"
#include "harness/benchjson.hh"
#include "harness/experiment.hh"
#include "harness/figures.hh"
#include "harness/sweep.hh"
#include "harness/sweepmatrix.hh"
#include "harness/tracecache.hh"
#include "obs/profiler.hh"
#include "stats/table.hh"
#include "trace/analysis.hh"
#include "trace/recorded.hh"
#include "workloads/workloads.hh"

namespace rrs::bench {

/** Default timing-run length per workload (post-warmup). */
constexpr std::uint64_t timingInsts = 150'000;

/**
 * The timing-run length this invocation actually uses: timingInsts
 * unless `--cap <insts>` shortened it (CI smoke runs trade table
 * fidelity for wall clock; the results stay deterministic per cap).
 */
inline std::uint64_t &
capInsts()
{
    static std::uint64_t insts = timingInsts;
    return insts;
}

/** Default analysis window per workload. */
constexpr std::uint64_t analysisInsts = 300'000;

/**
 * The default sweep matrix: the paper's scheme pair over the Table III
 * register-file sweep points.  `--matrix <file>` replaces it wholesale
 * with a user-written document (harness/sweepmatrix.hh documents the
 * format), so any bench built on the matrix grid can sweep a new
 * scheme, a different size ladder or per-scheme parameter overrides
 * without a rebuild.
 */
inline const char *
defaultMatrixJson()
{
    return R"({
  "schemes": ["baseline", "reuse"],
  "rf_sizes": [48, 56, 64, 72, 80, 96, 112]
})";
}

/** `--matrix <file>` override path ("" = use the default matrix). */
inline std::string &
matrixJsonPath()
{
    static std::string path;
    return path;
}

/**
 * The `--sample` / RRS_SAMPLE override: disabled (exact simulation)
 * unless the flag was given, in which case it wins over any "sampling"
 * block of the matrix document.
 */
inline harness::SamplingParams &
sampleOverride()
{
    static harness::SamplingParams p;
    return p;
}

/** Default `--sample` windows: 12.5% detailed, ~warmed-up caches. */
constexpr std::uint64_t sampleWarmDefault = 2048;
constexpr std::uint64_t sampleDetailedDefault = 1024;
constexpr std::uint64_t samplePeriodDefault = 8192;

/**
 * Parse a "warm:detailed:period" sampling spec; "" and "1" (a plain
 * RRS_SAMPLE=1) select the defaults.  Fatal on anything malformed.
 */
inline harness::SamplingParams
parseSampleSpec(const char *spec)
{
    harness::SamplingParams p;
    p.warm = sampleWarmDefault;
    p.detailed = sampleDetailedDefault;
    p.period = samplePeriodDefault;
    if (spec != nullptr && *spec != '\0' && std::strcmp(spec, "1") != 0) {
        unsigned long long w = 0, d = 0, per = 0;
        char trail = '\0';
        if (std::sscanf(spec, "%llu:%llu:%llu%c", &w, &d, &per,
                        &trail) != 3 ||
            d == 0 || per == 0 || per < w + d) {
            rrs_fatal("sampling spec must be warm:detailed:period "
                      "(period >= warm + detailed, detailed > 0), "
                      "got '%s'", spec);
        }
        p.warm = w;
        p.detailed = d;
        p.period = per;
    }
    return p;
}

/** This invocation's sweep matrix (parsed once, fatal on problems). */
inline const harness::SweepMatrix &
matrix()
{
    static const harness::SweepMatrix m = [] {
        harness::SweepMatrix mm =
            matrixJsonPath().empty()
                ? harness::parseSweepMatrix(defaultMatrixJson())
                : harness::loadSweepMatrixFile(matrixJsonPath());
        if (sampleOverride().enabled())
            mm.sampling = sampleOverride();
        return mm;
    }();
    return m;
}

/** Register-file sweep points (matrix "rf_sizes"; paper Table III). */
inline const std::vector<std::uint32_t> &
rfSizes()
{
    return matrix().rfSizes;
}

/** The bench process's sweep runner (thread count from RRS_THREADS). */
inline harness::SweepRunner &
sweeper()
{
    static harness::SweepRunner runner;
    return runner;
}

/** Print the standard throughput footer for the last sweep. */
inline void
sweepFooter()
{
    sweeper().printSummary(std::cout);
}

/** Where finish() writes the JSON stats export ("" = disabled). */
inline std::string &
statsJsonPath()
{
    static std::string path;
    return path;
}

/** Directory finish() records BENCH_<name>.json into ("" = disabled). */
inline std::string &
benchJsonDir()
{
    static std::string dir;
    return dir;
}

/** `--suite <name>` filter ("" = all suites). */
inline std::string &
suiteFilter()
{
    static std::string suite;
    return suite;
}

/** `--workload <substr>` filter ("" = all workloads). */
inline std::string &
workloadFilter()
{
    static std::string substr;
    return substr;
}

/**
 * Apply the --suite / --workload filters to a workload list.  Fatal
 * when the filters select nothing (a typo'd name would otherwise
 * silently produce an empty table).
 */
inline std::vector<workloads::Workload>
filterWorkloads(const std::vector<workloads::Workload> &in)
{
    std::vector<workloads::Workload> out;
    for (const auto &w : in) {
        if (!suiteFilter().empty() && w.suite != suiteFilter())
            continue;
        if (!workloadFilter().empty() &&
            w.name.find(workloadFilter()) == std::string::npos)
            continue;
        out.push_back(w);
    }
    if (out.empty())
        rrs_fatal("no workloads match --suite '%s' --workload '%s'",
                  suiteFilter().c_str(), workloadFilter().c_str());
    return out;
}

/**
 * The workloads this bench invocation runs: all of them by default,
 * a subset under --suite / --workload.  The full run's tables are
 * untouched by this machinery; the filters exist for quick iteration
 * on one kernel or suite.
 */
inline std::vector<workloads::Workload>
selectedWorkloads()
{
    return filterWorkloads(workloads::allWorkloads());
}

/**
 * Standard bench option handling; call first in every main().  Parses
 * `--stats-json <path>` (the RRS_STATS_JSON environment variable is
 * the default), `--bench-json <dir>` (default RRS_BENCH_JSON; the
 * perf-baseline recorder), `--prof` (host phase profiler, also
 * RRS_PROF=1), `--cap <insts>` (shortened timing runs), `--suite
 * <name>` and `--workload <substr>` (subset selection for quick
 * iteration; see selectedWorkloads()), `--matrix <file>` (a JSON sweep
 * matrix replacing the bench's default scheme/size grid; see
 * harness/sweepmatrix.hh), `--sample [warm:detailed:period]` (SMARTS
 * sampled simulation, default 2048:1024:8192; also RRS_SAMPLE=1 or
 * RRS_SAMPLE=W:D:P), and returns the arguments it did not consume, in
 * order, for the bench's own flags (e.g. fig10's --quick).
 */
inline std::vector<std::string>
init(int argc, char **argv)
{
    if (const char *env = std::getenv("RRS_STATS_JSON"))
        statsJsonPath() = env;
    if (const char *env = std::getenv("RRS_BENCH_JSON"))
        benchJsonDir() = env;
    if (const char *env = std::getenv("RRS_SAMPLE")) {
        if (*env != '\0' && std::strcmp(env, "0") != 0)
            sampleOverride() = parseSampleSpec(env);
    }
    // Label telemetry traces with this binary's name so a directory of
    // RRS_TELEMETRY exports stays attributable per bench.  argv[0] is
    // used (rather than the finish() name) because sweeps run between
    // init and finish and the label must be set before the first one.
    if (argc > 0 && argv[0] != nullptr && *argv[0] != '\0') {
        std::string label(argv[0]);
        const std::size_t slash = label.find_last_of('/');
        if (slash != std::string::npos)
            label.erase(0, slash + 1);
        if (!label.empty())
            sweeper().setTelemetryLabel(std::move(label));
    }
    std::vector<std::string> rest;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--stats-json") == 0) {
            if (i + 1 >= argc)
                rrs_fatal("--stats-json needs a path argument");
            statsJsonPath() = argv[++i];
        } else if (std::strcmp(argv[i], "--bench-json") == 0) {
            if (i + 1 >= argc)
                rrs_fatal("--bench-json needs a directory argument");
            benchJsonDir() = argv[++i];
        } else if (std::strcmp(argv[i], "--prof") == 0) {
            obs::Profiler::setEnabled(true);
        } else if (std::strcmp(argv[i], "--cap") == 0) {
            if (i + 1 >= argc)
                rrs_fatal("--cap needs an instruction-count argument");
            char *end = nullptr;
            const unsigned long long v =
                std::strtoull(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || v == 0)
                rrs_fatal("--cap must be a positive integer, got '%s'",
                          argv[i]);
            capInsts() = static_cast<std::uint64_t>(v);
        } else if (std::strcmp(argv[i], "--suite") == 0) {
            if (i + 1 >= argc)
                rrs_fatal("--suite needs a suite name argument");
            suiteFilter() = argv[++i];
            bool known = false;
            for (const auto &s : workloads::suiteNames())
                known = known || s == suiteFilter();
            if (!known)
                rrs_fatal("unknown suite '%s' (try: specint, specfp, "
                          "media, cognitive)", suiteFilter().c_str());
        } else if (std::strcmp(argv[i], "--workload") == 0) {
            if (i + 1 >= argc)
                rrs_fatal("--workload needs a name substring argument");
            workloadFilter() = argv[++i];
        } else if (std::strcmp(argv[i], "--matrix") == 0) {
            if (i + 1 >= argc)
                rrs_fatal("--matrix needs a JSON file argument");
            matrixJsonPath() = argv[++i];
        } else if (std::strcmp(argv[i], "--sample") == 0) {
            // The warm:detailed:period spec is optional; a following
            // argument is taken as one only when it looks like a spec,
            // so `--sample --prof` keeps working.
            const char *spec = "";
            if (i + 1 < argc &&
                std::strchr(argv[i + 1], ':') != nullptr)
                spec = argv[++i];
            sampleOverride() = parseSampleSpec(spec);
        } else {
            rest.emplace_back(argv[i]);
        }
    }
    // Parse (and so validate) the matrix eagerly once all overrides are
    // in: a bad --matrix file or --sample spec dies here, before any
    // simulation work starts.
    if (!matrixJsonPath().empty())
        (void)matrix();
    return rest;
}

/**
 * Standard bench epilogue; call last in every main().  Prints the
 * sweep throughput footer (when the bench ran any sweep), the phase
 * profiler report (when profiling is on), and the machine-readable
 * exports configured via init(): the sweep stats group as
 * `{"bench": <name>, "sweep": {...}}` JSON, and/or the versioned
 * BENCH_<name>.json perf baseline.  Both writes are atomic
 * (tmp+rename) and create missing parent directories, so pointing
 * them into a fresh CI artifact directory just works.
 */
inline void
finish(const std::string &name)
{
    if (sweeper().summary().runs > 0)
        sweepFooter();
    if (obs::Profiler::enabled())
        obs::Profiler::instance().report(std::cout);

    const std::string &path = statsJsonPath();
    if (!path.empty()) {
        std::ostringstream os;
        os << "{\n  \"bench\": " << stats::jsonQuoted(name)
           << ",\n  \"sweep\": ";
        sweeper().dumpJson(os, 2);
        os << ",\n  \"metric_schema\": ";
        sweeper().dumpSchema(os, 2);
        os << ",\n  \"trace_cache\": ";
        harness::traceCache().dumpJson(os, 2);
        if (obs::Profiler::enabled()) {
            os << ",\n  \"prof\": ";
            obs::Profiler::instance().dumpJson(os, 2);
        }
        os << "\n}\n";
        std::string error;
        if (!tryWriteFileAtomic(path, os.str(), error))
            rrs_fatal("cannot write stats JSON file '%s': %s",
                      path.c_str(), error.c_str());
        std::printf("stats json: %s\n", path.c_str());
    }

    const std::string &dir = benchJsonDir();
    if (!dir.empty()) {
        const std::string file =
            dir + "/" + harness::benchJsonFileName(name);
        harness::BenchResult r =
            harness::collectBenchResult(name, sweeper());
        std::string error;
        if (!harness::tryWriteBenchJson(file, r, error))
            rrs_fatal("cannot write bench JSON file '%s': %s",
                      file.c_str(), error.c_str());
        std::printf("bench json: %s\n", file.c_str());
    }
}

/** Print a bench banner. */
inline void
banner(const std::string &what, const std::string &paperRef)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", what.c_str());
    std::printf("Paper reference: %s\n", paperRef.c_str());
    std::printf("==============================================================\n");
}

/** Value-usage analysis for one workload (trace-cache backed). */
inline trace::UsageReport
usageOf(const workloads::Workload &w,
        std::uint64_t window = analysisInsts)
{
    trace::ReplayStream stream(harness::traceCache().get(w, window));
    return trace::analyzeUsage(stream, window);
}

/**
 * Value-usage analyses for many workloads, fanned out across the
 * sweep pool's sibling (analysis has no RunConfig, so it uses the
 * thread pool directly).  Reports come back in input order.
 */
inline std::vector<trace::UsageReport>
usageReports(const std::vector<workloads::Workload> &ws,
             std::uint64_t window = analysisInsts)
{
    std::vector<trace::UsageReport> out(ws.size());
    ThreadPool pool;
    pool.parallelFor(ws.size(), [&](std::size_t i) {
        out[i] = usageOf(ws[i], window);
    });
    return out;
}

/**
 * The workloads a matrix runs: its own "suite" filter (when set)
 * composed with the --suite / --workload command-line filters.
 */
inline std::vector<workloads::Workload>
matrixWorkloads(const harness::SweepMatrix &m)
{
    if (m.suite.empty())
        return selectedWorkloads();
    return filterWorkloads(workloads::suiteWorkloads(m.suite));
}

using harness::OutcomePair;

/**
 * Base/proposed outcome pairs for every (workload, rf size) cell of a
 * two-column matrix, computed with a single sweep.  Returned as
 * [workload][size] pairs in input order.
 */
inline std::vector<std::vector<OutcomePair>>
outcomeGrid(const std::vector<workloads::Workload> &ws,
            const harness::SweepMatrix &m)
{
    return harness::outcomePairGrid(sweeper(), ws, m, capInsts());
}

/**
 * Ablation helper: geomean speedup of every non-first matrix column
 * against the first (the reference, usually "baseline"), over all
 * (workload, size) cells, one sweep for everything.  Returns one
 * geomean per non-reference column, in document order.
 */
inline std::vector<double>
geomeanSpeedups(const harness::SweepMatrix &m)
{
    rrs_assert(m.schemes.size() >= 2,
               "geomeanSpeedups needs a reference column plus at "
               "least one variant");
    const auto ws = matrixWorkloads(m);
    auto grid = harness::matrixOutcomeGrid(sweeper(), ws, m,
                                           capInsts());
    std::vector<std::vector<double>> speedups(m.schemes.size() - 1);
    for (std::size_t wi = 0; wi < ws.size(); ++wi) {
        for (std::size_t si = 0; si < m.rfSizes.size(); ++si) {
            const auto &cell = grid[wi][si];
            for (std::size_t ci = 1; ci < m.schemes.size(); ++ci) {
                speedups[ci - 1].push_back(
                    static_cast<double>(cell[0].sim.cycles) /
                    static_cast<double>(cell[ci].sim.cycles));
            }
        }
    }
    std::vector<double> out;
    out.reserve(speedups.size());
    for (const auto &s : speedups)
        out.push_back(harness::geomean(s));
    return out;
}

} // namespace rrs::bench

#endif // RRS_BENCH_COMMON_HH
