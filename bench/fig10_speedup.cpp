/**
 * @file
 * Figure 10 (a, b, c): speedup of the proposed renaming scheme over
 * the baseline at equal area, for register-file sizes 48..112, for the
 * SPECfp-like, SPECint-like, and Mediabench/cognitive suites.
 *
 * Paper reference (suite geomeans): SPECfp +12.2/+7.5/+3.75/+1.83/
 * +0.82% at 48/56/64/80/96+; SPECint +47/+6.76/+2.29/+0.67/+0.41%.
 * The reproduced *shape*: benefits are largest for small register
 * files and vanish as the file grows.
 *
 * All (workload x size x scheme) runs go through one parallel sweep;
 * the tables are bit-identical for every RRS_THREADS value.
 */

#include "common.hh"

using namespace rrs;

int
main(int argc, char **argv)
{
    const auto rest = bench::init(argc, argv);
    const bool quick = !rest.empty() && rest[0] == "--quick";
    bench::banner("Figure 10: equal-area speedup vs register file size",
                  "SPECfp avg +12.2%..+0.8% (48..112); SPECint avg "
                  "+47%..+0.4%; gains shrink as the file grows");

    // --quick narrows the matrix to three sizes; everything else about
    // the grid (scheme columns, suite filter) still comes from it.
    harness::SweepMatrix m = bench::matrix();
    if (quick)
        m.rfSizes = {48, 64, 96};
    const auto &sizes = m.rfSizes;

    const auto all = bench::matrixWorkloads(m);
    auto grid = bench::outcomeGrid(all, m);

    // The whole deterministic block — per-suite tables and shape-check
    // note — comes from the shared renderer, so the campaign report's
    // fig10 section is byte-identical to this bench's output.
    std::cout << harness::renderFig10(all, sizes, grid);
    bench::finish("fig10_speedup");
    return 0;
}
