/**
 * @file
 * Figure 10 (a, b, c): speedup of the proposed renaming scheme over
 * the baseline at equal area, for register-file sizes 48..112, for the
 * SPECfp-like, SPECint-like, and Mediabench/cognitive suites.
 *
 * Paper reference (suite geomeans): SPECfp +12.2/+7.5/+3.75/+1.83/
 * +0.82% at 48/56/64/80/96+; SPECint +47/+6.76/+2.29/+0.67/+0.41%.
 * The reproduced *shape*: benefits are largest for small register
 * files and vanish as the file grows.
 *
 * All (workload x size x scheme) runs go through one parallel sweep;
 * the tables are bit-identical for every RRS_THREADS value.
 */

#include "common.hh"

using namespace rrs;

int
main(int argc, char **argv)
{
    const auto rest = bench::init(argc, argv);
    const bool quick = !rest.empty() && rest[0] == "--quick";
    bench::banner("Figure 10: equal-area speedup vs register file size",
                  "SPECfp avg +12.2%..+0.8% (48..112); SPECint avg "
                  "+47%..+0.4%; gains shrink as the file grows");

    // --quick narrows the matrix to three sizes; everything else about
    // the grid (scheme columns, suite filter) still comes from it.
    harness::SweepMatrix m = bench::matrix();
    if (quick)
        m.rfSizes = {48, 64, 96};
    const auto &sizes = m.rfSizes;

    const auto all = bench::matrixWorkloads(m);
    auto grid = bench::outcomeGrid(all, m);

    for (const auto &suite : workloads::suiteNames()) {
        // Under --suite / --workload filtering some suites may have no
        // selected members; an unfiltered run always has rows here.
        bool any = false;
        for (const auto &w : all)
            any = any || w.suite == suite;
        if (!any)
            continue;
        std::vector<std::string> headers = {"workload"};
        for (auto n : sizes)
            headers.push_back(std::to_string(n));
        stats::TextTable t(headers);

        std::vector<std::vector<double>> perSize(sizes.size());
        for (std::size_t wi = 0; wi < all.size(); ++wi) {
            if (all[wi].suite != suite)
                continue;
            t.row().cell(all[wi].name);
            for (std::size_t i = 0; i < sizes.size(); ++i) {
                double s = grid[wi][i].speedup();
                t.cell(s, 3);
                perSize[i].push_back(s);
            }
        }
        t.row().cell("GEOMEAN");
        for (std::size_t i = 0; i < sizes.size(); ++i)
            t.cell(harness::geomean(perSize[i]), 3);
        t.print(std::cout, "Suite '" + suite +
                               "': speedup (baseline cycles / proposed "
                               "cycles) at equal area");
        std::printf("\n");
    }
    std::printf("Shape checks: geomean speedups are highest at the "
                "small end of the sweep and decay towards 1.0 at 96+ "
                "registers, as in the paper's Figure 10.\n");
    bench::finish("fig10_speedup");
    return 0;
}
