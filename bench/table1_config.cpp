/**
 * @file
 * Table I: the simulated system configuration.  Prints the default
 * parameters of every subsystem so a reader can check them against the
 * paper's Table I.
 */

#include "bpred/bpred.hh"
#include "common.hh"
#include "core/params.hh"
#include "mem/memsystem.hh"

using namespace rrs;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Table I: system configuration",
                  "ARMv8-like, 2 GHz, 128-entry ROB, 40-entry IQ, "
                  "3-wide, 32 KB L1D, 48 KB L1I, 1 MB L2, stride "
                  "prefetcher, 2K BTB, 15-cycle mispredict penalty, "
                  "DDR3-1600");

    core::CoreParams cp;
    mem::MemSystemParams mp;
    bpred::BPredParams bp;

    stats::TextTable t({"unit", "parameter", "value", "paper"});
    t.row().cell("core").cell("ROB entries").cell(cp.robEntries)
        .cell("128");
    t.row().cell("core").cell("IQ entries").cell(cp.iqEntries).cell("40");
    t.row().cell("core").cell("decode width").cell(cp.decodeWidth)
        .cell("3");
    t.row().cell("core").cell("dispatch width").cell(cp.renameWidth)
        .cell("3");
    t.row().cell("core").cell("fetch queue").cell(cp.fetchQueueEntries)
        .cell("32");
    t.row().cell("core").cell("mispredict penalty (cyc)")
        .cell(static_cast<std::uint64_t>(cp.mispredictPenalty))
        .cell("15");
    t.row().cell("bpred").cell("BTB entries").cell(bp.btbEntries)
        .cell("2K");
    t.row().cell("l1d").cell("size (KB)")
        .cell(static_cast<std::uint64_t>(mp.l1d.sizeBytes / 1024))
        .cell("32");
    t.row().cell("l1d").cell("assoc").cell(mp.l1d.assoc).cell("2");
    t.row().cell("l1d").cell("latency (cyc)")
        .cell(static_cast<std::uint64_t>(mp.l1d.hitLatency)).cell("1");
    t.row().cell("l1i").cell("size (KB)")
        .cell(static_cast<std::uint64_t>(mp.l1i.sizeBytes / 1024))
        .cell("48");
    t.row().cell("l1i").cell("assoc").cell(mp.l1i.assoc).cell("3");
    t.row().cell("l2").cell("size (MB)")
        .cell(static_cast<std::uint64_t>(mp.l2.sizeBytes / 1024 / 1024))
        .cell("1");
    t.row().cell("l2").cell("assoc").cell(mp.l2.assoc).cell("16");
    t.row().cell("l2").cell("latency (cyc)")
        .cell(static_cast<std::uint64_t>(mp.l2.hitLatency)).cell("12");
    t.row().cell("line").cell("size (B)").cell(mp.l1d.lineBytes)
        .cell("64");
    t.row().cell("tlb").cell("entries").cell(mp.tlb.entries).cell("48");
    t.row().cell("prefetch").cell("stride degree")
        .cell(mp.prefetchDegree).cell("1");
    t.row().cell("dram").cell("ranks/channel").cell(mp.dram.ranks)
        .cell("2");
    t.row().cell("dram").cell("banks/rank").cell(mp.dram.banksPerRank)
        .cell("8");
    t.row().cell("dram").cell("row size (KB)")
        .cell(mp.dram.rowBytes / 1024).cell("8");
    t.row().cell("dram").cell("tCAS=tRCD=tRP (cyc @2GHz)")
        .cell(static_cast<std::uint64_t>(mp.dram.tCas)).cell("27.5");
    t.row().cell("dram").cell("tREFI (cyc @2GHz)")
        .cell(static_cast<std::uint64_t>(mp.dram.tRefi)).cell("15600");
    t.print(std::cout, "Simulated configuration vs paper Table I");
    std::printf("\nHost sweep engine: %u execution lane(s) by default "
                "(override with RRS_THREADS); runs fan out via the "
                "work-stealing pool with bit-identical results at any "
                "lane count.\n",
                ThreadPool::defaultThreadCount());
    bench::finish("table1_config");
    return 0;
}
