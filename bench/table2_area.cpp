/**
 * @file
 * Table II: area of the register files and the proposed scheme's added
 * structures (PRT, issue queue version bits, register type predictor),
 * from the calibrated CACTI-lite model.
 *
 * This table is pure closed-form area arithmetic — no simulation runs
 * — so it is the one bench with nothing to fan out over the sweep
 * engine.
 */

#include "area/area.hh"
#include "common.hh"

using namespace rrs;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Table II: structure areas (mm^2)",
                  "int RF 0.2834, fp RF 0.4988, PRT 5.08e-4, IQ "
                  "overhead 1.48e-3, predictor 3.1e-3, total overhead "
                  "5.085e-3");

    area::AreaModel m;
    double int_rf = m.regFileArea(128, 64);
    double fp_rf = m.regFileArea(128, 128);
    double prt = m.prtArea(128, 2);
    double iq = m.iqOverheadArea(40, 4);
    double pred = m.predictorArea(512, 2);
    double total = prt + iq + pred;

    stats::TextTable t({"unit", "configuration", "model mm^2",
                        "paper mm^2", "ratio"});
    auto addRow = [&](const char *unit, const char *cfg, double model,
                      double paper) {
        t.row().cell(unit).cell(cfg).cell(model, 6).cell(paper, 6)
            .cell(model / paper, 2);
    };
    addRow("Integer RF (64b)", "128 regs", int_rf, 0.2834);
    addRow("FP RF (128b)", "128 regs", fp_rf, 0.4988);
    addRow("PRT", "overhead", prt, 5.08e-4);
    addRow("Issue queue", "overhead", iq, 1.48e-3);
    addRow("Register predictor", "overhead", pred, 3.1e-3);
    addRow("Total overhead", "", total, 5.085e-3);
    t.print(std::cout, "Calibrated area model vs paper Table II");

    std::printf("\nShape check: total overhead is %.2f%% of the two "
                "register files (paper: well under 1%%).\n",
                100.0 * total / (int_rf + fp_rf));

    // Every registered scheme priced from its own area descriptor at
    // the 64-register equal-area point: the baseline is its two plain
    // files; the proposed scheme adds shadow banks, PRT, IQ version
    // bits and the predictor but still undercuts the baseline.
    std::printf("\n");
    stats::TextTable st({"scheme", "int banks", "extra structures",
                         "total mm^2"});
    for (const auto &name : rename::registeredRenameSchemes()) {
        const rename::RenameScheme &scheme = rename::renameScheme(name);
        rename::SchemeParams sp;
        scheme.configureEqualArea(sp, 64);
        const auto d = scheme.areaDescriptor(sp);
        const double a = m.schemeArea(
            d.intBanks, d.fpBanks, 64, 128, d.prtCounterBits, 40,
            d.iqExtraTagBits, d.predictorEntries, d.predictorBits);
        std::string banks = std::to_string(d.intBanks[0]) + "+" +
                            std::to_string(d.intBanks[1]) + "+" +
                            std::to_string(d.intBanks[2]) + "+" +
                            std::to_string(d.intBanks[3]);
        std::string extras =
            d.prtCounterBits == 0
                ? std::string("none")
                : "PRT(" + std::to_string(d.prtCounterBits) +
                      "b) IQ(+" + std::to_string(d.iqExtraTagBits) +
                      "b) pred(" + std::to_string(d.predictorEntries) +
                      "x" + std::to_string(d.predictorBits) + "b)";
        st.row().cell(name).cell(banks).cell(extras).cell(a, 4);
    }
    st.print(std::cout, "Registered schemes priced via their area "
                        "descriptors (64-register equal-area point)");
    bench::finish("table2_area");
    return 0;
}
