/**
 * @file
 * Figure 1: percentage of instructions with a destination register
 * that are the only consumers of a register value, split between
 * consumers that redefine the single-use register and consumers that
 * redefine a different logical register.
 *
 * Paper shapes to hold: SPECfp > 50% total, SPECint > 30% total, with
 * a substantial redefining share in both.
 *
 * The per-workload usage analyses run in parallel on the thread pool;
 * the table is assembled from in-order results.
 */

#include "common.hh"

using namespace rrs;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Figure 1: single-consumer instruction fractions",
                  "SPECfp > 50%, SPECint > 30% of instructions are sole "
                  "consumers of a value");

    const auto all = bench::selectedWorkloads();
    auto reports = bench::usageReports(all);

    stats::TextTable t({"workload", "suite", "redefining%", "other%",
                        "total%"});
    for (const auto &suite : workloads::suiteNames()) {
        std::vector<double> redefs, others;
        for (std::size_t wi = 0; wi < all.size(); ++wi) {
            if (all[wi].suite != suite)
                continue;
            const auto &rep = reports[wi];
            double r = 100.0 * rep.fracSingleConsumerRedef();
            double o = 100.0 * rep.fracSingleConsumerOther();
            t.row().cell(all[wi].name).cell(suite).cell(r).cell(o)
                .cell(r + o);
            redefs.push_back(r);
            others.push_back(o);
        }
        if (redefs.empty())
            continue;  // suite filtered out
        double ar = 0, ao = 0;
        for (std::size_t i = 0; i < redefs.size(); ++i) {
            ar += redefs[i];
            ao += others[i];
        }
        ar /= static_cast<double>(redefs.size());
        ao /= static_cast<double>(others.size());
        t.row()
            .cell("MEAN(" + suite + ")")
            .cell(suite)
            .cell(ar)
            .cell(ao)
            .cell(ar + ao);
    }
    t.print(std::cout, "Single-consumer fractions (percent of all "
                       "instructions)");
    std::printf("\nPaper: SPECfp mean > 50%%, SPECint mean > 30%% "
                "(our kernels stand in for SPEC; the fp > int ordering "
                "and magnitudes are the reproduced shape).\n");
    bench::finish("fig01_single_use");
    return 0;
}
