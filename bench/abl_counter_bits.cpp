/**
 * @file
 * Ablation A: version-counter width.  The paper argues a 2-bit counter
 * (up to 3 reuses) is the sweet spot — 1 bit forfeits the depth-2/3
 * chains, more bits cost PRT/IQ area without measurable gain (chains
 * beyond 4 instructions are rare, Figure 3).
 *
 * All (workload x config) runs execute in one parallel sweep.
 */

#include "area/area.hh"
#include "common.hh"

using namespace rrs;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Ablation: version counter width (1/2/3 bits)",
                  "paper section IV-A: a 2-bit counter balances sharing "
                  "degree against PRT and issue-queue cost");

    // Declarative ablation: the first column is the reference
    // baseline, every other column one counter-width variant.
    const auto matrix = harness::parseSweepMatrix(R"({
  "schemes": ["baseline",
              {"scheme": "reuse", "label": "1-bit",
               "params": {"counter_bits": 1}},
              {"scheme": "reuse", "label": "2-bit",
               "params": {"counter_bits": 2}},
              {"scheme": "reuse", "label": "3-bit",
               "params": {"counter_bits": 3}}],
  "rf_sizes": [56]
})");
    const std::vector<std::uint8_t> widths = {1, 2, 3};
    auto speedups = bench::geomeanSpeedups(matrix);

    stats::TextTable t({"bits", "geomean speedup vs baseline@56",
                        "IQ overhead mm^2"});
    area::AreaModel m;
    for (std::size_t i = 0; i < widths.size(); ++i) {
        t.row()
            .cell(static_cast<std::uint64_t>(widths[i]))
            .cell(speedups[i], 4)
            .cell(m.iqOverheadArea(40, 2u * widths[i]), 5);
    }
    t.print(std::cout, "Counter width ablation at the 56-register "
                       "equal-area point");
    std::printf("\nShape checks: 2 bits captures nearly all of the "
                "benefit; 3 bits adds little speedup while growing the "
                "wakeup tags.\n");
    bench::finish("abl_counter_bits");
    return 0;
}
