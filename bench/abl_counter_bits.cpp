/**
 * @file
 * Ablation A: version-counter width.  The paper argues a 2-bit counter
 * (up to 3 reuses) is the sweet spot — 1 bit forfeits the depth-2/3
 * chains, more bits cost PRT/IQ area without measurable gain (chains
 * beyond 4 instructions are rare, Figure 3).
 */

#include "area/area.hh"
#include "common.hh"

using namespace rrs;

int
main()
{
    bench::banner("Ablation: version counter width (1/2/3 bits)",
                  "paper section IV-A: a 2-bit counter balances sharing "
                  "degree against PRT and issue-queue cost");

    stats::TextTable t({"bits", "geomean speedup vs baseline@56",
                        "IQ overhead mm^2"});
    area::AreaModel m;
    for (std::uint8_t bits : {std::uint8_t{1}, std::uint8_t{2},
                              std::uint8_t{3}}) {
        std::vector<double> speedups;
        for (const auto &w : workloads::allWorkloads()) {
            auto base = harness::baselineConfig(56);
            base.maxInsts = bench::timingInsts;
            auto prop = harness::reuseConfig(56);
            prop.reuse.counterBits = bits;
            prop.maxInsts = bench::timingInsts;
            auto ob = harness::runOn(w, base);
            auto op = harness::runOn(w, prop);
            speedups.push_back(static_cast<double>(ob.sim.cycles) /
                               static_cast<double>(op.sim.cycles));
        }
        t.row()
            .cell(static_cast<std::uint64_t>(bits))
            .cell(harness::geomean(speedups), 4)
            .cell(m.iqOverheadArea(40, 2u * bits), 5);
    }
    t.print(std::cout, "Counter width ablation at the 56-register "
                       "equal-area point");
    std::printf("\nShape checks: 2 bits captures nearly all of the "
                "benefit; 3 bits adds little speedup while growing the "
                "wakeup tags.\n");
    return 0;
}
