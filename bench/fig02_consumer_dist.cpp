/**
 * @file
 * Figure 2: distribution of the number of consumers per produced
 * register value (1, 2, 3, 4, 5, 6+).
 *
 * Paper shape to hold: most values are consumed exactly once,
 * especially in SPECfp.
 *
 * The per-workload usage analyses run in parallel on the thread pool.
 */

#include "common.hh"

using namespace rrs;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Figure 2: consumers-per-value distribution",
                  "single-consumer values dominate (most values are "
                  "consumed just once in SPEC)");

    const auto all = bench::selectedWorkloads();
    auto reports = bench::usageReports(all);

    stats::TextTable t({"workload", "1", "2", "3", "4", "5", "6+"});
    for (const auto &suite : workloads::suiteNames()) {
        std::vector<std::vector<double>> rows;
        for (std::size_t wi = 0; wi < all.size(); ++wi) {
            if (all[wi].suite != suite)
                continue;
            const auto &rep = reports[wi];
            std::vector<double> row;
            for (std::uint64_t k = 1; k <= 6; ++k)
                row.push_back(100.0 * rep.fracConsumers(k));
            t.row().cell(all[wi].name);
            for (double v : row)
                t.cell(v, 1);
            rows.push_back(row);
        }
        if (rows.empty())
            continue;  // suite filtered out
        t.row().cell("MEAN(" + suite + ")");
        for (int k = 0; k < 6; ++k) {
            double sum = 0;
            for (const auto &row : rows)
                sum += row[static_cast<std::size_t>(k)];
            t.cell(sum / static_cast<double>(rows.size()), 1);
        }
    }
    t.print(std::cout,
            "Percent of consumed values read exactly k times");
    std::printf("\nPaper: the k=1 bar is the tallest across all "
                "suites.\n");
    bench::finish("fig02_consumer_dist");
    return 0;
}
