/**
 * @file
 * Figure 3: percentage of destination-writing instructions that could
 * reuse a physical register when each register may be reused up to 1,
 * 2, 3 or an unlimited number of times, plus the exact chain-depth
 * decomposition.
 *
 * Paper reference points (SPECfp): 32.3% / 12.3% / 5.9% of
 * instructions at depths 1 / 2 / 3 and only 4.1% beyond; SPECint:
 * 22% / 5.2% / 2.3% / 1.2%.  Shape: reuse saturates quickly with the
 * chain cap — chains longer than four instructions are rare.
 *
 * The per-workload usage analyses run in parallel on the thread pool.
 */

#include "common.hh"

using namespace rrs;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Figure 3: reusable instructions vs reuse cap",
                  "SPECfp depth decomposition 32.3/12.3/5.9/4.1%; "
                  "SPECint 22/5.2/2.3/1.2%; caps beyond 3 add little");

    const auto all = bench::selectedWorkloads();
    auto reports = bench::usageReports(all);

    stats::TextTable t({"workload", "cap1%", "cap2%", "cap3%", "inf%",
                        "d1%", "d2%", "d3%", "d>3%"});
    for (const auto &suite : workloads::suiteNames()) {
        std::vector<std::array<double, 8>> rows;
        for (std::size_t wi = 0; wi < all.size(); ++wi) {
            if (all[wi].suite != suite)
                continue;
            const auto &rep = reports[wi];
            auto depth = rep.reuseDepthBreakdown();
            std::array<double, 8> row{};
            for (int c = 0; c < 4; ++c)
                row[static_cast<std::size_t>(c)] =
                    100.0 * rep.fracReusable(c);
            for (int d = 0; d < 4; ++d)
                row[static_cast<std::size_t>(4 + d)] =
                    100.0 * depth[static_cast<std::size_t>(d)];
            t.row().cell(all[wi].name);
            for (double v : row)
                t.cell(v, 1);
            rows.push_back(row);
        }
        if (rows.empty())
            continue;  // suite filtered out
        t.row().cell("MEAN(" + suite + ")");
        for (int k = 0; k < 8; ++k) {
            double sum = 0;
            for (const auto &row : rows)
                sum += row[static_cast<std::size_t>(k)];
            t.cell(sum / static_cast<double>(rows.size()), 1);
        }
    }
    t.print(std::cout, "Percent of dest-writing instructions that avoid "
                       "an allocation (oracle), by reuse cap and exact "
                       "chain depth");
    std::printf("\nShape checks: cap columns are monotone; the d>3 "
                "column is small (long chains are rare), matching the "
                "paper's motivation for a 2-bit counter.\n");
    bench::finish("fig03_reuse_chains");
    return 0;
}
