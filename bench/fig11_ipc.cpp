/**
 * @file
 * Figure 11: average committed IPC of the baseline and the proposed
 * scheme as a function of the number of physical registers (the
 * baseline's count; the proposed scheme uses the equal-area bank
 * configuration).
 *
 * Paper shape: both curves rise and saturate; the proposed curve
 * reaches the baseline's saturated IPC with roughly one size class
 * fewer registers (e.g. proposed@56 ~ baseline@64, a ~10.5-13% area
 * saving).
 *
 * Every (workload x size x scheme) run is fanned out in one parallel
 * sweep before any aggregation.
 */

#include "common.hh"

using namespace rrs;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Figure 11: IPC vs physical register count",
                  "proposed reaches baseline IPC with ~1 size class "
                  "fewer registers (10.5% register-file reduction)");

    // The whole deterministic block — table, crossover analysis and
    // shape-check note — comes from the shared renderer the golden
    // tests lock byte-for-byte (harness/figures.hh).
    const auto &m = bench::matrix();
    const auto all = bench::matrixWorkloads(m);
    auto grid = bench::outcomeGrid(all, m);
    std::cout << harness::renderFig11(m.rfSizes, grid);
    bench::finish("fig11_ipc");
    return 0;
}
