/**
 * @file
 * Figure 11: average committed IPC of the baseline and the proposed
 * scheme as a function of the number of physical registers (the
 * baseline's count; the proposed scheme uses the equal-area bank
 * configuration).
 *
 * Paper shape: both curves rise and saturate; the proposed curve
 * reaches the baseline's saturated IPC with roughly one size class
 * fewer registers (e.g. proposed@56 ~ baseline@64, a ~10.5-13% area
 * saving).
 *
 * Every (workload x size x scheme) run is fanned out in one parallel
 * sweep before any aggregation.
 */

#include "common.hh"

using namespace rrs;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Figure 11: IPC vs physical register count",
                  "proposed reaches baseline IPC with ~1 size class "
                  "fewer registers (10.5% register-file reduction)");

    const auto all = bench::selectedWorkloads();
    auto grid = bench::outcomeGrid(all, bench::rfSizes());

    stats::TextTable t({"regs", "baseline IPC", "proposed IPC"});
    std::vector<double> baseIpc, propIpc;
    for (std::size_t si = 0; si < bench::rfSizes().size(); ++si) {
        std::vector<double> b, p;
        for (std::size_t wi = 0; wi < all.size(); ++wi) {
            b.push_back(grid[wi][si].base.sim.ipc());
            p.push_back(grid[wi][si].prop.sim.ipc());
        }
        baseIpc.push_back(harness::geomean(b));
        propIpc.push_back(harness::geomean(p));
        t.row()
            .cell(bench::rfSizes()[si])
            .cell(baseIpc.back(), 3)
            .cell(propIpc.back(), 3);
    }
    t.print(std::cout, "Geomean IPC over all workloads");

    // Crossover analysis: smallest baseline size whose IPC the
    // proposed scheme meets with fewer baseline-equivalent registers.
    for (std::size_t i = 0; i + 1 < bench::rfSizes().size(); ++i) {
        if (propIpc[i] >= baseIpc[i + 1] * 0.995) {
            std::printf("\nCrossover: proposed@%u reaches baseline@%u "
                        "IPC (%.3f vs %.3f) => ~%.1f%% register "
                        "reduction at equal performance.\n",
                        bench::rfSizes()[i], bench::rfSizes()[i + 1],
                        propIpc[i], baseIpc[i + 1],
                        100.0 *
                            (1.0 - static_cast<double>(
                                       bench::rfSizes()[i]) /
                                       static_cast<double>(
                                           bench::rfSizes()[i + 1])));
            break;
        }
    }
    std::printf("\nShape checks: both curves saturate with size; the "
                "proposed curve sits on or above the baseline at every "
                "sweep point below saturation.\n");
    bench::finish("fig11_ipc");
    return 0;
}
