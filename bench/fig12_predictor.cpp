/**
 * @file
 * Figure 12: accuracy of the register type predictor — the breakdown
 * of released registers into correctly/incorrectly predicted-reused
 * and correctly/incorrectly predicted-normal.
 *
 * Paper reference (SPECfp): ~2.28% of instructions lose a reuse
 * opportunity to a wrong not-single-use prediction and ~3.1% are
 * reused incorrectly (requiring repair); the large majority of
 * predictions are correct.
 *
 * All workloads run in one parallel sweep (proposed scheme, 64-reg
 * equal-area point) before the table is printed.
 */

#include "common.hh"

using namespace rrs;

int
main(int argc, char **argv)
{
    bench::init(argc, argv);
    bench::banner("Figure 12: register type predictor accuracy",
                  "most predictions correct; ~2.28% lost opportunities "
                  "and ~3.1% repaired mispredictions in SPECfp");

    const auto m = harness::parseSweepMatrix(R"({
  "schemes": ["reuse"],
  "rf_sizes": [64]
})");
    const auto all = bench::matrixWorkloads(m);
    auto outs = bench::sweeper().outcomes(
        harness::expandSweepMatrix(m, all, bench::capInsts()));

    stats::TextTable t({"workload", "reuse-ok%", "reuse-wrong%",
                        "normal-ok%", "normal-wrong%", "repairs/1k"});
    for (const auto &suite : workloads::suiteNames()) {
        std::vector<double> ok;
        for (std::size_t wi = 0; wi < all.size(); ++wi) {
            if (all[wi].suite != suite)
                continue;
            const auto &out = outs[wi];
            auto f = out.fig12;
            double total = f.total() > 0 ? f.total() : 1;
            t.row()
                .cell(all[wi].name)
                .cell(100.0 * f.reuseCorrect / total, 1)
                .cell(100.0 * f.reuseWrong / total, 1)
                .cell(100.0 * f.noReuseCorrect / total, 1)
                .cell(100.0 * f.noReuseWrong / total, 1)
                .cell(1000.0 * out.repairs /
                          static_cast<double>(out.sim.committedInsts),
                      2);
            ok.push_back(100.0 * (f.reuseCorrect + f.noReuseCorrect) /
                         total);
        }
        if (ok.empty())
            continue;  // suite filtered out
        double mean = 0;
        for (double v : ok)
            mean += v;
        t.row().cell("MEAN-correct(" + suite + ")")
            .cell(mean / static_cast<double>(ok.size()), 1)
            .cell("").cell("").cell("").cell("");
    }
    t.print(std::cout, "Released-register prediction breakdown "
                       "(proposed scheme, 64-reg equal-area config)");
    std::printf("\nShape checks: correct classifications dominate; "
                "repair micro-ops stay at a few per thousand committed "
                "instructions (paper: mispredicted reuses ~3%%).\n");
    bench::finish("fig12_predictor");
    return 0;
}
