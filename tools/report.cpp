/**
 * @file
 * rrs-report: render a campaign ledger into one report.
 *
 *   rrs-report [--ledger <dir>] [--baseline <dir>] [--html] [-o <file>]
 *
 * Reads the campaign.json sidecar rrs-campaign wrote next to the
 * ledger's nodes/ directory and renders every figure and table of the
 * reproduction from ledger entries alone — no re-simulation.  Figure
 * blocks are byte-identical to the direct bench output for the same
 * runs; sampled rows carry 95% confidence intervals.  With --baseline,
 * a drift section diffs this ledger against a prior one using the
 * benchdiff gating rules and explains any regression (which node,
 * which metric, which stall cause grew).
 *
 * Options:
 *   --ledger <dir>      ledger directory (default: RRS_LEDGER_DIR)
 *   --baseline <dir>    prior ledger to diff against
 *   --html              wrap the report in a minimal HTML page
 *   -o <file>           write to <file> (atomic) instead of stdout
 *
 * Exit status: 0 on success, 2 on a missing/unreadable ledger.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/atomicfile.hh"
#include "harness/report.hh"

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--ledger <dir>] [--baseline <dir>] "
                 "[--html] [-o <file>]\n"
                 "  --ledger defaults to the RRS_LEDGER_DIR "
                 "environment variable\n",
                 argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string ledgerDir;
    if (const char *env = std::getenv("RRS_LEDGER_DIR"))
        ledgerDir = env;
    std::string outPath;
    rrs::harness::ReportOptions opts;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--ledger") == 0) {
            if (i + 1 >= argc)
                usage(argv[0]);
            ledgerDir = argv[++i];
        } else if (std::strcmp(argv[i], "--baseline") == 0) {
            if (i + 1 >= argc)
                usage(argv[0]);
            opts.baselineDir = argv[++i];
        } else if (std::strcmp(argv[i], "--html") == 0) {
            opts.html = true;
        } else if (std::strcmp(argv[i], "-o") == 0 ||
                   std::strcmp(argv[i], "--output") == 0) {
            if (i + 1 >= argc)
                usage(argv[0]);
            outPath = argv[++i];
        } else {
            usage(argv[0]);
        }
    }
    if (ledgerDir.empty()) {
        std::fprintf(stderr, "error: no ledger directory (pass "
                             "--ledger or set RRS_LEDGER_DIR)\n");
        return 2;
    }

    const rrs::harness::Ledger ledger(ledgerDir);
    std::string report, error;
    if (!rrs::harness::tryRenderCampaignReport(ledger, opts, report,
                                               error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 2;
    }
    if (outPath.empty()) {
        std::fputs(report.c_str(), stdout);
        return 0;
    }
    if (!rrs::tryWriteFileAtomic(outPath, report, error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 2;
    }
    std::printf("wrote %s\n", outPath.c_str());
    return 0;
}
