/**
 * @file
 * rrs-tracetool: inspect, capture and verify binary trace files
 * (trace/tracefile.hh, the format the harness trace cache spills via
 * RRS_TRACE_DIR).
 *
 *   rrs-tracetool capture <workload> <file> [maxInsts]
 *       Functionally emulate a workload (post-warmup, capped) and
 *       write the captured stream as a trace file.
 *
 *   rrs-tracetool info <file>
 *       Print a trace file's header, record count and digest.
 *
 *   rrs-tracetool verify <file>
 *       Structurally validate a trace file (magic, version, record
 *       encoding, digest trailer), then — when the workload is still
 *       in the registry — recapture it and compare digests, proving
 *       the file replays bit-identically to a live emulation of the
 *       current sources.  Exit status 0 only if everything matches.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "trace/recorded.hh"
#include "trace/tracefile.hh"
#include "workloads/workloads.hh"

using namespace rrs;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: rrs-tracetool <command> ...\n"
                 "  capture <workload> <file> [maxInsts]  emulate once, "
                 "write trace\n"
                 "  info <file>                           print header "
                 "and digest\n"
                 "  verify <file>                         validate, then "
                 "compare against a fresh capture\n"
                 "workloads: every name from the registry, e.g. "
                 "int_sort, fp_matmul, media_dct, cog_gmm\n");
    return 2;
}

const workloads::Workload *
findWorkload(const std::string &name)
{
    for (const auto &w : workloads::allWorkloads()) {
        if (w.name == name)
            return &w;
    }
    return nullptr;
}

void
printInfo(const trace::RecordedTrace &t, const std::string &path)
{
    std::printf("file:        %s\n", path.c_str());
    std::printf("version:     %u\n", trace::traceFileVersion);
    std::printf("workload:    %s\n", t.workload().c_str());
    std::printf("cap:         %llu insts (post-warmup)\n",
                static_cast<unsigned long long>(t.cap()));
    std::printf("records:     %zu\n", t.size());
    std::printf("source hash: %016llx\n",
                static_cast<unsigned long long>(t.sourceHash()));
    std::printf("digest:      %016llx\n",
                static_cast<unsigned long long>(t.digest()));
    if (!t.empty()) {
        std::printf("first seq:   %llu\n",
                    static_cast<unsigned long long>(t[0].seq));
        std::printf("last seq:    %llu\n",
                    static_cast<unsigned long long>(t[t.size() - 1].seq));
    }
}

int
cmdCapture(int argc, char **argv)
{
    if (argc < 4 || argc > 5)
        return usage();
    const workloads::Workload *w = findWorkload(argv[2]);
    if (!w)
        rrs_fatal("unknown workload '%s'", argv[2]);
    const std::uint64_t maxInsts =
        argc == 5 ? std::strtoull(argv[4], nullptr, 0) : 0;

    trace::TracePtr t = workloads::captureTrace(*w, maxInsts);
    trace::writeTraceFile(argv[3], *t);
    std::printf("captured %zu records of '%s' (cap %llu) -> %s\n",
                t->size(), t->workload().c_str(),
                static_cast<unsigned long long>(t->cap()), argv[3]);
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc != 3)
        return usage();
    trace::TracePtr t = trace::readTraceFile(argv[2]);
    printInfo(*t, argv[2]);
    return 0;
}

int
cmdVerify(int argc, char **argv)
{
    if (argc != 3)
        return usage();
    // Structural validation (magic, version, records, digest) is the
    // reader itself; fatal with the reader's message on any problem.
    trace::TracePtr t = trace::readTraceFile(argv[2]);
    std::printf("structure:   ok (%zu records, digest verified)\n",
                t->size());

    const workloads::Workload *w = findWorkload(t->workload());
    if (!w) {
        std::printf("workload:    '%s' not in this build's registry; "
                    "skipping recapture check\n", t->workload().c_str());
        return 0;
    }
    if (workloads::sourceHash(*w) != t->sourceHash()) {
        std::printf("recapture:   STALE — workload '%s' sources changed "
                    "since capture\n", w->name.c_str());
        return 1;
    }
    trace::TracePtr fresh = workloads::captureTrace(*w, t->cap());
    if (fresh->digest() != t->digest() || fresh->size() != t->size()) {
        std::printf("recapture:   MISMATCH — file digest %016llx, fresh "
                    "capture %016llx\n",
                    static_cast<unsigned long long>(t->digest()),
                    static_cast<unsigned long long>(fresh->digest()));
        return 1;
    }
    std::printf("recapture:   ok — replays bit-identical to a live "
                "emulation (%zu records)\n", fresh->size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    if (std::strcmp(argv[1], "capture") == 0)
        return cmdCapture(argc, argv);
    if (std::strcmp(argv[1], "info") == 0)
        return cmdInfo(argc, argv);
    if (std::strcmp(argv[1], "verify") == 0)
        return cmdVerify(argc, argv);
    return usage();
}
