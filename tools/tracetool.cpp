/**
 * @file
 * rrs-tracetool: inspect, capture and verify binary trace files
 * (trace/tracefile.hh, the format the harness trace cache spills via
 * RRS_TRACE_DIR).
 *
 *   rrs-tracetool capture <workload> <file> [maxInsts]
 *       Functionally emulate a workload (post-warmup, capped) and
 *       write the captured stream as a trace file.
 *
 *   rrs-tracetool info <file>
 *       Print a trace file's header, record count and digests.
 *
 *   rrs-tracetool verify <file>
 *       Structurally validate a trace file (magic, version, record
 *       encoding, digest trailer), then — when the workload is still
 *       in the registry — recapture it and compare digests, proving
 *       the file replays bit-identically to a live emulation of the
 *       current sources.  Exit status 0 only if everything matches.
 *
 *   rrs-tracetool mix <workload|file> [maxInsts]
 *       Print the instruction-class mix (loads / stores / branches /
 *       ALU, taken and dest-writer fractions), computed straight from
 *       the packed attribute bitvectors.  A registry workload name
 *       captures fresh; anything else is read as a trace file.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "trace/packed.hh"
#include "trace/recorded.hh"
#include "trace/tracefile.hh"
#include "workloads/workloads.hh"

using namespace rrs;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: rrs-tracetool <command> ...\n"
                 "  capture <workload> <file> [maxInsts]  emulate once, "
                 "write trace\n"
                 "  info <file>                           print header "
                 "and digests\n"
                 "  verify <file>                         validate, then "
                 "compare against a fresh capture\n"
                 "  mix <workload|file> [maxInsts]        instruction-"
                 "class mix from the packed bitvectors\n"
                 "workloads: every name from the registry, e.g. "
                 "int_sort, fp_matmul, media_dct, cog_gmm\n");
    return 2;
}

const workloads::Workload *
findWorkload(const std::string &name)
{
    for (const auto &w : workloads::allWorkloads()) {
        if (w.name == name)
            return &w;
    }
    return nullptr;
}

void
printInfo(const trace::RecordedTrace &t, const std::string &path,
          std::uint32_t fileVersion)
{
    std::printf("file:        %s\n", path.c_str());
    std::printf("version:     %u%s\n", fileVersion,
                fileVersion < trace::traceFileVersion
                    ? " (legacy; columns re-packed on load)"
                    : "");
    std::printf("workload:    %s\n", t.workload().c_str());
    std::printf("cap:         %llu insts (post-warmup)\n",
                static_cast<unsigned long long>(t.cap()));
    std::printf("records:     %zu\n", t.size());
    std::printf("source hash: %016llx\n",
                static_cast<unsigned long long>(t.sourceHash()));
    std::printf("digest:      %016llx\n",
                static_cast<unsigned long long>(t.digest()));
    std::printf("packed:      %016llx\n",
                static_cast<unsigned long long>(t.packed().digest()));
    if (!t.empty()) {
        std::printf("first seq:   %llu\n",
                    static_cast<unsigned long long>(t[0].seq));
        std::printf("last seq:    %llu\n",
                    static_cast<unsigned long long>(t[t.size() - 1].seq));
    }
}

int
cmdCapture(int argc, char **argv)
{
    if (argc < 4 || argc > 5)
        return usage();
    const workloads::Workload *w = findWorkload(argv[2]);
    if (!w)
        rrs_fatal("unknown workload '%s'", argv[2]);
    const std::uint64_t maxInsts =
        argc == 5 ? std::strtoull(argv[4], nullptr, 0) : 0;

    trace::TracePtr t = workloads::captureTrace(*w, maxInsts);
    trace::writeTraceFile(argv[3], *t);
    std::printf("captured %zu records of '%s' (cap %llu) -> %s\n",
                t->size(), t->workload().c_str(),
                static_cast<unsigned long long>(t->cap()), argv[3]);
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc != 3)
        return usage();
    std::string error;
    std::uint32_t fileVersion = 0;
    trace::TracePtr t =
        trace::tryReadTraceFile(argv[2], error, &fileVersion);
    if (!t)
        rrs_fatal("%s", error.c_str());
    printInfo(*t, argv[2], fileVersion);
    return 0;
}

int
cmdVerify(int argc, char **argv)
{
    if (argc != 3)
        return usage();
    // Structural validation (magic, version, records, digests) is the
    // reader itself; fatal with the reader's message on any problem.
    trace::TracePtr t = trace::readTraceFile(argv[2]);
    std::printf("structure:   ok (%zu records, digest verified)\n",
                t->size());

    const workloads::Workload *w = findWorkload(t->workload());
    if (!w) {
        std::printf("workload:    '%s' not in this build's registry; "
                    "skipping recapture check\n", t->workload().c_str());
        return 0;
    }
    if (workloads::sourceHash(*w) != t->sourceHash()) {
        std::printf("recapture:   STALE — workload '%s' sources changed "
                    "since capture\n", w->name.c_str());
        return 1;
    }
    trace::TracePtr fresh = workloads::captureTrace(*w, t->cap());
    if (fresh->digest() != t->digest() || fresh->size() != t->size()) {
        std::printf("recapture:   MISMATCH — file digest %016llx, fresh "
                    "capture %016llx\n",
                    static_cast<unsigned long long>(t->digest()),
                    static_cast<unsigned long long>(fresh->digest()));
        return 1;
    }
    std::printf("recapture:   ok — replays bit-identical to a live "
                "emulation (%zu records)\n", fresh->size());
    return 0;
}

int
cmdMix(int argc, char **argv)
{
    if (argc < 3 || argc > 4)
        return usage();
    const std::uint64_t maxInsts =
        argc == 4 ? std::strtoull(argv[3], nullptr, 0) : 0;

    // A registry workload name captures fresh; anything else is a
    // trace-file path.
    trace::TracePtr t;
    if (const workloads::Workload *w = findWorkload(argv[2])) {
        t = workloads::captureTrace(*w, maxInsts);
        std::printf("mix of workload '%s' (fresh capture)\n",
                    w->name.c_str());
    } else {
        t = trace::readTraceFile(argv[2]);
        std::printf("mix of trace file %s (workload '%s')\n", argv[2],
                    t->workload().c_str());
    }

    const trace::PackedTrace &p = t->packed();
    const auto total = static_cast<std::uint64_t>(p.size());
    if (total == 0) {
        std::printf("records:   0\n");
        return 0;
    }

    // Whole-trace counts come straight from the attribute bitvectors:
    // one popcount pass per attribute, no per-record decode.
    const std::uint64_t loads = trace::PackedTrace::countBits(p.loadBits());
    const std::uint64_t stores =
        trace::PackedTrace::countBits(p.storeBits());
    const std::uint64_t branches =
        trace::PackedTrace::countBits(p.controlBits());
    const std::uint64_t taken =
        trace::PackedTrace::countBits(p.takenBits());
    const std::uint64_t destWriters =
        trace::PackedTrace::countBits(p.hasDestBits());
    const std::uint64_t renamed =
        trace::PackedTrace::countBits(p.writesRegBits());

    // The ALU / nop split needs the class column (one byte compare per
    // record — still no OpInfo chasing).
    std::uint64_t intAlu = 0, fpAlu = 0, nops = 0;
    for (std::size_t i = 0; i < p.size(); ++i) {
        switch (p.meta(i).cls) {
          case isa::InstClass::IntAlu:
          case isa::InstClass::IntMult:
          case isa::InstClass::IntDiv:
            ++intAlu;
            break;
          case isa::InstClass::FpAlu:
          case isa::InstClass::FpMult:
          case isa::InstClass::FpDiv:
            ++fpAlu;
            break;
          case isa::InstClass::Nop:
            ++nops;
            break;
          default:
            break;
        }
    }

    auto pct = [total](std::uint64_t v) {
        return 100.0 * static_cast<double>(v) /
               static_cast<double>(total);
    };
    std::printf("records:   %llu\n",
                static_cast<unsigned long long>(total));
    std::printf("loads:     %10llu  (%5.1f%%)\n",
                static_cast<unsigned long long>(loads), pct(loads));
    std::printf("stores:    %10llu  (%5.1f%%)\n",
                static_cast<unsigned long long>(stores), pct(stores));
    std::printf("branches:  %10llu  (%5.1f%%, %.1f%% taken)\n",
                static_cast<unsigned long long>(branches), pct(branches),
                branches == 0 ? 0.0
                              : 100.0 * static_cast<double>(taken) /
                                    static_cast<double>(branches));
    std::printf("int alu:   %10llu  (%5.1f%%)\n",
                static_cast<unsigned long long>(intAlu), pct(intAlu));
    std::printf("fp alu:    %10llu  (%5.1f%%)\n",
                static_cast<unsigned long long>(fpAlu), pct(fpAlu));
    std::printf("nops:      %10llu  (%5.1f%%)\n",
                static_cast<unsigned long long>(nops), pct(nops));
    std::printf("dest writers: %llu of %llu (%.1f%%); %llu allocate a "
                "rename (%.1f%%)\n",
                static_cast<unsigned long long>(destWriters),
                static_cast<unsigned long long>(total), pct(destWriters),
                static_cast<unsigned long long>(renamed), pct(renamed));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    if (std::strcmp(argv[1], "capture") == 0)
        return cmdCapture(argc, argv);
    if (std::strcmp(argv[1], "info") == 0)
        return cmdInfo(argc, argv);
    if (std::strcmp(argv[1], "verify") == 0)
        return cmdVerify(argc, argv);
    if (std::strcmp(argv[1], "mix") == 0)
        return cmdMix(argc, argv);
    return usage();
}
