/**
 * @file
 * rrs-benchdiff: compare BENCH_*.json perf baselines.
 *
 *   rrs-benchdiff [options] <baseline> <current>
 *
 * Each argument is a BENCH_*.json file or a directory of them; with
 * directories, files are matched by name.  Exact metrics (instruction
 * and cycle counts, and the IPC derived from them) must match
 * bit-for-bit — the sweep engine guarantees them across thread counts
 * and machines — so any drift exits 1.  Noisy metrics (wall clock,
 * runs/s, Minst/s) only warn unless --throughput-threshold is given.
 * A schema-version mismatch exits 2.
 *
 * Options:
 *   --markdown                    pipe-table output (PR comments)
 *   --json                        machine-readable diff report(s):
 *                                 one JSON document per pair (an array
 *                                 in directory mode), same verdicts
 *                                 and exit codes as text mode
 *   --throughput-threshold <pct>  fail on noisy drift beyond <pct>%
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "harness/benchjson.hh"

namespace {

namespace fs = std::filesystem;
using rrs::harness::BenchDiffOptions;
using rrs::harness::BenchResult;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--markdown] [--json] "
                 "[--throughput-threshold <pct>] "
                 "<baseline> <current>\n"
                 "  baseline/current: BENCH_*.json files, or "
                 "directories matched by file name\n",
                 argv0);
    std::exit(2);
}

/** BENCH_*.json files under `dir`, sorted by name. */
std::vector<std::string>
benchFiles(const std::string &dir)
{
    std::vector<std::string> names;
    for (const auto &e : fs::directory_iterator(dir)) {
        const std::string name = e.path().filename().string();
        if (e.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
            name.size() > 5 &&
            name.compare(name.size() - 5, 5, ".json") == 0) {
            names.push_back(name);
        }
    }
    std::sort(names.begin(), names.end());
    return names;
}

/**
 * Load both sides and diff; returns the diff exit code.  In JSON mode
 * the document goes to `jsonOut` instead of text to stdout — the same
 * collectBenchDiff verdicts either way, so the two modes can never
 * disagree on what counts as drift.
 */
int
diffFiles(const std::string &basePath, const std::string &curPath,
          const BenchDiffOptions &opts, std::string *jsonOut)
{
    BenchResult base, cur;
    std::string error;
    if (!rrs::harness::loadBenchJson(basePath, base, error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 2;
    }
    if (!rrs::harness::loadBenchJson(curPath, cur, error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 2;
    }
    if (jsonOut != nullptr) {
        const rrs::harness::BenchDiffReport report =
            rrs::harness::collectBenchDiff(base, cur, opts);
        *jsonOut = rrs::harness::renderBenchDiffJson(report);
        return report.exitCode;
    }
    return rrs::harness::diffBenchResults(base, cur, opts, std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchDiffOptions opts;
    bool json = false;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--markdown") == 0) {
            opts.markdown = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (std::strcmp(argv[i], "--throughput-threshold") == 0) {
            if (i + 1 >= argc)
                usage(argv[0]);
            opts.throughputThresholdPct = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            usage(argv[0]);
        } else {
            paths.push_back(argv[i]);
        }
    }
    if (paths.size() != 2)
        usage(argv[0]);

    const bool baseDir = fs::is_directory(paths[0]);
    const bool curDir = fs::is_directory(paths[1]);
    if (baseDir != curDir) {
        std::fprintf(stderr, "error: cannot compare a directory with a "
                             "file\n");
        return 2;
    }
    if (!baseDir) {
        if (!json)
            return diffFiles(paths[0], paths[1], opts, nullptr);
        std::string doc;
        const int rc = diffFiles(paths[0], paths[1], opts, &doc);
        std::fputs(doc.c_str(), stdout);
        return rc;
    }

    // Directory mode: match by file name; a baseline with no current
    // counterpart is a missing bench (fail), a new current file only
    // notes (it has no baseline to regress against yet).  JSON mode
    // emits one array of per-bench documents.
    int worst = 0;
    const auto baseNames = benchFiles(paths[0]);
    const auto curNames = benchFiles(paths[1]);
    if (baseNames.empty()) {
        std::fprintf(stderr, "error: no BENCH_*.json under '%s'\n",
                     paths[0].c_str());
        return 2;
    }
    std::vector<std::string> docs;
    for (const auto &name : baseNames) {
        if (std::find(curNames.begin(), curNames.end(), name) ==
            curNames.end()) {
            if (json) {
                docs.push_back("{\"bench\": \"" + name +
                               "\", \"verdict\": \"missing\", "
                               "\"exit_code\": 1}\n");
            } else {
                std::printf("MISSING: %s present in baseline only\n",
                            name.c_str());
            }
            worst = std::max(worst, 1);
            continue;
        }
        std::string doc;
        const int rc = diffFiles(paths[0] + "/" + name,
                                 paths[1] + "/" + name, opts,
                                 json ? &doc : nullptr);
        if (json)
            docs.push_back(std::move(doc));
        worst = std::max(worst, rc);
    }
    for (const auto &name : curNames) {
        if (std::find(baseNames.begin(), baseNames.end(), name) ==
            baseNames.end()) {
            if (!json)
                std::printf("note: %s is new (no baseline)\n",
                            name.c_str());
        }
    }
    if (json) {
        std::fputs("[\n", stdout);
        for (std::size_t i = 0; i < docs.size(); ++i) {
            std::fputs(docs[i].c_str(), stdout);
            if (i + 1 < docs.size())
                std::fputs(",\n", stdout);
        }
        std::fputs("]\n", stdout);
    }
    return worst;
}
