/**
 * @file
 * rrs-teleview: summarize telemetry sweep traces on the terminal.
 *
 *   rrs-teleview [--spans] <trace.json|dir>...
 *
 * Each argument is a `*.trace.json` file written by a sweep under
 * RRS_TELEMETRY, or a directory of them.  For every trace the tool
 * prints the process title, the per-run track list (tid, title, run
 * span length in cycles, counter sample count) and the sweep track's
 * capture/merge spans — a quick triage view without loading Perfetto.
 * `--spans` additionally lists every span event per track.
 *
 * Exit status: 0 on success, 2 on unreadable or malformed input.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <tuple>

#include "obs/jsonlite.hh"
#include "obs/telemetry.hh"

namespace {

namespace fs = std::filesystem;
using rrs::obs::json::Value;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--spans] <trace.json|dir>...\n"
                 "  summarize telemetry traces written under "
                 "RRS_TELEMETRY\n",
                 argv0);
    std::exit(2);
}

/** One reconstructed track of a trace file. */
struct Track
{
    std::string name;           //!< thread_name metadata (may be "")
    std::uint64_t spans = 0;
    std::uint64_t counterSamples = 0;
    std::uint64_t maxEndTs = 0; //!< max span ts+dur on this track
    std::vector<std::string> spanLines;
};

std::string
describeArgs(const Value &ev)
{
    const Value *args = ev.find("args");
    if (!args || args->members.empty())
        return "";
    std::ostringstream os;
    os << " {";
    bool first = true;
    for (const auto &[key, v] : args->members) {
        if (!first)
            os << ", ";
        first = false;
        os << key << "=";
        if (v.isString())
            os << v.str;
        else if (v.isNumber())
            os << v.num;
        else
            os << "?";
    }
    os << "}";
    return os.str();
}

int
summarizeTrace(const std::string &path, bool listSpans)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
        return 2;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    Value doc;
    std::string error;
    if (!rrs::obs::json::parse(buf.str(), doc, &error)) {
        std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                     error.c_str());
        return 2;
    }
    const Value *events = doc.find("traceEvents");
    if (!events || !events->isArray()) {
        std::fprintf(stderr, "error: %s: no traceEvents array\n",
                     path.c_str());
        return 2;
    }

    std::string processName;
    std::map<std::uint64_t, Track> tracks;   // keyed by tid, sorted
    for (const Value &ev : events->arr) {
        const Value *ph = ev.find("ph");
        if (!ph || !ph->isString())
            continue;
        const Value *tidV = ev.find("tid");
        const std::uint64_t tid =
            tidV && tidV->isNumber()
                ? static_cast<std::uint64_t>(tidV->num)
                : 0;
        const Value *nameV = ev.find("name");
        const std::string name =
            nameV && nameV->isString() ? nameV->str : "";

        if (ph->str == "M") {
            const Value *args = ev.find("args");
            const Value *n = args ? args->find("name") : nullptr;
            if (name == "process_name" && n)
                processName = n->str;
            else if (name == "thread_name" && n)
                tracks[tid].name = n->str;
        } else if (ph->str == "X") {
            Track &t = tracks[tid];
            ++t.spans;
            const Value *ts = ev.find("ts");
            const Value *dur = ev.find("dur");
            const std::uint64_t end =
                (ts && ts->isNumber()
                     ? static_cast<std::uint64_t>(ts->num)
                     : 0) +
                (dur && dur->isNumber()
                     ? static_cast<std::uint64_t>(dur->num)
                     : 0);
            t.maxEndTs = std::max(t.maxEndTs, end);
            if (listSpans) {
                std::ostringstream os;
                os << "      " << name << " ts="
                   << (ts ? ts->num : 0.0) << " dur="
                   << (dur ? dur->num : 0.0) << describeArgs(ev);
                t.spanLines.push_back(os.str());
            }
        } else if (ph->str == "C") {
            ++tracks[tid].counterSamples;
        }
    }

    std::printf("%s\n", path.c_str());
    if (!processName.empty())
        std::printf("  process: %s\n", processName.c_str());
    std::printf("  tracks: %zu, events: %zu\n", tracks.size(),
                events->arr.size());
    for (const auto &[tid, t] : tracks) {
        std::printf("    tid %-4llu %-40s spans %4llu  counter "
                    "samples %6llu  span end %llu\n",
                    static_cast<unsigned long long>(tid),
                    t.name.empty() ? "(unnamed)" : t.name.c_str(),
                    static_cast<unsigned long long>(t.spans),
                    static_cast<unsigned long long>(t.counterSamples),
                    static_cast<unsigned long long>(t.maxEndTs));
        for (const auto &line : t.spanLines)
            std::printf("%s\n", line.c_str());
    }
    return 0;
}

/**
 * Expand an argument to trace files (a file stays itself).  Sweep
 * traces sort by label then *numeric* sweep index — a lexicographic
 * sort would list `x_sweep10` before `x_sweep2`; files that are not
 * sweep traces sort lexicographically after parseable ones with the
 * same prefix.
 */
std::vector<std::string>
traceFiles(const std::string &arg)
{
    if (!fs::is_directory(arg))
        return {arg};
    std::vector<std::string> out;
    for (const auto &e : fs::directory_iterator(arg)) {
        const std::string name = e.path().filename().string();
        if (e.is_regular_file() && name.size() > 11 &&
            name.compare(name.size() - 11, 11, ".trace.json") == 0) {
            out.push_back(e.path().string());
        }
    }
    auto key = [](const std::string &path) {
        const std::string name = fs::path(path).filename().string();
        std::string label;
        std::uint64_t seq = 0;
        if (!rrs::obs::parseSweepTraceName(name, label, seq)) {
            label = name;
            seq = 0;
        }
        return std::make_tuple(label, seq, path);
    };
    std::sort(out.begin(), out.end(),
              [&key](const std::string &a, const std::string &b) {
                  return key(a) < key(b);
              });
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bool listSpans = false;
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--spans") == 0)
            listSpans = true;
        else if (std::strcmp(argv[i], "--help") == 0 ||
                 std::strcmp(argv[i], "-h") == 0)
            usage(argv[0]);
        else
            args.emplace_back(argv[i]);
    }
    if (args.empty())
        usage(argv[0]);

    int worst = 0;
    std::size_t shown = 0;
    for (const auto &arg : args) {
        for (const auto &path : traceFiles(arg)) {
            worst = std::max(worst, summarizeTrace(path, listSpans));
            ++shown;
        }
    }
    if (shown == 0) {
        std::fprintf(stderr, "error: no .trace.json files found\n");
        return 2;
    }
    return worst;
}
