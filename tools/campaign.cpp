/**
 * @file
 * rrs-campaign: execute a campaign manifest against an experiment
 * ledger (harness/campaign.hh, DESIGN §4j).
 *
 *   rrs-campaign run --manifest <file> [options]
 *
 * Plans the manifest's node DAG, skips every node whose content digest
 * already has a ledger entry, simulates the rest through one parallel
 * sweep, and rewrites the campaign.json sidecar.  Re-running after an
 * interrupt (or an unrelated code change) is incremental; a clean
 * re-run simulates nothing and reports 100% ledger hits.
 *
 * Options:
 *   --manifest <file>       the campaign manifest (required)
 *   --ledger <dir>          ledger directory (default: RRS_LEDGER_DIR)
 *   --cap <insts>           override every per-run instruction cap
 *   --max-new-nodes <n>     simulate at most n missing nodes, then stop
 *                           (deterministic interrupt; re-run to resume)
 *   --threads <n>           sweep lanes (default: RRS_THREADS/hardware)
 *
 * Exit status: 0 on success (including a partial --max-new-nodes run),
 * 2 on a bad manifest or unusable ledger directory.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "harness/campaign.hh"

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s run --manifest <file> [--ledger <dir>] "
                 "[--cap <insts>] [--max-new-nodes <n>] "
                 "[--threads <n>]\n"
                 "  --ledger defaults to the RRS_LEDGER_DIR "
                 "environment variable\n",
                 argv0);
    std::exit(2);
}

std::uint64_t
parsePositive(const char *argv0, const char *flag, const char *text)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || v == 0) {
        std::fprintf(stderr, "error: %s must be a positive integer, "
                             "got '%s'\n", flag, text);
        usage(argv0);
    }
    return static_cast<std::uint64_t>(v);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string manifestPath;
    std::string ledgerDir;
    if (const char *env = std::getenv("RRS_LEDGER_DIR"))
        ledgerDir = env;
    rrs::harness::CampaignOptions opts;

    bool sawRun = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "run") == 0 && !sawRun) {
            sawRun = true;
        } else if (std::strcmp(argv[i], "--manifest") == 0) {
            if (i + 1 >= argc)
                usage(argv[0]);
            manifestPath = argv[++i];
        } else if (std::strcmp(argv[i], "--ledger") == 0) {
            if (i + 1 >= argc)
                usage(argv[0]);
            ledgerDir = argv[++i];
        } else if (std::strcmp(argv[i], "--cap") == 0) {
            if (i + 1 >= argc)
                usage(argv[0]);
            opts.capOverride =
                parsePositive(argv[0], "--cap", argv[++i]);
        } else if (std::strcmp(argv[i], "--max-new-nodes") == 0) {
            if (i + 1 >= argc)
                usage(argv[0]);
            opts.maxNewNodes = static_cast<std::size_t>(
                parsePositive(argv[0], "--max-new-nodes", argv[++i]));
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            if (i + 1 >= argc)
                usage(argv[0]);
            opts.threads = static_cast<unsigned>(
                parsePositive(argv[0], "--threads", argv[++i]));
        } else {
            usage(argv[0]);
        }
    }
    if (!sawRun || manifestPath.empty())
        usage(argv[0]);
    if (ledgerDir.empty()) {
        std::fprintf(stderr, "error: no ledger directory (pass "
                             "--ledger or set RRS_LEDGER_DIR)\n");
        return 2;
    }

    const rrs::harness::CampaignManifest manifest =
        rrs::harness::loadCampaignManifestFile(manifestPath);
    const rrs::harness::Ledger ledger(ledgerDir);
    const rrs::harness::CampaignResult result =
        rrs::harness::runCampaign(manifest, ledger, opts, std::cout);

    // The grep-able receipt: a warm ledger reports 100% hits.
    const double hitPct =
        result.totalNodes
            ? 100.0 * static_cast<double>(result.hits) /
                  static_cast<double>(result.totalNodes)
            : 100.0;
    std::printf("ledger: %zu/%zu hits (%.0f%%), %zu simulated, "
                "%zu deferred\n",
                result.hits, result.totalNodes, hitPct,
                result.simulated, result.remaining);
    std::printf("sidecar: %s\n", result.sidecarPath.c_str());
    return 0;
}
