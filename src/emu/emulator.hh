/**
 * @file
 * Functional emulator for the rrsim ISA.
 *
 * Executes an assembled Program architecturally (no timing), producing
 * the dynamic instruction stream the timing model consumes.  Memory is
 * a sparse paged store; unmapped pages read as zero, so programs can use
 * BSS-style data without explicit initialisation.
 */

#ifndef RRS_EMU_EMULATOR_HH
#define RRS_EMU_EMULATOR_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "isa/program.hh"
#include "trace/dyninst.hh"

namespace rrs::emu {

/** Sparse byte-addressable memory with 4 KiB pages. */
class SparseMemory
{
  public:
    static constexpr Addr pageBytes = 4096;

    /** Read size bytes (1/4/8), little endian, zero for unmapped. */
    std::uint64_t read(Addr addr, unsigned size) const;

    /** Write size bytes (1/4/8), little endian. */
    void write(Addr addr, std::uint64_t value, unsigned size);

    /** Number of mapped pages (for tests / footprint reporting). */
    std::size_t mappedPages() const { return pages.size(); }

    /**
     * FNV-1a digest over all mapped pages in ascending address order.
     * Page iteration is sorted first, so the digest is a pure function
     * of memory *contents*, independent of the order pages were
     * touched — two memories that compare byte-equal digest equal.
     * Used by the lockstep oracle tests to compare a timing run's
     * final memory against the functional emulator's.
     */
    std::uint64_t digest() const;

  private:
    using Page = std::array<std::uint8_t, pageBytes>;

    const Page *findPage(Addr addr) const;
    Page &touchPage(Addr addr);

    std::unordered_map<Addr, std::unique_ptr<Page>> pages;
};

/**
 * The architectural execution engine.  Also implements InstStream so a
 * timing simulation can pull the dynamic trace directly; reset()
 * restores the initial architectural state so the same workload can be
 * replayed for every configuration of a sweep.
 */
class Emulator : public trace::InstStream
{
  public:
    /**
     * @param prog assembled program (must outlive the emulator)
     * @param name workload label used in reports
     * @param maxInsts stream length cap; the stream ends after this
     *        many instructions even if the program has not halted
     */
    Emulator(const isa::Program &prog, std::string name,
             std::uint64_t maxInsts = UINT64_MAX);

    /** Execute one instruction; false once halted or capped. */
    bool step(trace::DynInst &out);

    /** Run to completion (or the cap); returns instructions executed. */
    std::uint64_t run();

    /**
     * Record hook: called with every instruction the stream emits —
     * the single capture point for trace recording, so consumers never
     * have to pull the emulator live themselves.  Fast-forwarded
     * (warmup) instructions are not emitted and therefore not
     * recorded.  Empty function disables.
     */
    using RecordHook = std::function<void(const trace::DynInst &)>;
    void setRecordHook(RecordHook hook) { recordHook = std::move(hook); }

    // InstStream interface.
    std::optional<trace::DynInst> next() override;
    void reset() override;
    const std::string &name() const override { return label; }

    /** True once a Halt has executed or the cap was reached. */
    bool halted() const { return isHalted; }

    /** Architectural integer register read (x31 reads zero). */
    std::uint64_t intReg(LogRegIndex idx) const;

    /** Architectural fp register read. */
    double fpReg(LogRegIndex idx) const { return fregs[idx]; }

    /** Direct memory access for tests and result checking. */
    SparseMemory &memory() { return mem; }
    const SparseMemory &memory() const { return mem; }

    /** Instructions executed so far. */
    std::uint64_t instCount() const { return icount; }

    /** Current architectural PC. */
    Addr currentPc() const { return pc; }

    /** Adjust the stream-length cap (absolute instruction count). */
    void setMaxInsts(std::uint64_t cap) { maxInsts = cap; }

    /**
     * Fast-forward (execute without emitting) until the PC reaches
     * `target` or `cap` instructions have executed.  Used to skip
     * initialisation phases before timing measurement begins.
     * @return instructions skipped
     */
    std::uint64_t fastForwardTo(Addr target, std::uint64_t cap);

  private:
    void writeIntReg(LogRegIndex idx, std::uint64_t value);
    void loadImage();

    const isa::Program &prog;
    std::string label;
    std::uint64_t maxInsts;
    RecordHook recordHook;

    std::array<std::uint64_t, isa::numLogRegs> xregs{};
    std::array<double, isa::numLogRegs> fregs{};
    Addr pc = 0;
    bool isHalted = false;
    std::uint64_t icount = 0;
    SparseMemory mem;
};

} // namespace rrs::emu

#endif // RRS_EMU_EMULATOR_HH
