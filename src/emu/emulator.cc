#include "emulator.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/logging.hh"

namespace rrs::emu {

using isa::Opcode;

const SparseMemory::Page *
SparseMemory::findPage(Addr addr) const
{
    auto it = pages.find(addr / pageBytes);
    return it == pages.end() ? nullptr : it->second.get();
}

SparseMemory::Page &
SparseMemory::touchPage(Addr addr)
{
    auto &slot = pages[addr / pageBytes];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

std::uint64_t
SparseMemory::read(Addr addr, unsigned size) const
{
    rrs_assert(size == 1 || size == 4 || size == 8, "bad access size");
    std::uint64_t v = 0;
    for (unsigned b = 0; b < size; ++b) {
        Addr a = addr + b;
        const Page *page = findPage(a);
        std::uint8_t byte = page ? (*page)[a % pageBytes] : 0;
        v |= static_cast<std::uint64_t>(byte) << (8 * b);
    }
    return v;
}

void
SparseMemory::write(Addr addr, std::uint64_t value, unsigned size)
{
    rrs_assert(size == 1 || size == 4 || size == 8, "bad access size");
    for (unsigned b = 0; b < size; ++b) {
        Addr a = addr + b;
        touchPage(a)[a % pageBytes] =
            static_cast<std::uint8_t>(value >> (8 * b));
    }
}

std::uint64_t
SparseMemory::digest() const
{
    std::vector<Addr> pageNums;
    pageNums.reserve(pages.size());
    for (const auto &[num, page] : pages)
        pageNums.push_back(num);
    std::sort(pageNums.begin(), pageNums.end());

    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto fold = [&h](std::uint8_t byte) {
        h ^= byte;
        h *= 0x100000001b3ULL;
    };
    for (Addr num : pageNums) {
        const Page &page = *pages.at(num);
        // An all-zero page is indistinguishable from an unmapped one
        // to read(); skip it so the digest matches that equivalence.
        bool allZero = true;
        for (std::uint8_t byte : page) {
            if (byte != 0) {
                allZero = false;
                break;
            }
        }
        if (allZero)
            continue;
        for (unsigned b = 0; b < 8; ++b)
            fold(static_cast<std::uint8_t>(num >> (8 * b)));
        for (std::uint8_t byte : page)
            fold(byte);
    }
    return h;
}

Emulator::Emulator(const isa::Program &prog, std::string name,
                   std::uint64_t maxInsts)
    : prog(prog), label(std::move(name)), maxInsts(maxInsts)
{
    loadImage();
}

void
Emulator::loadImage()
{
    xregs.fill(0);
    fregs.fill(0.0);
    // Stack pointer convention: x28.
    xregs[28] = isa::stackBase;
    pc = prog.entry;
    isHalted = prog.text.empty();
    icount = 0;
    for (const auto &chunk : prog.data) {
        for (std::size_t i = 0; i < chunk.bytes.size(); ++i)
            mem.write(chunk.addr + i, chunk.bytes[i], 1);
    }
}

void
Emulator::reset()
{
    mem = SparseMemory();
    loadImage();
}

std::uint64_t
Emulator::intReg(LogRegIndex idx) const
{
    return idx == isa::zeroReg ? 0 : xregs[idx];
}

void
Emulator::writeIntReg(LogRegIndex idx, std::uint64_t value)
{
    if (idx != isa::zeroReg)
        xregs[idx] = value;
}

std::optional<trace::DynInst>
Emulator::next()
{
    trace::DynInst di;
    if (!step(di))
        return std::nullopt;
    return di;
}

std::uint64_t
Emulator::fastForwardTo(Addr target, std::uint64_t cap)
{
    // Warmup instructions are executed but never emitted, so the
    // record hook must not see them either.
    RecordHook saved = std::move(recordHook);
    recordHook = nullptr;
    std::uint64_t skipped = 0;
    trace::DynInst di;
    while (pc != target && skipped < cap && step(di))
        ++skipped;
    recordHook = std::move(saved);
    return skipped;
}

std::uint64_t
Emulator::run()
{
    trace::DynInst di;
    while (step(di)) {
    }
    return icount;
}

bool
Emulator::step(trace::DynInst &out)
{
    if (isHalted || icount >= maxInsts) {
        isHalted = true;
        return false;
    }
    if (!prog.validPc(pc))
        rrs_fatal("%s: pc 0x%llx outside text segment", label.c_str(),
                  static_cast<unsigned long long>(pc));

    const isa::StaticInst &si = prog.instAt(pc);
    out = trace::DynInst{};
    out.seq = icount;
    out.pc = pc;
    out.si = si;

    Addr next_pc = pc + isa::instBytes;

    auto x = [&](int s) {
        return intReg(si.srcs[static_cast<std::size_t>(s)].idx);
    };
    auto f = [&](int s) {
        return fregs[si.srcs[static_cast<std::size_t>(s)].idx];
    };
    auto setX = [&](std::uint64_t v) { writeIntReg(si.dest.idx, v); };
    auto setF = [&](double v) { fregs[si.dest.idx] = v; };
    auto sx = [&](int s) { return static_cast<std::int64_t>(x(s)); };

    switch (si.op) {
      case Opcode::Add: setX(x(0) + x(1)); break;
      case Opcode::Sub: setX(x(0) - x(1)); break;
      case Opcode::Mul: setX(x(0) * x(1)); break;
      case Opcode::Div:
        // ARM semantics: division by zero yields zero.
        setX(x(1) == 0 ? 0
                       : static_cast<std::uint64_t>(sx(0) / sx(1)));
        break;
      case Opcode::Rem:
        setX(x(1) == 0 ? x(0)
                       : static_cast<std::uint64_t>(sx(0) % sx(1)));
        break;
      case Opcode::And: setX(x(0) & x(1)); break;
      case Opcode::Orr: setX(x(0) | x(1)); break;
      case Opcode::Eor: setX(x(0) ^ x(1)); break;
      case Opcode::Lsl: setX(x(0) << (x(1) & 63)); break;
      case Opcode::Lsr: setX(x(0) >> (x(1) & 63)); break;
      case Opcode::Asr: setX(static_cast<std::uint64_t>(sx(0) >>
                             (x(1) & 63))); break;
      case Opcode::Slt: setX(sx(0) < sx(1) ? 1 : 0); break;
      case Opcode::Sltu: setX(x(0) < x(1) ? 1 : 0); break;
      case Opcode::Addi: setX(x(0) + static_cast<std::uint64_t>(si.imm));
        break;
      case Opcode::Subi: setX(x(0) - static_cast<std::uint64_t>(si.imm));
        break;
      case Opcode::Muli: setX(x(0) * static_cast<std::uint64_t>(si.imm));
        break;
      case Opcode::Andi: setX(x(0) & static_cast<std::uint64_t>(si.imm));
        break;
      case Opcode::Orri: setX(x(0) | static_cast<std::uint64_t>(si.imm));
        break;
      case Opcode::Eori: setX(x(0) ^ static_cast<std::uint64_t>(si.imm));
        break;
      case Opcode::Lsli: setX(x(0) << (si.imm & 63)); break;
      case Opcode::Lsri: setX(x(0) >> (si.imm & 63)); break;
      case Opcode::Asri:
        setX(static_cast<std::uint64_t>(sx(0) >> (si.imm & 63)));
        break;
      case Opcode::Slti: setX(sx(0) < si.imm ? 1 : 0); break;
      case Opcode::Mov: setX(x(0)); break;
      case Opcode::Movz: setX(static_cast<std::uint64_t>(si.imm)); break;

      case Opcode::Ldr:
      case Opcode::Ldrw:
      case Opcode::Ldrb: {
        Addr ea = x(0) + static_cast<std::uint64_t>(si.imm);
        out.effAddr = ea;
        setX(mem.read(ea, si.info().memBytes));
        break;
      }
      case Opcode::Fldr: {
        Addr ea = x(0) + static_cast<std::uint64_t>(si.imm);
        out.effAddr = ea;
        std::uint64_t raw = mem.read(ea, 8);
        double d;
        std::memcpy(&d, &raw, sizeof(d));
        setF(d);
        break;
      }
      case Opcode::Str:
      case Opcode::Strw:
      case Opcode::Strb: {
        Addr ea = x(1) + static_cast<std::uint64_t>(si.imm);
        out.effAddr = ea;
        mem.write(ea, x(0), si.info().memBytes);
        break;
      }
      case Opcode::Fstr: {
        Addr ea = x(1) + static_cast<std::uint64_t>(si.imm);
        out.effAddr = ea;
        double d = f(0);
        std::uint64_t raw;
        std::memcpy(&raw, &d, sizeof(raw));
        mem.write(ea, raw, 8);
        break;
      }

      case Opcode::Beq: out.taken = x(0) == x(1); break;
      case Opcode::Bne: out.taken = x(0) != x(1); break;
      case Opcode::Blt: out.taken = sx(0) < sx(1); break;
      case Opcode::Bge: out.taken = sx(0) >= sx(1); break;
      case Opcode::Bltu: out.taken = x(0) < x(1); break;
      case Opcode::Bgeu: out.taken = x(0) >= x(1); break;
      case Opcode::B: out.taken = true; break;
      case Opcode::Bl:
        out.taken = true;
        setX(pc + isa::instBytes);
        break;
      case Opcode::Ret:
        out.taken = true;
        next_pc = x(0);
        break;
      case Opcode::Br:
        out.taken = true;
        next_pc = x(0);
        break;

      case Opcode::Fadd: setF(f(0) + f(1)); break;
      case Opcode::Fsub: setF(f(0) - f(1)); break;
      case Opcode::Fmul: setF(f(0) * f(1)); break;
      case Opcode::Fdiv: setF(f(0) / f(1)); break;
      case Opcode::Fsqrt: setF(std::sqrt(f(0))); break;
      case Opcode::Fmin: setF(std::fmin(f(0), f(1))); break;
      case Opcode::Fmax: setF(std::fmax(f(0), f(1))); break;
      case Opcode::Fneg: setF(-f(0)); break;
      case Opcode::Fabs: setF(std::fabs(f(0))); break;
      case Opcode::Fmadd: setF(f(0) * f(1) + f(2)); break;
      case Opcode::Fmov: setF(f(0)); break;
      case Opcode::Fmovi: setF(si.fimm); break;
      case Opcode::Fcvt: setF(static_cast<double>(sx(0))); break;
      case Opcode::Fcvti:
        setX(static_cast<std::uint64_t>(static_cast<std::int64_t>(f(0))));
        break;
      case Opcode::Feq: setX(f(0) == f(1) ? 1 : 0); break;
      case Opcode::Flt: setX(f(0) < f(1) ? 1 : 0); break;
      case Opcode::Fle: setX(f(0) <= f(1) ? 1 : 0); break;

      case Opcode::Nop: break;
      case Opcode::Halt: isHalted = true; break;
      case Opcode::NumOpcodes: rrs_panic("invalid opcode");
    }

    if (si.control() && si.branchKind() != isa::BranchKind::Return &&
        si.branchKind() != isa::BranchKind::Indirect && out.taken) {
        next_pc = si.target;
    }

    out.nextPc = next_pc;
    pc = next_pc;
    ++icount;
    if (recordHook)
        recordHook(out);
    // The Halt instruction itself is still part of the stream; the next
    // call observes isHalted and ends it.
    return true;
}

} // namespace rrs::emu
