/**
 * @file
 * Campaign manifests: the whole reproduction — every figure and table,
 * over every scheme and sampling mode — declared as one JSON document
 * and executed as a resumable DAG of ledger nodes (DESIGN §4j).
 *
 * Manifest grammar (same parse-time-diagnostic discipline as the sweep
 * matrices it embeds):
 *
 *     {
 *       "name": "hpca18-repro",
 *       "cap": 150000,
 *       "figures": [
 *         {"figure": "fig11", "kind": "fig11",
 *          "matrix": { ...a sweepmatrix document... }},
 *         {"figure": "fig10", "kind": "fig10",
 *          "matrix": { ... }},
 *         {"figure": "table3", "kind": "table3",
 *          "sizes": [48, 56, 64, 72, 80, 96, 112]}
 *       ]
 *     }
 *
 * Kinds: "fig11" (geomean IPC table) and "fig10" (per-suite speedup
 * tables) take a two-column sweep matrix; "table3" is analytic (the
 * equal-area solver needs no simulation, so it contributes zero
 * nodes).  Every diagnostic — unknown kind, duplicate figure name, a
 * matrix that fails its own validation — is raised at parse time.
 *
 * Planning expands each figure's matrix exactly like expandSweepMatrix
 * (workloads outermost, then sizes, then scheme columns) and computes
 * each cell's ledger digest.  The digest covers the *effective* seed —
 * sweepSeed(base, k) for expansion index k within the figure — and the
 * item pins SweepItem::seedIndex to that same k, so a resumed campaign
 * that re-submits only missing nodes reproduces the full run's seeds
 * bit for bit.  Figures that expand to the same cells (fig10 and fig11
 * over one matrix) share digests and therefore simulations.
 *
 * Campaign workload selection ignores the bench-side --suite/--workload
 * filters by design: a manifest names its full set (via each matrix's
 * "suite" member), and a campaign is only comparable to another run of
 * the same manifest.
 */

#ifndef RRS_HARNESS_CAMPAIGN_HH
#define RRS_HARNESS_CAMPAIGN_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "harness/ledger.hh"
#include "harness/sweepmatrix.hh"

namespace rrs::harness {

/** Bump when the campaign.json sidecar layout changes. */
constexpr int campaignSchemaVersion = 1;

/** One declared figure/table of a campaign. */
struct CampaignFigure
{
    enum class Kind { Fig10, Fig11, Table3 };

    std::string name;                 //!< unique within the manifest
    Kind kind = Kind::Fig11;
    SweepMatrix matrix;               //!< fig10/fig11 kinds
    std::vector<std::uint32_t> sizes; //!< table3 kind
};

/** A parsed campaign manifest. */
struct CampaignManifest
{
    std::string name;
    std::uint64_t cap = 0;     //!< default per-run cap; 0: harness default
    std::vector<CampaignFigure> figures;
};

/** The stable kind string ("fig10"/"fig11"/"table3"). */
const char *campaignKindName(CampaignFigure::Kind kind);

/**
 * Parse and validate a manifest document.
 * @return false with a diagnostic in `error`; `out` untouched then.
 */
bool tryParseCampaignManifest(const std::string &text,
                              CampaignManifest &out, std::string &error);

/** Load and parse a manifest file, rrs_fatal on any diagnostic. */
CampaignManifest loadCampaignManifestFile(const std::string &path);

/** Execution knobs for runCampaign. */
struct CampaignOptions
{
    /**
     * Overrides every per-run instruction cap (manifest and matrix
     * alike) when non-zero — the CI smoke knob, like bench --cap.
     * Different caps produce disjoint digests, so a capped smoke
     * ledger can never pollute a full-length one.
     */
    std::uint64_t capOverride = 0;

    /**
     * Stop after simulating this many new nodes (already-present nodes
     * still count as hits).  The deterministic interrupt seam the
     * resumability tests use; default: unlimited.
     */
    std::size_t maxNewNodes = ~static_cast<std::size_t>(0);

    unsigned threads = 0;      //!< sweep lanes; 0: RRS_THREADS/hardware
};

/** One planned (not yet necessarily simulated) ledger node. */
struct PlannedNode
{
    NodeSpec spec;
    SweepItem item;            //!< ready to run; seedIndex pinned
};

/** The expanded DAG of a manifest. */
struct CampaignPlan
{
    struct FigurePlan
    {
        const CampaignFigure *figure = nullptr;

        /** Workload (name, suite) rows, in expansion (outer) order. */
        std::vector<std::pair<std::string, std::string>> workloads;

        /** Scheme display labels, in matrix column order. */
        std::vector<std::string> schemeLabels;

        std::vector<std::uint32_t> sizes;

        /**
         * Node digests, flat in expansion order: workload-major, then
         * size, then scheme column.  Empty for analytic kinds.
         */
        std::vector<std::string> digests;
    };
    std::vector<FigurePlan> figures;

    /** Unique digests in first-appearance order (execution order). */
    std::vector<std::string> order;
    std::map<std::string, PlannedNode> nodes;
};

/** Expand a manifest into its node DAG (no simulation, no I/O). */
CampaignPlan planCampaign(const CampaignManifest &m,
                          const CampaignOptions &opts);

/** What one runCampaign call did. */
struct CampaignResult
{
    std::size_t totalNodes = 0;   //!< unique digests in the plan
    std::size_t hits = 0;         //!< already present, skipped
    std::size_t simulated = 0;    //!< newly simulated and stored
    std::size_t remaining = 0;    //!< left out by maxNewNodes
    std::string sidecarPath;      //!< the campaign.json written

    bool complete() const { return remaining == 0; }
};

/**
 * Execute a manifest against a ledger: plan, skip every digest the
 * ledger already has, simulate the missing nodes through one parallel
 * sweep, store each result atomically, and write the campaign.json
 * sidecar (figure descriptors + host context) into the ledger
 * directory.  A clean re-run therefore simulates nothing and reports
 * hits == totalNodes.
 */
CampaignResult runCampaign(const CampaignManifest &m, const Ledger &ledger,
                           const CampaignOptions &opts, std::ostream &os);

} // namespace rrs::harness

#endif // RRS_HARNESS_CAMPAIGN_HH
