#include "figures.hh"

#include <cstdio>
#include <sstream>

#include "common/logging.hh"
#include "stats/table.hh"

namespace rrs::harness {

std::vector<std::vector<std::vector<Outcome>>>
matrixOutcomeGrid(SweepRunner &runner,
                  const std::vector<workloads::Workload> &ws,
                  const SweepMatrix &m, std::uint64_t capDefault)
{
    auto outs = runner.outcomes(expandSweepMatrix(m, ws, capDefault));
    std::vector<std::vector<std::vector<Outcome>>> grid(ws.size());
    std::size_t k = 0;
    for (std::size_t wi = 0; wi < ws.size(); ++wi) {
        grid[wi].resize(m.rfSizes.size());
        for (std::size_t si = 0; si < m.rfSizes.size(); ++si) {
            auto &cell = grid[wi][si];
            cell.reserve(m.schemes.size());
            for (std::size_t ci = 0; ci < m.schemes.size(); ++ci)
                cell.push_back(std::move(outs[k++]));
        }
    }
    return grid;
}

std::vector<std::vector<OutcomePair>>
outcomePairGrid(SweepRunner &runner,
                const std::vector<workloads::Workload> &ws,
                const SweepMatrix &m, std::uint64_t capDefault)
{
    if (m.schemes.size() != 2)
        rrs_fatal("outcomePairGrid needs a 2-column matrix "
                  "(base, proposed); this one has %zu columns",
                  m.schemes.size());
    auto grid = matrixOutcomeGrid(runner, ws, m, capDefault);
    std::vector<std::vector<OutcomePair>> pairs(ws.size());
    for (std::size_t wi = 0; wi < ws.size(); ++wi) {
        pairs[wi].resize(m.rfSizes.size());
        for (std::size_t si = 0; si < m.rfSizes.size(); ++si) {
            pairs[wi][si].base = std::move(grid[wi][si][0]);
            pairs[wi][si].prop = std::move(grid[wi][si][1]);
        }
    }
    return pairs;
}

std::string
renderFig11(const std::vector<std::uint32_t> &sizes,
            const std::vector<std::vector<OutcomePair>> &grid)
{
    std::ostringstream os;
    stats::TextTable t({"regs", "baseline IPC", "proposed IPC"});
    std::vector<double> baseIpc, propIpc;
    for (std::size_t si = 0; si < sizes.size(); ++si) {
        std::vector<double> b, p;
        for (std::size_t wi = 0; wi < grid.size(); ++wi) {
            // reportedIpc(): the sampled mean estimate for sampled
            // runs, sim.ipc() (bit-identical to before) for exact ones.
            b.push_back(grid[wi][si].base.reportedIpc());
            p.push_back(grid[wi][si].prop.reportedIpc());
        }
        baseIpc.push_back(geomean(b));
        propIpc.push_back(geomean(p));
        t.row()
            .cell(sizes[si])
            .cell(baseIpc.back(), 3)
            .cell(propIpc.back(), 3);
    }
    t.print(os, "Geomean IPC over all workloads");

    // Crossover analysis: smallest baseline size whose IPC the
    // proposed scheme meets with fewer baseline-equivalent registers.
    for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
        if (propIpc[i] >= baseIpc[i + 1] * 0.995) {
            char line[256];
            std::snprintf(
                line, sizeof(line),
                "\nCrossover: proposed@%u reaches baseline@%u "
                "IPC (%.3f vs %.3f) => ~%.1f%% register "
                "reduction at equal performance.\n",
                sizes[i], sizes[i + 1], propIpc[i], baseIpc[i + 1],
                100.0 * (1.0 - static_cast<double>(sizes[i]) /
                                   static_cast<double>(sizes[i + 1])));
            os << line;
            break;
        }
    }
    os << "\nShape checks: both curves saturate with size; the "
          "proposed curve sits on or above the baseline at every "
          "sweep point below saturation.\n";
    return os.str();
}

std::string
renderTable3(const area::AreaModel &model,
             const std::vector<std::uint32_t> &sizes, unsigned threads)
{
    std::ostringstream os;
    auto solvedAll = solveEqualAreaTable(model, sizes, 64, false,
                                         threads);

    stats::TextTable t({"baseline", "paper banks", "paper area%",
                        "tuned banks", "tuned area%", "solver bank0"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        std::uint32_t n = sizes[i];
        double budget = model.regFileArea(n, 64);
        auto fmt = [](const rename::BankConfig &b) {
            return std::to_string(b[0]) + "+" + std::to_string(b[1]) +
                   "+" + std::to_string(b[2]) + "+" +
                   std::to_string(b[3]);
        };
        rename::BankConfig paper = equalAreaBanks(n, true);
        rename::BankConfig tuned = equalAreaBanks(n, false);
        const rename::BankConfig &solved = solvedAll[i];
        t.row()
            .cell(n)
            .cell(fmt(paper))
            .cell(100.0 * model.bankedRegFileArea(paper, 64) / budget,
                  1)
            .cell(fmt(tuned))
            .cell(100.0 * model.bankedRegFileArea(tuned, 64) / budget,
                  1)
            .cell(solved[0]);
    }
    t.print(os, "Equal-area configurations (area%% = fraction of the "
                "baseline file's area used)");
    os << "\nShape checks: every configuration fits within 100% "
          "of its baseline's area; the solver's bank0 matches the "
          "stored tuned rows.\n";
    return os.str();
}

} // namespace rrs::harness
