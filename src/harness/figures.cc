#include "figures.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"
#include "stats/table.hh"

namespace rrs::harness {

std::vector<std::vector<std::vector<Outcome>>>
matrixOutcomeGrid(SweepRunner &runner,
                  const std::vector<workloads::Workload> &ws,
                  const SweepMatrix &m, std::uint64_t capDefault)
{
    auto outs = runner.outcomes(expandSweepMatrix(m, ws, capDefault));
    std::vector<std::vector<std::vector<Outcome>>> grid(ws.size());
    std::size_t k = 0;
    for (std::size_t wi = 0; wi < ws.size(); ++wi) {
        grid[wi].resize(m.rfSizes.size());
        for (std::size_t si = 0; si < m.rfSizes.size(); ++si) {
            auto &cell = grid[wi][si];
            cell.reserve(m.schemes.size());
            for (std::size_t ci = 0; ci < m.schemes.size(); ++ci)
                cell.push_back(std::move(outs[k++]));
        }
    }
    return grid;
}

std::vector<std::vector<OutcomePair>>
outcomePairGrid(SweepRunner &runner,
                const std::vector<workloads::Workload> &ws,
                const SweepMatrix &m, std::uint64_t capDefault)
{
    if (m.schemes.size() != 2)
        rrs_fatal("outcomePairGrid needs a 2-column matrix "
                  "(base, proposed); this one has %zu columns",
                  m.schemes.size());
    auto grid = matrixOutcomeGrid(runner, ws, m, capDefault);
    std::vector<std::vector<OutcomePair>> pairs(ws.size());
    for (std::size_t wi = 0; wi < ws.size(); ++wi) {
        pairs[wi].resize(m.rfSizes.size());
        for (std::size_t si = 0; si < m.rfSizes.size(); ++si) {
            pairs[wi][si].base = std::move(grid[wi][si][0]);
            pairs[wi][si].prop = std::move(grid[wi][si][1]);
        }
    }
    return pairs;
}

namespace {

/** Does any outcome of a pair grid carry sampled statistics? */
bool
anySampled(const std::vector<std::vector<OutcomePair>> &grid)
{
    for (const auto &row : grid) {
        for (const auto &pair : row) {
            if (pair.base.sampled.enabled || pair.prop.sampled.enabled)
                return true;
        }
    }
    return false;
}

/** Relative 95% CI of one outcome (0 for exact runs). */
double
relCi(const Outcome &o)
{
    return o.sampled.enabled && o.sampled.meanIpc > 0
               ? o.sampled.ci95Ipc / o.sampled.meanIpc
               : 0.0;
}

/** "mean±ci" cell text, both to `decimals` places. */
std::string
pmCell(double mean, double ci, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f±%.*f", decimals, mean,
                  decimals, ci);
    return buf;
}

/**
 * ASCII whisker chart of [mean - ci, mean + ci] intervals on a shared
 * axis: '[' and ']' at the interval ends, '*' at the mean.
 */
std::string
renderWhiskers(const std::vector<std::string> &labels,
               const std::vector<double> &means,
               const std::vector<double> &cis)
{
    double lo = means[0] - cis[0], hi = means[0] + cis[0];
    for (std::size_t i = 1; i < means.size(); ++i) {
        lo = std::min(lo, means[i] - cis[i]);
        hi = std::max(hi, means[i] + cis[i]);
    }
    constexpr int width = 41;
    const double span = hi > lo ? hi - lo : 1.0;
    auto col = [&](double v) {
        int c = static_cast<int>((v - lo) / span * (width - 1) + 0.5);
        return c < 0 ? 0 : (c >= width ? width - 1 : c);
    };
    std::size_t labelWidth = 0;
    for (const auto &l : labels)
        labelWidth = std::max(labelWidth, l.size());

    std::ostringstream os;
    char axis[96];
    std::snprintf(axis, sizeof(axis),
                  "Sampled 95%% CI whiskers (axis %.3f..%.3f):\n", lo,
                  hi);
    os << axis;
    for (std::size_t i = 0; i < means.size(); ++i) {
        std::string bar(width, ' ');
        bar[col(means[i] - cis[i])] = '[';
        bar[col(means[i] + cis[i])] = ']';
        bar[col(means[i])] = '*';
        os << "  " << labels[i]
           << std::string(labelWidth - labels[i].size(), ' ') << " |"
           << bar << "|\n";
    }
    return os.str();
}

} // namespace

std::string
renderFig11(const std::vector<std::uint32_t> &sizes,
            const std::vector<std::vector<OutcomePair>> &grid)
{
    std::ostringstream os;
    const bool sampled = anySampled(grid);
    stats::TextTable t(
        sampled ? std::vector<std::string>{"regs", "baseline IPC",
                                           "±95% CI", "proposed IPC",
                                           "±95% CI"}
                : std::vector<std::string>{"regs", "baseline IPC",
                                           "proposed IPC"});
    std::vector<double> baseIpc, propIpc, baseCi, propCi;
    for (std::size_t si = 0; si < sizes.size(); ++si) {
        std::vector<double> b, p;
        double bRel = 0, pRel = 0;
        for (std::size_t wi = 0; wi < grid.size(); ++wi) {
            // reportedIpc(): the sampled mean estimate for sampled
            // runs, sim.ipc() (bit-identical to before) for exact ones.
            b.push_back(grid[wi][si].base.reportedIpc());
            p.push_back(grid[wi][si].prop.reportedIpc());
            bRel += relCi(grid[wi][si].base);
            pRel += relCi(grid[wi][si].prop);
        }
        baseIpc.push_back(geomean(b));
        propIpc.push_back(geomean(p));
        // The geomean's relative CI is approximated by the mean of its
        // inputs' relative CIs (exact for the log-space average).
        baseCi.push_back(baseIpc.back() * bRel /
                         static_cast<double>(grid.size()));
        propCi.push_back(propIpc.back() * pRel /
                         static_cast<double>(grid.size()));
        if (sampled) {
            t.row()
                .cell(sizes[si])
                .cell(baseIpc.back(), 3)
                .cell(baseCi.back(), 3)
                .cell(propIpc.back(), 3)
                .cell(propCi.back(), 3);
        } else {
            t.row()
                .cell(sizes[si])
                .cell(baseIpc.back(), 3)
                .cell(propIpc.back(), 3);
        }
    }
    t.print(os, "Geomean IPC over all workloads");

    if (sampled) {
        std::vector<std::string> labels;
        std::vector<double> means, cis;
        for (std::size_t si = 0; si < sizes.size(); ++si) {
            labels.push_back(std::to_string(sizes[si]) + " base");
            means.push_back(baseIpc[si]);
            cis.push_back(baseCi[si]);
            labels.push_back(std::to_string(sizes[si]) + " prop");
            means.push_back(propIpc[si]);
            cis.push_back(propCi[si]);
        }
        os << "\n" << renderWhiskers(labels, means, cis);
    }

    // Crossover analysis: smallest baseline size whose IPC the
    // proposed scheme meets with fewer baseline-equivalent registers.
    for (std::size_t i = 0; i + 1 < sizes.size(); ++i) {
        if (propIpc[i] >= baseIpc[i + 1] * 0.995) {
            char line[256];
            std::snprintf(
                line, sizeof(line),
                "\nCrossover: proposed@%u reaches baseline@%u "
                "IPC (%.3f vs %.3f) => ~%.1f%% register "
                "reduction at equal performance.\n",
                sizes[i], sizes[i + 1], propIpc[i], baseIpc[i + 1],
                100.0 * (1.0 - static_cast<double>(sizes[i]) /
                                   static_cast<double>(sizes[i + 1])));
            os << line;
            break;
        }
    }
    os << "\nShape checks: both curves saturate with size; the "
          "proposed curve sits on or above the baseline at every "
          "sweep point below saturation.\n";
    return os.str();
}

std::string
renderFig10(const std::vector<workloads::Workload> &ws,
            const std::vector<std::uint32_t> &sizes,
            const std::vector<std::vector<OutcomePair>> &grid)
{
    std::ostringstream os;
    const bool sampled = anySampled(grid);
    for (const auto &suite : workloads::suiteNames()) {
        // Under --suite / --workload filtering some suites may have no
        // selected members; an unfiltered run always has rows here.
        bool any = false;
        for (const auto &w : ws)
            any = any || w.suite == suite;
        if (!any)
            continue;
        std::vector<std::string> headers = {"workload"};
        for (auto n : sizes)
            headers.push_back(std::to_string(n));
        stats::TextTable t(headers);

        std::vector<std::vector<double>> perSize(sizes.size());
        std::vector<std::vector<double>> perSizeRel(sizes.size());
        for (std::size_t wi = 0; wi < ws.size(); ++wi) {
            if (ws[wi].suite != suite)
                continue;
            t.row().cell(ws[wi].name);
            for (std::size_t i = 0; i < sizes.size(); ++i) {
                const OutcomePair &pair = grid[wi][i];
                if (sampled) {
                    // A sampled pair's cycles cover only the detailed
                    // windows, so the cycle ratio is meaningless; the
                    // speedup is the reported-IPC ratio, with the two
                    // estimates' relative CIs summed.
                    const double s = pair.prop.reportedIpc() /
                                     pair.base.reportedIpc();
                    const double rel =
                        relCi(pair.base) + relCi(pair.prop);
                    t.cell(pmCell(s, s * rel, 3));
                    perSize[i].push_back(s);
                    perSizeRel[i].push_back(rel);
                } else {
                    const double s = pair.speedup();
                    t.cell(s, 3);
                    perSize[i].push_back(s);
                }
            }
        }
        t.row().cell("GEOMEAN");
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            const double g = geomean(perSize[i]);
            if (sampled) {
                double rel = 0;
                for (double r : perSizeRel[i])
                    rel += r;
                rel /= static_cast<double>(perSizeRel[i].size());
                t.cell(pmCell(g, g * rel, 3));
            } else {
                t.cell(g, 3);
            }
        }
        t.print(os, "Suite '" + suite +
                        "': speedup (baseline cycles / proposed "
                        "cycles) at equal area");
        os << "\n";
    }
    os << "Shape checks: geomean speedups are highest at the "
          "small end of the sweep and decay towards 1.0 at 96+ "
          "registers, as in the paper's Figure 10.\n";
    return os.str();
}

std::string
renderTable3(const area::AreaModel &model,
             const std::vector<std::uint32_t> &sizes, unsigned threads)
{
    std::ostringstream os;
    auto solvedAll = solveEqualAreaTable(model, sizes, 64, false,
                                         threads);

    stats::TextTable t({"baseline", "paper banks", "paper area%",
                        "tuned banks", "tuned area%", "solver bank0"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        std::uint32_t n = sizes[i];
        double budget = model.regFileArea(n, 64);
        auto fmt = [](const rename::BankConfig &b) {
            return std::to_string(b[0]) + "+" + std::to_string(b[1]) +
                   "+" + std::to_string(b[2]) + "+" +
                   std::to_string(b[3]);
        };
        rename::BankConfig paper = equalAreaBanks(n, true);
        rename::BankConfig tuned = equalAreaBanks(n, false);
        const rename::BankConfig &solved = solvedAll[i];
        t.row()
            .cell(n)
            .cell(fmt(paper))
            .cell(100.0 * model.bankedRegFileArea(paper, 64) / budget,
                  1)
            .cell(fmt(tuned))
            .cell(100.0 * model.bankedRegFileArea(tuned, 64) / budget,
                  1)
            .cell(solved[0]);
    }
    t.print(os, "Equal-area configurations (area%% = fraction of the "
                "baseline file's area used)");
    os << "\nShape checks: every configuration fits within 100% "
          "of its baseline's area; the solver's bank0 matches the "
          "stored tuned rows.\n";
    return os.str();
}

} // namespace rrs::harness
