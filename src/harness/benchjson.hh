/**
 * @file
 * Versioned machine-readable perf baselines for the bench harness.
 *
 * Every bench can record its sweep into a `BENCH_<bench>.json` file
 * (`--bench-json <dir>` / `RRS_BENCH_JSON`): schema version, git sha,
 * build type, thread count, one row per run (workload, scheme,
 * committed instructions, cycles, IPC, wall), the sweep throughput
 * numbers, the trace-cache counters, the human footer string, and —
 * when the profiler ran — the per-run phase breakdown.
 *
 * The rows split into two classes that the diff treats differently:
 *
 *  - *exact* metrics (instructions, cycles, and the IPC derived from
 *    them) are integer simulation results covered by the sweep
 *    determinism contract: they must match bit-for-bit across thread
 *    counts and machines, so any drift is a regression.
 *  - *noisy* metrics (wall clock, runs/s, Minst/s) are host-dependent;
 *    diffBenchResults() only warns about them unless a threshold is
 *    configured.
 *
 * diffBenchResults() and the rrs-benchdiff tool gate CI on this split:
 * exit 0 clean, 1 on exact drift (or a noisy breach past the
 * threshold), 2 on a schema-version mismatch.
 */

#ifndef RRS_HARNESS_BENCHJSON_HH
#define RRS_HARNESS_BENCHJSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "harness/sweep.hh"

namespace rrs::obs::json {
class Value;
}

namespace rrs::harness {

/**
 * Bump when the BENCH_*.json layout changes incompatibly.
 * v2: run rows may carry a "sampled" object (SMARTS sampled runs,
 * harness/sampling.hh); the diff gates those rows on CI overlap
 * instead of exact insts/cycles equality.
 */
constexpr int benchSchemaVersion = 2;

/** One recorded bench run: the content of BENCH_<bench>.json. */
struct BenchResult
{
    int schemaVersion = benchSchemaVersion;
    std::string bench;          //!< bench name, e.g. "fig11_ipc"
    std::string gitSha;         //!< "unknown" outside a checkout
    std::string buildType;      //!< CMAKE_BUILD_TYPE at compile time
    unsigned threads = 0;

    /** Exact per-run rows, in submission order. */
    std::vector<RunRecord> runs;

    // Exact sweep totals.
    std::uint64_t instsTotal = 0;
    std::uint64_t cyclesTotal = 0;

    // Noisy sweep throughput.
    double wallSeconds = 0;
    double runsPerSec = 0;
    double minstPerSec = 0;

    // Trace-cache traffic (exact: depends only on the sweep set).
    std::uint64_t traceHits = 0;
    std::uint64_t traceMisses = 0;
    std::uint64_t instsCaptured = 0;
    std::uint64_t instsReplayed = 0;

    /** The formatSweepFooter() string the bench printed. */
    std::string footer;

    /**
     * The sweep's metric schema (stats::Group::dumpSchema): one entry
     * per stat, dotted name -> {kind, unit, desc}, pre-rendered as a
     * JSON object.  Lets rrs-benchdiff and the future experiment
     * ledger discover metrics instead of hard-coding their names.
     * Empty renders as {}.
     */
    std::string metricSchema;

    /** One per-run profiler phase (present when RRS_PROF/--prof). */
    struct PhaseRow
    {
        std::string path;       //!< "/"-joined, e.g. "simulate"
        std::uint64_t count = 0;
        double seconds = 0;
        double p50Us = 0;
        double p95Us = 0;
        double maxUs = 0;
    };
    std::vector<PhaseRow> phases;
};

/** Best-effort current commit: GITHUB_SHA, `git rev-parse`, "unknown". */
std::string currentGitSha();

/**
 * Snapshot a finished bench into a BenchResult: the runner's summary,
 * run records and footer, plus sha/build/thread metadata and — when
 * profiling is enabled — the merged per-run phase table.
 */
BenchResult collectBenchResult(const std::string &bench,
                               const SweepRunner &runner);

/** Render as the versioned JSON document. */
std::string renderBenchJson(const BenchResult &r);

/**
 * Render one run row exactly as it appears in a BENCH_*.json "runs"
 * array (the schema-v2 row object, including the "sampled" block for
 * sampled runs).  The experiment ledger (harness/ledger.hh) embeds
 * this same object per node, so the two formats can never diverge.
 */
std::string renderRunRecordJson(const RunRecord &run);

/** Parse a schema-v2 run row (a "runs" element / a ledger "run"). */
void parseRunRecordJson(const obs::json::Value &e, RunRecord &run);

/**
 * The sampled gating rule rrs-benchdiff and the ledger drift section
 * share: two sampled estimates agree when |mean_a - mean_b| does not
 * exceed the sum of their reported 95% CIs.  Anything further apart is
 * an estimator or schedule change, not window-boundary noise.
 */
bool sampledCiOverlap(const SampledSummary &a, const SampledSummary &b);

/** The file name a bench writes: "BENCH_<bench>.json". */
std::string benchJsonFileName(const std::string &bench);

/** Atomic write (tmp+rename; creates parent directories). */
bool tryWriteBenchJson(const std::string &path, const BenchResult &r,
                       std::string &error);

/** Parse a BENCH_*.json back; false + error on malformed input. */
bool loadBenchJson(const std::string &path, BenchResult &out,
                   std::string &error);

/** How diffBenchResults() treats the noisy metrics. */
struct BenchDiffOptions
{
    /**
     * Fail when |throughput delta| exceeds this many percent; negative
     * (the default) means noisy drift only warns.
     */
    double throughputThresholdPct = -1;
    bool markdown = false;      //!< pipe-table output for PR comments
};

/**
 * Compare a current result against a baseline, printing a delta table.
 * @return 0 clean, 1 exact drift (or noisy breach past the threshold),
 *         2 schema-version mismatch.
 */
int diffBenchResults(const BenchResult &base, const BenchResult &cur,
                     const BenchDiffOptions &opts, std::ostream &os);

/**
 * The structured form of a benchdiff: the same verdicts text mode
 * prints, as data.  `rrs-benchdiff --json` renders it so scripts and
 * the campaign report embed results instead of scraping tables.
 */
struct BenchDiffReport
{
    std::string bench;
    std::string baseSha, curSha;
    std::string baseBuild, curBuild;
    int baseSchema = 0, curSchema = 0;
    bool schemaMismatch = false;

    bool runCountMismatch = false;
    std::size_t baseRuns = 0, curRuns = 0;

    /** One exact-metric drift finding (empty list = exact OK). */
    struct DriftRow
    {
        std::string workload;
        std::string scheme;
        std::string metric;     //!< "insts"/"cycles"/"ipc"/"mean_ipc"/...
        std::string baseVal, curVal;
        std::string delta;
    };
    std::vector<DriftRow> exactDrift;

    /** Host-noise metrics, always reported, gated only on request. */
    struct NoisyRow
    {
        std::string name;
        double base = 0, cur = 0;
        double deltaPct = 0;
        bool regression = false;   //!< past the configured threshold
    };
    std::vector<NoisyRow> noisy;

    /** Phase-profile pairs (host wall clock, warn-only).  Negative
     *  seconds mean the side lacks the phase. */
    struct PhasePair
    {
        std::string path;
        double baseSeconds = -1, curSeconds = -1;
        double baseP95Us = -1, curP95Us = -1;
    };
    std::vector<PhasePair> phases;

    int exitCode = 0;   //!< same 0/1/2 contract as diffBenchResults()

    const char *
    verdict() const
    {
        if (schemaMismatch)
            return "schema-mismatch";
        return exitCode == 0 ? "clean" : "drift";
    }
};

/** Compute the diff without rendering (the data behind both modes). */
BenchDiffReport collectBenchDiff(const BenchResult &base,
                                 const BenchResult &cur,
                                 const BenchDiffOptions &opts);

/** Render a diff report as a machine-readable JSON document. */
std::string renderBenchDiffJson(const BenchDiffReport &r);

} // namespace rrs::harness

#endif // RRS_HARNESS_BENCHJSON_HH
