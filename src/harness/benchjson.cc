#include "benchjson.hh"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/atomicfile.hh"
#include "common/logging.hh"
#include "obs/jsonlite.hh"
#include "obs/profiler.hh"

namespace rrs::harness {

namespace {

#ifndef RRS_BUILD_TYPE
#define RRS_BUILD_TYPE "unknown"
#endif

void
appendEscaped(std::string &out, const std::string &s)
{
    for (char ch : s) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(ch));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
}

std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    appendEscaped(out, s);
    out += "\"";
    return out;
}

std::string
jsonNum(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/**
 * Human-facing significant-digit form for diff tables.  Never a
 * substr of the %.17g round-trip form: truncating "5.72e-06" at a
 * fixed width drops the exponent and prints a number a million times
 * too large.
 */
std::string
sigFig(double v, int digits)
{
    if (!std::isfinite(v))
        return "nan";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
    return buf;
}

/** Exact u64 from a jsonlite double (exact up to 2^53 — plenty). */
std::uint64_t
asU64(const obs::json::Value &v)
{
    return static_cast<std::uint64_t>(v.num);
}

/** Percent delta of `cur` vs `base`; 0 when the base is zero. */
double
pctDelta(double base, double cur)
{
    return base != 0 ? 100.0 * (cur - base) / base : 0.0;
}

/** Collect the merged per-run phase table from the profiler. */
void
collectPhases(const obs::PhaseNode &node, const std::string &prefix,
              std::vector<BenchResult::PhaseRow> &out)
{
    const obs::Profiler &prof = obs::Profiler::instance();
    for (const auto &c : node.children) {
        const std::string path =
            prefix.empty() ? c->name : prefix + "/" + c->name;
        BenchResult::PhaseRow row;
        row.path = path;
        row.count = c->count;
        row.seconds = c->seconds;
        row.p50Us = prof.runPercentileUs(path, 50);
        row.p95Us = prof.runPercentileUs(path, 95);
        row.maxUs = prof.runPercentileUs(path, 100);
        out.push_back(std::move(row));
        collectPhases(*c, path, out);
    }
}

/** One row of the diff table, ready for text or markdown layout. */
struct DiffRow
{
    std::string workload;
    std::string scheme;
    std::string metric;
    std::string baseVal;
    std::string curVal;
    std::string delta;
};

void
printDiffTable(std::ostream &os, const std::vector<DiffRow> &rows,
               bool markdown)
{
    if (markdown) {
        os << "| workload | scheme | metric | baseline | current "
           << "| delta |\n"
           << "|---|---|---|---:|---:|---:|\n";
        for (const auto &r : rows) {
            os << "| " << r.workload << " | " << r.scheme << " | "
               << r.metric << " | " << r.baseVal << " | " << r.curVal
               << " | " << r.delta << " |\n";
        }
        return;
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf), "  %-14s %-9s %-9s %14s %14s %12s\n",
                  "workload", "scheme", "metric", "baseline", "current",
                  "delta");
    os << buf;
    for (const auto &r : rows) {
        std::snprintf(buf, sizeof(buf),
                      "  %-14s %-9s %-9s %14s %14s %12s\n",
                      r.workload.c_str(), r.scheme.c_str(),
                      r.metric.c_str(), r.baseVal.c_str(),
                      r.curVal.c_str(), r.delta.c_str());
        os << buf;
    }
}

std::string
u64Str(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
signedDelta(std::uint64_t base, std::uint64_t cur)
{
    const long long d = static_cast<long long>(cur) -
                        static_cast<long long>(base);
    return (d >= 0 ? "+" : "") + std::to_string(d);
}

} // namespace

std::string
currentGitSha()
{
    if (const char *env = std::getenv("GITHUB_SHA"))
        return env;
    // Best effort outside CI; any failure degrades to "unknown".
    if (FILE *p = ::popen("git rev-parse --short=12 HEAD 2>/dev/null",
                          "r")) {
        char buf[64] = {0};
        std::string sha;
        if (std::fgets(buf, sizeof(buf), p))
            sha = buf;
        ::pclose(p);
        while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
            sha.pop_back();
        if (!sha.empty())
            return sha;
    }
    return "unknown";
}

BenchResult
collectBenchResult(const std::string &bench, const SweepRunner &runner)
{
    const SweepSummary &s = runner.summary();
    BenchResult r;
    r.bench = bench;
    r.gitSha = currentGitSha();
    r.buildType = RRS_BUILD_TYPE;
    r.threads = runner.numThreads();
    r.runs = runner.runRecords();
    r.instsTotal = s.instsCommitted;
    r.cyclesTotal = s.cyclesSimulated;
    r.wallSeconds = s.wallSeconds;
    r.runsPerSec = s.runsPerSec();
    r.minstPerSec = s.instsPerSec() / 1e6;
    r.traceHits = s.traceHits;
    r.traceMisses = s.traceMisses;
    r.instsCaptured = s.instsCaptured;
    r.instsReplayed = s.instsReplayed;
    r.footer = formatSweepFooter(s);
    {
        std::ostringstream schema;
        runner.dumpSchema(schema, 2);
        r.metricSchema = schema.str();
    }
    if (obs::Profiler::enabled())
        collectPhases(obs::Profiler::instance().runTree(), "", r.phases);
    return r;
}

std::string
renderRunRecordJson(const RunRecord &run)
{
    std::ostringstream os;
    os << "{\"workload\": " << jsonStr(run.workload) << ", \"scheme\": "
       << jsonStr(run.scheme) << ", \"insts\": " << run.insts
       << ", \"cycles\": " << run.cycles << ", \"ipc\": "
       << jsonNum(run.ipc()) << ", \"wall_seconds\": "
       << jsonNum(run.wallSeconds);
    if (run.sampled.enabled) {
        const SampledSummary &sm = run.sampled;
        os << ", \"sampled\": {\"windows\": " << sm.windows
           << ", \"mean_ipc\": " << jsonNum(sm.meanIpc)
           << ", \"stddev_ipc\": " << jsonNum(sm.stddevIpc)
           << ", \"ci95_ipc\": " << jsonNum(sm.ci95Ipc)
           << ", \"median_ipc\": " << jsonNum(sm.medianIpc)
           << ", \"detailed_insts\": " << sm.detailedInsts
           << ", \"detailed_cycles\": " << sm.detailedCycles
           << ", \"warm_insts\": " << sm.warmInsts
           << ", \"skipped_insts\": " << sm.skippedInsts << "}";
    }
    os << "}";
    return os.str();
}

void
parseRunRecordJson(const obs::json::Value &e, RunRecord &run)
{
    if (const auto *f = e.find("workload"))
        run.workload = f->str;
    if (const auto *f = e.find("scheme"))
        run.scheme = f->str;
    if (const auto *f = e.find("insts"))
        run.insts = asU64(*f);
    if (const auto *f = e.find("cycles"))
        run.cycles = asU64(*f);
    if (const auto *f = e.find("wall_seconds"))
        run.wallSeconds = f->num;
    if (const auto *f = e.find("sampled")) {
        run.sampled.enabled = true;
        if (const auto *s = f->find("windows"))
            run.sampled.windows = asU64(*s);
        if (const auto *s = f->find("mean_ipc"))
            run.sampled.meanIpc = s->num;
        if (const auto *s = f->find("stddev_ipc"))
            run.sampled.stddevIpc = s->num;
        if (const auto *s = f->find("ci95_ipc"))
            run.sampled.ci95Ipc = s->num;
        if (const auto *s = f->find("median_ipc"))
            run.sampled.medianIpc = s->num;
        if (const auto *s = f->find("detailed_insts"))
            run.sampled.detailedInsts = asU64(*s);
        if (const auto *s = f->find("detailed_cycles"))
            run.sampled.detailedCycles = asU64(*s);
        if (const auto *s = f->find("warm_insts"))
            run.sampled.warmInsts = asU64(*s);
        if (const auto *s = f->find("skipped_insts"))
            run.sampled.skippedInsts = asU64(*s);
    }
}

bool
sampledCiOverlap(const SampledSummary &a, const SampledSummary &b)
{
    return std::fabs(a.meanIpc - b.meanIpc) <= a.ci95Ipc + b.ci95Ipc;
}

std::string
renderBenchJson(const BenchResult &r)
{
    std::ostringstream os;
    os << "{\n"
       << "  \"schema_version\": " << r.schemaVersion << ",\n"
       << "  \"bench\": " << jsonStr(r.bench) << ",\n"
       << "  \"git_sha\": " << jsonStr(r.gitSha) << ",\n"
       << "  \"build_type\": " << jsonStr(r.buildType) << ",\n"
       << "  \"threads\": " << r.threads << ",\n"
       << "  \"runs\": [";
    bool first = true;
    for (const auto &run : r.runs) {
        os << (first ? "\n" : ",\n") << "    "
           << renderRunRecordJson(run);
        first = false;
    }
    os << (first ? "" : "\n  ") << "],\n"
       << "  \"totals\": {\"insts\": " << r.instsTotal
       << ", \"cycles\": " << r.cyclesTotal << "},\n"
       << "  \"throughput\": {\"wall_seconds\": "
       << jsonNum(r.wallSeconds) << ", \"runs_per_sec\": "
       << jsonNum(r.runsPerSec) << ", \"minst_per_sec\": "
       << jsonNum(r.minstPerSec) << "},\n"
       << "  \"trace_cache\": {\"hits\": " << r.traceHits
       << ", \"misses\": " << r.traceMisses << ", \"captured_insts\": "
       << r.instsCaptured << ", \"replayed_insts\": " << r.instsReplayed
       << "},\n"
       << "  \"phases\": [";
    first = true;
    for (const auto &ph : r.phases) {
        os << (first ? "\n" : ",\n") << "    {\"path\": "
           << jsonStr(ph.path) << ", \"count\": " << ph.count
           << ", \"seconds\": " << jsonNum(ph.seconds)
           << ", \"p50_us\": " << jsonNum(ph.p50Us) << ", \"p95_us\": "
           << jsonNum(ph.p95Us) << ", \"max_us\": " << jsonNum(ph.maxUs)
           << "}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "],\n"
       << "  \"metric_schema\": "
       << (r.metricSchema.empty() ? "{}" : r.metricSchema) << ",\n"
       << "  \"footer\": " << jsonStr(r.footer) << "\n"
       << "}\n";
    return os.str();
}

std::string
benchJsonFileName(const std::string &bench)
{
    return "BENCH_" + bench + ".json";
}

bool
tryWriteBenchJson(const std::string &path, const BenchResult &r,
                  std::string &error)
{
    return tryWriteFileAtomic(path, renderBenchJson(r), error);
}

bool
loadBenchJson(const std::string &path, BenchResult &out,
              std::string &error)
{
    std::ifstream is(path);
    if (!is) {
        error = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    obs::json::Value doc;
    if (!obs::json::parse(buf.str(), doc, &error)) {
        error = path + ": " + error;
        return false;
    }
    const obs::json::Value *ver = doc.find("schema_version");
    const obs::json::Value *bench = doc.find("bench");
    if (!ver || !ver->isNumber() || !bench || !bench->isString()) {
        error = path + ": not a BENCH_*.json (missing schema_version"
                "/bench)";
        return false;
    }
    out = BenchResult{};
    out.schemaVersion = static_cast<int>(ver->num);
    out.bench = bench->str;
    if (const auto *v = doc.find("git_sha"))
        out.gitSha = v->str;
    if (const auto *v = doc.find("build_type"))
        out.buildType = v->str;
    if (const auto *v = doc.find("threads"))
        out.threads = static_cast<unsigned>(v->num);
    if (const auto *v = doc.find("runs")) {
        for (const auto &e : v->arr) {
            RunRecord run;
            parseRunRecordJson(e, run);
            out.runs.push_back(std::move(run));
        }
    }
    if (const auto *v = doc.find("totals")) {
        if (const auto *f = v->find("insts"))
            out.instsTotal = asU64(*f);
        if (const auto *f = v->find("cycles"))
            out.cyclesTotal = asU64(*f);
    }
    if (const auto *v = doc.find("throughput")) {
        if (const auto *f = v->find("wall_seconds"))
            out.wallSeconds = f->num;
        if (const auto *f = v->find("runs_per_sec"))
            out.runsPerSec = f->num;
        if (const auto *f = v->find("minst_per_sec"))
            out.minstPerSec = f->num;
    }
    if (const auto *v = doc.find("trace_cache")) {
        if (const auto *f = v->find("hits"))
            out.traceHits = asU64(*f);
        if (const auto *f = v->find("misses"))
            out.traceMisses = asU64(*f);
        if (const auto *f = v->find("captured_insts"))
            out.instsCaptured = asU64(*f);
        if (const auto *f = v->find("replayed_insts"))
            out.instsReplayed = asU64(*f);
    }
    if (const auto *v = doc.find("phases")) {
        for (const auto &e : v->arr) {
            BenchResult::PhaseRow row;
            if (const auto *f = e.find("path"))
                row.path = f->str;
            if (const auto *f = e.find("count"))
                row.count = asU64(*f);
            if (const auto *f = e.find("seconds"))
                row.seconds = f->num;
            if (const auto *f = e.find("p50_us"))
                row.p50Us = f->num;
            if (const auto *f = e.find("p95_us"))
                row.p95Us = f->num;
            if (const auto *f = e.find("max_us"))
                row.maxUs = f->num;
            out.phases.push_back(std::move(row));
        }
    }
    if (const auto *v = doc.find("footer"))
        out.footer = v->str;
    return true;
}

BenchDiffReport
collectBenchDiff(const BenchResult &base, const BenchResult &cur,
                 const BenchDiffOptions &opts)
{
    BenchDiffReport r;
    r.bench = cur.bench;
    r.baseSha = base.gitSha;
    r.curSha = cur.gitSha;
    r.baseBuild = base.buildType;
    r.curBuild = cur.buildType;
    r.baseSchema = base.schemaVersion;
    r.curSchema = cur.schemaVersion;
    if (base.schemaVersion != cur.schemaVersion) {
        r.schemaMismatch = true;
        r.exitCode = 2;
        return r;
    }

    // Exact pass: the run lists must match row for row.
    r.baseRuns = base.runs.size();
    r.curRuns = cur.runs.size();
    if (base.runs.size() != cur.runs.size()) {
        r.runCountMismatch = true;
        r.exitCode = 1;
        return r;
    }
    for (std::size_t i = 0; i < base.runs.size(); ++i) {
        const RunRecord &b = base.runs[i];
        const RunRecord &c = cur.runs[i];
        if (b.workload != c.workload || b.scheme != c.scheme) {
            r.exactDrift.push_back(
                {b.workload + "->" + c.workload,
                 b.scheme + "->" + c.scheme, "row",
                 "run " + std::to_string(i), "", "reordered"});
            continue;
        }
        if (b.sampled.enabled || c.sampled.enabled) {
            // Sampled rows are estimates, not bit-exact results: gate
            // on 95% CI overlap of the mean IPC instead of equality.
            if (b.sampled.enabled != c.sampled.enabled) {
                r.exactDrift.push_back({b.workload, b.scheme, "sampled",
                                        b.sampled.enabled ? "yes" : "no",
                                        c.sampled.enabled ? "yes" : "no",
                                        "mode changed"});
                continue;
            }
            if (!sampledCiOverlap(b.sampled, c.sampled)) {
                const double ciSum =
                    b.sampled.ci95Ipc + c.sampled.ci95Ipc;
                char d[64];
                std::snprintf(d, sizeof(d), "%+.4f%% > CI %s",
                              pctDelta(b.sampled.meanIpc,
                                       c.sampled.meanIpc),
                              sigFig(ciSum, 3).c_str());
                r.exactDrift.push_back({b.workload, b.scheme, "mean_ipc",
                                        sigFig(b.sampled.meanIpc, 6),
                                        sigFig(c.sampled.meanIpc, 6),
                                        d});
            }
            continue;
        }
        if (b.insts != c.insts) {
            r.exactDrift.push_back({b.workload, b.scheme, "insts",
                                    u64Str(b.insts), u64Str(c.insts),
                                    signedDelta(b.insts, c.insts)});
        }
        if (b.cycles != c.cycles) {
            char ipc[48];
            std::snprintf(ipc, sizeof(ipc), "%+.4f%% IPC",
                          pctDelta(b.ipc(), c.ipc()));
            r.exactDrift.push_back({b.workload, b.scheme, "cycles",
                                    u64Str(b.cycles), u64Str(c.cycles),
                                    signedDelta(b.cycles, c.cycles)});
            r.exactDrift.push_back({b.workload, b.scheme, "ipc",
                                    sigFig(b.ipc(), 6),
                                    sigFig(c.ipc(), 6), ipc});
        }
    }
    if (base.traceHits != cur.traceHits ||
        base.traceMisses != cur.traceMisses) {
        r.exactDrift.push_back({"(trace cache)", "-", "hit/miss",
                                u64Str(base.traceHits) + "/" +
                                    u64Str(base.traceMisses),
                                u64Str(cur.traceHits) + "/" +
                                    u64Str(cur.traceMisses),
                                ""});
    }
    if (!r.exactDrift.empty())
        r.exitCode = 1;

    // Noisy pass: throughput numbers drift with the host; warn unless
    // a threshold is configured.
    const bool gate = opts.throughputThresholdPct >= 0;
    const std::pair<const char *, std::pair<double, double>> noisy[] = {
        {"wall_seconds", {base.wallSeconds, cur.wallSeconds}},
        {"runs_per_sec", {base.runsPerSec, cur.runsPerSec}},
        {"minst_per_sec", {base.minstPerSec, cur.minstPerSec}},
    };
    for (const auto &[name, vals] : noisy) {
        BenchDiffReport::NoisyRow row;
        row.name = name;
        row.base = vals.first;
        row.cur = vals.second;
        row.deltaPct = pctDelta(vals.first, vals.second);
        row.regression =
            gate && std::fabs(row.deltaPct) > opts.throughputThresholdPct;
        if (row.regression && r.exitCode == 0)
            r.exitCode = 1;
        r.noisy.push_back(std::move(row));
    }

    // Phase-profile pass: host wall clock per phase, so always
    // warn-only.  Rows pair up by path; a phase present on only one
    // side is still shown (profiling config changed, or the code path
    // moved).
    auto slot = [&r](const std::string &path)
        -> BenchDiffReport::PhasePair & {
        for (auto &p : r.phases) {
            if (p.path == path)
                return p;
        }
        r.phases.push_back({path, -1, -1, -1, -1});
        return r.phases.back();
    };
    for (const auto &ph : base.phases) {
        auto &p = slot(ph.path);
        p.baseSeconds = ph.seconds;
        p.baseP95Us = ph.p95Us;
    }
    for (const auto &ph : cur.phases) {
        auto &p = slot(ph.path);
        p.curSeconds = ph.seconds;
        p.curP95Us = ph.p95Us;
    }
    return r;
}

std::string
renderBenchDiffJson(const BenchDiffReport &r)
{
    std::ostringstream os;
    os << "{\n"
       << "  \"bench\": " << jsonStr(r.bench) << ",\n"
       << "  \"baseline\": {\"git_sha\": " << jsonStr(r.baseSha)
       << ", \"build_type\": " << jsonStr(r.baseBuild)
       << ", \"schema_version\": " << r.baseSchema << ", \"runs\": "
       << r.baseRuns << "},\n"
       << "  \"current\": {\"git_sha\": " << jsonStr(r.curSha)
       << ", \"build_type\": " << jsonStr(r.curBuild)
       << ", \"schema_version\": " << r.curSchema << ", \"runs\": "
       << r.curRuns << "},\n"
       << "  \"verdict\": " << jsonStr(r.verdict()) << ",\n"
       << "  \"exit_code\": " << r.exitCode << ",\n"
       << "  \"schema_mismatch\": "
       << (r.schemaMismatch ? "true" : "false") << ",\n"
       << "  \"run_count_mismatch\": "
       << (r.runCountMismatch ? "true" : "false") << ",\n"
       << "  \"exact_drift\": [";
    bool first = true;
    for (const auto &d : r.exactDrift) {
        os << (first ? "\n" : ",\n") << "    {\"workload\": "
           << jsonStr(d.workload) << ", \"scheme\": " << jsonStr(d.scheme)
           << ", \"metric\": " << jsonStr(d.metric) << ", \"baseline\": "
           << jsonStr(d.baseVal) << ", \"current\": " << jsonStr(d.curVal)
           << ", \"delta\": " << jsonStr(d.delta) << "}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "],\n"
       << "  \"noisy\": [";
    first = true;
    for (const auto &n : r.noisy) {
        os << (first ? "\n" : ",\n") << "    {\"name\": "
           << jsonStr(n.name) << ", \"baseline\": " << jsonNum(n.base)
           << ", \"current\": " << jsonNum(n.cur) << ", \"delta_pct\": "
           << jsonNum(n.deltaPct) << ", \"regression\": "
           << (n.regression ? "true" : "false") << "}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "],\n"
       << "  \"phases\": [";
    first = true;
    for (const auto &p : r.phases) {
        os << (first ? "\n" : ",\n") << "    {\"path\": "
           << jsonStr(p.path) << ", \"base_seconds\": "
           << (p.baseSeconds < 0 ? "null" : jsonNum(p.baseSeconds))
           << ", \"cur_seconds\": "
           << (p.curSeconds < 0 ? "null" : jsonNum(p.curSeconds))
           << ", \"base_p95_us\": "
           << (p.baseP95Us < 0 ? "null" : jsonNum(p.baseP95Us))
           << ", \"cur_p95_us\": "
           << (p.curP95Us < 0 ? "null" : jsonNum(p.curP95Us)) << "}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "]\n"
       << "}\n";
    return os.str();
}

int
diffBenchResults(const BenchResult &base, const BenchResult &cur,
                 const BenchDiffOptions &opts, std::ostream &os)
{
    const BenchDiffReport r = collectBenchDiff(base, cur, opts);

    os << "benchdiff: " << cur.bench << " (baseline " << base.gitSha
       << "/" << base.buildType << " vs current " << cur.gitSha << "/"
       << cur.buildType << ")\n";
    if (r.schemaMismatch) {
        os << "error: schema version mismatch (baseline v"
           << r.baseSchema << ", current v" << r.curSchema
           << "); regenerate the baseline\n";
        return r.exitCode;
    }
    if (r.runCountMismatch) {
        os << "EXACT DRIFT: run count " << r.baseRuns << " -> "
           << r.curRuns
           << " (sweep shape changed; regenerate the baseline if "
              "intentional)\n";
        return r.exitCode;
    }

    if (!r.exactDrift.empty()) {
        os << "EXACT DRIFT in " << r.exactDrift.size()
           << " metric(s) — deterministic simulation results changed:\n";
        std::vector<DiffRow> rows;
        for (const auto &d : r.exactDrift)
            rows.push_back({d.workload, d.scheme, d.metric, d.baseVal,
                            d.curVal, d.delta});
        printDiffTable(os, rows, opts.markdown);
    } else {
        os << "exact metrics: OK (" << r.curRuns
           << " runs, insts/cycles/trace-cache identical)\n";
    }

    const bool gate = opts.throughputThresholdPct >= 0;
    os << "noisy metrics ("
       << (gate ? "threshold " +
                      jsonNum(opts.throughputThresholdPct) + "%"
                : std::string("warn-only"))
       << "):\n";
    for (const auto &n : r.noisy) {
        char buf[160];
        std::snprintf(buf, sizeof(buf), "  %-14s %12.3f -> %12.3f  "
                      "(%+.1f%%)%s\n", n.name.c_str(), n.base, n.cur,
                      n.deltaPct, n.regression ? "  REGRESSION" : "");
        os << buf;
    }

    if (!r.phases.empty()) {
        auto secs = [](double s) {
            return s < 0 ? std::string("-") : sigFig(s, 4);
        };
        auto p95 = [](double us) {
            char buf[32];
            if (us < 0)
                return std::string("-");
            std::snprintf(buf, sizeof(buf), "%.0f", us);
            return std::string(buf);
        };
        os << "phase profile (host wall clock, warn-only):\n";
        if (opts.markdown) {
            os << "| phase | base s | cur s | delta | base p95 us "
               << "| cur p95 us |\n"
               << "|---|---:|---:|---:|---:|---:|\n";
        } else {
            char buf[192];
            std::snprintf(buf, sizeof(buf),
                          "  %-24s %10s %10s %9s %12s %12s\n", "phase",
                          "base_s", "cur_s", "delta", "base_p95_us",
                          "cur_p95_us");
            os << buf;
        }
        for (const auto &p : r.phases) {
            std::string delta = "-";
            if (p.baseSeconds >= 0 && p.curSeconds >= 0 &&
                p.baseSeconds > 0) {
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%+.1f%%",
                              pctDelta(p.baseSeconds, p.curSeconds));
                delta = buf;
            } else if (p.baseSeconds < 0) {
                delta = "new";
            } else if (p.curSeconds < 0) {
                delta = "gone";
            }
            if (opts.markdown) {
                os << "| " << p.path << " | " << secs(p.baseSeconds)
                   << " | " << secs(p.curSeconds) << " | " << delta
                   << " | " << p95(p.baseP95Us) << " | "
                   << p95(p.curP95Us) << " |\n";
            } else {
                char buf[256];
                std::snprintf(buf, sizeof(buf),
                              "  %-24s %10s %10s %9s %12s %12s\n",
                              p.path.c_str(), secs(p.baseSeconds).c_str(),
                              secs(p.curSeconds).c_str(), delta.c_str(),
                              p95(p.baseP95Us).c_str(),
                              p95(p.curP95Us).c_str());
                os << buf;
            }
        }
    }
    return r.exitCode;
}

} // namespace rrs::harness
