#include "sampling.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace rrs::harness {

SamplingController::SamplingController(const SamplingParams &params,
                                       core::O3Core &core,
                                       trace::ReplayStream &stream,
                                       mem::MemSystem &mem,
                                       bpred::BranchPredictor &bp)
    : params(params), core(core), stream(stream), mem(mem), bp(bp)
{
    rrs_assert(params.enabled(), "sampling controller needs "
               "detailed > 0 and period > 0");
    rrs_assert(params.period >= params.warm + params.detailed,
               "sampling period must cover warm + detailed");
}

void
SamplingController::warmSpan(std::size_t from, std::size_t to)
{
    // Emulator-equivalent state advance straight off the packed
    // columns: the trace already holds the architectural outcome of
    // every instruction (taken direction, target, effective address),
    // so warming is predict/train plus cache touches — no renaming,
    // no queues, no per-cycle loop.
    const trace::PackedTrace &pk = stream.trace().packed();
    Tick t = core.nowTick();
    Addr lastLine = invalidAddr;
    for (std::size_t i = from; i < to; ++i) {
        // One tick per record keeps cache LRU/MSHR timestamps
        // monotonic through the span instead of piling every access
        // onto one instant.
        ++t;
        const isa::PackedMeta &m = pk.meta(i);
        const Addr pc = pk.pc(i);
        const Addr line = pc / 64;
        if (line != lastLine) {
            mem.fetchAccess(pc, t);
            lastLine = line;
        }
        if (m.isControl()) {
            // Same speculative-history discipline as the pipeline:
            // predict (shifts history, moves the RAS), repair the
            // direction the trace says was mispredicted, train at
            // "commit".  recordResolution is skipped — warm
            // predictions are training traffic, not measurements.
            const bpred::Prediction p = bp.predict(pc, m.branch);
            const bool taken = pk.taken(i);
            if (m.branch == isa::BranchKind::Cond && p.taken != taken)
                bp.correctHistory(p, taken);
            bp.update(pc, m.branch, taken,
                      taken ? pk.nextPc(i) : invalidAddr,
                      p.historySnapshot);
        }
        if (m.isLoad())
            mem.dataAccess(pc, pk.effAddr(i), false, t);
        else if (m.isStore())
            mem.dataAccess(pc, pk.effAddr(i), true, t);
    }
    core.advanceClock(t);
}

SampledSummary
SamplingController::run(core::SimResult &aggregate)
{
    const std::size_t n = stream.trace().size();
    SampledSummary out;
    out.enabled = true;
    aggregate = core::SimResult{};

    // Per-window IPC accumulators.  The Distribution feeds the median
    // through the same stats::Distribution::percentile the metric
    // dumps use (keys are IPC x 1e4, the dump convention for
    // sub-integer metrics).
    double sum = 0, sumSq = 0;
    std::uint64_t measuredInsts = 0, measuredCycles = 0;
    stats::Group scratch("sampling");
    stats::Distribution ipcDist(&scratch, "window_ipc_x1e4",
                                "per-window IPC scaled by 1e4");

    const std::uint64_t fill =
        std::min<std::uint64_t>(params.fillInsts, params.detailed);
    const std::uint64_t measured = params.detailed - fill;

    std::size_t pos = 0;
    while (pos < n) {
        const std::size_t periodStart = pos;

        // 1. Functional warm.
        const std::size_t warmEnd =
            std::min<std::size_t>(pos + params.warm, n);
        if (warmEnd > pos) {
            warmSpan(pos, warmEnd);
            out.warmInsts += warmEnd - pos;
            pos = warmEnd;
        }
        if (pos >= n)
            break;
        stream.seek(pos);

        // 2. Detailed window: unmeasured pipeline-fill prefix, then
        // the measured body, one continuous stretch of pipeline time.
        if (fill > 0) {
            const core::SimResult r = core.runWindow(fill);
            pos += r.committedInsts;
            out.detailedInsts += r.committedInsts;
            out.detailedCycles += r.cycles;
            aggregate.committedInsts += r.committedInsts;
            aggregate.committedOps += r.committedOps;
            aggregate.cycles += r.cycles;
        }
        if (measured > 0 && pos < n) {
            const core::SimResult r = core.runWindow(measured);
            pos += r.committedInsts;
            out.detailedInsts += r.committedInsts;
            out.detailedCycles += r.cycles;
            aggregate.committedInsts += r.committedInsts;
            aggregate.committedOps += r.committedOps;
            aggregate.cycles += r.cycles;
            if (r.committedInsts > 0 && r.cycles > 0) {
                const double ipc =
                    static_cast<double>(r.committedInsts) /
                    static_cast<double>(r.cycles);
                if (std::getenv("RRS_SAMPLE_DEBUG"))
                    std::fprintf(stderr, "window @%zu: %llu insts %llu cycles ipc %.4f\n",
                                 periodStart,
                                 (unsigned long long)r.committedInsts,
                                 (unsigned long long)r.cycles, ipc);
                sum += ipc;
                sumSq += ipc * ipc;
                measuredInsts += r.committedInsts;
                measuredCycles += r.cycles;
                ++out.windows;
                ipcDist.sample(static_cast<std::uint64_t>(
                    std::llround(ipc * 1e4)));
            }
        }

        // 3. Reconcile: the fetch lookahead left the cursor (and some
        // in-flight instructions) ahead of the commit point; drop the
        // in-flight work and re-seek to exactly what committed.
        core.discardInFlight();
        stream.seek(pos);

        // 4. Fast-forward the rest of the period with functional
        // warming (SMARTS always-on warming): caches and predictor
        // keep tracking the program through the gap, only the pipeline
        // is skipped.  A cold jump here ages the cache out from under
        // the next window and biases every window's IPC down by
        // whatever the working set advanced during the gap.
        const std::size_t periodEnd =
            std::min<std::size_t>(periodStart + params.period, n);
        if (pos < periodEnd) {
            warmSpan(pos, periodEnd);
            out.skippedInsts += periodEnd - pos;
            pos = periodEnd;
            stream.seek(pos);
        }
    }

    if (out.windows > 0) {
        const double count = static_cast<double>(out.windows);
        // Instruction-weighted mean — the same insts/cycles semantics
        // as an exact run's IPC.  The unweighted mean of per-window
        // IPCs would sit above it (Jensen: slow windows eat
        // disproportionate cycles) and over-weight a short tail
        // window; the dispersion statistics stay per-window.
        out.meanIpc = measuredCycles > 0
                          ? static_cast<double>(measuredInsts) /
                                static_cast<double>(measuredCycles)
                          : sum / count;
        if (out.windows > 1) {
            const double var =
                (sumSq - sum * sum / count) / (count - 1.0);
            out.stddevIpc = var > 0 ? std::sqrt(var) : 0.0;
            out.ci95Ipc = 1.96 * out.stddevIpc / std::sqrt(count);
        }
        out.medianIpc = ipcDist.percentile(50) / 1e4;
    } else {
        // Trace shorter than one measured window: fall back to the
        // aggregate over whatever detail ran.
        out.meanIpc = aggregate.ipc();
        out.medianIpc = out.meanIpc;
    }
    const double ciFloor = out.meanIpc * params.ciFloorPct / 100.0;
    if (out.ci95Ipc < ciFloor)
        out.ci95Ipc = ciFloor;
    return out;
}

} // namespace rrs::harness
