#include "tracecache.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "obs/profiler.hh"
#include "trace/tracefile.hh"

namespace rrs::harness {

TraceCache::TraceCache()
    : stats::Group("trace_cache"),
      hitsStat(this, "hits", "trace cache hits"),
      missesStat(this, "misses", "trace cache misses (captures)"),
      capturedStat(this, "captured_insts",
                   "instructions functionally emulated to capture traces"),
      replayedStat(this, "replayed_insts",
                   "instructions replayed from cached traces"),
      spillLoadsStat(this, "spill_loads",
                     "traces loaded from RRS_TRACE_DIR"),
      spillStoresStat(this, "spill_stores",
                      "traces written to RRS_TRACE_DIR"),
      packedRecordsStat(this, "packed_records",
                        "records packed into column form", "insts"),
      packCaptureSecondsStat(
          this, "pack_seconds_capture",
          "host seconds building packed columns after capture",
          "seconds"),
      packLoadSecondsStat(
          this, "pack_seconds_load",
          "host seconds building packed columns on spill load",
          "seconds")
{
    if (const char *env = std::getenv("RRS_TRACE_DIR"))
        dir = env;
}

trace::TracePtr
TraceCache::get(const workloads::Workload &w, std::uint64_t maxInsts)
{
    const Key key{w.name, workloads::resolvedCap(w, maxInsts)};

    std::unique_lock<std::mutex> lock(mu);
    auto it = entries.find(key);
    if (it != entries.end()) {
        ++hitsStat;
        auto future = it->second;
        lock.unlock();
        // May block until the capturing lane publishes the trace; the
        // arrival still counts as a hit because nothing was emulated
        // on its behalf.
        return future.get();
    }

    ++missesStat;
    std::promise<trace::TracePtr> promise;
    entries.emplace(key, promise.get_future().share());
    const std::string spillTo = dir;
    lock.unlock();

    // Capture (or spill-load) outside the lock: other keys miss and
    // capture concurrently, other requesters of this key wait on the
    // future instead of re-emulating.
    trace::TracePtr trace;
    bool loaded = false;
    const std::string path =
        spillTo.empty() ? std::string{}
                        : spillTo + "/" +
                              trace::traceFileName(key.first, key.second);
    if (!path.empty()) {
        obs::ScopedPhase phase("trace-cache-load");
        std::string error;
        trace::TracePtr spilled = trace::tryReadTraceFile(path, error);
        if (spilled && spilled->workload() == key.first &&
            spilled->cap() == key.second &&
            spilled->sourceHash() == workloads::sourceHash(w)) {
            trace = spilled;
            loaded = true;
        } else if (spilled) {
            rrs_warn("stale trace file '%s' (workload sources changed?); "
                     "recapturing", path.c_str());
        }
    }
    if (!trace)
        trace = workloads::captureTrace(w, maxInsts);

    // Decode-once invariant: the packed columns must exist before the
    // trace is published, so no sweep lane ever pays pack cost in the
    // cycle loop.  Loads pack inside tryReadTraceFile and captures
    // inside captureTrace, making this a no-op guard for them; direct
    // callers of get() with hand-built traces pack here, under their
    // own profiler phase.
    double packSecs = 0.0;
    {
        obs::ScopedPhase packPhase("pack");
        packSecs = trace->packed().buildSeconds();
    }

    bool stored = false;
    if (!loaded && !path.empty()) {
        obs::ScopedPhase phase("trace-cache-spill");
        std::string error;
        stored = trace::tryWriteTraceFile(path, *trace, error);
        if (!stored)
            rrs_warn_once("trace spill disabled: %s", error.c_str());
    }

    lock.lock();
    if (loaded) {
        ++spillLoadsStat;
        packLoadSecondsStat += packSecs;
    } else {
        capturedStat += static_cast<double>(trace->size());
        packCaptureSecondsStat += packSecs;
        if (stored)
            ++spillStoresStat;
    }
    packedRecordsStat += static_cast<double>(trace->size());
    lock.unlock();

    promise.set_value(trace);
    return trace;
}

void
TraceCache::noteReplayed(std::uint64_t insts)
{
    std::lock_guard<std::mutex> lock(mu);
    replayedStat += static_cast<double>(insts);
}

TraceCache::Counters
TraceCache::counters() const
{
    std::lock_guard<std::mutex> lock(mu);
    Counters c;
    c.hits = static_cast<std::uint64_t>(hitsStat.value());
    c.misses = static_cast<std::uint64_t>(missesStat.value());
    c.capturedInsts = static_cast<std::uint64_t>(capturedStat.value());
    c.replayedInsts = static_cast<std::uint64_t>(replayedStat.value());
    c.spillLoads = static_cast<std::uint64_t>(spillLoadsStat.value());
    c.spillStores = static_cast<std::uint64_t>(spillStoresStat.value());
    c.packedRecords =
        static_cast<std::uint64_t>(packedRecordsStat.value());
    c.packSecondsCapture = packCaptureSecondsStat.value();
    c.packSecondsLoad = packLoadSecondsStat.value();
    return c;
}

void
TraceCache::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    entries.clear();
    resetStats();
}

void
TraceCache::setSpillDir(std::string newDir)
{
    std::lock_guard<std::mutex> lock(mu);
    dir = std::move(newDir);
}

TraceCache &
traceCache()
{
    static TraceCache cache;
    return cache;
}

} // namespace rrs::harness
