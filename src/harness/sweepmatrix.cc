#include "sweepmatrix.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "obs/jsonlite.hh"
#include "rename/scheme.hh"

namespace rrs::harness {

namespace {

using obs::json::Value;

/**
 * Duplicate detection for hand-written matrices: a matrix with two
 * "rf_sizes" members is almost certainly a merge accident, and silently
 * taking one of them would skew the sweep.
 */
bool
checkNoDuplicateKeys(const Value &obj, const std::string &where,
                     std::string &error)
{
    if (!checkNoDuplicateJsonKeys(obj, where, error)) {
        error = "sweep matrix: " + error;
        return false;
    }
    return true;
}

bool
parseSchemeSpec(const Value &v, SchemeSpec &spec, std::string &error)
{
    if (v.isString()) {
        spec.scheme = v.str;
    } else if (v.isObject()) {
        if (!checkNoDuplicateKeys(v, "a scheme entry", error))
            return false;
        const Value *name = v.find("scheme");
        if (!name || !name->isString()) {
            error = "sweep matrix: scheme entries need a string "
                    "'scheme' member";
            return false;
        }
        spec.scheme = name->str;
        for (const auto &[key, val] : v.members) {
            if (key == "scheme") {
                continue;
            } else if (key == "label") {
                if (!val.isString()) {
                    error = "sweep matrix: 'label' must be a string";
                    return false;
                }
                spec.label = val.str;
            } else if (key == "params") {
                if (!val.isObject()) {
                    error = "sweep matrix: 'params' must be an object "
                            "of name: number pairs";
                    return false;
                }
                if (!checkNoDuplicateKeys(val, "the params of scheme '" +
                                                   spec.scheme + "'",
                                          error))
                    return false;
                for (const auto &[pk, pv] : val.members) {
                    if (!pv.isNumber() &&
                        pv.kind() != Value::Kind::Bool) {
                        error = "sweep matrix: parameter '" + pk +
                                "' of scheme '" + spec.scheme +
                                "' must be a number or bool";
                        return false;
                    }
                    double num = pv.isNumber()
                                     ? pv.num
                                     : (pv.boolean ? 1.0 : 0.0);
                    spec.params.emplace_back(pk, num);
                }
            } else {
                error = "sweep matrix: unknown scheme-entry key '" +
                        key + "' (expected scheme/label/params)";
                return false;
            }
        }
    } else {
        error = "sweep matrix: each scheme must be a registry name "
                "string or an object";
        return false;
    }
    if (spec.label.empty())
        spec.label = spec.scheme;

    // Resolve the scheme and dry-run every parameter override now:
    // this is the config-parse-time check that keeps an unknown name
    // or key from ever reaching a sweep worker.
    const rename::RenameScheme *scheme =
        rename::findRenameScheme(spec.scheme);
    if (!scheme) {
        std::string known;
        for (const auto &n : rename::registeredRenameSchemes())
            known += (known.empty() ? "" : ", ") + n;
        error = "sweep matrix: unknown rename scheme '" + spec.scheme +
                "' (registered: " + known + ")";
        return false;
    }
    rename::SchemeParams scratch;
    for (const auto &[key, val] : spec.params) {
        if (!scheme->setParam(scratch, key, val)) {
            std::string keys;
            for (const auto &k : scheme->paramKeys())
                keys += (keys.empty() ? "" : ", ") + k;
            error = "sweep matrix: scheme '" + spec.scheme +
                    "' has no parameter '" + key + "' (keys: " + keys +
                    ")";
            return false;
        }
    }
    return true;
}

} // namespace

bool
checkNoDuplicateJsonKeys(const Value &obj, const std::string &where,
                         std::string &error)
{
    for (std::size_t i = 0; i < obj.members.size(); ++i) {
        for (std::size_t j = i + 1; j < obj.members.size(); ++j) {
            if (obj.members[i].first == obj.members[j].first) {
                error = "duplicate key '" + obj.members[i].first +
                        "' in " + where;
                return false;
            }
        }
    }
    return true;
}

bool
tryParseSweepMatrix(const std::string &text, SweepMatrix &out,
                    std::string &error)
{
    Value root;
    std::string jsonError;
    if (!obs::json::parse(text, root, &jsonError)) {
        error = "sweep matrix: " + jsonError;
        return false;
    }
    return tryParseSweepMatrix(root, out, error);
}

bool
tryParseSweepMatrix(const Value &root, SweepMatrix &out,
                    std::string &error)
{
    if (!root.isObject()) {
        error = "sweep matrix: the document root must be an object";
        return false;
    }
    if (!checkNoDuplicateKeys(root, "the matrix", error))
        return false;

    SweepMatrix m;
    bool sawSchemes = false, sawSizes = false;
    for (const auto &[key, val] : root.members) {
        if (key == "schemes") {
            sawSchemes = true;
            if (!val.isArray()) {
                error = "sweep matrix: 'schemes' must be an array";
                return false;
            }
            for (const auto &entry : val.arr) {
                SchemeSpec spec;
                if (!parseSchemeSpec(entry, spec, error))
                    return false;
                m.schemes.push_back(std::move(spec));
            }
        } else if (key == "rf_sizes") {
            sawSizes = true;
            if (!val.isArray()) {
                error = "sweep matrix: 'rf_sizes' must be an array";
                return false;
            }
            for (const auto &entry : val.arr) {
                if (!entry.isNumber() || entry.num <= 0 ||
                    entry.num != std::floor(entry.num)) {
                    error = "sweep matrix: 'rf_sizes' entries must be "
                            "positive integers";
                    return false;
                }
                m.rfSizes.push_back(
                    static_cast<std::uint32_t>(entry.num));
            }
        } else if (key == "cap") {
            if (!val.isNumber() || val.num <= 0 ||
                val.num != std::floor(val.num)) {
                error = "sweep matrix: 'cap' must be a positive "
                        "integer";
                return false;
            }
            m.cap = static_cast<std::uint64_t>(val.num);
        } else if (key == "sample_sharing") {
            if (val.kind() != Value::Kind::Bool) {
                error = "sweep matrix: 'sample_sharing' must be a bool";
                return false;
            }
            m.sampleSharing = val.boolean;
        } else if (key == "suite") {
            if (!val.isString()) {
                error = "sweep matrix: 'suite' must be a string";
                return false;
            }
            m.suite = val.str;
        } else if (key == "audit") {
            if (val.kind() != Value::Kind::Bool) {
                error = "sweep matrix: 'audit' must be a bool";
                return false;
            }
            m.audit = val.boolean;
        } else if (key == "sampling") {
            if (!val.isObject()) {
                error = "sweep matrix: 'sampling' must be an object "
                        "with warm/detailed/period members";
                return false;
            }
            if (!checkNoDuplicateKeys(val, "the sampling block", error))
                return false;
            for (const auto &[sk, sv] : val.members) {
                const bool isWarm = sk == "warm";
                if (!isWarm && sk != "detailed" && sk != "period") {
                    error = "sweep matrix: unknown sampling key '" + sk +
                            "' (expected warm/detailed/period)";
                    return false;
                }
                // warm may be zero (no functional warming); detailed
                // and period must be positive for the mode to mean
                // anything.
                if (!sv.isNumber() || sv.num < (isWarm ? 0 : 1) ||
                    sv.num != std::floor(sv.num)) {
                    error = "sweep matrix: sampling '" + sk + "' must "
                            "be a " +
                            (isWarm ? "non-negative" : "positive") +
                            std::string(" integer");
                    return false;
                }
                const auto n = static_cast<std::uint64_t>(sv.num);
                if (sk == "warm")
                    m.sampling.warm = n;
                else if (sk == "detailed")
                    m.sampling.detailed = n;
                else
                    m.sampling.period = n;
            }
            if (!m.sampling.enabled()) {
                error = "sweep matrix: 'sampling' needs positive "
                        "'detailed' and 'period' members";
                return false;
            }
            if (m.sampling.period <
                m.sampling.warm + m.sampling.detailed) {
                error = "sweep matrix: sampling 'period' must cover "
                        "warm + detailed";
                return false;
            }
        } else {
            error = "sweep matrix: unknown key '" + key +
                    "' (expected schemes/rf_sizes/cap/sample_sharing/"
                    "suite/audit/sampling)";
            return false;
        }
    }
    if (!sawSchemes || m.schemes.empty()) {
        error = "sweep matrix: 'schemes' must be a non-empty array";
        return false;
    }
    if (!sawSizes || m.rfSizes.empty()) {
        error = "sweep matrix: 'rf_sizes' must be a non-empty array";
        return false;
    }
    out = std::move(m);
    return true;
}

SweepMatrix
parseSweepMatrix(const std::string &text)
{
    SweepMatrix m;
    std::string error;
    if (!tryParseSweepMatrix(text, m, error))
        rrs_fatal("%s", error.c_str());
    return m;
}

SweepMatrix
loadSweepMatrixFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        rrs_fatal("cannot open sweep matrix file '%s'", path.c_str());
    std::ostringstream text;
    text << in.rdbuf();
    SweepMatrix m;
    std::string error;
    if (!tryParseSweepMatrix(text.str(), m, error))
        rrs_fatal("%s: %s", path.c_str(), error.c_str());
    return m;
}

RunConfig
matrixConfig(const SchemeSpec &spec, std::uint32_t baselineRegs,
             const SweepMatrix &m, std::uint64_t capDefault)
{
    RunConfig cfg = schemeConfig(spec.scheme, baselineRegs);
    const rename::RenameScheme &scheme =
        rename::renameScheme(spec.scheme);
    for (const auto &[key, val] : spec.params) {
        // Keys were dry-run at parse time; a failure here means the
        // spec was built by hand with a bad key.
        if (!scheme.setParam(cfg.rename, key, val))
            rrs_fatal("scheme '%s' has no parameter '%s'",
                      spec.scheme.c_str(), key.c_str());
    }
    cfg.maxInsts = m.cap > 0 ? m.cap : capDefault;
    cfg.obs.auditDisabled = !m.audit;
    cfg.sampling = m.sampling;
    return cfg;
}

std::vector<SweepItem>
expandSweepMatrix(const SweepMatrix &m,
                  const std::vector<workloads::Workload> &ws,
                  std::uint64_t capDefault)
{
    std::vector<SweepItem> items;
    items.reserve(ws.size() * m.rfSizes.size() * m.schemes.size());
    for (const auto &w : ws) {
        for (std::uint32_t n : m.rfSizes) {
            for (const auto &spec : m.schemes) {
                items.push_back(sweepItem(
                    w, matrixConfig(spec, n, m, capDefault),
                    m.sampleSharing));
            }
        }
    }
    return items;
}

} // namespace rrs::harness
