#include "sweep.hh"

#include <chrono>
#include <cstdlib>
#include <memory>

#include "common/logging.hh"
#include "harness/tracecache.hh"
#include "obs/profiler.hh"
#include "obs/progress.hh"
#include "obs/telemetry.hh"

namespace rrs::harness {

std::uint64_t
sweepSeed(std::uint64_t base, std::size_t index)
{
    // SplitMix64 finaliser over (base, index): decorrelated per-run
    // streams that depend only on the submission index, never on the
    // execution schedule.
    std::uint64_t z =
        base + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(index) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

SweepRunner::SweepRunner(unsigned threads)
    : stats::Group("sweep"),
      pool(threads),
      totalRuns(this, "runs", "simulation runs completed"),
      totalInsts(this, "insts", "instructions committed across runs"),
      totalCycles(this, "cycles", "cycles simulated across runs"),
      runWall(this, "run_wall_seconds", "per-run wall-clock seconds"),
      runIpcPct(this, "run_ipc_pct", "per-run committed IPC (percent)"),
      traceCaptureInsts(this, "trace_capture_insts",
                        "instructions emulated to capture traces"),
      traceReplayInsts(this, "trace_replay_insts",
                       "instructions replayed from cached traces"),
      traceCacheHits(this, "trace_cache_hits",
                     "sweep runs served from the trace cache"),
      traceCacheMisses(this, "trace_cache_misses",
                       "sweep runs that captured their trace"),
      auditChecks(this, "audit_checks",
                  "rename invariant audits across the sweep"),
      auditViolations(this, "audit_violations",
                      "rename invariant violations across the sweep"),
      sampledRuns(this, "sampled_runs",
                  "runs executed in sampled (SMARTS) mode"),
      sampledWindows(this, "sampled_windows",
                     "measured detailed windows across sampled runs"),
      sampledDetailedInsts(this, "sampled_detailed_insts",
                           "instructions simulated in detail "
                           "(sampled runs, incl. pipeline fill)"),
      sampledWarmInsts(this, "sampled_warm_insts",
                       "instructions functionally warmed"),
      sampledSkippedInsts(this, "sampled_skipped_insts",
                          "instructions neither warmed nor simulated"),
      sampledCiPct(this, "sampled_ci_pct",
                   "per-run 95% CI as a percent of mean IPC")
{
    if (const char *env = std::getenv("RRS_PIPETRACE"))
        tracePrefix = env;
}

std::vector<SweepResult>
SweepRunner::run(const std::vector<SweepItem> &items)
{
    using Clock = std::chrono::steady_clock;

    // Per-run stats containers, one slot per item: workers touch only
    // their own slot, and the slots are merged after the join below.
    struct RunStats
    {
        explicit RunStats()
            : group("run"),
              insts(&group, "insts", "committed instructions"),
              cycles(&group, "cycles", "simulated cycles"),
              wall(&group, "wall_seconds", "run wall-clock seconds"),
              ipcPct(&group, "ipc_pct", "committed IPC (percent)")
        {
        }
        stats::Group group;
        stats::Scalar insts;
        stats::Scalar cycles;
        stats::Average wall;
        stats::Distribution ipcPct;
    };

    std::vector<SweepResult> results(items.size());
    std::vector<std::unique_ptr<RunStats>> perRun;
    perRun.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i)
        perRun.push_back(std::make_unique<RunStats>());

    // Host-side phase profiling (obs/profiler.hh): the whole sweep is
    // one phase on the calling thread; each run gets its own local
    // tree, bound to whichever lane executes it, and the trees are
    // merged after the join in submission order — so the profile's
    // counts, like the Outcomes, are identical for every RRS_THREADS.
    const bool prof = obs::Profiler::enabled();
    obs::ScopedPhase sweepPhase("sweep");
    std::vector<obs::PhaseTree> runTrees(prof ? items.size() : 0);

    // Telemetry (obs/telemetry.hh): one pre-sized buffer per run —
    // same single-writer-then-merge discipline as the stats slots and
    // the profiler trees, so the exported trace is bit-identical for
    // every thread count.
    const std::string telemetryOut = obs::telemetryDir();
    std::vector<obs::RunTelemetry> runTelem(
        telemetryOut.empty() ? 0 : items.size());

    // Live heartbeat (obs/progress.hh): stderr only, so stdout tables
    // and the footer stay byte-identical with progress on or off.
    obs::ProgressReporter progress(
        items.size(), obs::ProgressReporter::enabledByEnv());

    const auto sweepStart = Clock::now();
    const TraceCache::Counters cacheBefore = traceCache().counters();
    pool.parallelFor(items.size(), [&](std::size_t i) {
        const SweepItem &item = items[i];
        rrs_assert(item.workload != nullptr, "sweep item needs a workload");
        obs::Profiler::Bind bind(prof ? &runTrees[i] : nullptr);
        RunConfig cfg = item.config;
        cfg.core.seed = sweepSeed(cfg.core.seed,
                                  item.seedIndex == SweepItem::autoSeedIndex
                                      ? i
                                      : item.seedIndex);
        if (!runTelem.empty())
            cfg.obs.telemetry = &runTelem[i];
        progress.beginRun(i, item.workload->name + " x " + cfg.scheme);

        // Per-run trace files, named by submission index so the set of
        // files depends only on the sweep, never on the schedule.
        const std::string &prefix = cfg.obs.pipeTracePath.empty()
                                        ? tracePrefix
                                        : cfg.obs.pipeTracePath;
        if (!prefix.empty()) {
            cfg.obs.pipeTracePath =
                prefix + "_run" + std::to_string(i) + ".trace";
        }

        const auto t0 = Clock::now();
        results[i].outcome = runOn(*item.workload, cfg,
                                   item.sampleSharing);
        const std::chrono::duration<double> dt = Clock::now() - t0;
        results[i].wallSeconds = dt.count();

        RunStats &rs = *perRun[i];
        rs.insts += static_cast<double>(
            results[i].outcome.sim.committedInsts);
        rs.cycles += static_cast<double>(results[i].outcome.sim.cycles);
        rs.wall.sample(results[i].wallSeconds);
        rs.ipcPct.sample(static_cast<std::uint64_t>(
            100.0 * results[i].outcome.sim.ipc()));
        progress.endRun(i, results[i].outcome.sim.committedInsts);
    });
    progress.finish();
    const std::chrono::duration<double> sweepDt =
        Clock::now() - sweepStart;
    const TraceCache::Counters cacheAfter = traceCache().counters();

    // Workers have joined (parallelFor returned): the merge path.
    obs::ScopedPhase mergePhase("stats-merge");
    resetStats();
    for (const auto &rs : perRun) {
        ++totalRuns;
        totalInsts.merge(rs->insts);
        totalCycles.merge(rs->cycles);
        runWall.merge(rs->wall);
        runIpcPct.merge(rs->ipcPct);
    }
    if (prof) {
        // Submission-order merge of the per-run phase trees.
        for (const auto &t : runTrees)
            obs::Profiler::instance().addRunTree(t);
    }
    for (std::size_t i = 0; i < items.size(); ++i) {
        RunRecord rec;
        rec.workload = items[i].workload->name;
        rec.scheme = items[i].config.scheme;
        rec.insts = results[i].outcome.sim.committedInsts;
        rec.cycles = results[i].outcome.sim.cycles;
        rec.wallSeconds = results[i].wallSeconds;
        rec.sampled = results[i].outcome.sampled;
        // Sampled totals, accumulated post-join in submission order
        // like the audit counters, so they inherit the determinism
        // contract.
        const SampledSummary &sm = rec.sampled;
        if (sm.enabled) {
            ++sampledRuns;
            sampledWindows += static_cast<double>(sm.windows);
            sampledDetailedInsts +=
                static_cast<double>(sm.detailedInsts);
            sampledWarmInsts += static_cast<double>(sm.warmInsts);
            sampledSkippedInsts +=
                static_cast<double>(sm.skippedInsts);
            if (sm.meanIpc > 0) {
                sampledCiPct.sample(static_cast<std::uint64_t>(
                    100.0 * sm.ci95Ipc / sm.meanIpc));
            }
        }
        records.push_back(std::move(rec));
    }
    traceCaptureInsts =
        static_cast<double>(cacheAfter.capturedInsts -
                            cacheBefore.capturedInsts);
    traceReplayInsts =
        static_cast<double>(cacheAfter.replayedInsts -
                            cacheBefore.replayedInsts);
    traceCacheHits =
        static_cast<double>(cacheAfter.hits - cacheBefore.hits);
    traceCacheMisses =
        static_cast<double>(cacheAfter.misses - cacheBefore.misses);
    double audits = 0, auditBad = 0;
    for (const auto &r : results) {
        audits += r.outcome.auditsRun;
        auditBad += r.outcome.auditViolations;
    }
    auditChecks = audits;
    auditViolations = auditBad;

    // Serialise the telemetry buffers in submission order (the trace
    // tid is the run index) — post-join, like every other merge here,
    // so the file bytes never depend on the execution schedule.
    telemetryPath.clear();
    if (!runTelem.empty()) {
        obs::TelemetrySweepInfo info;
        info.label = telemetryLabel;
        info.runs = items.size();
        info.capturedInsts =
            cacheAfter.capturedInsts - cacheBefore.capturedInsts;
        info.replayedInsts =
            cacheAfter.replayedInsts - cacheBefore.replayedInsts;
        info.packedRecords =
            cacheAfter.packedRecords - cacheBefore.packedRecords;
        std::vector<const obs::RunTelemetry *> buffers;
        buffers.reserve(runTelem.size());
        for (const obs::RunTelemetry &rt : runTelem)
            buffers.push_back(&rt);
        telemetryPath = obs::writeSweepTrace(telemetryOut, info, buffers);
    }

    lastSummary = SweepSummary{};
    lastSummary.threads = pool.numThreads();
    lastSummary.runs = items.size();
    lastSummary.wallSeconds = sweepDt.count();
    lastSummary.runSecondsTotal =
        runWall.mean() * static_cast<double>(runWall.samples());
    lastSummary.runSecondsMin = runWall.min();
    lastSummary.runSecondsMax = runWall.max();
    lastSummary.instsCommitted =
        static_cast<std::uint64_t>(totalInsts.value());
    lastSummary.cyclesSimulated =
        static_cast<std::uint64_t>(totalCycles.value());
    lastSummary.traceHits = cacheAfter.hits - cacheBefore.hits;
    lastSummary.traceMisses = cacheAfter.misses - cacheBefore.misses;
    lastSummary.instsCaptured =
        cacheAfter.capturedInsts - cacheBefore.capturedInsts;
    lastSummary.instsReplayed =
        cacheAfter.replayedInsts - cacheBefore.replayedInsts;
    lastSummary.auditsRun = static_cast<std::uint64_t>(audits);
    lastSummary.auditViolations = static_cast<std::uint64_t>(auditBad);
    return results;
}

std::vector<Outcome>
SweepRunner::outcomes(const std::vector<SweepItem> &items)
{
    std::vector<SweepResult> results = run(items);
    std::vector<Outcome> out;
    out.reserve(results.size());
    for (auto &r : results)
        out.push_back(std::move(r.outcome));
    return out;
}

std::string
formatSweepFooter(const SweepSummary &s)
{
    char buf[384];
    // Minst/s counts only timing-simulation work; the functional
    // emulation spent capturing traces (paid once per workload/cap,
    // not once per run) is reported separately so throughput stays
    // honest now that streams replay from the cache.
    std::snprintf(buf, sizeof(buf),
                  "sweep: %zu runs in %.2f s on %u thread%s "
                  "(%.1f runs/s, %.2f Minst/s simulated, "
                  "%.0f%% utilisation)\n"
                  "trace cache: %llu hit%s / %llu miss%s, "
                  "%.2f Minst captured once, %.2f Minst replayed\n",
                  s.runs, s.wallSeconds, s.threads,
                  s.threads == 1 ? "" : "s", s.runsPerSec(),
                  s.instsPerSec() / 1e6, 100.0 * s.utilisation(),
                  static_cast<unsigned long long>(s.traceHits),
                  s.traceHits == 1 ? "" : "s",
                  static_cast<unsigned long long>(s.traceMisses),
                  s.traceMisses == 1 ? "" : "es",
                  static_cast<double>(s.instsCaptured) / 1e6,
                  static_cast<double>(s.instsReplayed) / 1e6);
    std::string out = buf;
    // Only mention auditing when it actually ran (RRS_AUDIT / debug
    // builds): zero violations here is a per-sweep self-check receipt.
    if (s.auditsRun > 0) {
        std::snprintf(buf, sizeof(buf),
                      "rename audit: %llu invariant check%s, "
                      "%llu violation%s\n",
                      static_cast<unsigned long long>(s.auditsRun),
                      s.auditsRun == 1 ? "" : "s",
                      static_cast<unsigned long long>(s.auditViolations),
                      s.auditViolations == 1 ? "" : "s");
        out += buf;
    }
    return out;
}

void
SweepRunner::printSummary(std::ostream &os) const
{
    os << formatSweepFooter(lastSummary);
}

} // namespace rrs::harness
