#include "ledger.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/atomicfile.hh"
#include "harness/benchjson.hh"
#include "obs/jsonlite.hh"
#include "obs/stallcause.hh"

namespace rrs::harness {

namespace {

constexpr std::uint64_t fnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t fnvPrime = 0x100000001b3ULL;

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = fnvOffset;
    for (unsigned char c : s) {
        h ^= c;
        h *= fnvPrime;
    }
    return h;
}

std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::uint64_t
asU64(const obs::json::Value &v)
{
    return static_cast<std::uint64_t>(v.num);
}

/**
 * 64-bit values (hashes, seeds) travel as 16-hex-char strings: JSON
 * numbers are doubles, which silently round anything past 2^53.
 */
bool
parseHex64(const std::string &s, std::uint64_t &out)
{
    if (s.empty() || s.size() > 16)
        return false;
    std::uint64_t v = 0;
    for (char c : s) {
        int d;
        if (c >= '0' && c <= '9')
            d = c - '0';
        else if (c >= 'a' && c <= 'f')
            d = c - 'a' + 10;
        else
            return false;
        v = (v << 4) | static_cast<std::uint64_t>(d);
    }
    out = v;
    return true;
}

} // namespace

std::string
digestHex(std::uint64_t digest)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(digest));
    return buf;
}

std::string
nodeKey(const NodeSpec &spec)
{
    std::ostringstream key;
    key << "ledger=" << ledgerSchemaVersion
        << ";bench=" << benchSchemaVersion << ";w=" << spec.workload
        << ";src=" << digestHex(spec.sourceHash)
        << ";suite=" << spec.suite << ";scheme=" << spec.scheme
        << ";regs=" << spec.regs << ";cap=" << spec.cap << ";params=";
    bool first = true;
    for (const auto &[k, v] : spec.params) {
        key << (first ? "" : ",") << k << ":" << num(v);
        first = false;
    }
    key << ";sampling=" << spec.sampling.warm << ":"
        << spec.sampling.detailed << ":" << spec.sampling.period << ":"
        << spec.sampling.fillInsts << ":" << num(spec.sampling.ciFloorPct)
        << ";seed=" << digestHex(spec.seed);
    return key.str();
}

std::uint64_t
nodeDigest(const NodeSpec &spec)
{
    return fnv1a(nodeKey(spec));
}

LedgerEntry
makeLedgerEntry(NodeSpec spec, const Outcome &outcome)
{
    LedgerEntry e;
    e.run.workload = spec.workload;
    e.run.scheme = spec.scheme;
    e.run.insts = outcome.sim.committedInsts;
    e.run.cycles = outcome.sim.cycles;
    e.run.wallSeconds = 0;       // host data never enters a node file
    e.run.sampled = outcome.sampled;
    e.stalls = outcome.stalls;
    e.allocations = outcome.allocations;
    e.reuses = outcome.reuses;
    e.repairs = outcome.repairs;
    e.renameStalls = outcome.renameStalls;
    e.spec = std::move(spec);
    return e;
}

std::string
renderLedgerEntryJson(const LedgerEntry &e)
{
    std::ostringstream os;
    os << "{\n"
       << "  \"ledger_schema\": " << ledgerSchemaVersion << ",\n"
       << "  \"digest\": " << jsonStr(digestHex(nodeDigest(e.spec)))
       << ",\n"
       << "  \"key\": " << jsonStr(nodeKey(e.spec)) << ",\n"
       << "  \"node\": {\n"
       << "    \"workload\": " << jsonStr(e.spec.workload) << ",\n"
       << "    \"suite\": " << jsonStr(e.spec.suite) << ",\n"
       << "    \"source_hash\": " << jsonStr(digestHex(e.spec.sourceHash))
       << ",\n"
       << "    \"scheme\": " << jsonStr(e.spec.scheme) << ",\n"
       << "    \"label\": " << jsonStr(e.spec.label) << ",\n"
       << "    \"params\": {";
    bool first = true;
    for (const auto &[k, v] : e.spec.params) {
        os << (first ? "" : ", ") << jsonStr(k) << ": " << num(v);
        first = false;
    }
    os << "},\n"
       << "    \"regs\": " << e.spec.regs << ",\n"
       << "    \"cap\": " << e.spec.cap << ",\n"
       << "    \"sampling\": {\"warm\": " << e.spec.sampling.warm
       << ", \"detailed\": " << e.spec.sampling.detailed
       << ", \"period\": " << e.spec.sampling.period
       << ", \"fill\": " << e.spec.sampling.fillInsts
       << ", \"ci_floor_pct\": " << num(e.spec.sampling.ciFloorPct)
       << "},\n"
       << "    \"seed\": " << jsonStr(digestHex(e.spec.seed)) << "\n"
       << "  },\n"
       << "  \"run\": " << renderRunRecordJson(e.run) << ",\n"
       << "  \"stalls\": {";
    for (int i = 0; i < obs::numCycleCauses; ++i) {
        os << (i ? ", " : "")
           << jsonStr(obs::cycleCauseName(
                  static_cast<obs::CycleCause>(i)))
           << ": " << e.stalls.counts[i];
    }
    os << "},\n"
       << "  \"rename\": {\"allocations\": " << num(e.allocations)
       << ", \"reuses\": " << num(e.reuses) << ", \"repairs\": "
       << num(e.repairs) << ", \"rename_stalls\": "
       << num(e.renameStalls) << "}\n"
       << "}\n";
    return os.str();
}

bool
parseLedgerEntryJson(const std::string &text, LedgerEntry &out,
                     std::string &error)
{
    obs::json::Value doc;
    if (!obs::json::parse(text, doc, &error))
        return false;
    if (!doc.isObject()) {
        error = "ledger entry: root must be an object";
        return false;
    }
    const obs::json::Value *schema = doc.find("ledger_schema");
    if (!schema || !schema->isNumber() ||
        static_cast<int>(schema->num) != ledgerSchemaVersion) {
        error = "ledger entry: missing or unsupported ledger_schema "
                "(expected " + std::to_string(ledgerSchemaVersion) + ")";
        return false;
    }
    const obs::json::Value *node = doc.find("node");
    const obs::json::Value *run = doc.find("run");
    if (!node || !node->isObject() || !run || !run->isObject()) {
        error = "ledger entry: missing node/run objects";
        return false;
    }

    LedgerEntry e;
    if (const auto *v = node->find("workload"))
        e.spec.workload = v->str;
    if (const auto *v = node->find("suite"))
        e.spec.suite = v->str;
    if (const auto *v = node->find("source_hash")) {
        if (!parseHex64(v->str, e.spec.sourceHash)) {
            error = "ledger entry: bad source_hash";
            return false;
        }
    }
    if (const auto *v = node->find("scheme"))
        e.spec.scheme = v->str;
    if (const auto *v = node->find("label"))
        e.spec.label = v->str;
    if (const auto *v = node->find("params")) {
        for (const auto &[k, pv] : v->members)
            e.spec.params.emplace_back(k, pv.num);
    }
    if (const auto *v = node->find("regs"))
        e.spec.regs = static_cast<std::uint32_t>(v->num);
    if (const auto *v = node->find("cap"))
        e.spec.cap = asU64(*v);
    if (const auto *v = node->find("sampling")) {
        if (const auto *s = v->find("warm"))
            e.spec.sampling.warm = asU64(*s);
        if (const auto *s = v->find("detailed"))
            e.spec.sampling.detailed = asU64(*s);
        if (const auto *s = v->find("period"))
            e.spec.sampling.period = asU64(*s);
        if (const auto *s = v->find("fill"))
            e.spec.sampling.fillInsts = asU64(*s);
        if (const auto *s = v->find("ci_floor_pct"))
            e.spec.sampling.ciFloorPct = s->num;
    }
    if (const auto *v = node->find("seed")) {
        if (!parseHex64(v->str, e.spec.seed)) {
            error = "ledger entry: bad seed";
            return false;
        }
    }

    parseRunRecordJson(*run, e.run);

    if (const auto *v = doc.find("stalls")) {
        for (int i = 0; i < obs::numCycleCauses; ++i) {
            if (const auto *s = v->find(obs::cycleCauseName(
                    static_cast<obs::CycleCause>(i))))
                e.stalls.counts[i] = asU64(*s);
        }
    }
    if (const auto *v = doc.find("rename")) {
        if (const auto *s = v->find("allocations"))
            e.allocations = s->num;
        if (const auto *s = v->find("reuses"))
            e.reuses = s->num;
        if (const auto *s = v->find("repairs"))
            e.repairs = s->num;
        if (const auto *s = v->find("rename_stalls"))
            e.renameStalls = s->num;
    }

    // The stored digest must match the spec we just parsed: a mismatch
    // means the file was hand-edited or the key grammar changed without
    // a schema bump, and trusting it would poison every consumer.
    if (const auto *v = doc.find("digest")) {
        if (v->str != digestHex(nodeDigest(e.spec))) {
            error = "ledger entry: digest does not match its node spec "
                    "(corrupt or hand-edited entry)";
            return false;
        }
    }
    out = std::move(e);
    return true;
}

bool
Ledger::has(const std::string &hex) const
{
    std::error_code ec;
    return std::filesystem::exists(nodePath(hex), ec);
}

bool
Ledger::tryLoad(const std::string &hex, LedgerEntry &out,
                std::string &error) const
{
    std::ifstream in(nodePath(hex), std::ios::binary);
    if (!in) {
        error = "cannot open ledger node " + nodePath(hex);
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    if (!parseLedgerEntryJson(text.str(), out, error)) {
        error = nodePath(hex) + ": " + error;
        return false;
    }
    return true;
}

bool
Ledger::store(const std::string &hex, const LedgerEntry &e,
              std::string &error) const
{
    return tryWriteFileAtomic(nodePath(hex), renderLedgerEntryJson(e),
                              error);
}

std::vector<std::string>
Ledger::listNodes() const
{
    std::vector<std::string> out;
    std::error_code ec;
    std::filesystem::directory_iterator it(nodesDir(), ec);
    if (ec)
        return out;
    for (const auto &entry : it) {
        const std::string name = entry.path().filename().string();
        if (name.size() == 21 &&
            name.compare(name.size() - 5, 5, ".json") == 0)
            out.push_back(name.substr(0, 16));
    }
    std::sort(out.begin(), out.end());
    return out;
}

LedgerDiff
diffLedgers(const Ledger &base, const Ledger &cur)
{
    LedgerDiff d;
    const std::vector<std::string> baseNodes = base.listNodes();
    const std::vector<std::string> curNodes = cur.listNodes();
    std::vector<std::string> shared;
    std::set_difference(baseNodes.begin(), baseNodes.end(),
                        curNodes.begin(), curNodes.end(),
                        std::back_inserter(d.onlyBase));
    std::set_difference(curNodes.begin(), curNodes.end(),
                        baseNodes.begin(), baseNodes.end(),
                        std::back_inserter(d.onlyCur));
    std::set_intersection(baseNodes.begin(), baseNodes.end(),
                          curNodes.begin(), curNodes.end(),
                          std::back_inserter(shared));

    auto u64 = [](std::uint64_t v) { return std::to_string(v); };
    for (const std::string &hex : shared) {
        LedgerEntry b, c;
        std::string error;
        if (!base.tryLoad(hex, b, error)) {
            d.drift.push_back({hex, "?", "?", 0, "unreadable-base",
                               error, ""});
            continue;
        }
        if (!cur.tryLoad(hex, c, error)) {
            d.drift.push_back({hex, b.spec.workload, b.spec.label,
                               b.spec.regs, "unreadable-cur", "", error});
            continue;
        }
        auto row = [&](const std::string &metric,
                       const std::string &baseVal,
                       const std::string &curVal) {
            d.drift.push_back({hex, b.spec.workload, b.spec.label,
                               b.spec.regs, metric, baseVal, curVal});
        };
        if (b.run.sampled.enabled || c.run.sampled.enabled) {
            // Same digest, so the sampling schedule matched; gate the
            // estimates on CI overlap like rrs-benchdiff does.
            if (b.run.sampled.enabled != c.run.sampled.enabled) {
                row("sampled", b.run.sampled.enabled ? "yes" : "no",
                    c.run.sampled.enabled ? "yes" : "no");
            } else if (!sampledCiOverlap(b.run.sampled, c.run.sampled)) {
                row("mean_ipc", num(b.run.sampled.meanIpc),
                    num(c.run.sampled.meanIpc));
            }
            continue;
        }
        if (b.run.insts != c.run.insts)
            row("insts", u64(b.run.insts), u64(c.run.insts));
        if (b.run.cycles != c.run.cycles)
            row("cycles", u64(b.run.cycles), u64(c.run.cycles));
        for (int i = 0; i < obs::numCycleCauses; ++i) {
            if (b.stalls.counts[i] != c.stalls.counts[i]) {
                row(std::string("stall.") +
                        obs::cycleCauseName(
                            static_cast<obs::CycleCause>(i)),
                    u64(b.stalls.counts[i]), u64(c.stalls.counts[i]));
            }
        }
        if (b.reuses != c.reuses)
            row("reuses", num(b.reuses), num(c.reuses));
        if (b.repairs != c.repairs)
            row("repairs", num(b.repairs), num(c.repairs));
    }
    return d;
}

} // namespace rrs::harness
