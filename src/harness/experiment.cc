#include "experiment.hh"

#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "common/threadpool.hh"
#include "core/o3core.hh"
#include "harness/sampling.hh"
#include "harness/tracecache.hh"
#include "obs/flightrec.hh"
#include "obs/pipetrace.hh"
#include "obs/profiler.hh"
#include "obs/sampler.hh"
#include "obs/telemetry.hh"
#include "rename/audit.hh"

namespace rrs::harness {

namespace {

/**
 * The process-wide audit default from RRS_AUDIT: -1 when the variable
 * is unset, otherwise its value (0 disables, 1 audits every commit,
 * N > 1 audits every N cycles).  Parsed during static initialisation
 * so a malformed value dies cleanly before any sweep worker starts
 * (rrs_fatal from inside a pool thread would race process teardown).
 */
const long long envAuditDefault = [] {
    const char *env = std::getenv("RRS_AUDIT");
    if (!env)
        return -1LL;
    char *end = nullptr;
    long long v = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || v < 0)
        rrs_fatal("RRS_AUDIT must be a non-negative integer, got '%s'",
                  env);
    return v;
}();

/** Resolve a run's audit interval (0 = auditing off). */
Cycles
resolveAuditInterval(const ObsOptions &obs)
{
    if (obs.auditDisabled)
        return 0;
    if (obs.auditInterval > 0)
        return obs.auditInterval;
    if (envAuditDefault >= 0)
        return static_cast<Cycles>(envAuditDefault);
#ifndef NDEBUG
    // Assert-enabled builds self-check at every commit by default.
    return 1;
#else
    return 0;
#endif
}

/**
 * The process-wide flight-recorder default from RRS_FLIGHTREC_DEPTH:
 * -1 when unset, otherwise the ring depth (0 disables).  Parsed at
 * static init for the same die-before-the-sweep reason as RRS_AUDIT.
 */
const long long envFlightRecDepth = [] {
    const char *env = std::getenv("RRS_FLIGHTREC_DEPTH");
    if (!env)
        return -1LL;
    char *end = nullptr;
    long long v = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || v < 0)
        rrs_fatal("RRS_FLIGHTREC_DEPTH must be a non-negative integer, "
                  "got '%s'", env);
    return v;
}();

/** Resolve a run's flight-recorder depth (0 = recorder off). */
std::uint32_t
resolveFlightRecDepth(const ObsOptions &obs, bool auditingOn)
{
    if (obs.flightRecDepth > 0)
        return obs.flightRecDepth;
    if (envFlightRecDepth >= 0)
        return static_cast<std::uint32_t>(envFlightRecDepth);
    // Auditing on with no explicit depth: keep forensics for the
    // violation the auditor might find.
    return auditingOn ? 256u : 0u;
}

} // namespace

Outcome
runOn(const workloads::Workload &w, const RunConfig &config,
      bool sampleSharing)
{
    // Capture-once / replay-many: the functional emulation of
    // (workload, cap) happens at most once per process; every run —
    // and every lane of a parallel sweep — replays the shared
    // immutable trace through its own cursor.
    trace::ReplayStream stream(traceCache().get(w, config.maxInsts));
    mem::MemSystem mem(config.mem);
    bpred::BranchPredictor bp(config.bpred);

    // String-keyed scheme dispatch: the registry (rename/scheme.hh)
    // builds the renamer, prices it, and reads its counters back, so
    // this path never names a concrete scheme type.
    const rename::RenameScheme &scheme =
        rename::renameScheme(config.scheme);
    std::unique_ptr<rename::Renamer> renamer =
        scheme.makeRenamer(config.rename);

    core::O3Core core(config.core, *renamer, mem, bp, stream);

    std::unique_ptr<obs::PipeTracer> tracer;
    if (!config.obs.pipeTracePath.empty()) {
        tracer = std::make_unique<obs::PipeTracer>(config.obs.pipeTracePath);
        core.setTracer(tracer.get());
    }

    std::unique_ptr<rename::RenameAuditor> auditor;
    const Cycles auditEvery = resolveAuditInterval(config.obs);
    const bool auditing = auditEvery > 0 && scheme.auditable();
    if (auditing) {
        auditor = std::make_unique<rename::RenameAuditor>();
        core.setAuditor(auditor.get(), auditEvery, auditEvery == 1);
    }

    // Crash-time forensics: keep the last N rename/pipeline events so
    // a panic (e.g. an audit violation) or fatal dumps what the rename
    // stage just did, along with the run's identity.
    std::unique_ptr<obs::FlightRecorder> flightRec;
    const std::uint32_t frDepth =
        resolveFlightRecDepth(config.obs, auditing);
    if (frDepth > 0) {
        flightRec = std::make_unique<obs::FlightRecorder>(frDepth);
        flightRec->setContext("workload", w.name);
        flightRec->setContext("scheme", config.scheme);
        flightRec->setContext("sweep_seed",
                              std::to_string(config.core.seed));
        flightRec->setContext("max_insts",
                              std::to_string(config.maxInsts));
        flightRec->setContext("audit_interval",
                              std::to_string(auditEvery));
        flightRec->arm();
        core.setFlightRecorder(flightRec.get());
    }

    Outcome out;
    obs::RunTelemetry *telem = config.obs.telemetry;
    obs::OccupancySampler occupancy;
    const bool sampleOccupancy = config.obs.sampleInterval > 0;
    if (sampleSharing || sampleOccupancy || telem) {
        // One sampler hook serves both consumers: the Fig. 9 sharing
        // series (legacy) and the obs occupancy time series.  The
        // interval is the obs one when set, the Fig. 9 default (128)
        // otherwise.
        Cycles interval = sampleOccupancy ? config.obs.sampleInterval
                                          : Cycles{128};
        rename::Renamer *ren = renamer.get();
        core.setSampler(
            [&, ren](Tick tick) {
                if (sampleSharing) {
                    out.sharedAtLeast1.push_back(
                        ren->sharedAtLeast(RegClass::Int, 1) +
                        ren->sharedAtLeast(RegClass::Float, 1));
                    out.sharedAtLeast2.push_back(
                        ren->sharedAtLeast(RegClass::Int, 2) +
                        ren->sharedAtLeast(RegClass::Float, 2));
                    out.sharedAtLeast3.push_back(
                        ren->sharedAtLeast(RegClass::Int, 3) +
                        ren->sharedAtLeast(RegClass::Float, 3));
                }
                if (sampleOccupancy || telem) {
                    obs::OccupancyPoint p;
                    p.freeInt = ren->freeRegs(RegClass::Int);
                    p.freeFp = ren->freeRegs(RegClass::Float);
                    p.shared = ren->sharedRegs(RegClass::Int) +
                               ren->sharedRegs(RegClass::Float);
                    p.rob = core.robSize();
                    p.iq = core.iqSize();
                    p.lsq = core.lsqSize();
                    if (sampleOccupancy)
                        occupancy.record(tick, p);
                    if (telem) {
                        // Cycle-stamped counter samples: simulated
                        // time, so the exported trace is identical
                        // for every thread count.
                        telem->counter(
                            "occupancy", tick,
                            {{"freeInt", static_cast<double>(p.freeInt)},
                             {"freeFp", static_cast<double>(p.freeFp)},
                             {"shared", static_cast<double>(p.shared)},
                             {"rob", static_cast<double>(p.rob)},
                             {"iq", static_cast<double>(p.iq)},
                             {"lsq", static_cast<double>(p.lsq)}});
                    }
                }
            },
            interval);
    }

    {
        // The timing-model phase of the run; capture/warmup time is
        // charged inside traceCache().get() above.  Exact mode (the
        // default) is the untouched core.run() path; sampled mode
        // hands the same rig to the SMARTS controller, which owns the
        // warm/detailed/skip schedule over the same stream.
        obs::ScopedPhase phase("simulate");
        if (config.sampling.enabled()) {
            SamplingController sampler(config.sampling, core, stream,
                                       mem, bp);
            out.sampled = sampler.run(out.sim);
        } else {
            out.sim = core.run();
        }
    }
    traceCache().noteReplayed(stream.replayed());
    out.stalls = core.stallBreakdown();
    if (sampleOccupancy && !config.obs.timeseriesCsvPath.empty())
        occupancy.writeCsvFile(config.obs.timeseriesCsvPath);
    out.condAccuracy = bp.condAccuracy();
    out.mispredicts = core.mispredictCount();
    out.exceptions = core.exceptionCount();
    const rename::SchemeCounters counters = scheme.counters(*renamer);
    out.allocations = counters.allocations;
    out.reuses = counters.reuses;
    out.repairs = counters.repairs;
    out.renameStalls = counters.renameStalls;
    out.historyPeak = counters.historyPeak;
    out.fig12 = counters.fig12;
    if (auditor) {
        out.auditsRun = auditor->auditCount();
        out.auditViolations = auditor->violationCount();
    }
    if (telem) {
        // The run's spans, in the simulated-time domain (ts/dur are
        // cycles): a "run" umbrella with the identifying args, and the
        // "simulate" phase nested inside it.  Everything recorded here
        // is an Outcome-class quantity, so the trace inherits the
        // sweep's bit-identical-across-thread-counts contract.
        telem->setTitle(w.name + " x " + config.scheme);
        obs::TelemetrySpan &run = telem->span("run", 0, out.sim.cycles);
        obs::argStr(run, "workload", w.name);
        obs::argStr(run, "scheme", config.scheme);
        obs::argInt(run, "seed", config.core.seed);
        obs::argInt(run, "insts", out.sim.committedInsts);
        obs::argInt(run, "cycles", out.sim.cycles);
        obs::argNum(run, "ipc", out.sim.ipc());
        obs::TelemetrySpan &sim =
            telem->span("simulate", 0, out.sim.cycles);
        obs::argInt(sim, "insts", out.sim.committedInsts);
        obs::argNum(sim, "rename_stalls", out.renameStalls);
        obs::argNum(sim, "mispredicts", out.mispredicts);
    }
    return out;
}

namespace {

/** Bridge the reuse scheme's preset tables into the harness type. */
std::vector<EqualAreaRow>
bridgePresets(bool paperPreset)
{
    std::vector<EqualAreaRow> rows;
    for (const auto &p : rename::reuseEqualAreaPresets(paperPreset))
        rows.push_back(EqualAreaRow{p.baselineRegs, p.banks});
    return rows;
}

} // namespace

const std::vector<EqualAreaRow> &
tableIIIPresets()
{
    // Paper Table III rows; the data lives with the reuse scheme
    // plugin (rename/scheme.cc).
    static const std::vector<EqualAreaRow> rows = bridgePresets(true);
    return rows;
}

const std::vector<EqualAreaRow> &
tunedEqualAreaRows()
{
    static const std::vector<EqualAreaRow> rows = bridgePresets(false);
    return rows;
}

rename::BankConfig
equalAreaBanks(std::uint32_t baselineRegs, bool paperPreset)
{
    return rename::reuseEqualAreaBanks(baselineRegs, paperPreset);
}

rename::BankConfig
solveEqualAreaBanks(const area::AreaModel &model,
                    std::uint32_t baselineRegs, std::uint32_t bits,
                    bool chargeOverheads)
{
    rename::BankConfig banks = equalAreaBanks(baselineRegs);
    double overhead = 0;
    if (chargeOverheads) {
        std::uint32_t total =
            banks[0] + banks[1] + banks[2] + banks[3];
        overhead = model.prtArea(total, 2) +
                   model.iqOverheadArea(40, 4) +
                   model.predictorArea(512, 2);
    }
    std::array<std::uint32_t, 4> shadow = {0, banks[1], banks[2],
                                           banks[3]};
    std::uint32_t n0 = model.equalAreaBank0(baselineRegs, bits, shadow,
                                            overhead, 0);
    banks[0] = n0;
    return banks;
}

std::vector<rename::BankConfig>
solveEqualAreaTable(const area::AreaModel &model,
                    const std::vector<std::uint32_t> &baselineSizes,
                    std::uint32_t bits, bool chargeOverheads,
                    unsigned threads)
{
    std::vector<rename::BankConfig> out(baselineSizes.size());
    ThreadPool pool(threads);
    // The model is read-only here; every task writes only its slot.
    pool.parallelFor(baselineSizes.size(), [&](std::size_t i) {
        out[i] = solveEqualAreaBanks(model, baselineSizes[i], bits,
                                     chargeOverheads);
    });
    return out;
}

RunConfig
schemeConfig(const std::string &scheme, std::uint32_t baselineRegs)
{
    RunConfig cfg;
    cfg.scheme = scheme;
    rename::renameScheme(scheme).configureEqualArea(cfg.rename,
                                                    baselineRegs);
    return cfg;
}

RunConfig
baselineConfig(std::uint32_t regsPerClass)
{
    return schemeConfig("baseline", regsPerClass);
}

RunConfig
reuseConfig(std::uint32_t baselineRegsPerClass)
{
    return schemeConfig("reuse", baselineRegsPerClass);
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logsum = 0;
    for (double v : values) {
        rrs_assert(v > 0, "geomean needs positive values");
        logsum += std::log(v);
    }
    return std::exp(logsum / static_cast<double>(values.size()));
}

} // namespace rrs::harness
