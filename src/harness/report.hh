/**
 * @file
 * The campaign report generator: renders a ledger + its campaign.json
 * sidecar into one markdown (or HTML-wrapped) document (DESIGN §4j).
 *
 * Sections, in order:
 *
 *  1. Header — campaign name, git sha, node counts, wall clock.
 *  2. One block per declared figure, rendered by the *same*
 *     harness/figures renderers the bench binaries print through, fed
 *     from outcomes reconstructed out of ledger nodes — so each fenced
 *     block is byte-identical to the direct bench output (sampled
 *     grids included: CI columns and whiskers appear in both).
 *  3. Per-node stall attribution — every simulated node's full-cycle
 *     breakdown (obs/stallcause.hh), as percentages.
 *  4. Phase profile — the host-side profiler rows from the sidecar
 *     (present when the campaign ran under RRS_PROF).
 *  5. Drift vs a baseline ledger (optional): diffLedgers' verdicts —
 *     exact nodes byte-compared, sampled nodes on 95% CI overlap —
 *     with each drifted metric named per node, so a regression is
 *     explained (which node, which metric, which stall cause grew).
 */

#ifndef RRS_HARNESS_REPORT_HH
#define RRS_HARNESS_REPORT_HH

#include <string>

#include "harness/ledger.hh"

namespace rrs::harness {

/** Report knobs. */
struct ReportOptions
{
    /** Non-empty: append the drift section against this ledger. */
    std::string baselineDir;

    /** Wrap the markdown in a minimal self-contained HTML page. */
    bool html = false;
};

/**
 * Render the campaign report for a ledger directory.
 * @return false with `error` set when the ledger has no readable
 *         campaign.json sidecar or a referenced node is missing or
 *         malformed.
 */
bool tryRenderCampaignReport(const Ledger &ledger,
                             const ReportOptions &opts, std::string &out,
                             std::string &error);

/** Rebuild a figure-renderer Outcome from a stored ledger node. */
Outcome outcomeFromEntry(const LedgerEntry &e);

} // namespace rrs::harness

#endif // RRS_HARNESS_REPORT_HH
