/**
 * @file
 * Declarative sweep matrices: the (schemes x register-file sizes) grid
 * a bench iterates, expressed as a small JSON document instead of
 * nested C++ loops.  Example:
 *
 *     {
 *       "schemes": ["baseline",
 *                   {"scheme": "reuse", "label": "1-bit counter",
 *                    "params": {"counter_bits": 1}}],
 *       "rf_sizes": [48, 56, 64],
 *       "cap": 20000
 *     }
 *
 * A scheme column is either a bare registry name (its equal-area
 * configuration at each size) or an object adding a display label and
 * declarative parameter overrides (the keys each scheme publishes via
 * RenameScheme::paramKeys()).  Every diagnostic — malformed JSON,
 * unknown scheme, unknown parameter key, duplicate keys, an empty grid
 * — is raised at parse time with a clear message, so a bad matrix can
 * never crash or skew a sweep that has already started.
 *
 * Expansion order is part of the determinism contract: workloads
 * outermost, then sizes, then scheme columns in document order.  Run
 * seeds derive from submission indices (harness/sweep.hh), so this
 * order — and therefore the results — is bit-identical to the
 * hand-written loops it replaced.
 */

#ifndef RRS_HARNESS_SWEEPMATRIX_HH
#define RRS_HARNESS_SWEEPMATRIX_HH

#include <string>
#include <utility>
#include <vector>

#include "harness/sweep.hh"

namespace rrs::obs::json {
class Value;
}

namespace rrs::harness {

/** One scheme column of a sweep matrix. */
struct SchemeSpec
{
    std::string scheme;   //!< registry key (validated at parse time)
    std::string label;    //!< display label; defaults to the key

    /** Declarative overrides, applied after configureEqualArea. */
    std::vector<std::pair<std::string, double>> params;
};

/** A parsed sweep matrix. */
struct SweepMatrix
{
    std::vector<SchemeSpec> schemes;
    std::vector<std::uint32_t> rfSizes;

    std::uint64_t cap = 0;       //!< per-run instruction cap; 0: default
    bool sampleSharing = false;  //!< collect the Fig. 9 series per run
    std::string suite;           //!< workload suite filter; "": all
    bool audit = true;           //!< false: force invariant auditing off

    /**
     * SMARTS sampled simulation for every run of the grid (a
     * `"sampling": {"warm": W, "detailed": D, "period": P}` block;
     * harness/sampling.hh).  Disabled — exact simulation — when absent.
     */
    SamplingParams sampling;
};

/**
 * Parse and validate a sweep-matrix document.
 * @return false with a diagnostic in `error` on any problem; `out` is
 *         untouched on failure.
 */
bool tryParseSweepMatrix(const std::string &text, SweepMatrix &out,
                         std::string &error);

/**
 * Same validation over an already-parsed JSON value — the campaign
 * manifest (harness/campaign.hh) embeds one matrix object per figure
 * and routes each through here, so a matrix is diagnosed identically
 * whether it arrives as its own file or inline.
 */
bool tryParseSweepMatrix(const obs::json::Value &root, SweepMatrix &out,
                         std::string &error);

/**
 * jsonlite keeps object members in document order and does not reject
 * repeats; any parser of a hand-written document (sweep matrices,
 * campaign manifests) calls this so a duplicated key is a named
 * diagnostic instead of a silently-ignored member.
 */
bool checkNoDuplicateJsonKeys(const obs::json::Value &obj,
                              const std::string &where,
                              std::string &error);

/** Parse a matrix document, rrs_fatal on any diagnostic. */
SweepMatrix parseSweepMatrix(const std::string &text);

/** Load and parse a matrix file, rrs_fatal on I/O or parse errors. */
SweepMatrix loadSweepMatrixFile(const std::string &path);

/**
 * The RunConfig of one scheme column at one baseline-equivalent size:
 * the scheme's equal-area configuration with the column's declarative
 * overrides applied on top.
 */
RunConfig matrixConfig(const SchemeSpec &spec, std::uint32_t baselineRegs,
                       const SweepMatrix &m, std::uint64_t capDefault);

/**
 * Expand a matrix over a workload list into sweep items, in the
 * deterministic submission order documented above.
 * @param capDefault per-run instruction cap when the matrix sets none.
 */
std::vector<SweepItem> expandSweepMatrix(
    const SweepMatrix &m, const std::vector<workloads::Workload> &ws,
    std::uint64_t capDefault);

} // namespace rrs::harness

#endif // RRS_HARNESS_SWEEPMATRIX_HH
