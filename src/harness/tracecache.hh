/**
 * @file
 * Process-wide trace cache: capture once, replay for every sweep run.
 *
 * Keyed by (workload name, resolved stream cap).  The first requester
 * of a key captures the trace (at most one capture per key even when
 * many sweep lanes miss concurrently — later arrivals block on the
 * capturing lane's future); every later request is a cache hit that
 * shares the same immutable RecordedTrace.  Optionally spills captured
 * traces to `RRS_TRACE_DIR` as versioned binary files
 * (trace/tracefile.hh) and loads them back in later processes, so a
 * whole bench suite pays the functional-emulation cost of each
 * (workload, cap) pair once per machine instead of once per run.
 *
 * Invalidation: a spilled file is trusted only if its workload name,
 * cap and assembly source hash all match the current registry and its
 * content digest verifies; anything stale, truncated or corrupt is
 * ignored (with a warning) and recaptured fresh.  Bumping
 * trace::traceFileVersion orphans all older spills.
 *
 * Counters (hits, misses, captured vs replayed instructions, spill
 * traffic) are a stats::Group, so they join the text dumps and the
 * --stats-json export; their values are deterministic across thread
 * counts.
 */

#ifndef RRS_HARNESS_TRACECACHE_HH
#define RRS_HARNESS_TRACECACHE_HH

#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "stats/stats.hh"
#include "trace/recorded.hh"
#include "workloads/workloads.hh"

namespace rrs::harness {

class TraceCache : public stats::Group
{
  public:
    /**
     * Snapshot of the cache counters.  All count fields are
     * deterministic across thread counts; the pack-seconds fields are
     * host wall clock (reporting only — they never reach exact-metric
     * surfaces like BENCH json trace_cache blocks or telemetry bytes).
     */
    struct Counters
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t capturedInsts = 0;
        std::uint64_t replayedInsts = 0;
        std::uint64_t spillLoads = 0;
        std::uint64_t spillStores = 0;
        std::uint64_t packedRecords = 0;
        double packSecondsCapture = 0.0;
        double packSecondsLoad = 0.0;
    };

    /** Spill directory defaults to the RRS_TRACE_DIR environment. */
    TraceCache();

    /**
     * The trace for (workload, maxInsts), capturing it on first use.
     * @param maxInsts cap override; 0 resolves to the workload default
     *        (the resolved value is the cache key, so 0 and the
     *        explicit default share an entry)
     */
    trace::TracePtr get(const workloads::Workload &w,
                        std::uint64_t maxInsts = 0);

    /** Account instructions a ReplayStream fed to a timing run. */
    void noteReplayed(std::uint64_t insts);

    Counters counters() const;

    /** Drop all entries and reset the counters (tests). */
    void clear();

    /** Override the spill directory; empty string disables spilling. */
    void setSpillDir(std::string dir);
    const std::string &spillDir() const { return dir; }

  private:
    using Key = std::pair<std::string, std::uint64_t>;

    mutable std::mutex mu;
    std::map<Key, std::shared_future<trace::TracePtr>> entries;
    std::string dir;

    // All mutations happen under `mu`; reads for reporting go through
    // counters(), which locks too, so the group can be dumped while a
    // sweep is idle without racing.
    stats::Scalar hitsStat;
    stats::Scalar missesStat;
    stats::Scalar capturedStat;
    stats::Scalar replayedStat;
    stats::Scalar spillLoadsStat;
    stats::Scalar spillStoresStat;
    stats::Scalar packedRecordsStat;
    stats::Scalar packCaptureSecondsStat;
    stats::Scalar packLoadSecondsStat;
};

/** The process-wide cache every harness run shares. */
TraceCache &traceCache();

} // namespace rrs::harness

#endif // RRS_HARNESS_TRACECACHE_HH
