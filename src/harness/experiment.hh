/**
 * @file
 * Experiment harness: assembles a full rig (core + renamer + memory +
 * branch predictor + workload), runs it, and extracts the numbers the
 * paper's tables and figures report.  Also owns the equal-area sizing
 * logic (Table III) that maps a baseline register-file size to the
 * proposed 4-bank organisation of the same total area.
 */

#ifndef RRS_HARNESS_EXPERIMENT_HH
#define RRS_HARNESS_EXPERIMENT_HH

#include <optional>
#include <string>
#include <vector>

#include "area/area.hh"
#include "bpred/bpred.hh"
#include "core/params.hh"
#include "harness/sampling.hh"
#include "mem/memsystem.hh"
#include "obs/stallcause.hh"
#include "rename/scheme.hh"
#include "workloads/workloads.hh"

namespace rrs::obs {
class RunTelemetry;
}

namespace rrs::harness {

/**
 * Per-run observability options (obs/ module).  All default off so the
 * hot sweep path pays nothing but a null-pointer branch per hook.
 */
struct ObsOptions
{
    /**
     * Non-empty: write an O3PipeView pipeline trace (Konata-loadable)
     * of the run to this path.  In a sweep this acts as a prefix: the
     * runner appends "_run<index>.trace" so parallel runs never share
     * a file (see SweepRunner::setTracePrefix / RRS_PIPETRACE).
     */
    std::string pipeTracePath;

    /** >0: sample occupancies every this many cycles. */
    Cycles sampleInterval = 0;

    /** Non-empty: write the sampled occupancy time series as CSV. */
    std::string timeseriesCsvPath;

    /**
     * Rename invariant auditing (rename/audit.hh).  0 defers to the
     * RRS_AUDIT environment variable (and, in assert-enabled builds
     * where RRS_AUDIT is unset, defaults to every-commit auditing); a
     * positive value forces auditing on: 1 audits after every
     * committed instruction, N > 1 audits every N cycles.  Post-squash
     * and post-flush audits always run whenever auditing is on.  Any
     * violation panics with the structured report, so it can never
     * silently skew a published table.
     */
    Cycles auditInterval = 0;

    /** Force auditing off even if RRS_AUDIT / the debug default set it. */
    bool auditDisabled = false;

    /**
     * Telemetry event buffer (obs/telemetry.hh).  Non-null: the run
     * records its spans ("run", "simulate") and occupancy counter
     * samples into the buffer; the sweep runner owns one buffer per
     * submission index and serialises them post-join (RRS_TELEMETRY).
     * Null (the default): no telemetry work at all.
     */
    obs::RunTelemetry *telemetry = nullptr;

    /**
     * Crash-time flight recorder depth (obs/flightrec.hh): how many
     * recent rename/pipeline events to keep for the crash dump.
     * 0 defers to RRS_FLIGHTREC_DEPTH — and when that is unset too,
     * auditing (RRS_AUDIT) being on implies a default depth of 256,
     * so an audit violation always dumps forensics.  Any positive
     * value forces the recorder on at that depth.
     */
    std::uint32_t flightRecDepth = 0;
};

/** One timing-run configuration. */
struct RunConfig
{
    /**
     * Rename-scheme registry key (rename/scheme.hh), e.g. "baseline"
     * or "reuse".  Resolve it with rename::findRenameScheme at
     * config-parse time (the sweep-matrix parser does) so an unknown
     * name is a diagnostic, never a crash mid-sweep.
     */
    std::string scheme = "baseline";
    rename::SchemeParams rename;         //!< per-scheme parameter blocks
    core::CoreParams core;
    mem::MemSystemParams mem;
    bpred::BPredParams bpred;
    ObsOptions obs;                      //!< tracing / sampling, off by default
    std::uint64_t maxInsts = 0;          //!< 0: workload default

    /**
     * SMARTS-style sampled simulation (harness/sampling.hh).  Disabled
     * by default: exact mode takes the identical code path it always
     * did, bit for bit.  Enabled, the run alternates functional-warm
     * spans and detailed windows and Outcome::sampled reports the
     * windowed IPC statistics.
     */
    SamplingParams sampling;
};

/** Everything a run reports. */
struct Outcome
{
    core::SimResult sim;
    double condAccuracy = 0;
    double mispredicts = 0;
    double exceptions = 0;

    // Renamer-side numbers (reuse scheme only where marked).
    double allocations = 0;
    double reuses = 0;           //!< reuse scheme
    double repairs = 0;          //!< reuse scheme
    double renameStalls = 0;
    double historyPeak = 0;      //!< peak rename-history entries
    rename::PredictorBreakdown fig12;          //!< reuse scheme

    // Invariant auditing (0 audits when auditing is off; violations
    // can only be non-zero transiently in tests — the harness check()
    // path panics on the first one).
    double auditsRun = 0;
    double auditViolations = 0;

    /**
     * Full-cycle stall attribution: every cycle of the run charged to
     * exactly one cause (stalls.sum() == sim.cycles, asserted by the
     * core at end of run).
     */
    obs::StallBreakdown stalls;

    /** Time series of shared-register occupancy (Fig. 9 sampling). */
    std::vector<std::uint32_t> sharedAtLeast1;
    std::vector<std::uint32_t> sharedAtLeast2;
    std::vector<std::uint32_t> sharedAtLeast3;

    /**
     * Sampled-run statistics (enabled only when RunConfig::sampling
     * was).  In sampled mode `sim` holds the detailed-portion
     * aggregates (windows only, fill included).
     */
    SampledSummary sampled;

    /** The headline IPC: the sampled mean when sampling, sim otherwise. */
    double
    reportedIpc() const
    {
        return sampled.enabled ? sampled.meanIpc : sim.ipc();
    }
};

/** Run one workload under one configuration. */
Outcome runOn(const workloads::Workload &w, const RunConfig &config,
              bool sampleSharing = false);

/** The paper's Table III register-file size mapping. */
struct EqualAreaRow
{
    std::uint32_t baselineRegs;
    rename::BankConfig banks;    //!< 0/1/2/3-shadow-cell bank sizes
};

/** Paper Table III presets (per register-file class). */
const std::vector<EqualAreaRow> &tableIIIPresets();

/**
 * This repository's tuned equal-area rows: bank shapes derived from
 * our Fig. 9 occupancy study (our kernels' reuse is dominated by
 * depth-1 chains, so the shadow banks are shallower than the paper's),
 * with bank 0 solved for equal area under the calibrated area model.
 */
const std::vector<EqualAreaRow> &tunedEqualAreaRows();

/**
 * Bank configuration for a given baseline size.
 * @param paperPreset true: the paper's Table III row; false (default):
 *        this repository's tuned row.
 */
rename::BankConfig equalAreaBanks(std::uint32_t baselineRegs,
                                  bool paperPreset = false);

/**
 * Recompute Table III with the area model: fixed shadow banks as in
 * the preset, bank0 solved so total area matches the baseline file of
 * `baselineRegs` registers of `bits` bits (including the PRT / IQ /
 * predictor overheads charged once against the int file).
 */
rename::BankConfig solveEqualAreaBanks(const area::AreaModel &model,
                                       std::uint32_t baselineRegs,
                                       std::uint32_t bits,
                                       bool chargeOverheads);

/**
 * The Table III sizing loop: solve the equal-area bank configuration
 * for a whole column of baseline sizes at once, fanned out across the
 * thread pool (each size's solve is independent).  Results come back
 * in input order and are identical for every thread count.
 * @param threads execution lanes; 0 picks RRS_THREADS / hardware.
 */
std::vector<rename::BankConfig> solveEqualAreaTable(
    const area::AreaModel &model,
    const std::vector<std::uint32_t> &baselineSizes, std::uint32_t bits,
    bool chargeOverheads, unsigned threads = 0);

/**
 * RunConfig for any registered scheme at the baseline-equivalent size
 * N: the scheme's configureEqualArea hook derives its same-area
 * configuration (the baseline scheme just takes N registers per
 * class).  Fatal on an unknown scheme name.
 */
RunConfig schemeConfig(const std::string &scheme,
                       std::uint32_t baselineRegs);

/**
 * Build the standard RunConfig pair for a baseline size N: the
 * baseline renamer with N regs per class, and the proposed renamer
 * with the Table III equal-area bank configuration.  Shorthands for
 * schemeConfig("baseline", N) / schemeConfig("reuse", N).
 */
RunConfig baselineConfig(std::uint32_t regsPerClass);
RunConfig reuseConfig(std::uint32_t baselineRegsPerClass);

/** Geometric mean of positive values. */
double geomean(const std::vector<double> &values);

} // namespace rrs::harness

#endif // RRS_HARNESS_EXPERIMENT_HH
