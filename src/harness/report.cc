#include "report.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "area/area.hh"
#include "harness/campaign.hh"
#include "harness/figures.hh"
#include "obs/jsonlite.hh"
#include "obs/stallcause.hh"
#include "stats/table.hh"

namespace rrs::harness {

namespace {

using obs::json::Value;

/** One figure descriptor out of the campaign.json sidecar. */
struct FigureDesc
{
    std::string name;
    std::string kind;
    std::vector<std::uint32_t> sizes;
    std::vector<std::string> schemeLabels;
    std::vector<std::pair<std::string, std::string>> workloads;
    std::vector<std::string> nodes;
};

std::string
shortDigest(const std::string &hex)
{
    return hex.substr(0, 8);
}

double
pct(std::uint64_t part, std::uint64_t whole)
{
    return whole ? 100.0 * static_cast<double>(part) /
                       static_cast<double>(whole)
                 : 0.0;
}

/**
 * Load the node grid of a sweep figure as [workload][size] pairs, in
 * the flat w-major, size, scheme-column order the plan recorded.
 */
bool
loadPairGrid(const Ledger &ledger, const FigureDesc &fig,
             std::vector<std::vector<OutcomePair>> &grid,
             std::vector<std::vector<LedgerEntry>> &entries,
             std::string &error)
{
    const std::size_t w = fig.workloads.size();
    const std::size_t s = fig.sizes.size();
    if (fig.nodes.size() != w * s * 2) {
        error = "figure '" + fig.name + "': sidecar lists " +
                std::to_string(fig.nodes.size()) + " nodes, expected " +
                std::to_string(w * s * 2);
        return false;
    }
    grid.assign(w, std::vector<OutcomePair>(s));
    entries.assign(w, {});
    std::size_t k = 0;
    for (std::size_t wi = 0; wi < w; ++wi) {
        for (std::size_t si = 0; si < s; ++si) {
            LedgerEntry base, prop;
            if (!ledger.tryLoad(fig.nodes[k], base, error) ||
                !ledger.tryLoad(fig.nodes[k + 1], prop, error))
                return false;
            grid[wi][si].base = outcomeFromEntry(base);
            grid[wi][si].prop = outcomeFromEntry(prop);
            entries[wi].push_back(std::move(base));
            entries[wi].push_back(std::move(prop));
            k += 2;
        }
    }
    return true;
}

/** The per-node stall-attribution table of one sweep figure. */
std::string
renderStallTable(const FigureDesc &fig,
                 const std::vector<std::vector<LedgerEntry>> &entries)
{
    std::vector<std::string> headers = {"node", "workload", "scheme",
                                        "regs", "cycles"};
    for (int c = 0; c < obs::numCycleCauses; ++c) {
        headers.push_back(
            std::string(obs::cycleCauseName(
                static_cast<obs::CycleCause>(c))) +
            "%");
    }
    stats::TextTable t(headers);
    for (const auto &row : entries) {
        for (const auto &e : row) {
            const std::uint64_t cycles = e.stalls.sum();
            t.row()
                .cell(shortDigest(digestHex(nodeDigest(e.spec))))
                .cell(e.spec.workload)
                .cell(e.spec.label)
                .cell(e.spec.regs)
                .cell(e.run.cycles);
            for (int c = 0; c < obs::numCycleCauses; ++c)
                t.cell(pct(e.stalls.counts[c], cycles), 1);
        }
    }
    std::ostringstream os;
    t.print(os, "Per-node cycle attribution (percent of attributed "
                "cycles; one cause per cycle)");
    return os.str();
}

/** The drift section against a baseline ledger. */
std::string
renderDriftSection(const Ledger &baseline, const Ledger &cur)
{
    std::ostringstream os;
    const LedgerDiff d = diffLedgers(baseline, cur);
    os << "Baseline: " << baseline.directory() << "\n\n";
    if (d.clean()) {
        os << "No drift: every shared node matches (exact nodes "
              "byte-identical, sampled nodes within CI overlap), and "
              "the node sets are equal.\n";
        return os.str();
    }
    if (!d.onlyBase.empty() || !d.onlyCur.empty()) {
        os << "Node-set difference: " << d.onlyBase.size()
           << " node(s) only in the baseline, " << d.onlyCur.size()
           << " only in the current ledger (campaign shape or digests "
              "changed — different cap, matrix, sampling mode, or "
              "kernel source).\n";
        auto list = [&os](const char *label,
                          const std::vector<std::string> &v) {
            if (v.empty())
                return;
            os << "  " << label << ":";
            for (const auto &hex : v)
                os << " " << shortDigest(hex);
            os << "\n";
        };
        list("only baseline", d.onlyBase);
        list("only current", d.onlyCur);
    }
    if (!d.drift.empty()) {
        os << "DRIFT in " << d.drift.size()
           << " metric(s) across shared nodes:\n";
        stats::TextTable t({"node", "workload", "scheme", "regs",
                            "metric", "baseline", "current"});
        for (const auto &row : d.drift) {
            t.row()
                .cell(shortDigest(row.digest))
                .cell(row.workload)
                .cell(row.scheme)
                .cell(row.regs)
                .cell(row.metric)
                .cell(row.baseVal)
                .cell(row.curVal);
        }
        t.print(os);
        // Explain, don't just flag: a stall-cause row names where the
        // extra cycles went.
        for (const auto &row : d.drift) {
            if (row.metric.rfind("stall.", 0) == 0) {
                os << "  node " << shortDigest(row.digest) << " ("
                   << row.workload << ", " << row.scheme << "@"
                   << row.regs << "): cycles charged to '"
                   << row.metric.substr(6) << "' went "
                   << row.baseVal << " -> " << row.curVal << "\n";
            }
        }
    }
    return os.str();
}

std::string
htmlEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '&': out += "&amp;"; break;
        case '<': out += "&lt;"; break;
        case '>': out += "&gt;"; break;
        default: out += c;
        }
    }
    return out;
}

} // namespace

Outcome
outcomeFromEntry(const LedgerEntry &e)
{
    Outcome o;
    o.sim.committedInsts = e.run.insts;
    o.sim.cycles = e.run.cycles;
    o.sampled = e.run.sampled;
    o.stalls = e.stalls;
    o.allocations = e.allocations;
    o.reuses = e.reuses;
    o.repairs = e.repairs;
    o.renameStalls = e.renameStalls;
    return o;
}

bool
tryRenderCampaignReport(const Ledger &ledger, const ReportOptions &opts,
                        std::string &out, std::string &error)
{
    const std::string sidecarPath = ledger.directory() + "/campaign.json";
    std::ifstream in(sidecarPath, std::ios::binary);
    if (!in) {
        error = "no campaign sidecar at " + sidecarPath +
                " (run rrs-campaign first)";
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    Value doc;
    if (!obs::json::parse(text.str(), doc, &error)) {
        error = sidecarPath + ": " + error;
        return false;
    }
    const Value *schema = doc.find("campaign_schema");
    if (!schema || static_cast<int>(schema->num) != campaignSchemaVersion) {
        error = sidecarPath + ": missing or unsupported campaign_schema";
        return false;
    }

    std::vector<FigureDesc> figures;
    if (const Value *figs = doc.find("figures")) {
        for (const auto &f : figs->arr) {
            FigureDesc fd;
            if (const auto *v = f.find("figure"))
                fd.name = v->str;
            if (const auto *v = f.find("kind"))
                fd.kind = v->str;
            if (const auto *v = f.find("sizes")) {
                for (const auto &e : v->arr)
                    fd.sizes.push_back(
                        static_cast<std::uint32_t>(e.num));
            }
            if (const auto *v = f.find("scheme_labels")) {
                for (const auto &e : v->arr)
                    fd.schemeLabels.push_back(e.str);
            }
            if (const auto *v = f.find("workloads")) {
                for (const auto &e : v->arr) {
                    fd.workloads.emplace_back(e.at("name").str,
                                              e.at("suite").str);
                }
            }
            if (const auto *v = f.find("nodes")) {
                for (const auto &e : v->arr)
                    fd.nodes.push_back(e.str);
            }
            figures.push_back(std::move(fd));
        }
    }

    std::ostringstream md;
    auto str = [&doc](const char *key) {
        const Value *v = doc.find(key);
        return v ? v->str : std::string();
    };
    auto count = [&doc](const char *key) -> std::uint64_t {
        const Value *v = doc.find(key);
        return v ? static_cast<std::uint64_t>(v->num) : 0;
    };
    md << "# Campaign report: " << str("name") << "\n\n"
       << "- git sha: `" << str("git_sha") << "`\n"
       << "- nodes: " << count("nodes_total") << " total, "
       << count("nodes_cached") << " cached, "
       << count("nodes_simulated") << " simulated, "
       << count("nodes_deferred") << " deferred\n";
    // threads is 0 when the last run was fully cached (no sweep ran).
    if (count("threads"))
        md << "- last run: " << count("threads") << " thread(s)\n";
    md << "\n";

    for (const auto &fig : figures) {
        md << "## " << fig.name << " (" << fig.kind << ")\n\n";
        if (fig.kind == "table3") {
            // Analytic: the equal-area solver needs no ledger nodes.
            area::AreaModel model;
            md << "```\n" << renderTable3(model, fig.sizes) << "```\n\n";
            continue;
        }

        std::vector<std::vector<OutcomePair>> grid;
        std::vector<std::vector<LedgerEntry>> entries;
        if (!loadPairGrid(ledger, fig, grid, entries, error))
            return false;
        if (fig.kind == "fig11") {
            md << "```\n" << renderFig11(fig.sizes, grid) << "```\n\n";
        } else if (fig.kind == "fig10") {
            std::vector<workloads::Workload> ws;
            for (const auto &[name, suite] : fig.workloads)
                ws.push_back(workloads::workload(name));
            md << "```\n" << renderFig10(ws, fig.sizes, grid)
               << "```\n\n";
        } else {
            error = "figure '" + fig.name + "': unknown kind '" +
                    fig.kind + "'";
            return false;
        }
        md << "### Stall attribution\n\n"
           << "```\n" << renderStallTable(fig, entries) << "```\n\n";
    }

    md << "## Phase profile\n\n";
    const Value *phases = doc.find("phases");
    if (phases && !phases->arr.empty()) {
        stats::TextTable t({"phase", "count", "seconds", "p50 us",
                            "p95 us", "max us"});
        for (const auto &p : phases->arr) {
            t.row()
                .cell(p.at("path").str)
                .cell(static_cast<std::uint64_t>(p.at("count").num))
                .cell(p.at("seconds").num, 3)
                .cell(p.at("p50_us").num, 1)
                .cell(p.at("p95_us").num, 1)
                .cell(p.at("max_us").num, 1);
        }
        std::ostringstream os;
        t.print(os, "Host phase profile (wall clock; sidecar data, "
                    "not part of the ledger nodes)");
        md << "```\n" << os.str() << "```\n\n";
    } else {
        md << "Not recorded — run `rrs-campaign` under `RRS_PROF=1` to "
              "capture the host-side phase breakdown.\n\n";
    }

    if (!opts.baselineDir.empty()) {
        md << "## Drift vs baseline ledger\n\n"
           << "```\n"
           << renderDriftSection(Ledger(opts.baselineDir), ledger)
           << "```\n";
    }

    if (!opts.html) {
        out = md.str();
        return true;
    }
    std::ostringstream html;
    html << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n"
         << "<title>Campaign report: " << htmlEscape(str("name"))
         << "</title>\n"
         << "<style>body{font-family:monospace;max-width:110ch;"
         << "margin:2em auto;white-space:pre-wrap;}</style>\n"
         << "</head><body>\n"
         << htmlEscape(md.str()) << "</body></html>\n";
    out = html.str();
    return true;
}

} // namespace rrs::harness
