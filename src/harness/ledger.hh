/**
 * @file
 * The experiment ledger: a content-addressed store of finished
 * simulation nodes (DESIGN §4j).
 *
 * A *node* is one (workload, scheme configuration, cap, sampling mode,
 * seed) simulation — the atom every figure and table is assembled
 * from.  Its identity is a 64-bit FNV-1a digest over a canonical key
 * string covering everything that can change the result:
 *
 *     ledger=<v>;bench=<v>;w=<name>;src=<hex>;suite=<s>;scheme=<k>;
 *     regs=<n>;cap=<n>;params=<k>:<v>,...;sampling=<w>:<d>:<p>:<f>:<c>;
 *     seed=<hex>
 *
 * The workload's assembly *source hash* is in the key, so editing a
 * kernel invalidates its nodes; the scheme's display label is not, so
 * renaming a column reuses them.  Two figures that need the same node
 * (fig10 and fig11 share their whole grid) get the same digest and pay
 * for one simulation.
 *
 * Entries live at `<dir>/nodes/<16-hex-digest>.json` and contain only
 * deterministic simulation results: the schema-v2 run row (wall clock
 * zeroed), the full-cycle stall attribution, and the rename counters.
 * No timestamps, no git sha, no host data — so a ledger built in two
 * interrupted halves is byte-identical to one built in a single run,
 * and ledgers from different machines diff clean.  Host-side context
 * (git sha, wall clock, thread count) belongs to the campaign sidecar
 * (harness/campaign.hh), not to the nodes.
 *
 * Writes go through tryWriteFileAtomic, so a killed campaign can never
 * leave a truncated node behind: on restart every present digest is
 * trusted and skipped, and only the missing nodes are re-simulated.
 */

#ifndef RRS_HARNESS_LEDGER_HH
#define RRS_HARNESS_LEDGER_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.hh"
#include "harness/sweep.hh"

namespace rrs::harness {

/** Bump when the node key grammar or entry layout changes. */
constexpr int ledgerSchemaVersion = 1;

/** Everything that identifies one ledger node. */
struct NodeSpec
{
    std::string workload;        //!< workload name, e.g. "fp_matmul"
    std::string suite;           //!< its suite (redundant, for reports)
    std::uint64_t sourceHash = 0; //!< workloads::sourceHash of its source
    std::string scheme;          //!< rename-scheme registry key
    std::string label;           //!< display label; NOT part of the key

    /** Declarative parameter overrides, in document order. */
    std::vector<std::pair<std::string, double>> params;

    std::uint32_t regs = 0;      //!< baseline-equivalent RF size
    std::uint64_t cap = 0;       //!< resolved instruction cap
    SamplingParams sampling;     //!< all-zero = exact mode
    std::uint64_t seed = 0;      //!< effective per-run RNG seed
};

/** The canonical key string the digest is computed over. */
std::string nodeKey(const NodeSpec &spec);

/** FNV-1a digest of nodeKey(spec): the node's identity. */
std::uint64_t nodeDigest(const NodeSpec &spec);

/** A digest as the fixed-width 16-hex-char file-name form. */
std::string digestHex(std::uint64_t digest);

/** One stored node: the spec plus its deterministic results. */
struct LedgerEntry
{
    NodeSpec spec;

    /**
     * The schema-v2 run row (rendered via renderRunRecordJson, so the
     * ledger and BENCH_*.json can never disagree on a row's shape).
     * wallSeconds is always zero in stored entries: wall clock is host
     * data, and entries must be byte-stable across machines and
     * interruptions.
     */
    RunRecord run;

    /** Full-cycle stall attribution (sums to run.cycles in exact mode). */
    obs::StallBreakdown stalls;

    // Rename-side counters (exact simulation results).
    double allocations = 0;
    double reuses = 0;
    double repairs = 0;
    double renameStalls = 0;
};

/** Build the stored entry for a finished run (zeroes the wall clock). */
LedgerEntry makeLedgerEntry(NodeSpec spec, const Outcome &outcome);

/** Render an entry as its node-file JSON document. */
std::string renderLedgerEntryJson(const LedgerEntry &e);

/** Parse a node file back; false + error on malformed input. */
bool parseLedgerEntryJson(const std::string &text, LedgerEntry &out,
                          std::string &error);

/**
 * A ledger directory.  Layout:
 *
 *     <dir>/nodes/<16-hex>.json    one file per finished node
 *     <dir>/campaign.json          host-side sidecar (campaign.hh)
 */
class Ledger
{
  public:
    explicit Ledger(std::string directory) : dir(std::move(directory)) {}

    const std::string &directory() const { return dir; }
    std::string nodesDir() const { return dir + "/nodes"; }
    std::string nodePath(const std::string &hex) const
    {
        return nodesDir() + "/" + hex + ".json";
    }

    /** Is this digest already simulated? */
    bool has(const std::string &hex) const;

    /** Load one node; false + error when absent or malformed. */
    bool tryLoad(const std::string &hex, LedgerEntry &out,
                 std::string &error) const;

    /** Atomically store one node (creates the directory tree). */
    bool store(const std::string &hex, const LedgerEntry &e,
               std::string &error) const;

    /** All stored digests, sorted (deterministic iteration order). */
    std::vector<std::string> listNodes() const;

  private:
    std::string dir;
};

/**
 * The drift report between two ledgers (the report's "vs baseline"
 * section).  Exact nodes gate bit-for-bit; sampled nodes gate on 95%
 * CI overlap (the same sampledCiOverlap rule rrs-benchdiff applies).
 */
struct LedgerDiff
{
    std::vector<std::string> onlyBase;   //!< digests missing from cur
    std::vector<std::string> onlyCur;    //!< digests missing from base

    struct Row
    {
        std::string digest;              //!< 16-hex node id
        std::string workload;
        std::string scheme;              //!< display label
        std::uint32_t regs = 0;
        std::string metric;              //!< "insts"/"cycles"/"mean_ipc"/...
        std::string baseVal, curVal;
    };
    std::vector<Row> drift;

    bool clean() const
    {
        return onlyBase.empty() && onlyCur.empty() && drift.empty();
    }
};

/** Diff every node the two ledgers share, plus the set difference. */
LedgerDiff diffLedgers(const Ledger &base, const Ledger &cur);

} // namespace rrs::harness

#endif // RRS_HARNESS_LEDGER_HH
