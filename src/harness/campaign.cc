#include "campaign.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/atomicfile.hh"
#include "common/logging.hh"
#include "harness/benchjson.hh"
#include "obs/jsonlite.hh"
#include "stats/stats.hh"

namespace rrs::harness {

namespace {

using obs::json::Value;

/**
 * Per-run timing length when neither the manifest nor a matrix sets
 * one: the same 150k-instruction default the bench binaries use
 * (bench::timingInsts), so a manifest with no "cap" reproduces the
 * published tables.
 */
constexpr std::uint64_t defaultCampaignCap = 150'000;

bool
checkNoDuplicateKeys(const Value &obj, const std::string &where,
                     std::string &error)
{
    if (!checkNoDuplicateJsonKeys(obj, where, error)) {
        error = "campaign manifest: " + error;
        return false;
    }
    return true;
}

bool
parseKind(const std::string &s, CampaignFigure::Kind &out)
{
    if (s == "fig10")
        out = CampaignFigure::Kind::Fig10;
    else if (s == "fig11")
        out = CampaignFigure::Kind::Fig11;
    else if (s == "table3")
        out = CampaignFigure::Kind::Table3;
    else
        return false;
    return true;
}

bool
parseFigure(const Value &v, CampaignFigure &fig, std::string &error)
{
    if (!v.isObject()) {
        error = "campaign manifest: each figure must be an object";
        return false;
    }
    if (!checkNoDuplicateKeys(v, "a figure entry", error))
        return false;
    const Value *name = v.find("figure");
    if (!name || !name->isString() || name->str.empty()) {
        error = "campaign manifest: figure entries need a non-empty "
                "string 'figure' member";
        return false;
    }
    fig.name = name->str;
    const std::string where = "figure '" + fig.name + "'";

    bool sawKind = false, sawMatrix = false, sawSizes = false;
    for (const auto &[key, val] : v.members) {
        if (key == "figure") {
            continue;
        } else if (key == "kind") {
            sawKind = true;
            if (!val.isString() || !parseKind(val.str, fig.kind)) {
                error = "campaign manifest: " + where + ": 'kind' must "
                        "be one of fig10/fig11/table3";
                return false;
            }
        } else if (key == "matrix") {
            sawMatrix = true;
            if (!tryParseSweepMatrix(val, fig.matrix, error)) {
                error = "campaign manifest: " + where + ": " + error;
                return false;
            }
        } else if (key == "sizes") {
            sawSizes = true;
            if (!val.isArray() || val.arr.empty()) {
                error = "campaign manifest: " + where + ": 'sizes' "
                        "must be a non-empty array";
                return false;
            }
            for (const auto &entry : val.arr) {
                if (!entry.isNumber() || entry.num <= 0 ||
                    entry.num != std::floor(entry.num)) {
                    error = "campaign manifest: " + where + ": 'sizes' "
                            "entries must be positive integers";
                    return false;
                }
                fig.sizes.push_back(
                    static_cast<std::uint32_t>(entry.num));
            }
        } else {
            error = "campaign manifest: " + where + ": unknown key '" +
                    key + "' (expected figure/kind/matrix/sizes)";
            return false;
        }
    }
    if (!sawKind) {
        error = "campaign manifest: " + where + " needs a 'kind' member";
        return false;
    }
    if (fig.kind == CampaignFigure::Kind::Table3) {
        if (!sawSizes || sawMatrix) {
            error = "campaign manifest: " + where + ": table3 figures "
                    "take 'sizes', not a 'matrix'";
            return false;
        }
        return true;
    }
    if (!sawMatrix || sawSizes) {
        error = "campaign manifest: " + where + ": " +
                campaignKindName(fig.kind) +
                " figures take a 'matrix', not 'sizes'";
        return false;
    }
    if (fig.matrix.schemes.size() != 2) {
        error = "campaign manifest: " + where + ": " +
                campaignKindName(fig.kind) + " needs exactly two scheme "
                "columns (base, proposed); the matrix has " +
                std::to_string(fig.matrix.schemes.size());
        return false;
    }
    if (!fig.matrix.suite.empty()) {
        bool known = false;
        for (const auto &s : workloads::suiteNames())
            known = known || s == fig.matrix.suite;
        if (!known) {
            error = "campaign manifest: " + where + ": unknown suite '" +
                    fig.matrix.suite + "'";
            return false;
        }
    }
    return true;
}

std::string
jsonStr(const std::string &s)
{
    return stats::jsonQuoted(s);
}

/** Render the campaign.json sidecar. */
std::string
renderCampaignJson(const CampaignManifest &m, const CampaignPlan &plan,
                   const CampaignResult &result, unsigned threads,
                   double wallSeconds,
                   const std::vector<BenchResult::PhaseRow> &phases)
{
    std::ostringstream os;
    char wall[40];
    std::snprintf(wall, sizeof(wall), "%.17g", wallSeconds);
    auto jnum = [](double v) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        return std::string(buf);
    };
    os << "{\n"
       << "  \"campaign_schema\": " << campaignSchemaVersion << ",\n"
       << "  \"name\": " << jsonStr(m.name) << ",\n"
       << "  \"git_sha\": " << jsonStr(currentGitSha()) << ",\n"
       << "  \"threads\": " << threads << ",\n"
       << "  \"wall_seconds\": " << wall << ",\n"
       << "  \"nodes_total\": " << result.totalNodes << ",\n"
       << "  \"nodes_cached\": " << result.hits << ",\n"
       << "  \"nodes_simulated\": " << result.simulated << ",\n"
       << "  \"nodes_deferred\": " << result.remaining << ",\n"
       << "  \"phases\": [";
    bool firstPhase = true;
    for (const auto &ph : phases) {
        os << (firstPhase ? "\n" : ",\n") << "    {\"path\": "
           << jsonStr(ph.path) << ", \"count\": " << ph.count
           << ", \"seconds\": " << jnum(ph.seconds) << ", \"p50_us\": "
           << jnum(ph.p50Us) << ", \"p95_us\": " << jnum(ph.p95Us)
           << ", \"max_us\": " << jnum(ph.maxUs) << "}";
        firstPhase = false;
    }
    os << (firstPhase ? "" : "\n  ") << "],\n"
       << "  \"figures\": [";
    bool firstFig = true;
    for (const auto &fp : plan.figures) {
        os << (firstFig ? "\n" : ",\n") << "    {\n"
           << "      \"figure\": " << jsonStr(fp.figure->name) << ",\n"
           << "      \"kind\": "
           << jsonStr(campaignKindName(fp.figure->kind)) << ",\n"
           << "      \"sizes\": [";
        for (std::size_t i = 0; i < fp.sizes.size(); ++i)
            os << (i ? ", " : "") << fp.sizes[i];
        os << "],\n"
           << "      \"scheme_labels\": [";
        for (std::size_t i = 0; i < fp.schemeLabels.size(); ++i)
            os << (i ? ", " : "") << jsonStr(fp.schemeLabels[i]);
        os << "],\n"
           << "      \"workloads\": [";
        for (std::size_t i = 0; i < fp.workloads.size(); ++i) {
            os << (i ? ", " : "") << "{\"name\": "
               << jsonStr(fp.workloads[i].first) << ", \"suite\": "
               << jsonStr(fp.workloads[i].second) << "}";
        }
        os << "],\n"
           << "      \"nodes\": [";
        for (std::size_t i = 0; i < fp.digests.size(); ++i)
            os << (i ? ", " : "") << jsonStr(fp.digests[i]);
        os << "]\n    }";
        firstFig = false;
    }
    os << (firstFig ? "" : "\n  ") << "]\n"
       << "}\n";
    return os.str();
}

} // namespace

const char *
campaignKindName(CampaignFigure::Kind kind)
{
    switch (kind) {
    case CampaignFigure::Kind::Fig10: return "fig10";
    case CampaignFigure::Kind::Fig11: return "fig11";
    case CampaignFigure::Kind::Table3: return "table3";
    }
    return "?";
}

bool
tryParseCampaignManifest(const std::string &text, CampaignManifest &out,
                         std::string &error)
{
    Value root;
    std::string jsonError;
    if (!obs::json::parse(text, root, &jsonError)) {
        error = "campaign manifest: " + jsonError;
        return false;
    }
    if (!root.isObject()) {
        error = "campaign manifest: the document root must be an object";
        return false;
    }
    if (!checkNoDuplicateKeys(root, "the manifest", error))
        return false;

    CampaignManifest m;
    bool sawFigures = false;
    for (const auto &[key, val] : root.members) {
        if (key == "name") {
            if (!val.isString() || val.str.empty()) {
                error = "campaign manifest: 'name' must be a non-empty "
                        "string";
                return false;
            }
            m.name = val.str;
        } else if (key == "cap") {
            if (!val.isNumber() || val.num <= 0 ||
                val.num != std::floor(val.num)) {
                error = "campaign manifest: 'cap' must be a positive "
                        "integer";
                return false;
            }
            m.cap = static_cast<std::uint64_t>(val.num);
        } else if (key == "figures") {
            sawFigures = true;
            if (!val.isArray()) {
                error = "campaign manifest: 'figures' must be an array";
                return false;
            }
            for (const auto &entry : val.arr) {
                CampaignFigure fig;
                if (!parseFigure(entry, fig, error))
                    return false;
                for (const auto &prev : m.figures) {
                    if (prev.name == fig.name) {
                        error = "campaign manifest: duplicate figure "
                                "name '" + fig.name + "'";
                        return false;
                    }
                }
                m.figures.push_back(std::move(fig));
            }
        } else {
            error = "campaign manifest: unknown key '" + key +
                    "' (expected name/cap/figures)";
            return false;
        }
    }
    if (m.name.empty()) {
        error = "campaign manifest: 'name' must be a non-empty string";
        return false;
    }
    if (!sawFigures || m.figures.empty()) {
        error = "campaign manifest: 'figures' must be a non-empty array";
        return false;
    }
    out = std::move(m);
    return true;
}

CampaignManifest
loadCampaignManifestFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        rrs_fatal("cannot open campaign manifest '%s'", path.c_str());
    std::ostringstream text;
    text << in.rdbuf();
    CampaignManifest m;
    std::string error;
    if (!tryParseCampaignManifest(text.str(), m, error))
        rrs_fatal("%s: %s", path.c_str(), error.c_str());
    return m;
}

CampaignPlan
planCampaign(const CampaignManifest &manifest,
             const CampaignOptions &opts)
{
    CampaignPlan plan;
    const std::uint64_t capDefault =
        manifest.cap ? manifest.cap : defaultCampaignCap;
    for (const auto &fig : manifest.figures) {
        CampaignPlan::FigurePlan fp;
        fp.figure = &fig;
        if (fig.kind == CampaignFigure::Kind::Table3) {
            fp.sizes = fig.sizes;
            plan.figures.push_back(std::move(fp));
            continue;
        }

        SweepMatrix m = fig.matrix;
        if (opts.capOverride)
            m.cap = opts.capOverride;
        fp.sizes = m.rfSizes;
        for (const auto &spec : m.schemes)
            fp.schemeLabels.push_back(spec.label);

        // Campaigns run the manifest's declared set, never the bench
        // CLI filters; the matrix's own suite member is the only knob.
        const std::vector<workloads::Workload> ws =
            m.suite.empty() ? workloads::allWorkloads()
                            : workloads::suiteWorkloads(m.suite);

        // Same expansion order as expandSweepMatrix — workloads
        // outermost, then sizes, then scheme columns — and the seed of
        // cell k is pinned to k, so the same matrix always yields the
        // same digests no matter which figures share it or which nodes
        // were already present.
        std::size_t k = 0;
        for (const auto &wl : ws) {
            // The canonical registry entry outlives every plan; the
            // local `ws` copy does not, and items hold a pointer.
            const workloads::Workload &w = workloads::workload(wl.name);
            fp.workloads.emplace_back(w.name, w.suite);
            for (std::uint32_t n : m.rfSizes) {
                for (const auto &scheme : m.schemes) {
                    RunConfig cfg =
                        matrixConfig(scheme, n, m, capDefault);
                    NodeSpec spec;
                    spec.workload = w.name;
                    spec.suite = w.suite;
                    spec.sourceHash = workloads::sourceHash(w);
                    spec.scheme = scheme.scheme;
                    spec.label = scheme.label;
                    spec.params = scheme.params;
                    spec.regs = n;
                    spec.cap = workloads::resolvedCap(w, cfg.maxInsts);
                    spec.sampling = cfg.sampling;
                    spec.seed = sweepSeed(cfg.core.seed, k);

                    const std::string hex = digestHex(nodeDigest(spec));
                    fp.digests.push_back(hex);
                    if (plan.nodes.find(hex) == plan.nodes.end()) {
                        SweepItem item =
                            sweepItem(w, std::move(cfg),
                                      m.sampleSharing);
                        item.seedIndex = k;
                        plan.order.push_back(hex);
                        plan.nodes.emplace(
                            hex, PlannedNode{std::move(spec),
                                             std::move(item)});
                    }
                    ++k;
                }
            }
        }
        plan.figures.push_back(std::move(fp));
    }
    return plan;
}

CampaignResult
runCampaign(const CampaignManifest &manifest, const Ledger &ledger,
            const CampaignOptions &opts, std::ostream &os)
{
    const CampaignPlan plan = planCampaign(manifest, opts);

    CampaignResult result;
    result.totalNodes = plan.order.size();
    std::vector<const std::string *> missing;
    for (const std::string &hex : plan.order) {
        if (ledger.has(hex))
            ++result.hits;
        else
            missing.push_back(&hex);
    }
    std::size_t toRun = missing.size();
    if (toRun > opts.maxNewNodes)
        toRun = opts.maxNewNodes;
    result.remaining = missing.size() - toRun;

    os << "campaign '" << manifest.name << "': " << result.totalNodes
       << " nodes, " << result.hits << " cached, " << toRun
       << " to simulate";
    if (result.remaining)
        os << " (" << result.remaining << " deferred by --max-new-nodes)";
    os << "\n";

    unsigned threads = 0;
    double wallSeconds = 0;
    std::vector<BenchResult::PhaseRow> phases;
    if (toRun > 0) {
        SweepRunner runner(opts.threads);
        std::vector<SweepItem> items;
        items.reserve(toRun);
        for (std::size_t i = 0; i < toRun; ++i)
            items.push_back(plan.nodes.at(*missing[i]).item);
        const std::vector<SweepResult> results = runner.run(items);
        threads = runner.numThreads();
        wallSeconds = runner.summary().wallSeconds;
        // Host-side phase profile (RRS_PROF): sidecar data for the
        // report's phase table, never part of the node files.
        phases = collectBenchResult(manifest.name, runner).phases;
        for (std::size_t i = 0; i < toRun; ++i) {
            const std::string &hex = *missing[i];
            const LedgerEntry entry = makeLedgerEntry(
                plan.nodes.at(hex).spec, results[i].outcome);
            std::string error;
            if (!ledger.store(hex, entry, error))
                rrs_fatal("cannot store ledger node %s: %s",
                          hex.c_str(), error.c_str());
        }
        result.simulated = toRun;
        runner.printSummary(os);
    }

    // The sidecar carries the host context and the figure -> digest
    // mapping the report renders from.  It is rewritten on every run
    // (including partial ones) and deliberately excluded from ledger
    // byte-comparisons: nodes/ is the deterministic artifact.
    result.sidecarPath = ledger.directory() + "/campaign.json";
    std::string error;
    if (!tryWriteFileAtomic(result.sidecarPath,
                            renderCampaignJson(manifest, plan, result,
                                               threads, wallSeconds,
                                               phases),
                            error))
        rrs_fatal("cannot write campaign sidecar '%s': %s",
                  result.sidecarPath.c_str(), error.c_str());
    return result;
}

} // namespace rrs::harness
