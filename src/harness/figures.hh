/**
 * @file
 * Shared figure/table renderers: the deterministic text blocks of the
 * paper artifacts that are regression-locked byte-for-byte.  The bench
 * binaries print these strings and the golden-table tests compare them
 * against the committed goldens (tests/goldens/), so a refactor that
 * changes a single digit — or a single space — fails in CI rather than
 * silently republishing a different table.
 *
 * Also home of the matrix-driven outcome grids: one parallel sweep per
 * grid, expanded from a declarative SweepMatrix in the deterministic
 * submission order documented in harness/sweepmatrix.hh.
 */

#ifndef RRS_HARNESS_FIGURES_HH
#define RRS_HARNESS_FIGURES_HH

#include <string>
#include <vector>

#include "area/area.hh"
#include "harness/sweepmatrix.hh"

namespace rrs::harness {

/** Baseline/proposed outcomes of one (workload, size) grid cell. */
struct OutcomePair
{
    Outcome base;
    Outcome prop;

    double
    speedup() const
    {
        return static_cast<double>(base.sim.cycles) /
               static_cast<double>(prop.sim.cycles);
    }
};

/**
 * Run a matrix over a workload list in one parallel sweep and return
 * the outcomes as grid[workload][size][scheme column], all in input /
 * document order.
 */
std::vector<std::vector<std::vector<Outcome>>> matrixOutcomeGrid(
    SweepRunner &runner, const std::vector<workloads::Workload> &ws,
    const SweepMatrix &m, std::uint64_t capDefault);

/**
 * Two-column view of a matrix grid as [workload][size] pairs: column 0
 * is the base, column 1 the proposed.  Fatal unless the matrix has
 * exactly two scheme columns.
 */
std::vector<std::vector<OutcomePair>> outcomePairGrid(
    SweepRunner &runner, const std::vector<workloads::Workload> &ws,
    const SweepMatrix &m, std::uint64_t capDefault);

/**
 * Figure 11's deterministic block: the geomean-IPC table, the
 * crossover analysis, and the shape-check note.
 *
 * Exact-mode output is golden-locked byte-for-byte.  When any outcome
 * of the grid is sampled the table gains ±95%-CI columns (the geomean
 * scaled by the average relative CI of its inputs) and an ASCII
 * whisker chart of the intervals — still deterministic, gated only on
 * the grid actually containing sampled runs.
 */
std::string renderFig11(const std::vector<std::uint32_t> &sizes,
                        const std::vector<std::vector<OutcomePair>> &grid);

/**
 * Figure 10's deterministic block: one speedup table per workload
 * suite (baseline cycles / proposed cycles per cell, GEOMEAN row) plus
 * the shape-check note — exactly the bytes the fig10 bench prints.
 *
 * Sampled grids switch each cell to "speedup±ci" derived from the
 * reported (mean) IPC ratio, with the two runs' relative CIs summed —
 * the conservative error for a ratio of independent estimates.
 */
std::string renderFig10(const std::vector<workloads::Workload> &ws,
                        const std::vector<std::uint32_t> &sizes,
                        const std::vector<std::vector<OutcomePair>> &grid);

/**
 * Table III's deterministic block: the equal-area configuration table
 * (paper rows, tuned rows, area-model verification, solver check) and
 * the shape-check note.
 * @param threads lanes for the equal-area solver; 0: RRS_THREADS.
 */
std::string renderTable3(const area::AreaModel &model,
                         const std::vector<std::uint32_t> &sizes,
                         unsigned threads = 0);

} // namespace rrs::harness

#endif // RRS_HARNESS_FIGURES_HH
