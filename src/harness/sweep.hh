/**
 * @file
 * The parallel sweep engine.
 *
 * Every paper artifact is a sweep over workloads x register-file sizes
 * x {Baseline, Reuse}; the runs are completely independent, so they
 * fan out across a work-stealing thread pool (common/threadpool.hh)
 * and scale near-linearly with cores, like trace-driven simulator
 * farms do.
 *
 * Determinism contract — results are bit-identical for every thread
 * count, including 1:
 *
 *  - Each run builds all of its own model state (core, renamer,
 *    memory, predictor, stats) inside the worker task; nothing is
 *    shared between runs but the read-only workload programs (whose
 *    cache is locked).
 *  - Each run's RNG seed is derived from the *submission index* of its
 *    config via sweepSeed(), never drawn from a shared stream, so the
 *    schedule cannot leak into the results.
 *  - Outcomes are written into a pre-sized slot per run and returned
 *    in submission order; per-run stats are merged into the sweep
 *    aggregate only after all workers have joined (the stats merge
 *    path), so no floating-point reduction depends on arrival order.
 *
 * Only the wall-clock/throughput numbers in SweepSummary may vary
 * between thread counts; everything in Outcome may not.
 */

#ifndef RRS_HARNESS_SWEEP_HH
#define RRS_HARNESS_SWEEP_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "common/threadpool.hh"
#include "harness/experiment.hh"
#include "stats/stats.hh"

namespace rrs::harness {

/** One sweep entry: a workload plus the configuration to run it under. */
struct SweepItem
{
    const workloads::Workload *workload = nullptr;
    RunConfig config;
    bool sampleSharing = false;   //!< collect the Fig. 9 series

    /**
     * Index the run's RNG seed derives from (sweepSeed(seed, index)).
     * The default npos means "my submission index in this run() call" —
     * the original behaviour, which every bench keeps.  The campaign
     * runner (harness/campaign.hh) pins it to the item's stable index
     * within its figure's full expansion, so a resumed campaign that
     * re-submits only the missing subset still reproduces exactly the
     * seeds — and therefore the bytes — of an uninterrupted run.
     */
    static constexpr std::size_t autoSeedIndex = ~static_cast<std::size_t>(0);
    std::size_t seedIndex = autoSeedIndex;
};

/** One entry's result: the run outcome plus its own wall clock. */
struct SweepResult
{
    Outcome outcome;
    double wallSeconds = 0;
};

/** Aggregate throughput numbers for a finished sweep. */
struct SweepSummary
{
    unsigned threads = 0;          //!< execution lanes used
    std::size_t runs = 0;
    double wallSeconds = 0;        //!< whole-sweep wall clock
    double runSecondsTotal = 0;    //!< sum of per-run wall clocks
    double runSecondsMin = 0;
    double runSecondsMax = 0;
    std::uint64_t instsCommitted = 0;
    std::uint64_t cyclesSimulated = 0;

    // Trace-cache traffic attributable to this sweep.  Captured
    // instructions are functional-emulation work paid at most once per
    // (workload, cap); replayed instructions are what the timing runs
    // actually consumed.  Reported separately from instsCommitted so
    // the Minst/s figure only ever counts simulated (timing) work.
    std::uint64_t traceHits = 0;
    std::uint64_t traceMisses = 0;
    std::uint64_t instsCaptured = 0;
    std::uint64_t instsReplayed = 0;

    // Rename invariant auditing across the sweep's runs (rename/audit
    // + RRS_AUDIT).  Zero audits means auditing was off; violations
    // stay zero or the offending run already panicked.
    std::uint64_t auditsRun = 0;
    std::uint64_t auditViolations = 0;

    double
    runsPerSec() const
    {
        return wallSeconds > 0
                   ? static_cast<double>(runs) / wallSeconds
                   : 0.0;
    }

    double
    instsPerSec() const
    {
        return wallSeconds > 0
                   ? static_cast<double>(instsCommitted) / wallSeconds
                   : 0.0;
    }

    /** Parallel efficiency proxy: busy run-time over wall x lanes. */
    double
    utilisation() const
    {
        return wallSeconds > 0 && threads > 0
                   ? runSecondsTotal /
                         (wallSeconds * static_cast<double>(threads))
                   : 0.0;
    }
};

/**
 * One line per run of a finished sweep, in submission order: the raw
 * numbers the BENCH_*.json recorder exports per workload.  insts and
 * cycles are exact (bit-identical across thread counts, like every
 * Outcome field); wallSeconds is host noise.
 */
struct RunRecord
{
    std::string workload;
    std::string scheme;          //!< "baseline" or "reuse"
    std::uint64_t insts = 0;
    std::uint64_t cycles = 0;
    double wallSeconds = 0;

    /**
     * Sampled-run statistics (harness/sampling.hh); enabled only for
     * sampled sweeps.  For those rows insts/cycles are the
     * detailed-portion aggregates, the mean/CI here are the headline,
     * and rrs-benchdiff gates on CI overlap instead of exact equality.
     */
    SampledSummary sampled;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(insts) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/** Derive the RNG seed of sweep entry `index` from a base seed. */
std::uint64_t sweepSeed(std::uint64_t base, std::size_t index);

/**
 * The sweep footer text benches print after their tables — the
 * throughput and trace-cache lines (plus the audit line when audits
 * ran).  The BENCH_*.json recorder embeds this same string and draws
 * its throughput numbers from the same SweepSummary accessors, so the
 * human footer and the machine-readable baseline can never disagree.
 */
std::string formatSweepFooter(const SweepSummary &s);

/**
 * Fans RunConfigs out across a thread pool and returns Outcomes in
 * submission order.  Reusable: each run() call produces a fresh
 * summary.
 */
class SweepRunner : public stats::Group
{
  public:
    /**
     * @param threads execution lanes; 0 picks RRS_THREADS or the
     *        hardware concurrency (ThreadPool::defaultThreadCount).
     */
    explicit SweepRunner(unsigned threads = 0);

    /** Run every item; results come back in submission order. */
    std::vector<SweepResult> run(const std::vector<SweepItem> &items);

    /**
     * Enable pipeline tracing for every run of subsequent sweeps: run
     * `i` writes an O3PipeView trace to "<prefix>_run<i>.trace", so
     * parallel lanes never share a file and the trace set is stable
     * across thread counts (the name depends only on the submission
     * index).  An item whose config already names a trace path keeps
     * it as its own prefix.  Empty string disables.
     *
     * The constructor seeds this from the RRS_PIPETRACE environment
     * variable, so any bench can be traced without a code change.
     */
    void setTracePrefix(std::string prefix)
    {
        tracePrefix = std::move(prefix);
    }
    const std::string &getTracePrefix() const { return tracePrefix; }

    /**
     * Label for telemetry trace files: sweeps export to
     * "<RRS_TELEMETRY>/<label>_sweep<n>.trace.json".  Benches set this
     * to their name (bench::init does); defaults to "sweep".
     */
    void setTelemetryLabel(std::string label)
    {
        telemetryLabel = std::move(label);
    }

    /** Path of the trace written by the most recent run() ("" if none). */
    const std::string &lastTelemetryPath() const { return telemetryPath; }

    /** Like run(), discarding the per-run wall clocks. */
    std::vector<Outcome> outcomes(const std::vector<SweepItem> &items);

    /** Throughput numbers of the most recent run(). */
    const SweepSummary &summary() const { return lastSummary; }

    /**
     * Per-run records of every run() this runner has executed, in
     * submission order across sweeps — the rows the BENCH_*.json
     * recorder exports.
     */
    const std::vector<RunRecord> &runRecords() const { return records; }

    unsigned numThreads() const { return pool.numThreads(); }

    /**
     * Print the standard one-line throughput report benches append
     * after their tables, e.g.
     * "sweep: 42 runs in 3.1 s on 4 threads (13.5 runs/s, 2.0 Minst/s,
     *  96% utilisation)".
     */
    void printSummary(std::ostream &os) const;

  private:
    ThreadPool pool;
    SweepSummary lastSummary;
    std::string tracePrefix;
    std::string telemetryLabel = "sweep";
    std::string telemetryPath;
    std::vector<RunRecord> records;

    // Sweep-lifetime aggregates, fed through the post-join stats merge
    // path (see stats/stats.hh threading model).
    stats::Scalar totalRuns;
    stats::Scalar totalInsts;
    stats::Scalar totalCycles;
    stats::Average runWall;
    stats::Distribution runIpcPct;

    // Trace-cache deltas of the most recent run() (set post-join from
    // the cache's own counters; see harness/tracecache.hh).
    stats::Scalar traceCaptureInsts;
    stats::Scalar traceReplayInsts;
    stats::Scalar traceCacheHits;
    stats::Scalar traceCacheMisses;

    // Rename-audit totals of the most recent run() (summed post-join
    // from the per-run Outcomes, so the count is schedule-independent).
    stats::Scalar auditChecks;
    stats::Scalar auditViolations;

    // Sampled-simulation totals of the most recent run() (zero when
    // every run was exact).  Same post-join merge discipline; these
    // surface in the stats-json dump and the metric schema.
    stats::Scalar sampledRuns;
    stats::Scalar sampledWindows;
    stats::Scalar sampledDetailedInsts;
    stats::Scalar sampledWarmInsts;
    stats::Scalar sampledSkippedInsts;
    stats::Distribution sampledCiPct;   //!< per-run 100*ci95/mean (pct)
};

/** Convenience builder. */
inline SweepItem
sweepItem(const workloads::Workload &w, RunConfig config,
          bool sampleSharing = false)
{
    return SweepItem{&w, std::move(config), sampleSharing};
}

} // namespace rrs::harness

#endif // RRS_HARNESS_SWEEP_HH
