/**
 * @file
 * SMARTS-style sampled simulation (DESIGN §4i).
 *
 * A SamplingController drives one long-lived O3Core through
 * alternating *functional-warm* spans and *detailed* windows over a
 * ReplayStream:
 *
 *  - functional warm: the span's records advance branch-predictor and
 *    cache state directly from the pre-decoded trace columns — one
 *    predict/train round per control instruction, one cache access
 *    per new fetch line and per load/store — with no per-cycle
 *    pipeline work at all;
 *  - detailed: the full pipeline runs for a fixed instruction budget.
 *    The first `fillInsts` of each window are simulated but not
 *    measured (pipeline-fill bias); the rest contribute one IPC
 *    sample per window;
 *  - fast-forward: the remainder of each period is functionally warmed
 *    too (SMARTS always-on warming).  Only the pipeline is ever
 *    skipped — a cold cursor jump would age the caches out from under
 *    every later window and bias its IPC down by however far the
 *    working set moved during the gap.
 *
 * Windows aggregate into an instruction-weighted mean IPC (the same
 * insts/cycles semantics as an exact run) with a per-window sample
 * stddev and a 95% confidence interval (1.96 * s / sqrt(n)), floored
 * at `ciFloorPct` percent of the mean to absorb the systematic warm-up
 * bias analytic CIs cannot see.  Exact mode never constructs a
 * controller: with SamplingParams::enabled() false the harness calls
 * core.run() on the identical code path as before, bit for bit.
 */

#ifndef RRS_HARNESS_SAMPLING_HH
#define RRS_HARNESS_SAMPLING_HH

#include <cstdint>

#include "core/o3core.hh"
#include "stats/stats.hh"
#include "trace/recorded.hh"

namespace rrs::harness {

/** Sampled-simulation configuration (all-zero = exact mode). */
struct SamplingParams
{
    std::uint64_t warm = 0;      //!< functional-warm insts per period
    std::uint64_t detailed = 0;  //!< detailed insts per period (incl. fill)
    std::uint64_t period = 0;    //!< total insts per period

    /**
     * Unmeasured detailed prefix per window: simulated through the
     * full pipeline so queues and in-flight misses reach steady state,
     * excluded from the window's IPC sample.  Defaults to twice the
     * default ROB depth.
     */
    std::uint64_t fillInsts = 256;

    /**
     * Reported-CI floor, percent of the mean.  Analytic CIs collapse
     * toward zero on homogeneous kernels (every window measures the
     * same loop), but the warm-up bias does not; the floor keeps the
     * reported interval honest.
     */
    double ciFloorPct = 2.0;

    /** Sampling on?  False = exact mode, byte-identical to seed. */
    bool enabled() const { return detailed > 0 && period > 0; }
};

/** What a sampled run reports on top of its detailed aggregates. */
struct SampledSummary
{
    bool enabled = false;
    std::uint64_t windows = 0;       //!< measured IPC samples
    double meanIpc = 0;
    double stddevIpc = 0;            //!< sample stddev across windows
    double ci95Ipc = 0;              //!< max(1.96*s/sqrt(n), floor)
    double medianIpc = 0;            //!< stats::Distribution percentile
    std::uint64_t detailedInsts = 0; //!< simulated in detail (incl. fill)
    std::uint64_t detailedCycles = 0;
    std::uint64_t warmInsts = 0;     //!< functionally warmed pre-window
    std::uint64_t skippedInsts = 0;  //!< fast-forwarded (warmed, no pipeline)

    /** Fraction of the trace simulated in detail (the <=25% contract). */
    double
    detailedFraction() const
    {
        const std::uint64_t total =
            detailedInsts + warmInsts + skippedInsts;
        return total ? static_cast<double>(detailedInsts) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * Drives one core/stream rig through the warm/detailed/fast-forward
 * schedule.
 * The rig (core, stream, and the memory system + branch predictor the
 * core was built around) outlives every window: caches and predictor
 * tables are state being *warmed*, never reset between windows.
 */
class SamplingController
{
  public:
    SamplingController(const SamplingParams &params, core::O3Core &core,
                       trace::ReplayStream &stream,
                       mem::MemSystem &mem, bpred::BranchPredictor &bp);

    /**
     * Run the whole trace through the schedule.
     * @param aggregate filled with the detailed-portion totals
     *        (committed insts/ops, window-cycle sum) so existing
     *        Outcome consumers keep seeing consistent numbers.
     */
    SampledSummary run(core::SimResult &aggregate);

  private:
    /** Functional-warm records [from, to) of the packed trace. */
    void warmSpan(std::size_t from, std::size_t to);

    const SamplingParams &params;
    core::O3Core &core;
    trace::ReplayStream &stream;
    mem::MemSystem &mem;
    bpred::BranchPredictor &bp;
};

} // namespace rrs::harness

#endif // RRS_HARNESS_SAMPLING_HH
