#include "area.hh"

#include <cmath>

#include "common/logging.hh"

namespace rrs::area {

double
AreaModel::bitCellArea() const
{
    const double total_ports = ports.readPorts + ports.writePorts;
    const double growth = 1.0 + c.portFactor * (total_ports - 1.0);
    return c.sramBitCell * growth * growth;
}

double
AreaModel::shadowCellArea() const
{
    return c.sramBitCell * c.shadowCellRatio;
}

double
AreaModel::regFileArea(std::uint32_t regs, std::uint32_t bits,
                       std::uint32_t shadowCells) const
{
    return c.regFilePeriphery +
           static_cast<double>(regs) * bits * bitCellArea() +
           static_cast<double>(shadowCells) * bits * shadowCellArea();
}

double
AreaModel::bankedRegFileArea(const std::array<std::uint32_t, 4> &banks,
                             std::uint32_t bits) const
{
    std::uint32_t regs = 0, shadow = 0;
    for (int b = 0; b < 4; ++b) {
        regs += banks[static_cast<std::size_t>(b)];
        shadow += banks[static_cast<std::size_t>(b)] *
                  static_cast<std::uint32_t>(b);
    }
    return regFileArea(regs, bits, shadow);
}

double
AreaModel::sramArea(std::uint32_t entries, std::uint32_t bitsPerEntry,
                    std::uint32_t tablePorts) const
{
    const double growth = 1.0 + c.portFactor * (tablePorts - 1.0);
    return c.tablePeriphery + static_cast<double>(entries) *
                                  bitsPerEntry * c.tableBitCell *
                                  growth * growth;
}

double
AreaModel::iqOverheadArea(std::uint32_t entries,
                          std::uint32_t extraBits) const
{
    // Version bits participate in wakeup matching: CAM cells, with the
    // wide comparison fan-in of the issue queue.
    return static_cast<double>(entries) * extraBits * c.tableBitCell *
           c.camFactor * 6.0;
}

double
AreaModel::prtArea(std::uint32_t physRegs,
                   std::uint32_t counterBits) const
{
    // Read bit + counter; accessed by rename (multi-ported for the
    // rename width).
    return sramArea(physRegs, 1 + counterBits, 4) - c.tablePeriphery +
           2.0e-5;
}

double
AreaModel::predictorArea(std::uint32_t entries,
                         std::uint32_t bitsPerEntry) const
{
    // The predictor includes the hash logic and update queue, which
    // dominate for a 1-Kbit table.
    return sramArea(entries, bitsPerEntry, 3) + 2.0e-3;
}

double
AreaModel::schemeArea(const std::array<std::uint32_t, 4> &intBanks,
                      const std::array<std::uint32_t, 4> &fpBanks,
                      std::uint32_t intBits, std::uint32_t fpBits,
                      std::uint32_t prtCounterBits,
                      std::uint32_t iqEntries,
                      std::uint32_t iqExtraTagBits,
                      std::uint32_t predictorEntries,
                      std::uint32_t predictorBits) const
{
    double total = bankedRegFileArea(intBanks, intBits) +
                   bankedRegFileArea(fpBanks, fpBits);
    if (prtCounterBits > 0) {
        std::uint32_t physRegs = 0;
        for (std::size_t b = 0; b < 4; ++b)
            physRegs += intBanks[b] + fpBanks[b];
        total += prtArea(physRegs, prtCounterBits);
    }
    if (iqExtraTagBits > 0)
        total += iqOverheadArea(iqEntries, iqExtraTagBits);
    if (predictorEntries > 0)
        total += predictorArea(predictorEntries, predictorBits);
    return total;
}

std::uint32_t
AreaModel::equalAreaBank0(std::uint32_t baselineRegs, std::uint32_t bits,
                          const std::array<std::uint32_t, 4> &shadowBanks,
                          double structureOverhead,
                          std::uint32_t minRegs) const
{
    const double budget = regFileArea(baselineRegs, bits, 0);
    // Start from the shadow banks (bank0 == 0) and add registers while
    // the area fits.
    std::array<std::uint32_t, 4> banks = shadowBanks;
    banks[0] = 0;
    double fixed = bankedRegFileArea(banks, bits) + structureOverhead;
    if (fixed > budget)
        return 0;
    double per_reg = static_cast<double>(bits) * bitCellArea();
    auto n0 = static_cast<std::uint32_t>((budget - fixed) / per_reg);
    if (n0 < minRegs)
        return 0;
    return n0;
}

} // namespace rrs::area
