/**
 * @file
 * CACTI-6.5-lite: an analytical area model for register files and SRAM
 * tables, standing in for the CACTI 6.5 runs in the paper's
 * methodology (Section V-A, Table II).
 *
 * What matters for reproducing the paper is *relative* area:
 *  - multi-ported register file bit cells grow quadratically with port
 *    count (wordlines one way, bitlines the other);
 *  - shadow cells are pairs of cross-coupled inverters hanging off the
 *    main cell through a pass transistor — their area is independent
 *    of the port count, so they get relatively cheaper as ports grow;
 *  - small side tables (PRT, predictor) are tiny next to the register
 *    files.
 *
 * Constants are calibrated so the default configuration reproduces the
 * paper's Table II values (128x64b int RF = 0.2834 mm2, 128x128b fp RF
 * = 0.4988 mm2, PRT ~5.1e-4, IQ overhead ~1.5e-3, predictor ~3.1e-3).
 */

#ifndef RRS_AREA_AREA_HH
#define RRS_AREA_AREA_HH

#include <array>
#include <cstdint>

namespace rrs::area {

/** Process / layout constants (calibrated, not physical). */
struct AreaConstants
{
    /** Area of a single-ported register-file bit cell, mm^2. */
    double sramBitCell = 2.4e-6;

    /** Area of a dense small-SRAM table bit cell, mm^2 (PRT, tables). */
    double tableBitCell = 6.3e-7;

    /** Port pitch growth factor per extra port (quadratic model). */
    double portFactor = 0.138;

    /** Shadow cell area relative to a single-ported bit cell. */
    double shadowCellRatio = 1.2;

    /** Fixed periphery (decoders/drivers) per register file, mm^2. */
    double regFilePeriphery = 0.066;

    /** Periphery per small SRAM table, mm^2 (sense amps etc.). */
    double tablePeriphery = 1.0e-4;

    /** CAM cell multiplier over an SRAM cell (for IQ wakeup bits). */
    double camFactor = 2.45;
};

/** Read/write port configuration of a register file. */
struct PortConfig
{
    // Matched to the modeled core's issue/writeback widths (6-wide
    // issue with two sources per op, 6-wide writeback), as in gem5's
    // O3 defaults.
    std::uint32_t readPorts = 12;
    std::uint32_t writePorts = 6;
};

/** The analytical model. */
class AreaModel
{
  public:
    explicit AreaModel(const AreaConstants &constants = AreaConstants{},
                       PortConfig ports = PortConfig{})
        : c(constants), ports(ports)
    {
    }

    /** Area of one multi-ported bit cell, mm^2. */
    double bitCellArea() const;

    /** Area of one shadow cell (port independent), mm^2. */
    double shadowCellArea() const;

    /**
     * Register file area: `regs` registers of `bits` bits plus
     * `shadowCells` embedded shadow *registers* (each `bits` wide).
     */
    double regFileArea(std::uint32_t regs, std::uint32_t bits,
                       std::uint32_t shadowCells = 0) const;

    /**
     * Banked register file: bank[i] registers with i shadow cells each
     * (the paper's Figure 5 organisation).
     */
    double bankedRegFileArea(const std::array<std::uint32_t, 4> &banks,
                             std::uint32_t bits) const;

    /** Small SRAM table area (PRT, predictor). */
    double sramArea(std::uint32_t entries, std::uint32_t bitsPerEntry,
                    std::uint32_t tablePorts = 2) const;

    /**
     * Issue-queue overhead of the proposed scheme: the extra version
     * bits per operand tag are CAM (wakeup-matched) cells.
     * @param entries IQ entries
     * @param extraBits extra tag bits per entry (paper: 4)
     */
    double iqOverheadArea(std::uint32_t entries,
                          std::uint32_t extraBits) const;

    /** PRT area: one (read bit + counter) entry per physical register. */
    double prtArea(std::uint32_t physRegs,
                   std::uint32_t counterBits) const;

    /** Register type predictor area (512 x 2 bits by default). */
    double predictorArea(std::uint32_t entries,
                         std::uint32_t bitsPerEntry = 2) const;

    /**
     * Per-scheme cost descriptor pricing: the rename-side silicon of
     * one scheme configuration — both banked register files plus the
     * side structures the scheme adds (PRT, IQ wakeup-tag growth,
     * predictor).  Field-for-field the shape of
     * rename::SchemeAreaDescriptor, passed as plain scalars so this
     * layer stays free of rename types.  Zero-valued structures
     * (counterBits / extraTagBits / predictorEntries == 0) cost
     * nothing, so the baseline scheme prices to its two files alone.
     */
    double schemeArea(const std::array<std::uint32_t, 4> &intBanks,
                      const std::array<std::uint32_t, 4> &fpBanks,
                      std::uint32_t intBits, std::uint32_t fpBits,
                      std::uint32_t prtCounterBits,
                      std::uint32_t iqEntries,
                      std::uint32_t iqExtraTagBits,
                      std::uint32_t predictorEntries,
                      std::uint32_t predictorBits) const;

    /**
     * Solve for the biggest bank-0 size such that the proposed
     * organisation (bank0 + fixed shadow banks + structure overheads)
     * fits in the area of a conventional file of `baselineRegs`
     * registers.  Returns 0 if even bank0 == minRegs does not fit.
     */
    std::uint32_t equalAreaBank0(
        std::uint32_t baselineRegs, std::uint32_t bits,
        const std::array<std::uint32_t, 4> &shadowBanks,
        double structureOverhead, std::uint32_t minRegs = 0) const;

    const AreaConstants &constants() const { return c; }

  private:
    AreaConstants c;
    PortConfig ports;
};

} // namespace rrs::area

#endif // RRS_AREA_AREA_HH
