/**
 * @file
 * Lightweight statistics package, modelled on gem5's: named scalar
 * counters, averages, sparse integer distributions, fixed-bucket
 * histograms, and interval-sampled time series, organised into groups
 * that can be dumped as text or as machine-readable JSON.
 *
 * Stats are plain members of the owning model object and register
 * themselves with the owner's Group; dumping a Group walks its stats in
 * registration order so reports are stable across runs.
 *
 * Threading model: individual stats are *not* synchronised.  Parallel
 * sweeps give every run its own model objects (and therefore its own
 * stats), then combine them through the merge() methods strictly after
 * the worker threads have joined — merge-after-join is the thread-safe
 * aggregation path, and it keeps per-run updates free of atomics on
 * the simulator's hot paths.
 */

#ifndef RRS_STATS_STATS_HH
#define RRS_STATS_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace rrs::stats {

class Group;

/**
 * Write `s` to `os` as a JSON string literal: surrounding quotes plus
 * the escapes the grammar requires (quote, backslash, \n \t \r, other
 * control characters as \uXXXX).  This is the one escaper every JSON
 * emitter in the tree should use — workload and scheme names are user
 * input (sweep matrices take arbitrary strings) and must survive a
 * jsonlite round trip.
 */
void jsonEscape(std::ostream &os, const std::string &s);

/** jsonEscape into a fresh string (for stream-free call sites). */
std::string jsonQuoted(const std::string &s);

/** Base class for every statistic: a name, a description, a dump. */
class StatBase
{
  public:
    StatBase(Group *parent, std::string name, std::string desc,
             std::string unit = "");
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return statName; }
    const std::string &desc() const { return statDesc; }

    /**
     * Measurement unit ("insts", "cycles", "regs", ...); empty for
     * dimensionless counts and ratios.  Purely descriptive — it feeds
     * the schema dump and CSV headers, never arithmetic.
     */
    const std::string &unit() const { return statUnit; }

    /**
     * Metric kind for the machine-readable schema: "counter" for
     * monotonic scalars, "gauge" for sampled averages, "distribution"
     * and "timeseries" for the shaped stats.  Tools use this to decide
     * how a metric may be compared or aggregated without hard-coding
     * metric lists.
     */
    virtual const char *kind() const = 0;

    /**
     * Write this stat's schema entry as one JSON object:
     * {"kind": ..., "unit": ..., "desc": ...}.  Values only — the
     * caller writes the (dotted) name key.
     */
    void dumpSchema(std::ostream &os) const;

    /** Write "name value # desc" lines to the stream. */
    virtual void dump(std::ostream &os, const std::string &prefix) const = 0;

    /**
     * Write this stat as one JSON object (no trailing newline), e.g.
     * {"type": "scalar", "value": 42, "desc": "..."}.  Every field of
     * the text dump appears here too, so text and JSON reports carry
     * the same information.
     */
    virtual void dumpJson(std::ostream &os) const = 0;

    /** Reset to the freshly-constructed state. */
    virtual void reset() = 0;

  private:
    std::string statName;
    std::string statDesc;
    std::string statUnit;
};

/** Monotonic (or at least scalar) counter. */
class Scalar : public StatBase
{
  public:
    Scalar(Group *parent, std::string name, std::string desc,
           std::string unit = "")
        : StatBase(parent, std::move(name), std::move(desc),
                   std::move(unit)) {}

    const char *kind() const override { return "counter"; }

    Scalar &operator++() { ++val; return *this; }
    Scalar &operator+=(double v) { val += v; return *this; }
    Scalar &operator=(double v) { val = v; return *this; }

    double value() const { return val; }

    /** Fold another run's counter into this one (post-join only). */
    void merge(const Scalar &other) { val += other.val; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os) const override;
    void reset() override { val = 0; }

  private:
    double val = 0;
};

/**
 * Arithmetic mean of sampled values (e.g. occupancy sampled each
 * cycle).  Also tracks min and max.
 */
class Average : public StatBase
{
  public:
    Average(Group *parent, std::string name, std::string desc,
            std::string unit = "")
        : StatBase(parent, std::move(name), std::move(desc),
                   std::move(unit)) {}

    const char *kind() const override { return "gauge"; }

    void
    sample(double v)
    {
        sum += v;
        ++n;
        if (n == 1 || v < minV)
            minV = v;
        if (n == 1 || v > maxV)
            maxV = v;
    }

    double mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
    std::uint64_t samples() const { return n; }
    double min() const { return n ? minV : 0.0; }
    double max() const { return n ? maxV : 0.0; }

    /** Fold another run's samples into this one (post-join only). */
    void
    merge(const Average &other)
    {
        if (other.n == 0)
            return;
        if (n == 0) {
            minV = other.minV;
            maxV = other.maxV;
        } else {
            minV = other.minV < minV ? other.minV : minV;
            maxV = other.maxV > maxV ? other.maxV : maxV;
        }
        sum += other.sum;
        n += other.n;
    }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os) const override;
    void reset() override { sum = 0; n = 0; minV = 0; maxV = 0; }

  private:
    double sum = 0;
    std::uint64_t n = 0;
    double minV = 0;
    double maxV = 0;
};

/**
 * Sparse distribution over non-negative integer keys (e.g. "number of
 * consumers of a value": how many values had exactly k consumers).
 */
class Distribution : public StatBase
{
  public:
    Distribution(Group *parent, std::string name, std::string desc,
                 std::string unit = "")
        : StatBase(parent, std::move(name), std::move(desc),
                   std::move(unit)) {}

    const char *kind() const override { return "distribution"; }

    void sample(std::uint64_t key, std::uint64_t weight = 1)
    {
        counts[key] += weight;
        total += weight;
    }

    std::uint64_t count(std::uint64_t key) const
    {
        auto it = counts.find(key);
        return it == counts.end() ? 0 : it->second;
    }

    std::uint64_t samples() const { return total; }

    /** Fraction of samples with the exact key. */
    double fraction(std::uint64_t key) const
    {
        return total ? static_cast<double>(count(key)) /
                           static_cast<double>(total)
                     : 0.0;
    }

    /** Fraction of samples with key >= lo. */
    double fractionAtLeast(std::uint64_t lo) const;

    double mean() const;

    /**
     * The p-th percentile (p in [0, 100]) of the sampled keys, with
     * linear interpolation between adjacent order statistics (the
     * numpy/"linear" convention): over the sorted multiset of samples
     * the rank is `p/100 * (total - 1)`, and a fractional rank
     * interpolates between the two bounding sample values.  An empty
     * distribution reports 0; a single sample reports itself for every
     * p.  Used by the phase profiler's per-run latency aggregates
     * (p50/p95/max).
     */
    double percentile(double p) const;

    /** Smallest sampled key (0 when empty). */
    std::uint64_t minKey() const
    {
        return counts.empty() ? 0 : counts.begin()->first;
    }

    /** Largest sampled key (0 when empty). */
    std::uint64_t maxKey() const
    {
        return counts.empty() ? 0 : counts.rbegin()->first;
    }

    const std::map<std::uint64_t, std::uint64_t> &raw() const
    {
        return counts;
    }

    /** Fold another run's histogram into this one (post-join only). */
    void
    merge(const Distribution &other)
    {
        for (const auto &[key, count] : other.counts)
            counts[key] += count;
        total += other.total;
    }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os) const override;
    void reset() override { counts.clear(); total = 0; }

  private:
    std::map<std::uint64_t, std::uint64_t> counts;
    std::uint64_t total = 0;
};

/**
 * Interval-sampled time series: (tick, value) points recorded by a
 * periodic sampler (e.g. free-list depth every 128 cycles).  The text
 * dump prints a summary line; the full series is exported through
 * dumpCsv() / dumpJson().
 */
class TimeSeries : public StatBase
{
  public:
    /** One sampled point. */
    struct Point
    {
        std::uint64_t tick;
        double value;
        bool operator==(const Point &) const = default;
    };

    TimeSeries(Group *parent, std::string name, std::string desc,
               std::string unit = "")
        : StatBase(parent, std::move(name), std::move(desc),
                   std::move(unit)) {}

    const char *kind() const override { return "timeseries"; }

    void sample(std::uint64_t tick, double v)
    {
        points.push_back(Point{tick, v});
    }

    std::uint64_t samples() const { return points.size(); }
    const std::vector<Point> &raw() const { return points; }

    double mean() const;

    /**
     * Fold another run's series into this one (post-join only).
     * Appends: merged series from a sweep hold the runs back to back
     * in submission order, each run's own ticks preserved.
     */
    void
    merge(const TimeSeries &other)
    {
        points.insert(points.end(), other.points.begin(),
                      other.points.end());
    }

    /** "tick,<name>" header plus one "tick,value" row per sample. */
    void dumpCsv(std::ostream &os) const;

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os) const override;
    void reset() override { points.clear(); }

  private:
    std::vector<Point> points;
};

/**
 * A named collection of statistics.  Groups nest; dumping the root
 * dumps the whole tree with dotted prefixes (gem5 style).
 */
class Group
{
  public:
    explicit Group(std::string name, Group *parent = nullptr);
    virtual ~Group();

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &name() const { return groupName; }

    /** Dump this group and all children to a stream. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /**
     * Dump this group and all children as one JSON object: each stat
     * maps its name to the object written by its dumpJson(), each
     * child group nests under its name.  Stat objects carry a "type"
     * field; group objects do not.  Ends with a newline at the top
     * level only when the caller adds one.
     */
    void dumpJson(std::ostream &os, int indent = 0) const;

    /**
     * Dump the metric schema of this group and all children as one
     * flat JSON object: every stat appears under its dotted path
     * (e.g. "core.rename.allocInt") mapping to
     * {"kind": ..., "unit": ..., "desc": ...}.  Walk order matches
     * dump(), so the schema is stable across runs and diffs cleanly.
     * Tools (rrs-benchdiff, the future experiment ledger) read this
     * instead of hard-coding metric lists.
     */
    void dumpSchema(std::ostream &os, int indent = 0) const;

    /** Reset all stats in this group and all children. */
    void resetStats();

  private:
    friend class StatBase;

    void addStat(StatBase *stat) { statList.push_back(stat); }
    void addChild(Group *g) { children.push_back(g); }
    void removeChild(Group *g);

    void dumpSchemaEntries(std::ostream &os, const std::string &prefix,
                           const std::string &pad, bool &first) const;

    std::string groupName;
    Group *parent;
    std::vector<StatBase *> statList;
    std::vector<Group *> children;
};

} // namespace rrs::stats

#endif // RRS_STATS_STATS_HH
