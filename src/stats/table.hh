/**
 * @file
 * Plain-text table formatter used by the benchmark harness to print the
 * paper's tables and figure data series in aligned columns, plus a CSV
 * emitter for downstream plotting.
 */

#ifndef RRS_STATS_TABLE_HH
#define RRS_STATS_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace rrs::stats {

/**
 * A simple column-aligned text table.  Cells are strings; numeric
 * convenience adders format with a fixed precision.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Start a new row. Subsequent cell() calls fill it left to right. */
    TextTable &row();

    /** Append a string cell to the current row. */
    TextTable &cell(std::string value);

    /** Append a formatted numeric cell (fixed precision). */
    TextTable &cell(double value, int precision = 2);

    /** Append an integer cell. */
    TextTable &cell(std::uint64_t value);
    TextTable &cell(std::uint32_t value);
    TextTable &cell(int value);

    /** Render with column alignment and a header underline. */
    void print(std::ostream &os, const std::string &title = "") const;

    /** Render as CSV (no alignment, comma separated, quoted as needed). */
    void printCsv(std::ostream &os) const;

    std::size_t numRows() const { return rows.size(); }

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

} // namespace rrs::stats

#endif // RRS_STATS_TABLE_HH
