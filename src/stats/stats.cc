#include "stats.hh"

#include <algorithm>
#include <iomanip>

#include "common/logging.hh"

namespace rrs::stats {

StatBase::StatBase(Group *parent, std::string name, std::string desc)
    : statName(std::move(name)), statDesc(std::move(desc))
{
    rrs_assert(parent != nullptr, "stat needs a parent group");
    parent->addStat(this);
}

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << val << "  # " << desc() << "\n";
}

void
Average::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << mean() << "  # " << desc()
       << " (samples=" << n << " min=" << min() << " max=" << max()
       << ")\n";
}

double
Distribution::fractionAtLeast(std::uint64_t lo) const
{
    if (!total)
        return 0.0;
    std::uint64_t c = 0;
    for (auto it = counts.lower_bound(lo); it != counts.end(); ++it)
        c += it->second;
    return static_cast<double>(c) / static_cast<double>(total);
}

double
Distribution::mean() const
{
    if (!total)
        return 0.0;
    double sum = 0;
    for (const auto &[k, v] : counts)
        sum += static_cast<double>(k) * static_cast<double>(v);
    return sum / static_cast<double>(total);
}

void
Distribution::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << "::samples " << total << "  # " << desc()
       << "\n";
    for (const auto &[k, v] : counts) {
        os << prefix << name() << "::" << k << " " << v << " ("
           << std::fixed << std::setprecision(2)
           << (100.0 * fraction(k)) << "%)\n";
        os.unsetf(std::ios_base::floatfield);
    }
}

Group::Group(std::string name, Group *parent)
    : groupName(std::move(name)), parent(parent)
{
    if (parent)
        parent->addChild(this);
}

Group::~Group()
{
    if (parent)
        parent->removeChild(this);
}

void
Group::removeChild(Group *g)
{
    children.erase(std::remove(children.begin(), children.end(), g),
                   children.end());
}

void
Group::dump(std::ostream &os, const std::string &prefix) const
{
    std::string self = prefix.empty() ? groupName + "."
                                      : prefix + groupName + ".";
    for (const auto *stat : statList)
        stat->dump(os, self);
    for (const auto *child : children)
        child->dump(os, self);
}

void
Group::resetStats()
{
    for (auto *stat : statList)
        stat->reset();
    for (auto *child : children)
        child->resetStats();
}

} // namespace rrs::stats
