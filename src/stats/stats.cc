#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace rrs::stats {

namespace {

/**
 * Write a double as a JSON number.  Full round-trip precision (%.17g);
 * non-finite values, which JSON cannot represent, become null.
 */
void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

} // namespace

void
jsonEscape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':  os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

std::string
jsonQuoted(const std::string &s)
{
    std::ostringstream os;
    jsonEscape(os, s);
    return os.str();
}

namespace {

/** Local alias so the existing emitters read unchanged. */
void
jsonString(std::ostream &os, const std::string &s)
{
    jsonEscape(os, s);
}

} // namespace

StatBase::StatBase(Group *parent, std::string name, std::string desc,
                   std::string unit)
    : statName(std::move(name)), statDesc(std::move(desc)),
      statUnit(std::move(unit))
{
    rrs_assert(parent != nullptr, "stat needs a parent group");
    parent->addStat(this);
}

void
StatBase::dumpSchema(std::ostream &os) const
{
    os << "{\"kind\": \"" << kind() << "\", \"unit\": ";
    jsonString(os, statUnit);
    os << ", \"desc\": ";
    jsonString(os, statDesc);
    os << "}";
}

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << val << "  # " << desc() << "\n";
}

void
Scalar::dumpJson(std::ostream &os) const
{
    os << "{\"type\": \"scalar\", \"value\": ";
    jsonNumber(os, val);
    os << ", \"desc\": ";
    jsonString(os, desc());
    os << "}";
}

void
Average::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << mean() << "  # " << desc()
       << " (samples=" << n << " min=" << min() << " max=" << max()
       << ")\n";
}

void
Average::dumpJson(std::ostream &os) const
{
    os << "{\"type\": \"average\", \"mean\": ";
    jsonNumber(os, mean());
    os << ", \"samples\": " << n << ", \"min\": ";
    jsonNumber(os, min());
    os << ", \"max\": ";
    jsonNumber(os, max());
    os << ", \"desc\": ";
    jsonString(os, desc());
    os << "}";
}

double
Distribution::fractionAtLeast(std::uint64_t lo) const
{
    if (!total)
        return 0.0;
    std::uint64_t c = 0;
    for (auto it = counts.lower_bound(lo); it != counts.end(); ++it)
        c += it->second;
    return static_cast<double>(c) / static_cast<double>(total);
}

double
Distribution::mean() const
{
    if (!total)
        return 0.0;
    double sum = 0;
    for (const auto &[k, v] : counts)
        sum += static_cast<double>(k) * static_cast<double>(v);
    return sum / static_cast<double>(total);
}

double
Distribution::percentile(double p) const
{
    if (!total)
        return 0.0;
    if (p <= 0.0)
        return static_cast<double>(minKey());
    if (p >= 100.0)
        return static_cast<double>(maxKey());

    // Rank into the sorted multiset of samples, linear-interpolation
    // convention: rank p/100 * (n-1), fractional ranks blend the two
    // bounding order statistics.
    const double rank =
        p / 100.0 * static_cast<double>(total - 1);
    const std::uint64_t lo = static_cast<std::uint64_t>(rank);
    const double frac = rank - static_cast<double>(lo);

    // Find the sample values at positions lo and lo+1 by walking the
    // cumulative counts; each key k occupies positions
    // [cum, cum + counts[k]).
    std::uint64_t cum = 0;
    double vLo = 0, vHi = 0;
    bool haveLo = false;
    for (const auto &[k, c] : counts) {
        if (!haveLo && lo < cum + c) {
            vLo = static_cast<double>(k);
            haveLo = true;
        }
        if (haveLo && lo + 1 < cum + c) {
            vHi = static_cast<double>(k);
            return vLo + frac * (vHi - vLo);
        }
        cum += c;
    }
    // lo was the last sample (frac == 0 because p < 100 guarantees
    // rank < total-1 only when interpolation found a successor above);
    // report it directly.
    return vLo;
}

void
Distribution::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << "::samples " << total << "  # " << desc()
       << "\n";
    os << prefix << name() << "::mean " << mean() << "\n";
    os << prefix << name() << "::min " << minKey() << "\n";
    os << prefix << name() << "::max " << maxKey() << "\n";
    for (const auto &[k, v] : counts) {
        os << prefix << name() << "::" << k << " " << v << " ("
           << std::fixed << std::setprecision(2)
           << (100.0 * fraction(k)) << "%)\n";
        os.unsetf(std::ios_base::floatfield);
    }
}

void
Distribution::dumpJson(std::ostream &os) const
{
    os << "{\"type\": \"distribution\", \"samples\": " << total
       << ", \"mean\": ";
    jsonNumber(os, mean());
    os << ", \"min\": " << minKey() << ", \"max\": " << maxKey()
       << ", \"counts\": {";
    bool first = true;
    for (const auto &[k, v] : counts) {
        if (!first)
            os << ", ";
        first = false;
        os << "\"" << k << "\": " << v;
    }
    os << "}, \"desc\": ";
    jsonString(os, desc());
    os << "}";
}

double
TimeSeries::mean() const
{
    if (points.empty())
        return 0.0;
    double sum = 0;
    for (const Point &p : points)
        sum += p.value;
    return sum / static_cast<double>(points.size());
}

void
TimeSeries::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << "::samples " << points.size() << "  # "
       << desc() << "\n";
    os << prefix << name() << "::mean " << mean() << "\n";
    if (!points.empty()) {
        os << prefix << name() << "::firstTick " << points.front().tick
           << "\n";
        os << prefix << name() << "::lastTick " << points.back().tick
           << "\n";
    }
}

void
TimeSeries::dumpCsv(std::ostream &os) const
{
    os << "tick," << name() << "\n";
    for (const Point &p : points) {
        os << p.tick << ",";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", p.value);
        os << buf << "\n";
    }
}

void
TimeSeries::dumpJson(std::ostream &os) const
{
    os << "{\"type\": \"timeseries\", \"samples\": " << points.size()
       << ", \"mean\": ";
    jsonNumber(os, mean());
    os << ", \"points\": [";
    bool first = true;
    for (const Point &p : points) {
        if (!first)
            os << ", ";
        first = false;
        os << "[" << p.tick << ", ";
        jsonNumber(os, p.value);
        os << "]";
    }
    os << "], \"desc\": ";
    jsonString(os, desc());
    os << "}";
}

Group::Group(std::string name, Group *parent)
    : groupName(std::move(name)), parent(parent)
{
    if (parent)
        parent->addChild(this);
}

Group::~Group()
{
    if (parent)
        parent->removeChild(this);
}

void
Group::removeChild(Group *g)
{
    children.erase(std::remove(children.begin(), children.end(), g),
                   children.end());
}

void
Group::dump(std::ostream &os, const std::string &prefix) const
{
    std::string self = prefix.empty() ? groupName + "."
                                      : prefix + groupName + ".";
    for (const auto *stat : statList)
        stat->dump(os, self);
    for (const auto *child : children)
        child->dump(os, self);
}

void
Group::dumpJson(std::ostream &os, int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent) + 2, ' ');
    os << "{";
    bool first = true;
    for (const auto *stat : statList) {
        if (!first)
            os << ",";
        first = false;
        os << "\n" << pad;
        jsonString(os, stat->name());
        os << ": ";
        stat->dumpJson(os);
    }
    for (const auto *child : children) {
        if (!first)
            os << ",";
        first = false;
        os << "\n" << pad;
        jsonString(os, child->name());
        os << ": ";
        child->dumpJson(os, indent + 2);
    }
    if (!first)
        os << "\n" << std::string(static_cast<std::size_t>(indent), ' ');
    os << "}";
}

void
Group::dumpSchemaEntries(std::ostream &os, const std::string &prefix,
                         const std::string &pad, bool &first) const
{
    const std::string self = prefix + groupName + ".";
    for (const auto *stat : statList) {
        if (!first)
            os << ",";
        first = false;
        os << "\n" << pad;
        jsonString(os, self + stat->name());
        os << ": ";
        stat->dumpSchema(os);
    }
    for (const auto *child : children)
        child->dumpSchemaEntries(os, self, pad, first);
}

void
Group::dumpSchema(std::ostream &os, int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent) + 2, ' ');
    os << "{";
    bool first = true;
    dumpSchemaEntries(os, "", pad, first);
    if (!first)
        os << "\n" << std::string(static_cast<std::size_t>(indent), ' ');
    os << "}";
}

void
Group::resetStats()
{
    for (auto *stat : statList)
        stat->reset();
    for (auto *child : children)
        child->resetStats();
}

} // namespace rrs::stats
