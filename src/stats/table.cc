#include "table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace rrs::stats {

TextTable::TextTable(std::vector<std::string> headers)
    : headers(std::move(headers))
{
}

TextTable &
TextTable::row()
{
    rows.emplace_back();
    return *this;
}

TextTable &
TextTable::cell(std::string value)
{
    rrs_assert(!rows.empty(), "cell() before row()");
    rows.back().push_back(std::move(value));
    return *this;
}

TextTable &
TextTable::cell(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return cell(oss.str());
}

TextTable &
TextTable::cell(std::uint64_t value)
{
    return cell(std::to_string(value));
}

TextTable &
TextTable::cell(std::uint32_t value)
{
    return cell(std::to_string(value));
}

TextTable &
TextTable::cell(int value)
{
    return cell(std::to_string(value));
}

void
TextTable::print(std::ostream &os, const std::string &title) const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &r : rows) {
        for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());
    }

    if (!title.empty())
        os << title << "\n";

    auto emitRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            std::string v = c < cells.size() ? cells[c] : "";
            os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
               << v;
        }
        os << "\n";
    };

    emitRow(headers);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
    for (const auto &r : rows)
        emitRow(r);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto quote = [](const std::string &s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += "\"\"";
            else
                out += ch;
        }
        out += "\"";
        return out;
    };
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ",";
            os << quote(cells[c]);
        }
        os << "\n";
    };
    emit(headers);
    for (const auto &r : rows)
        emit(r);
}

} // namespace rrs::stats
