#include "isa.hh"

#include <map>
#include <sstream>

#include "common/logging.hh"

namespace rrs::isa {

namespace {

constexpr RegClass I = RegClass::Int;
constexpr RegClass F = RegClass::Float;

/** Compact row constructor for the opcode table. */
constexpr OpInfo
row(const char *name, InstClass cls, std::uint8_t nsrc, bool dest,
    RegClass dcls, RegClass s0, RegClass s1, RegClass s2, bool imm,
    bool fimm, BranchKind br, std::uint8_t mem)
{
    return OpInfo{name, cls, nsrc, dest, dcls, {s0, s1, s2},
                  imm, fimm, br, mem};
}

constexpr BranchKind BN = BranchKind::None;

const OpInfo opTable[] = {
    // name     class              src dst dcls s0 s1 s2 imm  fimm branch          mem
    row("add",  InstClass::IntAlu,  2, true,  I, I, I, I, false, false, BN, 0),
    row("sub",  InstClass::IntAlu,  2, true,  I, I, I, I, false, false, BN, 0),
    row("mul",  InstClass::IntMult, 2, true,  I, I, I, I, false, false, BN, 0),
    row("div",  InstClass::IntDiv,  2, true,  I, I, I, I, false, false, BN, 0),
    row("rem",  InstClass::IntDiv,  2, true,  I, I, I, I, false, false, BN, 0),
    row("and",  InstClass::IntAlu,  2, true,  I, I, I, I, false, false, BN, 0),
    row("orr",  InstClass::IntAlu,  2, true,  I, I, I, I, false, false, BN, 0),
    row("eor",  InstClass::IntAlu,  2, true,  I, I, I, I, false, false, BN, 0),
    row("lsl",  InstClass::IntAlu,  2, true,  I, I, I, I, false, false, BN, 0),
    row("lsr",  InstClass::IntAlu,  2, true,  I, I, I, I, false, false, BN, 0),
    row("asr",  InstClass::IntAlu,  2, true,  I, I, I, I, false, false, BN, 0),
    row("slt",  InstClass::IntAlu,  2, true,  I, I, I, I, false, false, BN, 0),
    row("sltu", InstClass::IntAlu,  2, true,  I, I, I, I, false, false, BN, 0),
    row("addi", InstClass::IntAlu,  1, true,  I, I, I, I, true,  false, BN, 0),
    row("subi", InstClass::IntAlu,  1, true,  I, I, I, I, true,  false, BN, 0),
    row("muli", InstClass::IntMult, 1, true,  I, I, I, I, true,  false, BN, 0),
    row("andi", InstClass::IntAlu,  1, true,  I, I, I, I, true,  false, BN, 0),
    row("orri", InstClass::IntAlu,  1, true,  I, I, I, I, true,  false, BN, 0),
    row("eori", InstClass::IntAlu,  1, true,  I, I, I, I, true,  false, BN, 0),
    row("lsli", InstClass::IntAlu,  1, true,  I, I, I, I, true,  false, BN, 0),
    row("lsri", InstClass::IntAlu,  1, true,  I, I, I, I, true,  false, BN, 0),
    row("asri", InstClass::IntAlu,  1, true,  I, I, I, I, true,  false, BN, 0),
    row("slti", InstClass::IntAlu,  1, true,  I, I, I, I, true,  false, BN, 0),
    row("mov",  InstClass::IntAlu,  1, true,  I, I, I, I, false, false, BN, 0),
    row("movz", InstClass::IntAlu,  0, true,  I, I, I, I, true,  false, BN, 0),
    row("ldr",  InstClass::Load,    1, true,  I, I, I, I, true,  false, BN, 8),
    row("ldrw", InstClass::Load,    1, true,  I, I, I, I, true,  false, BN, 4),
    row("ldrb", InstClass::Load,    1, true,  I, I, I, I, true,  false, BN, 1),
    row("str",  InstClass::Store,   2, false, I, I, I, I, true,  false, BN, 8),
    row("strw", InstClass::Store,   2, false, I, I, I, I, true,  false, BN, 4),
    row("strb", InstClass::Store,   2, false, I, I, I, I, true,  false, BN, 1),
    row("fldr", InstClass::Load,    1, true,  F, I, I, I, true,  false, BN, 8),
    row("fstr", InstClass::Store,   2, false, I, F, I, I, true,  false, BN, 8),
    row("beq",  InstClass::Branch,  2, false, I, I, I, I, false, false,
        BranchKind::Cond, 0),
    row("bne",  InstClass::Branch,  2, false, I, I, I, I, false, false,
        BranchKind::Cond, 0),
    row("blt",  InstClass::Branch,  2, false, I, I, I, I, false, false,
        BranchKind::Cond, 0),
    row("bge",  InstClass::Branch,  2, false, I, I, I, I, false, false,
        BranchKind::Cond, 0),
    row("bltu", InstClass::Branch,  2, false, I, I, I, I, false, false,
        BranchKind::Cond, 0),
    row("bgeu", InstClass::Branch,  2, false, I, I, I, I, false, false,
        BranchKind::Cond, 0),
    row("b",    InstClass::Branch,  0, false, I, I, I, I, false, false,
        BranchKind::Uncond, 0),
    row("bl",   InstClass::Branch,  0, true,  I, I, I, I, false, false,
        BranchKind::Call, 0),
    row("ret",  InstClass::Branch,  1, false, I, I, I, I, false, false,
        BranchKind::Return, 0),
    row("br",   InstClass::Branch,  1, false, I, I, I, I, false, false,
        BranchKind::Indirect, 0),
    row("fadd", InstClass::FpAlu,   2, true,  F, F, F, F, false, false, BN, 0),
    row("fsub", InstClass::FpAlu,   2, true,  F, F, F, F, false, false, BN, 0),
    row("fmul", InstClass::FpMult,  2, true,  F, F, F, F, false, false, BN, 0),
    row("fdiv", InstClass::FpDiv,   2, true,  F, F, F, F, false, false, BN, 0),
    row("fsqrt",InstClass::FpDiv,   1, true,  F, F, F, F, false, false, BN, 0),
    row("fmin", InstClass::FpAlu,   2, true,  F, F, F, F, false, false, BN, 0),
    row("fmax", InstClass::FpAlu,   2, true,  F, F, F, F, false, false, BN, 0),
    row("fneg", InstClass::FpAlu,   1, true,  F, F, F, F, false, false, BN, 0),
    row("fabs", InstClass::FpAlu,   1, true,  F, F, F, F, false, false, BN, 0),
    row("fmadd",InstClass::FpMult,  3, true,  F, F, F, F, false, false, BN, 0),
    row("fmov", InstClass::FpAlu,   1, true,  F, F, F, F, false, false, BN, 0),
    row("fmovi",InstClass::FpAlu,   0, true,  F, F, F, F, false, true,  BN, 0),
    row("fcvt", InstClass::FpAlu,   1, true,  F, I, I, I, false, false, BN, 0),
    row("fcvti",InstClass::FpAlu,   1, true,  I, F, F, F, false, false, BN, 0),
    row("feq",  InstClass::FpAlu,   2, true,  I, F, F, F, false, false, BN, 0),
    row("flt",  InstClass::FpAlu,   2, true,  I, F, F, F, false, false, BN, 0),
    row("fle",  InstClass::FpAlu,   2, true,  I, F, F, F, false, false, BN, 0),
    row("nop",  InstClass::Nop,     0, false, I, I, I, I, false, false, BN, 0),
    row("halt", InstClass::Nop,     0, false, I, I, I, I, false, false, BN, 0),
};

static_assert(sizeof(opTable) / sizeof(opTable[0]) ==
                  static_cast<std::size_t>(Opcode::NumOpcodes),
              "opcode table out of sync with Opcode enum");

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    auto idx = static_cast<std::size_t>(op);
    rrs_assert(idx < static_cast<std::size_t>(Opcode::NumOpcodes),
               "bad opcode");
    return opTable[idx];
}

const PackedMeta &
packedMeta(Opcode op)
{
    // Built once from the OpInfo table (thread-safe static init);
    // after that the classifier is a single indexed load.
    static const std::array<PackedMeta,
                            static_cast<std::size_t>(Opcode::NumOpcodes)>
        table = [] {
            std::array<PackedMeta,
                       static_cast<std::size_t>(Opcode::NumOpcodes)>
                t{};
            for (std::size_t i = 0;
                 i < static_cast<std::size_t>(Opcode::NumOpcodes); ++i) {
                const OpInfo &info = opTable[i];
                PackedMeta m;
                if (info.cls == InstClass::Load)
                    m.attrs |= instattr::load;
                if (info.cls == InstClass::Store)
                    m.attrs |= instattr::store;
                if (info.branch != BranchKind::None)
                    m.attrs |= instattr::control;
                if (info.hasDest)
                    m.attrs |= instattr::hasDest;
                m.cls = info.cls;
                m.branch = info.branch;
                m.memBytes = info.memBytes;
                t[i] = m;
            }
            return t;
        }();
    auto idx = static_cast<std::size_t>(op);
    rrs_assert(idx < static_cast<std::size_t>(Opcode::NumOpcodes),
               "bad opcode");
    return table[idx];
}

std::optional<Opcode>
opcodeFromName(std::string_view name)
{
    static const std::map<std::string_view, Opcode> lookup = [] {
        std::map<std::string_view, Opcode> m;
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(Opcode::NumOpcodes); ++i) {
            m.emplace(opTable[i].name, static_cast<Opcode>(i));
        }
        return m;
    }();
    auto it = lookup.find(name);
    if (it == lookup.end())
        return std::nullopt;
    return it->second;
}

std::string
regName(RegId reg)
{
    if (!reg.valid())
        return "-";
    if (reg.cls == RegClass::Int) {
        if (reg.idx == zeroReg)
            return "xzr";
        return "x" + std::to_string(reg.idx);
    }
    return "f" + std::to_string(reg.idx);
}

std::string
StaticInst::toString() const
{
    const OpInfo &inf = info();
    std::ostringstream oss;
    oss << inf.name;
    bool first = true;
    auto sep = [&]() -> std::ostream & {
        oss << (first ? " " : ", ");
        first = false;
        return oss;
    };
    if (inf.hasDest)
        sep() << regName(dest);
    if (inf.memBytes > 0) {
        // Memory format: op value/dest, [base, #offset]
        if (inf.cls == InstClass::Store)
            sep() << regName(srcs[0]);
        sep() << "[" << regName(srcs[inf.cls == InstClass::Store ? 1 : 0])
              << ", #" << imm << "]";
    } else {
        for (int s = 0; s < inf.numSrcs; ++s)
            sep() << regName(srcs[static_cast<std::size_t>(s)]);
        if (inf.hasImm)
            sep() << "#" << imm;
        if (inf.hasFpImm)
            sep() << "#" << fimm;
    }
    if (inf.branch != BranchKind::None && target != invalidAddr)
        sep() << "0x" << std::hex << target;
    return oss.str();
}

} // namespace rrs::isa
