/**
 * @file
 * Two-pass assembler for the rrsim ISA.
 *
 * Accepted syntax (one statement per line; `;` and `//` start comments):
 *
 *     .text                    ; switch to text segment (default)
 *     .data                    ; switch to data segment
 *     .equ NAME, 123           ; define an assembly-time constant
 *     .word 1, 2, 3            ; emit 8-byte little-endian words (data)
 *     .double 1.5, 2.5         ; emit 8-byte doubles (data)
 *     .space 256               ; reserve zeroed bytes (data)
 *     label:                   ; define a label at the current address
 *
 *     add   x1, x2, x3
 *     addi  x1, x2, #8
 *     movz  x1, #42            ; or: movz x1, =label
 *     ldr   x1, [x2, #16]      ; offset optional
 *     str   x1, [x2]
 *     fmadd f0, f1, f2, f3
 *     beq   x1, x2, loop
 *     bl    function
 *     ret
 *
 * Register names: x0..x30, xzr (== x31, reads zero), sp (== x28 by
 * convention), lr (== x30), f0..f31.  Immediates: decimal, 0x-hex,
 * optionally prefixed with '#', or '=symbol' for a symbol address, or a
 * name defined with .equ.
 */

#ifndef RRS_ISA_ASSEMBLER_HH
#define RRS_ISA_ASSEMBLER_HH

#include <string>
#include <string_view>

#include "isa/program.hh"

namespace rrs::isa {

/**
 * Assemble a source string into a Program.  Errors (unknown mnemonic,
 * bad operand, undefined label) terminate via fatal() with the line
 * number; assembler input in this repo is repository-controlled, so an
 * assembly error is a build bug, not a recoverable condition.
 */
Program assemble(std::string_view source);

} // namespace rrs::isa

#endif // RRS_ISA_ASSEMBLER_HH
