/**
 * @file
 * Definition of the rrsim instruction set: a small ARMv8-flavoured
 * load/store RISC ISA with 32 integer and 32 floating-point logical
 * registers, used by every workload in this repository.
 *
 * The ISA deliberately mirrors the properties the paper's analysis
 * depends on: almost every instruction has a single destination
 * register, loads/stores use base+offset addressing, branches are
 * compare-and-branch, and integer / floating-point register files are
 * architecturally disjoint.
 *
 * Instructions are 4 bytes for PC arithmetic purposes (fetch, BTB and
 * I-cache behaviour), but there is no binary encoding: the in-memory
 * StaticInst structure *is* the representation.
 */

#ifndef RRS_ISA_ISA_HH
#define RRS_ISA_ISA_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.hh"

namespace rrs::isa {

/** Number of logical registers per class. */
constexpr int numLogRegs = 32;

/** Integer register index that always reads zero (ARM xzr). */
constexpr LogRegIndex zeroReg = 31;

/** Link register written by Bl and read by Ret (ARM x30). */
constexpr LogRegIndex linkReg = 30;

/** Base virtual address of the text segment. */
constexpr Addr textBase = 0x10000;

/** Size of one instruction in bytes (for PC arithmetic). */
constexpr Addr instBytes = 4;

/** All opcodes in the ISA. */
enum class Opcode : std::uint8_t {
    // Integer register-register ALU.
    Add, Sub, Mul, Div, Rem, And, Orr, Eor, Lsl, Lsr, Asr, Slt, Sltu,
    // Integer register-immediate ALU.
    Addi, Subi, Muli, Andi, Orri, Eori, Lsli, Lsri, Asri, Slti,
    // Moves.
    Mov,    // int reg <- int reg
    Movz,   // int reg <- 64-bit immediate
    // Memory (base register + immediate offset).
    Ldr,    // 8-byte integer load
    Ldrw,   // 4-byte zero-extended integer load
    Ldrb,   // 1-byte zero-extended integer load
    Str,    // 8-byte integer store
    Strw,   // 4-byte integer store
    Strb,   // 1-byte integer store
    Fldr,   // 8-byte floating-point load
    Fstr,   // 8-byte floating-point store
    // Control flow.
    Beq, Bne, Blt, Bge, Bltu, Bgeu,   // compare-and-branch
    B,      // unconditional direct branch
    Bl,     // call: link reg <- return address, jump to target
    Ret,    // return: jump to link reg
    Br,     // indirect jump through a register
    // Floating point.
    Fadd, Fsub, Fmul, Fdiv, Fsqrt, Fmin, Fmax, Fneg, Fabs,
    Fmadd,  // fused multiply-add: dest <- s1 * s2 + s3
    Fmov,   // fp reg <- fp reg
    Fmovi,  // fp reg <- double immediate
    Fcvt,   // fp reg <- (double)int reg
    Fcvti,  // int reg <- (int64)fp reg (truncating)
    Feq, Flt, Fle,   // fp compares producing an int 0/1
    // Misc.
    Nop,
    Halt,   // end of program

    NumOpcodes
};

/** Functional-unit / scheduling class of an instruction. */
enum class InstClass : std::uint8_t {
    IntAlu,
    IntMult,
    IntDiv,
    FpAlu,
    FpMult,
    FpDiv,
    Load,
    Store,
    Branch,
    Nop,
};

/** Control-flow kind, for the branch predictor and fetch redirection. */
enum class BranchKind : std::uint8_t {
    None,
    Cond,       // compare-and-branch
    Uncond,     // direct jump
    Call,       // direct call (pushes RAS)
    Return,     // indirect return (pops RAS)
    Indirect,   // indirect jump
};

/** Register identifier: class + index within the class. */
struct RegId
{
    RegClass cls = RegClass::Int;
    LogRegIndex idx = invalidRegIndex;

    bool valid() const { return idx != invalidRegIndex; }
    bool operator==(const RegId &) const = default;
};

/** Make an integer register id. */
constexpr RegId
intReg(LogRegIndex idx)
{
    return RegId{RegClass::Int, idx};
}

/** Make a floating-point register id. */
constexpr RegId
fpReg(LogRegIndex idx)
{
    return RegId{RegClass::Float, idx};
}

/** Static (per-opcode) properties. */
struct OpInfo
{
    const char *name;       //!< assembly mnemonic
    InstClass cls;          //!< scheduling class
    std::uint8_t numSrcs;   //!< register source operand count
    bool hasDest;           //!< writes a register
    RegClass destCls;       //!< class of the destination (if any)
    RegClass srcCls[3];     //!< class of each source operand
    bool hasImm;            //!< carries an integer immediate
    bool hasFpImm;          //!< carries a double immediate
    BranchKind branch;      //!< control-flow kind
    std::uint8_t memBytes;  //!< memory access size (0 if not a memory op)
};

/** Look up the static properties of an opcode. */
const OpInfo &opInfo(Opcode op);

/** Assembly mnemonic of an opcode. */
inline const char *
opName(Opcode op)
{
    return opInfo(op).name;
}

/** Parse a mnemonic (lower case) back to an opcode. */
std::optional<Opcode> opcodeFromName(std::string_view name);

/** True for loads (int or fp). */
inline bool
isLoad(Opcode op)
{
    return opInfo(op).cls == InstClass::Load;
}

/** True for stores (int or fp). */
inline bool
isStore(Opcode op)
{
    return opInfo(op).cls == InstClass::Store;
}

/** True for any control-flow instruction. */
inline bool
isControl(Opcode op)
{
    return opInfo(op).branch != BranchKind::None;
}

/**
 * Per-instruction attribute bits used by the pre-decoded trace layout
 * (trace::PackedTrace) and the timing model's hot loop.  The first
 * four are static per-opcode properties stamped by the classifier;
 * the last two are per-record facts stamped in at trace-pack time.
 *
 * The bit positions are serialized indirectly (they shape the packed
 * digest) — treat them as frozen.
 */
namespace instattr {
constexpr std::uint8_t load = 1u << 0;       //!< InstClass::Load
constexpr std::uint8_t store = 1u << 1;      //!< InstClass::Store
constexpr std::uint8_t control = 1u << 2;    //!< any branch kind
constexpr std::uint8_t hasDest = 1u << 3;    //!< writes a register
constexpr std::uint8_t taken = 1u << 4;      //!< per-record: branch taken
constexpr std::uint8_t writesReg = 1u << 5;  //!< per-record: dest renames
                                             //!< (has a dest, not xzr)
} // namespace instattr

/**
 * Compact pre-decoded metadata for one instruction: everything the
 * per-cycle pipeline loop needs, resolved once by the classifier (or
 * once at trace-pack time) so the loop itself never chases through
 * OpInfo.  Four bytes, trivially copyable.
 */
struct PackedMeta
{
    std::uint8_t attrs = 0;                 //!< instattr:: bits
    InstClass cls = InstClass::Nop;         //!< scheduling class
    BranchKind branch = BranchKind::None;   //!< control-flow kind
    std::uint8_t memBytes = 0;              //!< memory access size

    bool isLoad() const { return attrs & instattr::load; }
    bool isStore() const { return attrs & instattr::store; }
    bool isControl() const { return attrs & instattr::control; }
    bool hasDest() const { return attrs & instattr::hasDest; }
};

/**
 * One-time classifier: the static PackedMeta for an opcode (per-opcode
 * bits only — per-record bits are stamped in by trace packing).  A
 * single table load; the table is built once from opInfo().
 */
const PackedMeta &packedMeta(Opcode op);

// The compact class / branch-kind bytes are part of the packed-trace
// digest (and derived from the opcode bytes stored by trace codec v2),
// so their numeric values are frozen: appending new enumerators is
// fine, renumbering existing ones is a format break.
static_assert(static_cast<int>(InstClass::IntAlu) == 0 &&
                  static_cast<int>(InstClass::Nop) == 9,
              "InstClass encoding is frozen by the packed-trace format");
static_assert(static_cast<int>(BranchKind::None) == 0 &&
                  static_cast<int>(BranchKind::Indirect) == 5,
              "BranchKind encoding is frozen by the packed-trace format");

/**
 * A decoded static instruction.  This is the single in-memory
 * representation used by the assembler, the functional emulator and
 * (via DynInst) the timing model.
 */
struct StaticInst
{
    Opcode op = Opcode::Nop;
    RegId dest;                     //!< valid() iff the op has a dest
    std::array<RegId, 3> srcs{};    //!< first numSrcs() entries valid
    std::int64_t imm = 0;           //!< immediate / memory offset
    double fimm = 0.0;              //!< floating-point immediate
    Addr target = invalidAddr;      //!< direct branch target PC

    const OpInfo &info() const { return opInfo(op); }
    std::uint8_t numSrcs() const { return info().numSrcs; }
    bool hasDest() const { return info().hasDest; }
    InstClass cls() const { return info().cls; }
    BranchKind branchKind() const { return info().branch; }
    bool load() const { return info().cls == InstClass::Load; }
    bool store() const { return info().cls == InstClass::Store; }
    bool control() const { return info().branch != BranchKind::None; }

    /** Render as assembly text (labels shown as raw addresses). */
    std::string toString() const;
};

/** Format a register id as x<n>/xzr or f<n>. */
std::string regName(RegId reg);

} // namespace rrs::isa

#endif // RRS_ISA_ISA_HH
