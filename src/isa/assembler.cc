#include "assembler.hh"

#include <cstring>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/strutils.hh"

namespace rrs::isa {

namespace {

/** One parsed source line, retained between the two passes. */
struct Line
{
    int number;                         //!< 1-based source line number
    std::string label;                  //!< label defined here (if any)
    std::string mnemonic;               //!< directive or opcode ("" if none)
    std::vector<std::string> operands;  //!< comma-separated operand fields
};

/** Strip comments, split label / mnemonic / operands. */
std::vector<Line>
parseLines(std::string_view source)
{
    std::vector<Line> out;
    int lineNo = 0;
    for (std::string_view raw : split(source, '\n')) {
        ++lineNo;
        // Comments: ';' or '//' to end of line.
        std::string_view s = raw;
        for (std::size_t i = 0; i < s.size(); ++i) {
            if (s[i] == ';' ||
                (s[i] == '/' && i + 1 < s.size() && s[i + 1] == '/')) {
                s = s.substr(0, i);
                break;
            }
        }
        s = trim(s);
        if (s.empty())
            continue;

        Line line;
        line.number = lineNo;

        // Leading label(s): "name:" possibly followed by an instruction.
        while (true) {
            std::size_t colon = s.find(':');
            if (colon == std::string_view::npos)
                break;
            std::string_view head = trim(s.substr(0, colon));
            // Only treat as a label if the head is a single identifier.
            if (head.empty() ||
                head.find_first_of(" \t,[]#=") != std::string_view::npos) {
                break;
            }
            if (!line.label.empty()) {
                // Two labels on one line: emit the first as its own line.
                Line only;
                only.number = line.number;
                only.label = line.label;
                out.push_back(only);
            }
            line.label = std::string(head);
            s = trim(s.substr(colon + 1));
        }

        if (!s.empty()) {
            // Mnemonic is the first whitespace-delimited token.
            std::size_t sp = s.find_first_of(" \t");
            line.mnemonic = toLower(sp == std::string_view::npos
                                        ? s
                                        : s.substr(0, sp));
            std::string_view rest =
                sp == std::string_view::npos ? "" : trim(s.substr(sp));
            if (!rest.empty()) {
                // Split operands on commas that are outside brackets.
                int depth = 0;
                std::size_t start = 0;
                for (std::size_t i = 0; i <= rest.size(); ++i) {
                    if (i == rest.size() || (rest[i] == ',' && depth == 0)) {
                        line.operands.emplace_back(
                            trim(rest.substr(start, i - start)));
                        start = i + 1;
                    } else if (rest[i] == '[') {
                        ++depth;
                    } else if (rest[i] == ']') {
                        --depth;
                    }
                }
            }
        }
        if (!line.label.empty() || !line.mnemonic.empty())
            out.push_back(std::move(line));
    }
    return out;
}

class AssemblerPass
{
  public:
    explicit AssemblerPass(std::vector<Line> lines)
        : lines(std::move(lines))
    {
    }

    Program
    run()
    {
        firstPass();
        secondPass();
        if (auto it = prog.symbols.find("_start");
            it != prog.symbols.end()) {
            prog.entry = it->second;
        }
        return std::move(prog);
    }

  private:
    [[noreturn]] void
    err(const Line &line, const std::string &msg) const
    {
        rrs_fatal("asm line %d: %s", line.number, msg.c_str());
    }

    bool
    isDirective(const std::string &m) const
    {
        return !m.empty() && m[0] == '.';
    }

    /** Size in bytes a data directive will emit. */
    std::size_t
    directiveSize(const Line &line) const
    {
        if (line.mnemonic == ".word" || line.mnemonic == ".double")
            return 8 * line.operands.size();
        if (line.mnemonic == ".space") {
            auto n = parseInt(line.operands.empty() ? "" : line.operands[0]);
            if (!n || *n < 0)
                err(line, ".space needs a non-negative size");
            return static_cast<std::size_t>(*n);
        }
        return 0;
    }

    void
    firstPass()
    {
        bool inText = true;
        std::size_t textCount = 0;
        Addr dataCursor = dataBase;
        for (const auto &line : lines) {
            if (!line.label.empty()) {
                Addr addr = inText ? Program::pcOf(textCount) : dataCursor;
                if (!prog.symbols.emplace(line.label, addr).second)
                    err(line, "duplicate label '" + line.label + "'");
            }
            if (line.mnemonic.empty())
                continue;
            if (isDirective(line.mnemonic)) {
                if (line.mnemonic == ".text") {
                    inText = true;
                } else if (line.mnemonic == ".data") {
                    inText = false;
                } else if (line.mnemonic == ".equ") {
                    if (line.operands.size() != 2)
                        err(line, ".equ NAME, value");
                    auto v = parseInt(line.operands[1]);
                    if (!v)
                        err(line, "bad .equ value");
                    constants[line.operands[0]] = *v;
                } else if (line.mnemonic == ".align") {
                    auto a = parseInt(line.operands.empty()
                                          ? "8" : line.operands[0]);
                    if (!a || *a <= 0)
                        err(line, "bad .align");
                    dataCursor = alignUpAddr(dataCursor,
                                             static_cast<Addr>(*a));
                } else if (line.mnemonic == ".word" ||
                           line.mnemonic == ".double" ||
                           line.mnemonic == ".space") {
                    if (inText)
                        err(line, "data directive in .text");
                    dataCursor += directiveSize(line);
                } else {
                    err(line, "unknown directive " + line.mnemonic);
                }
            } else {
                if (!inText)
                    err(line, "instruction in .data");
                ++textCount;
            }
        }
    }

    static Addr
    alignUpAddr(Addr a, Addr align)
    {
        return (a + align - 1) / align * align;
    }

    /** Parse a register name; nullopt if not a register. */
    std::optional<RegId>
    parseReg(std::string_view tok) const
    {
        std::string t = toLower(tok);
        if (t == "xzr")
            return intReg(zeroReg);
        if (t == "lr")
            return intReg(linkReg);
        if (t == "sp")
            return intReg(28);
        if (t.size() >= 2 && (t[0] == 'x' || t[0] == 'f')) {
            auto n = parseInt(t.substr(1));
            if (n && *n >= 0 && *n < numLogRegs) {
                return t[0] == 'x'
                           ? intReg(static_cast<LogRegIndex>(*n))
                           : fpReg(static_cast<LogRegIndex>(*n));
            }
        }
        return std::nullopt;
    }

    /** Resolve an immediate token: number, .equ constant, or =symbol. */
    std::int64_t
    parseImm(const Line &line, std::string_view tok) const
    {
        std::string_view t = trim(tok);
        if (!t.empty() && t.front() == '=') {
            std::string sym(trim(t.substr(1)));
            auto it = prog.symbols.find(sym);
            if (it == prog.symbols.end())
                err(line, "undefined symbol '" + sym + "'");
            return static_cast<std::int64_t>(it->second);
        }
        if (!t.empty() && t.front() == '#')
            t.remove_prefix(1);
        if (auto v = parseInt(t))
            return *v;
        auto it = constants.find(std::string(t));
        if (it != constants.end())
            return it->second;
        err(line, "bad immediate '" + std::string(tok) + "'");
    }

    /** Resolve a branch-target operand to a PC. */
    Addr
    parseTarget(const Line &line, std::string_view tok) const
    {
        auto it = prog.symbols.find(std::string(trim(tok)));
        if (it == prog.symbols.end())
            err(line, "undefined label '" + std::string(tok) + "'");
        return it->second;
    }

    /** Parse "[base]" or "[base, #off]". */
    void
    parseMem(const Line &line, std::string_view tok, RegId &base,
             std::int64_t &offset) const
    {
        std::string_view t = trim(tok);
        if (t.size() < 3 || t.front() != '[' || t.back() != ']')
            err(line, "expected [base, #offset], got '" +
                          std::string(tok) + "'");
        t = t.substr(1, t.size() - 2);
        auto parts = split(t, ',');
        if (parts.empty() || parts.size() > 2)
            err(line, "bad memory operand");
        auto b = parseReg(trim(parts[0]));
        if (!b || b->cls != RegClass::Int)
            err(line, "memory base must be an integer register");
        base = *b;
        offset = parts.size() == 2 ? parseImm(line, parts[1]) : 0;
    }

    void
    secondPass()
    {
        bool inText = true;
        Addr dataCursor = dataBase;
        for (const auto &line : lines) {
            if (line.mnemonic.empty())
                continue;
            if (isDirective(line.mnemonic)) {
                handleDirective(line, inText, dataCursor);
                continue;
            }
            encode(line);
        }
    }

    void
    handleDirective(const Line &line, bool &inText, Addr &dataCursor)
    {
        if (line.mnemonic == ".text") {
            inText = true;
        } else if (line.mnemonic == ".data") {
            inText = false;
        } else if (line.mnemonic == ".equ") {
            // handled in pass 1
        } else if (line.mnemonic == ".align") {
            auto a = parseInt(line.operands.empty() ? "8"
                                                    : line.operands[0]);
            dataCursor = alignUpAddr(dataCursor, static_cast<Addr>(*a));
        } else if (line.mnemonic == ".word") {
            DataChunk chunk{dataCursor, {}};
            for (const auto &opnd : line.operands) {
                std::int64_t v = parseImm(line, opnd);
                for (int b = 0; b < 8; ++b) {
                    chunk.bytes.push_back(
                        static_cast<std::uint8_t>(v >> (8 * b)));
                }
            }
            dataCursor += chunk.bytes.size();
            prog.data.push_back(std::move(chunk));
        } else if (line.mnemonic == ".double") {
            DataChunk chunk{dataCursor, {}};
            for (const auto &opnd : line.operands) {
                std::string_view t = trim(std::string_view(opnd));
                if (!t.empty() && t.front() == '#')
                    t.remove_prefix(1);
                auto d = parseDouble(t);
                if (!d)
                    err(line, "bad double '" + opnd + "'");
                std::uint64_t raw;
                static_assert(sizeof(raw) == sizeof(double));
                std::memcpy(&raw, &*d, sizeof(raw));
                for (int b = 0; b < 8; ++b) {
                    chunk.bytes.push_back(
                        static_cast<std::uint8_t>(raw >> (8 * b)));
                }
            }
            dataCursor += chunk.bytes.size();
            prog.data.push_back(std::move(chunk));
        } else if (line.mnemonic == ".space") {
            dataCursor += directiveSize(line);
        }
    }

    void
    encode(const Line &line)
    {
        auto opOpt = opcodeFromName(line.mnemonic);
        if (!opOpt)
            err(line, "unknown mnemonic '" + line.mnemonic + "'");
        StaticInst inst;
        inst.op = *opOpt;
        const OpInfo &inf = inst.info();
        const auto &ops = line.operands;
        std::size_t cursor = 0;

        auto nextOp = [&]() -> const std::string & {
            if (cursor >= ops.size())
                err(line, "missing operand");
            return ops[cursor++];
        };
        auto reqReg = [&](RegClass cls) -> RegId {
            const std::string &tok = nextOp();
            auto r = parseReg(tok);
            if (!r)
                err(line, "expected register, got '" + tok + "'");
            if (r->cls != cls)
                err(line, "wrong register class for '" + tok + "'");
            return *r;
        };

        if (inf.memBytes > 0) {
            // Memory instructions: dest/value register then [base, #off].
            if (inf.cls == InstClass::Load) {
                inst.dest = reqReg(inf.destCls);
                parseMem(line, nextOp(), inst.srcs[0], inst.imm);
            } else {
                inst.srcs[0] = reqReg(inf.srcCls[0]);
                parseMem(line, nextOp(), inst.srcs[1], inst.imm);
            }
        } else if (inf.branch == BranchKind::Cond) {
            inst.srcs[0] = reqReg(RegClass::Int);
            inst.srcs[1] = reqReg(RegClass::Int);
            inst.target = parseTarget(line, nextOp());
        } else if (inf.branch == BranchKind::Uncond) {
            inst.target = parseTarget(line, nextOp());
        } else if (inf.branch == BranchKind::Call) {
            inst.dest = intReg(linkReg);
            inst.target = parseTarget(line, nextOp());
        } else if (inf.branch == BranchKind::Return) {
            inst.srcs[0] = intReg(linkReg);
            if (cursor < ops.size())
                inst.srcs[0] = reqReg(RegClass::Int);
        } else if (inf.branch == BranchKind::Indirect) {
            inst.srcs[0] = reqReg(RegClass::Int);
        } else {
            if (inf.hasDest)
                inst.dest = reqReg(inf.destCls);
            for (int s = 0; s < inf.numSrcs; ++s)
                inst.srcs[static_cast<std::size_t>(s)] =
                    reqReg(inf.srcCls[s]);
            if (inf.hasImm)
                inst.imm = parseImm(line, nextOp());
            if (inf.hasFpImm) {
                std::string_view t = trim(std::string_view(nextOp()));
                if (!t.empty() && t.front() == '#')
                    t.remove_prefix(1);
                auto d = parseDouble(t);
                if (!d)
                    err(line, "bad fp immediate");
                inst.fimm = *d;
            }
        }
        if (cursor != ops.size())
            err(line, "too many operands for " + line.mnemonic);
        prog.text.push_back(inst);
    }

    std::vector<Line> lines;
    Program prog;
    std::unordered_map<std::string, std::int64_t> constants;
};

} // namespace

Addr
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        rrs_fatal("undefined symbol '%s'", name.c_str());
    return it->second;
}

Program
assemble(std::string_view source)
{
    return AssemblerPass(parseLines(source)).run();
}

} // namespace rrs::isa
