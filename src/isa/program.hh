/**
 * @file
 * An assembled program: the text segment (StaticInst vector), the
 * initialised data segment, and the symbol table.  Produced by the
 * Assembler, consumed by the functional emulator.
 */

#ifndef RRS_ISA_PROGRAM_HH
#define RRS_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/isa.hh"

namespace rrs::isa {

/** Base virtual address of the data segment. */
constexpr Addr dataBase = 0x1000000;

/** Base virtual address of the stack (grows downwards). */
constexpr Addr stackBase = 0x7ff00000;

/** A contiguous run of initialised data bytes. */
struct DataChunk
{
    Addr addr;
    std::vector<std::uint8_t> bytes;
};

/**
 * An assembled program.  Instructions live at
 * pc = textBase + instBytes * index.
 */
class Program
{
  public:
    /** Instruction storage, index i lives at pcOf(i). */
    std::vector<StaticInst> text;

    /** Initialised data (copied into emulator memory at load). */
    std::vector<DataChunk> data;

    /** Label / symbol addresses (text labels and data labels). */
    std::unordered_map<std::string, Addr> symbols;

    /** Entry point (defaults to textBase; overridable via `_start:`). */
    Addr entry = textBase;

    /** PC of instruction index i. */
    static Addr pcOf(std::size_t i) { return textBase + instBytes * i; }

    /** Instruction index of a text-segment PC. */
    static std::size_t
    indexOf(Addr pc)
    {
        return static_cast<std::size_t>((pc - textBase) / instBytes);
    }

    /** True if pc falls inside the text segment. */
    bool
    validPc(Addr pc) const
    {
        return pc >= textBase && (pc - textBase) % instBytes == 0 &&
               indexOf(pc) < text.size();
    }

    /** Instruction at a text-segment PC. */
    const StaticInst &
    instAt(Addr pc) const
    {
        return text[indexOf(pc)];
    }

    /** Address of a symbol; fatal if undefined. */
    Addr symbol(const std::string &name) const;

    /** Number of static instructions. */
    std::size_t size() const { return text.size(); }
};

} // namespace rrs::isa

#endif // RRS_ISA_PROGRAM_HH
