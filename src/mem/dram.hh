/**
 * @file
 * DDR3-1600-lite main memory timing model (the paper's Table I DRAM).
 *
 * Models what matters to a core-side study: per-bank row-buffer state
 * (open-row hits vs. row misses vs. row conflicts), bank busy times,
 * a shared data bus, and periodic refresh.  It is not a full
 * controller (no command scheduling / FR-FCFS reordering); requests
 * are serviced in arrival order per bank.
 */

#ifndef RRS_MEM_DRAM_HH
#define RRS_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "stats/stats.hh"

namespace rrs::mem {

/** DRAM timing/geometry parameters (defaults: paper Table I @ 2 GHz). */
struct DramParams
{
    std::uint32_t ranks = 2;
    std::uint32_t banksPerRank = 8;
    std::uint32_t rowBytes = 8192;       //!< 8 KB row size

    // Timings in core cycles (13.75 ns * 2.0 GHz = 27.5 -> 28).
    Cycles tCas = 28;
    Cycles tRcd = 28;
    Cycles tRp = 28;
    Cycles burst = 4;                    //!< data transfer per 64B line
    Cycles tRefi = 15600;                //!< 7.8 us * 2 GHz
    Cycles refreshCycles = 360;          //!< tRFC in core cycles
};

/** Main memory: returns absolute completion ticks for line fills. */
class Dram : public stats::Group
{
  public:
    explicit Dram(const DramParams &params, stats::Group *parent = nullptr);

    /**
     * Issue a 64-byte line access.
     * @param addr line address
     * @param now current tick
     * @return absolute tick at which the line is available
     */
    Tick access(Addr addr, Tick now);

    /** Reset bank state (between sweep runs). */
    void resetState();

  private:
    struct Bank
    {
        bool rowOpen = false;
        Addr openRow = 0;
        Tick readyAt = 0;
    };

    std::uint32_t bankIndex(Addr addr) const;
    Addr rowIndex(Addr addr) const;

    DramParams params;
    std::vector<Bank> banks;
    Tick busReadyAt = 0;

    stats::Scalar reads;
    stats::Scalar rowHits;
    stats::Scalar rowMisses;
    stats::Scalar rowConflicts;
    stats::Average latency;
};

} // namespace rrs::mem

#endif // RRS_MEM_DRAM_HH
