#include "cache.hh"

#include <algorithm>

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace rrs::mem {

Cache::Cache(const CacheParams &params, Cache *below, Dram *dram,
             stats::Group *parent)
    : stats::Group(params.name, parent), params(params),
      sets(static_cast<std::uint32_t>(params.sizeBytes /
                                      (params.lineBytes * params.assoc))),
      below(below), dram(dram),
      lines(sets * params.assoc), mshrFile(params.mshrs),
      hits(this, "hits", "demand hits"),
      misses(this, "misses", "demand misses"),
      mshrMerges(this, "mshrMerges", "misses merged into pending MSHRs"),
      mshrStalls(this, "mshrStalls", "stall events due to full MSHRs"),
      writebacks(this, "writebacks", "dirty evictions"),
      prefetches(this, "prefetches", "prefetch fills issued")
{
    rrs_assert((below == nullptr) != (dram == nullptr),
               "cache needs exactly one of a lower cache or DRAM");
    rrs_assert(sets > 0, "cache too small for its associativity");
}

void
Cache::setPrefetcher(std::unique_ptr<Prefetcher> pf)
{
    prefetcher = std::move(pf);
}

void
Cache::resetState()
{
    std::fill(lines.begin(), lines.end(), Line{});
    std::fill(mshrFile.begin(), mshrFile.end(), Mshr{});
    lruTick = 0;
    if (prefetcher)
        prefetcher->resetState();
    if (below)
        below->resetState();
    if (dram)
        dram->resetState();
}

std::uint32_t
Cache::setIndex(Addr line) const
{
    return static_cast<std::uint32_t>(line % sets);
}

Cache::Line *
Cache::findLine(Addr line)
{
    const std::uint32_t base = setIndex(line) * params.assoc;
    for (std::uint32_t w = 0; w < params.assoc; ++w) {
        Line &l = lines[base + w];
        if (l.valid && l.tag == line)
            return &l;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr line) const
{
    return const_cast<Cache *>(this)->findLine(line);
}

Cache::Line &
Cache::victimLine(Addr line)
{
    const std::uint32_t base = setIndex(line) * params.assoc;
    Line *victim = &lines[base];
    for (std::uint32_t w = 0; w < params.assoc; ++w) {
        Line &l = lines[base + w];
        if (!l.valid)
            return l;
        if (l.lru < victim->lru)
            victim = &l;
    }
    if (victim->dirty) {
        // Dirty eviction: the writeback proceeds in the background (it
        // does not delay the demand fill) but is counted, and it pushes
        // the line to the level below for inclusion bookkeeping.
        ++writebacks;
    }
    return *victim;
}

Tick
Cache::fillFromBelow(Addr addr, Tick now, bool isPrefetch)
{
    Tick done;
    if (below) {
        done = below->access(addr, false, now);
    } else {
        done = dram->access(addr / params.lineBytes, now);
    }
    if (isPrefetch)
        ++prefetches;
    return done;
}

bool
Cache::contains(Addr addr, Tick now) const
{
    const Line *l = findLine(lineAddr(addr));
    return l != nullptr && l->fillDone <= now;
}

Tick
Cache::access(Addr addr, bool write, Tick now)
{
    const Addr line = lineAddr(addr);

    // Prefetcher observes every demand access (pc-less form uses the
    // address as the index key; the core calls prefetch via observe()).
    Line *hitLine = findLine(line);
    if (hitLine) {
        hitLine->lru = ++lruTick;
        hitLine->dirty = hitLine->dirty || write;
        // A line still in flight (MSHR hit) is ready at fillDone.
        Tick ready = std::max(now, hitLine->fillDone) + params.hitLatency;
        if (hitLine->fillDone <= now)
            ++hits;
        else
            ++mshrMerges;
        return ready;
    }

    ++misses;

    // Check for a pending MSHR on the same line (shouldn't normally
    // happen because the fill installs the line immediately, but a
    // conflicting eviction can re-miss a pending line).
    for (auto &m : mshrFile) {
        if (m.valid && m.lineAddr == line) {
            ++mshrMerges;
            return std::max(now, m.done) + params.hitLatency;
        }
    }

    // Allocate an MSHR: if all are busy, stall until the earliest one
    // frees (structural hazard).
    Mshr *slot = nullptr;
    Tick earliest = ~Tick{0};
    for (auto &m : mshrFile) {
        if (!m.valid || m.done <= now) {
            slot = &m;
            break;
        }
        earliest = std::min(earliest, m.done);
    }
    Tick start = now;
    if (!slot) {
        ++mshrStalls;
        start = earliest;
        for (auto &m : mshrFile) {
            if (m.done == earliest)
                slot = &m;
        }
    }

    Tick done = fillFromBelow(addr, start, false);
    slot->valid = true;
    slot->lineAddr = line;
    slot->done = done;

    // Install the line now with its availability time.
    Line &victim = victimLine(line);
    victim.valid = true;
    victim.tag = line;
    victim.dirty = write;
    victim.lru = ++lruTick;
    victim.fillDone = done;

    return done + params.hitLatency;
}

void
Cache::prefetch(Addr addr, Tick now)
{
    const Addr line = lineAddr(addr);
    if (findLine(line))
        return;
    // Prefetches only proceed when an MSHR is free; they never stall.
    for (auto &m : mshrFile) {
        if (!m.valid || m.done <= now) {
            Tick done = fillFromBelow(addr, now, true);
            m.valid = true;
            m.lineAddr = line;
            m.done = done;
            Line &victim = victimLine(line);
            victim.valid = true;
            victim.tag = line;
            victim.dirty = false;
            victim.lru = ++lruTick;
            victim.fillDone = done;
            return;
        }
    }
}

Prefetcher::Prefetcher(std::uint32_t tableEntries, std::uint32_t degree)
    : table(tableEntries), degree(degree)
{
}

void
Prefetcher::resetState()
{
    std::fill(table.begin(), table.end(), Entry{});
}

std::vector<Addr>
Prefetcher::observe(Addr pc, Addr addr)
{
    Entry &e = table[hashMix(pc) % table.size()];
    std::vector<Addr> out;
    if (e.valid && e.pc == pc) {
        std::int64_t stride =
            static_cast<std::int64_t>(addr) -
            static_cast<std::int64_t>(e.lastAddr);
        if (stride != 0 && stride == e.stride) {
            if (e.confidence < 3)
                ++e.confidence;
        } else {
            e.confidence = e.confidence > 0 ? e.confidence - 1 : 0;
            if (e.confidence == 0)
                e.stride = stride;
        }
        if (e.confidence >= 2 && e.stride != 0) {
            for (std::uint32_t d = 1; d <= degree; ++d) {
                out.push_back(static_cast<Addr>(
                    static_cast<std::int64_t>(addr) +
                    static_cast<std::int64_t>(d) * e.stride));
            }
        }
        e.lastAddr = addr;
    } else {
        e = Entry{true, pc, addr, 0, 0};
    }
    return out;
}

} // namespace rrs::mem
