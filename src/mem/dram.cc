#include "dram.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rrs::mem {

Dram::Dram(const DramParams &params, stats::Group *parent)
    : stats::Group("dram", parent), params(params),
      banks(params.ranks * params.banksPerRank),
      reads(this, "reads", "line accesses"),
      rowHits(this, "rowHits", "row-buffer hits"),
      rowMisses(this, "rowMisses", "row misses (closed row)"),
      rowConflicts(this, "rowConflicts", "row conflicts (other row open)"),
      latency(this, "latency", "access latency in cycles")
{
    rrs_assert(!banks.empty(), "DRAM needs at least one bank");
}

void
Dram::resetState()
{
    for (auto &b : banks)
        b = Bank{};
    busReadyAt = 0;
}

std::uint32_t
Dram::bankIndex(Addr addr) const
{
    // Interleave consecutive rows across banks.
    return static_cast<std::uint32_t>((addr / params.rowBytes) %
                                      banks.size());
}

Addr
Dram::rowIndex(Addr addr) const
{
    return addr / params.rowBytes / banks.size();
}

Tick
Dram::access(Addr addr, Tick now)
{
    ++reads;
    Bank &bank = banks[bankIndex(addr)];
    const Addr row = rowIndex(addr);

    // Model refresh as a periodic window during which banks are busy.
    const Tick refiPhase = now % params.tRefi;
    Tick start = now;
    if (refiPhase < params.refreshCycles)
        start += params.refreshCycles - refiPhase;
    start = std::max(start, bank.readyAt);

    Cycles access_lat;
    if (bank.rowOpen && bank.openRow == row) {
        ++rowHits;
        access_lat = params.tCas;
    } else if (!bank.rowOpen) {
        ++rowMisses;
        access_lat = params.tRcd + params.tCas;
    } else {
        ++rowConflicts;
        access_lat = params.tRp + params.tRcd + params.tCas;
    }
    bank.rowOpen = true;
    bank.openRow = row;

    // Serialise the data burst on the shared bus.
    Tick data_start = std::max(start + access_lat, busReadyAt);
    Tick done = data_start + params.burst;
    busReadyAt = done;
    bank.readyAt = start + access_lat;

    latency.sample(static_cast<double>(done - now));
    return done;
}

} // namespace rrs::mem
