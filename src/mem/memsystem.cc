#include "memsystem.hh"

namespace rrs::mem {

MemSystem::MemSystem(const MemSystemParams &params, stats::Group *parent)
    : stats::Group("mem", parent), params(params)
{
    mainMem = std::make_unique<Dram>(params.dram, this);
    l2Cache = std::make_unique<Cache>(params.l2, nullptr, mainMem.get(),
                                      this);
    l1iCache = std::make_unique<Cache>(params.l1i, l2Cache.get(), nullptr,
                                       this);
    l1dCache = std::make_unique<Cache>(params.l1d, l2Cache.get(), nullptr,
                                       this);
    dtlb = std::make_unique<Tlb>(params.tlb, this);
    if (params.stridePrefetcher) {
        stride = std::make_unique<Prefetcher>(64, params.prefetchDegree);
    }
}

void
MemSystem::resetState()
{
    // L1 resets cascade into L2/DRAM; reset the L2 chain only once.
    l1iCache->resetState();
    // l1d shares l2: reset only its own arrays to avoid double work.
    l1dCache->resetState();
    dtlb->resetState();
    if (stride)
        stride->resetState();
}

Tick
MemSystem::fetchAccess(Addr pc, Tick now)
{
    return l1iCache->access(pc, false, now);
}

Tick
MemSystem::dataAccess(Addr pc, Addr addr, bool write, Tick now)
{
    TlbResult tr = dtlb->translate(addr);
    Tick start = now + tr.latency;
    if (stride) {
        for (Addr pf : stride->observe(pc, addr))
            l1dCache->prefetch(pf, start);
    }
    return l1dCache->access(addr, write, start);
}

} // namespace rrs::mem
