/**
 * @file
 * Set-associative cache timing model with LRU replacement, a bounded
 * MSHR file (miss merging + structural stalls), write-back/
 * write-allocate policy, and an optional hardware prefetcher hook.
 *
 * Caches form a linear hierarchy (L1 -> L2 -> DRAM).  The model is
 * latency-based: access() returns the absolute tick at which the
 * requested data is available, updating tag/MSHR state as a side
 * effect.  This matches a trace-driven core that needs per-request
 * latencies rather than a full event-driven memory system.
 */

#ifndef RRS_MEM_CACHE_HH
#define RRS_MEM_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "mem/dram.hh"
#include "stats/stats.hh"

namespace rrs::mem {

class Prefetcher;

/** Cache geometry and timing. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    std::uint32_t assoc = 2;
    std::uint32_t lineBytes = 64;
    Cycles hitLatency = 1;
    std::uint32_t mshrs = 8;
};

/**
 * One cache level.  The level below is either another Cache or the
 * Dram (exactly one must be given).
 */
class Cache : public stats::Group
{
  public:
    Cache(const CacheParams &params, Cache *below, Dram *dram,
          stats::Group *parent = nullptr);

    /**
     * Demand access.
     * @param addr byte address
     * @param write true for stores
     * @param now current tick
     * @return absolute tick when the data is available
     */
    Tick access(Addr addr, bool write, Tick now);

    /**
     * Prefetch insert: fetch the line (if absent) without a demand
     * requester.  Latency is absorbed; subsequent demand accesses see
     * a hit once the fill completes.
     */
    void prefetch(Addr addr, Tick now);

    /** Attach a prefetcher that observes demand accesses. */
    void setPrefetcher(std::unique_ptr<Prefetcher> pf);

    /** True if the line is resident *now* (test/introspection). */
    bool contains(Addr addr, Tick now) const;

    /** Drop all lines and MSHR state (between sweep runs). */
    void resetState();

    std::uint64_t hitCount() const
    {
        return static_cast<std::uint64_t>(hits.value());
    }
    std::uint64_t missCount() const
    {
        return static_cast<std::uint64_t>(misses.value());
    }

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        bool dirty = false;
        std::uint64_t lru = 0;
        Tick fillDone = 0;   //!< data not usable before this tick
    };

    struct Mshr
    {
        bool valid = false;
        Addr lineAddr = 0;
        Tick done = 0;
    };

    Addr lineAddr(Addr addr) const { return addr / params.lineBytes; }
    std::uint32_t setIndex(Addr line) const;
    Line *findLine(Addr line);
    const Line *findLine(Addr line) const;
    Line &victimLine(Addr line);
    Tick fillFromBelow(Addr addr, Tick now, bool isPrefetch);

    CacheParams params;
    std::uint32_t sets;
    Cache *below;
    Dram *dram;
    std::vector<Line> lines;
    std::vector<Mshr> mshrFile;
    std::uint64_t lruTick = 0;
    std::unique_ptr<Prefetcher> prefetcher;

    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar mshrMerges;
    stats::Scalar mshrStalls;
    stats::Scalar writebacks;
    stats::Scalar prefetches;
};

/**
 * PC-indexed stride prefetcher (degree 1, per the paper's Table I).
 * Observes demand accesses and issues next-line-by-stride prefetches
 * into its cache.
 */
class Prefetcher
{
  public:
    explicit Prefetcher(std::uint32_t tableEntries = 64,
                        std::uint32_t degree = 1);

    /** Observe a demand access; returns prefetch addresses to issue. */
    std::vector<Addr> observe(Addr pc, Addr addr);

    void resetState();

  private:
    struct Entry
    {
        bool valid = false;
        Addr pc = 0;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        std::uint8_t confidence = 0;
    };

    std::vector<Entry> table;
    std::uint32_t degree;
};

} // namespace rrs::mem

#endif // RRS_MEM_CACHE_HH
