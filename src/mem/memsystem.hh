/**
 * @file
 * The assembled memory hierarchy from the paper's Table I:
 * 48 KB 3-way L1I and 32 KB 2-way L1D (1 cycle), a shared 1 MB 16-way
 * L2 (12 cycles), a degree-1 stride prefetcher on the L1D, a 48-entry
 * fully-associative TLB and DDR3-1600 DRAM.  The core calls
 * fetchAccess() for instruction fetch and dataAccess() for loads and
 * committed stores.
 */

#ifndef RRS_MEM_MEMSYSTEM_HH
#define RRS_MEM_MEMSYSTEM_HH

#include <memory>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/tlb.hh"

namespace rrs::mem {

/** Parameters of the whole hierarchy. */
struct MemSystemParams
{
    CacheParams l1i{"l1i", 48 * 1024, 3, 64, 1, 4};
    CacheParams l1d{"l1d", 32 * 1024, 2, 64, 1, 8};
    CacheParams l2{"l2", 1024 * 1024, 16, 64, 12, 16};
    DramParams dram;
    TlbParams tlb;
    bool stridePrefetcher = true;
    std::uint32_t prefetchDegree = 1;
};

/** The composed hierarchy. */
class MemSystem : public stats::Group
{
  public:
    explicit MemSystem(const MemSystemParams &params,
                       stats::Group *parent = nullptr);

    /**
     * Instruction fetch of one cache line.
     * @return absolute tick at which the fetch group is available.
     */
    Tick fetchAccess(Addr pc, Tick now);

    /**
     * Data access (load or store).  Translates through the TLB, runs
     * the stride prefetcher, and accesses the L1D.
     * @param pc      PC of the memory instruction (prefetcher index)
     * @param addr    effective address
     * @param write   true for stores
     * @return absolute tick at which the access completes
     */
    Tick dataAccess(Addr pc, Addr addr, bool write, Tick now);

    /** Direct sub-component access for tests and stats. */
    Cache &l1i() { return *l1iCache; }
    Cache &l1d() { return *l1dCache; }
    Cache &l2() { return *l2Cache; }
    Tlb &tlb() { return *dtlb; }
    Dram &dram() { return *mainMem; }

    /** Reset all timing state (between sweep runs). */
    void resetState();

  private:
    MemSystemParams params;
    std::unique_ptr<Dram> mainMem;
    std::unique_ptr<Cache> l2Cache;
    std::unique_ptr<Cache> l1iCache;
    std::unique_ptr<Cache> l1dCache;
    std::unique_ptr<Tlb> dtlb;
    std::unique_ptr<Prefetcher> stride;
};

} // namespace rrs::mem

#endif // RRS_MEM_MEMSYSTEM_HH
