#include "tlb.hh"

#include <algorithm>

namespace rrs::mem {

Tlb::Tlb(const TlbParams &params, stats::Group *parent)
    : stats::Group("tlb", parent), params(params),
      entries(params.entries),
      lookups(this, "lookups", "translations requested"),
      misses(this, "misses", "TLB misses (page walks)")
{
}

void
Tlb::resetState()
{
    std::fill(entries.begin(), entries.end(), Entry{});
    lruTick = 0;
}

TlbResult
Tlb::translate(Addr vaddr)
{
    ++lookups;
    const Addr vpn = vaddr / params.pageBytes;
    Entry *victim = &entries[0];
    for (auto &e : entries) {
        if (e.valid && e.vpn == vpn) {
            e.lru = ++lruTick;
            return TlbResult{true, 0};
        }
        if (!e.valid)
            victim = &e;
        else if (victim->valid && e.lru < victim->lru)
            victim = &e;
    }
    ++misses;
    victim->valid = true;
    victim->vpn = vpn;
    victim->lru = ++lruTick;
    return TlbResult{false, params.walkLatency};
}

} // namespace rrs::mem
