/**
 * @file
 * Fully-associative LRU TLB (paper Table I: 48-entry L1 TLB) with a
 * fixed page-walk cost on misses.  Also exposes miss events so the
 * harness can turn a configurable fraction of them into page-fault
 * exceptions for the precise-exception experiments.
 */

#ifndef RRS_MEM_TLB_HH
#define RRS_MEM_TLB_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "stats/stats.hh"

namespace rrs::mem {

/** TLB parameters. */
struct TlbParams
{
    std::uint32_t entries = 48;
    std::uint64_t pageBytes = 4096;
    Cycles walkLatency = 30;   //!< page table walk cost on a miss
};

/** Result of a translation. */
struct TlbResult
{
    bool hit = true;
    Cycles latency = 0;   //!< extra cycles beyond the cache access
};

/** Fully-associative, LRU-replaced TLB. */
class Tlb : public stats::Group
{
  public:
    explicit Tlb(const TlbParams &params, stats::Group *parent = nullptr);

    /** Translate; misses insert the page and charge the walk. */
    TlbResult translate(Addr vaddr);

    void resetState();

    std::uint64_t missCount() const
    {
        return static_cast<std::uint64_t>(misses.value());
    }

  private:
    struct Entry
    {
        bool valid = false;
        Addr vpn = 0;
        std::uint64_t lru = 0;
    };

    TlbParams params;
    std::vector<Entry> entries;
    std::uint64_t lruTick = 0;

    stats::Scalar lookups;
    stats::Scalar misses;
};

} // namespace rrs::mem

#endif // RRS_MEM_TLB_HH
