/**
 * @file
 * Live sweep progress: an opt-in stderr heartbeat for long sweeps —
 * completed/total runs, runs/s, Minst/s, an ETA, and what each worker
 * lane is currently running.  Enabled by RRS_PROGRESS=1 (or
 * programmatically); throttled to at most one line per second so a
 * 300-run sweep does not flood a terminal; TTY-aware (a terminal gets
 * one carriage-return-rewritten status line, a pipe/CI log gets plain
 * newline-terminated lines).
 *
 * Writes only to stderr, never stdout: the published tables and the
 * sweep footer stay byte-identical whether progress is on or off.
 *
 * Threading: workers call beginRun/endRun concurrently; all mutable
 * state sits behind one mutex.  That lock is touched at run
 * granularity (a run is milliseconds to seconds of simulation), not
 * per cycle, so contention is noise.
 */

#ifndef RRS_OBS_PROGRESS_HH
#define RRS_OBS_PROGRESS_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace rrs::obs {

class ProgressReporter
{
  public:
    /** Counters a progress line is rendered from (pure data, for tests). */
    struct Snapshot
    {
        std::size_t completed = 0;
        std::size_t total = 0;
        double elapsedSeconds = 0;
        std::uint64_t instsDone = 0;
        /** One entry per active lane: "workload x scheme", or "". */
        std::vector<std::string> laneWork;
    };

    /**
     * @param totalRuns runs in the sweep (the denominator).
     * @param enabled   emit output; when false every call is a no-op
     *        beyond the counters.  Pass enabledByEnv() to follow
     *        RRS_PROGRESS.
     */
    ProgressReporter(std::size_t totalRuns, bool enabled);

    /** True when RRS_PROGRESS is set to anything but "" or "0". */
    static bool enabledByEnv();

    /** Worker: run `index` starts; `work` is its workload x scheme. */
    void beginRun(std::size_t index, const std::string &work);

    /** Worker: run `index` finished having simulated `insts`. */
    void endRun(std::size_t index, std::uint64_t insts);

    /**
     * After the join: emit the final 100% line (unthrottled) and, on a
     * TTY, the newline that ends the rewritten status line.
     */
    void finish();

    /**
     * Render one status line from a snapshot, e.g.
     * "sweep 12/294 (4.1%) 3.2 runs/s 1.9 Minst/s ETA 88s | dotprod x
     * reuse, fir x baseline".  Pure function, unit-testable.
     */
    static std::string formatLine(const Snapshot &s);

  private:
    void maybePrint(bool force);
    std::size_t laneIndex();

    using Clock = std::chrono::steady_clock;

    const std::size_t total;
    const bool active;
    const bool tty;
    const Clock::time_point start;

    std::mutex mtx;
    std::size_t completed = 0;
    std::uint64_t instsDone = 0;
    std::vector<std::string> lanes;
    Clock::time_point lastPrint;
    bool printedAnything = false;
    std::size_t lastLineLen = 0;
};

} // namespace rrs::obs

#endif // RRS_OBS_PROGRESS_HH
