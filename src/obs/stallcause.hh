/**
 * @file
 * Top-down-style cycle accounting: every simulated cycle is attributed
 * to exactly one cause, so "where did the cycles go" is answerable
 * directly from the stats dump instead of from printf debugging.
 *
 * Taxonomy (one cause per cycle, checked in this order):
 *
 *  - commit       ≥1 instruction committed — a useful cycle.
 *  - drain        nothing committed, the instruction stream is
 *                 exhausted and fetch has nothing left to supply; the
 *                 backend is finishing the tail of the run.
 *  - renameNoReg  nothing committed and rename was blocked this cycle
 *    renameRob    on the named structure (free-list exhaustion, ROB,
 *    renameIq     IQ, or LSQ full).  These refine the paper's
 *    renameLsq    renameStall* counters into whole-cycle attribution.
 *  - frontend     nothing committed and the backend was empty: the
 *                 cycle was lost to fetch (icache miss, redirect
 *                 penalty, fetch-queue starvation).
 *  - backendExec  nothing committed, instructions in flight, rename
 *                 not blocked: the backend is waiting on execution
 *                 (dependences, functional units, memory).
 *
 * The rollup: frontendCycles() = frontend; backendCycles() = the four
 * rename causes + backendExec; plus drain and commit.  The invariant
 * sum() == cycles is asserted by verify() at the end of every run and
 * by the stall-attribution tests.
 */

#ifndef RRS_OBS_STALLCAUSE_HH
#define RRS_OBS_STALLCAUSE_HH

#include <cstdint>

#include "stats/stats.hh"

namespace rrs::obs {

/** The per-cycle attribution outcome. */
enum class CycleCause : std::uint8_t {
    Commit,
    Drain,
    RenameNoReg,
    RenameRob,
    RenameIq,
    RenameLsq,
    Frontend,
    BackendExec,
};

/** Number of causes (for iteration). */
constexpr int numCycleCauses = 8;

/** Short stable name of a cause (stat/report key). */
const char *cycleCauseName(CycleCause c);

/**
 * Plain copyable snapshot of a run's cycle accounting, carried in
 * harness::Outcome so sweeps and tests can reason about it without
 * touching the (non-copyable) stats objects.
 */
struct StallBreakdown
{
    std::uint64_t counts[numCycleCauses] = {};

    std::uint64_t
    of(CycleCause c) const
    {
        return counts[static_cast<int>(c)];
    }

    std::uint64_t sum() const;

    /** Cycles lost to the empty-backend (fetch-side) condition. */
    std::uint64_t frontendCycles() const
    {
        return of(CycleCause::Frontend);
    }

    /** Cycles lost with work in flight (rename-blocked or executing). */
    std::uint64_t backendCycles() const
    {
        return of(CycleCause::RenameNoReg) + of(CycleCause::RenameRob) +
               of(CycleCause::RenameIq) + of(CycleCause::RenameLsq) +
               of(CycleCause::BackendExec);
    }

    std::uint64_t drainCycles() const { return of(CycleCause::Drain); }
    std::uint64_t commitCycles() const { return of(CycleCause::Commit); }
};

/**
 * The accounting stats group the core owns: one scalar per cause,
 * fed by attribute() exactly once per simulated cycle.
 */
class CycleAccounting : public stats::Group
{
  public:
    explicit CycleAccounting(stats::Group *parent);

    /** Charge the current cycle to one cause. */
    void
    attribute(CycleCause c)
    {
        causes[static_cast<int>(c)] += 1;
    }

    /** Copy the counters out. */
    StallBreakdown breakdown() const;

    /** Assert the invariant: attributed cycles == total cycles. */
    void verify(std::uint64_t totalCycles) const;

  private:
    stats::Scalar causes[numCycleCauses];
};

} // namespace rrs::obs

#endif // RRS_OBS_STALLCAUSE_HH
