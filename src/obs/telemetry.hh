/**
 * @file
 * Structured telemetry spine: typed spans and counter samples recorded
 * per sweep run, exported as Chrome trace-event JSON that Perfetto and
 * chrome://tracing load directly.
 *
 * Determinism contract — the exported trace is byte-identical for
 * every RRS_THREADS value, which forces one central design decision:
 * telemetry timestamps live in the *simulated-time* domain (cycles,
 * rendered as trace microseconds), never the host clock.  Host
 * wall-clock is the phase profiler's job (obs/profiler.hh); the
 * telemetry trace answers "what did the simulation do", and simulated
 * time is the only clock that is schedule-independent.  For the same
 * reason the trace's pid is a constant and tid is the run's submission
 * index: which *worker* executed a run is scheduling noise, so baking
 * worker ids into the trace would break byte-identity.
 *
 * Threading model mirrors the stats package: each run records into its
 * own RunTelemetry buffer with no synchronisation (lock-free by
 * construction — one writer, no readers until the join), and the
 * writer serialises the buffers post-join in submission order.
 */

#ifndef RRS_OBS_TELEMETRY_HH
#define RRS_OBS_TELEMETRY_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rrs::obs {

/**
 * One key/value pair attached to a span.  The value is stored already
 * rendered as JSON (a number or a quoted string), so recording is a
 * string append and the writer never re-interprets it.
 */
struct TelemetryArg
{
    std::string key;
    std::string json;   //!< pre-rendered JSON value
};

/**
 * One typed span: a named interval in simulated time.  ts and dur are
 * cycles; the writer emits them as Chrome trace microseconds, so one
 * trace microsecond == one simulated cycle.
 */
struct TelemetrySpan
{
    std::string name;
    std::uint64_t ts = 0;
    std::uint64_t dur = 0;
    std::vector<TelemetryArg> args;
};

/**
 * One counter sample: a named counter track with one or more series
 * values at a cycle timestamp (Chrome "C" event).
 */
struct TelemetryCounterSample
{
    std::string track;       //!< counter track name, e.g. "occupancy"
    std::uint64_t ts = 0;
    std::vector<std::pair<std::string, double>> values;
};

/**
 * The per-run event buffer.  One run (one sweep lane) records into
 * exactly one RunTelemetry; the sweep runner owns a vector of them,
 * one slot per submission index, and hands each slot's address to its
 * run through ObsOptions.  Recording is plain vector appends — no
 * atomics, no locks — because the buffer is single-writer until the
 * post-join merge reads it.
 */
class RunTelemetry
{
  public:
    /** Human track title, e.g. "dotprod x reuse" (writer metadata). */
    void setTitle(std::string t) { runTitle = std::move(t); }
    const std::string &title() const { return runTitle; }

    /** Record a span; args are attached with the arg* helpers below. */
    TelemetrySpan &
    span(std::string name, std::uint64_t ts, std::uint64_t dur)
    {
        spanList.push_back(TelemetrySpan{std::move(name), ts, dur, {}});
        return spanList.back();
    }

    /** Record one counter sample on a named track. */
    void
    counter(std::string track, std::uint64_t ts,
            std::vector<std::pair<std::string, double>> values)
    {
        counterList.push_back(TelemetryCounterSample{
            std::move(track), ts, std::move(values)});
    }

    bool empty() const { return spanList.empty() && counterList.empty(); }
    const std::vector<TelemetrySpan> &spans() const { return spanList; }
    const std::vector<TelemetryCounterSample> &counters() const
    {
        return counterList;
    }

    void
    clear()
    {
        runTitle.clear();
        spanList.clear();
        counterList.clear();
    }

  private:
    std::string runTitle;
    std::vector<TelemetrySpan> spanList;
    std::vector<TelemetryCounterSample> counterList;
};

/** Attach a string arg (JSON-escaped) to a span. */
void argStr(TelemetrySpan &s, std::string key, const std::string &value);

/** Attach a numeric arg (full %.17g round-trip precision) to a span. */
void argNum(TelemetrySpan &s, std::string key, double value);

/** Attach an integer arg (no precision loss for 64-bit counts). */
void argInt(TelemetrySpan &s, std::string key, std::uint64_t value);

/**
 * Sweep-level numbers for the trace's "sweep" track.  Capture work is
 * attributed at sweep granularity only: *which run* triggered a trace
 * capture depends on the execution schedule (first lane to miss the
 * cache captures for everyone), so per-run capture spans would break
 * byte-identity — the aggregate deltas are schedule-independent.
 * These spans live on an instruction-denominated track (1 trace
 * microsecond == 1 emulated instruction), named accordingly.
 */
struct TelemetrySweepInfo
{
    std::string label;                  //!< bench/sweep name for metadata
    std::uint64_t runs = 0;
    std::uint64_t capturedInsts = 0;    //!< functional capture work
    std::uint64_t replayedInsts = 0;    //!< trace insts replayed
    std::uint64_t packedRecords = 0;    //!< records packed into columns
};

/**
 * Telemetry output directory: the RRS_TELEMETRY environment variable,
 * unless overridden programmatically (tests).  Empty means telemetry
 * export is disabled.
 */
std::string telemetryDir();

/** Override (or, with "", clear) the directory; takes precedence over
 *  the environment.  Pass reset=true to drop the override. */
void setTelemetryDir(std::string dir, bool reset = false);

/**
 * Serialise one sweep's telemetry as a Chrome trace-event JSON file,
 * `<dir>/<label>_sweep<seq>.trace.json` (seq is a process-wide sweep
 * counter, so repeated sweeps in one bench never clobber each other).
 * Buffers are written in submission order — index in `runs` is the
 * trace tid — making the bytes independent of the execution schedule.
 * Null buffer entries are skipped but keep their tid.
 *
 * Returns the path written, or "" when `dir` is empty.
 */
std::string writeSweepTrace(const std::string &dir,
                            const TelemetrySweepInfo &info,
                            const std::vector<const RunTelemetry *> &runs);

/**
 * Render the trace JSON itself (the file body writeSweepTrace saves);
 * exposed so tests can golden-check the exact bytes.
 */
std::string renderSweepTrace(const TelemetrySweepInfo &info,
                             const std::vector<const RunTelemetry *> &runs);

/**
 * Parse a `<label>_sweep<n>.trace.json` file name (the exact shape
 * writeSweepTrace produces; `name` is a bare file name, not a path)
 * back into its label and sweep index.  Consumers that order trace
 * files (rrs-teleview) sort on the parsed index so `_sweep10` lists
 * after `_sweep2`, not before it as a lexicographic sort would.
 * @return false when the name does not match the pattern.
 */
bool parseSweepTraceName(const std::string &name, std::string &label,
                         std::uint64_t &seq);

} // namespace rrs::obs

#endif // RRS_OBS_TELEMETRY_HH
