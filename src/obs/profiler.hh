/**
 * @file
 * Host-side phase profiler: where does the *simulator's own* wall
 * clock go?  The target-side instruments (pipetrace, stall
 * attribution) explain simulated cycles; this one explains host
 * seconds, the way simulator-evaluation studies report capture /
 * warmup / simulate breakdowns as first-class metrics.
 *
 * Usage: wrap a region in a RAII `ScopedPhase("name")`.  Phases nest
 * into a tree ("capture" > "warmup"), each node accumulating entry
 * count and monotonic-clock seconds.  Everything is off unless
 * `RRS_PROF=1` (or `--prof` on a bench, or `Profiler::setEnabled`);
 * when off, a ScopedPhase costs exactly one branch on a cached bool —
 * cheap enough to leave in the hot harness paths permanently.
 *
 * Threading model (mirrors the stats package's merge-after-join):
 *
 *  - Phases recorded on a thread land in that thread's own tree; no
 *    phase mutation is ever shared between running threads.
 *  - A sweep lane is *bound* to a per-run tree (`Profiler::Bind`) for
 *    the duration of each run; the runner merges the run trees after
 *    the pool has joined, in submission order, so the merged counts —
 *    and the order of FP additions — are identical for every
 *    `RRS_THREADS` value, exactly like the sweep's stats.
 *  - Unbound threads (the main thread, analysis pool workers) record
 *    into registered thread-local trees that report() folds together;
 *    report() must only run while no profiled work is in flight, the
 *    same quiescence the stats dump already assumes.
 *
 * Per-run latency aggregates: each merged run tree also samples every
 * phase path's per-run total (in microseconds) into a
 * stats::Distribution, so the report carries p50/p95/max per-run
 * latencies computed with Distribution::percentile().
 */

#ifndef RRS_OBS_PROFILER_HH
#define RRS_OBS_PROFILER_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "stats/stats.hh"

namespace rrs::obs {

namespace detail {
/** The cached enable flag ScopedPhase branches on. */
extern bool profilerEnabled;
} // namespace detail

/** One phase in a tree: entry count + accumulated seconds. */
struct PhaseNode
{
    std::string name;
    std::uint64_t count = 0;
    double seconds = 0;
    /** Children ordered by first entry (stable within one tree). */
    std::vector<std::unique_ptr<PhaseNode>> children;

    /** Find-or-create a child (by name). */
    PhaseNode *child(std::string_view childName);

    /** Find a child; nullptr when absent (tests, reporting). */
    const PhaseNode *find(std::string_view childName) const;

    /** Sum of the direct children's seconds. */
    double childSeconds() const;

    /** Fold `other`'s counts/seconds/children into this node. */
    void merge(const PhaseNode &other);

    /** Drop all data (keeps the name). */
    void clear();
};

/**
 * One thread's (or one sweep run's) phase tree plus its entry stack.
 * Not thread-safe: each tree belongs to exactly one running thread at
 * a time (enforced by the Bind discipline).
 */
class PhaseTree
{
  public:
    PhaseTree() { rootNode.name = "root"; }

    /** Enter a phase (child of the current one). @return the node. */
    PhaseNode *enter(std::string_view name);

    /** Leave the current phase, charging it `seconds`. */
    void leave(double seconds);

    const PhaseNode &root() const { return rootNode; }
    bool atRoot() const { return stack.empty(); }
    void clear();

  private:
    PhaseNode rootNode;
    std::vector<PhaseNode *> stack;
};

/**
 * The process-wide profiler: owns the merged result trees and the
 * per-run latency aggregates.
 */
class Profiler
{
  public:
    /** The one cached-bool branch every ScopedPhase pays when off. */
    static bool enabled() { return detail::profilerEnabled; }

    /** Flip at runtime (bench --prof, tests).  Not thread-safe: set
     *  before profiled work starts. */
    static void setEnabled(bool on);

    static Profiler &instance();

    /**
     * RAII binding of the calling thread's ScopedPhases to `tree`
     * (e.g. a sweep run's own tree).  nullptr is a no-op binding.
     * Restores the previous binding on destruction.
     */
    class Bind
    {
      public:
        explicit Bind(PhaseTree *tree);
        ~Bind();
        Bind(const Bind &) = delete;
        Bind &operator=(const Bind &) = delete;

      private:
        PhaseTree *prev;
        bool bound;
    };

    /** The tree the calling thread currently records into. */
    static PhaseTree &currentTree();

    /**
     * Merge one finished sweep-run tree: fold its structure into the
     * run aggregate and sample each phase path's per-run seconds into
     * the latency distributions.  Call post-join, in submission order,
     * from one thread (the sweep caller).
     */
    void addRunTree(const PhaseTree &tree);

    /** Merged per-run phase aggregate ("run" root). */
    const PhaseNode &runTree() const { return runMerged; }

    /** Number of run trees merged so far. */
    std::uint64_t runsMerged() const { return runCount; }

    /** Per-run latency percentile of a phase path, microseconds. */
    double runPercentileUs(const std::string &path, double p) const;

    /**
     * Snapshot of the host-side tree: every registered thread tree
     * (main thread first, then registration order) folded into one.
     * Quiescence required, as for report().
     */
    PhaseNode hostTree() const;

    /**
     * Print the human report: the host phase tree, then the per-run
     * phase table (count, total seconds, p50/p95/max per-run µs).
     */
    void report(std::ostream &os) const;

    /** Machine-readable form of report(), one JSON object. */
    void dumpJson(std::ostream &os, int indent = 0) const;

    /** Drop all recorded data (tests; not thread-safe vs recording). */
    void reset();

    // Thread-tree registry (used by the thread_local plumbing).
    void registerThreadTree(PhaseTree *tree);
    void unregisterThreadTree(PhaseTree *tree);

  private:
    Profiler();

    struct RunPhaseAgg
    {
        std::uint64_t count = 0;     //!< phase entries across runs
        double seconds = 0;          //!< total seconds across runs
        std::unique_ptr<stats::Distribution> perRunUs;
    };

    void collectRunAggregates(const PhaseNode &node,
                              const std::string &prefix);

    mutable std::mutex mu;
    std::vector<PhaseTree *> threadTrees;   //!< registration order
    PhaseNode retired;                      //!< trees of exited threads
    PhaseNode runMerged;                    //!< per-run merge (post-join)
    std::uint64_t runCount = 0;
    stats::Group aggGroup;                  //!< parent of the Distributions
    std::map<std::string, RunPhaseAgg> runAgg;   //!< by phase path
};

/**
 * RAII phase marker.  When the profiler is disabled the constructor is
 * one branch and the destructor another; nothing is recorded.
 * The name must outlive the scope (string literals).
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(const char *name)
    {
        if (!Profiler::enabled())
            return;
        begin(name);
    }

    ~ScopedPhase()
    {
        if (tree)
            end();
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    void begin(const char *name);
    void end();

    PhaseTree *tree = nullptr;
    std::chrono::steady_clock::time_point t0;
};

} // namespace rrs::obs

#endif // RRS_OBS_PROFILER_HH
