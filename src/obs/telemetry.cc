#include "telemetry.hh"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>

#include "common/atomicfile.hh"
#include "common/logging.hh"
#include "stats/stats.hh"

namespace rrs::obs {

namespace {

/** JSON number with round-trip precision; non-finite becomes null. */
std::string
numJson(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/**
 * Directory override state.  A mutex, not an atomic string: the
 * override is set once by a test or a bench before sweeps run, and
 * read once per sweep — never on a hot path.
 */
std::mutex dirMutex;
std::string dirOverride;
bool dirOverridden = false;

/** Process-wide sweep sequence number for output file names. */
std::atomic<std::uint64_t> sweepSeq{0};

void
writeSpanEvent(std::ostream &os, const TelemetrySpan &s,
               std::uint64_t tid)
{
    os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tid << ",\"name\":"
       << stats::jsonQuoted(s.name) << ",\"ts\":" << s.ts
       << ",\"dur\":" << s.dur;
    if (!s.args.empty()) {
        os << ",\"args\":{";
        bool first = true;
        for (const TelemetryArg &a : s.args) {
            if (!first)
                os << ",";
            first = false;
            os << stats::jsonQuoted(a.key) << ":" << a.json;
        }
        os << "}";
    }
    os << "}";
}

void
writeCounterEvent(std::ostream &os, const TelemetryCounterSample &c,
                  std::uint64_t tid, std::uint64_t runIndex)
{
    // Chrome keys counter tracks by (pid, name), not tid, so the run
    // index goes into the track name to keep runs' counters apart.
    os << "{\"ph\":\"C\",\"pid\":1,\"tid\":" << tid << ",\"name\":"
       << stats::jsonQuoted(c.track + " (run " +
                            std::to_string(runIndex) + ")")
       << ",\"ts\":" << c.ts << ",\"args\":{";
    bool first = true;
    for (const auto &[key, value] : c.values) {
        if (!first)
            os << ",";
        first = false;
        os << stats::jsonQuoted(key) << ":" << numJson(value);
    }
    os << "}}";
}

void
writeThreadName(std::ostream &os, std::uint64_t tid,
                const std::string &name)
{
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":"
       << stats::jsonQuoted(name) << "}}";
}

} // namespace

void
argStr(TelemetrySpan &s, std::string key, const std::string &value)
{
    s.args.push_back(TelemetryArg{std::move(key),
                                  stats::jsonQuoted(value)});
}

void
argNum(TelemetrySpan &s, std::string key, double value)
{
    s.args.push_back(TelemetryArg{std::move(key), numJson(value)});
}

void
argInt(TelemetrySpan &s, std::string key, std::uint64_t value)
{
    s.args.push_back(TelemetryArg{std::move(key),
                                  std::to_string(value)});
}

std::string
telemetryDir()
{
    {
        std::lock_guard<std::mutex> lock(dirMutex);
        if (dirOverridden)
            return dirOverride;
    }
    const char *env = std::getenv("RRS_TELEMETRY");
    return env ? env : "";
}

void
setTelemetryDir(std::string dir, bool reset)
{
    std::lock_guard<std::mutex> lock(dirMutex);
    dirOverridden = !reset;
    dirOverride = reset ? std::string() : std::move(dir);
}

std::string
renderSweepTrace(const TelemetrySweepInfo &info,
                 const std::vector<const RunTelemetry *> &runs)
{
    std::ostringstream os;
    // One event per line: the file diffs cleanly and stays a single
    // valid JSON document per the trace-event spec ("traceEvents"
    // array form, which Perfetto and chrome://tracing both accept).
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    os << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
          "\"args\":{\"name\":"
       << stats::jsonQuoted("rrsim " + info.label +
                            " (simulated time: 1us = 1 cycle)")
       << "}}";

    // Per-run tracks, tid = submission index.
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const RunTelemetry *rt = runs[i];
        if (!rt || rt->empty())
            continue;
        os << ",\n";
        writeThreadName(os, i,
                        "run " + std::to_string(i) +
                            (rt->title().empty() ? std::string()
                                                 : ": " + rt->title()));
        for (const TelemetrySpan &s : rt->spans()) {
            os << ",\n";
            writeSpanEvent(os, s, i);
        }
        for (const TelemetryCounterSample &c : rt->counters()) {
            os << ",\n";
            writeCounterEvent(os, c, i, i);
        }
    }

    // The sweep track rides above the runs (tid = run count).  Its
    // spans are denominated in *instructions* (capture work has no
    // cycle clock), which the track name declares.
    const std::uint64_t sweepTid = runs.size();
    os << ",\n";
    writeThreadName(os, sweepTid, "sweep (1us = 1 emulated inst)");
    {
        TelemetrySpan capture{"capture", 0, info.capturedInsts, {}};
        argInt(capture, "captured_insts", info.capturedInsts);
        argInt(capture, "replayed_insts", info.replayedInsts);
        os << ",\n";
        writeSpanEvent(os, capture, sweepTid);

        // Column packing rides after capture, denominated in records
        // (deterministic — host pack seconds never reach the trace
        // bytes, which must be identical across thread counts).
        TelemetrySpan pack{"pack", info.capturedInsts,
                           info.packedRecords, {}};
        argInt(pack, "packed_records", info.packedRecords);
        os << ",\n";
        writeSpanEvent(os, pack, sweepTid);

        TelemetrySpan merge{"stats-merge",
                            info.capturedInsts + info.packedRecords, 0,
                            {}};
        argInt(merge, "runs", info.runs);
        os << ",\n";
        writeSpanEvent(os, merge, sweepTid);
    }

    os << "\n]}\n";
    return os.str();
}

std::string
writeSweepTrace(const std::string &dir, const TelemetrySweepInfo &info,
                const std::vector<const RunTelemetry *> &runs)
{
    if (dir.empty())
        return "";
    const std::uint64_t seq =
        sweepSeq.fetch_add(1, std::memory_order_relaxed);
    const std::string path = dir + "/" + info.label + "_sweep" +
                             std::to_string(seq) + ".trace.json";
    const std::string body = renderSweepTrace(info, runs);
    std::string error;
    if (!tryWriteFileAtomic(path, body, error)) {
        rrs_warn("telemetry: could not write trace '%s': %s",
                 path.c_str(), error.c_str());
        return "";
    }
    return path;
}

bool
parseSweepTraceName(const std::string &name, std::string &label,
                    std::uint64_t &seq)
{
    constexpr const char suffix[] = ".trace.json";
    constexpr std::size_t suffixLen = sizeof(suffix) - 1;
    if (name.size() <= suffixLen ||
        name.compare(name.size() - suffixLen, suffixLen, suffix) != 0)
        return false;
    const std::string stem = name.substr(0, name.size() - suffixLen);
    // The label itself may contain "_sweep"; the index is whatever
    // follows the *last* occurrence, and must be all digits.
    const std::size_t mark = stem.rfind("_sweep");
    if (mark == std::string::npos || mark == 0)
        return false;
    const std::string digits = stem.substr(mark + 6);
    if (digits.empty())
        return false;
    std::uint64_t v = 0;
    for (char c : digits) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    label = stem.substr(0, mark);
    seq = v;
    return true;
}

} // namespace rrs::obs
