/**
 * @file
 * Per-instruction pipeline event tracer emitting gem5's O3PipeView
 * format, so traces load directly in Konata (and in gem5's own
 * util/o3-pipeview.py).  One record per dynamic instruction:
 *
 *   O3PipeView:fetch:<tick>:0x<pc>:0:<seq>:<disasm>
 *   O3PipeView:decode:<tick>
 *   O3PipeView:rename:<tick>
 *   O3PipeView:dispatch:<tick>
 *   O3PipeView:issue:<tick>
 *   O3PipeView:complete:<tick>
 *   O3PipeView:retire:<tick>:store:<storeTick>
 *
 * Ticks are cycles scaled by ticksPerCycle (default 500, gem5's 2 GHz
 * convention).  Stages an instruction never reached carry tick 0, and
 * a squashed instruction retires at tick 0 — exactly how gem5 marks
 * flushed work, which Konata renders as such.
 *
 * The tracer buffers each instruction's record keyed by fetch sequence
 * number and emits it when the instruction leaves the pipeline (retire
 * or squash), matching gem5's emission order.  The core keeps a cached
 * `PipeTracer *` and guards every hook behind a single null-pointer
 * branch, so the disabled path costs one predictable branch per event
 * site and no data is gathered.
 */

#ifndef RRS_OBS_PIPETRACE_HH
#define RRS_OBS_PIPETRACE_HH

#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>

#include "common/types.hh"
#include "trace/dyninst.hh"

namespace rrs::obs {

/** O3PipeView-format pipeline event tracer. */
class PipeTracer
{
  public:
    /** Trace into an externally owned stream (tests). */
    explicit PipeTracer(std::ostream &os,
                        std::uint64_t ticksPerCycle = defaultTicksPerCycle);

    /** Trace into a file (fatal if it cannot be opened). */
    explicit PipeTracer(const std::string &path,
                        std::uint64_t ticksPerCycle = defaultTicksPerCycle);

    ~PipeTracer();

    PipeTracer(const PipeTracer &) = delete;
    PipeTracer &operator=(const PipeTracer &) = delete;

    // --- event hooks, called by the core ---
    void fetch(std::uint64_t seq, const trace::DynInst &di, Tick cycle);
    void rename(std::uint64_t seq, Tick cycle);
    void dispatch(std::uint64_t seq, Tick cycle);
    void issue(std::uint64_t seq, Tick cycle);
    void complete(std::uint64_t seq, Tick cycle);
    void retire(std::uint64_t seq, Tick cycle);
    void squash(std::uint64_t seq);

    /** Emit any still-buffered instructions as squashed (end of run). */
    void finishRun();

    /** Records emitted so far (retired + squashed). */
    std::uint64_t emitted() const { return emittedCount; }

    /** gem5's default 2 GHz core / 1 THz tick clock ratio. */
    static constexpr std::uint64_t defaultTicksPerCycle = 500;

  private:
    struct Record
    {
        Addr pc = 0;
        std::string disasm;
        bool store = false;
        Tick fetchTick = 0;
        Tick renameTick = 0;
        Tick dispatchTick = 0;
        Tick issueTick = 0;
        Tick completeTick = 0;
    };

    void emit(const Record &rec, Tick retireTick);

    /**
     * Cycles are 0-based but tick 0 means "stage not reached" in the
     * format, so real events are offset by one cycle.
     */
    Tick toTick(Tick cycle) const { return (cycle + 1) * ticksPerCycle; }

    std::unique_ptr<std::ofstream> owned;  //!< set for the path ctor
    std::ostream &out;
    std::uint64_t ticksPerCycle;
    std::unordered_map<std::uint64_t, Record> live;
    std::uint64_t emittedCount = 0;
};

} // namespace rrs::obs

#endif // RRS_OBS_PIPETRACE_HH
