#include "sampler.hh"

#include <fstream>

#include "common/logging.hh"

namespace rrs::obs {

OccupancySampler::OccupancySampler(stats::Group *parent)
    : stats::Group("occupancy", parent),
      freeIntSeries(this, "freeInt", "free int physical registers",
                    "regs"),
      freeFpSeries(this, "freeFp", "free fp physical registers",
                   "regs"),
      sharedSeries(this, "shared",
                   "physical registers holding >= 2 values", "regs"),
      robSeries(this, "rob", "ROB occupancy", "insts"),
      iqSeries(this, "iq", "IQ occupancy", "insts"),
      lsqSeries(this, "lsq", "LQ+SQ occupancy", "insts")
{
}

void
OccupancySampler::record(Tick tick, const OccupancyPoint &p)
{
    freeIntSeries.sample(tick, p.freeInt);
    freeFpSeries.sample(tick, p.freeFp);
    sharedSeries.sample(tick, p.shared);
    robSeries.sample(tick, p.rob);
    iqSeries.sample(tick, p.iq);
    lsqSeries.sample(tick, p.lsq);
}

void
OccupancySampler::writeCsv(std::ostream &os) const
{
    // Header: column names with their units, drawn from the stats
    // themselves so a renamed or re-united series can never disagree
    // with its column (format documented in DESIGN §Observability).
    os << "tick [cycles]";
    for (const stats::TimeSeries *s :
         {&freeIntSeries, &freeFpSeries, &sharedSeries, &robSeries,
          &iqSeries, &lsqSeries}) {
        os << "," << s->name();
        if (!s->unit().empty())
            os << " [" << s->unit() << "]";
    }
    os << "\n";
    const auto &base = freeIntSeries.raw();
    for (std::size_t i = 0; i < base.size(); ++i) {
        os << base[i].tick << "," << base[i].value << ","
           << freeFpSeries.raw()[i].value << ","
           << sharedSeries.raw()[i].value << ","
           << robSeries.raw()[i].value << ","
           << iqSeries.raw()[i].value << ","
           << lsqSeries.raw()[i].value << "\n";
    }
}

void
OccupancySampler::writeCsvFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os.is_open())
        rrs_fatal("cannot open time-series CSV file '%s'", path.c_str());
    writeCsv(os);
}

} // namespace rrs::obs
