/**
 * @file
 * Interval occupancy sampler: a stats group of stats::TimeSeries that
 * records the structural occupancies the paper's analysis lives on —
 * free physical registers, shared (version >= 1) registers, ROB, IQ
 * and LSQ — every N cycles, via the core's sampler hook.
 *
 * The sampler itself is model-agnostic: the harness installs a lambda
 * that reads the core/renamer and calls record().  writeCsv() exports
 * all series in one wide CSV (tick plus one column per series), the
 * format notebooks expect.
 */

#ifndef RRS_OBS_SAMPLER_HH
#define RRS_OBS_SAMPLER_HH

#include <ostream>
#include <string>

#include "common/types.hh"
#include "stats/stats.hh"

namespace rrs::obs {

/** One sampling instant's occupancies. */
struct OccupancyPoint
{
    std::uint32_t freeInt = 0;    //!< free int physical registers
    std::uint32_t freeFp = 0;     //!< free fp physical registers
    std::uint32_t shared = 0;     //!< registers holding >= 2 values
    std::uint32_t rob = 0;
    std::uint32_t iq = 0;
    std::uint32_t lsq = 0;
};

/** TimeSeries bundle for the standard occupancy channels. */
class OccupancySampler : public stats::Group
{
  public:
    explicit OccupancySampler(stats::Group *parent = nullptr);

    /** Record one instant (called from the core's sampler hook). */
    void record(Tick tick, const OccupancyPoint &p);

    std::uint64_t samples() const { return freeIntSeries.samples(); }

    /**
     * Wide CSV, one column per series.  The header carries names and
     * units drawn from the stats themselves
     * ("tick [cycles],freeInt [regs],...,lsq [insts]"); format
     * documented in DESIGN.md §4c Observability.
     */
    void writeCsv(std::ostream &os) const;

    /** writeCsv() into a file (fatal if it cannot be opened). */
    void writeCsvFile(const std::string &path) const;

    const stats::TimeSeries &freeInt() const { return freeIntSeries; }
    const stats::TimeSeries &freeFp() const { return freeFpSeries; }
    const stats::TimeSeries &shared() const { return sharedSeries; }
    const stats::TimeSeries &rob() const { return robSeries; }
    const stats::TimeSeries &iq() const { return iqSeries; }
    const stats::TimeSeries &lsq() const { return lsqSeries; }

  private:
    stats::TimeSeries freeIntSeries;
    stats::TimeSeries freeFpSeries;
    stats::TimeSeries sharedSeries;
    stats::TimeSeries robSeries;
    stats::TimeSeries iqSeries;
    stats::TimeSeries lsqSeries;
};

} // namespace rrs::obs

#endif // RRS_OBS_SAMPLER_HH
