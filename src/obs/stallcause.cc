#include "stallcause.hh"

#include "common/logging.hh"

namespace rrs::obs {

const char *
cycleCauseName(CycleCause c)
{
    switch (c) {
      case CycleCause::Commit:      return "commit";
      case CycleCause::Drain:       return "drain";
      case CycleCause::RenameNoReg: return "renameNoReg";
      case CycleCause::RenameRob:   return "renameRob";
      case CycleCause::RenameIq:    return "renameIq";
      case CycleCause::RenameLsq:   return "renameLsq";
      case CycleCause::Frontend:    return "frontend";
      case CycleCause::BackendExec: return "backendExec";
    }
    return "unknown";
}

std::uint64_t
StallBreakdown::sum() const
{
    std::uint64_t s = 0;
    for (int i = 0; i < numCycleCauses; ++i)
        s += counts[i];
    return s;
}

CycleAccounting::CycleAccounting(stats::Group *parent)
    : stats::Group("cycleCause", parent),
      causes{{this, "commit", "cycles with at least one commit"},
             {this, "drain", "stream exhausted, backend draining"},
             {this, "renameNoReg",
              "whole cycles blocked: no free physical register"},
             {this, "renameRob", "whole cycles blocked: ROB full"},
             {this, "renameIq", "whole cycles blocked: IQ full"},
             {this, "renameLsq", "whole cycles blocked: LSQ full"},
             {this, "frontend",
              "backend empty: fetch stall / redirect / icache"},
             {this, "backendExec",
              "waiting on execution (dependences, FUs, memory)"}}
{
}

StallBreakdown
CycleAccounting::breakdown() const
{
    StallBreakdown b;
    for (int i = 0; i < numCycleCauses; ++i)
        b.counts[i] = static_cast<std::uint64_t>(causes[i].value());
    return b;
}

void
CycleAccounting::verify(std::uint64_t totalCycles) const
{
    const std::uint64_t attributed = breakdown().sum();
    if (attributed != totalCycles) {
        rrs_panic("cycle accounting leak: %llu cycles attributed, "
                  "%llu simulated",
                  static_cast<unsigned long long>(attributed),
                  static_cast<unsigned long long>(totalCycles));
    }
}

} // namespace rrs::obs
