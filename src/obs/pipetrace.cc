#include "pipetrace.hh"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/logging.hh"

namespace rrs::obs {

PipeTracer::PipeTracer(std::ostream &os, std::uint64_t ticksPerCycle)
    : out(os), ticksPerCycle(ticksPerCycle)
{
    rrs_assert(ticksPerCycle > 0, "ticksPerCycle must be positive");
}

PipeTracer::PipeTracer(const std::string &path,
                       std::uint64_t ticksPerCycle)
    : owned(std::make_unique<std::ofstream>(path)),
      out(*owned), ticksPerCycle(ticksPerCycle)
{
    if (!owned->is_open())
        rrs_fatal("cannot open pipeline trace file '%s'", path.c_str());
    rrs_assert(ticksPerCycle > 0, "ticksPerCycle must be positive");
}

PipeTracer::~PipeTracer()
{
    finishRun();
}

void
PipeTracer::fetch(std::uint64_t seq, const trace::DynInst &di, Tick cycle)
{
    Record rec;
    rec.pc = di.pc;
    rec.disasm = di.si.toString();
    rec.store = di.isStore();
    rec.fetchTick = toTick(cycle);
    live.emplace(seq, std::move(rec));
}

void
PipeTracer::rename(std::uint64_t seq, Tick cycle)
{
    auto it = live.find(seq);
    if (it != live.end())
        it->second.renameTick = toTick(cycle);
}

void
PipeTracer::dispatch(std::uint64_t seq, Tick cycle)
{
    auto it = live.find(seq);
    if (it != live.end())
        it->second.dispatchTick = toTick(cycle);
}

void
PipeTracer::issue(std::uint64_t seq, Tick cycle)
{
    auto it = live.find(seq);
    if (it != live.end())
        it->second.issueTick = toTick(cycle);
}

void
PipeTracer::complete(std::uint64_t seq, Tick cycle)
{
    auto it = live.find(seq);
    if (it != live.end())
        it->second.completeTick = toTick(cycle);
}

void
PipeTracer::retire(std::uint64_t seq, Tick cycle)
{
    auto it = live.find(seq);
    if (it == live.end())
        return;
    emit(it->second, toTick(cycle));
    live.erase(it);
}

void
PipeTracer::squash(std::uint64_t seq)
{
    auto it = live.find(seq);
    if (it == live.end())
        return;
    emit(it->second, 0);
    live.erase(it);
}

void
PipeTracer::finishRun()
{
    // Anything still in flight when the run ends never retired; emit
    // the records (in fetch order for determinism) as squashed.
    std::vector<std::uint64_t> seqs;
    seqs.reserve(live.size());
    for (const auto &[seq, rec] : live)
        seqs.push_back(seq);
    std::sort(seqs.begin(), seqs.end());
    for (std::uint64_t seq : seqs)
        emit(live.at(seq), 0);
    live.clear();
    out.flush();
}

void
PipeTracer::emit(const Record &rec, Tick retireTick)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "0x%08llx",
                  static_cast<unsigned long long>(rec.pc));
    // Decode is folded into fetch in this model's two-stage front end.
    out << "O3PipeView:fetch:" << rec.fetchTick << ":" << buf << ":0:"
        << emittedCount << ":" << rec.disasm << "\n";
    out << "O3PipeView:decode:" << rec.fetchTick << "\n";
    out << "O3PipeView:rename:" << rec.renameTick << "\n";
    out << "O3PipeView:dispatch:" << rec.dispatchTick << "\n";
    out << "O3PipeView:issue:" << rec.issueTick << "\n";
    out << "O3PipeView:complete:" << rec.completeTick << "\n";
    out << "O3PipeView:retire:" << retireTick << ":store:"
        << (rec.store && retireTick ? retireTick : 0) << "\n";
    ++emittedCount;
}

} // namespace rrs::obs
