/**
 * @file
 * Crash-time flight recorder: a fixed-size ring buffer of the most
 * recent rename/pipeline events (allocate / commit / squash / flush,
 * each with cycle, physical-register tag and free-list depth), dumped
 * together with the run's identifying context (workload, scheme, sweep
 * seed, configuration) when the process dies through rrs_panic or
 * rrs_fatal — which is exactly how an RRS_AUDIT invariant violation
 * reports itself.  Turns the auditor's one-line "invariant violated"
 * into a forensic report of what the rename stage did in the last N
 * events before the violation.
 *
 * Cost model: recording is a handful of stores into a pre-sized ring
 * (no allocation, no locks — the recorder belongs to one core, which
 * belongs to one sweep lane).  When no recorder is attached the core
 * pays one never-taken branch per hook, the same pattern as the pipe
 * tracer and auditor.  Arming registers a crash hook
 * (common/logging.hh); the hook fires on the *crashing* thread, and
 * dumps every armed recorder — in a parallel sweep the other lanes'
 * recorders are quiescent-but-racy reads, acceptable in a process that
 * is already dying.
 */

#ifndef RRS_OBS_FLIGHTREC_HH
#define RRS_OBS_FLIGHTREC_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace rrs::obs {

/** What the rename/pipeline hook observed. */
enum class FlightEventKind : std::uint8_t {
    Alloc,    //!< rename allocated a destination register
    Commit,   //!< instruction committed (frees its previous mapping)
    Squash,   //!< branch/exception squash rolled the map back
    Flush,    //!< full pipeline flush
};

const char *flightEventKindName(FlightEventKind k);

/**
 * One recorded event.  The register identity is stored as raw fields
 * (class / index / version) rather than a rename-layer type so obs/
 * stays below rename/ in the dependency order.
 */
struct FlightEvent
{
    std::uint64_t cycle = 0;
    std::uint64_t seq = 0;       //!< instruction sequence number (0: none)
    FlightEventKind kind = FlightEventKind::Alloc;
    std::uint8_t cls = 0;        //!< register class (0 int, 1 fp)
    std::uint8_t version = 0;    //!< tag version (shadow-cell schemes)
    std::uint16_t reg = 0;       //!< physical register index
    std::int32_t freeInt = 0;    //!< int free-list depth after the event
    std::int32_t freeFp = 0;     //!< fp free-list depth after the event
};

/**
 * The per-core ring.  Construct with the depth (number of events kept;
 * RRS_FLIGHTREC_DEPTH picks it for env-driven runs), fill in context
 * strings identifying the run, then arm() to hook the crash path.
 */
class FlightRecorder
{
  public:
    explicit FlightRecorder(std::uint32_t depth);
    ~FlightRecorder();

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /** The hot-path hook: overwrite the oldest slot. */
    void
    record(const FlightEvent &e)
    {
        ring[head] = e;
        head = (head + 1) % ring.size();
        if (recorded < ring.size())
            ++recorded;
    }

    /** Attach an identifying key/value (workload, scheme, seed, ...). */
    void setContext(std::string key, std::string value);

    /**
     * Register this recorder with the crash-hook registry: any
     * rrs_panic / rrs_fatal from now until destruction dumps it.
     */
    void arm();

    /** Events currently held, oldest first. */
    std::vector<FlightEvent> events() const;

    std::uint32_t depth() const
    {
        return static_cast<std::uint32_t>(ring.size());
    }

    /** Human-readable dump: context block then one line per event. */
    void dump(std::ostream &os) const;

    /**
     * Dump to `<dir>/flightrec_<n>.dump` where dir is the flight-
     * recorder dump directory (see setFlightRecDumpDir) and n a
     * process-wide counter.  Returns the path, or "" on failure.
     * Called by the crash hook; also usable directly from tests.
     */
    std::string dumpToFile() const;

  private:
    std::vector<FlightEvent> ring;
    std::size_t head = 0;
    std::size_t recorded = 0;
    std::vector<std::pair<std::string, std::string>> context;
    std::uint64_t hookId = 0;
    bool armed = false;
};

/**
 * Where crash dumps land: an explicit override (tests), else
 * RRS_TELEMETRY when set (crash forensics belong next to the traces),
 * else the working directory.
 */
std::string flightRecDumpDir();
void setFlightRecDumpDir(std::string dir, bool reset = false);

} // namespace rrs::obs

#endif // RRS_OBS_FLIGHTREC_HH
