/**
 * @file
 * A minimal JSON DOM: enough to parse what stats::Group::dumpJson
 * emits (objects, arrays, strings, numbers, bools, null) so the JSON
 * round-trip test — and any tool that consumes the machine-readable
 * stats export — does not need an external dependency.
 *
 * Object member order is preserved (the dump order is stable, and
 * tests compare against it).  Numbers are stored as double, which is
 * exact for every value the stats package emits (%.17g).
 */

#ifndef RRS_OBS_JSONLITE_HH
#define RRS_OBS_JSONLITE_HH

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace rrs::obs::json {

/** A parsed JSON value. */
class Value
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind() const { return k; }
    bool isNull() const { return k == Kind::Null; }
    bool isObject() const { return k == Kind::Object; }
    bool isArray() const { return k == Kind::Array; }
    bool isNumber() const { return k == Kind::Number; }
    bool isString() const { return k == Kind::String; }

    double num = 0;
    bool boolean = false;
    std::string str;
    std::vector<Value> arr;
    /** Members in document order. */
    std::vector<std::pair<std::string, Value>> members;

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;

    /** find() that fatals on absence (tools with known layout). */
    const Value &at(const std::string &key) const;

    Kind k = Kind::Null;
};

/**
 * Parse a complete JSON document.
 * @param text  the document
 * @param error set to a message on failure (optional)
 * @return the value, or nullopt-style Null with *ok == false
 */
bool parse(const std::string &text, Value &out, std::string *error = nullptr);

} // namespace rrs::obs::json

#endif // RRS_OBS_JSONLITE_HH
