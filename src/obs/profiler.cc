#include "profiler.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "stats/stats.hh"

namespace rrs::obs {

namespace detail {

bool profilerEnabled = [] {
    const char *env = std::getenv("RRS_PROF");
    return env != nullptr && std::strcmp(env, "0") != 0 &&
           std::strcmp(env, "") != 0;
}();

} // namespace detail

namespace {

/**
 * Per-thread tree handle: registers with the profiler on the thread's
 * first profiled phase, merges its data into the retired pile when the
 * thread exits.  The profiler singleton is deliberately leaked so
 * these destructors (which run during static teardown on pool-thread
 * join) never touch a destroyed object.
 */
struct ThreadTreeHandle
{
    PhaseTree tree;
    ThreadTreeHandle() { Profiler::instance().registerThreadTree(&tree); }
    ~ThreadTreeHandle() { Profiler::instance().unregisterThreadTree(&tree); }
};

thread_local PhaseTree *tlBound = nullptr;

PhaseTree &
threadLocalTree()
{
    thread_local ThreadTreeHandle handle;
    return handle.tree;
}

void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

void
dumpNodeJson(std::ostream &os, const PhaseNode &node)
{
    os << "{\"count\": " << node.count << ", \"seconds\": ";
    jsonNumber(os, node.seconds);
    os << ", \"children\": {";
    bool first = true;
    for (const auto &c : node.children) {
        if (!first)
            os << ", ";
        first = false;
        stats::jsonEscape(os, c->name);
        os << ": ";
        dumpNodeJson(os, *c);
    }
    os << "}}";
}

void
printNode(std::ostream &os, const PhaseNode &node, int depth,
          double parentSeconds)
{
    char buf[192];
    const double pct = parentSeconds > 0
                           ? 100.0 * node.seconds / parentSeconds
                           : 0.0;
    std::snprintf(buf, sizeof(buf), "  %*s%-*s %10llu x %10.3f s %5.1f%%\n",
                  depth * 2, "",
                  std::max(2, 24 - depth * 2), node.name.c_str(),
                  static_cast<unsigned long long>(node.count),
                  node.seconds, pct);
    os << buf;
    for (const auto &c : node.children)
        printNode(os, *c, depth + 1, node.seconds);
}

} // namespace

PhaseNode *
PhaseNode::child(std::string_view childName)
{
    for (const auto &c : children) {
        if (c->name == childName)
            return c.get();
    }
    children.push_back(std::make_unique<PhaseNode>());
    children.back()->name = std::string(childName);
    return children.back().get();
}

const PhaseNode *
PhaseNode::find(std::string_view childName) const
{
    for (const auto &c : children) {
        if (c->name == childName)
            return c.get();
    }
    return nullptr;
}

double
PhaseNode::childSeconds() const
{
    double s = 0;
    for (const auto &c : children)
        s += c->seconds;
    return s;
}

void
PhaseNode::merge(const PhaseNode &other)
{
    count += other.count;
    seconds += other.seconds;
    for (const auto &c : other.children)
        child(c->name)->merge(*c);
}

void
PhaseNode::clear()
{
    count = 0;
    seconds = 0;
    children.clear();
}

PhaseNode *
PhaseTree::enter(std::string_view name)
{
    PhaseNode *parent = stack.empty() ? &rootNode : stack.back();
    PhaseNode *node = parent->child(name);
    stack.push_back(node);
    return node;
}

void
PhaseTree::leave(double seconds)
{
    rrs_assert(!stack.empty(), "phase leave without matching enter");
    PhaseNode *node = stack.back();
    stack.pop_back();
    ++node->count;
    node->seconds += seconds;
}

void
PhaseTree::clear()
{
    rrs_assert(stack.empty(), "clearing a phase tree mid-phase");
    rootNode.clear();
}

void
Profiler::setEnabled(bool on)
{
    detail::profilerEnabled = on;
}

Profiler::Profiler() : aggGroup("prof")
{
    runMerged.name = "run";
}

Profiler &
Profiler::instance()
{
    // Leaked on purpose: see ThreadTreeHandle.
    static Profiler *inst = new Profiler();
    return *inst;
}

Profiler::Bind::Bind(PhaseTree *tree)
    : prev(nullptr), bound(tree != nullptr)
{
    if (bound) {
        prev = tlBound;
        tlBound = tree;
    }
}

Profiler::Bind::~Bind()
{
    if (bound)
        tlBound = prev;
}

PhaseTree &
Profiler::currentTree()
{
    if (tlBound)
        return *tlBound;
    return threadLocalTree();
}

void
Profiler::registerThreadTree(PhaseTree *tree)
{
    std::lock_guard<std::mutex> lock(mu);
    threadTrees.push_back(tree);
}

void
Profiler::unregisterThreadTree(PhaseTree *tree)
{
    std::lock_guard<std::mutex> lock(mu);
    retired.merge(tree->root());
    threadTrees.erase(
        std::remove(threadTrees.begin(), threadTrees.end(), tree),
        threadTrees.end());
}

void
Profiler::collectRunAggregates(const PhaseNode &node,
                               const std::string &prefix)
{
    for (const auto &c : node.children) {
        const std::string path =
            prefix.empty() ? c->name : prefix + "/" + c->name;
        RunPhaseAgg &agg = runAgg[path];
        agg.count += c->count;
        agg.seconds += c->seconds;
        if (!agg.perRunUs) {
            agg.perRunUs = std::make_unique<stats::Distribution>(
                &aggGroup, path, "per-run phase microseconds");
        }
        agg.perRunUs->sample(
            static_cast<std::uint64_t>(std::llround(c->seconds * 1e6)));
        collectRunAggregates(*c, path);
    }
}

void
Profiler::addRunTree(const PhaseTree &tree)
{
    // Post-join, one caller thread: the lock only guards against a
    // concurrent report() from another control thread.
    std::lock_guard<std::mutex> lock(mu);
    runMerged.merge(tree.root());
    ++runCount;
    collectRunAggregates(tree.root(), "");
}

double
Profiler::runPercentileUs(const std::string &path, double p) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = runAgg.find(path);
    if (it == runAgg.end() || !it->second.perRunUs)
        return 0.0;
    return it->second.perRunUs->percentile(p);
}

PhaseNode
Profiler::hostTree() const
{
    std::lock_guard<std::mutex> lock(mu);
    PhaseNode out;
    out.name = "host";
    out.merge(retired);
    for (const PhaseTree *t : threadTrees)
        out.merge(t->root());
    return out;
}

void
Profiler::report(std::ostream &os) const
{
    const PhaseNode host = hostTree();
    os << "phase profile (host wall clock, RRS_PROF):\n";
    if (host.children.empty()) {
        os << "  (no host phases recorded)\n";
    } else {
        const double total = host.childSeconds();
        for (const auto &c : host.children)
            printNode(os, *c, 0, total);
    }

    std::lock_guard<std::mutex> lock(mu);
    if (runCount == 0)
        return;
    char buf[224];
    std::snprintf(buf, sizeof(buf),
                  "per-run phase latencies (%llu run trees merged "
                  "post-join; deterministic across RRS_THREADS):\n"
                  "  %-24s %10s %10s %10s %10s %10s\n",
                  static_cast<unsigned long long>(runCount), "phase",
                  "count", "total_s", "p50_us", "p95_us", "max_us");
    os << buf;
    for (const auto &[path, agg] : runAgg) {
        std::snprintf(buf, sizeof(buf),
                      "  %-24s %10llu %10.3f %10.0f %10.0f %10.0f\n",
                      path.c_str(),
                      static_cast<unsigned long long>(agg.count),
                      agg.seconds, agg.perRunUs->percentile(50),
                      agg.perRunUs->percentile(95),
                      static_cast<double>(agg.perRunUs->maxKey()));
        os << buf;
    }
}

void
Profiler::dumpJson(std::ostream &os, int indent) const
{
    const PhaseNode host = hostTree();
    const std::string pad(static_cast<std::size_t>(indent) + 2, ' ');
    std::lock_guard<std::mutex> lock(mu);
    os << "{\n" << pad << "\"runs_merged\": " << runCount << ",\n"
       << pad << "\"host\": ";
    dumpNodeJson(os, host);
    os << ",\n" << pad << "\"run\": ";
    dumpNodeJson(os, runMerged);
    os << ",\n" << pad << "\"run_phases\": {";
    bool first = true;
    for (const auto &[path, agg] : runAgg) {
        if (!first)
            os << ",";
        first = false;
        os << "\n" << pad << "  ";
        stats::jsonEscape(os, path);
        os << ": {\"count\": " << agg.count << ", \"seconds\": ";
        jsonNumber(os, agg.seconds);
        os << ", \"p50_us\": ";
        jsonNumber(os, agg.perRunUs->percentile(50));
        os << ", \"p95_us\": ";
        jsonNumber(os, agg.perRunUs->percentile(95));
        os << ", \"max_us\": " << agg.perRunUs->maxKey() << "}";
    }
    if (!first)
        os << "\n" << pad;
    os << "}\n" << std::string(static_cast<std::size_t>(indent), ' ')
       << "}";
}

void
Profiler::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    retired.clear();
    for (PhaseTree *t : threadTrees)
        t->clear();
    runMerged.clear();
    runMerged.name = "run";
    runCount = 0;
    runAgg.clear();
}

void
ScopedPhase::begin(const char *name)
{
    tree = &Profiler::currentTree();
    tree->enter(name);
    t0 = std::chrono::steady_clock::now();
}

void
ScopedPhase::end()
{
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    tree->leave(dt.count());
}

} // namespace rrs::obs
