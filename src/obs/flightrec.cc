#include "flightrec.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>

#include "common/atomicfile.hh"
#include "common/logging.hh"
#include "obs/telemetry.hh"

namespace rrs::obs {

namespace {

std::mutex dumpDirMutex;
std::string dumpDirOverride;
bool dumpDirOverridden = false;

/** Process-wide dump file counter (several cores may dump). */
std::atomic<std::uint64_t> dumpSeq{0};

} // namespace

const char *
flightEventKindName(FlightEventKind k)
{
    switch (k) {
      case FlightEventKind::Alloc:  return "alloc";
      case FlightEventKind::Commit: return "commit";
      case FlightEventKind::Squash: return "squash";
      case FlightEventKind::Flush:  return "flush";
    }
    return "?";
}

FlightRecorder::FlightRecorder(std::uint32_t depth)
    : ring(depth ? depth : 1)
{
}

FlightRecorder::~FlightRecorder()
{
    if (armed)
        removeCrashHook(hookId);
}

void
FlightRecorder::setContext(std::string key, std::string value)
{
    context.emplace_back(std::move(key), std::move(value));
}

void
FlightRecorder::arm()
{
    if (armed)
        return;
    // The hook captures `this`: the recorder outlives its armed window
    // by construction (the destructor unhooks), and on a crash the
    // process never returns to the code that would destroy it.
    hookId = addCrashHook([this] {
        const std::string path = dumpToFile();
        if (!path.empty())
            std::fprintf(stderr, "flight recorder: dumped %s\n",
                         path.c_str());
    });
    armed = true;
}

std::vector<FlightEvent>
FlightRecorder::events() const
{
    std::vector<FlightEvent> out;
    out.reserve(recorded);
    // Oldest first: when the ring has wrapped the oldest entry sits at
    // `head`, otherwise at 0.
    const std::size_t start = recorded < ring.size() ? 0 : head;
    for (std::size_t i = 0; i < recorded; ++i)
        out.push_back(ring[(start + i) % ring.size()]);
    return out;
}

void
FlightRecorder::dump(std::ostream &os) const
{
    os << "=== flight recorder ===\n";
    for (const auto &[key, value] : context)
        os << key << ": " << value << "\n";
    os << "depth: " << ring.size() << "\n";
    os << "events: " << recorded << " (oldest first)\n";
    for (const FlightEvent &e : events()) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "cycle %llu seq %llu %-6s %s p%u v%u "
                      "freeInt %d freeFp %d\n",
                      static_cast<unsigned long long>(e.cycle),
                      static_cast<unsigned long long>(e.seq),
                      flightEventKindName(e.kind),
                      e.cls == 0 ? "int" : "fp",
                      static_cast<unsigned>(e.reg),
                      static_cast<unsigned>(e.version),
                      e.freeInt, e.freeFp);
        os << buf;
    }
    os << "=== end flight recorder ===\n";
}

std::string
FlightRecorder::dumpToFile() const
{
    const std::string dir = flightRecDumpDir();
    const std::uint64_t n =
        dumpSeq.fetch_add(1, std::memory_order_relaxed);
    const std::string path = (dir.empty() ? std::string(".") : dir) +
                             "/flightrec_" + std::to_string(n) +
                             ".dump";
    std::ostringstream os;
    dump(os);
    std::string error;
    if (!tryWriteFileAtomic(path, os.str(), error)) {
        std::fprintf(stderr,
                     "flight recorder: could not write %s: %s\n",
                     path.c_str(), error.c_str());
        return "";
    }
    return path;
}

std::string
flightRecDumpDir()
{
    {
        std::lock_guard<std::mutex> lock(dumpDirMutex);
        if (dumpDirOverridden)
            return dumpDirOverride;
    }
    return telemetryDir();
}

void
setFlightRecDumpDir(std::string dir, bool reset)
{
    std::lock_guard<std::mutex> lock(dumpDirMutex);
    dumpDirOverridden = !reset;
    dumpDirOverride = reset ? std::string() : std::move(dir);
}

} // namespace rrs::obs
