#include "progress.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

namespace rrs::obs {

ProgressReporter::ProgressReporter(std::size_t totalRuns, bool enabled)
    : total(totalRuns), active(enabled),
      tty(isatty(fileno(stderr)) != 0), start(Clock::now()),
      lastPrint(start - std::chrono::seconds(2))
{
}

bool
ProgressReporter::enabledByEnv()
{
    const char *env = std::getenv("RRS_PROGRESS");
    return env && *env && std::strcmp(env, "0") != 0;
}

std::size_t
ProgressReporter::laneIndex()
{
    // Thread-local lane slot keyed on the reporter: the pool's lanes
    // (and the participating caller) each claim an index on first use.
    // Called with mtx held.
    struct Slot
    {
        const void *owner = nullptr;
        std::size_t lane = 0;
    };
    thread_local Slot slot;
    if (slot.owner != this) {
        slot.owner = this;
        slot.lane = lanes.size();
        lanes.emplace_back();
    }
    return slot.lane;
}

void
ProgressReporter::beginRun(std::size_t index, const std::string &work)
{
    (void)index;
    if (!active)
        return;
    std::lock_guard<std::mutex> lock(mtx);
    lanes[laneIndex()] = work;
    maybePrint(false);
}

void
ProgressReporter::endRun(std::size_t index, std::uint64_t insts)
{
    (void)index;
    if (!active)
        return;
    std::lock_guard<std::mutex> lock(mtx);
    lanes[laneIndex()].clear();
    ++completed;
    instsDone += insts;
    maybePrint(false);
}

void
ProgressReporter::finish()
{
    if (!active)
        return;
    std::lock_guard<std::mutex> lock(mtx);
    for (auto &lane : lanes)
        lane.clear();
    maybePrint(true);
    if (tty && printedAnything)
        std::fputc('\n', stderr);
}

std::string
ProgressReporter::formatLine(const Snapshot &s)
{
    const double pct =
        s.total ? 100.0 * static_cast<double>(s.completed) /
                      static_cast<double>(s.total)
                : 0.0;
    const double runsPerSec =
        s.elapsedSeconds > 0
            ? static_cast<double>(s.completed) / s.elapsedSeconds
            : 0.0;
    const double minstPerSec =
        s.elapsedSeconds > 0
            ? static_cast<double>(s.instsDone) / s.elapsedSeconds / 1e6
            : 0.0;

    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "sweep %zu/%zu (%.1f%%) %.1f runs/s %.2f Minst/s",
                  s.completed, s.total, pct, runsPerSec, minstPerSec);
    std::string line = buf;
    // ETA only once there is something to extrapolate from: the first
    // sub-second heartbeat divides by a near-zero elapsed time (inf or
    // wildly wrong estimates), and zero completed runs means the rate
    // is pure noise.
    if (runsPerSec > 0 && s.completed > 0 && s.elapsedSeconds >= 1.0 &&
        s.completed < s.total) {
        double eta = static_cast<double>(s.total - s.completed) /
                     runsPerSec;
        if (!(eta >= 0))
            eta = 0;   // clamp negatives and NaN
        std::snprintf(buf, sizeof(buf), " ETA %.0fs", eta);
        line += buf;
    }

    std::string work;
    for (const std::string &lane : s.laneWork) {
        if (lane.empty())
            continue;
        if (!work.empty())
            work += ", ";
        work += lane;
    }
    if (!work.empty())
        line += " | " + work;
    return line;
}

void
ProgressReporter::maybePrint(bool force)
{
    // mtx held by the caller.
    const Clock::time_point now = Clock::now();
    if (!force && now - lastPrint < std::chrono::seconds(1))
        return;
    lastPrint = now;

    Snapshot s;
    s.completed = completed;
    s.total = total;
    s.elapsedSeconds =
        std::chrono::duration<double>(now - start).count();
    s.instsDone = instsDone;
    s.laneWork = lanes;
    std::string line = formatLine(s);

    if (tty) {
        // Rewrite one status line in place; pad over the previous
        // line's tail so a shorter update leaves no droppings.
        const std::size_t len = line.size();
        if (len < lastLineLen)
            line.append(lastLineLen - len, ' ');
        lastLineLen = len;
        std::fprintf(stderr, "\r%s", line.c_str());
    } else {
        std::fprintf(stderr, "%s\n", line.c_str());
    }
    std::fflush(stderr);
    printedAnything = true;
}

} // namespace rrs::obs
