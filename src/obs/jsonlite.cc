#include "jsonlite.hh"

#include <cctype>
#include <cstdlib>

#include "common/logging.hh"
#include "common/strutils.hh"

namespace rrs::obs::json {

const Value *
Value::find(const std::string &key) const
{
    if (k != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : members) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

const Value &
Value::at(const std::string &key) const
{
    const Value *v = find(key);
    if (!v)
        rrs_fatal("json: missing member '%s'", key.c_str());
    return *v;
}

namespace {

/** Recursive-descent parser over a string view with a cursor. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text(text), error(error) {}

    bool
    run(Value &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos != text.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const char *msg)
    {
        if (error)
            *error = formatString("json parse error at offset %zu: %s",
                                  pos, msg);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = 0;
        while (word[n]) {
            if (pos + n >= text.size() || text[pos + n] != word[n])
                return false;
            ++n;
        }
        pos += n;
        return true;
    }

    bool
    parseValue(Value &out)
    {
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        switch (c) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"': out.k = Value::Kind::String;
                    return parseString(out.str);
          case 't':
            if (!literal("true"))
                return fail("bad literal");
            out.k = Value::Kind::Bool;
            out.boolean = true;
            return true;
          case 'f':
            if (!literal("false"))
                return fail("bad literal");
            out.k = Value::Kind::Bool;
            out.boolean = false;
            return true;
          case 'n':
            if (!literal("null"))
                return fail("bad literal");
            out.k = Value::Kind::Null;
            return true;
          default:
            return parseNumber(out);
        }
    }

    bool
    parseString(std::string &out)
    {
        if (text[pos] != '"')
            return fail("expected string");
        ++pos;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos >= text.size())
                return fail("unterminated escape");
            char e = text[pos++];
            switch (e) {
              case '"':  out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/':  out.push_back('/'); break;
              case 'n':  out.push_back('\n'); break;
              case 't':  out.push_back('\t'); break;
              case 'r':  out.push_back('\r'); break;
              case 'b':  out.push_back('\b'); break;
              case 'f':  out.push_back('\f'); break;
              case 'u': {
                if (pos + 4 > text.size())
                    return fail("short \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // The stats dump only escapes control characters, so
                // plain one-byte code points suffice here.
                out.push_back(static_cast<char>(code & 0xff));
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        if (pos >= text.size())
            return fail("unterminated string");
        ++pos;   // closing quote
        return true;
    }

    bool
    parseNumber(Value &out)
    {
        // Locale-independent (common/strutils.hh): std::strtod honours
        // the global locale's decimal separator, so under de_DE-style
        // locales it would read "1.5" as 1 and desynchronise the
        // cursor; every float in stats-json and BENCH_*.json would
        // misparse.
        const char *start = text.c_str() + pos;
        const char *last = text.c_str() + text.size();
        double v = 0;
        const char *end = parseDoublePrefix(start, last, v);
        if (end == start)
            return fail("expected value");
        pos += static_cast<std::size_t>(end - start);
        out.k = Value::Kind::Number;
        out.num = v;
        return true;
    }

    bool
    parseObject(Value &out)
    {
        out.k = Value::Kind::Object;
        ++pos;   // '{'
        skipWs();
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (pos >= text.size() || text[pos] != '"')
                return fail("expected member name");
            if (!parseString(key))
                return false;
            skipWs();
            if (pos >= text.size() || text[pos] != ':')
                return fail("expected ':'");
            ++pos;
            skipWs();
            Value member;
            if (!parseValue(member))
                return false;
            out.members.emplace_back(std::move(key), std::move(member));
            skipWs();
            if (pos >= text.size())
                return fail("unterminated object");
            if (text[pos] == ',') {
                ++pos;
                continue;
            }
            if (text[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(Value &out)
    {
        out.k = Value::Kind::Array;
        ++pos;   // '['
        skipWs();
        if (pos < text.size() && text[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            Value elem;
            if (!parseValue(elem))
                return false;
            out.arr.push_back(std::move(elem));
            skipWs();
            if (pos >= text.size())
                return fail("unterminated array");
            if (text[pos] == ',') {
                ++pos;
                continue;
            }
            if (text[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    const std::string &text;
    std::string *error;
    std::size_t pos = 0;
};

} // namespace

bool
parse(const std::string &text, Value &out, std::string *error)
{
    Parser p(text, error);
    return p.run(out);
}

} // namespace rrs::obs::json
