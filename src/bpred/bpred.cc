#include "bpred.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace rrs::bpred {

using isa::BranchKind;

BTB::BTB(std::uint32_t entries, std::uint32_t assoc)
    : sets(entries / assoc), assoc(assoc), entries(entries)
{
    rrs_assert(isPowerOf2(sets), "BTB sets must be a power of two");
}

std::uint32_t
BTB::setIndex(Addr pc) const
{
    return static_cast<std::uint32_t>((pc >> 2) & (sets - 1));
}

Addr
BTB::lookup(Addr pc) const
{
    const std::uint32_t base = setIndex(pc) * assoc;
    for (std::uint32_t w = 0; w < assoc; ++w) {
        const Entry &e = entries[base + w];
        // Const lookup does not touch LRU; update() refreshes it.
        if (e.valid && e.tag == pc)
            return e.target;
    }
    return invalidAddr;
}

void
BTB::update(Addr pc, Addr target)
{
    const std::uint32_t base = setIndex(pc) * assoc;
    std::uint32_t victim = 0;
    std::uint64_t oldest = ~0ULL;
    for (std::uint32_t w = 0; w < assoc; ++w) {
        Entry &e = entries[base + w];
        if (e.valid && e.tag == pc) {
            e.target = target;
            e.lru = ++lruTick;
            return;
        }
        if (!e.valid) {
            victim = w;
            oldest = 0;
        } else if (e.lru < oldest) {
            victim = w;
            oldest = e.lru;
        }
    }
    Entry &e = entries[base + victim];
    e.valid = true;
    e.tag = pc;
    e.target = target;
    e.lru = ++lruTick;
}

ReturnAddressStack::ReturnAddressStack(std::uint32_t entries)
    : stack(entries, 0)
{
}

void
ReturnAddressStack::push(Addr returnPc)
{
    topPtr = (topPtr + 1) % stack.size();
    stack[topPtr] = returnPc;
}

Addr
ReturnAddressStack::pop()
{
    Addr v = stack[topPtr];
    topPtr = (topPtr + static_cast<std::uint32_t>(stack.size()) - 1) %
             stack.size();
    return v;
}

Addr
ReturnAddressStack::top() const
{
    return stack[topPtr];
}

BranchPredictor::BranchPredictor(const BPredParams &params,
                                 stats::Group *parent)
    : stats::Group("bpred", parent), params(params),
      counters(params.tableEntries, 1),  // weakly not-taken
      btb(params.btbEntries, params.btbAssoc), ras(params.rasEntries),
      condLookups(this, "condLookups", "conditional branch predictions"),
      condCorrect(this, "condCorrect", "correct conditional predictions"),
      btbMisses(this, "btbMisses", "BTB misses on taken control"),
      rasPredictions(this, "rasPredictions", "return predictions from RAS")
{
    rrs_assert(isPowerOf2(params.tableEntries),
               "predictor table must be a power of two");
}

std::uint32_t
BranchPredictor::tableIndex(Addr pc) const
{
    std::uint64_t idx = pc >> 2;
    if (params.kind == DirPredictor::GShare) {
        std::uint64_t hist =
            globalHistory & ((1ULL << params.historyBits) - 1);
        idx ^= hist;
    }
    return static_cast<std::uint32_t>(idx & (params.tableEntries - 1));
}

Prediction
BranchPredictor::predict(Addr pc, BranchKind kind)
{
    Prediction p;
    p.historySnapshot = globalHistory;
    p.rasSnapshot = ras.tos();

    switch (kind) {
      case BranchKind::Cond: {
        ++condLookups;
        std::uint8_t ctr = counters[tableIndex(pc)];
        p.taken = ctr >= 2;
        // Speculatively shift the prediction into the history.
        globalHistory = (globalHistory << 1) | (p.taken ? 1 : 0);
        if (p.taken) {
            p.target = btb.lookup(pc);
            p.btbHit = p.target != invalidAddr;
            if (!p.btbHit) {
                ++btbMisses;
                // Predicted taken but no target known: a real front end
                // would redirect once decode computes the target; we
                // treat it as a fall-through prediction, which the core
                // then resolves as a misprediction if taken.
                p.taken = false;
                p.target = invalidAddr;
            }
        }
        break;
      }
      case BranchKind::Uncond:
      case BranchKind::Call: {
        p.taken = true;
        p.target = btb.lookup(pc);
        p.btbHit = p.target != invalidAddr;
        if (!p.btbHit)
            ++btbMisses;
        if (kind == BranchKind::Call)
            ras.push(pc + isa::instBytes);
        break;
      }
      case BranchKind::Return: {
        p.taken = true;
        p.target = ras.pop();
        p.btbHit = true;
        ++rasPredictions;
        if (p.target == 0) {
            p.target = invalidAddr;
            p.btbHit = false;
        }
        break;
      }
      case BranchKind::Indirect: {
        p.taken = true;
        p.target = btb.lookup(pc);
        p.btbHit = p.target != invalidAddr;
        if (!p.btbHit)
            ++btbMisses;
        break;
      }
      case BranchKind::None:
        rrs_panic("predict() on a non-control instruction");
    }
    return p;
}

void
BranchPredictor::update(Addr pc, BranchKind kind, bool taken, Addr target,
                        std::uint64_t historyAtPredict)
{
    if (kind == BranchKind::Cond) {
        // Train the counter the prediction actually read: index with
        // the history as it was at prediction time.
        std::uint64_t saved = globalHistory;
        globalHistory = historyAtPredict;
        std::uint8_t &ctr = counters[tableIndex(pc)];
        globalHistory = saved;
        if (taken && ctr < 3)
            ++ctr;
        else if (!taken && ctr > 0)
            --ctr;
    }
    if (taken && kind != BranchKind::Return)
        btb.update(pc, target);
}

void
BranchPredictor::squash(const Prediction &snapshot)
{
    globalHistory = snapshot.historySnapshot;
    ras.restore(snapshot.rasSnapshot);
}

void
BranchPredictor::correctHistory(const Prediction &snapshot,
                                bool actualTaken)
{
    globalHistory = (snapshot.historySnapshot << 1) | (actualTaken ? 1 : 0);
    ras.restore(snapshot.rasSnapshot);
}

void
BranchPredictor::recordResolution(BranchKind kind, bool correct)
{
    if (kind == BranchKind::Cond && correct)
        ++condCorrect;
}

double
BranchPredictor::condAccuracy() const
{
    return condLookups.value() > 0
               ? condCorrect.value() / condLookups.value()
               : 0.0;
}

} // namespace rrs::bpred
