/**
 * @file
 * Branch prediction substrate: a gshare/bimodal direction predictor, a
 * set-associative branch target buffer, and a return address stack,
 * wrapped in a single BranchPredictor the fetch stage consults.
 *
 * Matches the paper's Table I front end: 2K-entry BTB and a 15-cycle
 * misprediction redirect penalty (the penalty itself is charged by the
 * core, not here).
 */

#ifndef RRS_BPRED_BPRED_HH
#define RRS_BPRED_BPRED_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"
#include "stats/stats.hh"

namespace rrs::bpred {

/** Direction predictor flavour. */
enum class DirPredictor : std::uint8_t {
    Bimodal,
    GShare,
};

/** Configuration of the whole branch prediction unit. */
struct BPredParams
{
    DirPredictor kind = DirPredictor::GShare;
    std::uint32_t tableEntries = 4096;   //!< 2-bit counters
    std::uint32_t historyBits = 12;      //!< gshare global history length
    std::uint32_t btbEntries = 2048;     //!< Table I: 2K BTB
    std::uint32_t btbAssoc = 4;
    std::uint32_t rasEntries = 16;
};

/**
 * What fetch gets back from a lookup.  The snapshot fields let the core
 * restore speculative predictor state when the branch squashes.
 */
struct Prediction
{
    bool taken = false;          //!< predicted direction
    Addr target = invalidAddr;   //!< predicted target (invalid: fall thru)
    bool btbHit = false;
    std::uint64_t historySnapshot = 0;  //!< global history before update
    std::uint32_t rasSnapshot = 0;      //!< RAS top-of-stack before update
};

/** Set-associative branch target buffer with LRU replacement. */
class BTB
{
  public:
    BTB(std::uint32_t entries, std::uint32_t assoc);

    /** Look up a fetch PC; returns invalidAddr on miss. */
    Addr lookup(Addr pc) const;

    /** Install / refresh a target. */
    void update(Addr pc, Addr target);

  private:
    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        Addr target = 0;
        std::uint64_t lru = 0;
    };

    std::uint32_t sets;
    std::uint32_t assoc;
    mutable std::uint64_t lruTick = 0;
    std::vector<Entry> entries;

    std::uint32_t setIndex(Addr pc) const;
};

/** Return address stack (circular, silently wraps like hardware). */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(std::uint32_t entries);

    void push(Addr returnPc);
    Addr pop();
    Addr top() const;

    /** Top-of-stack pointer, checkpointed at predictions. */
    std::uint32_t tos() const { return topPtr; }

    /** Restore the checkpointed top-of-stack pointer on a squash. */
    void restore(std::uint32_t tosSnapshot) { topPtr = tosSnapshot; }

  private:
    std::vector<Addr> stack;
    std::uint32_t topPtr = 0;
};

/**
 * The complete branch prediction unit.
 *
 * Speculative global history: predict() shifts the predicted direction
 * into the history immediately (so back-to-back predictions see it) and
 * the snapshot in the returned Prediction allows squash() to rewind.
 * Counter tables are updated non-speculatively via update().
 */
class BranchPredictor : public stats::Group
{
  public:
    explicit BranchPredictor(const BPredParams &params,
                             stats::Group *parent = nullptr);

    /** Predict a control instruction at fetch. */
    Prediction predict(Addr pc, isa::BranchKind kind);

    /**
     * Train with the resolved outcome (called at commit).
     * @param kind control kind; conditional branches train the
     *        direction tables, everything trains the BTB.
     * @param historyAtPredict the historySnapshot from the Prediction,
     *        so gshare trains the counter it actually read.
     */
    void update(Addr pc, isa::BranchKind kind, bool taken, Addr target,
                std::uint64_t historyAtPredict = 0);

    /** Rewind speculative state after a squash. */
    void squash(const Prediction &snapshot);

    /**
     * Rewind to the snapshot and then shift in the *actual* direction:
     * used when a conditional branch itself mispredicted, so younger
     * (squashed) speculative history disappears but the resolved branch
     * stays in the history.
     */
    void correctHistory(const Prediction &snapshot, bool actualTaken);

    /** Fraction of conditional predictions that were correct so far. */
    double condAccuracy() const;

    /** Record whether a prediction turned out correct (stats only). */
    void recordResolution(isa::BranchKind kind, bool correct);

  private:
    std::uint32_t tableIndex(Addr pc) const;

    BPredParams params;
    std::vector<std::uint8_t> counters;  //!< 2-bit saturating
    std::uint64_t globalHistory = 0;
    BTB btb;
    ReturnAddressStack ras;

    stats::Scalar condLookups;
    stats::Scalar condCorrect;
    stats::Scalar btbMisses;
    stats::Scalar rasPredictions;
};

} // namespace rrs::bpred

#endif // RRS_BPRED_BPRED_HH
