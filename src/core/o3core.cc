#include "o3core.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/flightrec.hh"
#include "obs/pipetrace.hh"
#include "rename/audit.hh"
#include "trace/packed.hh"

namespace rrs::core {

using isa::BranchKind;
using isa::InstClass;

O3Core::O3Core(const CoreParams &params, rename::Renamer &renamer,
               mem::MemSystem &mem, bpred::BranchPredictor &bp,
               trace::InstStream &stream, stats::Group *parent)
    : stats::Group("core", parent), params(params), renamer(renamer),
      memSys(mem), bpred(bp), stream(stream),
      wrongPath(params.seed ^ 0xabcdef, 256), rng(params.seed),
      indexer(renamer.tagIndexer()),
      regReadyAt(indexer.size(), 0),
      fuIntAlu(params.fu.intAlu, 0), fuIntMulDiv(params.fu.intMulDiv, 0),
      fuFpAlu(params.fu.fpAlu, 0), fuFpMulDiv(params.fu.fpMulDiv, 0),
      fuMem(params.fu.memPorts, 0),
      cycles(this, "cycles", "total simulated cycles"),
      committed(this, "committed", "committed instructions"),
      committedWrongPathNever(this, "wrongPathCommitted",
                              "wrong-path commits (must stay zero)"),
      renameStallNoReg(this, "renameStallNoReg",
                       "rename stalls: no free physical register"),
      renameStallRob(this, "renameStallRob", "rename stalls: ROB full"),
      renameStallIq(this, "renameStallIq", "rename stalls: IQ full"),
      renameStallLsq(this, "renameStallLsq", "rename stalls: LSQ full"),
      fetchStallCycles(this, "fetchStallCycles",
                       "cycles with fetch blocked"),
      branchMispredicts(this, "branchMispredicts",
                        "resolved mispredicted control instructions"),
      squashedInsts(this, "squashedInsts", "instructions squashed"),
      recoveryCycles(this, "recoveryCycles",
                     "extra cycles for shadow-cell recover commands"),
      exceptionsTaken(this, "exceptions", "page-fault exceptions taken"),
      interruptsTaken(this, "interrupts", "timer interrupts taken"),
      wrongPathFetched(this, "wrongPathFetched",
                       "synthetic wrong-path instructions fetched"),
      robOccupancy(this, "robOccupancy", "ROB occupancy per cycle"),
      iqOccupancy(this, "iqOccupancy", "IQ occupancy per cycle"),
      cycleCauses(this)
{
    if (params.interruptInterval > 0)
        nextInterrupt = params.interruptInterval;
    // Streams with a packed backing hand out pre-decoded per-record
    // metadata; everything else re-derives the identical values from
    // the classifier at fetch, so timing does not depend on the
    // stream's kind.
    packedSrc = stream.packedView();
}

std::uint32_t
O3Core::tagIndex(const rename::PhysRegTag &tag) const
{
    return indexer(tag);
}

bool
O3Core::tagReady(const rename::PhysRegTag &tag) const
{
    return regReadyAt[tagIndex(tag)] <= now;
}

void
O3Core::setTagReady(const rename::PhysRegTag &tag, Tick when)
{
    regReadyAt[tagIndex(tag)] = when;
}

void
O3Core::setTagPending(const rename::PhysRegTag &tag)
{
    regReadyAt[tagIndex(tag)] = ~Tick{0};
}

O3Core::InFlight *
O3Core::findBySeq(std::uint64_t fetchSeq)
{
    auto it = std::lower_bound(
        rob.begin(), rob.end(), fetchSeq,
        [](const InFlight &a, std::uint64_t s) { return a.fetchSeq < s; });
    if (it == rob.end() || it->fetchSeq != fetchSeq)
        return nullptr;
    return &*it;
}

bool
O3Core::srcsReady(const InFlight &inst) const
{
    for (int s = 0; s < inst.rr.numSrcTags; ++s) {
        const rename::PhysRegTag &tag =
            inst.rr.srcTags[static_cast<std::size_t>(s)];
        if (tag.valid() && !tagReady(tag))
            return false;
    }
    return true;
}

bool
O3Core::loadMayIssue(const InFlight &inst, Tick *forwardReady) const
{
    *forwardReady = 0;
    // Scan older stores: unknown addresses block; overlapping known
    // addresses forward.
    const Addr lo = inst.di.effAddr;
    const Addr hi = lo + inst.meta.memBytes;
    bool forward = false;
    for (const InFlight &other : rob) {
        if (other.fetchSeq >= inst.fetchSeq)
            break;
        if (!other.meta.isStore())
            continue;
        if (!other.storeExecuted)
            return false;   // conservative: address unknown
        if (other.wrongPath)
            continue;       // synthetic store, no real data
        Addr olo = other.di.effAddr;
        Addr ohi = olo + other.meta.memBytes;
        if (lo < ohi && olo < hi) {
            forward = true;
            *forwardReady = std::max(*forwardReady, other.readyAt);
        }
    }
    if (forward && *forwardReady == 0)
        *forwardReady = now;
    if (!forward)
        *forwardReady = 0;
    return true;
}

void
O3Core::scheduleCompletion(InFlight &inst)
{
    const FuParams &fu = params.fu;
    auto grab = [&](std::vector<Tick> &pool, Cycles occupy,
                    Cycles latency) -> bool {
        for (auto &busy : pool) {
            if (busy <= now) {
                busy = now + occupy;
                inst.readyAt = now + latency;
                return true;
            }
        }
        return false;
    };

    bool ok = false;
    switch (inst.meta.cls) {
      case InstClass::IntAlu:
      case InstClass::Branch:
        ok = grab(fuIntAlu, 1, fu.intAluLat);
        break;
      case InstClass::IntMult:
        ok = grab(fuIntMulDiv, 1, fu.intMultLat);
        break;
      case InstClass::IntDiv:
        ok = grab(fuIntMulDiv, fu.intDivLat, fu.intDivLat);
        break;
      case InstClass::FpAlu:
        ok = grab(fuFpAlu, 1, fu.fpAluLat);
        break;
      case InstClass::FpMult:
        ok = grab(fuFpMulDiv, 1, fu.fpMultLat);
        break;
      case InstClass::FpDiv:
        ok = grab(fuFpMulDiv, fu.fpDivLat, fu.fpDivLat);
        break;
      case InstClass::Load: {
        if (inst.wrongPath) {
            ok = grab(fuMem, 1, fu.wrongPathLoadLat);
            break;
        }
        Tick fwd = 0;
        if (!loadMayIssue(inst, &fwd)) {
            ok = false;
            break;
        }
        for (auto &busy : fuMem) {
            if (busy <= now) {
                busy = now + 1;
                if (fwd) {
                    inst.readyAt = std::max(now, fwd) + fu.forwardLat;
                } else {
                    inst.readyAt = memSys.dataAccess(
                        inst.di.pc, inst.di.effAddr, false, now);
                }
                ok = true;
                break;
            }
        }
        break;
      }
      case InstClass::Store:
        ok = grab(fuMem, 1, fu.storeLat);
        break;
      case InstClass::Nop:
        inst.readyAt = now;
        ok = true;
        break;
    }
    inst.issued = ok;
}

void
O3Core::recordFlight(obs::FlightEventKind kind, std::uint64_t seq,
                     const rename::PhysRegTag *tag)
{
    obs::FlightEvent e;
    e.cycle = now;
    e.seq = seq;
    e.kind = kind;
    if (tag && tag->valid()) {
        e.cls = tag->cls == RegClass::Float ? 1 : 0;
        e.reg = static_cast<std::uint16_t>(tag->reg);
        e.version = tag->version;
    }
    e.freeInt =
        static_cast<std::int32_t>(renamer.freeRegs(RegClass::Int));
    e.freeFp =
        static_cast<std::int32_t>(renamer.freeRegs(RegClass::Float));
    flightRec->record(e);
}

void
O3Core::squashAfter(std::uint64_t fetchSeq, rename::HistoryToken token,
                    std::uint32_t *recoveries)
{
    // Discard un-renamed younger instructions; replay correct-path ones
    // is unnecessary for mispredicts (all younger are wrong-path) and
    // handled by the caller for flushes.
    while (!rob.empty() && rob.back().fetchSeq > fetchSeq) {
        const InFlight &victim = rob.back();
        if (victim.meta.isLoad())
            --loadsInFlight;
        if (victim.meta.isStore())
            --storesInFlight;
        ++squashedInsts;
        if (tracer)
            tracer->squash(victim.fetchSeq);
        rob.pop_back();
    }
    // Remove squashed entries from the IQ.
    iq.erase(std::remove_if(iq.begin(), iq.end(),
                            [&](std::uint64_t s) { return s > fetchSeq; }),
             iq.end());

    auto produced = [&](const rename::PhysRegTag &tag) {
        return regReadyAt[tagIndex(tag)] <= now;
    };
    std::uint32_t rec = renamer.squashTo(token, produced);
    if (recoveries)
        *recoveries = rec;
    if (flightRec)
        recordFlight(obs::FlightEventKind::Squash, fetchSeq, nullptr);
    if (auditor)
        auditor->check(renamer, "post-squash");

    if (tracer) {
        for (const InFlight &i : fetchQueue)
            tracer->squash(i.fetchSeq);
    }
    fetchQueue.clear();
    lastFetchLine = invalidAddr;
}

void
O3Core::resolveBranch(InFlight &inst)
{
    const BranchKind kind = inst.meta.branch;
    bpred.recordResolution(kind, !inst.mispredicted);
    if (!inst.mispredicted)
        return;

    ++branchMispredicts;
    std::uint32_t rec = 0;
    squashAfter(inst.fetchSeq, inst.rr.endToken, &rec);

    // Repair the speculative predictor state.
    if (kind == BranchKind::Cond) {
        bpred.correctHistory(inst.pred, inst.di.taken);
    } else {
        bpred.squash(inst.pred);
        // Redo the RAS effect of the resolved instruction itself.
        auto redo = bpred.predict(inst.di.pc, kind);
        (void)redo;
    }

    onWrongPath = false;
    Cycles rec_cycles = rec * params.recoverCmdCycles;
    recoveryCycles += static_cast<double>(rec_cycles);
    // Redirect: any previous fetch block (icache miss on the wrong
    // path, or the no-wrong-path stall sentinel) is void.
    fetchBlockedUntil = now + params.mispredictPenalty + rec_cycles;
}

void
O3Core::flushAll(Cycles extraPenalty)
{
    if (rob.empty() && fetchQueue.empty())
        return;

    // Rewind the branch predictor to the oldest squashed prediction.
    const InFlight *oldest_pred = nullptr;
    for (const InFlight &i : rob) {
        if (i.hasPred) {
            oldest_pred = &i;
            break;
        }
    }
    if (!oldest_pred) {
        for (const InFlight &i : fetchQueue) {
            if (i.hasPred) {
                oldest_pred = &i;
                break;
            }
        }
    }
    if (oldest_pred)
        bpred.squash(oldest_pred->pred);

    // Correct-path instructions must be refetched after the flush.
    std::vector<trace::DynInst> replayed;
    for (const InFlight &i : rob) {
        if (!i.wrongPath)
            replayed.push_back(i.di);
    }
    for (const InFlight &i : fetchQueue) {
        if (!i.wrongPath)
            replayed.push_back(i.di);
    }

    std::uint32_t rec = 0;
    if (!rob.empty()) {
        rename::HistoryToken token = rob.front().rr.token;
        std::uint64_t seq = rob.front().fetchSeq;
        // Squash everything including the head.
        squashAfter(seq == 0 ? 0 : seq - 1, token, &rec);
        if (!rob.empty()) {
            // Head had fetchSeq 0: squashAfter(0,...) keeps it; finish.
            ++squashedInsts;
            if (rob.front().meta.isLoad())
                --loadsInFlight;
            if (rob.front().meta.isStore())
                --storesInFlight;
            if (tracer)
                tracer->squash(rob.front().fetchSeq);
            rob.clear();
            iq.clear();
            renamer.squashTo(token, [&](const rename::PhysRegTag &tag) {
                return regReadyAt[tagIndex(tag)] <= now;
            });
        }
    } else {
        if (tracer) {
            for (const InFlight &i : fetchQueue)
                tracer->squash(i.fetchSeq);
        }
        fetchQueue.clear();
    }

    if (flightRec)
        recordFlight(obs::FlightEventKind::Flush, 0, nullptr);
    if (auditor)
        auditor->check(renamer, "post-flush");

    // Recover committed values that live in shadow cells.
    std::uint32_t committed_rec = renamer.committedShadowValues();
    Cycles rec_cycles =
        (rec + committed_rec) * params.recoverCmdCycles + extraPenalty;
    recoveryCycles +=
        static_cast<double>((rec + committed_rec) *
                            params.recoverCmdCycles);
    // Assignment, not max: the flush redirects fetch, voiding any
    // earlier block (including the no-wrong-path stall sentinel of a
    // mispredicted branch this flush just squashed).
    fetchBlockedUntil = now + rec_cycles;

    onWrongPath = false;
    lastFetchLine = invalidAddr;

    // Queue the replayed instructions ahead of the stream.
    for (auto it = replayed.rbegin(); it != replayed.rend(); ++it)
        replayBuffer.push_front(*it);
}

void
O3Core::commitStage()
{
    committedThisCycle = 0;
    if (params.interruptInterval > 0 && now >= nextInterrupt) {
        nextInterrupt += params.interruptInterval;
        if (!rob.empty() || !fetchQueue.empty()) {
            ++interruptsTaken;
            flushAll(params.exceptionPenalty +
                     params.interruptServiceCycles);
            return;
        }
    }

    std::uint32_t n = 0;
    while (n < params.commitWidth && !rob.empty()) {
        InFlight &head = rob.front();
        if (!head.completed)
            break;
        rrs_assert(!head.wrongPath,
                   "wrong-path instruction reached commit");

        bool faulted = head.faulting;
        if (faulted) {
            ++exceptionsTaken;
            head.faulting = false;
        }

        renamer.commit(head.rr);
        if (flightRec) {
            recordFlight(obs::FlightEventKind::Commit, head.fetchSeq,
                         head.rr.hasDest ? &head.rr.destTag : nullptr);
        }
        if (auditor && auditEveryCommit)
            auditor->check(renamer, "post-commit");
        if (head.meta.isStore())
            memSys.dataAccess(head.di.pc, head.di.effAddr, true, now);
        if (head.meta.isControl()) {
            Addr target = head.di.taken ? head.di.nextPc : invalidAddr;
            bpred.update(head.di.pc, head.meta.branch,
                         head.di.taken, target,
                         head.pred.historySnapshot);
        }
        if (head.meta.isLoad())
            --loadsInFlight;
        if (head.meta.isStore())
            --storesInFlight;

        ++committed;
        ++committedThisCycle;
        simResult.committedInsts += 1;
        simResult.committedOps += 1 + head.rr.repairUops;
        lastCommitTick = now;
        ++n;
        if (tracer)
            tracer->retire(head.fetchSeq, now);
        rob.pop_front();

        if (faulted) {
            // Precise exception: everything younger is flushed and the
            // committed register state (possibly in shadow cells) is
            // recovered before the handler runs.
            flushAll(params.exceptionPenalty);
            break;
        }
        if (params.maxInsts > 0 &&
            simResult.committedInsts >= params.maxInsts) {
            finished = true;
            break;
        }
    }
}

void
O3Core::writebackStage()
{
    std::uint32_t n = 0;
    for (std::size_t i = 0; i < rob.size() && n < params.wbWidth; ++i) {
        InFlight &inst = rob[i];
        if (!inst.issued || inst.completed || inst.readyAt > now)
            continue;
        inst.completed = true;
        ++n;
        if (tracer)
            tracer->complete(inst.fetchSeq, now);
        if (inst.meta.isStore())
            inst.storeExecuted = true;
        if (inst.rr.hasDest)
            setTagReady(inst.rr.destTag, now);
        if (inst.meta.isControl()) {
            bool was_mispredicted = inst.mispredicted;
            resolveBranch(inst);
            if (was_mispredicted)
                break;   // squash invalidated the iteration
        }
    }
}

void
O3Core::issueStage()
{
    std::uint32_t budget = params.issueWidth;
    std::vector<std::uint64_t> remaining;
    remaining.reserve(iq.size());
    for (std::uint64_t seq : iq) {
        if (budget == 0) {
            remaining.push_back(seq);
            continue;
        }
        InFlight *inst = findBySeq(seq);
        rrs_assert(inst != nullptr, "IQ entry without ROB entry");
        if (!srcsReady(*inst)) {
            remaining.push_back(seq);
            continue;
        }
        scheduleCompletion(*inst);
        if (inst->issued) {
            inst->inIq = false;
            --budget;
            if (tracer)
                tracer->issue(seq, now);
        } else {
            remaining.push_back(seq);
        }
    }
    iq.swap(remaining);
}

void
O3Core::renameStage()
{
    renameBlock = RenameBlock::None;
    std::uint32_t width = params.renameWidth;
    while (width > 0 && !fetchQueue.empty()) {
        InFlight &cand = fetchQueue.front();
        if (rob.size() >= params.robEntries) {
            ++renameStallRob;
            renameBlock = RenameBlock::Rob;
            break;
        }
        bool needs_iq = cand.meta.cls != InstClass::Nop;
        if (needs_iq && iq.size() >= params.iqEntries) {
            ++renameStallIq;
            renameBlock = RenameBlock::Iq;
            break;
        }
        if (cand.meta.isLoad() &&
            loadsInFlight >= params.loadQueueEntries) {
            ++renameStallLsq;
            renameBlock = RenameBlock::Lsq;
            break;
        }
        if (cand.meta.isStore() &&
            storesInFlight >= params.storeQueueEntries) {
            ++renameStallLsq;
            renameBlock = RenameBlock::Lsq;
            break;
        }

        auto producer_executed = [&](const rename::PhysRegTag &tag) {
            return regReadyAt[tagIndex(tag)] <= now;
        };
        rename::RenameResult rr =
            renamer.rename(cand.di, producer_executed);
        if (!rr.success) {
            ++renameStallNoReg;
            renameBlock = RenameBlock::NoReg;
            break;
        }
        if (flightRec) {
            recordFlight(obs::FlightEventKind::Alloc, cand.fetchSeq,
                         rr.hasDest ? &rr.destTag : nullptr);
        }

        // Repair micro-ops consume rename bandwidth and produce their
        // destination a few cycles after the stale value is available.
        for (int r = 0; r < rr.numRepairs; ++r) {
            const auto &rep = rr.repairList[static_cast<std::size_t>(r)];
            Tick src_ready = regReadyAt[tagIndex(rep.fromTag)];
            if (src_ready == ~Tick{0})
                src_ready = now;   // producer squashed: value archival
            setTagReady(rep.toTag, std::max(now, src_ready) + rep.uops);
        }
        if (rr.repairUops >= width)
            width = 1;   // at least finish this instruction
        else
            width -= rr.repairUops;

        InFlight inst = cand;
        fetchQueue.pop_front();
        inst.rr = rr;
        if (rr.hasDest)
            setTagPending(rr.destTag);

        if (inst.meta.isLoad())
            ++loadsInFlight;
        if (inst.meta.isStore())
            ++storesInFlight;

        if (tracer) {
            tracer->rename(inst.fetchSeq, now);
            tracer->dispatch(inst.fetchSeq, now);
        }
        if (needs_iq) {
            inst.inIq = true;
            iq.push_back(inst.fetchSeq);
        } else {
            inst.issued = true;
            inst.completed = true;
            inst.readyAt = now;
            if (tracer) {
                tracer->issue(inst.fetchSeq, now);
                tracer->complete(inst.fetchSeq, now);
            }
        }
        rob.push_back(std::move(inst));
        --width;
    }
}

void
O3Core::fetchStage()
{
    if (now < fetchBlockedUntil) {
        ++fetchStallCycles;
        return;
    }

    std::uint32_t fetched = 0;
    while (fetched < params.fetchWidth &&
           fetchQueue.size() < params.fetchQueueEntries) {
        // Pick the next instruction: wrong path, replay, or stream.
        // Stream instructions take their pre-decoded metadata from the
        // packed columns when available; the rare paths (synthetic
        // wrong path, post-flush replay, unpacked streams) re-derive
        // the identical values from the one-time classifier.
        trace::DynInst di;
        isa::PackedMeta meta;
        bool from_stream = false;
        if (onWrongPath) {
            di = wrongPath.generate(wrongPathPc, nextFetchSeq);
            meta = isa::packedMeta(di.si.op);
            wrongPathPc = di.nextPc;
            ++wrongPathFetched;
        } else if (!replayBuffer.empty()) {
            di = replayBuffer.front();
            meta = isa::packedMeta(di.si.op);
        } else {
            if (!pendingInst && !streamDone) {
                const std::size_t idx = stream.cursor();
                pendingInst = stream.next();
                if (!pendingInst) {
                    streamDone = true;
                } else {
                    pendingMeta = packedSrc
                                      ? packedSrc->meta(idx)
                                      : isa::packedMeta(pendingInst->si.op);
                }
            }
            if (!pendingInst)
                break;
            di = *pendingInst;
            meta = pendingMeta;
            from_stream = true;
        }

        // Instruction cache: one access per new line.
        Addr line = di.pc / 64;
        if (line != lastFetchLine) {
            Tick done = memSys.fetchAccess(di.pc, now);
            lastFetchLine = line;
            if (done > now + 1) {
                fetchBlockedUntil = done;
                break;   // line arrives later; retry then
            }
        }

        // Accept the instruction.
        if (from_stream)
            pendingInst.reset();
        else if (!onWrongPath)
            replayBuffer.pop_front();

        InFlight inst;
        inst.di = di;
        inst.meta = meta;
        inst.fetchSeq = nextFetchSeq++;
        inst.wrongPath = onWrongPath;
        inst.di.seq = inst.fetchSeq;

        bool group_ends = false;
        if (meta.isControl()) {
            bpred::Prediction p = bpred.predict(di.pc, meta.branch);
            inst.pred = p;
            inst.hasPred = true;
            if (!inst.wrongPath) {
                Addr pred_next =
                    p.taken && p.target != invalidAddr
                        ? p.target
                        : di.pc + isa::instBytes;
                // Direct unconditional branches and calls resolve their
                // target at decode; a BTB miss there is not a
                // misprediction.
                const BranchKind kind = meta.branch;
                if ((kind == BranchKind::Uncond ||
                     kind == BranchKind::Call) && !p.btbHit) {
                    pred_next = di.nextPc;
                }
                if (pred_next != di.nextPc) {
                    inst.mispredicted = true;
                    if (params.modelWrongPath) {
                        onWrongPath = true;
                        wrongPathPc = pred_next;
                    } else {
                        // No wrong-path modelling: stall fetch until
                        // resolution (handled via the redirect penalty).
                        fetchBlockedUntil = ~Tick{0} - (1u << 20);
                    }
                    group_ends = true;
                } else if (di.taken) {
                    group_ends = true;   // taken branches end the group
                }
            } else if (p.taken && p.target != invalidAddr) {
                wrongPathPc = p.target;
            }
        }

        // Page-fault injection on correct-path loads.
        if (!inst.wrongPath && meta.isLoad() &&
            params.loadFaultProbability > 0 &&
            rng.chance(params.loadFaultProbability)) {
            inst.faulting = true;
        }

        if (!inst.wrongPath)
            wrongPath.observe(di);

        if (tracer)
            tracer->fetch(inst.fetchSeq, di, now);
        fetchQueue.push_back(std::move(inst));
        ++fetched;
        if (group_ends)
            break;
    }
}

void
O3Core::accountCycle()
{
    using obs::CycleCause;
    CycleCause cause;
    if (committedThisCycle > 0) {
        cause = CycleCause::Commit;
    } else if (streamDone && !pendingInst && replayBuffer.empty() &&
               !onWrongPath && fetchQueue.empty()) {
        // Nothing left to fetch, ever: the backend is draining the
        // tail of the run.
        cause = CycleCause::Drain;
    } else if (renameBlock == RenameBlock::NoReg) {
        cause = CycleCause::RenameNoReg;
    } else if (renameBlock == RenameBlock::Rob) {
        cause = CycleCause::RenameRob;
    } else if (renameBlock == RenameBlock::Iq) {
        cause = CycleCause::RenameIq;
    } else if (renameBlock == RenameBlock::Lsq) {
        cause = CycleCause::RenameLsq;
    } else if (rob.empty()) {
        cause = CycleCause::Frontend;
    } else {
        cause = CycleCause::BackendExec;
    }
    cycleCauses.attribute(cause);
}

SimResult
O3Core::run()
{
    simResult = SimResult{};
    finished = false;
    // From `now`, not 0: windowed mode re-enters run() with the clock
    // already advanced, and an absolute-zero watermark would trip the
    // deadlock panic spuriously.  First call: now == 0, identical.
    lastCommitTick = now;

    while (!finished) {
        commitStage();
        if (finished)
            break;
        writebackStage();
        issueStage();
        renameStage();
        fetchStage();

        robOccupancy.sample(static_cast<double>(rob.size()));
        iqOccupancy.sample(static_cast<double>(iq.size()));
        if (sampler && samplerInterval > 0 &&
            now % samplerInterval == 0) {
            sampler(now);
        }
        accountCycle();
        if (auditor && auditInterval > 0 && now % auditInterval == 0)
            auditor->check(renamer, "periodic");

        ++now;
        ++cycles;
        simResult.cycles = now;

        if (streamDone && rob.empty() && fetchQueue.empty() &&
            replayBuffer.empty() && !pendingInst) {
            finished = true;
        }
        if (!rob.empty() &&
            now - lastCommitTick > params.deadlockThreshold) {
            rrs_panic("core deadlock: no commit for %llu cycles; head %s",
                      static_cast<unsigned long long>(
                          now - lastCommitTick),
                      rob.front().di.si.toString().c_str());
        }
    }
    // Every simulated cycle must have been attributed to exactly one
    // cause; a leak here means a new stall path bypassed accounting.
    cycleCauses.verify(static_cast<std::uint64_t>(cycles.value()));
    if (tracer)
        tracer->finishRun();
    return simResult;
}

SimResult
O3Core::runWindow(std::uint64_t insts)
{
    const std::uint64_t savedMax = params.maxInsts;
    params.maxInsts = insts;
    const Tick start = now;
    SimResult r = run();   // commit counts are per-run() already
    params.maxInsts = savedMax;
    r.cycles = now - start;
    return r;
}

void
O3Core::discardInFlight()
{
    // flushAll squashes wrong-path work, rolls the renamer back
    // through its history and recovers shadow cells — exactly the
    // abandon-the-window semantics needed — but it also queues the
    // correct-path instructions for refetch; windowed mode re-seeks
    // the stream to the commit point instead, so drop them.
    flushAll(0);
    replayBuffer.clear();
    pendingInst.reset();
    onWrongPath = false;
    streamDone = false;
    finished = false;
    lastFetchLine = invalidAddr;
    fetchBlockedUntil = now;
}

void
O3Core::advanceClock(Tick to)
{
    if (to <= now)
        return;
    now = to;
    // Resync the timer-interrupt schedule: without this a long warm
    // jump would deliver one pending interrupt per window cycle until
    // the schedule caught up.
    if (params.interruptInterval > 0) {
        while (nextInterrupt <= now)
            nextInterrupt += params.interruptInterval;
    }
    lastCommitTick = now;
}

} // namespace rrs::core
