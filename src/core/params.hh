/**
 * @file
 * Core (pipeline) configuration, defaulting to the paper's Table I:
 * 2.0 GHz ARMv8-like core, 128-entry ROB, 40-entry issue queue,
 * 3-wide decode/dispatch, 32-instruction fetch queue, 15-cycle
 * misprediction penalty.
 */

#ifndef RRS_CORE_PARAMS_HH
#define RRS_CORE_PARAMS_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/isa.hh"

namespace rrs::core {

/** Functional-unit pool sizes and operation latencies. */
struct FuParams
{
    std::uint32_t intAlu = 3;
    std::uint32_t intMulDiv = 1;
    std::uint32_t fpAlu = 2;
    std::uint32_t fpMulDiv = 1;
    std::uint32_t memPorts = 2;

    Cycles intAluLat = 1;
    Cycles intMultLat = 4;
    Cycles intDivLat = 12;       //!< unpipelined
    Cycles fpAluLat = 4;         //!< ARM-class FP add/sub latency
    Cycles fpMultLat = 5;
    Cycles fpDivLat = 18;        //!< unpipelined
    Cycles storeLat = 1;         //!< address generation
    Cycles forwardLat = 1;       //!< store-to-load forwarding
    Cycles wrongPathLoadLat = 2; //!< wrong-path loads skip the caches
};

/** Pipeline geometry and penalties (Table I defaults). */
struct CoreParams
{
    std::uint32_t fetchWidth = 3;
    std::uint32_t decodeWidth = 3;
    std::uint32_t renameWidth = 3;
    std::uint32_t issueWidth = 6;
    std::uint32_t wbWidth = 6;
    std::uint32_t commitWidth = 3;

    std::uint32_t robEntries = 128;
    std::uint32_t iqEntries = 40;
    std::uint32_t fetchQueueEntries = 32;
    std::uint32_t loadQueueEntries = 32;
    std::uint32_t storeQueueEntries = 24;

    Cycles frontEndDepth = 4;        //!< fetch-to-rename pipe stages
    Cycles mispredictPenalty = 15;   //!< redirect penalty (Table I)
    Cycles exceptionPenalty = 30;    //!< flush + handler entry overhead
    Cycles recoverCmdCycles = 1;     //!< per shadow-cell recover command

    FuParams fu;

    /** Wrong-path synthesis on mispredicted branches. */
    bool modelWrongPath = true;

    /**
     * Fault injection: probability that a correct-path load raises a
     * page-fault-style exception at commit (exercises the
     * precise-exception recovery path).  0 disables.
     */
    double loadFaultProbability = 0.0;

    /** Timer-interrupt interval in cycles (0 disables). */
    Cycles interruptInterval = 0;
    Cycles interruptServiceCycles = 50;

    std::uint64_t seed = 12345;      //!< fault/wrong-path RNG seed

    /** Stop after this many committed instructions (0: run stream). */
    std::uint64_t maxInsts = 0;

    /** Deadlock detector: panic after this many commit-less cycles. */
    Cycles deadlockThreshold = 200000;
};

/** Per-run timing results. */
struct SimResult
{
    std::uint64_t cycles = 0;
    std::uint64_t committedInsts = 0;
    std::uint64_t committedOps = 0;    //!< includes repair micro-ops

    double
    ipc() const
    {
        return cycles ? static_cast<double>(committedInsts) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

} // namespace rrs::core

#endif // RRS_CORE_PARAMS_HH
