/**
 * @file
 * The out-of-order core timing model.
 *
 * A trace-driven (execute-at-fetch) O3 model in the style the paper's
 * gem5 setup provides: 3-wide front end feeding a rename stage
 * (pluggable: baseline or physical-register-sharing), a unified issue
 * queue with versioned-tag wakeup, a ROB, split load/store queues with
 * store-to-load forwarding, a functional-unit pool, and in-order
 * commit.
 *
 * Speculation: branches are predicted at fetch; a mispredicted branch
 * switches fetch to a *synthetic wrong path* (statistically matched to
 * recent code) whose instructions allocate registers, occupy queue
 * entries and execute, and are squashed when the branch resolves —
 * preserving the wrong-path register pressure the paper's mechanism
 * interacts with.  Squashes roll the renamer back through its history
 * buffer; shadow-cell recover commands are charged as extra redirect
 * cycles.  Page-fault injection and timer interrupts exercise the
 * precise-exception recovery path (commit-time flush + shadow
 * recovery).
 */

#ifndef RRS_CORE_O3CORE_HH
#define RRS_CORE_O3CORE_HH

#include <deque>
#include <functional>
#include <vector>

#include "bpred/bpred.hh"
#include "common/random.hh"
#include "core/params.hh"
#include "mem/memsystem.hh"
#include "obs/stallcause.hh"
#include "rename/renamer.hh"
#include "stats/stats.hh"
#include "trace/dyninst.hh"
#include "trace/wrongpath.hh"

namespace rrs::obs {
class PipeTracer;
class FlightRecorder;
enum class FlightEventKind : std::uint8_t;
}

namespace rrs::rename {
class RenameAuditor;
}

namespace rrs::core {

/** The core. */
class O3Core : public stats::Group
{
  public:
    /**
     * @param params   pipeline configuration
     * @param renamer  baseline or reuse renamer (owned by the caller)
     * @param mem      memory hierarchy (owned by the caller)
     * @param bp       branch predictor (owned by the caller)
     * @param stream   correct-path dynamic instruction source
     */
    O3Core(const CoreParams &params, rename::Renamer &renamer,
           mem::MemSystem &mem, bpred::BranchPredictor &bp,
           trace::InstStream &stream, stats::Group *parent = nullptr);

    /** Run the stream to completion; returns timing results. */
    SimResult run();

    // --- windowed-mode hooks (harness/sampling.hh) ------------------
    //
    // A SamplingController alternates functional-warm spans with
    // detailed windows on one long-lived core, so predictor and cache
    // state carry across windows.  Exact mode never calls any of
    // these; run() alone is bit-identical to the pre-sampling core.

    /** The current cycle (absolute across windowed runs). */
    Tick nowTick() const { return now; }

    /**
     * Run until `insts` more instructions commit (or the stream
     * drains).  Unlike run(), the returned cycles field is the
     * *delta* spent in this window, not the absolute clock.
     */
    SimResult runWindow(std::uint64_t insts);

    /**
     * Throw away everything in flight (ROB, IQ, fetch queue, stream
     * lookahead) without refetching it, leaving the renamer rolled
     * back and the core ready to fetch from wherever the stream cursor
     * is moved next.  The caller must re-seek the stream to the commit
     * point: in-flight instructions were consumed but never committed.
     */
    void discardInFlight();

    /**
     * Jump the clock forward to `to` (a functional-warm span elapsed).
     * Keeps the interrupt schedule and deadlock watchdog in sync so a
     * jump is never mistaken for a stall.
     */
    void advanceClock(Tick to);

    /**
     * Install a periodic sampler (e.g. register bank occupancy for
     * Fig. 9); called every `interval` cycles with the current tick.
     */
    void
    setSampler(std::function<void(Tick)> fn, Cycles interval)
    {
        sampler = std::move(fn);
        samplerInterval = interval;
    }

    /**
     * Attach a pipeline event tracer (obs/pipetrace.hh).  The core
     * keeps only this cached pointer; with no tracer attached every
     * hook site is a single never-taken branch, so the disabled path
     * stays off the profile.  Call before run().
     */
    void setTracer(obs::PipeTracer *t) { tracer = t; }

    /**
     * Attach a rename invariant auditor (rename/audit.hh).  Like the
     * tracer, the core keeps one cached pointer and every hook site is
     * a single never-taken branch when no auditor is attached.
     *
     * Trigger points: after every squash and after every exception /
     * interrupt flush (always, whenever an auditor is attached), after
     * each committed instruction when `everyCommit` is set, and every
     * `interval` cycles when interval > 0.  Call before run().
     */
    void
    setAuditor(rename::RenameAuditor *a, Cycles interval,
               bool everyCommit)
    {
        auditor = a;
        auditInterval = interval;
        auditEveryCommit = everyCommit;
    }

    /**
     * Attach a crash-time flight recorder (obs/flightrec.hh).  Same
     * cached-pointer pattern as the tracer and auditor: the core
     * records an event per rename allocation, commit, squash and
     * flush — cycle, destination tag and free-list depths — and pays
     * one never-taken branch per hook site when detached.  Call
     * before run().
     */
    void setFlightRecorder(obs::FlightRecorder *fr) { flightRec = fr; }

    /** Committed-IPC of the finished run. */
    const SimResult &result() const { return simResult; }

    /** Per-cause cycle accounting of the finished run (obs layer). */
    obs::StallBreakdown stallBreakdown() const
    {
        return cycleCauses.breakdown();
    }

    // --- structural occupancies, for the interval sampler hook ---
    std::uint32_t robSize() const
    {
        return static_cast<std::uint32_t>(rob.size());
    }
    std::uint32_t iqSize() const
    {
        return static_cast<std::uint32_t>(iq.size());
    }
    std::uint32_t lsqSize() const
    {
        return loadsInFlight + storesInFlight;
    }

    /** Aggregate counters for reports. */
    double mispredictCount() const { return branchMispredicts.value(); }
    double exceptionCount() const { return exceptionsTaken.value(); }
    double interruptCount() const { return interruptsTaken.value(); }
    double recoveryCycleCount() const { return recoveryCycles.value(); }
    double renameStallNoRegCount() const
    {
        return renameStallNoReg.value();
    }

  private:
    /** One in-flight instruction (ROB entry). */
    struct InFlight
    {
        trace::DynInst di;
        isa::PackedMeta meta;        //!< pre-decoded attribute bits
        rename::RenameResult rr;
        bpred::Prediction pred;
        bool hasPred = false;
        bool mispredicted = false;   //!< resolves with a redirect
        bool wrongPath = false;
        bool faulting = false;       //!< raises an exception at commit

        bool inIq = false;
        bool issued = false;
        bool completed = false;
        Tick readyAt = 0;            //!< completion (writeback) tick

        bool storeExecuted = false;  //!< address computed (stores)
        std::uint64_t fetchSeq = 0;  //!< dense core-local sequence
    };

    // --- pipeline stages, called once per cycle ---
    void commitStage();
    void writebackStage();
    void issueStage();
    void renameStage();
    void fetchStage();

    // --- helpers ---
    void accountCycle();
    bool srcsReady(const InFlight &inst) const;
    bool loadMayIssue(const InFlight &inst, Tick *forwardReady) const;
    void scheduleCompletion(InFlight &inst);
    void resolveBranch(InFlight &inst);
    void squashAfter(std::uint64_t fetchSeq, rename::HistoryToken token,
                     std::uint32_t *recoveries);
    void flushAll(Cycles extraPenalty);
    void recordFlight(obs::FlightEventKind kind, std::uint64_t seq,
                      const rename::PhysRegTag *tag);
    InFlight *findBySeq(std::uint64_t fetchSeq);

    std::uint32_t tagIndex(const rename::PhysRegTag &tag) const;
    bool tagReady(const rename::PhysRegTag &tag) const;
    void setTagReady(const rename::PhysRegTag &tag, Tick when);
    void setTagPending(const rename::PhysRegTag &tag);

    CoreParams params;
    rename::Renamer &renamer;
    mem::MemSystem &memSys;
    bpred::BranchPredictor &bpred;
    trace::InstStream &stream;
    trace::WrongPathGenerator wrongPath;
    Random rng;

    Tick now = 0;

    // Fetch state.
    std::deque<InFlight> fetchQueue;
    Tick fetchBlockedUntil = 0;
    bool onWrongPath = false;
    Addr wrongPathPc = 0;
    std::optional<trace::DynInst> pendingInst;  //!< stream lookahead
    isa::PackedMeta pendingMeta;                //!< meta of pendingInst
    std::deque<trace::DynInst> replayBuffer;    //!< refetch after flush

    // Pre-decoded column view of the stream (nullptr for live
    // emulator / synthetic streams, which fall back to the one-time
    // isa::packedMeta classifier — same values, identical timing).
    const trace::PackedTrace *packedSrc = nullptr;
    bool streamDone = false;
    bool finished = false;
    std::uint64_t nextFetchSeq = 0;
    Addr lastFetchLine = invalidAddr;

    // Backend state.
    std::deque<InFlight> rob;
    std::vector<std::uint64_t> iq;          //!< fetchSeqs waiting/ready
    std::uint32_t loadsInFlight = 0;
    std::uint32_t storesInFlight = 0;

    // Scoreboard: ready tick per versioned tag.
    rename::TagIndexer indexer;
    std::vector<Tick> regReadyAt;

    // Functional units: busy-until per pool.
    std::vector<Tick> fuIntAlu, fuIntMulDiv, fuFpAlu, fuFpMulDiv, fuMem;

    Tick nextInterrupt = 0;
    Tick lastCommitTick = 0;

    std::function<void(Tick)> sampler;
    Cycles samplerInterval = 0;

    // Observability: cached tracer pointer (null = tracing disabled)
    // and the per-cycle attribution state consumed by accountCycle().
    obs::PipeTracer *tracer = nullptr;
    obs::FlightRecorder *flightRec = nullptr;
    rename::RenameAuditor *auditor = nullptr;
    Cycles auditInterval = 0;
    bool auditEveryCommit = false;
    std::uint32_t committedThisCycle = 0;
    enum class RenameBlock : std::uint8_t { None, NoReg, Rob, Iq, Lsq };
    RenameBlock renameBlock = RenameBlock::None;

    SimResult simResult;

    // Statistics.
    stats::Scalar cycles;
    stats::Scalar committed;
    stats::Scalar committedWrongPathNever;
    stats::Scalar renameStallNoReg;
    stats::Scalar renameStallRob;
    stats::Scalar renameStallIq;
    stats::Scalar renameStallLsq;
    stats::Scalar fetchStallCycles;
    stats::Scalar branchMispredicts;
    stats::Scalar squashedInsts;
    stats::Scalar recoveryCycles;
    stats::Scalar exceptionsTaken;
    stats::Scalar interruptsTaken;
    stats::Scalar wrongPathFetched;
    stats::Average robOccupancy;
    stats::Average iqOccupancy;
    obs::CycleAccounting cycleCauses;
};

} // namespace rrs::core

#endif // RRS_CORE_O3CORE_HH
