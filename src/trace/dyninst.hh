/**
 * @file
 * DynInst: one dynamic instruction as seen by the timing model — the
 * static instruction plus its dynamic outcome (next PC, branch
 * direction, effective address).  Produced by the functional emulator
 * or by the synthetic trace generator, consumed by the O3 core and by
 * the trace-analysis passes.
 */

#ifndef RRS_TRACE_DYNINST_HH
#define RRS_TRACE_DYNINST_HH

#include <optional>

#include "isa/isa.hh"

namespace rrs::trace {

class PackedTrace;

/** A dynamic instruction record. */
struct DynInst
{
    InstSeqNum seq = 0;            //!< position in the dynamic stream
    Addr pc = 0;                   //!< fetch PC
    isa::StaticInst si;            //!< decoded static instruction
    Addr nextPc = 0;               //!< PC of the next dynamic instruction
    bool taken = false;            //!< branch outcome (control only)
    Addr effAddr = invalidAddr;    //!< effective address (memory only)

    bool isLoad() const { return si.load(); }
    bool isStore() const { return si.store(); }
    bool isControl() const { return si.control(); }
    bool hasDest() const { return si.hasDest(); }
};

/**
 * A source of dynamic instructions.  next() returns instructions in
 * program (commit) order; nullopt signals end of stream.  Streams must
 * be restartable via reset() so that sweeps can replay the same
 * workload under many configurations.
 */
class InstStream
{
  public:
    virtual ~InstStream() = default;

    /** Next correct-path instruction, or nullopt at end of stream. */
    virtual std::optional<DynInst> next() = 0;

    /** Rewind to the beginning of the stream. */
    virtual void reset() = 0;

    /** Short label for reports (workload name). */
    virtual const std::string &name() const = 0;

    /**
     * The pre-decoded structure-of-arrays view of this stream, or
     * nullptr when the stream has no packed backing (live emulator,
     * synthetic generator).  Consumers that get a view read attributes
     * straight from the columns; the nullptr fallback re-derives the
     * same values through isa::packedMeta(), so timing is identical
     * either way.
     */
    virtual const PackedTrace *packedView() const { return nullptr; }

    /**
     * Column index of the record the next call to next() will return.
     * Meaningful only when packedView() is non-null.
     */
    virtual std::size_t cursor() const { return 0; }
};

} // namespace rrs::trace

#endif // RRS_TRACE_DYNINST_HH
