/**
 * @file
 * Capture-once / replay-many instruction streams.
 *
 * A RecordedTrace is an immutable, shareable dynamic instruction
 * sequence: the exact DynInst records a live emulator stream would
 * produce for one (workload, cap) pair, plus the identity needed to
 * validate reuse (workload name, stream cap, a hash of the workload's
 * assembly source) and an FNV-1a content digest over every field of
 * every record.
 *
 * A ReplayStream is a cheap cursor over a shared RecordedTrace: many
 * sweep lanes replay the same read-only trace concurrently, each with
 * its own position, so an N-config sweep pays the functional-emulation
 * cost once instead of N times.  Replaying is bit-identical to pulling
 * the emulator live — the determinism contract of harness/sweep.hh
 * holds across cached-vs-fresh streams as well as across thread
 * counts.
 */

#ifndef RRS_TRACE_RECORDED_HH
#define RRS_TRACE_RECORDED_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "trace/dyninst.hh"
#include "trace/packed.hh"

namespace rrs::trace {

/** An immutable captured dynamic instruction sequence. */
class RecordedTrace
{
  public:
    /**
     * @param workload workload name the trace was captured from
     * @param cap stream-length cap used at capture (post-warmup,
     *        already normalised: never 0)
     * @param sourceHash hash of the workload's assembly source, used
     *        to invalidate spilled traces when kernels change
     * @param insts the captured records (moved in)
     */
    RecordedTrace(std::string workload, std::uint64_t cap,
                  std::uint64_t sourceHash, std::vector<DynInst> insts);

    const std::string &workload() const { return workloadName; }
    std::uint64_t cap() const { return streamCap; }
    std::uint64_t sourceHash() const { return srcHash; }

    /** FNV-1a digest over every field of every record. */
    std::uint64_t digest() const { return contentDigest; }

    std::size_t size() const { return records.size(); }
    bool empty() const { return records.empty(); }
    const DynInst &operator[](std::size_t i) const { return records[i]; }
    const std::vector<DynInst> &insts() const { return records; }

    /**
     * The pre-decoded structure-of-arrays companion (DESIGN §4h).
     * Built at most once per trace — thread-safe, so concurrent sweep
     * lanes sharing the trace all see the same columns.  The harness
     * forces the build at capture / trace-file-load time so no lane
     * ever pays pack cost mid-sweep.
     */
    const PackedTrace &packed() const;

    /** Fold one record's fields into a running FNV-1a state. */
    static void foldInst(std::uint64_t &h, const DynInst &di);

    /** Content digest of an arbitrary record sequence. */
    static std::uint64_t digestOf(const std::vector<DynInst> &insts);

  private:
    std::string workloadName;
    std::uint64_t streamCap;
    std::uint64_t srcHash;
    std::vector<DynInst> records;
    std::uint64_t contentDigest;
    mutable std::once_flag packOnce;
    mutable std::unique_ptr<PackedTrace> packedCols;
};

/** Shared-ownership handle to an immutable trace. */
using TracePtr = std::shared_ptr<const RecordedTrace>;

/**
 * A cursor over a shared RecordedTrace.  next() and reset() touch only
 * the cursor, never the trace, so any number of ReplayStreams can read
 * one trace concurrently.
 */
class ReplayStream : public InstStream
{
  public:
    explicit ReplayStream(TracePtr trace);

    std::optional<DynInst> next() override;
    void reset() override { pos = 0; }
    const std::string &name() const override;

    /**
     * Reposition the cursor to record `p` (clamped to the trace end).
     * The sampling controller uses this to reconcile the cursor with
     * the commit point after a detailed window — the core's fetch
     * lookahead leaves the cursor ahead of the last committed record —
     * and to jump over functionally-warmed / skipped spans.  Does not
     * count toward replayed(): only records actually emitted do.
     */
    void seek(std::size_t p) { pos = p < src->size() ? p : src->size(); }

    /** Records emitted over the stream's lifetime (survives reset()). */
    std::uint64_t replayed() const { return emitted; }

    const RecordedTrace &trace() const { return *src; }

    const PackedTrace *packedView() const override
    {
        return &src->packed();
    }
    std::size_t cursor() const override { return pos; }

  private:
    TracePtr src;
    std::size_t pos = 0;
    std::uint64_t emitted = 0;
};

} // namespace rrs::trace

#endif // RRS_TRACE_RECORDED_HH
