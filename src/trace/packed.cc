#include "packed.hh"

#include <bit>
#include <chrono>

#include "common/logging.hh"

namespace rrs::trace {

namespace {

constexpr std::uint64_t fnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t fnvPrime = 0x100000001b3ULL;

void
foldU8(std::uint64_t &h, std::uint8_t v)
{
    h ^= v;
    h *= fnvPrime;
}

void
foldU64(std::uint64_t &h, std::uint64_t v)
{
    for (unsigned b = 0; b < 8; ++b)
        foldU8(h, static_cast<std::uint8_t>(v >> (8 * b)));
}

void
setBit(std::vector<std::uint64_t> &bv, std::size_t i)
{
    bv[i / 64] |= std::uint64_t{1} << (i % 64);
}

} // namespace

bool
PackedTrace::regBytePackable(const isa::RegId &r)
{
    return r.idx == invalidRegIndex || r.idx < isa::numLogRegs;
}

std::uint8_t
PackedTrace::packRegByte(const isa::RegId &r)
{
    const auto cls = static_cast<std::uint8_t>(r.cls);
    if (r.idx == invalidRegIndex)
        return static_cast<std::uint8_t>(0x80u | cls);
    rrs_assert(r.idx < isa::numLogRegs, "register index out of range");
    return static_cast<std::uint8_t>((cls << 6) | r.idx);
}

isa::RegId
PackedTrace::unpackRegByte(std::uint8_t b)
{
    if (b & 0x80u)
        return isa::RegId{static_cast<RegClass>(b & 0x7fu),
                          invalidRegIndex};
    return isa::RegId{static_cast<RegClass>((b >> 6) & 1u),
                      static_cast<LogRegIndex>(b & 0x3fu)};
}

std::uint64_t
PackedTrace::countBits(const std::vector<std::uint64_t> &bv)
{
    std::uint64_t count = 0;
    for (std::uint64_t w : bv)
        count += static_cast<std::uint64_t>(std::popcount(w));
    return count;
}

PackedTrace::PackedTrace(const std::vector<DynInst> &records)
{
    const auto t0 = std::chrono::steady_clock::now();
    n = records.size();
    metaCol.reserve(n);
    seqCol.reserve(n);
    pcCol.reserve(n);
    nextPcCol.reserve(n);
    effAddrCol.reserve(n);
    destCol.reserve(n);
    srcCol.reserve(n);
    numSrcsCol.reserve(n);
    const std::size_t words = (n + 63) / 64;
    loadBv.assign(words, 0);
    storeBv.assign(words, 0);
    controlBv.assign(words, 0);
    hasDestBv.assign(words, 0);
    takenBv.assign(words, 0);
    writesRegBv.assign(words, 0);

    for (std::size_t i = 0; i < n; ++i) {
        const DynInst &di = records[i];
        // Static per-opcode bits from the one-time classifier, then
        // the per-record facts stamped on top.
        isa::PackedMeta m = isa::packedMeta(di.si.op);
        if (di.taken)
            m.attrs |= isa::instattr::taken;
        const bool writes =
            (m.attrs & isa::instattr::hasDest) &&
            !(di.si.dest.cls == RegClass::Int &&
              di.si.dest.idx == isa::zeroReg);
        if (writes)
            m.attrs |= isa::instattr::writesReg;
        metaCol.push_back(m);
        seqCol.push_back(di.seq);
        pcCol.push_back(di.pc);
        nextPcCol.push_back(di.nextPc);
        effAddrCol.push_back(di.effAddr);
        rrs_assert(regBytePackable(di.si.dest) &&
                       regBytePackable(di.si.srcs[0]) &&
                       regBytePackable(di.si.srcs[1]) &&
                       regBytePackable(di.si.srcs[2]),
                   "register id does not fit the packed byte codec");
        destCol.push_back(packRegByte(di.si.dest));
        srcCol.push_back({packRegByte(di.si.srcs[0]),
                          packRegByte(di.si.srcs[1]),
                          packRegByte(di.si.srcs[2])});
        numSrcsCol.push_back(di.si.numSrcs());

        if (m.isLoad())
            setBit(loadBv, i);
        if (m.isStore())
            setBit(storeBv, i);
        if (m.isControl())
            setBit(controlBv, i);
        if (m.hasDest())
            setBit(hasDestBv, i);
        if (di.taken)
            setBit(takenBv, i);
        if (writes)
            setBit(writesRegBv, i);
    }

    // Digest every column in declaration order.  The meta column
    // includes classifier output, so two builds only agree when both
    // the records *and* the classifier tables agree — exactly the
    // property codec v2 checks on load.
    std::uint64_t h = fnvOffset;
    foldU64(h, n);
    for (const isa::PackedMeta &m : metaCol) {
        foldU8(h, m.attrs);
        foldU8(h, static_cast<std::uint8_t>(m.cls));
        foldU8(h, static_cast<std::uint8_t>(m.branch));
        foldU8(h, m.memBytes);
    }
    for (InstSeqNum v : seqCol)
        foldU64(h, v);
    for (Addr v : pcCol)
        foldU64(h, v);
    for (Addr v : nextPcCol)
        foldU64(h, v);
    for (Addr v : effAddrCol)
        foldU64(h, v);
    for (std::uint8_t v : destCol)
        foldU8(h, v);
    for (const auto &s : srcCol) {
        foldU8(h, s[0]);
        foldU8(h, s[1]);
        foldU8(h, s[2]);
    }
    for (std::uint8_t v : numSrcsCol)
        foldU8(h, v);
    packedDigest = h;

    packSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
}

} // namespace rrs::trace
