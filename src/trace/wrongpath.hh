/**
 * @file
 * Wrong-path instruction synthesis.
 *
 * The timing model is trace-driven: the emulator only supplies
 * correct-path instructions.  Real wrong-path instructions matter to
 * this paper because they allocate physical registers, occupy issue
 * queue slots, and exercise the renamer's squash/undo machinery.  This
 * generator fabricates wrong-path instructions whose mix mimics the
 * recent correct-path history (a ring of recently seen static
 * instructions with re-randomised registers), which preserves the
 * resource pressure without needing wrong-path architectural state.
 */

#ifndef RRS_TRACE_WRONGPATH_HH
#define RRS_TRACE_WRONGPATH_HH

#include <vector>

#include "common/random.hh"
#include "trace/dyninst.hh"

namespace rrs::trace {

/** Generator of statistically matched wrong-path instructions. */
class WrongPathGenerator
{
  public:
    explicit WrongPathGenerator(std::uint64_t seed = 7,
                                std::size_t historySize = 256);

    /** Record a correct-path instruction into the mix history. */
    void observe(const DynInst &di);

    /**
     * Fabricate one wrong-path instruction at the given PC.  Branches
     * in the fabricated stream are marked not-taken so wrong-path fetch
     * runs ahead sequentially (predicted-taken wrong-path branches are
     * rare and would immediately redirect within the wrong path).
     */
    DynInst generate(Addr pc, InstSeqNum seq);

    /** Clear history (for stream resets). */
    void reset();

  private:
    Random rng;
    std::size_t historySize;
    std::vector<isa::StaticInst> history;
    std::size_t cursor = 0;
};

} // namespace rrs::trace

#endif // RRS_TRACE_WRONGPATH_HH
