/**
 * @file
 * Offline value-usage analysis over a dynamic instruction stream.
 * Computes the paper's motivation statistics:
 *
 *  - Figure 1: fraction of dest-writing instructions that are the *only*
 *    consumer of one of their source values, split by whether they also
 *    redefine that source's logical register.
 *  - Figure 2: distribution of consumers per produced value.
 *  - Figure 3: fraction of dest-writing instructions that could reuse a
 *    physical register under reuse-chain caps of 1, 2, 3 and unlimited.
 *
 * The analysis is an *oracle* study (it sees the whole window), exactly
 * like the paper's motivation section; the timing model implements the
 * realisable mechanism separately.
 */

#ifndef RRS_TRACE_ANALYSIS_HH
#define RRS_TRACE_ANALYSIS_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/dyninst.hh"

namespace rrs::trace {

/** Results of a value-usage analysis run. */
struct UsageReport
{
    std::string workload;
    std::uint64_t totalInsts = 0;
    std::uint64_t destInsts = 0;       //!< instructions writing a register

    // Figure 1 numerators (instruction granularity, deduped).
    std::uint64_t singleConsumerRedef = 0;
    std::uint64_t singleConsumerOther = 0;

    // Figure 2: consumers-per-value histogram; key 6 aggregates "6+".
    std::map<std::uint64_t, std::uint64_t> consumersPerValue;
    std::uint64_t valuesClosed = 0;
    std::uint64_t valuesConsumed = 0;  //!< values with >= 1 consumer

    // Figure 3: dest-writing instructions that avoid an allocation under
    // reuse caps 1, 2, 3, unlimited (indices 0..3).
    std::array<std::uint64_t, 4> reusable{};

    /** Fraction helpers over all instructions (Fig 1 convention). */
    double fracSingleConsumerRedef() const;
    double fracSingleConsumerOther() const;
    double fracSingleConsumer() const;

    /** Fig 2: fraction of consumed values read exactly k times (k<=5),
     *  or >= 6 for k == 6. */
    double fracConsumers(std::uint64_t k) const;

    /** Fig 3: fraction of dest-writing instructions that avoid an
     *  allocation under cap index 0..3 (1, 2, 3, unlimited). */
    double fracReusable(int capIndex) const;

    /** Fig 3 exact-chain-length decomposition: fraction of dest-writing
     *  instructions whose unlimited-cap reuse sits at chain depth d
     *  (1-based); d == 4 aggregates ">3". */
    std::array<double, 4> reuseDepthBreakdown() const;

    std::array<std::uint64_t, 4> reuseDepthCounts{};
};

/**
 * Analyse up to maxInsts instructions from a stream (which is *not*
 * reset first; callers choose the window).  Memory cost is
 * O(analysed instructions) with small constants, so keep windows in the
 * low tens of millions.
 */
UsageReport analyzeUsage(InstStream &stream,
                         std::uint64_t maxInsts = 2'000'000);

} // namespace rrs::trace

#endif // RRS_TRACE_ANALYSIS_HH
