/**
 * @file
 * PackedTrace: the pre-decoded, structure-of-arrays companion to a
 * RecordedTrace.
 *
 * A RecordedTrace stores an array-of-structures of DynInst records,
 * and every DynInst property question (is this a load? what class?
 * how many sources?) chases through StaticInst::info() — an OpInfo
 * table lookup per question, per pipeline touch, per cycle.  The
 * PackedTrace answers all of those questions once, at capture (or once
 * on trace-file load), and stores the answers in flat columns:
 *
 *  - a 4-byte isa::PackedMeta per record (attribute bits + compact
 *    InstClass / BranchKind bytes + memory access size), so the hot
 *    loop does plain bit tests and byte compares;
 *  - pre-extracted operand register lists (dest + up to 3 sources,
 *    one packed byte each) so rename never walks RegId structs;
 *  - contiguous seq / pc / nextPc / effAddr columns;
 *  - per-attribute bitvectors (load / store / control / hasDest /
 *    taken / writesReg, 64 records per word) for whole-trace
 *    population counts (rrs-tracetool mix) without touching records.
 *
 * The invariant this buys (DESIGN §4h): decode and classification
 * happen once per captured record, never in the cycle loop.  Packing
 * is pure derivation — every column value is a function of the DynInst
 * records — so a packed trace can always be rebuilt from records (v1
 * trace files) and carries its own FNV-1a digest so codec v2 can prove
 * the stored columns match.
 */

#ifndef RRS_TRACE_PACKED_HH
#define RRS_TRACE_PACKED_HH

#include <array>
#include <cstdint>
#include <vector>

#include "trace/dyninst.hh"

namespace rrs::trace {

class PackedTrace
{
  public:
    /** Build every column from captured records (single linear pass). */
    explicit PackedTrace(const std::vector<DynInst> &records);

    std::size_t size() const { return n; }
    bool empty() const { return n == 0; }

    /** Host seconds spent building the columns (the pack cost). */
    double buildSeconds() const { return packSeconds; }

    /** FNV-1a digest over every column, in declaration order. */
    std::uint64_t digest() const { return packedDigest; }

    // --- per-record hot columns --------------------------------------
    const isa::PackedMeta &meta(std::size_t i) const { return metaCol[i]; }
    InstSeqNum seq(std::size_t i) const { return seqCol[i]; }
    Addr pc(std::size_t i) const { return pcCol[i]; }
    Addr nextPc(std::size_t i) const { return nextPcCol[i]; }
    Addr effAddr(std::size_t i) const { return effAddrCol[i]; }
    bool taken(std::size_t i) const
    {
        return metaCol[i].attrs & isa::instattr::taken;
    }

    // --- pre-extracted operand lists ---------------------------------
    std::uint8_t numSrcs(std::size_t i) const { return numSrcsCol[i]; }
    isa::RegId dest(std::size_t i) const
    {
        return unpackRegByte(destCol[i]);
    }
    isa::RegId src(std::size_t i, unsigned s) const
    {
        return unpackRegByte(srcCol[i][s]);
    }

    // --- attribute bitvectors (record i lives in word i/64, bit i%64) -
    const std::vector<std::uint64_t> &loadBits() const { return loadBv; }
    const std::vector<std::uint64_t> &storeBits() const { return storeBv; }
    const std::vector<std::uint64_t> &controlBits() const
    {
        return controlBv;
    }
    const std::vector<std::uint64_t> &hasDestBits() const
    {
        return hasDestBv;
    }
    const std::vector<std::uint64_t> &takenBits() const { return takenBv; }
    const std::vector<std::uint64_t> &writesRegBits() const
    {
        return writesRegBv;
    }

    /** Population count of one attribute bitvector. */
    static std::uint64_t countBits(const std::vector<std::uint64_t> &bv);

    // --- register byte codec (shared with trace codec v2) -------------
    // A logical register fits one byte: bit 6 is the class, bits 0..5
    // the index (< isa::numLogRegs).  An invalid (absent) register is
    // 0x80 | class so absence round-trips with its class preserved.
    static bool regBytePackable(const isa::RegId &r);
    static std::uint8_t packRegByte(const isa::RegId &r);
    static isa::RegId unpackRegByte(std::uint8_t b);

  private:
    std::size_t n = 0;
    double packSeconds = 0.0;
    std::uint64_t packedDigest = 0;

    std::vector<isa::PackedMeta> metaCol;
    std::vector<InstSeqNum> seqCol;
    std::vector<Addr> pcCol;
    std::vector<Addr> nextPcCol;
    std::vector<Addr> effAddrCol;
    std::vector<std::uint8_t> destCol;
    std::vector<std::array<std::uint8_t, 3>> srcCol;
    std::vector<std::uint8_t> numSrcsCol;

    std::vector<std::uint64_t> loadBv;
    std::vector<std::uint64_t> storeBv;
    std::vector<std::uint64_t> controlBv;
    std::vector<std::uint64_t> hasDestBv;
    std::vector<std::uint64_t> takenBv;
    std::vector<std::uint64_t> writesRegBv;
};

} // namespace rrs::trace

#endif // RRS_TRACE_PACKED_HH
