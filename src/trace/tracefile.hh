/**
 * @file
 * Versioned binary codec for RecordedTrace: the `.rrstrace` format.
 *
 * Layout (all multi-byte scalars little endian):
 *
 *   header   u32 magic "RRST", u32 version,
 *            varint nameLen + name bytes,
 *            varint cap, u64 sourceHash, varint record count
 *   records  one packed DynInst each (see tracefile.cc):
 *            varint seq delta, varint pc, zigzag varint (nextPc - pc),
 *            flags byte, opcode byte, 4 varint register ids,
 *            zigzag varint immediate, then the optional fields the
 *            flags announce (fp immediate, branch target, eff. addr)
 *   trailer  u64 content digest (RecordedTrace::digestOf)
 *
 * The reader validates the magic, version and digest; the fatal-on-
 * error entry points are for tools and tests, the try* variant lets
 * the trace cache fall back to a fresh capture when a spilled file is
 * stale, truncated or corrupt.
 */

#ifndef RRS_TRACE_TRACEFILE_HH
#define RRS_TRACE_TRACEFILE_HH

#include <string>

#include "trace/recorded.hh"

namespace rrs::trace {

/** File magic: "RRST" read as a little-endian u32. */
constexpr std::uint32_t traceFileMagic = 0x54535252u;

/** Current format version. */
constexpr std::uint32_t traceFileVersion = 1;

/** Canonical spill file name for a (workload, cap) pair. */
std::string traceFileName(const std::string &workload, std::uint64_t cap);

/**
 * Write a trace to `path` (via a temp file + rename, so concurrent
 * writers of the same path never expose a torn file).  Fatal on I/O
 * error.
 */
void writeTraceFile(const std::string &path, const RecordedTrace &trace);

/**
 * Like writeTraceFile, but returns false and sets `error` on I/O
 * failure — for best-effort spilling where a read-only or missing
 * directory must not kill the run.
 */
bool tryWriteTraceFile(const std::string &path, const RecordedTrace &trace,
                       std::string &error);

/**
 * Read a trace file; returns nullptr and sets `error` on any problem
 * (missing file, bad magic, unsupported version, truncation, corrupt
 * record, digest mismatch) instead of terminating.
 */
TracePtr tryReadTraceFile(const std::string &path, std::string &error);

/** Read a trace file; fatal with a clear message on any problem. */
TracePtr readTraceFile(const std::string &path);

} // namespace rrs::trace

#endif // RRS_TRACE_TRACEFILE_HH
