/**
 * @file
 * Versioned binary codec for RecordedTrace: the `.rrstrace` format.
 *
 * Version 2 layout (all multi-byte scalars little endian):
 *
 *   header    u32 magic "RRST", u32 version,
 *             varint nameLen + name bytes,
 *             varint cap, u64 sourceHash, varint record count
 *   columns   the packed structure-of-arrays form (DESIGN §4h), one
 *             full column at a time, each `count` entries long:
 *             varint seq deltas, varint pcs,
 *             zigzag varints (nextPc - pc), opcode bytes, flags bytes,
 *             dest register bytes, three source-register byte columns,
 *             zigzag varint immediates
 *   optional  the values the flags bytes announce, one group at a
 *             time in record order: u64 fp-immediate bit patterns,
 *             varint branch targets, varint effective addresses
 *   trailer   u64 record digest (RecordedTrace::digestOf) then
 *             u64 packed-column digest (PackedTrace::digest)
 *
 * Version 1 files (row-major records, varint register ids, single
 * digest trailer) are still read: the loader decodes the legacy rows
 * and silently re-packs the columns.  Unknown future versions fail
 * with the version number and path in the message.
 *
 * The reader validates the magic, version and both digests; the
 * fatal-on-error entry points are for tools and tests, the try*
 * variant lets the trace cache fall back to a fresh capture when a
 * spilled file is stale, truncated or corrupt.
 */

#ifndef RRS_TRACE_TRACEFILE_HH
#define RRS_TRACE_TRACEFILE_HH

#include <string>

#include "trace/recorded.hh"

namespace rrs::trace {

/** File magic: "RRST" read as a little-endian u32. */
constexpr std::uint32_t traceFileMagic = 0x54535252u;

/** Current (newest written) format version. */
constexpr std::uint32_t traceFileVersion = 2;

/** Canonical spill file name for a (workload, cap) pair. */
std::string traceFileName(const std::string &workload, std::uint64_t cap);

/**
 * Write a trace to `path` (via a temp file + rename, so concurrent
 * writers of the same path never expose a torn file).  Fatal on I/O
 * error.
 */
void writeTraceFile(const std::string &path, const RecordedTrace &trace);

/**
 * Like writeTraceFile, but returns false and sets `error` on I/O
 * failure — for best-effort spilling where a read-only or missing
 * directory must not kill the run.
 */
bool tryWriteTraceFile(const std::string &path, const RecordedTrace &trace,
                       std::string &error);

/**
 * Read a trace file; returns nullptr and sets `error` on any problem
 * (missing file, bad magic, unsupported version, truncation, corrupt
 * record, digest mismatch) instead of terminating.  On success the
 * returned trace is already packed (columns built and, for v2 files,
 * verified against the stored packed digest).  When `fileVersion` is
 * non-null it receives the version field of the file header whenever
 * the header was readable, even if the read then fails.
 */
TracePtr tryReadTraceFile(const std::string &path, std::string &error,
                          std::uint32_t *fileVersion = nullptr);

/** Read a trace file; fatal with a clear message on any problem. */
TracePtr readTraceFile(const std::string &path);

} // namespace rrs::trace

#endif // RRS_TRACE_TRACEFILE_HH
