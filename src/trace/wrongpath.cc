#include "wrongpath.hh"

namespace rrs::trace {

WrongPathGenerator::WrongPathGenerator(std::uint64_t seed,
                                       std::size_t historySize)
    : rng(seed), historySize(historySize)
{
    history.reserve(historySize);
}

void
WrongPathGenerator::reset()
{
    history.clear();
    cursor = 0;
}

void
WrongPathGenerator::observe(const DynInst &di)
{
    if (history.size() < historySize) {
        history.push_back(di.si);
    } else {
        history[cursor] = di.si;
        cursor = (cursor + 1) % historySize;
    }
}

DynInst
WrongPathGenerator::generate(Addr pc, InstSeqNum seq)
{
    DynInst di;
    di.seq = seq;
    di.pc = pc;

    if (history.empty()) {
        di.si.op = isa::Opcode::Nop;
        di.nextPc = pc + isa::instBytes;
        return di;
    }

    // Sample a template from recent history and re-randomise registers
    // within its classes, preserving the opcode mix and thus the
    // dest-register and FU-demand statistics of the local code.
    di.si = history[rng.below(history.size())];
    isa::StaticInst &si = di.si;

    auto randomReg = [&](RegClass cls) {
        // Avoid xzr so wrong-path instructions really allocate.
        auto idx = static_cast<LogRegIndex>(rng.below(30));
        return isa::RegId{cls, idx};
    };

    if (si.hasDest())
        si.dest = randomReg(si.dest.cls);
    for (int s = 0; s < si.numSrcs(); ++s) {
        auto &src = si.srcs[static_cast<std::size_t>(s)];
        src = randomReg(src.cls);
    }

    if (di.isLoad() || di.isStore()) {
        // Wrong-path memory ops keep a plausible (but unused) address.
        di.effAddr = 0x3000000 + (rng.below(1 << 20) & ~Addr{7});
    }

    // Wrong-path control: treated as not-taken so fetch continues
    // sequentially until the mispredicted branch resolves.
    di.taken = false;
    di.nextPc = pc + isa::instBytes;
    return di;
}

} // namespace rrs::trace
