#include "tracefile.hh"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/atomicfile.hh"
#include "common/logging.hh"

namespace rrs::trace {

namespace {

// Record flags byte.
constexpr std::uint8_t flagTaken = 1u << 0;
constexpr std::uint8_t flagEffAddr = 1u << 1;
constexpr std::uint8_t flagFpImm = 1u << 2;
constexpr std::uint8_t flagTarget = 1u << 3;

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (unsigned b = 0; b < 4; ++b)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (unsigned b = 0; b < 8; ++b)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
}

// A register id packs as (idx << 1) | cls; invalidRegIndex round-trips
// like any other index so unused operand slots stay bit-faithful.
std::uint64_t
packReg(const isa::RegId &r)
{
    return (static_cast<std::uint64_t>(r.idx) << 1) |
           static_cast<std::uint64_t>(r.cls);
}

/** Bounds-checked cursor over the file image. */
class Reader
{
  public:
    Reader(const std::uint8_t *data, std::size_t size)
        : p(data), end(data + size)
    {
    }

    bool ok() const { return good; }
    std::size_t remaining() const { return static_cast<std::size_t>(end - p); }

    std::uint8_t
    u8()
    {
        if (p >= end) {
            good = false;
            return 0;
        }
        return *p++;
    }

    std::uint32_t
    u32()
    {
        std::uint32_t v = 0;
        for (unsigned b = 0; b < 4; ++b)
            v |= static_cast<std::uint32_t>(u8()) << (8 * b);
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        for (unsigned b = 0; b < 8; ++b)
            v |= static_cast<std::uint64_t>(u8()) << (8 * b);
        return v;
    }

    std::uint64_t
    varint()
    {
        std::uint64_t v = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            std::uint8_t byte = u8();
            v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
            if (!(byte & 0x80))
                return v;
        }
        good = false;    // > 10 continuation bytes: corrupt
        return v;
    }

    std::string
    bytes(std::size_t n)
    {
        if (remaining() < n) {
            good = false;
            return {};
        }
        std::string s(reinterpret_cast<const char *>(p), n);
        p += n;
        return s;
    }

  private:
    const std::uint8_t *p;
    const std::uint8_t *end;
    bool good = true;
};

bool
unpackReg(std::uint64_t v, isa::RegId &r)
{
    std::uint64_t idx = v >> 1;
    if (idx > invalidRegIndex)
        return false;
    r.cls = (v & 1) ? RegClass::Float : RegClass::Int;
    r.idx = static_cast<LogRegIndex>(idx);
    return true;
}

} // namespace

std::string
traceFileName(const std::string &workload, std::uint64_t cap)
{
    return workload + "_" + std::to_string(cap) + ".rrstrace";
}

bool
tryWriteTraceFile(const std::string &path, const RecordedTrace &trace,
                  std::string &error)
{
    std::vector<std::uint8_t> buf;
    buf.reserve(64 + trace.size() * 16);

    putU32(buf, traceFileMagic);
    putU32(buf, traceFileVersion);
    putVarint(buf, trace.workload().size());
    for (char c : trace.workload())
        buf.push_back(static_cast<std::uint8_t>(c));
    putVarint(buf, trace.cap());
    putU64(buf, trace.sourceHash());
    putVarint(buf, trace.size());

    std::uint64_t prevSeq = 0;
    for (const DynInst &di : trace.insts()) {
        putVarint(buf, di.seq - prevSeq);
        prevSeq = di.seq;
        putVarint(buf, di.pc);
        putVarint(buf, zigzag(static_cast<std::int64_t>(di.nextPc) -
                              static_cast<std::int64_t>(di.pc)));

        std::uint64_t fbits;
        std::memcpy(&fbits, &di.si.fimm, sizeof(fbits));

        std::uint8_t flags = 0;
        if (di.taken)
            flags |= flagTaken;
        if (di.effAddr != invalidAddr)
            flags |= flagEffAddr;
        if (fbits != 0)
            flags |= flagFpImm;
        if (di.si.target != invalidAddr)
            flags |= flagTarget;
        buf.push_back(flags);

        buf.push_back(static_cast<std::uint8_t>(di.si.op));
        putVarint(buf, packReg(di.si.dest));
        for (const auto &s : di.si.srcs)
            putVarint(buf, packReg(s));
        putVarint(buf, zigzag(di.si.imm));
        if (flags & flagFpImm)
            putU64(buf, fbits);
        if (flags & flagTarget)
            putVarint(buf, di.si.target);
        if (flags & flagEffAddr)
            putVarint(buf, di.effAddr);
    }
    putU64(buf, trace.digest());

    // Temp-file + rename keeps concurrent writers of one path atomic
    // (common/atomicfile.hh, shared with the JSON exporters).
    // No parent creation: a missing RRS_TRACE_DIR disables spilling
    // rather than silently materialising directories.
    return tryWriteFileAtomic(
        path,
        std::string_view(reinterpret_cast<const char *>(buf.data()),
                         buf.size()),
        error, /*createParents=*/false);
}

void
writeTraceFile(const std::string &path, const RecordedTrace &trace)
{
    std::string error;
    if (!tryWriteTraceFile(path, trace, error))
        rrs_fatal("cannot write trace file '%s': %s", path.c_str(),
                  error.c_str());
}

TracePtr
tryReadTraceFile(const std::string &path, std::string &error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        error = "cannot open trace file '" + path + "'";
        return nullptr;
    }
    std::vector<std::uint8_t> buf(
        (std::istreambuf_iterator<char>(is)),
        std::istreambuf_iterator<char>());

    // Smallest well-formed file: header with an empty name and zero
    // records plus the digest trailer.
    if (buf.size() < 4 + 4 + 1 + 1 + 8 + 1 + 8) {
        error = "trace file '" + path + "' is too short";
        return nullptr;
    }

    Reader r(buf.data(), buf.size());
    if (r.u32() != traceFileMagic) {
        error = "bad magic in trace file '" + path + "'";
        return nullptr;
    }
    const std::uint32_t version = r.u32();
    if (version != traceFileVersion) {
        error = "unsupported trace version " + std::to_string(version) +
                " in '" + path + "' (expected " +
                std::to_string(traceFileVersion) + ")";
        return nullptr;
    }

    const std::uint64_t nameLen = r.varint();
    if (!r.ok() || nameLen > r.remaining()) {
        error = "truncated trace file '" + path + "'";
        return nullptr;
    }
    std::string name = r.bytes(static_cast<std::size_t>(nameLen));
    const std::uint64_t cap = r.varint();
    const std::uint64_t sourceHash = r.u64();
    const std::uint64_t count = r.varint();
    if (!r.ok()) {
        error = "truncated trace file '" + path + "'";
        return nullptr;
    }
    // Each record is at least 9 bytes; reject counts the file cannot
    // possibly hold before reserving memory for them.
    if (count > r.remaining() / 9 + 1) {
        error = "corrupt record count in trace file '" + path + "'";
        return nullptr;
    }

    std::vector<DynInst> insts;
    insts.reserve(static_cast<std::size_t>(count));
    std::uint64_t prevSeq = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        DynInst di;
        di.seq = prevSeq + r.varint();
        prevSeq = di.seq;
        di.pc = r.varint();
        di.nextPc = static_cast<Addr>(
            static_cast<std::int64_t>(di.pc) + unzigzag(r.varint()));
        const std::uint8_t flags = r.u8();
        const std::uint8_t op = r.u8();
        if (op >= static_cast<std::uint8_t>(isa::Opcode::NumOpcodes)) {
            error = "corrupt opcode in trace file '" + path +
                    "' (record " + std::to_string(i) + ")";
            return nullptr;
        }
        di.si.op = static_cast<isa::Opcode>(op);
        bool regsOk = unpackReg(r.varint(), di.si.dest);
        for (auto &s : di.si.srcs)
            regsOk = unpackReg(r.varint(), s) && regsOk;
        if (!regsOk) {
            error = "corrupt register id in trace file '" + path +
                    "' (record " + std::to_string(i) + ")";
            return nullptr;
        }
        di.si.imm = unzigzag(r.varint());
        di.si.fimm = 0.0;
        if (flags & flagFpImm) {
            std::uint64_t fbits = r.u64();
            std::memcpy(&di.si.fimm, &fbits, sizeof(di.si.fimm));
        }
        di.si.target = (flags & flagTarget) ? r.varint() : invalidAddr;
        di.taken = (flags & flagTaken) != 0;
        di.effAddr = (flags & flagEffAddr) ? r.varint() : invalidAddr;
        if (!r.ok()) {
            error = "truncated trace file '" + path + "' (record " +
                    std::to_string(i) + " of " + std::to_string(count) +
                    ")";
            return nullptr;
        }
        insts.push_back(di);
    }

    const std::uint64_t storedDigest = r.u64();
    if (!r.ok()) {
        error = "truncated trace file '" + path + "' (missing digest "
                "trailer)";
        return nullptr;
    }
    auto trace = std::make_shared<RecordedTrace>(
        std::move(name), cap, sourceHash, std::move(insts));
    if (trace->digest() != storedDigest) {
        error = "digest mismatch in trace file '" + path +
                "': stored " + std::to_string(storedDigest) +
                ", computed " + std::to_string(trace->digest());
        return nullptr;
    }
    return trace;
}

TracePtr
readTraceFile(const std::string &path)
{
    std::string error;
    TracePtr trace = tryReadTraceFile(path, error);
    if (!trace)
        rrs_fatal("%s", error.c_str());
    return trace;
}

} // namespace rrs::trace
