#include "tracefile.hh"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/atomicfile.hh"
#include "common/logging.hh"
#include "trace/packed.hh"

namespace rrs::trace {

namespace {

// Record flags byte.
constexpr std::uint8_t flagTaken = 1u << 0;
constexpr std::uint8_t flagEffAddr = 1u << 1;
constexpr std::uint8_t flagFpImm = 1u << 2;
constexpr std::uint8_t flagTarget = 1u << 3;

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (unsigned b = 0; b < 4; ++b)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (unsigned b = 0; b < 8; ++b)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
}

/** The optional-field flags of one record (both format versions). */
std::uint8_t
recordFlags(const DynInst &di)
{
    std::uint64_t fbits;
    std::memcpy(&fbits, &di.si.fimm, sizeof(fbits));
    std::uint8_t flags = 0;
    if (di.taken)
        flags |= flagTaken;
    if (di.effAddr != invalidAddr)
        flags |= flagEffAddr;
    if (fbits != 0)
        flags |= flagFpImm;
    if (di.si.target != invalidAddr)
        flags |= flagTarget;
    return flags;
}

/** True for byte values PackedTrace::unpackRegByte decodes losslessly. */
bool
regByteValid(std::uint8_t b)
{
    if (b & 0x80u)
        return (b & 0x7fu) < numRegClasses;
    return (b & 0x3fu) < isa::numLogRegs;
}

/** Bounds-checked cursor over the file image. */
class Reader
{
  public:
    Reader(const std::uint8_t *data, std::size_t size)
        : p(data), end(data + size)
    {
    }

    bool ok() const { return good; }
    std::size_t remaining() const { return static_cast<std::size_t>(end - p); }

    std::uint8_t
    u8()
    {
        if (p >= end) {
            good = false;
            return 0;
        }
        return *p++;
    }

    std::uint32_t
    u32()
    {
        std::uint32_t v = 0;
        for (unsigned b = 0; b < 4; ++b)
            v |= static_cast<std::uint32_t>(u8()) << (8 * b);
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        for (unsigned b = 0; b < 8; ++b)
            v |= static_cast<std::uint64_t>(u8()) << (8 * b);
        return v;
    }

    std::uint64_t
    varint()
    {
        std::uint64_t v = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            std::uint8_t byte = u8();
            v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
            if (!(byte & 0x80))
                return v;
        }
        good = false;    // > 10 continuation bytes: corrupt
        return v;
    }

    std::string
    bytes(std::size_t n)
    {
        if (remaining() < n) {
            good = false;
            return {};
        }
        std::string s(reinterpret_cast<const char *>(p), n);
        p += n;
        return s;
    }

  private:
    const std::uint8_t *p;
    const std::uint8_t *end;
    bool good = true;
};

bool
unpackReg(std::uint64_t v, isa::RegId &r)
{
    std::uint64_t idx = v >> 1;
    if (idx > invalidRegIndex)
        return false;
    r.cls = (v & 1) ? RegClass::Float : RegClass::Int;
    r.idx = static_cast<LogRegIndex>(idx);
    return true;
}

} // namespace

std::string
traceFileName(const std::string &workload, std::uint64_t cap)
{
    return workload + "_" + std::to_string(cap) + ".rrstrace";
}

bool
tryWriteTraceFile(const std::string &path, const RecordedTrace &trace,
                  std::string &error)
{
    // v2 is column-major: one full column at a time, mirroring the
    // PackedTrace structure-of-arrays form so like values compress
    // together and the loader refills columns with tight loops.
    const std::vector<DynInst> &insts = trace.insts();
    const PackedTrace &packed = trace.packed();

    std::vector<std::uint8_t> buf;
    buf.reserve(64 + trace.size() * 12);

    putU32(buf, traceFileMagic);
    putU32(buf, traceFileVersion);
    putVarint(buf, trace.workload().size());
    for (char c : trace.workload())
        buf.push_back(static_cast<std::uint8_t>(c));
    putVarint(buf, trace.cap());
    putU64(buf, trace.sourceHash());
    putVarint(buf, trace.size());

    std::uint64_t prevSeq = 0;
    for (const DynInst &di : insts) {
        putVarint(buf, di.seq - prevSeq);
        prevSeq = di.seq;
    }
    for (const DynInst &di : insts)
        putVarint(buf, di.pc);
    for (const DynInst &di : insts) {
        putVarint(buf, zigzag(static_cast<std::int64_t>(di.nextPc) -
                              static_cast<std::int64_t>(di.pc)));
    }
    for (const DynInst &di : insts)
        buf.push_back(static_cast<std::uint8_t>(di.si.op));
    for (const DynInst &di : insts)
        buf.push_back(recordFlags(di));
    for (const DynInst &di : insts)
        buf.push_back(PackedTrace::packRegByte(di.si.dest));
    for (unsigned s = 0; s < 3; ++s) {
        for (const DynInst &di : insts)
            buf.push_back(PackedTrace::packRegByte(di.si.srcs[s]));
    }
    for (const DynInst &di : insts)
        putVarint(buf, zigzag(di.si.imm));

    // Optional values, one flag group at a time in record order.
    for (const DynInst &di : insts) {
        std::uint64_t fbits;
        std::memcpy(&fbits, &di.si.fimm, sizeof(fbits));
        if (fbits != 0)
            putU64(buf, fbits);
    }
    for (const DynInst &di : insts) {
        if (di.si.target != invalidAddr)
            putVarint(buf, di.si.target);
    }
    for (const DynInst &di : insts) {
        if (di.effAddr != invalidAddr)
            putVarint(buf, di.effAddr);
    }

    putU64(buf, trace.digest());
    putU64(buf, packed.digest());

    // Temp-file + rename keeps concurrent writers of one path atomic
    // (common/atomicfile.hh, shared with the JSON exporters).
    // No parent creation: a missing RRS_TRACE_DIR disables spilling
    // rather than silently materialising directories.
    return tryWriteFileAtomic(
        path,
        std::string_view(reinterpret_cast<const char *>(buf.data()),
                         buf.size()),
        error, /*createParents=*/false);
}

void
writeTraceFile(const std::string &path, const RecordedTrace &trace)
{
    std::string error;
    if (!tryWriteTraceFile(path, trace, error))
        rrs_fatal("cannot write trace file '%s': %s", path.c_str(),
                  error.c_str());
}

TracePtr
tryReadTraceFile(const std::string &path, std::string &error,
                 std::uint32_t *fileVersion)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        error = "cannot open trace file '" + path + "'";
        return nullptr;
    }
    std::vector<std::uint8_t> buf(
        (std::istreambuf_iterator<char>(is)),
        std::istreambuf_iterator<char>());

    // Smallest well-formed file: header with an empty name and zero
    // records plus the digest trailer.
    if (buf.size() < 4 + 4 + 1 + 1 + 8 + 1 + 8) {
        error = "trace file '" + path + "' is too short";
        return nullptr;
    }

    Reader r(buf.data(), buf.size());
    if (r.u32() != traceFileMagic) {
        error = "bad magic in trace file '" + path + "'";
        return nullptr;
    }
    const std::uint32_t version = r.u32();
    if (fileVersion)
        *fileVersion = version;
    if (version < 1 || version > traceFileVersion) {
        error = "unsupported trace version " + std::to_string(version) +
                " in '" + path + "' (newest supported " +
                std::to_string(traceFileVersion) + ")";
        return nullptr;
    }

    const std::uint64_t nameLen = r.varint();
    if (!r.ok() || nameLen > r.remaining()) {
        error = "truncated trace file '" + path + "'";
        return nullptr;
    }
    std::string name = r.bytes(static_cast<std::size_t>(nameLen));
    const std::uint64_t cap = r.varint();
    const std::uint64_t sourceHash = r.u64();
    const std::uint64_t count = r.varint();
    if (!r.ok()) {
        error = "truncated trace file '" + path + "'";
        return nullptr;
    }
    // Each record costs at least 9 bytes in either version; reject
    // counts the file cannot possibly hold before reserving memory.
    if (count > r.remaining() / 9 + 1) {
        error = "corrupt record count in trace file '" + path + "'";
        return nullptr;
    }

    std::vector<DynInst> insts;
    if (version == 1) {
        // Legacy row-major records: one fully packed DynInst at a
        // time.  The columns are re-derived (silently) after the
        // records are validated below.
        insts.reserve(static_cast<std::size_t>(count));
        std::uint64_t prevSeq = 0;
        for (std::uint64_t i = 0; i < count; ++i) {
            DynInst di;
            di.seq = prevSeq + r.varint();
            prevSeq = di.seq;
            di.pc = r.varint();
            di.nextPc = static_cast<Addr>(
                static_cast<std::int64_t>(di.pc) + unzigzag(r.varint()));
            const std::uint8_t flags = r.u8();
            const std::uint8_t op = r.u8();
            if (op >=
                static_cast<std::uint8_t>(isa::Opcode::NumOpcodes)) {
                error = "corrupt opcode in trace file '" + path +
                        "' (record " + std::to_string(i) + ")";
                return nullptr;
            }
            di.si.op = static_cast<isa::Opcode>(op);
            bool regsOk = unpackReg(r.varint(), di.si.dest);
            for (auto &s : di.si.srcs)
                regsOk = unpackReg(r.varint(), s) && regsOk;
            if (!regsOk) {
                error = "corrupt register id in trace file '" + path +
                        "' (record " + std::to_string(i) + ")";
                return nullptr;
            }
            di.si.imm = unzigzag(r.varint());
            di.si.fimm = 0.0;
            if (flags & flagFpImm) {
                std::uint64_t fbits = r.u64();
                std::memcpy(&di.si.fimm, &fbits, sizeof(di.si.fimm));
            }
            di.si.target =
                (flags & flagTarget) ? r.varint() : invalidAddr;
            di.taken = (flags & flagTaken) != 0;
            di.effAddr =
                (flags & flagEffAddr) ? r.varint() : invalidAddr;
            if (!r.ok()) {
                error = "truncated trace file '" + path + "' (record " +
                        std::to_string(i) + " of " +
                        std::to_string(count) + ")";
                return nullptr;
            }
            insts.push_back(di);
        }
    } else {
        // v2 column-major: refill one column at a time.
        const auto n = static_cast<std::size_t>(count);
        insts.resize(n);
        std::uint64_t prevSeq = 0;
        for (std::size_t i = 0; i < n; ++i) {
            insts[i].seq = prevSeq + r.varint();
            prevSeq = insts[i].seq;
        }
        for (std::size_t i = 0; i < n; ++i)
            insts[i].pc = r.varint();
        for (std::size_t i = 0; i < n; ++i) {
            insts[i].nextPc = static_cast<Addr>(
                static_cast<std::int64_t>(insts[i].pc) +
                unzigzag(r.varint()));
        }
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint8_t op = r.u8();
            if (r.ok() &&
                op >= static_cast<std::uint8_t>(isa::Opcode::NumOpcodes)) {
                error = "corrupt opcode in trace file '" + path +
                        "' (record " + std::to_string(i) + ")";
                return nullptr;
            }
            insts[i].si.op = static_cast<isa::Opcode>(op);
        }
        std::vector<std::uint8_t> flagsCol(n);
        for (std::size_t i = 0; i < n; ++i)
            flagsCol[i] = r.u8();
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint8_t b = r.u8();
            if (r.ok() && !regByteValid(b)) {
                error = "corrupt register id in trace file '" + path +
                        "' (record " + std::to_string(i) + ")";
                return nullptr;
            }
            insts[i].si.dest = PackedTrace::unpackRegByte(b);
        }
        for (unsigned s = 0; s < 3; ++s) {
            for (std::size_t i = 0; i < n; ++i) {
                const std::uint8_t b = r.u8();
                if (r.ok() && !regByteValid(b)) {
                    error = "corrupt register id in trace file '" +
                            path + "' (record " + std::to_string(i) +
                            ")";
                    return nullptr;
                }
                insts[i].si.srcs[s] = PackedTrace::unpackRegByte(b);
            }
        }
        for (std::size_t i = 0; i < n; ++i)
            insts[i].si.imm = unzigzag(r.varint());
        if (!r.ok()) {
            error = "truncated trace file '" + path +
                    "' (inside record columns)";
            return nullptr;
        }

        // Optional values, one flag group at a time in record order.
        for (std::size_t i = 0; i < n; ++i) {
            insts[i].si.fimm = 0.0;
            if (flagsCol[i] & flagFpImm) {
                std::uint64_t fbits = r.u64();
                std::memcpy(&insts[i].si.fimm, &fbits,
                            sizeof(insts[i].si.fimm));
            }
        }
        for (std::size_t i = 0; i < n; ++i) {
            insts[i].si.target =
                (flagsCol[i] & flagTarget) ? r.varint() : invalidAddr;
        }
        for (std::size_t i = 0; i < n; ++i) {
            insts[i].taken = (flagsCol[i] & flagTaken) != 0;
            insts[i].effAddr =
                (flagsCol[i] & flagEffAddr) ? r.varint() : invalidAddr;
        }
        if (!r.ok()) {
            error = "truncated trace file '" + path +
                    "' (inside optional columns)";
            return nullptr;
        }
    }

    const std::uint64_t storedDigest = r.u64();
    const std::uint64_t storedPackedDigest =
        version >= 2 ? r.u64() : 0;
    if (!r.ok()) {
        error = "truncated trace file '" + path + "' (missing digest "
                "trailer)";
        return nullptr;
    }
    auto trace = std::make_shared<RecordedTrace>(
        std::move(name), cap, sourceHash, std::move(insts));
    if (trace->digest() != storedDigest) {
        error = "digest mismatch in trace file '" + path +
                "': stored " + std::to_string(storedDigest) +
                ", computed " + std::to_string(trace->digest());
        return nullptr;
    }
    // Decode-once invariant (DESIGN §4h): the columns are built here,
    // at load, never in the cycle loop.  A v1 file re-packs silently;
    // a v2 file must additionally prove the stored packed digest
    // matches the rebuilt columns (i.e. the classifier agrees).
    const PackedTrace &packed = trace->packed();
    if (version >= 2 && packed.digest() != storedPackedDigest) {
        error = "packed digest mismatch in trace file '" + path +
                "': stored " + std::to_string(storedPackedDigest) +
                ", computed " + std::to_string(packed.digest());
        return nullptr;
    }
    return trace;
}

TracePtr
readTraceFile(const std::string &path)
{
    std::string error;
    TracePtr trace = tryReadTraceFile(path, error);
    if (!trace)
        rrs_fatal("%s", error.c_str());
    return trace;
}

} // namespace rrs::trace
