#include "synthetic.hh"

#include "common/logging.hh"

namespace rrs::trace {

using isa::Opcode;

namespace {

// Usable register windows: avoid xzr (31), lr (30) and sp (28) so the
// synthetic dataflow never collides with calling conventions.
constexpr LogRegIndex intRegLo = 1;
constexpr LogRegIndex intRegHi = 27;
constexpr LogRegIndex fpRegLo = 0;
constexpr LogRegIndex fpRegHi = 31;

constexpr Addr synthDataBase = 0x2000000;

} // namespace

SyntheticStream::SyntheticStream(SyntheticParams params, std::string name)
    : params(params), label(std::move(name)), rng(params.seed),
      pc(isa::textBase)
{
}

void
SyntheticStream::reset()
{
    rng.reseed(params.seed);
    emitted = 0;
    pc = isa::textBase;
    stride = 0;
    for (auto &p : pending)
        p = PendingSingleUse{};
}

isa::RegId
SyntheticStream::pickSource(RegClass cls)
{
    const LogRegIndex lo = cls == RegClass::Int ? intRegLo : fpRegLo;
    const LogRegIndex hi = cls == RegClass::Int ? intRegHi : fpRegHi;
    const PendingSingleUse &p = pending[static_cast<int>(cls)];
    for (int attempt = 0; attempt < 8; ++attempt) {
        auto idx = static_cast<LogRegIndex>(rng.between(lo, hi));
        // Never read a register whose live value is reserved for a
        // dedicated single-use consumer.
        if (p.valid && p.reg.idx == idx)
            continue;
        return isa::RegId{cls, idx};
    }
    // Fall back deterministically (p.reg can occupy at most one slot).
    auto idx = static_cast<LogRegIndex>(
        p.valid && p.reg.idx == lo ? lo + 1 : lo);
    return isa::RegId{cls, idx};
}

isa::RegId
SyntheticStream::pickDest(RegClass cls, bool &madeSingleUse)
{
    isa::RegId dest = pickSource(cls);
    madeSingleUse = rng.chance(params.singleUseFraction);
    return dest;
}

std::optional<DynInst>
SyntheticStream::next()
{
    if (emitted >= params.numInsts)
        return std::nullopt;

    DynInst di;
    di.seq = emitted;
    di.pc = pc;

    isa::StaticInst &si = di.si;
    const double r = rng.uniform();
    const double pBr = params.branchFraction;
    const double pLd = pBr + params.loadFraction;
    const double pSt = pLd + params.storeFraction;
    const double pFp = pSt + params.fpFraction;

    const Addr codeEnd =
        isa::textBase + params.staticFootprint * isa::instBytes;

    auto effAddr = [&]() -> Addr {
        if (rng.chance(0.7)) {
            stride = (stride + 64) % params.dataFootprint;
            return synthDataBase + stride;
        }
        return synthDataBase +
               (rng.below(params.dataFootprint) & ~Addr{7});
    };

    // Single-use consumption: if a value is pending for this class and
    // the chosen instruction kind can read it, consume it now.
    auto consumePending = [&](RegClass cls) -> std::optional<isa::RegId> {
        PendingSingleUse &p = pending[static_cast<int>(cls)];
        if (!p.valid)
            return std::nullopt;
        p.valid = false;
        return p.reg;
    };

    auto armPending = [&](RegClass cls, isa::RegId reg) {
        PendingSingleUse &p = pending[static_cast<int>(cls)];
        p.valid = true;
        p.reg = reg;
        p.redefine = rng.chance(params.redefFraction);
    };

    if (r < pBr) {
        // Conditional compare-and-branch.
        si.op = rng.chance(0.5) ? Opcode::Bne : Opcode::Blt;
        auto consumed = consumePending(RegClass::Int);
        si.srcs[0] = consumed ? *consumed : pickSource(RegClass::Int);
        si.srcs[1] = pickSource(RegClass::Int);
        si.target = isa::textBase +
                    rng.below(params.staticFootprint) * isa::instBytes;
        di.taken = rng.chance(params.takenFraction);
    } else if (r < pLd) {
        bool fp = rng.chance(params.fpFraction);
        si.op = fp ? Opcode::Fldr : Opcode::Ldr;
        auto consumed = consumePending(RegClass::Int);
        si.srcs[0] = consumed ? *consumed : pickSource(RegClass::Int);
        si.imm = static_cast<std::int64_t>(rng.below(256)) & ~7;
        di.effAddr = effAddr();
        bool single = false;
        RegClass dcls = fp ? RegClass::Float : RegClass::Int;
        si.dest = pickDest(dcls, single);
        if (single)
            armPending(dcls, si.dest);
    } else if (r < pSt) {
        bool fp = rng.chance(params.fpFraction);
        si.op = fp ? Opcode::Fstr : Opcode::Str;
        RegClass vcls = fp ? RegClass::Float : RegClass::Int;
        auto consumed = consumePending(vcls);
        si.srcs[0] = consumed ? *consumed : pickSource(vcls);
        si.srcs[1] = pickSource(RegClass::Int);
        si.imm = static_cast<std::int64_t>(rng.below(256)) & ~7;
        di.effAddr = effAddr();
    } else if (r < pFp) {
        // FP compute.
        const Opcode fpOps[] = {Opcode::Fadd, Opcode::Fsub, Opcode::Fmul,
                                Opcode::Fmul, Opcode::Fmadd};
        si.op = fpOps[rng.below(5)];
        PendingSingleUse &p = pending[static_cast<int>(RegClass::Float)];
        bool redefine = p.valid && p.redefine;
        isa::RegId consumedReg = p.reg;
        auto consumed = consumePending(RegClass::Float);
        si.srcs[0] = consumed ? *consumed : pickSource(RegClass::Float);
        si.srcs[1] = pickSource(RegClass::Float);
        if (si.numSrcs() == 3)
            si.srcs[2] = pickSource(RegClass::Float);
        bool single = false;
        if (consumed && redefine) {
            si.dest = consumedReg;
            single = rng.chance(params.singleUseFraction);
        } else {
            si.dest = pickDest(RegClass::Float, single);
        }
        if (single)
            armPending(RegClass::Float, si.dest);
    } else {
        // Integer compute.
        const Opcode intOps[] = {Opcode::Add, Opcode::Sub, Opcode::And,
                                 Opcode::Eor, Opcode::Lsl, Opcode::Mul};
        si.op = intOps[rng.below(6)];
        PendingSingleUse &p = pending[static_cast<int>(RegClass::Int)];
        bool redefine = p.valid && p.redefine;
        isa::RegId consumedReg = p.reg;
        auto consumed = consumePending(RegClass::Int);
        si.srcs[0] = consumed ? *consumed : pickSource(RegClass::Int);
        si.srcs[1] = pickSource(RegClass::Int);
        bool single = false;
        if (consumed && redefine) {
            si.dest = consumedReg;
            single = rng.chance(params.singleUseFraction);
        } else {
            si.dest = pickDest(RegClass::Int, single);
        }
        if (single)
            armPending(RegClass::Int, si.dest);
    }

    // Next PC: sequential, or the branch target when taken; wrap the
    // synthetic code footprint so PCs stay inside it.
    Addr seq_pc = pc + isa::instBytes;
    if (seq_pc >= codeEnd)
        seq_pc = isa::textBase;
    di.nextPc = (di.isControl() && di.taken) ? si.target : seq_pc;
    pc = di.nextPc;

    ++emitted;
    return di;
}

} // namespace rrs::trace
