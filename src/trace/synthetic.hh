/**
 * @file
 * Synthetic dynamic-instruction stream with controllable value-usage
 * statistics.  Used for property tests and for the ablation bench that
 * sweeps the single-use fraction directly (something no fixed workload
 * can do).
 *
 * The generator maintains a plausible machine-like structure: a
 * synthetic code footprint (so I-cache and branch predictor behaviour
 * is sane), strided + random data addresses, and register dataflow in
 * which a configurable fraction of produced values is consumed exactly
 * once by the next dependent instruction.
 */

#ifndef RRS_TRACE_SYNTHETIC_HH
#define RRS_TRACE_SYNTHETIC_HH

#include <string>

#include "common/random.hh"
#include "trace/dyninst.hh"

namespace rrs::trace {

/** Knobs for the synthetic stream. */
struct SyntheticParams
{
    std::uint64_t seed = 1;
    std::uint64_t numInsts = 1'000'000;

    double fpFraction = 0.3;       //!< fraction of FP compute ops
    double loadFraction = 0.2;     //!< fraction of loads
    double storeFraction = 0.1;    //!< fraction of stores
    double branchFraction = 0.12;  //!< fraction of conditional branches
    double takenFraction = 0.6;    //!< taken rate of those branches

    /**
     * Probability that a newly produced value is consumed exactly once,
     * by the next instruction that uses it as a source (single-use).
     */
    double singleUseFraction = 0.4;

    /**
     * Among single-use consumers, probability that the consumer also
     * redefines the source's logical register (the paper's guaranteed
     * no-younger-consumer case).
     */
    double redefFraction = 0.6;

    /** Distinct static instructions (code footprint / 4 bytes). */
    std::uint32_t staticFootprint = 4096;

    /** Data working-set size in bytes. */
    std::uint64_t dataFootprint = 1 << 20;
};

/** The generator; implements InstStream. */
class SyntheticStream : public InstStream
{
  public:
    explicit SyntheticStream(SyntheticParams params,
                             std::string name = "synthetic");

    std::optional<DynInst> next() override;
    void reset() override;
    const std::string &name() const override { return label; }

  private:
    isa::RegId pickSource(RegClass cls);
    isa::RegId pickDest(RegClass cls, bool &madeSingleUse);

    SyntheticParams params;
    std::string label;
    Random rng;
    std::uint64_t emitted = 0;
    Addr pc;
    Addr stride = 0;

    /**
     * Single-use plumbing: when the previous instruction's dest was
     * selected for single-use, the next compatible instruction must
     * consume it (once) and then the register is redefined.
     */
    struct PendingSingleUse
    {
        bool valid = false;
        isa::RegId reg;
        bool redefine = false;
    };
    PendingSingleUse pending[numRegClasses];
};

} // namespace rrs::trace

#endif // RRS_TRACE_SYNTHETIC_HH
