#include "recorded.hh"

#include <cstring>

#include "common/logging.hh"

namespace rrs::trace {

namespace {

constexpr std::uint64_t fnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t fnvPrime = 0x100000001b3ULL;

void
foldU64(std::uint64_t &h, std::uint64_t v)
{
    for (unsigned b = 0; b < 8; ++b) {
        h ^= static_cast<std::uint8_t>(v >> (8 * b));
        h *= fnvPrime;
    }
}

void
foldU8(std::uint64_t &h, std::uint8_t v)
{
    h ^= v;
    h *= fnvPrime;
}

void
foldReg(std::uint64_t &h, const isa::RegId &r)
{
    foldU8(h, static_cast<std::uint8_t>(r.cls));
    foldU64(h, r.idx);
}

} // namespace

void
RecordedTrace::foldInst(std::uint64_t &h, const DynInst &di)
{
    foldU64(h, di.seq);
    foldU64(h, di.pc);
    foldU8(h, static_cast<std::uint8_t>(di.si.op));
    foldReg(h, di.si.dest);
    for (const auto &s : di.si.srcs)
        foldReg(h, s);
    foldU64(h, static_cast<std::uint64_t>(di.si.imm));
    std::uint64_t fbits;
    std::memcpy(&fbits, &di.si.fimm, sizeof(fbits));
    foldU64(h, fbits);
    foldU64(h, di.si.target);
    foldU64(h, di.nextPc);
    foldU8(h, di.taken ? 1 : 0);
    foldU64(h, di.effAddr);
}

std::uint64_t
RecordedTrace::digestOf(const std::vector<DynInst> &insts)
{
    std::uint64_t h = fnvOffset;
    for (const DynInst &di : insts)
        foldInst(h, di);
    return h;
}

RecordedTrace::RecordedTrace(std::string workload, std::uint64_t cap,
                             std::uint64_t sourceHash,
                             std::vector<DynInst> insts)
    : workloadName(std::move(workload)),
      streamCap(cap),
      srcHash(sourceHash),
      records(std::move(insts)),
      contentDigest(digestOf(records))
{
}

const PackedTrace &
RecordedTrace::packed() const
{
    std::call_once(packOnce, [this] {
        packedCols = std::make_unique<PackedTrace>(records);
    });
    return *packedCols;
}

ReplayStream::ReplayStream(TracePtr trace) : src(std::move(trace))
{
    rrs_assert(src != nullptr, "replay stream needs a trace");
}

std::optional<DynInst>
ReplayStream::next()
{
    if (pos >= src->size())
        return std::nullopt;
    ++emitted;
    return (*src)[pos++];
}

const std::string &
ReplayStream::name() const
{
    return src->workload();
}

} // namespace rrs::trace
