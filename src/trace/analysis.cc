#include "analysis.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace rrs::trace {

namespace {

constexpr std::uint32_t none32 = std::numeric_limits<std::uint32_t>::max();

/** An open (not yet redefined) architectural value. */
struct OpenValue
{
    std::uint32_t producer = none32;   //!< index in window, none if live-in
    std::uint32_t readers = 0;         //!< distinct consuming instructions
    std::uint32_t firstReader = none32;
    bool firstReaderRedefines = false;
};

/** Per-instruction flags filled during attribution. */
struct InstRecord
{
    bool hasDest = false;
    bool soleConsumerRedef = false;
    bool soleConsumerOther = false;
    std::uint32_t reuseSrcProducer = none32;
};

} // namespace

double
UsageReport::fracSingleConsumerRedef() const
{
    return totalInsts ? static_cast<double>(singleConsumerRedef) /
                            static_cast<double>(totalInsts)
                      : 0.0;
}

double
UsageReport::fracSingleConsumerOther() const
{
    return totalInsts ? static_cast<double>(singleConsumerOther) /
                            static_cast<double>(totalInsts)
                      : 0.0;
}

double
UsageReport::fracSingleConsumer() const
{
    return fracSingleConsumerRedef() + fracSingleConsumerOther();
}

double
UsageReport::fracConsumers(std::uint64_t k) const
{
    if (!valuesConsumed)
        return 0.0;
    std::uint64_t c = 0;
    for (const auto &[count, n] : consumersPerValue) {
        if (count == 0)
            continue;
        if ((k < 6 && count == k) || (k >= 6 && count >= 6))
            c += n;
    }
    return static_cast<double>(c) / static_cast<double>(valuesConsumed);
}

double
UsageReport::fracReusable(int capIndex) const
{
    rrs_assert(capIndex >= 0 && capIndex < 4, "cap index 0..3");
    return destInsts
               ? static_cast<double>(
                     reusable[static_cast<std::size_t>(capIndex)]) /
                     static_cast<double>(destInsts)
               : 0.0;
}

std::array<double, 4>
UsageReport::reuseDepthBreakdown() const
{
    std::array<double, 4> out{};
    for (int i = 0; i < 4; ++i) {
        out[static_cast<std::size_t>(i)] =
            destInsts ? static_cast<double>(
                            reuseDepthCounts[static_cast<std::size_t>(i)]) /
                            static_cast<double>(destInsts)
                      : 0.0;
    }
    return out;
}

UsageReport
analyzeUsage(InstStream &stream, std::uint64_t maxInsts)
{
    UsageReport rep;
    rep.workload = stream.name();

    std::vector<InstRecord> recs;

    // One open value per (class, logical register).
    OpenValue open[numRegClasses][isa::numLogRegs];
    bool openValid[numRegClasses][isa::numLogRegs] = {};

    auto closeValue = [&](OpenValue &v) {
        rep.consumersPerValue[v.readers] += 1;
        ++rep.valuesClosed;
        if (v.readers >= 1)
            ++rep.valuesConsumed;
        if (v.readers == 1 && v.firstReader != none32) {
            InstRecord &r = recs[v.firstReader];
            if (v.firstReaderRedefines)
                r.soleConsumerRedef = true;
            else
                r.soleConsumerOther = true;
            // The consumer could reuse the producer's physical register,
            // provided it writes a register and the producer is inside
            // the analysis window.
            if (r.hasDest && v.producer != none32 &&
                r.reuseSrcProducer == none32) {
                r.reuseSrcProducer = v.producer;
            }
        }
    };

    std::optional<DynInst> di;
    while (recs.size() < maxInsts && (di = stream.next())) {
        const isa::StaticInst &si = di->si;
        auto idx = static_cast<std::uint32_t>(recs.size());
        recs.emplace_back();

        bool writes_reg = si.hasDest() &&
                          !(si.dest.cls == RegClass::Int &&
                            si.dest.idx == isa::zeroReg);
        recs.back().hasDest = writes_reg;
        ++rep.totalInsts;
        if (writes_reg)
            ++rep.destInsts;

        // Consume sources (dedupe repeated registers within the inst).
        for (int s = 0; s < si.numSrcs(); ++s) {
            const isa::RegId src = si.srcs[static_cast<std::size_t>(s)];
            if (src.cls == RegClass::Int && src.idx == isa::zeroReg)
                continue;
            bool dup = false;
            for (int t = 0; t < s; ++t) {
                if (si.srcs[static_cast<std::size_t>(t)] == src)
                    dup = true;
            }
            if (dup)
                continue;
            auto c = static_cast<std::size_t>(src.cls);
            OpenValue &v = open[c][src.idx];
            if (!openValid[c][src.idx]) {
                // Live-in value: open it with an unknown producer.
                v = OpenValue{};
                openValid[c][src.idx] = true;
            }
            if (v.readers == 0) {
                v.firstReader = idx;
                v.firstReaderRedefines =
                    writes_reg && si.dest == src;
            }
            ++v.readers;
        }

        // Redefinition closes the previous value of the dest register.
        if (writes_reg) {
            auto c = static_cast<std::size_t>(si.dest.cls);
            if (openValid[c][si.dest.idx])
                closeValue(open[c][si.dest.idx]);
            open[c][si.dest.idx] = OpenValue{.producer = idx,
                                             .readers = 0,
                                             .firstReader = none32,
                                             .firstReaderRedefines = false};
            openValid[c][si.dest.idx] = true;
        }
    }

    // Stream end closes every open value.
    for (std::size_t c = 0; c < numRegClasses; ++c) {
        for (std::size_t r = 0; r < isa::numLogRegs; ++r) {
            if (openValid[c][r])
                closeValue(open[c][r]);
        }
    }

    // Figure 1 instruction counts (deduped per instruction).
    for (const auto &r : recs) {
        if (r.soleConsumerRedef)
            ++rep.singleConsumerRedef;
        else if (r.soleConsumerOther)
            ++rep.singleConsumerOther;
    }

    // Figure 3: reuse-chain simulation under each cap.
    const std::uint32_t caps[4] = {1, 2, 3, 250};
    std::vector<std::uint8_t> depth(recs.size());
    for (int k = 0; k < 4; ++k) {
        std::fill(depth.begin(), depth.end(), 0);
        std::uint64_t reused = 0;
        for (std::uint32_t i = 0; i < recs.size(); ++i) {
            const InstRecord &r = recs[i];
            if (!r.hasDest || r.reuseSrcProducer == none32)
                continue;
            std::uint8_t d = depth[r.reuseSrcProducer];
            if (d < caps[k]) {
                depth[i] = static_cast<std::uint8_t>(
                    std::min<std::uint32_t>(d + 1u, 250u));
                ++reused;
                if (k == 3) {
                    // Exact-depth decomposition for the unlimited run.
                    std::uint32_t bucket =
                        std::min<std::uint32_t>(depth[i], 4u) - 1u;
                    ++rep.reuseDepthCounts[bucket];
                }
            }
        }
        rep.reusable[static_cast<std::size_t>(k)] = reused;
    }

    return rep;
}

} // namespace rrs::trace
