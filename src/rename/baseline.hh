/**
 * @file
 * Baseline register renaming: merged register file, allocate a fresh
 * physical register per destination, release the previous mapping when
 * the redefining instruction commits (paper Section II).  Squash
 * recovery uses a rename history buffer walked backwards, as in gem5's
 * O3 rename stage.
 */

#ifndef RRS_RENAME_BASELINE_HH
#define RRS_RENAME_BASELINE_HH

#include <deque>
#include <vector>

#include "rename/renamer.hh"

namespace rrs::rename {

class RenameAuditor;

/** Baseline renamer configuration. */
struct BaselineParams
{
    std::uint32_t intRegs = 128;
    std::uint32_t fpRegs = 128;
};

/** The conventional release-on-commit renamer. */
class BaselineRenamer : public Renamer
{
  public:
    explicit BaselineRenamer(const BaselineParams &params,
                             stats::Group *parent = nullptr);

    RenameResult rename(
        const trace::DynInst &di,
        const std::function<bool(const PhysRegTag &)> &producerExecuted =
            {}) override;

    void commit(const RenameResult &result) override;
    std::uint32_t squashTo(
        HistoryToken token,
        const std::function<bool(const PhysRegTag &)> &produced =
            {}) override;
    HistoryToken historyPosition() const override { return nextToken; }

    std::uint32_t freeRegs(RegClass cls) const override;
    std::uint32_t totalRegs(RegClass cls) const override;
    std::uint32_t maxVersions() const override { return 1; }

    /** Current speculative mapping (tests / debugging). */
    PhysRegTag mapping(RegClass cls, LogRegIndex reg) const override;

    /** Aggregate counters for reports. */
    double allocationCount() const { return allocations.value(); }
    double stallCount() const { return renameStalls.value(); }

    /** Largest number of history entries ever held at once. */
    std::uint64_t historyPeakEntries() const { return historyPeakCount; }

  private:
    friend class RenameAuditor;
    struct HistoryEntry
    {
        RegClass cls;
        LogRegIndex logReg;
        PhysRegIndex oldPhys;
        PhysRegIndex newPhys;
        PhysRegIndex releaseAtCommit;  //!< == oldPhys (freed on commit)
    };

    struct ClassState
    {
        std::vector<PhysRegIndex> map;        //!< spec map table
        std::vector<PhysRegIndex> freeList;
    };

    ClassState &state(RegClass cls)
    {
        return classes[static_cast<int>(cls)];
    }
    const ClassState &
    state(RegClass cls) const
    {
        return classes[static_cast<int>(cls)];
    }

    BaselineParams params;
    ClassState classes[numRegClasses];

    std::deque<HistoryEntry> history;
    HistoryToken historyBase = 0;   //!< token of history.front()
    HistoryToken nextToken = 0;
    std::uint64_t historyPeakCount = 0;      //!< lifetime peak size
    std::size_t historyPeakSinceShrink = 0;  //!< peak since last trim
    /** Committed-storage bound; see ReuseRenamer's twin. */
    static constexpr std::size_t historyShrinkThreshold = 4096;

    stats::Scalar allocations;
    stats::Scalar historyPeak;
    stats::Scalar releases;
    stats::Scalar renameStalls;
};

} // namespace rrs::rename

#endif // RRS_RENAME_BASELINE_HH
