#include "scheme.hh"

#include <mutex>

#include "common/logging.hh"

namespace rrs::rename {

namespace {

/** The baseline (merged-file, release-on-commit) scheme plugin. */
class BaselineScheme : public RenameScheme
{
  public:
    const std::string &
    name() const override
    {
        static const std::string n = "baseline";
        return n;
    }

    std::unique_ptr<Renamer>
    makeRenamer(const SchemeParams &params,
                stats::Group *parent) const override
    {
        return std::make_unique<BaselineRenamer>(params.baseline,
                                                 parent);
    }

    void
    configureEqualArea(SchemeParams &params,
                       std::uint32_t baselineRegs) const override
    {
        params.baseline = BaselineParams{baselineRegs, baselineRegs};
    }

    SchemeAreaDescriptor
    areaDescriptor(const SchemeParams &params) const override
    {
        SchemeAreaDescriptor d;
        d.intBanks = {params.baseline.intRegs, 0, 0, 0};
        d.fpBanks = {params.baseline.fpRegs, 0, 0, 0};
        return d;
    }

    SchemeCounters
    counters(const Renamer &renamer) const override
    {
        const auto *rn =
            dynamic_cast<const BaselineRenamer *>(&renamer);
        rrs_assert(rn, "baseline scheme asked to read counters of a "
                       "renamer it did not build");
        SchemeCounters c;
        c.allocations = rn->allocationCount();
        c.renameStalls = rn->stallCount();
        c.historyPeak = static_cast<double>(rn->historyPeakEntries());
        return c;
    }

    bool
    setParam(SchemeParams &params, const std::string &key,
             double value) const override
    {
        const auto v = static_cast<std::uint32_t>(value);
        if (key == "regs") {
            params.baseline.intRegs = v;
            params.baseline.fpRegs = v;
        } else if (key == "int_regs") {
            params.baseline.intRegs = v;
        } else if (key == "fp_regs") {
            params.baseline.fpRegs = v;
        } else {
            return false;
        }
        return true;
    }

    std::vector<std::string>
    paramKeys() const override
    {
        return {"regs", "int_regs", "fp_regs"};
    }
};

/** The paper's physical-register-sharing scheme plugin. */
class ReuseScheme : public RenameScheme
{
  public:
    const std::string &
    name() const override
    {
        static const std::string n = "reuse";
        return n;
    }

    std::unique_ptr<Renamer>
    makeRenamer(const SchemeParams &params,
                stats::Group *parent) const override
    {
        return std::make_unique<ReuseRenamer>(params.reuse, parent);
    }

    void
    configureEqualArea(SchemeParams &params,
                       std::uint32_t baselineRegs) const override
    {
        BankConfig banks = reuseEqualAreaBanks(baselineRegs);
        params.reuse.intBanks = banks;
        params.reuse.fpBanks = banks;
    }

    SchemeAreaDescriptor
    areaDescriptor(const SchemeParams &params) const override
    {
        SchemeAreaDescriptor d;
        d.intBanks = params.reuse.intBanks;
        d.fpBanks = params.reuse.fpBanks;
        d.prtCounterBits = params.reuse.counterBits;
        // Each of the two wakeup-matched source tags grows by the
        // version-counter width (paper: 4 extra bits at 2-bit
        // counters).
        d.iqExtraTagBits = 2u * params.reuse.counterBits;
        d.predictorEntries = params.reuse.predictor.entries;
        d.predictorBits = 2;
        return d;
    }

    SchemeCounters
    counters(const Renamer &renamer) const override
    {
        const auto *rn = dynamic_cast<const ReuseRenamer *>(&renamer);
        rrs_assert(rn, "reuse scheme asked to read counters of a "
                       "renamer it did not build");
        SchemeCounters c;
        c.allocations = rn->allocationCount();
        c.reuses = rn->reuseCount();
        c.repairs = rn->repairCount();
        c.renameStalls = rn->stallCount();
        c.historyPeak = static_cast<double>(rn->historyPeakEntries());
        c.fig12 = rn->fig12Counts();
        return c;
    }

    bool
    setParam(SchemeParams &params, const std::string &key,
             double value) const override
    {
        auto &p = params.reuse;
        if (key == "counter_bits") {
            p.counterBits = static_cast<std::uint8_t>(value);
        } else if (key == "predictor_entries") {
            p.predictor.entries = static_cast<std::uint32_t>(value);
        } else if (key == "reuse_non_redef") {
            p.reuseNonRedef = value != 0;
        } else if (key == "reuse_enabled") {
            p.reuseEnabled = value != 0;
        } else if (key == "non_redef_confidence") {
            p.nonRedefConfidence = static_cast<std::uint8_t>(value);
        } else if (key == "bank0" || key == "bank1" || key == "bank2" ||
                   key == "bank3") {
            const auto i = static_cast<std::size_t>(key[4] - '0');
            p.intBanks[i] = static_cast<std::uint32_t>(value);
            p.fpBanks[i] = static_cast<std::uint32_t>(value);
        } else {
            return false;
        }
        return true;
    }

    std::vector<std::string>
    paramKeys() const override
    {
        return {"counter_bits", "predictor_entries", "reuse_non_redef",
                "reuse_enabled", "non_redef_confidence", "bank0",
                "bank1", "bank2", "bank3"};
    }
};

/**
 * The registry.  Guarded by a mutex because sweep workers may resolve
 * schemes while a test registers an experimental one; lookups return
 * stable pointers (schemes are never unregistered).
 */
struct Registry
{
    std::mutex mu;
    std::vector<std::unique_ptr<RenameScheme>> schemes;
};

Registry &
registry()
{
    static Registry r;
    static std::once_flag builtins;
    std::call_once(builtins, [] {
        r.schemes.push_back(std::make_unique<BaselineScheme>());
        r.schemes.push_back(std::make_unique<ReuseScheme>());
    });
    return r;
}

} // namespace

const RenameScheme &
registerRenameScheme(std::unique_ptr<RenameScheme> scheme)
{
    rrs_assert(scheme != nullptr, "null rename scheme");
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (const auto &s : r.schemes) {
        if (s->name() == scheme->name())
            rrs_fatal("rename scheme '%s' registered twice",
                      scheme->name().c_str());
    }
    r.schemes.push_back(std::move(scheme));
    return *r.schemes.back();
}

const RenameScheme *
findRenameScheme(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (const auto &s : r.schemes) {
        if (s->name() == name)
            return s.get();
    }
    return nullptr;
}

const RenameScheme &
renameScheme(const std::string &name)
{
    const RenameScheme *s = findRenameScheme(name);
    if (!s) {
        std::string known;
        for (const auto &n : registeredRenameSchemes())
            known += (known.empty() ? "" : ", ") + n;
        rrs_fatal("unknown rename scheme '%s' (registered: %s)",
                  name.c_str(), known.c_str());
    }
    return *s;
}

std::vector<std::string>
registeredRenameSchemes()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<std::string> names;
    names.reserve(r.schemes.size());
    for (const auto &s : r.schemes)
        names.push_back(s->name());
    return names;
}

const std::vector<EqualAreaPreset> &
reuseEqualAreaPresets(bool paperPreset)
{
    // Paper Table III: baseline size -> {0-sh, 1-sh, 2-sh, 3-sh}.
    static const std::vector<EqualAreaPreset> paper = {
        {48, {28, 4, 4, 4}},
        {56, {28, 6, 6, 6}},
        {64, {36, 6, 6, 6}},
        {72, {36, 8, 8, 8}},
        {80, {42, 8, 8, 8}},
        {96, {58, 8, 8, 8}},
        {112, {75, 8, 8, 8}},
    };
    // Shadow-bank shapes follow this repo's Fig. 9 study (depth-1
    // reuse dominates); bank 0 is solved for equal area with the
    // calibrated model: at the core's 12R/6W port counts a shadow cell
    // costs ~0.11 of a fully-ported register bit-for-bit.
    static const std::vector<EqualAreaPreset> tuned = {
        {48, {34, 8, 2, 2}},
        {56, {39, 8, 3, 3}},
        {64, {47, 8, 3, 3}},
        {72, {53, 10, 3, 3}},
        {80, {61, 10, 3, 3}},
        {96, {72, 12, 4, 4}},
        {112, {88, 12, 4, 4}},
    };
    return paperPreset ? paper : tuned;
}

BankConfig
reuseEqualAreaBanks(std::uint32_t baselineRegs, bool paperPreset)
{
    const auto &rows = reuseEqualAreaPresets(paperPreset);
    const EqualAreaPreset *best = nullptr;
    for (const auto &row : rows) {
        if (row.baselineRegs == baselineRegs)
            return row.banks;
        auto dist = [&](const EqualAreaPreset &r) {
            return r.baselineRegs > baselineRegs
                       ? r.baselineRegs - baselineRegs
                       : baselineRegs - r.baselineRegs;
        };
        if (!best || dist(row) < dist(*best))
            best = &row;
    }
    rrs_assert(best != nullptr, "no equal-area presets");
    return best->banks;
}

} // namespace rrs::rename
