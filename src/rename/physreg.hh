/**
 * @file
 * Physical register identities for the rename stage.
 *
 * The proposed scheme names a value as (physical register, version):
 * the version is the PRT's N-bit counter appended to the register ID so
 * the issue queue can distinguish the multiple values that share one
 * physical register (paper Section IV-A).  The baseline scheme uses
 * version 0 everywhere.
 */

#ifndef RRS_RENAME_PHYSREG_HH
#define RRS_RENAME_PHYSREG_HH

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.hh"

namespace rrs::rename {

/** A versioned physical register tag, the wakeup identity in the IQ. */
struct PhysRegTag
{
    RegClass cls = RegClass::Int;
    PhysRegIndex reg = invalidRegIndex;
    std::uint8_t version = 0;

    bool valid() const { return reg != invalidRegIndex; }
    bool operator==(const PhysRegTag &) const = default;

    /** Debug rendering: P<reg>.<version> (or P<reg> for version 0). */
    std::string
    toString() const
    {
        if (!valid())
            return "-";
        std::string s = (cls == RegClass::Int ? "P" : "FP") +
                        std::to_string(reg);
        s += "." + std::to_string(version);
        return s;
    }
};

/** Dense scoreboard index for a tag (cls x reg x version). */
struct TagIndexer
{
    std::uint32_t regsPerClass;
    std::uint32_t maxVersions;

    std::uint32_t
    operator()(const PhysRegTag &tag) const
    {
        return (static_cast<std::uint32_t>(tag.cls) * regsPerClass +
                tag.reg) * maxVersions + tag.version;
    }

    std::uint32_t
    size() const
    {
        return numRegClasses * regsPerClass * maxVersions;
    }
};

} // namespace rrs::rename

#endif // RRS_RENAME_PHYSREG_HH
