/**
 * @file
 * Rename-stage invariant auditor.
 *
 * The paper's whole result rests on bookkeeping invariants the renamer
 * maintains incrementally: PRT reference counts must equal the number
 * of map entries naming a register, the free lists must partition the
 * unallocated registers, and version counters must never exceed a
 * bank's shadow-cell capacity (Section IV, Fig. 4b).  The auditor
 * recomputes every one of those properties from scratch from the map
 * tables and compares against the renamer's incremental state, the way
 * gem5's O3 debug machinery cross-checks its rename maps.
 *
 * Usage: attach a RenameAuditor to the core (O3Core::setAuditor) and
 * pick trigger points — every commit, every N cycles, and always after
 * squash / exception recovery.  check() panics with a full structured
 * report on the first violation, so a CI failure names the register,
 * the invariant, and the expected/actual values.  audit() returns the
 * report instead, which is what the fault-injection tests use to
 * assert that each seeded fault class is caught.
 */

#ifndef RRS_RENAME_AUDIT_HH
#define RRS_RENAME_AUDIT_HH

#include <string>
#include <vector>

#include "rename/renamer.hh"

namespace rrs::rename {

class BaselineRenamer;
class ReuseRenamer;

/** The invariants the auditor can report against. */
enum class AuditInvariant : std::uint8_t {
    SpecRefCount,     //!< specRefs != spec map entries naming the reg
    RetRefCount,      //!< retRefs != retirement map entries naming it
    FreeListPartition,//!< reg not in exactly one of free list/allocated
    CounterCapacity,  //!< version counter > bank shadow capacity
    CounterWidth,     //!< version counter overflows its N-bit field
    CounterAllocated, //!< counter > 0 on an unallocated register
    HistorySize,      //!< history size != nextToken - historyBase
    StaleBit,         //!< stale flag inconsistent with the PRT counter
    VersionRange,     //!< a map entry names a version beyond the counter
    ReadBitUses,      //!< read bit inconsistent with use count
    FreeEntryState,   //!< a free register still carries live state
};

const char *toString(AuditInvariant inv);

/** One violated invariant, with enough context to act on. */
struct AuditViolation
{
    AuditInvariant invariant;
    RegClass cls = RegClass::Int;
    PhysRegIndex phys = invalidRegIndex;  //!< or invalid (global checks)
    std::string detail;                   //!< expected vs actual

    std::string toString() const;
};

/** The result of one full audit pass. */
struct AuditReport
{
    std::vector<AuditViolation> violations;

    bool clean() const { return violations.empty(); }

    /** Shorthand: does any violation name this invariant? */
    bool names(AuditInvariant inv) const;

    /** Multi-line rendering of every violation. */
    std::string toString() const;
};

/**
 * Walks a renamer and verifies the full invariant set.  Stateless but
 * for its counters, so one auditor can serve any number of audits (it
 * holds no reference to the renamer it checks).
 */
class RenameAuditor : public stats::Group
{
  public:
    explicit RenameAuditor(stats::Group *parent = nullptr);

    /** Audit either renamer type (dispatched on the concrete type). */
    AuditReport audit(const Renamer &renamer);
    AuditReport audit(const ReuseRenamer &renamer);
    AuditReport audit(const BaselineRenamer &renamer);

    /**
     * Audit and panic on the first violation, printing the whole
     * report plus `where` (the trigger point).  This is the CI-facing
     * entry: any violation fails the run loudly and actionably.
     */
    void check(const Renamer &renamer, const char *where);

    /** Cumulative counters (also exported as stats). */
    double auditCount() const { return auditsRun.value(); }
    double violationCount() const { return violationsFound.value(); }

  private:
    stats::Scalar auditsRun;
    stats::Scalar violationsFound;
};

} // namespace rrs::rename

#endif // RRS_RENAME_AUDIT_HH
