/**
 * @file
 * The renamer interface shared by the baseline merged-register-file
 * scheme and the proposed physical-register-sharing scheme.
 *
 * Protocol with the core:
 *  - rename() is called once per instruction in program order.  On a
 *    structural stall (no free register and no reuse) it returns
 *    success == false with NO side effects; the core retries next
 *    cycle.
 *  - The returned RenameResult is stored in the instruction's ROB entry
 *    and handed back verbatim to commit() or used for squashes.
 *  - squashTo(token) undoes every rename action with history position
 *    >= token (i.e. the squashed instruction and everything younger).
 *  - commit() retires the instruction's rename actions (releases the
 *    previous mapping, trains predictors) and garbage-collects history.
 */

#ifndef RRS_RENAME_RENAMER_HH
#define RRS_RENAME_RENAMER_HH

#include <array>
#include <cstdint>

#include "rename/physreg.hh"
#include "stats/stats.hh"
#include "trace/dyninst.hh"

namespace rrs::rename {

/** Position in the renamer's history buffer (absolute, monotonic). */
using HistoryToken = std::uint64_t;

/** Output of renaming one instruction. */
struct RenameResult
{
    bool success = false;         //!< false: structural stall, retry

    std::array<PhysRegTag, 3> srcTags{};  //!< versioned source tags
    std::uint8_t numSrcTags = 0;

    PhysRegTag destTag;           //!< versioned destination tag
    bool hasDest = false;

    bool reused = false;          //!< dest shares a source's register
    std::uint8_t reuseDepth = 0;  //!< version after reuse (1..maxV-1)

    /**
     * Single-use misprediction repair (paper Fig. 8): number of move
     * micro-ops the rename stage must inject before this instruction
     * (0 if no repair; 1 per repair if the overwriting producer had not
     * executed; 3 if the old value had to be recovered from a shadow
     * cell).
     */
    std::uint8_t repairUops = 0;

    /** One repair action (proposed scheme only). */
    struct RepairInfo
    {
        isa::RegId logReg;    //!< logical register being repaired
        PhysRegTag fromTag;   //!< stale (overwritten) versioned value
        PhysRegTag toTag;     //!< fresh register the value moves to
        std::uint8_t uops;    //!< move micro-ops charged
    };
    std::array<RepairInfo, 3> repairList{};
    std::uint8_t numRepairs = 0;

    /** Destination logical register (for retirement map update). */
    isa::RegId destReg;

    /** History positions covering this instruction's rename actions. */
    HistoryToken token = 0;      //!< history position before renaming
    HistoryToken endToken = 0;   //!< history position after renaming
};

/** Rename-stall cause, for the paper's bottleneck accounting. */
enum class RenameStall : std::uint8_t {
    None,
    NoFreeReg,
};

/**
 * Release-time classification of a scheme's reuse predictions (paper
 * Fig. 12).  Schemes without a reuse predictor report all zeros.
 */
struct PredictorBreakdown
{
    double reuseCorrect = 0;
    double reuseWrong = 0;
    double noReuseCorrect = 0;
    double noReuseWrong = 0;
    double total() const
    {
        return reuseCorrect + reuseWrong + noReuseCorrect +
               noReuseWrong;
    }
};

/** Abstract renamer. */
class Renamer : public stats::Group
{
  public:
    Renamer(const std::string &name, stats::Group *parent)
        : stats::Group(name, parent) {}

    /**
     * Rename one instruction.
     * @param di the dynamic instruction
     * @param producerExecuted callback: has the producer of the current
     *        version of a register executed yet?  Used to cost repair
     *        micro-ops; may be empty for analyses that don't care.
     */
    virtual RenameResult rename(
        const trace::DynInst &di,
        const std::function<bool(const PhysRegTag &)> &producerExecuted =
            {}) = 0;

    /** Retire an instruction's rename actions, in program order. */
    virtual void commit(const RenameResult &result) = 0;

    /**
     * Undo every rename action at history position >= token.
     * @param produced callback: has this versioned register value
     *        actually been written to the register file?  Only
     *        overwritten (produced) versions need a shadow-cell recover
     *        command; squashed never-executed producers left the main
     *        cell untouched.  An empty callback counts every undone
     *        reuse (conservative).
     * @return number of shadow-cell recover commands required (always 0
     *         for the baseline), which the core converts into recovery
     *         cycles.
     */
    virtual std::uint32_t squashTo(
        HistoryToken token,
        const std::function<bool(const PhysRegTag &)> &produced = {}) = 0;

    /** Current history position (token for "squash nothing"). */
    virtual HistoryToken historyPosition() const = 0;

    /**
     * Current speculative mapping of a logical register.  Part of the
     * scheme contract so the conformance kit and the auditor can
     * snapshot and diff the map table of any scheme.
     */
    virtual PhysRegTag mapping(RegClass cls, LogRegIndex reg) const = 0;

    /** Free registers available right now in a class. */
    virtual std::uint32_t freeRegs(RegClass cls) const = 0;

    /** Total physical registers in a class (any bank). */
    virtual std::uint32_t totalRegs(RegClass cls) const = 0;

    /**
     * Physical registers currently holding more than one value
     * (version counter >= 1).  Always 0 for the baseline; the
     * observability sampler records this per interval.
     */
    virtual std::uint32_t sharedRegs(RegClass) const { return 0; }

    /**
     * Registers whose current version counter is >= k (the Fig. 9
     * sampling series).  Always 0 for schemes without sharing.
     */
    virtual std::uint32_t sharedAtLeast(RegClass, std::uint8_t) const
    {
        return 0;
    }

    /** Maximum versions a tag can carry (1 for the baseline). */
    virtual std::uint32_t maxVersions() const = 0;

    /**
     * Committed logical registers whose value currently lives in a
     * shadow cell (recover commands needed on a full flush).  Zero for
     * the baseline.
     */
    virtual std::uint32_t committedShadowValues() const { return 0; }

    /** Scoreboard indexer sized for this renamer's register space. */
    TagIndexer
    tagIndexer() const
    {
        std::uint32_t regs = std::max(totalRegs(RegClass::Int),
                                      totalRegs(RegClass::Float));
        return TagIndexer{regs, maxVersions()};
    }

    /**
     * True if the instruction's dest actually allocates/renames: calls
     * write the link register, xzr dests are discarded.
     */
    static bool
    writesReg(const trace::DynInst &di)
    {
        return di.si.hasDest() &&
               !(di.si.dest.cls == RegClass::Int &&
                 di.si.dest.idx == isa::zeroReg);
    }

    /** True if source s is a real register read (not xzr). */
    static bool
    readsReg(const trace::DynInst &di, int s)
    {
        const isa::RegId &r = di.si.srcs[static_cast<std::size_t>(s)];
        return !(r.cls == RegClass::Int && r.idx == isa::zeroReg);
    }
};

} // namespace rrs::rename

#endif // RRS_RENAME_RENAMER_HH
