/**
 * @file
 * The pluggable rename-scheme interface and its factory registry.
 *
 * The paper compares two rename policies (conventional rename and
 * physical-register sharing); the ROADMAP's next scheme families
 * (read-port-count reduction, versioned-tag chaining) must slot in
 * without touching the core or the benches.  A RenameScheme bundles
 * everything the harness needs to run a policy it has never heard of:
 *
 *  - a factory producing the scheme's Renamer from a SchemeParams
 *    block (the core drives the Renamer protocol as before);
 *  - an equal-area configurator mapping a baseline register-file size
 *    to this scheme's same-area configuration (paper Table III);
 *  - an area descriptor pricing the scheme's structures so the area
 *    model can compare schemes at equal silicon;
 *  - a generic counter extractor feeding the harness Outcome;
 *  - declarative parameter setters so sweep matrices (JSON) can
 *    express per-scheme ablations without C++ loops;
 *  - an auditability flag gating the RRS_AUDIT invariant auditor.
 *
 * Schemes are registered by name in a process-wide registry; run
 * configurations select one with a string key.  Every registered
 * scheme automatically inherits the cross-scheme conformance suite
 * (tests/scheme_conformance_test.cpp), which enumerates the registry.
 */

#ifndef RRS_RENAME_SCHEME_HH
#define RRS_RENAME_SCHEME_HH

#include <memory>
#include <string>
#include <vector>

#include "rename/baseline.hh"
#include "rename/reuse.hh"

namespace rrs::rename {

/**
 * Union of every scheme family's parameter block.  A scheme reads only
 * its own member; carrying all of them keeps RunConfig a plain value
 * type (copyable, sweepable) without per-scheme templates.  New scheme
 * families add a member here.
 */
struct SchemeParams
{
    BaselineParams baseline;
    ReuseRenamerParams reuse;
};

/** Generic per-run counters a scheme reports into the Outcome. */
struct SchemeCounters
{
    double allocations = 0;
    double reuses = 0;       //!< 0 for schemes without sharing
    double repairs = 0;      //!< 0 for schemes without repair
    double renameStalls = 0;
    double historyPeak = 0;  //!< peak rename-history entries
    PredictorBreakdown fig12;
};

/**
 * What a scheme contributes to the area model: its register-file
 * organisation plus the side structures it adds.  Plain scalars so the
 * area layer can price it without depending on rename types
 * (area::AreaModel::schemeArea consumes this shape field by field).
 */
struct SchemeAreaDescriptor
{
    /** banks[i]: registers with i embedded shadow cells, per class. */
    std::array<std::uint32_t, 4> intBanks{};
    std::array<std::uint32_t, 4> fpBanks{};

    std::uint32_t prtCounterBits = 0;   //!< 0: no PRT
    std::uint32_t iqExtraTagBits = 0;   //!< extra CAM bits per IQ entry
    std::uint32_t predictorEntries = 0; //!< 0: no predictor
    std::uint32_t predictorBits = 0;    //!< bits per predictor entry
};

/** A pluggable rename scheme (stateless; a factory plus metadata). */
class RenameScheme
{
  public:
    virtual ~RenameScheme() = default;

    /** Registry key, e.g. "baseline" or "reuse". */
    virtual const std::string &name() const = 0;

    /** Build this scheme's renamer from its parameter block. */
    virtual std::unique_ptr<Renamer>
    makeRenamer(const SchemeParams &params,
                stats::Group *parent = nullptr) const = 0;

    /**
     * Configure `params` so this scheme occupies the same area as a
     * conventional file of `baselineRegs` registers per class (the
     * paper's Table III mapping; the baseline scheme just takes the
     * size).
     */
    virtual void configureEqualArea(SchemeParams &params,
                                    std::uint32_t baselineRegs) const = 0;

    /** Price this configuration for the area model. */
    virtual SchemeAreaDescriptor
    areaDescriptor(const SchemeParams &params) const = 0;

    /** Extract the generic counters from a renamer this scheme built. */
    virtual SchemeCounters counters(const Renamer &renamer) const = 0;

    /**
     * Apply one declarative "key: value" override from a sweep matrix.
     * @return false if the key is not one of paramKeys() (the matrix
     *         parser turns that into a config-parse-time error).
     */
    virtual bool setParam(SchemeParams &params, const std::string &key,
                          double value) const = 0;

    /** The keys setParam() accepts, for diagnostics. */
    virtual std::vector<std::string> paramKeys() const = 0;

    /**
     * Whether the RRS_AUDIT invariant auditor understands this
     * scheme's bookkeeping (rename/audit.hh).  Schemes that return
     * true are audit-checked at every trigger point in Debug CI.
     */
    virtual bool auditable() const { return true; }
};

/**
 * Register a scheme under its name().  Fatal on a duplicate name —
 * silent shadowing would corrupt sweep results.  Returns the
 * registered scheme for convenience.  Thread-safe; built-in schemes
 * (baseline, reuse) are registered on first registry access.
 */
const RenameScheme &registerRenameScheme(
    std::unique_ptr<RenameScheme> scheme);

/**
 * Factory lookup, typed-absence flavour: nullptr when `name` is not
 * registered.  This is the config-parse-time check — resolve the
 * scheme before a sweep starts so an unknown name is a clean
 * diagnostic, never a crash mid-sweep.
 */
const RenameScheme *findRenameScheme(const std::string &name);

/** Factory lookup that fatals with the registered names on a miss. */
const RenameScheme &renameScheme(const std::string &name);

/** Names of every registered scheme, in registration order. */
std::vector<std::string> registeredRenameSchemes();

/**
 * The reuse scheme's equal-area rows (paper Table III / this repo's
 * tuned rows), exposed for the Table III bench and the equal-area
 * solver.  Nearest row wins when `baselineRegs` is not a sweep point.
 */
BankConfig reuseEqualAreaBanks(std::uint32_t baselineRegs,
                               bool paperPreset = false);

/** One equal-area row: baseline size -> 4-bank organisation. */
struct EqualAreaPreset
{
    std::uint32_t baselineRegs;
    BankConfig banks;
};

/** The full preset tables behind reuseEqualAreaBanks(). */
const std::vector<EqualAreaPreset> &
reuseEqualAreaPresets(bool paperPreset);

} // namespace rrs::rename

#endif // RRS_RENAME_SCHEME_HH
