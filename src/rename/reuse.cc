#include "reuse.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rrs::rename {

ReuseRenamer::ReuseRenamer(const ReuseRenamerParams &params,
                           stats::Group *parent)
    : Renamer("rename", parent), params(params),
      typePred(params.predictor, this),
      allocations(this, "allocations", "fresh physical registers allocated"),
      historyPeak(this, "historyPeak",
                  "largest rename-history footprint (entries)"),
      reuses(this, "reuses", "destinations renamed by register sharing"),
      reuseDepthDist(this, "reuseDepth", "version reached by each reuse"),
      renameStalls(this, "renameStalls",
                   "stalls: no free register and no reuse possible"),
      repairEvents(this, "repairEvents", "single-use misprediction repairs"),
      repairUopsTotal(this, "repairUops", "repair move micro-ops injected"),
      shadowExhausted(this, "shadowExhausted",
                      "reuses blocked by exhausted shadow cells"),
      releasesNatural(this, "releases", "registers released (non-squash)"),
      predReuseCorrect(this, "predReuseCorrect",
                       "released regs predicted reused and reused"),
      predReuseWrong(this, "predReuseWrong",
                     "released regs predicted reused but not (or multi-use)"),
      predNoReuseCorrect(this, "predNoReuseCorrect",
                         "released regs predicted normal, correctly"),
      predNoReuseWrong(this, "predNoReuseWrong",
                       "released regs predicted normal but were single-use")
{
    rrs_assert(params.counterBits >= 1 && params.counterBits <= 4,
               "counter width must be 1..4 bits");
    for (int c = 0; c < numRegClasses; ++c) {
        auto cls = static_cast<RegClass>(c);
        const BankConfig &banks = bankConfig(cls);
        ClassState &st = classes[c];
        st.total = banks[0] + banks[1] + banks[2] + banks[3];
        rrs_assert(st.total >= isa::numLogRegs + 1,
                   "register file too small for the architected state");

        st.prt.resize(st.total);
        std::uint32_t p = 0;
        for (int b = 0; b < 4; ++b) {
            for (std::uint32_t i = 0; i < banks[static_cast<size_t>(b)];
                 ++i, ++p) {
                st.prt[p].bank = static_cast<std::uint8_t>(b);
            }
        }

        st.specMap.resize(isa::numLogRegs);
        st.retMap.resize(isa::numLogRegs);
        for (LogRegIndex r = 0; r < isa::numLogRegs; ++r) {
            PhysRegTag tag{cls, r, 0};
            st.specMap[r] = MapEntry{tag, false};
            st.retMap[r] = tag;
            st.prt[r].allocated = true;
            st.prt[r].specRefs = 1;
            st.prt[r].retRefs = 1;
        }
        // Everything above the architected state is free, grouped by
        // bank; pop from the back so low indices go out first.
        for (std::uint32_t q = st.total; q > isa::numLogRegs; --q) {
            auto phys = static_cast<PhysRegIndex>(q - 1);
            st.freeLists[st.prt[phys].bank].push_back(phys);
        }
    }
}

std::uint32_t
ReuseRenamer::totalRegs(RegClass cls) const
{
    return state(cls).total;
}

std::uint32_t
ReuseRenamer::freeRegs(RegClass cls) const
{
    const ClassState &st = state(cls);
    std::uint32_t n = 0;
    for (const auto &fl : st.freeLists)
        n += static_cast<std::uint32_t>(fl.size());
    return n;
}

bool
ReuseRenamer::anyFree(RegClass cls) const
{
    return freeRegs(cls) > 0;
}

std::uint32_t
ReuseRenamer::bankInUse(RegClass cls, int bank) const
{
    const ClassState &st = state(cls);
    const BankConfig &banks = bankConfig(cls);
    return banks[static_cast<size_t>(bank)] -
           static_cast<std::uint32_t>(
               st.freeLists[static_cast<size_t>(bank)].size());
}

std::uint32_t
ReuseRenamer::sharedAtLeast(RegClass cls, std::uint8_t k) const
{
    const ClassState &st = state(cls);
    std::uint32_t n = 0;
    for (const auto &e : st.prt) {
        if (e.allocated && e.counter >= k)
            ++n;
    }
    return n;
}

PhysRegTag
ReuseRenamer::mapping(RegClass cls, LogRegIndex reg) const
{
    return state(cls).specMap[reg].tag;
}

std::uint32_t
ReuseRenamer::committedShadowValues() const
{
    std::uint32_t n = 0;
    for (int c = 0; c < numRegClasses; ++c) {
        const ClassState &st = classes[c];
        for (LogRegIndex r = 0; r < isa::numLogRegs; ++r) {
            const PhysRegTag &tag = st.retMap[r];
            if (st.prt[tag.reg].counter > tag.version)
                ++n;
        }
    }
    return n;
}

PhysRegIndex
ReuseRenamer::allocFromBank(RegClass cls, std::uint8_t wantBank)
{
    ClassState &st = state(cls);
    // Closest-first search in shadow-capacity order; ties resolved
    // towards cheaper banks (fewer shadow cells).
    for (int dist = 0; dist < 4; ++dist) {
        for (int sign : {-1, +1}) {
            int b = static_cast<int>(wantBank) + sign * dist;
            if (b < 0 || b > 3)
                continue;
            auto &fl = st.freeLists[static_cast<size_t>(b)];
            if (!fl.empty()) {
                PhysRegIndex phys = fl.back();
                fl.pop_back();
                return phys;
            }
            if (dist == 0)
                break;   // +0 and -0 are the same bank
        }
    }
    // Exhausted: hand the caller an invalid index instead of dying.
    // rename() unwinds its partial work and reports a structural
    // stall, which the core charges to renameStallNoReg.
    return invalidRegIndex;
}

void
ReuseRenamer::pushHistory(const HistoryEntry &h)
{
    history.push_back(h);
    ++nextToken;
    if (history.size() > historyPeakSinceShrink)
        historyPeakSinceShrink = history.size();
    if (history.size() > historyPeakCount) {
        historyPeakCount = history.size();
        historyPeak = static_cast<double>(historyPeakCount);
    }
}

void
ReuseRenamer::maybeRelease(RegClass cls, PhysRegIndex phys, bool fromSquash)
{
    ClassState &st = state(cls);
    PrtEntry &e = st.prt[phys];
    if (!e.allocated || e.specRefs > 0 || e.retRefs > 0)
        return;

    if (!fromSquash) {
        ++releasesNatural;
        // Figure 12 classification and predictor training.
        if (e.bank > 0) {
            if (e.counter > 0 && !e.multiUse)
                ++predReuseCorrect;
            else
                ++predReuseWrong;
        } else {
            if (e.totalUses == 1)
                ++predNoReuseWrong;
            else
                ++predNoReuseCorrect;
        }
        if (e.predIndex != noPred) {
            bool missed = e.counter == 0 && e.totalUses == 1 &&
                          !e.reuseImpossible;
            typePred.trainOnRelease(e.predIndex, e.bank, e.counter,
                                    e.multiUse, missed);
        }
    }

    e.readBit = false;
    e.counter = 0;
    e.usesCurVersion = 0;
    e.multiUse = false;
    e.reuseImpossible = false;
    e.totalUses = 0;
    e.predIndex = noPred;
    e.allocated = false;
    st.freeLists[e.bank].push_back(phys);
}

void
ReuseRenamer::dropSpecRef(RegClass cls, PhysRegIndex phys, bool fromSquash)
{
    PrtEntry &e = state(cls).prt[phys];
    rrs_assert(e.specRefs > 0, "spec refcount underflow");
    --e.specRefs;
    // A rename-time unmapping must NOT free the register even if both
    // counts are zero: older in-flight consumers may still hold its
    // versioned tags.  The register is freed either when the squash
    // path undoes its allocation (no consumers can survive a squash of
    // the allocator) or when retirement references drain at commit
    // (in-order commit guarantees all consumers are done) — the latter
    // is exactly the conservative release-on-commit rule for unshared
    // registers.
    if (fromSquash)
        maybeRelease(cls, phys, true);
}

void
ReuseRenamer::dropRetRef(RegClass cls, PhysRegIndex phys)
{
    PrtEntry &e = state(cls).prt[phys];
    rrs_assert(e.retRefs > 0, "retirement refcount underflow");
    --e.retRefs;
    maybeRelease(cls, phys, false);
}

void
ReuseRenamer::specMapWrite(RegClass cls, LogRegIndex logReg,
                           MapEntry entry, bool fromSquash)
{
    ClassState &st = state(cls);
    MapEntry old = st.specMap[logReg];
    if (!fromSquash) {
        HistoryEntry h;
        h.kind = HistKind::MapWrite;
        h.cls = cls;
        h.logReg = logReg;
        h.prevEntry = old;
        pushHistory(h);
    }
    st.specMap[logReg] = entry;
    ++st.prt[entry.tag.reg].specRefs;
    dropSpecRef(cls, old.tag.reg, fromSquash);
}

RenameResult
ReuseRenamer::rename(
    const trace::DynInst &di,
    const std::function<bool(const PhysRegTag &)> &producerExecuted)
{
    RenameResult res;
    res.token = nextToken;
    res.endToken = nextToken;

    const bool writes = writesReg(di);
    const isa::RegId destReg = di.si.dest;

    // ---- Phase 1: read-only feasibility and decision making ----
    struct SrcInfo
    {
        isa::RegId reg;
        MapEntry cur;
        bool stale = false;
        bool wasFirstConsumer = false;
        std::array<int, 3> slots{};   //!< operand slots using this reg
        int numSlots = 0;
    };
    std::array<SrcInfo, 3> srcs{};
    int numSrcs = 0;

    for (int s = 0; s < di.si.numSrcs(); ++s) {
        if (!readsReg(di, s))
            continue;
        const isa::RegId reg = di.si.srcs[static_cast<std::size_t>(s)];
        bool merged = false;
        for (int t = 0; t < numSrcs; ++t) {
            if (srcs[static_cast<size_t>(t)].reg == reg) {
                auto &info = srcs[static_cast<size_t>(t)];
                info.slots[static_cast<size_t>(info.numSlots++)] = s;
                merged = true;
                break;
            }
        }
        if (merged)
            continue;
        SrcInfo &info = srcs[static_cast<size_t>(numSrcs++)];
        info.reg = reg;
        info.cur = state(reg.cls).specMap[reg.idx];
        info.stale = info.cur.stale;
        info.slots[0] = s;
        info.numSlots = 1;
    }

    // Allocation demand per class: one per stale source (repair) plus
    // possibly one for the destination.
    std::uint32_t needAlloc[numRegClasses] = {0, 0};
    for (int t = 0; t < numSrcs; ++t) {
        if (srcs[static_cast<size_t>(t)].stale)
            ++needAlloc[static_cast<int>(
                srcs[static_cast<size_t>(t)].reg.cls)];
    }

    // Reuse decision: prefer the guaranteed (redefining) source.
    int reuseSrc = -1;
    int exhaustedSrc = -1;
    if (writes && params.reuseEnabled) {
        const std::uint8_t maxCtr =
            static_cast<std::uint8_t>((1u << params.counterBits) - 1);
        auto consider = [&](int t) {
            const SrcInfo &info = srcs[static_cast<size_t>(t)];
            if (info.stale || info.reg.cls != destReg.cls)
                return;
            const PrtEntry &e =
                state(info.reg.cls).prt[info.cur.tag.reg];
            if (e.readBit)
                return;   // not the first consumer
            const bool is_redef = info.reg == destReg;
            const bool allowed =
                is_redef ||
                (params.reuseNonRedef && e.predIndex != noPred &&
                 typePred.value(e.predIndex) >=
                     params.nonRedefConfidence);
            if (!allowed)
                return;
            if (e.counter >= maxCtr)
                return;   // version counter saturated
            if (e.counter >= e.bank) {
                // Single-use and reusable, but no shadow cell left.
                if (exhaustedSrc < 0)
                    exhaustedSrc = t;
                return;
            }
            if (reuseSrc < 0)
                reuseSrc = t;
        };
        // Pass 1: redefining sources; pass 2: the rest.
        for (int t = 0; t < numSrcs; ++t) {
            if (srcs[static_cast<size_t>(t)].reg == destReg)
                consider(t);
        }
        if (reuseSrc < 0) {
            for (int t = 0; t < numSrcs; ++t) {
                if (!(srcs[static_cast<size_t>(t)].reg == destReg))
                    consider(t);
            }
        }
    }
    if (writes && reuseSrc < 0)
        ++needAlloc[static_cast<int>(destReg.cls)];

    for (int c = 0; c < numRegClasses; ++c) {
        if (needAlloc[c] > freeRegs(static_cast<RegClass>(c))) {
            ++renameStalls;
            res.success = false;
            return res;
        }
    }

    // ---- Phase 2: mutate state ----

    // Repairs of stale sources (single-use mispredictions, Fig. 8).
    for (int t = 0; t < numSrcs; ++t) {
        SrcInfo &info = srcs[static_cast<size_t>(t)];
        if (!info.stale)
            continue;
        RegClass cls = info.reg.cls;
        ClassState &st = state(cls);
        PrtEntry &shared = st.prt[info.cur.tag.reg];

        // The overwriting producer holds the current version.
        PhysRegTag current{cls, info.cur.tag.reg, shared.counter};
        bool executed =
            producerExecuted ? producerExecuted(current) : true;
        auto uops = static_cast<std::uint8_t>(executed ? 3 : 1);

        // Detection marks the shared register multi-use and resets the
        // mispredicting predictor entry.  The multi-use flag is
        // speculative state: record it so a squash of this instruction
        // restores it exactly (the predictor reset is deliberately not
        // undone — like branch-predictor state, training on squashed
        // work is harmless noise).
        HistoryEntry mark;
        mark.kind = HistKind::RepairMark;
        mark.cls = cls;
        mark.phys = info.cur.tag.reg;
        mark.prevMultiUse = shared.multiUse;
        pushHistory(mark);
        shared.multiUse = true;
        if (shared.predIndex != noPred) {
            typePred.trainOnRelease(shared.predIndex, shared.bank,
                                    shared.counter, true);
        }

        PhysRegIndex fresh =
            allocFromBank(cls, typePred.predict(di.pc));
        if (fresh == invalidRegIndex) {
            // Unreachable via the Phase-1 feasibility check, but a
            // guarded fallback beats a panic: undo the partial work
            // (and its stats) and report a structural stall.
            squashTo(res.token);
            repairEvents += -static_cast<double>(res.numRepairs);
            repairUopsTotal += -static_cast<double>(res.repairUops);
            ++renameStalls;
            RenameResult stall;
            stall.token = res.token;
            stall.endToken = res.token;
            return stall;
        }
        PrtEntry &fe = st.prt[fresh];
        fe.allocated = true;
        fe.predIndex = typePred.indexFor(di.pc);
        PhysRegTag toTag{cls, fresh, 0};

        // Re-point the logical register (clears the stale flag).
        specMapWrite(cls, info.reg.idx, MapEntry{toTag, false}, false);

        auto &rep = res.repairList[res.numRepairs++];
        rep.logReg = info.reg;
        rep.fromTag = info.cur.tag;
        rep.toTag = toTag;
        rep.uops = uops;
        res.repairUops = static_cast<std::uint8_t>(res.repairUops + uops);
        ++repairEvents;
        repairUopsTotal += uops;

        info.cur = MapEntry{toTag, false};
        info.stale = false;
    }

    // Source reads: set read bits, bump use counts, record history.
    for (int t = 0; t < numSrcs; ++t) {
        SrcInfo &info = srcs[static_cast<size_t>(t)];
        ClassState &st = state(info.reg.cls);
        PrtEntry &e = st.prt[info.cur.tag.reg];

        HistoryEntry h;
        h.kind = HistKind::SrcRead;
        h.cls = info.reg.cls;
        h.phys = info.cur.tag.reg;
        h.prevReadBit = e.readBit;
        h.prevUses = e.usesCurVersion;
        h.prevReuseImpossible = e.reuseImpossible;
        pushHistory(h);

        info.wasFirstConsumer = !e.readBit;
        e.readBit = true;
        if (e.usesCurVersion < 255)
            ++e.usesCurVersion;
        ++e.totalUses;
        if (e.usesCurVersion > 1)
            e.multiUse = true;
        // Training hint: if this (first) consumer structurally cannot
        // share the register — it writes nothing, writes another
        // class, or is about to reuse a different source — then the
        // value going unshared must not train the predictor towards a
        // shadow bank.
        if (info.wasFirstConsumer &&
            (!writes || destReg.cls != info.reg.cls ||
             (reuseSrc >= 0 && reuseSrc != t))) {
            e.reuseImpossible = true;
        }

        for (int k = 0; k < info.numSlots; ++k) {
            res.srcTags[static_cast<size_t>(
                info.slots[static_cast<size_t>(k)])] = info.cur.tag;
        }
    }
    res.numSrcTags = di.si.numSrcs();

    // Destination.
    if (writes) {
        RegClass cls = destReg.cls;
        ClassState &st = state(cls);
        if (reuseSrc >= 0) {
            SrcInfo &info = srcs[static_cast<size_t>(reuseSrc)];
            PhysRegIndex phys = info.cur.tag.reg;
            PrtEntry &e = st.prt[phys];
            rrs_assert(info.wasFirstConsumer,
                       "reuse source must be first consumer");

            HistoryEntry h;
            h.kind = HistKind::ReuseBump;
            h.cls = cls;
            h.phys = phys;
            h.prevReadBit = e.readBit;          // true (we just read it)
            h.prevUses = e.usesCurVersion;
            h.staleLogReg = (info.reg == destReg) ? invalidRegIndex
                                                  : info.reg.idx;
            pushHistory(h);

            std::uint8_t newVersion =
                static_cast<std::uint8_t>(e.counter + 1);
            e.counter = newVersion;
            e.readBit = false;
            e.usesCurVersion = 0;

            if (!(info.reg == destReg)) {
                // The source logical register still names the old
                // version: mark it stale so a later consumer triggers
                // the repair path.
                st.specMap[info.reg.idx].stale = true;
            }

            PhysRegTag tag{cls, phys, newVersion};
            specMapWrite(cls, destReg.idx, MapEntry{tag, false}, false);
            res.destTag = tag;
            res.reused = true;
            res.reuseDepth = newVersion;
            ++reuses;
            reuseDepthDist.sample(newVersion);
        } else {
            if (exhaustedSrc >= 0) {
                const SrcInfo &info =
                    srcs[static_cast<size_t>(exhaustedSrc)];
                const PrtEntry &e = state(info.reg.cls)
                                        .prt[info.cur.tag.reg];
                if (e.predIndex != noPred)
                    typePred.trainOnShadowExhausted(e.predIndex);
                ++shadowExhausted;
            }
            PhysRegIndex fresh =
                allocFromBank(cls, typePred.predict(di.pc));
            if (fresh == invalidRegIndex) {
                // See the repair-loop fallback: unwind and stall
                // instead of panicking on an empty class.
                squashTo(res.token);
                repairEvents += -static_cast<double>(res.numRepairs);
                repairUopsTotal += -static_cast<double>(res.repairUops);
                if (exhaustedSrc >= 0)
                    shadowExhausted += -1.0;
                ++renameStalls;
                RenameResult stall;
                stall.token = res.token;
                stall.endToken = res.token;
                return stall;
            }
            PrtEntry &fe = st.prt[fresh];
            fe.allocated = true;
            fe.predIndex = typePred.indexFor(di.pc);
            PhysRegTag tag{cls, fresh, 0};
            specMapWrite(cls, destReg.idx, MapEntry{tag, false}, false);
            res.destTag = tag;
            ++allocations;
        }
        res.hasDest = true;
        res.destReg = destReg;
    }

    res.success = true;
    res.endToken = nextToken;
    return res;
}

void
ReuseRenamer::commit(const RenameResult &result)
{
    rrs_assert(result.endToken >= historyBase,
               "commit of already-collected history");
    while (historyBase < result.endToken) {
        rrs_assert(!history.empty(), "history underflow at commit");
        history.pop_front();
        ++historyBase;
    }
    // Bound committed storage: after draining a spike (a long ROB
    // stall grows the deque far past its steady state), return the
    // spare chunks to the allocator rather than carrying the peak
    // footprint for the rest of the run.
    if (history.empty() &&
        historyPeakSinceShrink > historyShrinkThreshold) {
        history.shrink_to_fit();
        historyPeakSinceShrink = 0;
    }

    // Retirement map: repairs first (older), then the destination.
    for (int r = 0; r < result.numRepairs; ++r) {
        const auto &rep = result.repairList[static_cast<size_t>(r)];
        RegClass cls = rep.logReg.cls;
        ClassState &st = state(cls);
        PhysRegTag old = st.retMap[rep.logReg.idx];
        st.retMap[rep.logReg.idx] = rep.toTag;
        ++st.prt[rep.toTag.reg].retRefs;
        dropRetRef(cls, old.reg);
    }
    if (result.hasDest) {
        RegClass cls = result.destReg.cls;
        ClassState &st = state(cls);
        PhysRegTag old = st.retMap[result.destReg.idx];
        st.retMap[result.destReg.idx] = result.destTag;
        ++st.prt[result.destTag.reg].retRefs;
        dropRetRef(cls, old.reg);
    }
}

std::uint32_t
ReuseRenamer::squashTo(
    HistoryToken token,
    const std::function<bool(const PhysRegTag &)> &produced)
{
    rrs_assert(token >= historyBase, "squash into committed history");
    std::uint32_t recoveries = 0;
    while (nextToken > token) {
        rrs_assert(!history.empty(), "history underflow at squash");
        const HistoryEntry h = history.back();
        history.pop_back();
        --nextToken;
        ClassState &st = state(h.cls);
        switch (h.kind) {
          case HistKind::SrcRead: {
            PrtEntry &e = st.prt[h.phys];
            e.readBit = h.prevReadBit;
            e.usesCurVersion = h.prevUses;
            e.reuseImpossible = h.prevReuseImpossible;
            // Exact inverse of the unguarded ++ at rename: a register
            // with a live SrcRead entry cannot have been released
            // (in-order commit pops the entry first), so the count
            // must still include this read.
            rrs_assert(e.totalUses > 0, "source-read undo underflow");
            --e.totalUses;
            break;
          }
          case HistKind::MapWrite: {
            MapEntry cur = st.specMap[h.logReg];
            st.specMap[h.logReg] = h.prevEntry;
            ++st.prt[h.prevEntry.tag.reg].specRefs;
            dropSpecRef(h.cls, cur.tag.reg, true);
            break;
          }
          case HistKind::ReuseBump: {
            PrtEntry &e = st.prt[h.phys];
            rrs_assert(e.counter > 0, "reuse undo with zero counter");
            // A recover command is only needed when the squashed
            // version was actually written to the main cell (its
            // producer executed); otherwise the old value is still in
            // place.
            PhysRegTag squashed{h.cls, h.phys, e.counter};
            if (!produced || produced(squashed))
                ++recoveries;
            --e.counter;
            e.readBit = h.prevReadBit;
            e.usesCurVersion = h.prevUses;
            if (h.staleLogReg != invalidRegIndex)
                st.specMap[h.staleLogReg].stale = false;
            break;
          }
          case HistKind::RepairMark: {
            st.prt[h.phys].multiUse = h.prevMultiUse;
            break;
          }
        }
    }
    return recoveries;
}

bool
ReuseRenamer::injectFault(InjectedFault fault, RegClass cls)
{
    ClassState &st = state(cls);
    switch (fault) {
      case InjectedFault::FlipReadBit:
        for (auto &e : st.prt) {
            if (e.allocated) {
                e.readBit = !e.readBit;
                return true;
            }
        }
        return false;
      case InjectedFault::LeakFreeReg:
        for (auto &fl : st.freeLists) {
            if (!fl.empty()) {
                fl.pop_back();   // discarded: now in neither place
                return true;
            }
        }
        return false;
      case InjectedFault::SkipRefDrop:
        // The bug this models: a map write whose dropSpecRef never
        // ran, leaving the old register's count one too high.
        for (LogRegIndex r = 0; r < isa::numLogRegs; ++r) {
            PhysRegIndex p = st.specMap[r].tag.reg;
            if (p < st.total) {
                ++st.prt[p].specRefs;
                return true;
            }
        }
        return false;
      case InjectedFault::DoubleFree:
        for (auto &fl : st.freeLists) {
            if (!fl.empty()) {
                fl.push_back(fl.back());
                return true;
            }
        }
        return false;
    }
    return false;
}

} // namespace rrs::rename
