/**
 * @file
 * The register type predictor (paper Section IV-D and Figure 7).
 *
 * A PC-hash-indexed table of 2-bit entries predicting, for the register
 * an instruction is about to allocate, how many times it will be
 * reused: 00 = normal register (no reuse expected), 01/10/11 = allocate
 * in the bank with 1/2/3 shadow cells.
 *
 * Training (paper rules):
 *  - on release, if not all allocated shadow copies were used, the
 *    entry is decremented;
 *  - if a register predicted single-use sees more than one consumer,
 *    the entry is reset to zero;
 *  - if a reuse attempt fails for lack of shadow cells, the entry is
 *    incremented so the next allocation gets a bigger bank.
 */

#ifndef RRS_RENAME_PREDICTOR_HH
#define RRS_RENAME_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "stats/stats.hh"

namespace rrs::rename {

/** Predictor configuration. */
struct TypePredictorParams
{
    std::uint32_t entries = 512;   //!< paper: 512 x 2 bits = 1 Kbit
};

/** The register type predictor. */
class RegisterTypePredictor : public stats::Group
{
  public:
    explicit RegisterTypePredictor(const TypePredictorParams &params,
                                   stats::Group *parent = nullptr);

    /** Table index for an instruction PC. */
    std::uint32_t indexFor(Addr pc) const;

    /** Predicted bank (0..3 == number of shadow cells) for a PC. */
    std::uint8_t predict(Addr pc) const;

    /** Raw entry access by index (the PRT remembers the index). */
    std::uint8_t value(std::uint32_t index) const
    {
        return table[index];
    }

    /**
     * Release-time training: the register allocated through `index`
     * into a bank with `allocatedShadow` cells was actually reused
     * `actualReuses` times and (if predicted single-use) may have been
     * observed multi-use.
     * @param singleUseMissed the register died with exactly one
     *        consumer but was never shared (a missed reuse): raise the
     *        entry so the next allocation from this PC gets a shadow
     *        bank.
     */
    void trainOnRelease(std::uint32_t index, std::uint8_t allocatedShadow,
                        std::uint8_t actualReuses, bool multiUseDetected,
                        bool singleUseMissed = false);

    /** A reuse failed because the bank had no free shadow cell left. */
    void trainOnShadowExhausted(std::uint32_t index);

    /** Number of entries (tests). */
    std::uint32_t entries() const
    {
        return static_cast<std::uint32_t>(table.size());
    }

  private:
    std::vector<std::uint8_t> table;

    mutable stats::Scalar predictions;
    stats::Scalar decrements;
    stats::Scalar resets;
    stats::Scalar increments;
};

} // namespace rrs::rename

#endif // RRS_RENAME_PREDICTOR_HH
