/**
 * @file
 * The paper's register renaming scheme with physical register sharing
 * (Section IV).
 *
 * Key structures:
 *  - Physical Register Table (PRT): per physical register, a Read bit
 *    (has the current version seen a renamed consumer?) and an N-bit
 *    version counter, plus bookkeeping this model needs (bank id,
 *    predictor index, reference counts).
 *  - Versioned map tables: the speculative and retirement map tables
 *    hold (physical register, version) pairs; the issue queue wakes up
 *    consumers by full versioned tag.
 *  - Four-bank register file: banks provide 0/1/2/3 embedded shadow
 *    cells; a register can be reused only while it has shadow capacity
 *    left and its version counter is not saturated.
 *  - Register type predictor: chooses the allocation bank and doubles
 *    as the single-use predictor for non-redefining reuse.
 *
 * Release policy: physical registers are reference-counted by map
 * entries (speculative + retirement).  For unshared registers this
 * degenerates to the baseline's release-on-commit of the redefiner;
 * for shared registers it delays release until every logical register
 * whose (possibly stale) mapping still names the register has moved
 * on — which is precisely what keeps shadow-cell recovery sound.
 *
 * Single-use misprediction (Fig. 8): a source whose map version is
 * older than the PRT counter was overwritten by a reuse.  The renamer
 * allocates a fresh register, reports 1 or 3 repair micro-ops
 * (depending on whether the overwriting producer already executed) and
 * re-points the logical register.
 */

#ifndef RRS_RENAME_REUSE_HH
#define RRS_RENAME_REUSE_HH

#include <array>
#include <deque>
#include <vector>

#include "rename/predictor.hh"
#include "rename/renamer.hh"

namespace rrs::rename {

class RenameAuditor;

/** Per-class bank sizes: index == number of embedded shadow cells. */
using BankConfig = std::array<std::uint32_t, 4>;

/** Configuration of the proposed renamer. */
struct ReuseRenamerParams
{
    BankConfig intBanks{58, 8, 8, 8};
    BankConfig fpBanks{58, 8, 8, 8};
    std::uint8_t counterBits = 2;          //!< version counter width
    TypePredictorParams predictor;
    bool reuseNonRedef = true;   //!< ablation: predictor-driven reuse
    bool reuseEnabled = true;    //!< ablation: disable sharing entirely
    /**
     * Minimum predictor entry value before a non-redefining consumer
     * speculatively reuses a source register (higher = fewer repairs).
     */
    std::uint8_t nonRedefConfidence = 1;
};

/** The proposed renamer. */
class ReuseRenamer : public Renamer
{
  public:
    explicit ReuseRenamer(const ReuseRenamerParams &params,
                          stats::Group *parent = nullptr);

    RenameResult rename(
        const trace::DynInst &di,
        const std::function<bool(const PhysRegTag &)> &producerExecuted =
            {}) override;

    void commit(const RenameResult &result) override;
    std::uint32_t squashTo(
        HistoryToken token,
        const std::function<bool(const PhysRegTag &)> &produced =
            {}) override;
    HistoryToken historyPosition() const override { return nextToken; }

    std::uint32_t freeRegs(RegClass cls) const override;
    std::uint32_t totalRegs(RegClass cls) const override;
    std::uint32_t
    maxVersions() const override
    {
        return 1u << params.counterBits;
    }

    /** Registers currently in use (not free) in a bank (Fig. 9). */
    std::uint32_t bankInUse(RegClass cls, int bank) const;

    /** Registers whose current version counter is >= k (Fig. 9). */
    std::uint32_t sharedAtLeast(RegClass cls,
                                std::uint8_t k) const override;

    std::uint32_t
    sharedRegs(RegClass cls) const override
    {
        return sharedAtLeast(cls, 1);
    }

    /** Current speculative mapping (tests / debugging). */
    PhysRegTag mapping(RegClass cls, LogRegIndex reg) const override;

    /** The predictor (tests / ablations). */
    RegisterTypePredictor &predictor() { return typePred; }

    /** Figure 12 release-time classification counts. */
    using Fig12Counts = PredictorBreakdown;
    Fig12Counts
    fig12Counts() const
    {
        return Fig12Counts{predReuseCorrect.value(),
                           predReuseWrong.value(),
                           predNoReuseCorrect.value(),
                           predNoReuseWrong.value()};
    }

    /** Aggregate counters for reports. */
    double allocationCount() const { return allocations.value(); }
    double reuseCount() const { return reuses.value(); }
    double repairCount() const { return repairEvents.value(); }
    double stallCount() const { return renameStalls.value(); }
    const stats::Distribution &reuseDepths() const
    {
        return reuseDepthDist;
    }

    /**
     * Number of committed logical registers whose value would need a
     * shadow-cell recover command if the pipeline flushed right now
     * (retirement mappings whose version is older than the PRT
     * counter).  Used to charge exception-recovery cycles.
     */
    std::uint32_t committedShadowValues() const;

    /** Largest number of history entries ever held at once. */
    std::uint64_t historyPeakEntries() const { return historyPeakCount; }

    /**
     * Fault-injection seam for the invariant auditor's own tests.
     * Each fault class corrupts the bookkeeping the way a real
     * release-policy bug would; the auditor must catch every one
     * (tests/rename_audit_test.cpp).  Never called outside tests.
     */
    enum class InjectedFault : std::uint8_t {
        FlipReadBit,   //!< toggle an allocated register's PRT read bit
        LeakFreeReg,   //!< pop a free-list entry and drop it on the floor
        SkipRefDrop,   //!< leave a stale spec refcount behind
        DoubleFree,    //!< push an already-free register again
    };

    /** @return false if the current state offers no injection target. */
    bool injectFault(InjectedFault fault, RegClass cls = RegClass::Int);

  private:
    friend class RenameAuditor;
    static constexpr std::uint32_t noPred = 0xffffffff;

    /** PRT entry plus model bookkeeping. */
    struct PrtEntry
    {
        // Architected PRT state (paper Fig. 4b).
        bool readBit = false;
        std::uint8_t counter = 0;       //!< current version

        // Structural attributes.
        std::uint8_t bank = 0;          //!< shadow cells available

        // Bookkeeping.
        std::uint32_t predIndex = noPred; //!< predictor entry at alloc
        std::uint8_t usesCurVersion = 0;  //!< consumers of current version
        bool multiUse = false;            //!< any version saw >1 consumer
        /**
         * The first consumer could never have shared this register
         * (no destination, wrong class, or it reused a different
         * source): going unshared was not a predictor miss.
         */
        bool reuseImpossible = false;
        std::uint32_t totalUses = 0;      //!< consumers across versions
        std::uint16_t specRefs = 0;       //!< spec map entries naming it
        std::uint16_t retRefs = 0;        //!< retirement map entries
        bool allocated = false;
    };

    /** A (tag, staleness) map entry. */
    struct MapEntry
    {
        PhysRegTag tag;
        bool stale = false;   //!< version older than the PRT counter
    };

    enum class HistKind : std::uint8_t {
        SrcRead,     //!< read-bit / use-count change on a source
        MapWrite,    //!< speculative map update (alloc, reuse or repair)
        ReuseBump,   //!< PRT counter increment on a reuse
        RepairMark,  //!< repair detection flagged the shared register
    };

    struct HistoryEntry
    {
        HistKind kind;
        RegClass cls;
        // SrcRead / ReuseBump / RepairMark: the physical register.
        PhysRegIndex phys = invalidRegIndex;
        // SrcRead: previous state.
        bool prevReadBit = false;
        std::uint8_t prevUses = 0;
        // SrcRead: training-hint flag before this read (a squashed
        // first read must not leave the hint behind).
        bool prevReuseImpossible = false;
        // RepairMark: multi-use flag before the repair detection.
        bool prevMultiUse = false;
        // MapWrite: the logical register and its previous entry.
        LogRegIndex logReg = invalidRegIndex;
        MapEntry prevEntry;
        // ReuseBump: source logical register marked stale (or invalid).
        LogRegIndex staleLogReg = invalidRegIndex;
    };

    struct ClassState
    {
        std::vector<MapEntry> specMap;
        std::vector<PhysRegTag> retMap;
        std::array<std::vector<PhysRegIndex>, 4> freeLists;
        std::vector<PrtEntry> prt;
        std::uint32_t total = 0;
    };

    ClassState &state(RegClass cls)
    {
        return classes[static_cast<int>(cls)];
    }
    const ClassState &
    state(RegClass cls) const
    {
        return classes[static_cast<int>(cls)];
    }

    const BankConfig &
    bankConfig(RegClass cls) const
    {
        return cls == RegClass::Int ? params.intBanks : params.fpBanks;
    }

    /** Free-list pop honouring the predicted bank, closest-first. */
    PhysRegIndex allocFromBank(RegClass cls, std::uint8_t wantBank);

    /** Any free register at all in the class? */
    bool anyFree(RegClass cls) const;

    /** Drop a reference; frees the register when fully unreferenced. */
    void dropSpecRef(RegClass cls, PhysRegIndex phys, bool fromSquash);
    void dropRetRef(RegClass cls, PhysRegIndex phys);
    void maybeRelease(RegClass cls, PhysRegIndex phys, bool fromSquash);

    /** Write the speculative map with reference accounting + history. */
    void specMapWrite(RegClass cls, LogRegIndex logReg, MapEntry entry,
                      bool fromSquash);

    /** Append a history entry, tracking the peak footprint. */
    void pushHistory(const HistoryEntry &h);

    ReuseRenamerParams params;
    ClassState classes[numRegClasses];
    RegisterTypePredictor typePred;

    std::deque<HistoryEntry> history;
    HistoryToken historyBase = 0;
    HistoryToken nextToken = 0;
    std::uint64_t historyPeakCount = 0;      //!< lifetime peak size
    std::size_t historyPeakSinceShrink = 0;  //!< peak since last trim
    /**
     * Committed-storage bound: once the deque drains after having
     * grown past this many entries (a long ROB stall), give the spare
     * chunks back instead of carrying the peak footprint forever.
     */
    static constexpr std::size_t historyShrinkThreshold = 4096;

    stats::Scalar allocations;
    stats::Scalar historyPeak;
    stats::Scalar reuses;
    stats::Distribution reuseDepthDist;
    stats::Scalar renameStalls;
    stats::Scalar repairEvents;
    stats::Scalar repairUopsTotal;
    stats::Scalar shadowExhausted;
    stats::Scalar releasesNatural;
    // Figure 12 categories, classified at natural release.
    stats::Scalar predReuseCorrect;
    stats::Scalar predReuseWrong;
    stats::Scalar predNoReuseCorrect;
    stats::Scalar predNoReuseWrong;
};

} // namespace rrs::rename

#endif // RRS_RENAME_REUSE_HH
