#include "audit.hh"

#include <cstdio>

#include "common/logging.hh"
#include "rename/baseline.hh"
#include "rename/reuse.hh"

namespace rrs::rename {

const char *
toString(AuditInvariant inv)
{
    switch (inv) {
      case AuditInvariant::SpecRefCount:      return "specRefCount";
      case AuditInvariant::RetRefCount:       return "retRefCount";
      case AuditInvariant::FreeListPartition: return "freeListPartition";
      case AuditInvariant::CounterCapacity:   return "counterCapacity";
      case AuditInvariant::CounterWidth:      return "counterWidth";
      case AuditInvariant::CounterAllocated:  return "counterAllocated";
      case AuditInvariant::HistorySize:       return "historySize";
      case AuditInvariant::StaleBit:          return "staleBit";
      case AuditInvariant::VersionRange:      return "versionRange";
      case AuditInvariant::ReadBitUses:       return "readBitUses";
      case AuditInvariant::FreeEntryState:    return "freeEntryState";
    }
    return "unknown";
}

std::string
AuditViolation::toString() const
{
    std::string where = phys == invalidRegIndex
                            ? std::string("<global>")
                            : (std::string(regClassName(cls)) + " P" +
                               std::to_string(phys));
    return formatString("[%s] %s: %s", rename::toString(invariant),
                        where.c_str(), detail.c_str());
}

bool
AuditReport::names(AuditInvariant inv) const
{
    for (const auto &v : violations) {
        if (v.invariant == inv)
            return true;
    }
    return false;
}

std::string
AuditReport::toString() const
{
    if (clean())
        return "audit clean";
    std::string out;
    for (const auto &v : violations) {
        out += v.toString();
        out += '\n';
    }
    return out;
}

namespace {

void
add(AuditReport &report, AuditInvariant inv, RegClass cls,
    PhysRegIndex phys, std::string detail)
{
    report.violations.push_back(
        AuditViolation{inv, cls, phys, std::move(detail)});
}

} // namespace

RenameAuditor::RenameAuditor(stats::Group *parent)
    : stats::Group("audit", parent),
      auditsRun(this, "audits", "full invariant audits executed"),
      violationsFound(this, "violations", "invariant violations found")
{
}

AuditReport
RenameAuditor::audit(const Renamer &renamer)
{
    if (auto *reuse = dynamic_cast<const ReuseRenamer *>(&renamer))
        return audit(*reuse);
    if (auto *base = dynamic_cast<const BaselineRenamer *>(&renamer))
        return audit(*base);
    rrs_panic("RenameAuditor: unknown renamer type");
}

AuditReport
RenameAuditor::audit(const ReuseRenamer &rn)
{
    ++auditsRun;
    AuditReport report;
    const std::uint8_t maxCtr =
        static_cast<std::uint8_t>((1u << rn.params.counterBits) - 1);

    for (int c = 0; c < numRegClasses; ++c) {
        const auto cls = static_cast<RegClass>(c);
        const ReuseRenamer::ClassState &st = rn.classes[c];

        // Reference counts recomputed from the map tables.
        std::vector<std::uint32_t> specCount(st.total, 0);
        std::vector<std::uint32_t> retCount(st.total, 0);
        for (LogRegIndex r = 0; r < isa::numLogRegs; ++r) {
            const ReuseRenamer::MapEntry &e = st.specMap[r];
            const PhysRegTag &ret = st.retMap[r];
            if (e.tag.reg < st.total)
                ++specCount[e.tag.reg];
            if (ret.reg < st.total)
                ++retCount[ret.reg];

            // Map-entry-level checks against the PRT.
            if (e.tag.reg < st.total) {
                const auto &pe = st.prt[e.tag.reg];
                if (e.tag.version > pe.counter) {
                    add(report, AuditInvariant::VersionRange, cls,
                        e.tag.reg,
                        formatString("spec map r%u names version %u but "
                                     "counter is %u",
                                     r, e.tag.version, pe.counter));
                }
                const bool expectStale = pe.counter > e.tag.version;
                if (e.stale != expectStale) {
                    add(report, AuditInvariant::StaleBit, cls, e.tag.reg,
                        formatString("spec map r%u: stale=%d but counter "
                                     "%u vs version %u implies stale=%d",
                                     r, e.stale ? 1 : 0, pe.counter,
                                     e.tag.version, expectStale ? 1 : 0));
                }
            } else {
                add(report, AuditInvariant::SpecRefCount, cls, e.tag.reg,
                    formatString("spec map r%u names out-of-range P%u",
                                 r, e.tag.reg));
            }
            if (ret.reg < st.total) {
                const auto &pe = st.prt[ret.reg];
                if (ret.version > pe.counter) {
                    add(report, AuditInvariant::VersionRange, cls,
                        ret.reg,
                        formatString("ret map r%u names version %u but "
                                     "counter is %u",
                                     r, ret.version, pe.counter));
                }
            } else {
                add(report, AuditInvariant::RetRefCount, cls, ret.reg,
                    formatString("ret map r%u names out-of-range P%u",
                                 r, ret.reg));
            }
        }

        // Free lists: in-range, unique, home bank, unallocated.
        std::vector<std::uint8_t> inFree(st.total, 0);
        for (int b = 0; b < 4; ++b) {
            for (PhysRegIndex p : st.freeLists[static_cast<size_t>(b)]) {
                if (p >= st.total) {
                    add(report, AuditInvariant::FreeListPartition, cls, p,
                        formatString("free list %d holds out-of-range "
                                     "P%u (total %u)", b, p, st.total));
                    continue;
                }
                if (inFree[p]) {
                    add(report, AuditInvariant::FreeListPartition, cls, p,
                        formatString("P%u appears on a free list twice "
                                     "(double free)", p));
                }
                inFree[p] = 1;
                if (st.prt[p].bank != b) {
                    add(report, AuditInvariant::FreeListPartition, cls, p,
                        formatString("P%u (bank %u) sits on free list "
                                     "%d", p, st.prt[p].bank, b));
                }
            }
        }

        // Per-register PRT checks.
        for (PhysRegIndex p = 0; p < st.total; ++p) {
            const auto &pe = st.prt[p];

            if (pe.allocated == static_cast<bool>(inFree[p])) {
                add(report, AuditInvariant::FreeListPartition, cls, p,
                    pe.allocated
                        ? formatString("P%u is allocated AND on a free "
                                       "list", p)
                        : formatString("P%u is neither allocated nor on "
                                       "a free list (leak)", p));
            }

            if (pe.specRefs != specCount[p]) {
                add(report, AuditInvariant::SpecRefCount, cls, p,
                    formatString("specRefs=%u but %u spec map entries "
                                 "name P%u", pe.specRefs, specCount[p],
                                 p));
            }
            if (pe.retRefs != retCount[p]) {
                add(report, AuditInvariant::RetRefCount, cls, p,
                    formatString("retRefs=%u but %u ret map entries "
                                 "name P%u", pe.retRefs, retCount[p],
                                 p));
            }

            if (pe.counter > pe.bank) {
                add(report, AuditInvariant::CounterCapacity, cls, p,
                    formatString("counter %u exceeds the %u shadow "
                                 "cells of bank %u", pe.counter,
                                 pe.bank, pe.bank));
            }
            if (pe.counter > maxCtr) {
                add(report, AuditInvariant::CounterWidth, cls, p,
                    formatString("counter %u overflows the %u-bit "
                                 "field (max %u)", pe.counter,
                                 rn.params.counterBits, maxCtr));
            }
            if (pe.counter > 0 && !pe.allocated) {
                add(report, AuditInvariant::CounterAllocated, cls, p,
                    formatString("counter %u on unallocated P%u",
                                 pe.counter, p));
            }

            if (pe.allocated &&
                pe.readBit != (pe.usesCurVersion > 0)) {
                add(report, AuditInvariant::ReadBitUses, cls, p,
                    formatString("readBit=%d but usesCurVersion=%u",
                                 pe.readBit ? 1 : 0, pe.usesCurVersion));
            }

            if (!pe.allocated &&
                (pe.counter != 0 || pe.specRefs != 0 ||
                 pe.retRefs != 0 || pe.readBit ||
                 pe.usesCurVersion != 0 || pe.totalUses != 0 ||
                 pe.multiUse || pe.reuseImpossible ||
                 pe.predIndex != ReuseRenamer::noPred)) {
                add(report, AuditInvariant::FreeEntryState, cls, p,
                    formatString("free P%u carries live state (ctr=%u "
                                 "spec=%u ret=%u read=%d uses=%u "
                                 "total=%u)", p, pe.counter, pe.specRefs,
                                 pe.retRefs, pe.readBit ? 1 : 0,
                                 pe.usesCurVersion, pe.totalUses));
            }
        }
    }

    // History-deque accounting.
    const std::uint64_t expectHist = rn.nextToken - rn.historyBase;
    if (rn.history.size() != expectHist) {
        add(report, AuditInvariant::HistorySize, RegClass::Int,
            invalidRegIndex,
            formatString("history holds %zu entries but tokens span "
                         "%llu (base %llu, next %llu)",
                         rn.history.size(),
                         static_cast<unsigned long long>(expectHist),
                         static_cast<unsigned long long>(rn.historyBase),
                         static_cast<unsigned long long>(rn.nextToken)));
    }

    violationsFound += static_cast<double>(report.violations.size());
    return report;
}

AuditReport
RenameAuditor::audit(const BaselineRenamer &rn)
{
    ++auditsRun;
    AuditReport report;

    // Occurrences of each physical register: the free list, the
    // speculative map and the pending release slots of the history
    // buffer must partition the register file — every register in
    // exactly one place.
    for (int c = 0; c < numRegClasses; ++c) {
        const auto cls = static_cast<RegClass>(c);
        const BaselineRenamer::ClassState &st = rn.classes[c];
        const std::uint32_t total = rn.totalRegs(cls);
        std::vector<std::uint32_t> seen(total, 0);
        auto occupy = [&](PhysRegIndex p, const char *what) {
            if (p >= total) {
                add(report, AuditInvariant::FreeListPartition, cls, p,
                    formatString("%s holds out-of-range P%u (total %u)",
                                 what, p, total));
                return;
            }
            ++seen[p];
        };
        for (PhysRegIndex p : st.freeList)
            occupy(p, "free list");
        for (LogRegIndex r = 0; r < isa::numLogRegs; ++r)
            occupy(st.map[r], "spec map");
        for (const auto &h : rn.history) {
            if (h.cls == cls)
                occupy(h.releaseAtCommit, "history release slot");
        }
        for (PhysRegIndex p = 0; p < total; ++p) {
            if (seen[p] != 1) {
                add(report, AuditInvariant::FreeListPartition, cls, p,
                    formatString("P%u appears %u times across free "
                                 "list + map + pending releases "
                                 "(expected exactly 1)", p, seen[p]));
            }
        }
    }

    const std::uint64_t expectHist = rn.nextToken - rn.historyBase;
    if (rn.history.size() != expectHist) {
        add(report, AuditInvariant::HistorySize, RegClass::Int,
            invalidRegIndex,
            formatString("history holds %zu entries but tokens span "
                         "%llu (base %llu, next %llu)",
                         rn.history.size(),
                         static_cast<unsigned long long>(expectHist),
                         static_cast<unsigned long long>(rn.historyBase),
                         static_cast<unsigned long long>(rn.nextToken)));
    }

    violationsFound += static_cast<double>(report.violations.size());
    return report;
}

void
RenameAuditor::check(const Renamer &renamer, const char *where)
{
    AuditReport report = audit(renamer);
    if (!report.clean()) {
        rrs_panic("rename audit failed at %s (%zu violations):\n%s",
                  where, report.violations.size(),
                  report.toString().c_str());
    }
}

} // namespace rrs::rename
