#include "predictor.hh"

#include "common/bitutils.hh"
#include "common/logging.hh"

namespace rrs::rename {

RegisterTypePredictor::RegisterTypePredictor(
    const TypePredictorParams &params, stats::Group *parent)
    : stats::Group("typePred", parent), table(params.entries, 0),
      predictions(this, "predictions", "allocation-type predictions"),
      decrements(this, "decrements", "entries decremented on release"),
      resets(this, "resets", "entries reset on multi-use detection"),
      increments(this, "increments",
                 "entries incremented on shadow exhaustion")
{
    rrs_assert(!table.empty(), "predictor needs at least one entry");
}

std::uint32_t
RegisterTypePredictor::indexFor(Addr pc) const
{
    return static_cast<std::uint32_t>(hashMix(pc >> 2) % table.size());
}

std::uint8_t
RegisterTypePredictor::predict(Addr pc) const
{
    predictions += 1;
    return table[indexFor(pc)];
}

void
RegisterTypePredictor::trainOnRelease(std::uint32_t index,
                                      std::uint8_t allocatedShadow,
                                      std::uint8_t actualReuses,
                                      bool multiUseDetected,
                                      bool singleUseMissed)
{
    std::uint8_t &e = table[index];
    if (allocatedShadow > 0 && multiUseDetected) {
        // Predicted single-use, saw extra consumers: reset.
        e = 0;
        ++resets;
        return;
    }
    if (singleUseMissed) {
        // The value had exactly one consumer but no shadow capacity was
        // provisioned: learn that this PC produces single-use values.
        // Only lift dormant entries to the smallest shadow bank — the
        // shadow-exhaustion rule escalates further if chains form;
        // anything more aggressive floods the shadow banks with
        // long-lived committed values.
        if (e == 0) {
            e = 1;
            ++increments;
        }
        return;
    }
    if (actualReuses < allocatedShadow && e > 0) {
        // Shadow copies went unused: shrink the next allocation.
        --e;
        ++decrements;
    }
}

void
RegisterTypePredictor::trainOnShadowExhausted(std::uint32_t index)
{
    std::uint8_t &e = table[index];
    if (e < 3) {
        ++e;
        ++increments;
    }
}

} // namespace rrs::rename
