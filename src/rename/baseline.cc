#include "baseline.hh"

#include "common/logging.hh"

namespace rrs::rename {

BaselineRenamer::BaselineRenamer(const BaselineParams &params,
                                 stats::Group *parent)
    : Renamer("rename", parent), params(params),
      allocations(this, "allocations", "physical registers allocated"),
      historyPeak(this, "historyPeak",
                  "largest rename-history footprint (entries)"),
      releases(this, "releases", "physical registers released"),
      renameStalls(this, "renameStalls", "stalls due to empty free list")
{
    for (int c = 0; c < numRegClasses; ++c) {
        auto cls = static_cast<RegClass>(c);
        std::uint32_t total = totalRegs(cls);
        rrs_assert(total >= isa::numLogRegs,
                   "need at least as many physical as logical registers");
        ClassState &st = classes[c];
        st.map.resize(isa::numLogRegs);
        // Identity initial mapping; the rest go to the free list.
        for (LogRegIndex r = 0; r < isa::numLogRegs; ++r)
            st.map[r] = r;
        for (std::uint32_t p = total; p > isa::numLogRegs; --p)
            st.freeList.push_back(static_cast<PhysRegIndex>(p - 1));
    }
}

std::uint32_t
BaselineRenamer::totalRegs(RegClass cls) const
{
    return cls == RegClass::Int ? params.intRegs : params.fpRegs;
}

std::uint32_t
BaselineRenamer::freeRegs(RegClass cls) const
{
    return static_cast<std::uint32_t>(state(cls).freeList.size());
}

PhysRegTag
BaselineRenamer::mapping(RegClass cls, LogRegIndex reg) const
{
    return PhysRegTag{cls, state(cls).map[reg], 0};
}

RenameResult
BaselineRenamer::rename(
    const trace::DynInst &di,
    const std::function<bool(const PhysRegTag &)> & /* producerExecuted */)
{
    RenameResult res;
    res.token = nextToken;

    const bool writes = writesReg(di);
    if (writes) {
        ClassState &st = state(di.si.dest.cls);
        if (st.freeList.empty()) {
            ++renameStalls;
            res.success = false;
            res.endToken = nextToken;
            return res;
        }
    }

    // Rename sources through the map table.
    for (int s = 0; s < di.si.numSrcs(); ++s) {
        if (!readsReg(di, s)) {
            res.srcTags[static_cast<std::size_t>(s)] = PhysRegTag{};
        } else {
            const isa::RegId &src = di.si.srcs[static_cast<std::size_t>(s)];
            res.srcTags[static_cast<std::size_t>(s)] =
                PhysRegTag{src.cls, state(src.cls).map[src.idx], 0};
        }
    }
    res.numSrcTags = di.si.numSrcs();

    if (writes) {
        ClassState &st = state(di.si.dest.cls);
        PhysRegIndex fresh = st.freeList.back();
        st.freeList.pop_back();
        ++allocations;

        PhysRegIndex old = st.map[di.si.dest.idx];
        st.map[di.si.dest.idx] = fresh;
        history.push_back(HistoryEntry{di.si.dest.cls, di.si.dest.idx,
                                       old, fresh, old});
        ++nextToken;
        if (history.size() > historyPeakSinceShrink)
            historyPeakSinceShrink = history.size();
        if (history.size() > historyPeakCount) {
            historyPeakCount = history.size();
            historyPeak = static_cast<double>(historyPeakCount);
        }

        res.hasDest = true;
        res.destTag = PhysRegTag{di.si.dest.cls, fresh, 0};
    }

    res.success = true;
    res.endToken = nextToken;
    return res;
}

void
BaselineRenamer::commit(const RenameResult &result)
{
    // Drop (and retire) this instruction's history entries; commits are
    // in order, so they sit at the front of the buffer.
    rrs_assert(result.endToken >= historyBase,
               "commit of already-collected history");
    while (historyBase < result.endToken) {
        rrs_assert(!history.empty(), "history underflow at commit");
        const HistoryEntry &e = history.front();
        // The previous mapping of the redefined logical register is now
        // unreachable: release it (release-on-commit).
        state(e.cls).freeList.push_back(e.releaseAtCommit);
        ++releases;
        history.pop_front();
        ++historyBase;
    }
    // Bound committed storage after a drain, as in ReuseRenamer.
    if (history.empty() &&
        historyPeakSinceShrink > historyShrinkThreshold) {
        history.shrink_to_fit();
        historyPeakSinceShrink = 0;
    }
}

std::uint32_t
BaselineRenamer::squashTo(
    HistoryToken token,
    const std::function<bool(const PhysRegTag &)> & /* produced */)
{
    rrs_assert(token >= historyBase, "squash into committed history");
    while (nextToken > token) {
        rrs_assert(!history.empty(), "history underflow at squash");
        const HistoryEntry &e = history.back();
        state(e.cls).map[e.logReg] = e.oldPhys;
        state(e.cls).freeList.push_back(e.newPhys);
        history.pop_back();
        --nextToken;
    }
    return 0;   // the baseline never needs shadow recovery
}

} // namespace rrs::rename
