/**
 * @file
 * The workload suite: assembly kernels standing in for the paper's
 * benchmarks (Section V-B).  SPEC CPU2006, Mediabench and the GMM/DNN
 * cognitive kernels are not redistributable, so each suite is replaced
 * by kernels with the same *microarchitectural* character:
 *
 *  - "specint": integer codes — sorting, hashing, CRC, sieving, string
 *    matching, graph traversal.  Branchy, pointer/index heavy, modest
 *    single-use fractions (paper: >30% single-consumer values).
 *  - "specfp": floating-point loop nests — dense matmul, FIR, Jacobi
 *    stencil, n-body, Horner evaluation, blocked vector chains.  Long
 *    dependence chains, high single-use fractions (paper: >50%).
 *  - "media": Mediabench-style fixed-point signal processing — ADPCM
 *    encode, 8x8 DCT, Sobel edge detection.
 *  - "cognitive": GMM acoustic-scoring distance kernel and a dense DNN
 *    layer with ReLU.
 *
 * Every kernel initialises its own data (with a deterministic LCG where
 * it needs pseudo-random input), runs a bounded outer loop, and
 * accumulates a checksum so the whole computation is live.
 */

#ifndef RRS_WORKLOADS_WORKLOADS_HH
#define RRS_WORKLOADS_WORKLOADS_HH

#include <memory>
#include <string>
#include <vector>

#include "emu/emulator.hh"
#include "isa/program.hh"
#include "trace/recorded.hh"

namespace rrs::workloads {

/** A registered workload. */
struct Workload
{
    std::string name;        //!< e.g. "fp_matmul"
    std::string suite;       //!< "specint", "specfp", "media", "cognitive"
    const char *source;      //!< assembly text
    std::uint64_t defaultMaxInsts;   //!< stream cap for timing runs
};

/** All registered workloads, in suite order. */
const std::vector<Workload> &allWorkloads();

/** Workloads of one suite. */
std::vector<Workload> suiteWorkloads(const std::string &suite);

/** Find a workload by name (fatal if unknown). */
const Workload &workload(const std::string &name);

/** Assemble a workload (cached) and return its program. */
const isa::Program &program(const Workload &w);

/**
 * Hash of a workload's assembly source (FNV-1a).  Stamped into every
 * RecordedTrace so spilled traces are invalidated when a kernel's
 * source changes.
 */
std::uint64_t sourceHash(const Workload &w);

/** The stream cap a maxInsts request resolves to (0 -> the default). */
inline std::uint64_t
resolvedCap(const Workload &w, std::uint64_t maxInsts)
{
    return maxInsts == 0 ? w.defaultMaxInsts : maxInsts;
}

/**
 * Create a live functional emulator for a workload, fast-forwarded
 * past its warmup phase and capped at `maxInsts` post-warmup
 * instructions (0: workload default).  Use this when architectural
 * state matters (oracle tests, emulator microbenchmarks); timing runs
 * should consume traces via makeStream / the harness trace cache
 * instead.
 */
std::unique_ptr<emu::Emulator> makeEmulator(const Workload &w,
                                            std::uint64_t maxInsts = 0);

/**
 * Capture the post-warmup dynamic instruction stream of a workload
 * into an immutable, shareable trace.  The capture runs the functional
 * emulator once with its record hook attached; replaying the returned
 * trace is bit-identical to pulling the emulator live.
 */
trace::TracePtr captureTrace(const Workload &w,
                             std::uint64_t maxInsts = 0);

/**
 * Create a fresh instruction stream for a workload.  Built on the
 * capture/replay layer: the workload is emulated once and the stream
 * replays the recording, so reset() costs nothing.  Callers that run
 * many configurations should share one capture through
 * harness::traceCache() instead of calling this repeatedly.
 * @param maxInsts cap override; 0 uses the workload default
 */
std::unique_ptr<trace::InstStream> makeStream(const Workload &w,
                                              std::uint64_t maxInsts = 0);

/** Suite names in canonical order. */
const std::vector<std::string> &suiteNames();

} // namespace rrs::workloads

#endif // RRS_WORKLOADS_WORKLOADS_HH
