#include "workloads.hh"

#include <algorithm>
#include <map>
#include <mutex>

#include "common/logging.hh"
#include "isa/assembler.hh"
#include "obs/profiler.hh"

namespace rrs::workloads {

// Kernel sources (defined in kernels_*.cc).
extern const char *srcIntSort;
extern const char *srcIntHash;
extern const char *srcIntCrc;
extern const char *srcIntSieve;
extern const char *srcIntMatch;
extern const char *srcIntGraph;
extern const char *srcFpMatmul;
extern const char *srcFpFir;
extern const char *srcFpJacobi;
extern const char *srcFpNbody;
extern const char *srcFpHorner;
extern const char *srcFpChain;
extern const char *srcMediaAdpcm;
extern const char *srcMediaDct;
extern const char *srcMediaSobel;
extern const char *srcCogGmm;
extern const char *srcCogDnn;
extern const char *srcIntLz;
extern const char *srcFpBlur;
extern const char *srcMediaG711;
extern const char *srcCogKnn;

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> list = {
        {"int_sort", "specint", srcIntSort, 400'000},
        {"int_hash", "specint", srcIntHash, 400'000},
        {"int_crc", "specint", srcIntCrc, 400'000},
        {"int_sieve", "specint", srcIntSieve, 400'000},
        {"int_match", "specint", srcIntMatch, 400'000},
        {"int_graph", "specint", srcIntGraph, 400'000},
        {"int_lz", "specint", srcIntLz, 400'000},
        {"fp_matmul", "specfp", srcFpMatmul, 400'000},
        {"fp_fir", "specfp", srcFpFir, 400'000},
        {"fp_jacobi", "specfp", srcFpJacobi, 400'000},
        {"fp_nbody", "specfp", srcFpNbody, 400'000},
        {"fp_horner", "specfp", srcFpHorner, 400'000},
        {"fp_chain", "specfp", srcFpChain, 400'000},
        {"fp_blur", "specfp", srcFpBlur, 400'000},
        {"media_adpcm", "media", srcMediaAdpcm, 400'000},
        {"media_dct", "media", srcMediaDct, 400'000},
        {"media_sobel", "media", srcMediaSobel, 400'000},
        {"media_g711", "media", srcMediaG711, 400'000},
        {"cog_gmm", "cognitive", srcCogGmm, 400'000},
        {"cog_dnn", "cognitive", srcCogDnn, 400'000},
        {"cog_knn", "cognitive", srcCogKnn, 400'000},
    };
    return list;
}

const std::vector<std::string> &
suiteNames()
{
    static const std::vector<std::string> names = {
        "specint", "specfp", "media", "cognitive"};
    return names;
}

std::vector<Workload>
suiteWorkloads(const std::string &suite)
{
    std::vector<Workload> out;
    for (const auto &w : allWorkloads()) {
        if (w.suite == suite)
            out.push_back(w);
    }
    return out;
}

const Workload &
workload(const std::string &name)
{
    for (const auto &w : allWorkloads()) {
        if (w.name == name)
            return w;
    }
    rrs_fatal("unknown workload '%s'", name.c_str());
}

const isa::Program &
program(const Workload &w)
{
    // Sweep workers assemble workloads concurrently; the cache is the
    // only cross-run shared state, so it is locked.  std::map keeps
    // element references stable across later insertions, making the
    // returned reference safe to use outside the lock.
    static std::mutex cacheMutex;
    static std::map<std::string, isa::Program> cache;
    std::lock_guard<std::mutex> lock(cacheMutex);
    auto it = cache.find(w.name);
    if (it == cache.end())
        it = cache.emplace(w.name, isa::assemble(w.source)).first;
    return it->second;
}

std::uint64_t
sourceHash(const Workload &w)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char *p = w.source; *p; ++p) {
        h ^= static_cast<std::uint8_t>(*p);
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::unique_ptr<emu::Emulator>
makeEmulator(const Workload &w, std::uint64_t maxInsts)
{
    const isa::Program &prog = program(w);
    auto stream = std::make_unique<emu::Emulator>(prog, w.name);
    // Skip the kernel's initialisation phase so measurements cover the
    // computation itself; the `warmup_done` label marks the boundary.
    auto it = prog.symbols.find("warmup_done");
    if (it != prog.symbols.end()) {
        obs::ScopedPhase phase("warmup");
        stream->fastForwardTo(it->second, 5'000'000);
    }
    stream->setMaxInsts(stream->instCount() + resolvedCap(w, maxInsts));
    return stream;
}

trace::TracePtr
captureTrace(const Workload &w, std::uint64_t maxInsts)
{
    obs::ScopedPhase phase("capture");
    const std::uint64_t cap = resolvedCap(w, maxInsts);
    auto e = makeEmulator(w, maxInsts);
    std::vector<trace::DynInst> insts;
    insts.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(cap, 1'000'000)));
    e->setRecordHook(
        [&insts](const trace::DynInst &di) { insts.push_back(di); });
    e->run();
    auto trace = std::make_shared<trace::RecordedTrace>(
        w.name, cap, sourceHash(w), std::move(insts));
    {
        // Build the pre-decoded columns here, once, while the capture
        // is still the only owner — the cycle loop never packs.
        obs::ScopedPhase packPhase("pack");
        trace->packed();
    }
    return trace;
}

std::unique_ptr<trace::InstStream>
makeStream(const Workload &w, std::uint64_t maxInsts)
{
    return std::make_unique<trace::ReplayStream>(
        captureTrace(w, maxInsts));
}

} // namespace rrs::workloads
