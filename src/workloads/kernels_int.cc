/**
 * @file
 * SPECint-style integer kernels: sorting, hashing, CRC, sieving,
 * string matching and graph traversal.  Branchy, index-heavy code with
 * the moderate single-use value fractions the paper reports for
 * SPECint.
 */

#include "workloads.hh"

namespace rrs::workloads {

// Shellsort over N pseudo-random 64-bit integers, R rounds with fresh
// data per round.
const char *srcIntSort = R"(
    .equ N, 1024
    .equ R, 3
    .data
arr:
    .space 8192
result:
    .space 8
    .text
_start:
    movz x20, #R
    movz x26, #0              ; checksum accumulator
round:
    movz x1, =arr             ; ---- init with LCG ----
    movz x2, #N
    muli x3, x20, #97
    addi x3, x3, #12345
init:
    muli x3, x3, #6364136223846793005
    addi x3, x3, #1442695040888963407
    lsri x4, x3, #33
    str x4, [x1]
    addi x1, x1, #8
    subi x2, x2, #1
    bne x2, xzr, init
warmup_done:
    movz x5, #N               ; ---- shellsort ----
    lsri x5, x5, #1           ; gap = N/2
gaploop:
    beq x5, xzr, sorted
    mov x6, x5                ; i = gap
iloop:
    movz x7, #N
    bge x6, x7, gapnext
    movz x1, =arr
    lsli x8, x6, #3
    add x8, x1, x8
    ldr x9, [x8]              ; temp = a[i]
    mov x10, x6               ; j = i
jloop:
    blt x10, x5, jdone        ; j < gap: stop
    sub x11, x10, x5          ; j - gap
    lsli x12, x11, #3
    add x12, x1, x12
    ldr x13, [x12]            ; a[j-gap]
    bge x9, x13, jdone        ; a[j-gap] <= temp: stop
    lsli x14, x10, #3
    add x14, x1, x14
    str x13, [x14]            ; a[j] = a[j-gap]
    mov x10, x11
    b jloop
jdone:
    lsli x14, x10, #3
    add x14, x1, x14
    str x9, [x14]             ; a[j] = temp
    addi x6, x6, #1
    b iloop
gapnext:
    lsri x5, x5, #1
    b gaploop
sorted:
    movz x1, =arr             ; checksum first/last
    ldr x2, [x1]
    ldr x3, [x1, #8184]
    add x26, x26, x2
    add x26, x26, x3
    subi x20, x20, #1
    bne x20, xzr, round
    movz x1, =result
    str x26, [x1]
    halt
)";

// Open-addressing hash table: M slots, insert then probe K keys per
// round (linear probing, key 0 means empty).
const char *srcIntHash = R"(
    .equ M, 8192
    .equ K, 4096
    .equ R, 4
    .data
table:
    .space 65536
result:
    .space 8
    .text
_start:
    movz x20, #R
    movz x26, #0
round:
    movz x1, =table           ; ---- clear table ----
    movz x2, #M
clear:
    str xzr, [x1]
    addi x1, x1, #8
    subi x2, x2, #1
    bne x2, xzr, clear
warmup_done:
    movz x2, #K               ; ---- inserts ----
    muli x3, x20, #31
    addi x3, x3, #7
insert:
    muli x3, x3, #6364136223846793005
    addi x3, x3, #1442695040888963407
    lsri x4, x3, #33
    orri x4, x4, #1           ; never zero
    movz x5, #8191
    rem x6, x4, x5            ; slot index
probe:
    movz x7, =table
    lsli x8, x6, #3
    add x8, x7, x8
    ldr x9, [x8]
    beq x9, xzr, place        ; empty slot
    beq x9, x4, placed        ; already present
    addi x6, x6, #1
    movz x7, #M
    blt x6, x7, probe
    movz x6, #0
    b probe
place:
    str x4, [x8]
placed:
    subi x2, x2, #1
    bne x2, xzr, insert
    movz x2, #K               ; ---- lookups ----
    muli x3, x20, #31
    addi x3, x3, #7
lookup:
    muli x3, x3, #6364136223846793005
    addi x3, x3, #1442695040888963407
    lsri x4, x3, #33
    orri x4, x4, #1
    movz x5, #8191
    rem x6, x4, x5
find:
    movz x7, =table
    lsli x8, x6, #3
    add x8, x7, x8
    ldr x9, [x8]
    beq x9, xzr, miss
    beq x9, x4, hit
    addi x6, x6, #1
    movz x7, #M
    blt x6, x7, find
    movz x6, #0
    b find
hit:
    addi x26, x26, #1
miss:
    subi x2, x2, #1
    bne x2, xzr, lookup
    subi x20, x20, #1
    bne x20, xzr, round
    movz x1, =result
    str x26, [x1]
    halt
)";

// Bitwise CRC32 over a byte buffer (polynomial 0xEDB88320).
const char *srcIntCrc = R"(
    .equ N, 32768
    .equ R, 1
    .data
buf:
    .space 32768
result:
    .space 8
    .text
_start:
    movz x1, =buf             ; ---- fill buffer once ----
    movz x2, #N
    movz x3, #987654321
fill:
    muli x3, x3, #6364136223846793005
    addi x3, x3, #1442695040888963407
    lsri x4, x3, #56
    strb x4, [x1]
    addi x1, x1, #1
    subi x2, x2, #1
    bne x2, xzr, fill
warmup_done:
    movz x20, #R
    movz x26, #0
round:
    movz x1, =buf
    movz x2, #N
    movz x5, #0xffffffff      ; crc
byteloop:
    ldrb x4, [x1]
    eor x5, x5, x4
    movz x6, #8               ; 8 bit steps
bitloop:
    andi x7, x5, #1
    lsri x5, x5, #1
    beq x7, xzr, nobit
    movz x8, #0xEDB88320
    eor x5, x5, x8
nobit:
    subi x6, x6, #1
    bne x6, xzr, bitloop
    addi x1, x1, #1
    subi x2, x2, #1
    bne x2, xzr, byteloop
    add x26, x26, x5
    subi x20, x20, #1
    bne x20, xzr, round
    movz x1, =result
    str x26, [x1]
    halt
)";

// Sieve of Eratosthenes up to N (byte flags), counting primes.
const char *srcIntSieve = R"(
    .equ N, 32768
    .equ R, 2
    .data
flags:
    .space 32768
result:
    .space 8
    .text
_start:
    movz x20, #R
    movz x26, #0
round:
    movz x1, =flags           ; ---- clear flags ----
    movz x2, #N
clear:
    strb xzr, [x1]
    addi x1, x1, #1
    subi x2, x2, #1
    bne x2, xzr, clear
warmup_done:
    movz x3, #2               ; p = 2
sieve:
    mul x4, x3, x3            ; p*p
    movz x5, #N
    bge x4, x5, count         ; p*p >= N: done sieving
    movz x6, =flags
    add x7, x6, x3
    ldrb x8, [x7]
    bne x8, xzr, nextp        ; composite: skip
    mov x9, x4                ; m = p*p
mark:
    add x10, x6, x9
    movz x11, #1
    strb x11, [x10]
    add x9, x9, x3
    blt x9, x5, mark
nextp:
    addi x3, x3, #1
    b sieve
count:
    movz x1, =flags
    movz x2, #2
    movz x12, #0
cloop:
    add x4, x1, x2
    ldrb x5, [x4]
    bne x5, xzr, notprime
    addi x12, x12, #1
notprime:
    addi x2, x2, #1
    movz x6, #N
    blt x2, x6, cloop
    add x26, x26, x12
    subi x20, x20, #1
    bne x20, xzr, round
    movz x1, =result
    str x26, [x1]
    halt
)";

// Naive substring search: count occurrences of an 8-byte pattern in a
// pseudo-random text (few-valued alphabet so partial matches happen).
const char *srcIntMatch = R"(
    .equ N, 32768
    .equ PLEN, 6
    .equ R, 1
    .data
text:
    .space 32768
pat:
    .space 16
result:
    .space 8
    .text
_start:
    movz x1, =text            ; ---- fill text, alphabet {0..3} ----
    movz x2, #N
    movz x3, #55555
fill:
    muli x3, x3, #6364136223846793005
    addi x3, x3, #1442695040888963407
    lsri x4, x3, #33
    andi x4, x4, #3
    strb x4, [x1]
    addi x1, x1, #1
    subi x2, x2, #1
    bne x2, xzr, fill
    movz x1, =pat             ; pattern = 0,1,0,1,2,3
    strb xzr, [x1]
    movz x2, #1
    strb x2, [x1, #1]
    strb xzr, [x1, #2]
    strb x2, [x1, #3]
    movz x2, #2
    strb x2, [x1, #4]
    movz x2, #3
    strb x2, [x1, #5]
warmup_done:
    movz x20, #R
    movz x26, #0
round:
    movz x5, #0               ; i
    movz x6, #N
    subi x6, x6, #PLEN        ; last start
outer:
    movz x7, #0               ; j
    movz x8, =text
    add x8, x8, x5
    movz x9, =pat
inner:
    add x10, x8, x7
    ldrb x11, [x10]
    add x12, x9, x7
    ldrb x13, [x12]
    bne x11, x13, mismatch
    addi x7, x7, #1
    movz x14, #PLEN
    blt x7, x14, inner
    addi x26, x26, #1         ; full match
mismatch:
    addi x5, x5, #1
    bge x6, x5, outer
    subi x20, x20, #1
    bne x20, xzr, round
    movz x1, =result
    str x26, [x1]
    halt
)";

// Breadth-first search over a synthetic graph: V nodes, fixed degree D
// adjacency generated by an LCG; repeated from rotating start nodes.
const char *srcIntGraph = R"(
    .equ V, 1024
    .equ D, 4
    .equ R, 8
    .data
adj:
    .space 32768
visited:
    .space 1024
queue:
    .space 8192
result:
    .space 8
    .text
_start:
    movz x1, =adj             ; ---- build adjacency (V*D words) ----
    movz x2, #0               ; edge index
    movz x3, #424242
    movz x4, #V
    muli x5, x4, #D           ; total edges
build:
    muli x3, x3, #6364136223846793005
    addi x3, x3, #1442695040888963407
    lsri x6, x3, #33
    movz x7, #V
    rem x8, x6, x7            ; target node
    lsli x9, x2, #3
    add x9, x1, x9
    str x8, [x9]
    addi x2, x2, #1
    blt x2, x5, build
warmup_done:
    movz x20, #R
    movz x26, #0
round:
    movz x1, =visited         ; ---- clear visited ----
    movz x2, #V
clear:
    strb xzr, [x1]
    addi x1, x1, #1
    subi x2, x2, #1
    bne x2, xzr, clear
    movz x10, =queue
    movz x11, #0              ; head
    movz x12, #0              ; tail
    movz x13, #V
    rem x14, x20, x13         ; start node = R mod V
    lsli x15, x12, #3
    add x15, x10, x15
    str x14, [x15]            ; push start
    addi x12, x12, #1
    movz x1, =visited
    add x2, x1, x14
    movz x3, #1
    strb x3, [x2]
bfs:
    bge x11, x12, done        ; queue empty
    lsli x15, x11, #3
    add x15, x10, x15
    ldr x14, [x15]            ; pop node
    addi x11, x11, #1
    addi x26, x26, #1         ; visit count
    movz x4, #0               ; neighbour index
neigh:
    movz x5, =adj
    muli x6, x14, #D
    add x6, x6, x4
    lsli x6, x6, #3
    add x6, x5, x6
    ldr x7, [x6]              ; neighbour node
    movz x1, =visited
    add x2, x1, x7
    ldrb x3, [x2]
    bne x3, xzr, skip
    movz x3, #1
    strb x3, [x2]
    lsli x15, x12, #3
    add x15, x10, x15
    str x7, [x15]             ; push
    addi x12, x12, #1
skip:
    addi x4, x4, #1
    movz x5, #D
    blt x4, x5, neigh
    b bfs
done:
    subi x20, x20, #1
    bne x20, xzr, round
    movz x1, =result
    str x26, [x1]
    halt
)";

} // namespace rrs::workloads
