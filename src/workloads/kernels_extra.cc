/**
 * @file
 * Additional kernels rounding out the suites: an LZ77-style match
 * finder (compression, SPECint-like), a separable Gaussian blur
 * (SPECfp-like), G.711 a-law companding (Mediabench-like) and a k-NN
 * distance kernel (cognitive).
 */

#include "workloads.hh"

namespace rrs::workloads {

// LZ77-style longest-match search with a hash-head/prev chain, the
// core loop of every LZ-class compressor.
const char *srcIntLz = R"(
    .equ N, 16384
    .equ HBITS, 12
    .data
text:
    .space 16384
head:
    .space 32768
prev:
    .space 131072
result:
    .space 8
    .text
_start:
    movz x1, =text            ; ---- synth text: skewed alphabet ----
    movz x2, #N
    movz x3, #424243
fill:
    muli x3, x3, #6364136223846793005
    addi x3, x3, #1442695040888963407
    lsri x4, x3, #33
    andi x4, x4, #7           ; 8 symbols: repeats are common
    strb x4, [x1]
    addi x1, x1, #1
    subi x2, x2, #1
    bne x2, xzr, fill
    movz x1, =head            ; clear hash heads (4096 entries)
    movz x2, #4096
clear:
    str xzr, [x1]
    addi x1, x1, #8
    subi x2, x2, #1
    bne x2, xzr, clear
warmup_done:
    movz x26, #0              ; total match length found
    movz x5, #3               ; position (need 3 bytes of context)
    movz x6, #16380           ; last position (N - 4)
scan:
    ; hash = (t[i] | t[i+1]<<8 | t[i+2]<<16) * 2654435761 >> 20, 12 bits
    movz x7, =text
    add x8, x7, x5
    ldrb x9, [x8]
    ldrb x10, [x8, #1]
    ldrb x11, [x8, #2]
    lsli x10, x10, #8
    lsli x11, x11, #16
    orr x9, x9, x10
    orr x9, x9, x11
    muli x9, x9, #2654435761
    lsri x9, x9, #20
    andi x9, x9, #4095        ; hash bucket
    ; candidate = head[hash]; head[hash] = i; prev[i] = candidate
    movz x12, =head
    lsli x13, x9, #3
    add x13, x12, x13
    ldr x14, [x13]            ; candidate position (0 = none)
    str x5, [x13]
    movz x15, =prev
    lsli x16, x5, #3
    add x16, x15, x16
    str x14, [x16]
    ; follow the chain up to 4 candidates, track best match length
    movz x17, #0              ; best length
    movz x18, #4              ; chain budget
chain:
    beq x14, xzr, done_chain
    beq x18, xzr, done_chain
    ; match length at candidate (cap 16)
    movz x19, #0
mloop:
    add x20, x7, x5
    add x20, x20, x19
    ldrb x21, [x20]
    add x22, x7, x14
    add x22, x22, x19
    ldrb x23, [x22]
    bne x21, x23, mdone
    addi x19, x19, #1
    movz x24, #16
    blt x19, x24, mloop
mdone:
    bge x17, x19, nobest
    mov x17, x19
nobest:
    ; candidate = prev[candidate]
    lsli x16, x14, #3
    add x16, x15, x16
    ldr x14, [x16]
    subi x18, x18, #1
    b chain
done_chain:
    add x26, x26, x17
    addi x5, x5, #1
    blt x5, x6, scan
    movz x1, =result
    str x26, [x1]
    halt
)";

// Separable 5-tap Gaussian blur over a GxG double image.
const char *srcFpBlur = R"(
    .equ G, 72
    .data
img:
    .space 41472
tmp2:
    .space 41472
result:
    .space 8
    .text
_start:
    movz x1, =img             ; ---- init image ----
    movz x2, #5184            ; G*G
    movz x3, #31337
init:
    muli x3, x3, #6364136223846793005
    addi x3, x3, #1442695040888963407
    lsri x4, x3, #40
    fcvt f0, x4
    fmovi f1, #16777216.0
    fdiv f0, f0, f1
    fstr f0, [x1]
    addi x1, x1, #8
    subi x2, x2, #1
    bne x2, xzr, init
warmup_done:
    ; 5-tap kernel 1/16 * [1 4 6 4 1], horizontal then vertical
    fmovi f10, #0.0625
    fmovi f11, #0.25
    fmovi f12, #0.375
    movz x5, #0               ; row
hrow:
    movz x6, #2               ; col in [2, G-3]
hcol:
    movz x7, =img
    muli x8, x5, #G
    add x8, x8, x6
    lsli x8, x8, #3
    add x8, x7, x8
    fldr f0, [x8, #-16]
    fldr f1, [x8, #-8]
    fldr f2, [x8]
    fldr f3, [x8, #8]
    fldr f4, [x8, #16]
    fmul f5, f0, f10
    fmadd f5, f1, f11, f5
    fmadd f5, f2, f12, f5
    fmadd f5, f3, f11, f5
    fmadd f5, f4, f10, f5
    movz x9, =tmp2
    muli x10, x5, #G
    add x10, x10, x6
    lsli x10, x10, #3
    add x10, x9, x10
    fstr f5, [x10]
    addi x6, x6, #1
    movz x11, #69             ; G-3
    bge x11, x6, hcol
    addi x5, x5, #1
    movz x11, #G
    blt x5, x11, hrow
    movz x5, #2               ; vertical pass, row in [2, G-3]
vrow:
    movz x6, #2
vcol:
    movz x7, =tmp2
    muli x8, x5, #G
    add x8, x8, x6
    lsli x8, x8, #3
    add x8, x7, x8
    movz x12, #576            ; G*8
    lsli x13, x12, #1         ; 2*G*8
    sub x14, x8, x13
    fldr f0, [x14]
    sub x14, x8, x12
    fldr f1, [x14]
    fldr f2, [x8]
    add x14, x8, x12
    fldr f3, [x14]
    add x14, x8, x13
    fldr f4, [x14]
    fmul f5, f0, f10
    fmadd f5, f1, f11, f5
    fmadd f5, f2, f12, f5
    fmadd f5, f3, f11, f5
    fmadd f5, f4, f10, f5
    movz x9, =img
    muli x10, x5, #G
    add x10, x10, x6
    lsli x10, x10, #3
    add x10, x9, x10
    fstr f5, [x10]
    addi x6, x6, #1
    movz x11, #69
    bge x11, x6, vcol
    addi x5, x5, #1
    bge x11, x5, vrow
    movz x1, =img             ; checksum centre pixel
    movz x15, #21024          ; (G/2*G + G/2)*8 = (36*72+36)*8
    add x1, x1, x15
    fldr f0, [x1]
    fmovi f1, #1048576.0
    fmul f0, f0, f1
    fcvti x2, f0
    movz x1, =result
    str x2, [x1]
    halt
)";

// G.711 a-law companding: encode then decode PCM samples, accumulating
// the reconstruction; the segment search is the classic branchy loop.
const char *srcMediaG711 = R"(
    .equ N, 12288
    .data
pcm:
    .space 98304
result:
    .space 8
    .text
_start:
    movz x1, =pcm             ; ---- synth samples in [-32768, 32767]
    movz x2, #N
    movz x3, #777777
fill:
    muli x3, x3, #6364136223846793005
    addi x3, x3, #1442695040888963407
    lsri x4, x3, #33
    andi x4, x4, #65535
    movz x5, #32768
    sub x4, x4, x5
    str x4, [x1]
    addi x1, x1, #8
    subi x2, x2, #1
    bne x2, xzr, fill
warmup_done:
    movz x26, #0
    movz x1, =pcm
    movz x2, #N
sample:
    ldr x4, [x1]
    movz x9, #0               ; sign bit
    bge x4, xzr, pos
    movz x9, #0x80
    sub x4, xzr, x4
    subi x4, x4, #1
pos:
    ; find segment: exponent of (mag >> 4), 8 segments
    lsri x5, x4, #4
    movz x6, #0               ; segment
seg:
    movz x7, #16
    blt x5, x7, segdone
    lsri x5, x5, #1
    addi x6, x6, #1
    movz x7, #7
    blt x6, x7, seg
segdone:
    ; quantised mantissa: 4 bits below the segment point
    addi x8, x6, #1
    lsr x10, x4, x8
    andi x10, x10, #0xf
    lsli x11, x6, #4
    orr x11, x11, x10
    orr x11, x11, x9          ; code byte
    ; ---- decode back ----
    andi x12, x11, #0x70
    lsri x12, x12, #4         ; segment
    andi x13, x11, #0xf       ; mantissa
    lsli x13, x13, #1
    addi x13, x13, #33        ; 2*m + 33
    addi x14, x12, #1
    lsl x13, x13, x14
    lsri x13, x13, #1         ; reconstructed magnitude
    andi x15, x11, #0x80
    beq x15, xzr, store
    sub x13, xzr, x13
store:
    add x26, x26, x13
    addi x1, x1, #8
    subi x2, x2, #1
    bne x2, xzr, sample
    movz x1, =result
    str x26, [x1]
    halt
)";

// k-nearest-neighbour scoring: Q queries against R reference vectors
// (dim 8), maintaining the best-3 distances by insertion.
const char *srcCogKnn = R"(
    .equ Q, 48
    .equ REFS, 192
    .equ DIM, 8
    .data
queries:
    .space 3072
refs:
    .space 12288
result:
    .space 8
    .text
_start:
    movz x1, =queries         ; ---- init queries + refs ----
    movz x2, #1920            ; (Q + REFS) * DIM
    movz x3, #246810
init:
    muli x3, x3, #6364136223846793005
    addi x3, x3, #1442695040888963407
    lsri x4, x3, #40
    fcvt f0, x4
    fmovi f1, #16777216.0
    fdiv f0, f0, f1
    fstr f0, [x1]
    addi x1, x1, #8
    subi x2, x2, #1
    bne x2, xzr, init
warmup_done:
    fmovi f20, #0.0           ; sum of best-3 distances
    movz x5, #0               ; query index
qloop:
    fmovi f10, #1000000.0     ; best
    fmovi f11, #1000000.0     ; second
    fmovi f12, #1000000.0     ; third
    movz x6, #0               ; ref index
rloop:
    fmovi f2, #0.0            ; distance accumulator
    movz x7, #0               ; dim
dloop:
    movz x8, =queries
    muli x9, x5, #DIM
    add x9, x9, x7
    lsli x9, x9, #3
    add x9, x8, x9
    fldr f3, [x9]
    movz x8, =refs
    muli x10, x6, #DIM
    add x10, x10, x7
    lsli x10, x10, #3
    add x10, x8, x10
    fldr f4, [x10]
    fsub f5, f3, f4
    fmadd f2, f5, f5, f2
    addi x7, x7, #1
    movz x11, #DIM
    blt x7, x11, dloop
    ; insertion into best-3
    flt x12, f2, f10
    beq x12, xzr, try2
    fmov f12, f11
    fmov f11, f10
    fmov f10, f2
    b inserted
try2:
    flt x12, f2, f11
    beq x12, xzr, try3
    fmov f12, f11
    fmov f11, f2
    b inserted
try3:
    flt x12, f2, f12
    beq x12, xzr, inserted
    fmov f12, f2
inserted:
    addi x6, x6, #1
    movz x11, #REFS
    blt x6, x11, rloop
    fadd f13, f10, f11
    fadd f13, f13, f12
    fadd f20, f20, f13
    addi x5, x5, #1
    movz x11, #Q
    blt x5, x11, qloop
    fmovi f1, #1024.0
    fmul f20, f20, f1
    fcvti x2, f20
    movz x1, =result
    str x2, [x1]
    halt
)";

} // namespace rrs::workloads
