/**
 * @file
 * Mediabench-style kernels: an ADPCM-flavoured waveform encoder, an
 * 8x8 separable integer DCT, and Sobel edge detection — fixed-point
 * signal-processing loops with table lookups, clamps and data-dependent
 * branches.
 */

#include "workloads.hh"

namespace rrs::workloads {

// ADPCM-style encoder: predict, quantise delta with an adaptive step,
// update predictor, clamp.  Step adaptation is multiplicative (3/2 up,
// 3/4 down) instead of the canonical 89-entry table; the instruction
// mix (loads, shifts, compare-branch chains) matches the original.
const char *srcMediaAdpcm = R"(
    .equ N, 16384
    .equ R, 2
    .data
pcm:
    .space 131072
out:
    .space 16384
result:
    .space 8
    .text
_start:
    movz x1, =pcm             ; ---- synth waveform ----
    movz x2, #N
    movz x3, #11111
    movz x9, #0               ; triangle accumulator
    movz x10, #64             ; slope
fill:
    muli x3, x3, #6364136223846793005
    addi x3, x3, #1442695040888963407
    lsri x4, x3, #58          ; small noise
    add x9, x9, x10
    movz x5, #16000
    blt x9, x5, noflip
    movz x6, #0
    sub x10, x6, x10          ; invert slope
noflip:
    add x7, x9, x4
    str x7, [x1]
    addi x1, x1, #8
    subi x2, x2, #1
    bne x2, xzr, fill
warmup_done:
    movz x20, #R
    movz x26, #0
round:
    movz x1, =pcm
    movz x2, =out
    movz x3, #N
    movz x5, #0               ; predictor
    movz x6, #16              ; step
sample:
    ldr x7, [x1]              ; sample
    sub x8, x7, x5            ; delta
    movz x9, #0               ; code
    bge x8, xzr, positive
    movz x9, #8               ; sign bit
    sub x8, xzr, x8           ; |delta|
positive:
    div x10, x8, x6           ; magnitude = delta/step
    movz x11, #7
    blt x10, x11, small
    mov x10, x11              ; clamp to 7
small:
    orr x9, x9, x10           ; code = sign | mag
    strb x9, [x2]
    mul x12, x10, x6          ; reconstructed delta
    andi x13, x9, #8
    beq x13, xzr, addup
    sub x5, x5, x12
    b adapt
addup:
    add x5, x5, x12
adapt:
    movz x14, #4
    bge x10, x14, stepup      ; large codes: step *= 3/2
    muli x6, x6, #3
    lsri x6, x6, #2           ; step *= 3/4
    b stepclamp
stepup:
    muli x6, x6, #3
    lsri x6, x6, #1
stepclamp:
    movz x15, #16
    bge x6, x15, stepmax
    mov x6, x15
stepmax:
    movz x15, #8192
    blt x6, x15, stepok
    mov x6, x15
stepok:
    add x26, x26, x9
    addi x1, x1, #8
    addi x2, x2, #1
    subi x3, x3, #1
    bne x3, xzr, sample
    subi x20, x20, #1
    bne x20, xzr, round
    movz x1, =result
    str x26, [x1]
    halt
)";

// Separable 8x8 integer DCT over B blocks: rows then columns, using a
// Q12 fixed-point cosine table built at startup from a polynomial
// cosine approximation.
const char *srcMediaDct = R"(
    .equ B, 64
    .data
costab:
    .space 512
blocks:
    .space 32768
tmp:
    .space 512
result:
    .space 8
    .text
_start:
    ; ---- build Q12 cosine table: costab[u][k] ~ cos((2k+1)u*pi/16) ----
    ; theta = (2k+1)*u*201/1024  (201/1024 ~ pi/16 in Q10-ish)
    movz x5, #0               ; u
tabu:
    movz x6, #0               ; k
tabk:
    lsli x7, x6, #1
    addi x7, x7, #1           ; 2k+1
    mul x7, x7, x5
    muli x7, x7, #201         ; theta in Q10 (approx radians<<10)
    ; reduce theta into [0, 2pi<<10) ~ 6434
    movz x8, #6434
    rem x7, x7, x8
    ; cos via quadratic approximation per quadrant:
    ; fold into [0, pi<<10) with sign
    movz x9, #3217            ; pi<<10
    movz x10, #1              ; sign
    blt x7, x9, fold1
    sub x7, x7, x9
    movz x11, #0
    sub x10, x11, x10         ; sign = -1
fold1:
    ; cos(t) ~ 4096 - t^2*4096/(pi/2<<10)^2 scaled: use (1608)^2
    movz x12, #1608           ; pi/2<<10
    blt x7, x12, cosq
    ; second quarter: cos(t) = -cos(pi - t)
    sub x7, x9, x7
    movz x11, #0
    sub x10, x11, x10
cosq:
    mul x13, x7, x7           ; t^2
    movz x14, #631            ; (1608^2/4096)
    div x13, x13, x14         ; t^2 scaled to Q12
    movz x15, #4096
    sub x13, x15, x13         ; cos in Q12
    mul x13, x13, x10         ; apply sign
    ; store costab[u*8+k]
    movz x16, =costab
    muli x17, x5, #8
    add x17, x17, x6
    lsli x17, x17, #3
    add x17, x16, x17
    str x13, [x17]
    addi x6, x6, #1
    movz x18, #8
    blt x6, x18, tabk
    addi x5, x5, #1
    blt x5, x18, tabu
    ; ---- init blocks ----
    movz x1, =blocks
    movz x2, #4096            ; B*64
    movz x3, #333
initb:
    muli x3, x3, #6364136223846793005
    addi x3, x3, #1442695040888963407
    lsri x4, x3, #56
    str x4, [x1]
    addi x1, x1, #8
    subi x2, x2, #1
    bne x2, xzr, initb
warmup_done:
    ; ---- DCT per block ----
    movz x19, #0              ; block index
    movz x26, #0
blockloop:
    movz x21, =blocks
    muli x22, x19, #512
    add x21, x21, x22         ; block base
    ; rows: tmp[u][k... tmp[r][u] = sum_k blk[r][k]*costab[u][k]
    movz x5, #0               ; r
rowr:
    movz x6, #0               ; u
rowu:
    movz x7, #0               ; k
    movz x8, #0               ; acc
rowk:
    muli x9, x5, #8
    add x9, x9, x7
    lsli x9, x9, #3
    add x9, x21, x9
    ldr x10, [x9]             ; blk[r][k]
    movz x11, =costab
    muli x12, x6, #8
    add x12, x12, x7
    lsli x12, x12, #3
    add x12, x11, x12
    ldr x13, [x12]
    mul x14, x10, x13
    add x8, x8, x14
    addi x7, x7, #1
    movz x15, #8
    blt x7, x15, rowk
    asri x8, x8, #12          ; back to integer range
    movz x16, =tmp
    muli x17, x5, #8
    add x17, x17, x6
    lsli x17, x17, #3
    add x17, x16, x17
    str x8, [x17]
    addi x6, x6, #1
    movz x15, #8
    blt x6, x15, rowu
    addi x5, x5, #1
    blt x5, x15, rowr
    ; columns: blk[v][c] = sum_r tmp[r][c]*costab[v][r]
    movz x5, #0               ; c
colc:
    movz x6, #0               ; v
colv:
    movz x7, #0               ; r
    movz x8, #0
colr:
    movz x16, =tmp
    muli x9, x7, #8
    add x9, x9, x5
    lsli x9, x9, #3
    add x9, x16, x9
    ldr x10, [x9]
    movz x11, =costab
    muli x12, x6, #8
    add x12, x12, x7
    lsli x12, x12, #3
    add x12, x11, x12
    ldr x13, [x12]
    mul x14, x10, x13
    add x8, x8, x14
    addi x7, x7, #1
    movz x15, #8
    blt x7, x15, colr
    asri x8, x8, #12
    muli x9, x6, #8
    add x9, x9, x5
    lsli x9, x9, #3
    add x9, x21, x9
    str x8, [x9]
    add x26, x26, x8
    addi x6, x6, #1
    movz x15, #8
    blt x6, x15, colv
    addi x5, x5, #1
    blt x5, x15, colc
    addi x19, x19, #1
    movz x18, #B
    blt x19, x18, blockloop
    movz x1, =result
    str x26, [x1]
    halt
)";

// Sobel edge detection over a WxH image with magnitude thresholding.
const char *srcMediaSobel = R"(
    .equ W, 128
    .equ H, 128
    .equ R, 1
    .data
img:
    .space 16384
result:
    .space 8
    .text
_start:
    movz x1, =img             ; ---- synth image ----
    movz x2, #16384           ; W*H bytes
    movz x3, #171717
fill:
    muli x3, x3, #6364136223846793005
    addi x3, x3, #1442695040888963407
    lsri x4, x3, #57
    strb x4, [x1]
    addi x1, x1, #1
    subi x2, x2, #1
    bne x2, xzr, fill
warmup_done:
    movz x20, #R
    movz x26, #0
round:
    movz x5, #1               ; y in [1, H-2]
yloop:
    movz x6, #1               ; x in [1, W-2]
xloop:
    movz x7, =img
    muli x8, x5, #W
    add x8, x8, x6
    add x8, x7, x8            ; &img[y][x]
    ; neighbours (p = img[y+dy][x+dx])
    ldrb x9,  [x8, #-129]     ; (-1,-1)
    ldrb x10, [x8, #-128]     ; (-1, 0)
    ldrb x11, [x8, #-127]     ; (-1,+1)
    ldrb x12, [x8, #-1]       ; ( 0,-1)
    ldrb x13, [x8, #1]        ; ( 0,+1)
    ldrb x14, [x8, #127]      ; (+1,-1)
    ldrb x15, [x8, #128]      ; (+1, 0)
    ldrb x16, [x8, #129]      ; (+1,+1)
    ; gx = (p11 + 2*p21 + p31) - (p13 + 2*p23 + p33)
    lsli x17, x13, #1
    add x18, x11, x17
    add x18, x18, x16
    lsli x17, x12, #1
    add x19, x9, x17
    add x19, x19, x14
    sub x18, x18, x19         ; gx
    ; gy = bottom - top
    lsli x17, x15, #1
    add x21, x14, x17
    add x21, x21, x16
    lsli x17, x10, #1
    add x22, x9, x17
    add x22, x22, x11
    sub x21, x21, x22         ; gy
    ; |gx| + |gy|
    bge x18, xzr, gxpos
    sub x18, xzr, x18
gxpos:
    bge x21, xzr, gypos
    sub x21, xzr, x21
gypos:
    add x23, x18, x21
    movz x24, #128
    blt x23, x24, noedge
    addi x26, x26, #1
noedge:
    addi x6, x6, #1
    movz x25, #127            ; W-1
    blt x6, x25, xloop
    addi x5, x5, #1
    blt x5, x25, yloop
    subi x20, x20, #1
    bne x20, xzr, round
    movz x1, =result
    str x26, [x1]
    halt
)";

} // namespace rrs::workloads
