/**
 * @file
 * SPECfp-style floating-point kernels: dense matmul, FIR filtering, a
 * Jacobi stencil, an n-body step, Horner polynomial evaluation and a
 * chained elementwise pipeline.  Long arithmetic dependence chains and
 * the high single-use value fractions the paper reports for SPECfp.
 */

#include "workloads.hh"

namespace rrs::workloads {

// Dense NxN double matrix multiply, C = A*B.
const char *srcFpMatmul = R"(
    .equ N, 40
    .equ R, 1
    .data
A:
    .space 12800
B:
    .space 12800
C:
    .space 12800
result:
    .space 8
    .text
_start:
    movz x1, =A               ; ---- init A and B ----
    movz x2, #3200            ; 2*N*N elements
    movz x3, #13579
init:
    muli x3, x3, #6364136223846793005
    addi x3, x3, #1442695040888963407
    lsri x4, x3, #40
    fcvt f0, x4
    fmovi f1, #16777216.0
    fdiv f0, f0, f1
    fstr f0, [x1]
    addi x1, x1, #8
    subi x2, x2, #1
    bne x2, xzr, init
warmup_done:
    movz x20, #R
round:
    movz x5, #0               ; i
iloop:
    movz x6, #0               ; j
jloop:
    fmovi f2, #0.0            ; acc
    movz x7, #0               ; k
kloop:
    movz x8, =A               ; A[i][k]
    muli x9, x5, #N
    add x9, x9, x7
    lsli x9, x9, #3
    add x9, x8, x9
    fldr f3, [x9]
    movz x8, =B               ; B[k][j]
    muli x10, x7, #N
    add x10, x10, x6
    lsli x10, x10, #3
    add x10, x8, x10
    fldr f4, [x10]
    fmadd f2, f3, f4, f2
    addi x7, x7, #1
    movz x11, #N
    blt x7, x11, kloop
    movz x8, =C               ; C[i][j] = acc
    muli x9, x5, #N
    add x9, x9, x6
    lsli x9, x9, #3
    add x9, x8, x9
    fstr f2, [x9]
    addi x6, x6, #1
    movz x11, #N
    blt x6, x11, jloop
    addi x5, x5, #1
    movz x11, #N
    blt x5, x11, iloop
    subi x20, x20, #1
    bne x20, xzr, round
    movz x1, =C               ; checksum C[0][0]
    fldr f0, [x1]
    fcvti x2, f0
    movz x1, =result
    str x2, [x1]
    halt
)";

// T-tap FIR filter over S samples.
const char *srcFpFir = R"(
    .equ S, 6144
    .equ T, 16
    .equ R, 1
    .data
x:
    .space 49280
h:
    .space 128
y:
    .space 49152
result:
    .space 8
    .text
_start:
    movz x1, =x               ; ---- init samples (S + T guard) ----
    movz x2, #6160
    movz x3, #24680
initx:
    muli x3, x3, #6364136223846793005
    addi x3, x3, #1442695040888963407
    lsri x4, x3, #40
    fcvt f0, x4
    fmovi f1, #16777216.0
    fdiv f0, f0, f1
    fstr f0, [x1]
    addi x1, x1, #8
    subi x2, x2, #1
    bne x2, xzr, initx
    movz x1, =h               ; taps: decaying weights
    movz x2, #T
    fmovi f0, #0.5
    fmovi f1, #0.93
inith:
    fstr f0, [x1]
    fmul f0, f0, f1
    addi x1, x1, #8
    subi x2, x2, #1
    bne x2, xzr, inith
warmup_done:
    movz x20, #R
round:
    movz x5, #0               ; n
nloop:
    fmovi f2, #0.0
    movz x6, #0               ; t
tloop:
    movz x7, =x               ; x[n+t]
    add x8, x5, x6
    lsli x8, x8, #3
    add x8, x7, x8
    fldr f3, [x8]
    movz x7, =h               ; h[t]
    lsli x9, x6, #3
    add x9, x7, x9
    fldr f4, [x9]
    fmadd f2, f3, f4, f2
    addi x6, x6, #1
    movz x10, #T
    blt x6, x10, tloop
    movz x7, =y
    lsli x8, x5, #3
    add x8, x7, x8
    fstr f2, [x8]
    addi x5, x5, #1
    movz x10, #S
    blt x5, x10, nloop
    subi x20, x20, #1
    bne x20, xzr, round
    movz x1, =y
    fldr f0, [x1, #8]
    fcvti x2, f0
    movz x1, =result
    str x2, [x1]
    halt
)";

// Jacobi 5-point stencil on a GxG grid, ping-pong buffers.
const char *srcFpJacobi = R"(
    .equ G, 80
    .equ ITERS, 6
    .data
u0:
    .space 51200
u1:
    .space 51200
result:
    .space 8
    .text
_start:
    movz x1, =u0              ; ---- init grid ----
    movz x2, #6400            ; G*G
    movz x3, #999
init:
    muli x3, x3, #6364136223846793005
    addi x3, x3, #1442695040888963407
    lsri x4, x3, #40
    fcvt f0, x4
    fmovi f1, #16777216.0
    fdiv f0, f0, f1
    fstr f0, [x1]
    addi x1, x1, #8
    subi x2, x2, #1
    bne x2, xzr, init
warmup_done:
    movz x20, #ITERS
    movz x21, =u0             ; src
    movz x22, =u1             ; dst
round:
    movz x5, #1               ; i in [1, G-2]
iloop:
    movz x6, #1               ; j
jloop:
    muli x7, x5, #G
    add x7, x7, x6
    lsli x7, x7, #3           ; centre offset
    add x8, x21, x7
    fldr f0, [x8, #-8]        ; left
    fldr f1, [x8, #8]         ; right
    movz x9, #640             ; G*8
    sub x10, x8, x9
    fldr f2, [x10]            ; up
    add x11, x8, x9
    fldr f3, [x11]            ; down
    fadd f4, f0, f1
    fadd f5, f2, f3
    fadd f6, f4, f5
    fmovi f7, #0.25
    fmul f6, f6, f7
    add x12, x22, x7
    fstr f6, [x12]
    addi x6, x6, #1
    movz x13, #79             ; G-1
    blt x6, x13, jloop
    addi x5, x5, #1
    blt x5, x13, iloop
    mov x14, x21              ; swap buffers
    mov x21, x22
    mov x22, x14
    subi x20, x20, #1
    bne x20, xzr, round
    movz x15, #648            ; (G+1)*8: u[1][1]
    add x1, x21, x15
    fldr f0, [x1]
    fcvti x2, f0
    movz x1, =result
    str x2, [x1]
    halt
)";

// One O(N^2) n-body force step (softened gravity) plus integration.
const char *srcFpNbody = R"(
    .equ NB, 56
    .equ R, 2
    .data
px:
    .space 448
py:
    .space 448
vx:
    .space 448
vy:
    .space 448
result:
    .space 8
    .text
_start:
    movz x1, =px              ; ---- init positions ----
    movz x2, #112             ; px..vy region is 4*NB doubles? init px,py only (2*NB)
    movz x3, #777
init:
    muli x3, x3, #6364136223846793005
    addi x3, x3, #1442695040888963407
    lsri x4, x3, #40
    fcvt f0, x4
    fmovi f1, #8388608.0
    fdiv f0, f0, f1
    fstr f0, [x1]
    addi x1, x1, #8
    subi x2, x2, #1
    bne x2, xzr, init
warmup_done:
    movz x20, #R
round:
    movz x5, #0               ; i
iloop:
    fmovi f10, #0.0           ; ax
    fmovi f11, #0.0           ; ay
    movz x7, =px
    lsli x8, x5, #3
    add x9, x7, x8
    fldr f0, [x9]             ; px[i]
    movz x7, =py
    add x9, x7, x8
    fldr f1, [x9]             ; py[i]
    movz x6, #0               ; j
jloop:
    beq x6, x5, skip
    movz x7, =px
    lsli x10, x6, #3
    add x11, x7, x10
    fldr f2, [x11]            ; px[j]
    movz x7, =py
    add x11, x7, x10
    fldr f3, [x11]            ; py[j]
    fsub f4, f2, f0           ; dx
    fsub f5, f3, f1           ; dy
    fmul f6, f4, f4
    fmadd f6, f5, f5, f6      ; d2 = dx*dx + dy*dy
    fmovi f7, #0.01
    fadd f6, f6, f7           ; softening
    fsqrt f8, f6
    fmul f8, f8, f6           ; d^3
    fmovi f9, #1.0
    fdiv f8, f9, f8           ; inv d^3
    fmul f4, f4, f8
    fmul f5, f5, f8
    fadd f10, f10, f4
    fadd f11, f11, f5
skip:
    addi x6, x6, #1
    movz x12, #NB
    blt x6, x12, jloop
    movz x7, =vx              ; integrate velocities
    add x9, x7, x8
    fldr f12, [x9]
    fmovi f13, #0.001
    fmadd f12, f10, f13, f12
    fstr f12, [x9]
    movz x7, =vy
    add x9, x7, x8
    fldr f14, [x9]
    fmadd f14, f11, f13, f14
    fstr f14, [x9]
    addi x5, x5, #1
    movz x12, #NB
    blt x5, x12, iloop
    subi x20, x20, #1
    bne x20, xzr, round
    movz x1, =vx
    fldr f0, [x1]
    fmovi f1, #1000000.0
    fmul f0, f0, f1
    fcvti x2, f0
    movz x1, =result
    str x2, [x1]
    halt
)";

// Degree-D Horner polynomial evaluation at P points: a pure serial
// fmadd chain that redefines its accumulator (the paper's favourite
// single-use pattern).
const char *srcFpHorner = R"(
    .equ P, 8192
    .equ DEG, 14
    .data
coef:
    .space 128
pts:
    .space 65536
result:
    .space 8
    .text
_start:
    movz x1, =coef            ; ---- coefficients ----
    movz x2, #15              ; DEG+1
    fmovi f0, #0.8
    fmovi f1, #-0.61
initc:
    fstr f0, [x1]
    fmul f0, f0, f1
    addi x1, x1, #8
    subi x2, x2, #1
    bne x2, xzr, initc
    movz x1, =pts             ; ---- points in [0,1) ----
    movz x2, #P
    movz x3, #31415
initp:
    muli x3, x3, #6364136223846793005
    addi x3, x3, #1442695040888963407
    lsri x4, x3, #40
    fcvt f0, x4
    fmovi f1, #16777216.0
    fdiv f0, f0, f1
    fstr f0, [x1]
    addi x1, x1, #8
    subi x2, x2, #1
    bne x2, xzr, initp
warmup_done:
    fmovi f20, #0.0           ; checksum
    movz x5, #0               ; point index
ploop:
    movz x6, =pts
    lsli x7, x5, #3
    add x7, x6, x7
    fldr f2, [x7]             ; x
    movz x8, =coef
    fldr f3, [x8]             ; acc = c[0]
    movz x9, #1               ; k
hloop:
    lsli x10, x9, #3
    add x10, x8, x10
    fldr f4, [x10]            ; c[k]
    fmadd f3, f3, f2, f4      ; acc = acc*x + c[k]
    addi x9, x9, #1
    movz x11, #15
    blt x9, x11, hloop
    fadd f20, f20, f3
    addi x5, x5, #1
    movz x12, #P
    blt x5, x12, ploop
    fmovi f1, #1024.0
    fmul f20, f20, f1
    fcvti x2, f20
    movz x1, =result
    str x2, [x1]
    halt
)";

// Chained elementwise vector pipeline: each element flows through a
// chain of dependent multiply-adds with single-use intermediates.
const char *srcFpChain = R"(
    .equ N, 8192
    .equ R, 3
    .data
v:
    .space 65536
result:
    .space 8
    .text
_start:
    movz x1, =v
    movz x2, #N
    movz x3, #2718
init:
    muli x3, x3, #6364136223846793005
    addi x3, x3, #1442695040888963407
    lsri x4, x3, #40
    fcvt f0, x4
    fmovi f1, #16777216.0
    fdiv f0, f0, f1
    fstr f0, [x1]
    addi x1, x1, #8
    subi x2, x2, #1
    bne x2, xzr, init
warmup_done:
    movz x20, #R
    fmovi f10, #1.0001
    fmovi f11, #0.25
    fmovi f12, #-0.125
    fmovi f13, #0.0625
round:
    movz x5, #0
eloop:
    movz x6, =v
    lsli x7, x5, #3
    add x7, x6, x7
    fldr f0, [x7]
    fmadd f0, f0, f10, f11    ; chain of redefining fmadds
    fmadd f0, f0, f10, f12
    fmadd f0, f0, f10, f13
    fmadd f0, f0, f10, f11
    fmadd f0, f0, f10, f12
    fmadd f0, f0, f10, f13
    fmadd f0, f0, f10, f11
    fmadd f0, f0, f10, f12
    fstr f0, [x7]
    addi x5, x5, #1
    movz x8, #N
    blt x5, x8, eloop
    subi x20, x20, #1
    bne x20, xzr, round
    movz x1, =v
    fldr f0, [x1]
    fmovi f1, #65536.0
    fmul f0, f0, f1
    fcvti x2, f0
    movz x1, =result
    str x2, [x1]
    halt
)";

} // namespace rrs::workloads
