/**
 * @file
 * Cognitive-computing kernels mirroring the paper's GMM and DNN
 * additions: a GMM acoustic-scoring distance kernel (weighted
 * Mahalanobis accumulation with a running max, the arithmetic core of
 * acoustic scoring) and a dense fully-connected DNN layer with ReLU.
 */

#include "workloads.hh"

namespace rrs::workloads {

// GMM scoring: for F frames of dimension DIM against M diagonal
// Gaussians, score_m = -0.5 * sum_d prec[m][d] * (x[d]-mu[m][d])^2,
// keeping the best score per frame (max-approximation of log-sum-exp,
// as in acoustic scoring).
const char *srcCogGmm = R"(
    .equ F, 192
    .equ M, 32
    .equ DIM, 16
    .data
frames:
    .space 24576
mu:
    .space 4096
prec:
    .space 4096
result:
    .space 8
    .text
_start:
    movz x1, =frames          ; ---- init frames, mu, prec ----
    movz x2, #4096            ; F*DIM + 2*M*DIM doubles
    movz x3, #8642
init:
    muli x3, x3, #6364136223846793005
    addi x3, x3, #1442695040888963407
    lsri x4, x3, #40
    fcvt f0, x4
    fmovi f1, #16777216.0
    fdiv f0, f0, f1
    fstr f0, [x1]
    addi x1, x1, #8
    subi x2, x2, #1
    bne x2, xzr, init
warmup_done:
    fmovi f20, #0.0           ; total score
    movz x5, #0               ; frame
floop:
    fmovi f10, #-1000000.0    ; best score
    movz x6, #0               ; mixture
mloop:
    fmovi f2, #0.0            ; acc
    movz x7, #0               ; d
dloop:
    movz x8, =frames
    muli x9, x5, #DIM
    add x9, x9, x7
    lsli x9, x9, #3
    add x9, x8, x9
    fldr f3, [x9]             ; x[d]
    movz x8, =mu
    muli x10, x6, #DIM
    add x10, x10, x7
    lsli x10, x10, #3
    add x11, x8, x10
    fldr f4, [x11]            ; mu[m][d]
    movz x8, =prec
    add x12, x8, x10
    fldr f5, [x12]            ; prec[m][d]
    fsub f6, f3, f4
    fmul f7, f6, f6
    fmadd f2, f7, f5, f2      ; acc += prec*(x-mu)^2
    addi x7, x7, #1
    movz x13, #DIM
    blt x7, x13, dloop
    fmovi f8, #-0.5
    fmul f9, f2, f8           ; score
    fmax f10, f10, f9         ; best = max(best, score)
    addi x6, x6, #1
    movz x13, #M
    blt x6, x13, mloop
    fadd f20, f20, f10
    addi x5, x5, #1
    movz x13, #F
    blt x5, x13, floop
    fmovi f1, #1024.0
    fmul f20, f20, f1
    fcvti x2, f20
    movz x1, =result
    str x2, [x1]
    halt
)";

// Dense fully-connected DNN layer: OUT neurons x IN inputs, batch
// BATCH, ReLU activation via fmax.
const char *srcCogDnn = R"(
    .equ IN, 128
    .equ OUT, 64
    .equ BATCH, 8
    .data
weights:
    .space 65536
bias:
    .space 512
acts:
    .space 8192
outbuf:
    .space 4096
result:
    .space 8
    .text
_start:
    movz x1, =weights         ; ---- init weights + bias + acts ----
    movz x2, #9280            ; OUT*IN + OUT + BATCH*IN doubles
    movz x3, #97531
init:
    muli x3, x3, #6364136223846793005
    addi x3, x3, #1442695040888963407
    lsri x4, x3, #40
    fcvt f0, x4
    fmovi f1, #16777216.0
    fdiv f0, f0, f1
    fmovi f2, #-0.5
    fadd f0, f0, f2           ; centre around zero
    fstr f0, [x1]
    addi x1, x1, #8
    subi x2, x2, #1
    bne x2, xzr, init
warmup_done:
    fmovi f20, #0.0
    movz x5, #0               ; batch element
bloop:
    movz x6, #0               ; output neuron
oloop:
    movz x7, =bias
    lsli x8, x6, #3
    add x8, x7, x8
    fldr f2, [x8]             ; acc = bias[o]
    movz x9, #0               ; input index
iloop:
    movz x10, =weights
    muli x11, x6, #IN
    add x11, x11, x9
    lsli x11, x11, #3
    add x11, x10, x11
    fldr f3, [x11]            ; w[o][i]
    movz x10, =acts
    muli x12, x5, #IN
    add x12, x12, x9
    lsli x12, x12, #3
    add x12, x10, x12
    fldr f4, [x12]            ; a[b][i]
    fmadd f2, f3, f4, f2
    addi x9, x9, #1
    movz x13, #IN
    blt x9, x13, iloop
    fmovi f5, #0.0
    fmax f2, f2, f5           ; ReLU
    movz x10, =outbuf
    muli x14, x5, #OUT
    add x14, x14, x6
    lsli x14, x14, #3
    add x14, x10, x14
    fstr f2, [x14]
    fadd f20, f20, f2
    addi x6, x6, #1
    movz x13, #OUT
    blt x6, x13, oloop
    addi x5, x5, #1
    movz x13, #BATCH
    blt x5, x13, bloop
    fmovi f1, #1024.0
    fmul f20, f20, f1
    fcvti x2, f20
    movz x1, =result
    str x2, [x1]
    halt
)";

} // namespace rrs::workloads
