/**
 * @file
 * A small work-stealing thread pool for fan-out over independent
 * simulation runs.
 *
 * Design points, driven by how the sweep engine uses it:
 *
 *  - Fixed worker count, chosen at construction.  `0` picks the
 *    default: the `RRS_THREADS` environment variable if set, otherwise
 *    the hardware concurrency.  `RRS_THREADS=1` degenerates to
 *    caller-executes-everything (no worker threads at all), which keeps
 *    single-threaded runs trivially debuggable.
 *  - Each worker owns a deque: it pushes and pops its own work LIFO
 *    (cache-friendly for nested tasks) and steals FIFO from victims
 *    when empty.  External submitters round-robin across deques.
 *  - Tasks may submit tasks (nested submission): a task running on a
 *    worker enqueues onto that worker's own deque.
 *  - Exceptions thrown by tasks are captured; the *first* one (in
 *    completion order) is rethrown from wait().  Remaining tasks still
 *    run — a sweep never deadlocks because one config asserted.
 *  - The thread that calls wait() participates: it executes queued
 *    tasks instead of blocking while work remains, so a pool of N
 *    workers plus the caller gives N+1 lanes and `numWorkers() == 0`
 *    still makes progress.
 *
 * The pool provides *no* ordering or affinity guarantees.  Determinism
 * of results is the submitting code's contract: every task must be
 * self-contained (own RNG, own stats, writes only its own output slot),
 * which is exactly how harness::SweepRunner uses it.
 */

#ifndef RRS_COMMON_THREADPOOL_HH
#define RRS_COMMON_THREADPOOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rrs {

/** The pool. */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /**
     * @param numThreads total execution lanes requested; 0 picks
     *        defaultThreadCount().  The pool spawns numThreads-1
     *        workers because the caller of wait()/parallelFor() is
     *        itself a lane.
     */
    explicit ThreadPool(unsigned numThreads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * `RRS_THREADS` if set to a positive integer, else
     * std::thread::hardware_concurrency(), else 1.
     */
    static unsigned defaultThreadCount();

    /** Execution lanes: worker threads + the participating caller. */
    unsigned numThreads() const { return numWorkers_ + 1; }

    /** Worker threads actually spawned (numThreads() - 1). */
    unsigned numWorkers() const { return numWorkers_; }

    /** Enqueue a task.  Thread-safe; callable from inside tasks. */
    void submit(Task task);

    /**
     * Block until every submitted task has finished, executing queued
     * tasks on the calling thread while any remain.  Rethrows the
     * first captured task exception, if any.
     */
    void wait();

    /**
     * Run fn(0) .. fn(n-1) across the pool and return once all have
     * finished (the caller executes its share).  Equivalent to n
     * submit() calls plus wait(), and like wait() it rethrows the
     * first captured exception.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

  private:
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<Task> tasks;
    };

    void workerLoop(std::size_t self);

    /** Pop from our own deque (LIFO) or steal from a victim (FIFO). */
    bool takeTask(std::size_t self, Task &out);

    /** One bookkeeping step: run a task and update pending counts. */
    void runTask(Task &task);

    void enqueueOn(std::size_t queueIdx, Task &&task);

    unsigned numWorkers_ = 0;
    std::vector<std::unique_ptr<WorkerQueue>> queues;
    std::vector<std::thread> workers;

    std::mutex stateMutex;
    std::condition_variable workAvailable;  //!< workers sleep here
    std::condition_variable allDone;        //!< wait() sleeps here
    std::size_t pendingTasks = 0;           //!< submitted, not finished
    bool shuttingDown = false;
    std::atomic<std::size_t> nextQueue{0};  //!< external round-robin
    std::exception_ptr firstError;          //!< rethrown by wait()
};

} // namespace rrs

#endif // RRS_COMMON_THREADPOOL_HH
