/**
 * @file
 * String helpers used by the assembler, config handling and reporters:
 * trimming, splitting, case folding and numeric parsing with error
 * reporting.
 */

#ifndef RRS_COMMON_STRUTILS_HH
#define RRS_COMMON_STRUTILS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rrs {

/** Strip leading and trailing whitespace. */
std::string_view trim(std::string_view s);

/** Split on a delimiter character; empty fields are kept. */
std::vector<std::string_view> split(std::string_view s, char delim);

/** Split on any run of whitespace; empty fields are dropped. */
std::vector<std::string_view> splitWhitespace(std::string_view s);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view s);

/** True if s starts with the given prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/**
 * Parse a signed integer; accepts decimal, 0x-hex and a leading '-'
 * or '#' (ARM-style immediate marker).  Returns nullopt on garbage.
 */
std::optional<std::int64_t> parseInt(std::string_view s);

/**
 * Parse a double.  Returns nullopt on garbage.  Locale-independent:
 * the decimal separator is always '.', whatever the global locale says
 * (std::strtod would honour a comma-decimal locale and misparse every
 * float in stats-json, BENCH_*.json and sweep matrices).
 */
std::optional<double> parseDouble(std::string_view s);

/**
 * Locale-independent strtod-style prefix parse: reads the longest
 * valid floating-point number starting at `first` (JSON/C grammar,
 * '.' decimal separator regardless of the global locale) into `out`.
 * @return pointer one past the parsed text, or `first` when no number
 *         starts there.
 */
const char *parseDoublePrefix(const char *first, const char *last,
                              double &out);

} // namespace rrs

#endif // RRS_COMMON_STRUTILS_HH
