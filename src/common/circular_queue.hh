/**
 * @file
 * Fixed-capacity circular FIFO used to model hardware queues (fetch
 * queue, ROB, LSQ, store buffer).  Unlike std::deque it has a hard
 * capacity, O(1) everything, and stable logical indexing from the head,
 * which is what pipeline-stage code wants.
 */

#ifndef RRS_COMMON_CIRCULAR_QUEUE_HH
#define RRS_COMMON_CIRCULAR_QUEUE_HH

#include <cstddef>
#include <vector>

#include "logging.hh"

namespace rrs {

/**
 * Bounded circular queue.  Elements are pushed at the back and popped
 * from the front (or from the back, for squash-from-tail semantics).
 *
 * @tparam T element type
 */
template <typename T>
class CircularQueue
{
  public:
    /** Create a queue with the given hard capacity. */
    explicit CircularQueue(std::size_t capacity)
        : buf(capacity), cap(capacity)
    {
        rrs_assert(capacity > 0, "queue capacity must be positive");
    }

    std::size_t capacity() const { return cap; }
    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }
    bool full() const { return count == cap; }
    std::size_t freeSlots() const { return cap - count; }

    /** Append an element at the tail. Queue must not be full. */
    void
    pushBack(T value)
    {
        rrs_assert(!full(), "pushBack on full queue");
        buf[(head + count) % cap] = std::move(value);
        ++count;
    }

    /** Remove and discard the head element. */
    void
    popFront()
    {
        rrs_assert(!empty(), "popFront on empty queue");
        head = (head + 1) % cap;
        --count;
    }

    /** Remove and discard the tail element (squash youngest). */
    void
    popBack()
    {
        rrs_assert(!empty(), "popBack on empty queue");
        --count;
    }

    /** Head (oldest) element. */
    T &front() { rrs_assert(!empty(), "front of empty"); return buf[head]; }
    const T &
    front() const
    {
        rrs_assert(!empty(), "front of empty");
        return buf[head];
    }

    /** Tail (youngest) element. */
    T &
    back()
    {
        rrs_assert(!empty(), "back of empty");
        return buf[(head + count - 1) % cap];
    }
    const T &
    back() const
    {
        rrs_assert(!empty(), "back of empty");
        return buf[(head + count - 1) % cap];
    }

    /** i-th element counting from the head (0 == oldest). */
    T &
    at(std::size_t i)
    {
        rrs_assert(i < count, "index out of range");
        return buf[(head + i) % cap];
    }
    const T &
    at(std::size_t i) const
    {
        rrs_assert(i < count, "index out of range");
        return buf[(head + i) % cap];
    }

    /** Drop every element. */
    void
    clear()
    {
        head = 0;
        count = 0;
    }

  private:
    std::vector<T> buf;
    std::size_t cap;
    std::size_t head = 0;
    std::size_t count = 0;
};

} // namespace rrs

#endif // RRS_COMMON_CIRCULAR_QUEUE_HH
