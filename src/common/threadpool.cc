#include "threadpool.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>

#include "common/logging.hh"

namespace rrs {

namespace {

/**
 * Where the current thread should enqueue nested submissions: the
 * worker's own deque when running on a pool thread, round-robin
 * otherwise.  (One pool per thread at a time is enough: tasks run on
 * the pool that executes them.)
 */
thread_local ThreadPool *tlPool = nullptr;
thread_local std::size_t tlQueue = 0;

} // namespace

unsigned
ThreadPool::defaultThreadCount()
{
    if (const char *env = std::getenv("RRS_THREADS")) {
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1)
            return static_cast<unsigned>(v);
        rrs_warn("ignoring invalid RRS_THREADS='%s'", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned numThreads)
{
    if (numThreads == 0)
        numThreads = defaultThreadCount();
    numWorkers_ = numThreads - 1;
    queues.reserve(numWorkers_ + 1);
    // Queue [i] belongs to worker i; the extra last queue receives
    // external submissions when there are no workers at all.
    for (std::size_t i = 0; i < numWorkers_ + 1u; ++i)
        queues.push_back(std::make_unique<WorkerQueue>());
    workers.reserve(numWorkers_);
    for (std::size_t i = 0; i < numWorkers_; ++i)
        workers.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    // Drain outstanding work so queued tasks are never silently
    // dropped; a task exception at this point can only be warned about.
    try {
        wait();
    } catch (const std::exception &e) {
        rrs_warn("ThreadPool destroyed with failed task: %s", e.what());
    } catch (...) {
        rrs_warn("ThreadPool destroyed with failed task");
    }
    {
        std::lock_guard<std::mutex> lock(stateMutex);
        shuttingDown = true;
    }
    workAvailable.notify_all();
    for (auto &t : workers)
        t.join();
}

void
ThreadPool::enqueueOn(std::size_t queueIdx, Task &&task)
{
    // Count before publishing: a worker may pop and finish the task
    // the instant it lands in the deque, and its decrement must never
    // observe the counter at zero.
    {
        std::lock_guard<std::mutex> lock(stateMutex);
        ++pendingTasks;
    }
    {
        std::lock_guard<std::mutex> lock(queues[queueIdx]->mutex);
        queues[queueIdx]->tasks.push_back(std::move(task));
    }
    workAvailable.notify_one();
    // A caller parked in wait() helps with new work too.
    allDone.notify_all();
}

void
ThreadPool::submit(Task task)
{
    rrs_assert(task != nullptr, "null task submitted");
    std::size_t idx;
    if (tlPool == this) {
        idx = tlQueue;           // nested: stay on our own deque
    } else {
        idx = nextQueue++ % queues.size();   // external round-robin
    }
    enqueueOn(idx, std::move(task));
}

bool
ThreadPool::takeTask(std::size_t self, Task &out)
{
    const std::size_t n = queues.size();
    // Own deque first, newest-first: nested tasks run while their
    // parent's working set is hot.
    if (self < n) {
        std::lock_guard<std::mutex> lock(queues[self]->mutex);
        if (!queues[self]->tasks.empty()) {
            out = std::move(queues[self]->tasks.back());
            queues[self]->tasks.pop_back();
            return true;
        }
    }
    // Steal oldest-first from the other deques.
    for (std::size_t k = 1; k <= n; ++k) {
        std::size_t victim = (self + k) % n;
        if (victim == self)
            continue;
        std::lock_guard<std::mutex> lock(queues[victim]->mutex);
        if (!queues[victim]->tasks.empty()) {
            out = std::move(queues[victim]->tasks.front());
            queues[victim]->tasks.pop_front();
            return true;
        }
    }
    return false;
}

void
ThreadPool::runTask(Task &task)
{
    try {
        task();
    } catch (...) {
        std::lock_guard<std::mutex> lock(stateMutex);
        if (!firstError)
            firstError = std::current_exception();
    }
    bool done;
    {
        std::lock_guard<std::mutex> lock(stateMutex);
        rrs_assert(pendingTasks > 0, "task accounting underflow");
        done = --pendingTasks == 0;
    }
    if (done)
        allDone.notify_all();
}

void
ThreadPool::workerLoop(std::size_t self)
{
    tlPool = this;
    tlQueue = self;
    Task task;
    while (true) {
        if (takeTask(self, task)) {
            runTask(task);
            task = nullptr;
            continue;
        }
        std::unique_lock<std::mutex> lock(stateMutex);
        if (shuttingDown)
            return;
        // pendingTasks counts running tasks too; re-check the queues
        // after (re)acquiring the lock to avoid a missed notify.
        workAvailable.wait_for(lock, std::chrono::milliseconds(50));
    }
}

void
ThreadPool::wait()
{
    const std::size_t self =
        tlPool == this ? tlQueue : queues.size();
    Task task;
    while (true) {
        if (takeTask(self, task)) {
            runTask(task);
            task = nullptr;
            continue;
        }
        std::unique_lock<std::mutex> lock(stateMutex);
        if (pendingTasks == 0)
            break;
        // Wake when everything finished or new work shows up to help
        // with; the timeout guards against a steal racing the notify.
        allDone.wait_for(lock, std::chrono::milliseconds(10));
    }
    std::exception_ptr err;
    {
        std::lock_guard<std::mutex> lock(stateMutex);
        err = firstError;
        firstError = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    // Private completion state: unlike wait(), a nested parallelFor
    // only waits for its own n tasks, so tasks may fan out again
    // without deadlocking on their own pending entry.
    struct ForState
    {
        std::mutex mutex;
        std::condition_variable finished;
        std::size_t remaining;
        std::exception_ptr error;
    };
    auto state = std::make_shared<ForState>();
    state->remaining = n;

    for (std::size_t i = 0; i < n; ++i) {
        submit([state, &fn, i] {
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(state->mutex);
                if (!state->error)
                    state->error = std::current_exception();
            }
            bool done;
            {
                std::lock_guard<std::mutex> lock(state->mutex);
                done = --state->remaining == 0;
            }
            if (done)
                state->finished.notify_all();
        });
    }

    // Help out until our batch is done; executing unrelated queued
    // tasks while waiting is fine (they have to run anyway).
    const std::size_t self =
        tlPool == this ? tlQueue : queues.size();
    Task task;
    while (true) {
        {
            std::lock_guard<std::mutex> lock(state->mutex);
            if (state->remaining == 0)
                break;
        }
        if (takeTask(self, task)) {
            runTask(task);
            task = nullptr;
            continue;
        }
        std::unique_lock<std::mutex> lock(state->mutex);
        state->finished.wait_for(lock, std::chrono::milliseconds(10),
                                 [&] { return state->remaining == 0; });
    }
    if (state->error)
        std::rethrow_exception(state->error);
}

} // namespace rrs
