/**
 * @file
 * Error and status reporting, following the gem5 convention:
 *
 *  - panic():  an internal simulator invariant was violated (a bug in
 *              rrsim itself).  Aborts so a debugger / core dump can
 *              capture the state.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, malformed workload).  Exits cleanly
 *              with a non-zero status.
 *  - warn():   something is suspicious but the run can continue.
 *  - inform(): plain status output.
 *
 * All of them accept printf-style formatting.  Every message goes
 * through one mutex-guarded sink, so lines stay whole when sweep
 * worker threads log concurrently; rrs_warn_once() additionally
 * deduplicates a call site that would otherwise fire once per run of
 * a parallel sweep.
 */

#ifndef RRS_COMMON_LOGGING_HH
#define RRS_COMMON_LOGGING_HH

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <functional>
#include <string>

namespace rrs {

/**
 * Register a hook that panic()/fatal() run after printing their last
 * words and before abort()/exit().  The flight recorder uses this to
 * dump its ring buffer next to the crash message, turning a one-line
 * invariant violation into a forensic report.
 *
 * Hooks run at most once per process (the first crash wins; a crash
 * from inside a hook does not recurse), in registration order, with
 * the log-sink mutex *not* held so they may log.  Returns an id for
 * removeCrashHook().
 *
 * Thread safety: registration and the crash path share one mutex.
 * Hooks must be safe to run from whatever thread crashes.
 */
std::uint64_t addCrashHook(std::function<void()> hook);

/** Unregister a hook (e.g. when its flight recorder dies first). */
void removeCrashHook(std::uint64_t id);

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Format a printf-style message into a std::string. */
std::string vformatString(const char *fmt, va_list args);

/** Format a printf-style message into a std::string. */
std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace rrs

#define rrs_panic(...) ::rrs::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define rrs_fatal(...) ::rrs::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define rrs_warn(...) ::rrs::warnImpl(__VA_ARGS__)
#define rrs_inform(...) ::rrs::informImpl(__VA_ARGS__)

/**
 * Warn at most once per process from this call site, even when many
 * sweep worker threads hit it at once (e.g. the same model warning in
 * every run of a sweep).  The test-and-set is relaxed: winning the
 * race matters, ordering does not.
 */
#define rrs_warn_once(...)                                                  \
    do {                                                                    \
        static std::atomic_flag rrs_warned_once_ = ATOMIC_FLAG_INIT;        \
        if (!rrs_warned_once_.test_and_set(std::memory_order_relaxed))      \
            ::rrs::warnImpl(__VA_ARGS__);                                   \
    } while (0)

/**
 * Invariant check that stays on in release builds.  Use for simulator
 * invariants whose violation means a bug in rrsim.
 */
#define rrs_assert(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::rrs::panicImpl(__FILE__, __LINE__,                            \
                             "assertion failed: %s", #cond);                \
        }                                                                   \
    } while (0)

#endif // RRS_COMMON_LOGGING_HH
