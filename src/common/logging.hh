/**
 * @file
 * Error and status reporting, following the gem5 convention:
 *
 *  - panic():  an internal simulator invariant was violated (a bug in
 *              rrsim itself).  Aborts so a debugger / core dump can
 *              capture the state.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, malformed workload).  Exits cleanly
 *              with a non-zero status.
 *  - warn():   something is suspicious but the run can continue.
 *  - inform(): plain status output.
 *
 * All of them accept printf-style formatting.
 */

#ifndef RRS_COMMON_LOGGING_HH
#define RRS_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace rrs {

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Format a printf-style message into a std::string. */
std::string vformatString(const char *fmt, va_list args);

/** Format a printf-style message into a std::string. */
std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace rrs

#define rrs_panic(...) ::rrs::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define rrs_fatal(...) ::rrs::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define rrs_warn(...) ::rrs::warnImpl(__VA_ARGS__)
#define rrs_inform(...) ::rrs::informImpl(__VA_ARGS__)

/**
 * Invariant check that stays on in release builds.  Use for simulator
 * invariants whose violation means a bug in rrsim.
 */
#define rrs_assert(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::rrs::panicImpl(__FILE__, __LINE__,                            \
                             "assertion failed: %s", #cond);                \
        }                                                                   \
    } while (0)

#endif // RRS_COMMON_LOGGING_HH
