#include "strutils.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace rrs {

std::string_view
trim(std::string_view s)
{
    std::size_t b = 0;
    while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    std::size_t e = s.size();
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string_view>
split(std::string_view s, char delim)
{
    std::vector<std::string_view> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string_view>
splitWhitespace(std::string_view s)
{
    std::vector<std::string_view> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        std::size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        if (i > start)
            out.push_back(s.substr(start, i - start));
    }
    return out;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (auto &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::optional<std::int64_t>
parseInt(std::string_view s)
{
    s = trim(s);
    if (!s.empty() && s.front() == '#')
        s.remove_prefix(1);
    if (s.empty())
        return std::nullopt;
    std::string buf(s);
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(buf.c_str(), &end, 0);
    if (errno != 0 || end != buf.c_str() + buf.size())
        return std::nullopt;
    return static_cast<std::int64_t>(v);
}

std::optional<double>
parseDouble(std::string_view s)
{
    s = trim(s);
    if (!s.empty() && s.front() == '#')
        s.remove_prefix(1);
    if (s.empty())
        return std::nullopt;
    std::string buf(s);
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(buf.c_str(), &end);
    if (errno != 0 || end != buf.c_str() + buf.size())
        return std::nullopt;
    return v;
}

} // namespace rrs
