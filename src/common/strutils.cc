#include "strutils.hh"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <locale>
#include <sstream>

namespace rrs {

std::string_view
trim(std::string_view s)
{
    std::size_t b = 0;
    while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    std::size_t e = s.size();
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string_view>
split(std::string_view s, char delim)
{
    std::vector<std::string_view> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string_view>
splitWhitespace(std::string_view s)
{
    std::vector<std::string_view> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        std::size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        if (i > start)
            out.push_back(s.substr(start, i - start));
    }
    return out;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (auto &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::optional<std::int64_t>
parseInt(std::string_view s)
{
    s = trim(s);
    if (!s.empty() && s.front() == '#')
        s.remove_prefix(1);
    if (s.empty())
        return std::nullopt;
    std::string buf(s);
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(buf.c_str(), &end, 0);
    if (errno != 0 || end != buf.c_str() + buf.size())
        return std::nullopt;
    return static_cast<std::int64_t>(v);
}

const char *
parseDoublePrefix(const char *first, const char *last, double &out)
{
#if defined(__cpp_lib_to_chars)
    // std::from_chars always parses with '.' as the decimal separator,
    // so a comma-decimal global locale (de_DE and friends) cannot skew
    // how stats-json, BENCH_*.json or sweep matrices read back.
    // std::strtod, which this replaces, honours the locale and would
    // silently stop at the '.' there.
    const auto [ptr, ec] = std::from_chars(first, last, out);
    if (ec == std::errc{})
        return ptr;
    // result_out_of_range is a parse failure too, like the
    // strtod-with-errno check this replaces: no serializer here ever
    // emits a non-representable literal.
    return first;
#else
    // Pre-<charconv>-FP toolchains: an istringstream imbued with the
    // classic locale is the portable locale-independent fallback.
    std::istringstream is(std::string(first, last));
    is.imbue(std::locale::classic());
    double v = 0;
    if (!(is >> v))
        return first;
    out = v;
    if (is.eof())
        return last;
    return first + is.tellg();
#endif
}

std::optional<double>
parseDouble(std::string_view s)
{
    s = trim(s);
    if (!s.empty() && s.front() == '#')
        s.remove_prefix(1);
    // strtod accepted a leading '+'; std::from_chars does not.
    if (!s.empty() && s.front() == '+')
        s.remove_prefix(1);
    if (s.empty())
        return std::nullopt;
    double v = 0;
    const char *first = s.data();
    const char *last = s.data() + s.size();
    if (parseDoublePrefix(first, last, v) != last)
        return std::nullopt;
    return v;
}

} // namespace rrs
