/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in rrsim (synthetic trace generation,
 * wrong-path synthesis, workload data initialisation) draws from an
 * explicitly seeded Xoshiro256** generator so that whole experiments are
 * bit-reproducible from their configuration alone.
 */

#ifndef RRS_COMMON_RANDOM_HH
#define RRS_COMMON_RANDOM_HH

#include <cstdint>

namespace rrs {

/**
 * Xoshiro256** PRNG (Blackman & Vigna).  Small, fast, and with far
 * better statistical quality than std::minstd; independent of the
 * platform's std::mt19937 implementation details.
 */
class Random
{
  public:
    /** Construct from a 64-bit seed, expanded via SplitMix64. */
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        reseed(seed);
    }

    /** Re-initialise the state from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        // SplitMix64 expansion guarantees a non-zero state.
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next64()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free-enough reduction.
        unsigned __int128 m =
            static_cast<unsigned __int128>(next64()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next64() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace rrs

#endif // RRS_COMMON_RANDOM_HH
