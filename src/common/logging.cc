#include "logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace rrs {

namespace {

/**
 * One mutex-guarded sink for every log line.  warn()/inform() are
 * called from sweep worker threads (e.g. a model warning fires in
 * several parallel runs at once); writing each message with a single
 * locked fputs keeps lines whole instead of interleaving mid-line.
 * panic()/fatal() also serialise here so their last words are not
 * torn by concurrent warnings.
 */
std::mutex &
sinkMutex()
{
    static std::mutex m;
    return m;
}

void
logLine(std::FILE *to, const char *prefix, const std::string &msg,
        const std::string &suffix = "")
{
    std::string line;
    line.reserve(msg.size() + suffix.size() + 16);
    line += prefix;
    line += msg;
    line += suffix;
    line += "\n";
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::fputs(line.c_str(), to);
    std::fflush(to);
}

} // namespace

std::string
vformatString(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
formatString(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vformatString(fmt, args);
    va_end(args);
    return s;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformatString(fmt, args);
    va_end(args);
    logLine(stderr, "panic: ", msg,
            formatString(" (%s:%d)", file, line));
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformatString(fmt, args);
    va_end(args);
    logLine(stderr, "fatal: ", msg,
            formatString(" (%s:%d)", file, line));
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformatString(fmt, args);
    va_end(args);
    logLine(stderr, "warn: ", msg);
}

void
informImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformatString(fmt, args);
    va_end(args);
    logLine(stdout, "info: ", msg);
}

} // namespace rrs
