#include "logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>
#include <vector>

namespace rrs {

namespace {

/**
 * Crash-hook registry.  Guarded by its own mutex (not the log sink's)
 * so hooks can log while they dump.  runCrashHooks() fires each hook
 * at most once per process: the first panic/fatal drains the list, a
 * second crash (including one raised from inside a hook) finds it
 * empty and falls straight through to abort()/exit().
 */
struct CrashHooks
{
    std::mutex mtx;
    std::vector<std::pair<std::uint64_t, std::function<void()>>> hooks;
    std::uint64_t nextId = 1;
};

CrashHooks &
crashHooks()
{
    static CrashHooks *h = new CrashHooks;  // leaked: usable at exit
    return *h;
}

void
runCrashHooks()
{
    std::vector<std::pair<std::uint64_t, std::function<void()>>> toRun;
    {
        std::lock_guard<std::mutex> lock(crashHooks().mtx);
        toRun.swap(crashHooks().hooks);
    }
    for (auto &[id, hook] : toRun)
        if (hook)
            hook();
}

/**
 * One mutex-guarded sink for every log line.  warn()/inform() are
 * called from sweep worker threads (e.g. a model warning fires in
 * several parallel runs at once); writing each message with a single
 * locked fputs keeps lines whole instead of interleaving mid-line.
 * panic()/fatal() also serialise here so their last words are not
 * torn by concurrent warnings.
 */
std::mutex &
sinkMutex()
{
    static std::mutex m;
    return m;
}

void
logLine(std::FILE *to, const char *prefix, const std::string &msg,
        const std::string &suffix = "")
{
    std::string line;
    line.reserve(msg.size() + suffix.size() + 16);
    line += prefix;
    line += msg;
    line += suffix;
    line += "\n";
    std::lock_guard<std::mutex> lock(sinkMutex());
    std::fputs(line.c_str(), to);
    std::fflush(to);
}

} // namespace

std::uint64_t
addCrashHook(std::function<void()> hook)
{
    std::lock_guard<std::mutex> lock(crashHooks().mtx);
    const std::uint64_t id = crashHooks().nextId++;
    crashHooks().hooks.emplace_back(id, std::move(hook));
    return id;
}

void
removeCrashHook(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(crashHooks().mtx);
    auto &hooks = crashHooks().hooks;
    for (auto it = hooks.begin(); it != hooks.end(); ++it) {
        if (it->first == id) {
            hooks.erase(it);
            return;
        }
    }
}

std::string
vformatString(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (needed < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
formatString(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vformatString(fmt, args);
    va_end(args);
    return s;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformatString(fmt, args);
    va_end(args);
    logLine(stderr, "panic: ", msg,
            formatString(" (%s:%d)", file, line));
    runCrashHooks();
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformatString(fmt, args);
    va_end(args);
    logLine(stderr, "fatal: ", msg,
            formatString(" (%s:%d)", file, line));
    runCrashHooks();
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformatString(fmt, args);
    va_end(args);
    logLine(stderr, "warn: ", msg);
}

void
informImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformatString(fmt, args);
    va_end(args);
    logLine(stdout, "info: ", msg);
}

} // namespace rrs
