#include "atomicfile.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/logging.hh"

namespace rrs {

bool
ensureParentDir(const std::string &path, std::string &error)
{
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (parent.empty())
        return true;
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
        error = "cannot create directory '" + parent.string() +
                "': " + ec.message();
        return false;
    }
    return true;
}

bool
tryWriteFileAtomic(const std::string &path, std::string_view contents,
                   std::string &error, bool createParents)
{
    if (createParents && !ensureParentDir(path, error))
        return false;
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            error = "cannot open '" + tmp + "' for writing";
            return false;
        }
        os.write(contents.data(),
                 static_cast<std::streamsize>(contents.size()));
        if (!os) {
            error = "short write to '" + tmp + "'";
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        error = "cannot rename '" + tmp + "' to '" + path + "'";
        return false;
    }
    return true;
}

void
writeFileAtomic(const std::string &path, std::string_view contents)
{
    std::string error;
    if (!tryWriteFileAtomic(path, contents, error))
        rrs_fatal("%s", error.c_str());
}

} // namespace rrs
