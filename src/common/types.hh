/**
 * @file
 * Fundamental scalar types shared by every rrsim module.
 *
 * The conventions mirror gem5: Addr for byte addresses, Cycles for
 * relative cycle counts, Tick for absolute cycle timestamps.  Register
 * identifiers distinguish *logical* (architectural) registers from
 * *physical* registers; both carry a register class (integer / float)
 * because the paper models decoupled integer and floating-point
 * register files.
 */

#ifndef RRS_COMMON_TYPES_HH
#define RRS_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace rrs {

/** Byte address in the simulated machine. */
using Addr = std::uint64_t;

/** Absolute simulation time, measured in core clock cycles. */
using Tick = std::uint64_t;

/** A relative number of core clock cycles. */
using Cycles = std::uint64_t;

/** Dynamic instruction sequence number (monotonic over a run). */
using InstSeqNum = std::uint64_t;

/** Index of a logical (architectural) register within its class. */
using LogRegIndex = std::uint16_t;

/** Index of a physical register within its class's register file. */
using PhysRegIndex = std::uint16_t;

/** Sentinel for "no register". */
constexpr std::uint16_t invalidRegIndex =
    std::numeric_limits<std::uint16_t>::max();

/** Sentinel for "no sequence number" / "not assigned". */
constexpr InstSeqNum invalidSeqNum =
    std::numeric_limits<InstSeqNum>::max();

/** Sentinel address. */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/**
 * Register classes.  The paper's processor (ARMv8-like) keeps integer
 * and floating-point register files decoupled and sizes them
 * independently; every register identifier in rrsim is therefore
 * qualified by a class.
 */
enum class RegClass : std::uint8_t {
    Int = 0,
    Float = 1,
};

/** Number of register classes (for sizing per-class arrays). */
constexpr int numRegClasses = 2;

/** Short human-readable name of a register class. */
inline const char *
regClassName(RegClass cls)
{
    return cls == RegClass::Int ? "int" : "fp";
}

} // namespace rrs

#endif // RRS_COMMON_TYPES_HH
