/**
 * @file
 * Small bit-manipulation helpers used across the simulator: power-of-two
 * checks, integer log2, alignment, and field extraction.
 */

#ifndef RRS_COMMON_BITUTILS_HH
#define RRS_COMMON_BITUTILS_HH

#include <cstdint>

#include "logging.hh"

namespace rrs {

/** True if x is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Floor of log2(x); x must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t x)
{
    unsigned r = 0;
    while (x >>= 1)
        ++r;
    return r;
}

/** Ceiling of log2(x); x must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t x)
{
    return floorLog2(x) + (isPowerOf2(x) ? 0 : 1);
}

/** Round x down to a multiple of align (a power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t x, std::uint64_t align)
{
    return x & ~(align - 1);
}

/** Round x up to a multiple of align (a power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t x, std::uint64_t align)
{
    return (x + align - 1) & ~(align - 1);
}

/** Extract bits [lo, hi] (inclusive) of x. */
constexpr std::uint64_t
bits(std::uint64_t x, unsigned hi, unsigned lo)
{
    return (x >> lo) & ((hi - lo == 63) ? ~0ULL : ((1ULL << (hi - lo + 1)) - 1));
}

/**
 * Mix a 64-bit value into a well-distributed hash (finaliser from
 * MurmurHash3).  Used for PC-indexed predictor tables.
 */
constexpr std::uint64_t
hashMix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

} // namespace rrs

#endif // RRS_COMMON_BITUTILS_HH
