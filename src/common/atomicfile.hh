/**
 * @file
 * Atomic file writes: the tmp+rename idiom the trace codec introduced,
 * factored out so every writer of machine-readable artifacts (trace
 * spills, --stats-json exports, BENCH_*.json baselines) shares one
 * implementation.  A crash or concurrent writer can never leave a
 * half-written file at the destination path, and missing parent
 * directories are created instead of failing.
 */

#ifndef RRS_COMMON_ATOMICFILE_HH
#define RRS_COMMON_ATOMICFILE_HH

#include <string>
#include <string_view>

namespace rrs {

/**
 * Create every missing parent directory of `path`.
 * @return false (with `error` set) when creation fails; a path with no
 *         directory component trivially succeeds.
 */
bool ensureParentDir(const std::string &path, std::string &error);

/**
 * Write `contents` to `path` atomically: bytes go to "<path>.tmp", and
 * the temp file is renamed over the destination only after a complete
 * write.  Readers therefore see either the old file or the whole new
 * one, never a prefix.
 * @param createParents true: create missing parent directories first
 *        (the JSON exporters); false: a missing directory is a write
 *        failure (the trace-cache spill path, where a missing
 *        RRS_TRACE_DIR deliberately disables spilling).
 * @return false with `error` set on any failure (the temp file may be
 *         left behind; the destination is untouched).
 */
bool tryWriteFileAtomic(const std::string &path, std::string_view contents,
                        std::string &error, bool createParents = true);

/** tryWriteFileAtomic() that fatals with the error message instead. */
void writeFileAtomic(const std::string &path, std::string_view contents);

} // namespace rrs

#endif // RRS_COMMON_ATOMICFILE_HH
