# Empty compiler generated dependencies file for fig03_reuse_chains.
# This may be replaced when dependencies are built.
