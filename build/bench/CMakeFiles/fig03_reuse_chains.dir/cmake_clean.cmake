file(REMOVE_RECURSE
  "CMakeFiles/fig03_reuse_chains.dir/fig03_reuse_chains.cpp.o"
  "CMakeFiles/fig03_reuse_chains.dir/fig03_reuse_chains.cpp.o.d"
  "fig03_reuse_chains"
  "fig03_reuse_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_reuse_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
