file(REMOVE_RECURSE
  "CMakeFiles/fig01_single_use.dir/fig01_single_use.cpp.o"
  "CMakeFiles/fig01_single_use.dir/fig01_single_use.cpp.o.d"
  "fig01_single_use"
  "fig01_single_use.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_single_use.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
