# Empty dependencies file for fig01_single_use.
# This may be replaced when dependencies are built.
