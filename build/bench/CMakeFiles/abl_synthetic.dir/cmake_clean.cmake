file(REMOVE_RECURSE
  "CMakeFiles/abl_synthetic.dir/abl_synthetic.cpp.o"
  "CMakeFiles/abl_synthetic.dir/abl_synthetic.cpp.o.d"
  "abl_synthetic"
  "abl_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
