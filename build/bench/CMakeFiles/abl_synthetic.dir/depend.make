# Empty dependencies file for abl_synthetic.
# This may be replaced when dependencies are built.
