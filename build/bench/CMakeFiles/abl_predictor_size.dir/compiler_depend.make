# Empty compiler generated dependencies file for abl_predictor_size.
# This may be replaced when dependencies are built.
