file(REMOVE_RECURSE
  "CMakeFiles/abl_predictor_size.dir/abl_predictor_size.cpp.o"
  "CMakeFiles/abl_predictor_size.dir/abl_predictor_size.cpp.o.d"
  "abl_predictor_size"
  "abl_predictor_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_predictor_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
