# Empty compiler generated dependencies file for fig12_predictor.
# This may be replaced when dependencies are built.
