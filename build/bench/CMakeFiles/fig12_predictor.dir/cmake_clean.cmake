file(REMOVE_RECURSE
  "CMakeFiles/fig12_predictor.dir/fig12_predictor.cpp.o"
  "CMakeFiles/fig12_predictor.dir/fig12_predictor.cpp.o.d"
  "fig12_predictor"
  "fig12_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
