file(REMOVE_RECURSE
  "CMakeFiles/fig02_consumer_dist.dir/fig02_consumer_dist.cpp.o"
  "CMakeFiles/fig02_consumer_dist.dir/fig02_consumer_dist.cpp.o.d"
  "fig02_consumer_dist"
  "fig02_consumer_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_consumer_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
