# Empty dependencies file for fig02_consumer_dist.
# This may be replaced when dependencies are built.
