file(REMOVE_RECURSE
  "CMakeFiles/fig10_speedup.dir/fig10_speedup.cpp.o"
  "CMakeFiles/fig10_speedup.dir/fig10_speedup.cpp.o.d"
  "fig10_speedup"
  "fig10_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
