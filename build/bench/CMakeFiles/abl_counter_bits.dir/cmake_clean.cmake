file(REMOVE_RECURSE
  "CMakeFiles/abl_counter_bits.dir/abl_counter_bits.cpp.o"
  "CMakeFiles/abl_counter_bits.dir/abl_counter_bits.cpp.o.d"
  "abl_counter_bits"
  "abl_counter_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_counter_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
