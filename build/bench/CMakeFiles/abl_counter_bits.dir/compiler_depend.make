# Empty compiler generated dependencies file for abl_counter_bits.
# This may be replaced when dependencies are built.
