
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_counter_bits.cpp" "bench/CMakeFiles/abl_counter_bits.dir/abl_counter_bits.cpp.o" "gcc" "bench/CMakeFiles/abl_counter_bits.dir/abl_counter_bits.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/rrs_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rrs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bpred/CMakeFiles/rrs_bpred.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/rrs_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/rename/CMakeFiles/rrs_rename.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rrs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/area/CMakeFiles/rrs_area.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rrs_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/rrs_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rrs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rrs_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rrs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
