file(REMOVE_RECURSE
  "CMakeFiles/fig09_bank_sizing.dir/fig09_bank_sizing.cpp.o"
  "CMakeFiles/fig09_bank_sizing.dir/fig09_bank_sizing.cpp.o.d"
  "fig09_bank_sizing"
  "fig09_bank_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_bank_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
