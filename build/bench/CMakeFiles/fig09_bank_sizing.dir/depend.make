# Empty dependencies file for fig09_bank_sizing.
# This may be replaced when dependencies are built.
