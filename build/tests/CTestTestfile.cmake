# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/assembler_test[1]_include.cmake")
include("/root/repo/build/tests/emulator_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/synthetic_test[1]_include.cmake")
include("/root/repo/build/tests/bpred_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/rename_baseline_test[1]_include.cmake")
include("/root/repo/build/tests/rename_reuse_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/area_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/rename_property_test[1]_include.cmake")
include("/root/repo/build/tests/core_property_test[1]_include.cmake")
include("/root/repo/build/tests/roundtrip_test[1]_include.cmake")
include("/root/repo/build/tests/predictor_test[1]_include.cmake")
include("/root/repo/build/tests/mem_extra_test[1]_include.cmake")
include("/root/repo/build/tests/assembler_errors_test[1]_include.cmake")
