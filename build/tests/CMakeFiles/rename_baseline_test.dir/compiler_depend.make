# Empty compiler generated dependencies file for rename_baseline_test.
# This may be replaced when dependencies are built.
