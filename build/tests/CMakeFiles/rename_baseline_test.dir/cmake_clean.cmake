file(REMOVE_RECURSE
  "CMakeFiles/rename_baseline_test.dir/rename_baseline_test.cpp.o"
  "CMakeFiles/rename_baseline_test.dir/rename_baseline_test.cpp.o.d"
  "rename_baseline_test"
  "rename_baseline_test.pdb"
  "rename_baseline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rename_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
