# Empty dependencies file for assembler_errors_test.
# This may be replaced when dependencies are built.
