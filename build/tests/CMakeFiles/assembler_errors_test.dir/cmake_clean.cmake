file(REMOVE_RECURSE
  "CMakeFiles/assembler_errors_test.dir/assembler_errors_test.cpp.o"
  "CMakeFiles/assembler_errors_test.dir/assembler_errors_test.cpp.o.d"
  "assembler_errors_test"
  "assembler_errors_test.pdb"
  "assembler_errors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assembler_errors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
