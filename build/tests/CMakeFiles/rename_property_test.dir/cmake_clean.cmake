file(REMOVE_RECURSE
  "CMakeFiles/rename_property_test.dir/rename_property_test.cpp.o"
  "CMakeFiles/rename_property_test.dir/rename_property_test.cpp.o.d"
  "rename_property_test"
  "rename_property_test.pdb"
  "rename_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rename_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
