# Empty compiler generated dependencies file for rename_property_test.
# This may be replaced when dependencies are built.
