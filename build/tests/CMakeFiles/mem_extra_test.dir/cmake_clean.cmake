file(REMOVE_RECURSE
  "CMakeFiles/mem_extra_test.dir/mem_extra_test.cpp.o"
  "CMakeFiles/mem_extra_test.dir/mem_extra_test.cpp.o.d"
  "mem_extra_test"
  "mem_extra_test.pdb"
  "mem_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
