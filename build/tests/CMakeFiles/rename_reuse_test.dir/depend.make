# Empty dependencies file for rename_reuse_test.
# This may be replaced when dependencies are built.
