file(REMOVE_RECURSE
  "CMakeFiles/rename_reuse_test.dir/rename_reuse_test.cpp.o"
  "CMakeFiles/rename_reuse_test.dir/rename_reuse_test.cpp.o.d"
  "rename_reuse_test"
  "rename_reuse_test.pdb"
  "rename_reuse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rename_reuse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
