file(REMOVE_RECURSE
  "librrs_mem.a"
)
