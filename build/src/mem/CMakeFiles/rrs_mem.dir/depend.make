# Empty dependencies file for rrs_mem.
# This may be replaced when dependencies are built.
