file(REMOVE_RECURSE
  "CMakeFiles/rrs_mem.dir/cache.cc.o"
  "CMakeFiles/rrs_mem.dir/cache.cc.o.d"
  "CMakeFiles/rrs_mem.dir/dram.cc.o"
  "CMakeFiles/rrs_mem.dir/dram.cc.o.d"
  "CMakeFiles/rrs_mem.dir/memsystem.cc.o"
  "CMakeFiles/rrs_mem.dir/memsystem.cc.o.d"
  "CMakeFiles/rrs_mem.dir/tlb.cc.o"
  "CMakeFiles/rrs_mem.dir/tlb.cc.o.d"
  "librrs_mem.a"
  "librrs_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
