# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("stats")
subdirs("isa")
subdirs("emu")
subdirs("trace")
subdirs("bpred")
subdirs("mem")
subdirs("rename")
subdirs("core")
subdirs("area")
subdirs("workloads")
subdirs("harness")
