
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/kernels_cog.cc" "src/workloads/CMakeFiles/rrs_workloads.dir/kernels_cog.cc.o" "gcc" "src/workloads/CMakeFiles/rrs_workloads.dir/kernels_cog.cc.o.d"
  "/root/repo/src/workloads/kernels_extra.cc" "src/workloads/CMakeFiles/rrs_workloads.dir/kernels_extra.cc.o" "gcc" "src/workloads/CMakeFiles/rrs_workloads.dir/kernels_extra.cc.o.d"
  "/root/repo/src/workloads/kernels_fp.cc" "src/workloads/CMakeFiles/rrs_workloads.dir/kernels_fp.cc.o" "gcc" "src/workloads/CMakeFiles/rrs_workloads.dir/kernels_fp.cc.o.d"
  "/root/repo/src/workloads/kernels_int.cc" "src/workloads/CMakeFiles/rrs_workloads.dir/kernels_int.cc.o" "gcc" "src/workloads/CMakeFiles/rrs_workloads.dir/kernels_int.cc.o.d"
  "/root/repo/src/workloads/kernels_media.cc" "src/workloads/CMakeFiles/rrs_workloads.dir/kernels_media.cc.o" "gcc" "src/workloads/CMakeFiles/rrs_workloads.dir/kernels_media.cc.o.d"
  "/root/repo/src/workloads/workloads.cc" "src/workloads/CMakeFiles/rrs_workloads.dir/workloads.cc.o" "gcc" "src/workloads/CMakeFiles/rrs_workloads.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/emu/CMakeFiles/rrs_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rrs_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/rrs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rrs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
