file(REMOVE_RECURSE
  "librrs_workloads.a"
)
