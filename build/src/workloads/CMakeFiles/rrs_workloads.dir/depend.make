# Empty dependencies file for rrs_workloads.
# This may be replaced when dependencies are built.
