file(REMOVE_RECURSE
  "CMakeFiles/rrs_workloads.dir/kernels_cog.cc.o"
  "CMakeFiles/rrs_workloads.dir/kernels_cog.cc.o.d"
  "CMakeFiles/rrs_workloads.dir/kernels_extra.cc.o"
  "CMakeFiles/rrs_workloads.dir/kernels_extra.cc.o.d"
  "CMakeFiles/rrs_workloads.dir/kernels_fp.cc.o"
  "CMakeFiles/rrs_workloads.dir/kernels_fp.cc.o.d"
  "CMakeFiles/rrs_workloads.dir/kernels_int.cc.o"
  "CMakeFiles/rrs_workloads.dir/kernels_int.cc.o.d"
  "CMakeFiles/rrs_workloads.dir/kernels_media.cc.o"
  "CMakeFiles/rrs_workloads.dir/kernels_media.cc.o.d"
  "CMakeFiles/rrs_workloads.dir/workloads.cc.o"
  "CMakeFiles/rrs_workloads.dir/workloads.cc.o.d"
  "librrs_workloads.a"
  "librrs_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
