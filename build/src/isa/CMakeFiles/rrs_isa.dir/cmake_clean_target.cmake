file(REMOVE_RECURSE
  "librrs_isa.a"
)
