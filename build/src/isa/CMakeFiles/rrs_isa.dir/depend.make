# Empty dependencies file for rrs_isa.
# This may be replaced when dependencies are built.
