file(REMOVE_RECURSE
  "CMakeFiles/rrs_isa.dir/assembler.cc.o"
  "CMakeFiles/rrs_isa.dir/assembler.cc.o.d"
  "CMakeFiles/rrs_isa.dir/isa.cc.o"
  "CMakeFiles/rrs_isa.dir/isa.cc.o.d"
  "librrs_isa.a"
  "librrs_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
