file(REMOVE_RECURSE
  "librrs_common.a"
)
