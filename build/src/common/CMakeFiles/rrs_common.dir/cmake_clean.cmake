file(REMOVE_RECURSE
  "CMakeFiles/rrs_common.dir/logging.cc.o"
  "CMakeFiles/rrs_common.dir/logging.cc.o.d"
  "CMakeFiles/rrs_common.dir/strutils.cc.o"
  "CMakeFiles/rrs_common.dir/strutils.cc.o.d"
  "librrs_common.a"
  "librrs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
