# Empty dependencies file for rrs_common.
# This may be replaced when dependencies are built.
