# Empty compiler generated dependencies file for rrs_core.
# This may be replaced when dependencies are built.
