file(REMOVE_RECURSE
  "CMakeFiles/rrs_core.dir/o3core.cc.o"
  "CMakeFiles/rrs_core.dir/o3core.cc.o.d"
  "librrs_core.a"
  "librrs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
