file(REMOVE_RECURSE
  "CMakeFiles/rrs_emu.dir/emulator.cc.o"
  "CMakeFiles/rrs_emu.dir/emulator.cc.o.d"
  "librrs_emu.a"
  "librrs_emu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
