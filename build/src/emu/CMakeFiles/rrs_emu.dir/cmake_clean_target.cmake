file(REMOVE_RECURSE
  "librrs_emu.a"
)
