# Empty dependencies file for rrs_emu.
# This may be replaced when dependencies are built.
