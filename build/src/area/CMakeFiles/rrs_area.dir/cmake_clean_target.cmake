file(REMOVE_RECURSE
  "librrs_area.a"
)
