# Empty dependencies file for rrs_area.
# This may be replaced when dependencies are built.
