file(REMOVE_RECURSE
  "CMakeFiles/rrs_area.dir/area.cc.o"
  "CMakeFiles/rrs_area.dir/area.cc.o.d"
  "librrs_area.a"
  "librrs_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
