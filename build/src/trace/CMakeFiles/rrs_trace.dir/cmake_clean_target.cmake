file(REMOVE_RECURSE
  "librrs_trace.a"
)
