# Empty compiler generated dependencies file for rrs_trace.
# This may be replaced when dependencies are built.
