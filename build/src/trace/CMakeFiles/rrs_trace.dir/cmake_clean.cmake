file(REMOVE_RECURSE
  "CMakeFiles/rrs_trace.dir/analysis.cc.o"
  "CMakeFiles/rrs_trace.dir/analysis.cc.o.d"
  "CMakeFiles/rrs_trace.dir/synthetic.cc.o"
  "CMakeFiles/rrs_trace.dir/synthetic.cc.o.d"
  "CMakeFiles/rrs_trace.dir/wrongpath.cc.o"
  "CMakeFiles/rrs_trace.dir/wrongpath.cc.o.d"
  "librrs_trace.a"
  "librrs_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
