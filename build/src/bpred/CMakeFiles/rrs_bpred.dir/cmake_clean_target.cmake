file(REMOVE_RECURSE
  "librrs_bpred.a"
)
