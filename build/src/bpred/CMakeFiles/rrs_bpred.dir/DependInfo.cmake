
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bpred/bpred.cc" "src/bpred/CMakeFiles/rrs_bpred.dir/bpred.cc.o" "gcc" "src/bpred/CMakeFiles/rrs_bpred.dir/bpred.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/rrs_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rrs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rrs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
