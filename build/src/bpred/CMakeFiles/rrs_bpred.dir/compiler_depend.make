# Empty compiler generated dependencies file for rrs_bpred.
# This may be replaced when dependencies are built.
