file(REMOVE_RECURSE
  "CMakeFiles/rrs_bpred.dir/bpred.cc.o"
  "CMakeFiles/rrs_bpred.dir/bpred.cc.o.d"
  "librrs_bpred.a"
  "librrs_bpred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_bpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
