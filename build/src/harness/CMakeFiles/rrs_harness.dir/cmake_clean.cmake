file(REMOVE_RECURSE
  "CMakeFiles/rrs_harness.dir/experiment.cc.o"
  "CMakeFiles/rrs_harness.dir/experiment.cc.o.d"
  "librrs_harness.a"
  "librrs_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
