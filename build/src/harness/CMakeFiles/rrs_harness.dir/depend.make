# Empty dependencies file for rrs_harness.
# This may be replaced when dependencies are built.
