file(REMOVE_RECURSE
  "librrs_harness.a"
)
