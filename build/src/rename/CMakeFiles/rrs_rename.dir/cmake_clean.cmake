file(REMOVE_RECURSE
  "CMakeFiles/rrs_rename.dir/baseline.cc.o"
  "CMakeFiles/rrs_rename.dir/baseline.cc.o.d"
  "CMakeFiles/rrs_rename.dir/predictor.cc.o"
  "CMakeFiles/rrs_rename.dir/predictor.cc.o.d"
  "CMakeFiles/rrs_rename.dir/reuse.cc.o"
  "CMakeFiles/rrs_rename.dir/reuse.cc.o.d"
  "librrs_rename.a"
  "librrs_rename.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_rename.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
