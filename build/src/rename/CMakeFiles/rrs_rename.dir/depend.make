# Empty dependencies file for rrs_rename.
# This may be replaced when dependencies are built.
