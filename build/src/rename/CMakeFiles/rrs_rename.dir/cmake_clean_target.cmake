file(REMOVE_RECURSE
  "librrs_rename.a"
)
