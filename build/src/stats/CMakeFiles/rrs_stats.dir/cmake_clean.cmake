file(REMOVE_RECURSE
  "CMakeFiles/rrs_stats.dir/stats.cc.o"
  "CMakeFiles/rrs_stats.dir/stats.cc.o.d"
  "CMakeFiles/rrs_stats.dir/table.cc.o"
  "CMakeFiles/rrs_stats.dir/table.cc.o.d"
  "librrs_stats.a"
  "librrs_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
