# Empty dependencies file for rrs_stats.
# This may be replaced when dependencies are built.
