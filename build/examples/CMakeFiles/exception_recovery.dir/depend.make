# Empty dependencies file for exception_recovery.
# This may be replaced when dependencies are built.
