file(REMOVE_RECURSE
  "CMakeFiles/exception_recovery.dir/exception_recovery.cpp.o"
  "CMakeFiles/exception_recovery.dir/exception_recovery.cpp.o.d"
  "exception_recovery"
  "exception_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exception_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
