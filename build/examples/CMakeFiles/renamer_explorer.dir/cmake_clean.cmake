file(REMOVE_RECURSE
  "CMakeFiles/renamer_explorer.dir/renamer_explorer.cpp.o"
  "CMakeFiles/renamer_explorer.dir/renamer_explorer.cpp.o.d"
  "renamer_explorer"
  "renamer_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/renamer_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
