# Empty dependencies file for renamer_explorer.
# This may be replaced when dependencies are built.
