/**
 * @file
 * Quickstart: assemble a small program, run it through the
 * out-of-order core with both renaming schemes, and compare.
 *
 *   $ ./examples/quickstart
 *
 * This is the smallest end-to-end use of the library: an assembly
 * kernel, the functional emulator as the instruction stream, the
 * Table I core, and the two renamers the paper compares.
 */

#include <cstdio>

#include "bpred/bpred.hh"
#include "core/o3core.hh"
#include "emu/emulator.hh"
#include "isa/assembler.hh"
#include "mem/memsystem.hh"
#include "rename/baseline.hh"
#include "rename/reuse.hh"

using namespace rrs;

int
main()
{
    // Several independent floating-point chains per iteration: enough
    // instruction-level parallelism to fill the machine, enough live
    // values to pressure a small register file, and plenty of
    // single-use values — the pattern the paper's scheme exploits.
    isa::Program prog = isa::assemble(R"(
        movz x1, #8000
        fmovi f0, #1.25
        fmovi f1, #0.75
    loop:
        fmul f2, f0, f1      ; six independent chains, each a
        fadd f2, f2, f0      ; single-use redefinition sequence
        fmul f2, f2, f1
        fmul f3, f1, f1
        fadd f3, f3, f0
        fmul f3, f3, f1
        fmul f4, f0, f0
        fadd f4, f4, f1
        fmul f4, f4, f1
        fmul f5, f1, f0
        fadd f5, f5, f0
        fmul f5, f5, f1
        fmul f6, f0, f1
        fadd f6, f6, f1
        fmul f6, f6, f0
        fmul f7, f1, f1
        fadd f7, f7, f0
        fmul f7, f7, f0
        subi x1, x1, #1
        bne x1, xzr, loop
        halt
    )");

    auto runWith = [&](rename::Renamer &renamer, const char *label) {
        emu::Emulator stream(prog, "quickstart");
        mem::MemSystem mem{mem::MemSystemParams{}};
        bpred::BranchPredictor bp{bpred::BPredParams{}};
        core::O3Core core(core::CoreParams{}, renamer, mem, bp, stream);
        core::SimResult res = core.run();
        std::printf("%-32s %8llu cycles   IPC %.3f\n", label,
                    static_cast<unsigned long long>(res.cycles),
                    res.ipc());
        return res;
    };

    std::printf("Running the same program under both renaming "
                "schemes\n");
    std::printf("(48 baseline registers vs the equal-area 4-bank "
                "organisation)\n\n");

    rename::BaselineRenamer baseline(rename::BaselineParams{48, 48});
    auto base = runWith(baseline, "baseline (48 regs/class)");

    rename::ReuseRenamerParams rp;
    rp.intBanks = {34, 8, 2, 2};   // equal area to 48 plain registers
    rp.fpBanks = {34, 8, 2, 2};
    rename::ReuseRenamer reuse(rp);
    auto prop = runWith(reuse, "proposed (34+8+2+2 banks)");

    std::printf("\nspeedup: %.3fx with %.0f%% of the register count\n",
                static_cast<double>(base.cycles) /
                    static_cast<double>(prop.cycles),
                100.0 * 46.0 / 48.0);
    std::printf("registers shared %0.f times; fresh allocations "
                "avoided: %.1f%%\n",
                reuse.reuseCount(),
                100.0 * reuse.reuseCount() /
                    (reuse.reuseCount() + reuse.allocationCount()));
    return 0;
}
