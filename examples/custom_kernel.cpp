/**
 * @file
 * Custom kernel walkthrough: write a kernel in rrsim assembly, verify
 * its architectural result with the functional emulator, measure its
 * value-usage character (the paper's Figures 1-3 statistics), and then
 * sweep it through timing simulations at several register-file sizes.
 *
 * Use this as the template for adding your own workloads.
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "isa/assembler.hh"
#include "trace/analysis.hh"

using namespace rrs;

int
main()
{
    // A dot-product kernel with an init phase and a warmup_done marker
    // (the harness skips everything before the marker when timing).
    const char *source = R"(
        .equ N, 4096
        .data
    a:
        .space 32768
    b:
        .space 32768
    result:
        .space 8
        .text
    _start:
        movz x1, =a
        movz x2, #8192        ; fill both arrays
        movz x3, #42
    init:
        muli x3, x3, #6364136223846793005
        addi x3, x3, #1442695040888963407
        lsri x4, x3, #40
        fcvt f0, x4
        fmovi f1, #16777216.0
        fdiv f0, f0, f1
        fstr f0, [x1]
        addi x1, x1, #8
        subi x2, x2, #1
        bne x2, xzr, init
    warmup_done:
        movz x1, =a
        movz x2, =b
        movz x3, #N
        fmovi f2, #0.0        ; accumulator
    loop:
        fldr f3, [x1]
        fldr f4, [x2]
        fmadd f2, f3, f4, f2
        addi x1, x1, #8
        addi x2, x2, #8
        subi x3, x3, #1
        bne x3, xzr, loop
        fmovi f5, #1024.0
        fmul f2, f2, f5
        fcvti x4, f2
        movz x5, =result
        str x4, [x5]
        halt
    )";

    isa::Program prog = isa::assemble(source);

    // 1. Architectural verification with the emulator.
    emu::Emulator check(prog, "dotprod");
    check.run();
    std::printf("architectural result: %llu (scaled dot product)\n\n",
                static_cast<unsigned long long>(
                    check.memory().read(prog.symbol("result"), 8)));

    // 2. Value-usage character (Figures 1-3 statistics).
    emu::Emulator stream(prog, "dotprod");
    stream.fastForwardTo(prog.symbol("warmup_done"), 1'000'000);
    auto rep = trace::analyzeUsage(stream, 100'000);
    std::printf("single-consumer instructions: %.1f%% (redefining "
                "%.1f%%)\n",
                100.0 * rep.fracSingleConsumer(),
                100.0 * rep.fracSingleConsumerRedef());
    std::printf("oracle reuse with cap 3: %.1f%% of dest-writing "
                "instructions\n\n",
                100.0 * rep.fracReusable(2));

    // 3. Timing sweep via the ad-hoc route: reuse the harness's rig by
    //    registering nothing — we build configs directly and run the
    //    same workload through both renamers.
    std::printf("%-8s %-16s %-16s %s\n", "regs", "baseline IPC",
                "proposed IPC", "speedup");
    for (std::uint32_t n : {48u, 64u, 96u}) {
        workloads::Workload w{"dotprod", "custom", source, 120'000};
        auto cb = harness::baselineConfig(n);
        cb.maxInsts = 120'000;
        auto cp = harness::reuseConfig(n);
        cp.maxInsts = 120'000;
        auto ob = harness::runOn(w, cb);
        auto op = harness::runOn(w, cp);
        std::printf("%-8u %-16.3f %-16.3f %.3fx\n", n, ob.sim.ipc(),
                    op.sim.ipc(),
                    static_cast<double>(ob.sim.cycles) /
                        static_cast<double>(op.sim.cycles));
    }
    std::printf("\nNote how the usage analysis predicts the timing "
                "outcome: this kernel's accumulator is its only reuse "
                "chain (oracle reuse ~12%%), so sharing cannot offset "
                "the equal-area file's smaller register count — "
                "compare examples/quickstart, where ~36%% of "
                "allocations are avoided and the proposed scheme wins "
                "by >25%%.\n");
    return 0;
}
