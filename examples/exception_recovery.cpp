/**
 * @file
 * Precise exceptions with shared registers: demonstrates the paper's
 * Section IV-B machinery.  Page faults are injected on loads and a
 * periodic timer interrupt flushes the pipeline; with physical
 * register sharing, committed values that live in shadow cells must be
 * recovered before the handler runs.  The example shows that execution
 * stays architecturally exact under both schemes and reports the
 * recovery work the proposed scheme performed.
 */

#include <cstdio>

#include "bpred/bpred.hh"
#include "core/o3core.hh"
#include "emu/emulator.hh"
#include "isa/assembler.hh"
#include "mem/memsystem.hh"
#include "rename/baseline.hh"
#include "rename/reuse.hh"

using namespace rrs;

int
main()
{
    // A memory-walking kernel with single-use chains: plenty of
    // shared registers in flight when a fault strikes.
    isa::Program prog = isa::assemble(R"(
        .equ N, 3000
        movz x1, =buf
        movz x2, #N
        movz x4, #0
    loop:
        ldr x5, [x1]
        add x5, x5, x2       ; single-use chain on x5
        mul x5, x5, x5
        add x4, x4, x5
        str x4, [x1]
        addi x1, x1, #8
        subi x2, x2, #1
        bne x2, xzr, loop
        movz x9, =sum
        str x4, [x9]
        halt
        .data
    buf:
        .space 24000
    sum:
        .space 8
    )");

    // Golden result from pure functional execution.
    emu::Emulator golden(prog, "golden");
    golden.run();
    std::uint64_t expected =
        golden.memory().read(prog.symbol("sum"), 8);
    std::printf("golden architectural sum: %llu\n\n",
                static_cast<unsigned long long>(expected));

    core::CoreParams cp;
    cp.loadFaultProbability = 0.005;   // ~1 fault per 200 loads
    cp.interruptInterval = 4000;       // periodic timer interrupts

    auto runWith = [&](rename::Renamer &renamer, const char *label) {
        emu::Emulator stream(prog, "kernel");
        mem::MemSystem mem{mem::MemSystemParams{}};
        bpred::BranchPredictor bp{bpred::BPredParams{}};
        core::O3Core core(cp, renamer, mem, bp, stream);
        auto res = core.run();
        std::printf("%-28s %8llu cycles, %4.0f exceptions, "
                    "%3.0f interrupts, %4.0f recovery cycles\n",
                    label, static_cast<unsigned long long>(res.cycles),
                    core.exceptionCount(), core.interruptCount(),
                    core.recoveryCycleCount());
        return res;
    };

    rename::BaselineRenamer baseline(rename::BaselineParams{56, 56});
    runWith(baseline, "baseline");

    rename::ReuseRenamerParams rp;
    rp.intBanks = {39, 8, 3, 3};
    rp.fpBanks = {39, 8, 3, 3};
    rename::ReuseRenamer reuse(rp);
    runWith(reuse, "proposed (shadow cells)");

    std::printf("\nproposed scheme: %.0f values shared; committed "
                "state recovered precisely through every flush.\n",
                reuse.reuseCount());
    std::printf("(The timing model charges one recover command per "
                "shadow-resident value at each flush, per the paper's "
                "Section IV-C2.)\n");
    return 0;
}
