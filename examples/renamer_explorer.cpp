/**
 * @file
 * Renamer explorer: replays the paper's Figure 4 running example
 * instruction by instruction, printing how each scheme renames it —
 * the conventional scheme allocating eight physical registers and the
 * proposed scheme sharing one register across the I1/I4/I5/I6 chain
 * with version counters (P1.0, P1.1, ...).
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "rename/baseline.hh"
#include "rename/reuse.hh"
#include "trace/dyninst.hh"

using namespace rrs;

namespace {

void
explore(rename::Renamer &renamer, const isa::Program &prog,
        const char *label)
{
    std::printf("--- %s ---\n", label);
    std::printf("%-26s %-10s %-10s %-10s %s\n", "instruction", "dst",
                "src1", "src2", "note");
    std::uint64_t allocs = 0;
    for (std::size_t i = 0; i < prog.size(); ++i) {
        trace::DynInst di;
        di.pc = isa::Program::pcOf(i);
        di.si = prog.text[i];
        if (di.si.op == isa::Opcode::Halt)
            break;
        auto r = renamer.rename(di);
        if (!r.success) {
            std::printf("%-26s <stall: no free register>\n",
                        di.si.toString().c_str());
            continue;
        }
        const char *note = "";
        if (r.reused)
            note = "reused (no allocation)";
        else if (r.hasDest) {
            note = "1 new register";
            ++allocs;
        }
        std::printf("%-26s %-10s %-10s %-10s %s\n",
                    di.si.toString().c_str(),
                    r.hasDest ? r.destTag.toString().c_str() : "-",
                    r.numSrcTags > 0 && r.srcTags[0].valid()
                        ? r.srcTags[0].toString().c_str()
                        : "-",
                    r.numSrcTags > 1 && r.srcTags[1].valid()
                        ? r.srcTags[1].toString().c_str()
                        : "-",
                    note);
    }
    std::printf("=> %llu new registers\n\n",
                static_cast<unsigned long long>(allocs));
}

} // namespace

int
main()
{
    // The paper's Figure 4 instruction sequence (r1..r5 -> x1..x5).
    // x2, x3, x4 hold earlier values, as in the example.
    isa::Program prog = isa::assemble(R"(
        add x1, x2, x3       ; I1
        ldr x3, [x6]         ; I2
        mul x2, x3, x4       ; I3
        add x1, x1, x4       ; I4: chain on x1
        mul x1, x1, x1       ; I5: chain on x1
        mul x1, x1, x3       ; I6: chain on x1
        add x5, x1, x2       ; I7
        sub x2, x5, x1       ; I8
        halt
    )");

    std::printf("Paper Figure 4: renaming the same eight instructions "
                "under both schemes.\n\n");

    rename::BaselineRenamer baseline(rename::BaselineParams{64, 64});
    explore(baseline, prog, "conventional renaming (Figure 4a)");

    // All spare registers carry 3 shadow cells so the chain can share
    // without predictor warm-up, mirroring the paper's illustration.
    rename::ReuseRenamerParams rp;
    rp.intBanks = {32, 0, 0, 32};
    rp.fpBanks = {32, 0, 0, 32};
    rename::ReuseRenamer reuse(rp);
    // The paper's example also reuses at I7 via the single-use
    // predictor; warm the entry for I3 (the producer of I7's x2
    // operand) as steady-state execution would have.
    reuse.predictor().trainOnShadowExhausted(
        reuse.predictor().indexFor(isa::Program::pcOf(2)));
    explore(reuse, prog, "proposed renaming (Figure 4b)");

    std::printf("The I1/I4/I5/I6 chain shares one physical register "
                "(versions .0 through .3) and I7 reuses I3's register "
                "via the single-use predictor, as in the paper's "
                "Figure 4(b) (4 allocations instead of 8); our "
                "predictor additionally catches I8's reuse of I7's "
                "value, saving one more.\n");
    return 0;
}
