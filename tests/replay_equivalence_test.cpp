// Property test for the capture/replay layer: for every workload, a
// ReplayStream over a captured trace must produce exactly the DynInst
// sequence a fresh emulator stream produces — field by field — and
// must keep doing so under reset() and under re-construction on the
// same shared trace.  This is the cached-vs-fresh half of the sweep
// determinism contract (harness/sweep.hh).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "trace/recorded.hh"
#include "workloads/workloads.hh"

namespace {

using namespace rrs;
using trace::DynInst;

constexpr std::uint64_t kCap = 20'000;

std::uint64_t
fpBits(double d)
{
    std::uint64_t raw;
    std::memcpy(&raw, &d, sizeof(raw));
    return raw;
}

bool
sameInst(const DynInst &a, const DynInst &b)
{
    return a.seq == b.seq && a.pc == b.pc && a.nextPc == b.nextPc &&
           a.taken == b.taken && a.effAddr == b.effAddr &&
           a.si.op == b.si.op && a.si.dest == b.si.dest &&
           a.si.srcs == b.si.srcs && a.si.imm == b.si.imm &&
           fpBits(a.si.fimm) == fpBits(b.si.fimm) &&
           a.si.target == b.si.target;
}

// Drain a stream into a vector.
std::vector<DynInst>
drain(trace::InstStream &stream)
{
    std::vector<DynInst> out;
    while (auto di = stream.next())
        out.push_back(*di);
    return out;
}

// Assert two sequences identical, reporting the first differing record.
void
expectSameSequence(const std::vector<DynInst> &ref,
                   const std::vector<DynInst> &got, const char *what)
{
    ASSERT_EQ(ref.size(), got.size()) << what;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        if (!sameInst(ref[i], got[i])) {
            ADD_FAILURE() << what << ": first mismatch at record " << i
                          << ": emulator {seq=" << ref[i].seq
                          << " pc=" << ref[i].pc << " op "
                          << ref[i].si.toString() << "} vs replay {seq="
                          << got[i].seq << " pc=" << got[i].pc << " op "
                          << got[i].si.toString() << "}";
            return;
        }
    }
    // Belt and braces: the field-by-field digest must agree too (it
    // covers exactly the fields sameInst compares).
    EXPECT_EQ(trace::RecordedTrace::digestOf(ref),
              trace::RecordedTrace::digestOf(got))
        << what;
}

class EveryWorkloadReplay : public ::testing::TestWithParam<const char *>
{
};

TEST_P(EveryWorkloadReplay, ReplayMatchesFreshEmulation)
{
    const auto &w = workloads::workload(GetParam());

    // The reference: a live emulator stream, pulled to the cap.
    auto fresh = workloads::makeEmulator(w, kCap);
    std::vector<DynInst> ref = drain(*fresh);
    ASSERT_FALSE(ref.empty());

    // The capture must match it record for record...
    trace::TracePtr t = workloads::captureTrace(w, kCap);
    EXPECT_EQ(t->workload(), w.name);
    EXPECT_EQ(t->cap(), kCap);
    EXPECT_EQ(t->sourceHash(), workloads::sourceHash(w));
    expectSameSequence(ref, t->insts(), "captured trace");
    EXPECT_EQ(t->digest(), trace::RecordedTrace::digestOf(ref));

    // ...as must a replay cursor over it,
    trace::ReplayStream replay(t);
    EXPECT_EQ(replay.name(), w.name);
    expectSameSequence(ref, drain(replay), "first replay");
    EXPECT_EQ(replay.replayed(), ref.size());

    // the same cursor after reset(),
    replay.reset();
    expectSameSequence(ref, drain(replay), "replay after reset");
    EXPECT_EQ(replay.replayed(), 2 * ref.size());

    // a re-constructed cursor sharing the same trace,
    trace::ReplayStream rebuilt(t);
    expectSameSequence(ref, drain(rebuilt), "re-constructed replay");

    // and the public makeStream, which is built on this layer.
    auto stream = workloads::makeStream(w, kCap);
    expectSameSequence(ref, drain(*stream), "makeStream");
}

INSTANTIATE_TEST_SUITE_P(
    Suite, EveryWorkloadReplay,
    ::testing::Values("int_sort", "int_hash", "int_crc", "int_sieve",
                      "int_match", "int_graph", "int_lz", "fp_matmul",
                      "fp_fir", "fp_jacobi", "fp_nbody", "fp_horner",
                      "fp_chain", "fp_blur", "media_adpcm", "media_dct",
                      "media_sobel", "media_g711", "cog_gmm", "cog_dnn",
                      "cog_knn"));

TEST(ReplayStream, FreshEmulatorsAgreeWithCapture)
{
    // Two independently constructed emulators and a capture must all
    // produce the same post-warmup stream (functional determinism, the
    // property the trace cache banks on).
    const auto &w = workloads::workload("int_crc");
    auto fresh = workloads::makeEmulator(w, 5'000);
    std::vector<DynInst> first = drain(*fresh);
    auto again = workloads::makeEmulator(w, 5'000);
    expectSameSequence(first, drain(*again), "fresh emulator pair");

    trace::TracePtr t = workloads::captureTrace(w, 5'000);
    expectSameSequence(first, t->insts(), "capture");
}

TEST(ReplayStream, RecordHookSeesOnlyEmittedInstructions)
{
    // The record hook must not observe warmup (fast-forwarded)
    // instructions: the first captured seq equals the emulator's
    // post-warmup instruction count.
    const auto &w = workloads::workload("fp_fir");
    auto e = workloads::makeEmulator(w, 1'000);
    const std::uint64_t warmup = e->instCount();
    EXPECT_GT(warmup, 0u);

    trace::TracePtr t = workloads::captureTrace(w, 1'000);
    ASSERT_FALSE(t->empty());
    EXPECT_EQ((*t)[0].seq, warmup);
}

} // namespace
