// Tests for the synthetic trace generator and the wrong-path
// synthesiser, including parameterised property sweeps verifying that
// requested statistics are actually delivered.

#include <gtest/gtest.h>

#include "trace/analysis.hh"
#include "trace/synthetic.hh"
#include "trace/wrongpath.hh"

namespace {

using namespace rrs;
using trace::SyntheticParams;
using trace::SyntheticStream;

TEST(Synthetic, ProducesRequestedLength)
{
    SyntheticParams sp;
    sp.numInsts = 1234;
    SyntheticStream s(sp);
    std::uint64_t n = 0;
    while (s.next())
        ++n;
    EXPECT_EQ(n, 1234u);
}

TEST(Synthetic, ResetReplaysIdentically)
{
    SyntheticParams sp;
    sp.numInsts = 5000;
    SyntheticStream s(sp);
    std::vector<Addr> pcs1;
    while (auto di = s.next())
        pcs1.push_back(di->pc);
    s.reset();
    std::vector<Addr> pcs2;
    while (auto di = s.next())
        pcs2.push_back(di->pc);
    EXPECT_EQ(pcs1, pcs2);
}

TEST(Synthetic, PcStaysInsideFootprint)
{
    SyntheticParams sp;
    sp.numInsts = 20000;
    sp.staticFootprint = 512;
    SyntheticStream s(sp);
    Addr end = isa::textBase + 512 * isa::instBytes;
    while (auto di = s.next()) {
        EXPECT_GE(di->pc, isa::textBase);
        EXPECT_LT(di->pc, end);
        EXPECT_GE(di->nextPc, isa::textBase);
        EXPECT_LT(di->nextPc, end);
    }
}

TEST(Synthetic, MixRoughlyMatchesRequest)
{
    SyntheticParams sp;
    sp.numInsts = 200000;
    sp.branchFraction = 0.10;
    sp.loadFraction = 0.25;
    sp.storeFraction = 0.10;
    SyntheticStream s(sp);
    std::uint64_t branches = 0, loads = 0, stores = 0, total = 0;
    while (auto di = s.next()) {
        ++total;
        if (di->isControl())
            ++branches;
        if (di->isLoad())
            ++loads;
        if (di->isStore())
            ++stores;
    }
    auto frac = [&](std::uint64_t n) {
        return static_cast<double>(n) / static_cast<double>(total);
    };
    EXPECT_NEAR(frac(branches), 0.10, 0.01);
    EXPECT_NEAR(frac(loads), 0.25, 0.01);
    EXPECT_NEAR(frac(stores), 0.10, 0.01);
}

/**
 * Property sweep: higher requested single-use fractions must produce
 * monotonically richer single-use statistics as measured by the
 * analyzer (exact equality is not promised; the knob is a target).
 */
class SyntheticSingleUse : public ::testing::TestWithParam<double>
{
};

TEST_P(SyntheticSingleUse, DeliversSingleUseValues)
{
    SyntheticParams sp;
    sp.numInsts = 150000;
    sp.singleUseFraction = GetParam();
    SyntheticStream s(sp);
    auto rep = trace::analyzeUsage(s, sp.numInsts);
    if (GetParam() == 0.0) {
        // With the knob off, chained single-use should be rare.
        EXPECT_LT(rep.fracSingleConsumer(), 0.35);
    } else {
        EXPECT_GT(rep.fracSingleConsumer(), 0.8 * GetParam() * 0.3);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SyntheticSingleUse,
                         ::testing::Values(0.0, 0.2, 0.4, 0.6, 0.8));

TEST(Synthetic, SingleUseKnobIsMonotonic)
{
    double last = -1.0;
    for (double knob : {0.0, 0.3, 0.6, 0.9}) {
        SyntheticParams sp;
        sp.numInsts = 150000;
        sp.singleUseFraction = knob;
        SyntheticStream s(sp);
        auto rep = trace::analyzeUsage(s, sp.numInsts);
        double f = rep.fracSingleConsumer();
        EXPECT_GT(f, last) << "knob=" << knob;
        last = f;
    }
}

TEST(WrongPath, MimicsObservedMix)
{
    trace::WrongPathGenerator g(1, 64);
    // Observe a pure FP-multiply stream.
    trace::DynInst proto;
    proto.si.op = isa::Opcode::Fmul;
    proto.si.dest = isa::fpReg(1);
    proto.si.srcs[0] = isa::fpReg(2);
    proto.si.srcs[1] = isa::fpReg(3);
    for (int i = 0; i < 64; ++i)
        g.observe(proto);
    for (int i = 0; i < 100; ++i) {
        auto di = g.generate(0x5000, static_cast<InstSeqNum>(i));
        EXPECT_EQ(di.si.op, isa::Opcode::Fmul);
        EXPECT_EQ(di.nextPc, 0x5000u + isa::instBytes);
        EXPECT_FALSE(di.taken);
        EXPECT_TRUE(di.si.dest.valid());
    }
}

TEST(WrongPath, EmptyHistoryYieldsNops)
{
    trace::WrongPathGenerator g;
    auto di = g.generate(0x100, 0);
    EXPECT_EQ(di.si.op, isa::Opcode::Nop);
}

TEST(WrongPath, BranchTemplatesBecomeNotTaken)
{
    trace::WrongPathGenerator g(2, 8);
    trace::DynInst br;
    br.si.op = isa::Opcode::Bne;
    br.si.srcs[0] = isa::intReg(1);
    br.si.srcs[1] = isa::intReg(2);
    br.taken = true;
    for (int i = 0; i < 8; ++i)
        g.observe(br);
    auto di = g.generate(0x200, 1);
    EXPECT_EQ(di.si.op, isa::Opcode::Bne);
    EXPECT_FALSE(di.taken);
}

} // namespace
