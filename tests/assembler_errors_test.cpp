// Death tests for the assembler's error handling: malformed input is
// repository-controlled, so errors terminate via fatal() with the
// offending line number.

#include <gtest/gtest.h>

#include "isa/assembler.hh"

namespace {

using rrs::isa::assemble;

using AssemblerDeath = ::testing::Test;

TEST(AssemblerDeath, UnknownMnemonic)
{
    EXPECT_EXIT(assemble("frobnicate x1, x2\n"),
                ::testing::ExitedWithCode(1), "unknown mnemonic");
}

TEST(AssemblerDeath, UndefinedLabel)
{
    EXPECT_EXIT(assemble("b nowhere\n"),
                ::testing::ExitedWithCode(1), "undefined label");
}

TEST(AssemblerDeath, UndefinedSymbolInImmediate)
{
    EXPECT_EXIT(assemble("movz x1, =missing\n"),
                ::testing::ExitedWithCode(1), "undefined symbol");
}

TEST(AssemblerDeath, DuplicateLabel)
{
    EXPECT_EXIT(assemble("a:\nnop\na:\nnop\n"),
                ::testing::ExitedWithCode(1), "duplicate label");
}

TEST(AssemblerDeath, WrongRegisterClass)
{
    EXPECT_EXIT(assemble("add x1, f2, x3\n"),
                ::testing::ExitedWithCode(1), "wrong register class");
}

TEST(AssemblerDeath, MissingOperand)
{
    EXPECT_EXIT(assemble("add x1, x2\n"),
                ::testing::ExitedWithCode(1), "missing operand");
}

TEST(AssemblerDeath, TooManyOperands)
{
    EXPECT_EXIT(assemble("nop x1\n"),
                ::testing::ExitedWithCode(1), "too many operands");
}

TEST(AssemblerDeath, BadMemoryOperand)
{
    EXPECT_EXIT(assemble("ldr x1, x2\n"),
                ::testing::ExitedWithCode(1), "expected .base");
}

TEST(AssemblerDeath, BadImmediate)
{
    EXPECT_EXIT(assemble("addi x1, x2, #banana\n"),
                ::testing::ExitedWithCode(1), "bad immediate");
}

TEST(AssemblerDeath, InstructionInDataSegment)
{
    EXPECT_EXIT(assemble(".data\nadd x1, x2, x3\n"),
                ::testing::ExitedWithCode(1), "instruction in .data");
}

TEST(AssemblerDeath, DataDirectiveInText)
{
    EXPECT_EXIT(assemble(".text\n.word 5\n"),
                ::testing::ExitedWithCode(1), "data directive in .text");
}

TEST(AssemblerDeath, UnknownDirective)
{
    EXPECT_EXIT(assemble(".bogus 1\n"),
                ::testing::ExitedWithCode(1), "unknown directive");
}

TEST(AssemblerDeath, ProgramSymbolLookupFatal)
{
    rrs::isa::Program p = assemble("nop\n");
    EXPECT_EXIT(p.symbol("missing"), ::testing::ExitedWithCode(1),
                "undefined symbol");
}

} // namespace
