// Property-based tests for both renamers: randomized instruction
// streams with random commit/squash interleavings, checking the
// structural invariants the schemes must preserve:
//
//  - register conservation: free + live registers == total, always;
//  - squash is a perfect inverse: after squashTo(t), the speculative
//    map, free counts and PRT-visible state equal the snapshot at t;
//  - live versioned tags are unique: no two in-flight destinations
//    carry the same (register, version) pair;
//  - commit-release safety: a released register is never one that a
//    still-in-flight consumer names;
//  - the two schemes rename sources consistently (same logical
//    dataflow) even though physical names differ.

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <set>

#include "common/random.hh"
#include "harness/experiment.hh"
#include "rename/baseline.hh"
#include "rename/reuse.hh"
#include "rename/scheme.hh"

namespace {

using namespace rrs;
using namespace rrs::rename;

/** Random well-formed instruction generator. */
class InstGen
{
  public:
    explicit InstGen(std::uint64_t seed) : rng(seed) {}

    trace::DynInst
    next()
    {
        trace::DynInst di;
        const double r = rng.uniform();
        auto randInt = [&] {
            return isa::intReg(static_cast<LogRegIndex>(rng.below(12)));
        };
        auto randFp = [&] {
            return isa::fpReg(static_cast<LogRegIndex>(rng.below(12)));
        };
        if (r < 0.15) {
            di.si.op = isa::Opcode::Str;   // no destination
            di.si.srcs[0] = randInt();
            di.si.srcs[1] = randInt();
        } else if (r < 0.3) {
            di.si.op = isa::Opcode::Fmadd;
            di.si.dest = randFp();
            di.si.srcs[0] = randFp();
            di.si.srcs[1] = randFp();
            di.si.srcs[2] = randFp();
        } else if (r < 0.45) {
            di.si.op = isa::Opcode::Movz;
            di.si.dest = randInt();
        } else if (r < 0.6) {
            // Redefining single-use pattern (chain food).
            di.si.op = isa::Opcode::Addi;
            auto reg = randInt();
            di.si.dest = reg;
            di.si.srcs[0] = reg;
        } else {
            di.si.op = isa::Opcode::Add;
            di.si.dest = randInt();
            di.si.srcs[0] = randInt();
            di.si.srcs[1] = randInt();
        }
        di.pc = 0x1000 + 4 * rng.below(96);
        return di;
    }

  private:
    Random rng;
};

/**
 * Observable renamer state for snapshot comparison.  Only the
 * speculative map is compared: renames are the only operations that
 * modify it and squashes must restore it exactly.  Free-register
 * counts are deliberately excluded — commits that retire *older*
 * instructions between the snapshot and the squash legitimately
 * release registers.
 */
struct Snapshot
{
    std::vector<PhysRegTag> intMap, fpMap;

    bool operator==(const Snapshot &) const = default;
};

template <typename R>
Snapshot
snapshotOf(const R &rn)
{
    Snapshot s;
    for (LogRegIndex r = 0; r < isa::numLogRegs; ++r) {
        s.intMap.push_back(rn.mapping(RegClass::Int, r));
        s.fpMap.push_back(rn.mapping(RegClass::Float, r));
    }
    return s;
}

/** Drive a renamer through a random rename/commit/squash schedule. */
template <typename R>
void
fuzzRenamer(R &rn, std::uint64_t seed, int steps)
{
    InstGen gen(seed);
    Random sched(seed ^ 0x5eed);
    std::deque<RenameResult> rob;
    std::deque<Snapshot> snaps;     // snapshot *before* each rob entry
    std::deque<HistoryToken> tokens;

    const std::uint32_t totalInt = rn.totalRegs(RegClass::Int);
    const std::uint32_t totalFp = rn.totalRegs(RegClass::Float);

    for (int step = 0; step < steps; ++step) {
        double action = sched.uniform();
        if (action < 0.55 && rob.size() < 48) {
            // Rename one instruction.
            auto snap = snapshotOf(rn);
            auto token = rn.historyPosition();
            auto res = rn.rename(gen.next());
            if (res.success) {
                rob.push_back(res);
                snaps.push_back(snap);
                tokens.push_back(token);
            } else {
                // A failed rename must have had no side effects.
                ASSERT_EQ(snapshotOf(rn), snap) << "stall side effects";
                // Unblock: commit the oldest instruction.
                if (!rob.empty()) {
                    rn.commit(rob.front());
                    rob.pop_front();
                    snaps.pop_front();
                    tokens.pop_front();
                }
            }
        } else if (action < 0.8) {
            // Commit a few from the head.
            for (int k = 0; k < 3 && !rob.empty(); ++k) {
                rn.commit(rob.front());
                rob.pop_front();
                snaps.pop_front();
                tokens.pop_front();
            }
        } else if (!rob.empty()) {
            // Squash a random suffix and verify exact state restore.
            std::size_t keep = sched.below(rob.size());
            Snapshot expect = snaps[keep];
            rn.squashTo(tokens[keep]);
            ASSERT_EQ(snapshotOf(rn), expect)
                << "squash did not restore state at step " << step;
            rob.resize(keep);
            snaps.resize(keep);
            tokens.resize(keep);
        }

        // Invariant: no two live destinations share a versioned tag.
        std::set<std::tuple<int, int, int>> live;
        for (const auto &r : rob) {
            if (!r.hasDest)
                continue;
            auto key = std::make_tuple(
                static_cast<int>(r.destTag.cls),
                static_cast<int>(r.destTag.reg),
                static_cast<int>(r.destTag.version));
            ASSERT_TRUE(live.insert(key).second)
                << "duplicate live tag " << r.destTag.toString();
        }

        // Invariant: free counts never exceed totals.
        ASSERT_LE(rn.freeRegs(RegClass::Int), totalInt);
        ASSERT_LE(rn.freeRegs(RegClass::Float), totalFp);
    }

    // Drain; then every logical register still has a valid mapping.
    while (!rob.empty()) {
        rn.commit(rob.front());
        rob.pop_front();
    }
    for (LogRegIndex r = 0; r < isa::numLogRegs; ++r) {
        ASSERT_TRUE(rn.mapping(RegClass::Int, r).valid());
        ASSERT_TRUE(rn.mapping(RegClass::Float, r).valid());
    }
}

class BaselineFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BaselineFuzz, InvariantsHoldUnderRandomSchedules)
{
    BaselineRenamer rn(BaselineParams{56, 56});
    fuzzRenamer(rn, GetParam(), 4000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 71, 1234));

class ReuseFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ReuseFuzz, InvariantsHoldUnderRandomSchedules)
{
    ReuseRenamerParams p;
    p.intBanks = {34, 8, 2, 2};
    p.fpBanks = {34, 8, 2, 2};
    ReuseRenamer rn(p);
    fuzzRenamer(rn, GetParam(), 4000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReuseFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 71, 1234));

class ReuseFuzzTinyBanks : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ReuseFuzzTinyBanks, InvariantsHoldNearStarvation)
{
    // Minimal file: heavy stall/reuse interleaving.
    ReuseRenamerParams p;
    p.intBanks = {33, 2, 1, 1};
    p.fpBanks = {33, 2, 1, 1};
    ReuseRenamer rn(p);
    fuzzRenamer(rn, GetParam(), 3000);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReuseFuzzTinyBanks,
                         ::testing::Values(11, 22, 33, 44));

class ReuseFuzzCounterBits
    : public ::testing::TestWithParam<std::uint8_t>
{
};

TEST_P(ReuseFuzzCounterBits, InvariantsHoldForEveryCounterWidth)
{
    ReuseRenamerParams p;
    p.intBanks = {34, 4, 4, 4};
    p.fpBanks = {34, 4, 4, 4};
    p.counterBits = GetParam();
    ReuseRenamer rn(p);
    fuzzRenamer(rn, 99, 3000);
}

INSTANTIATE_TEST_SUITE_P(Bits, ReuseFuzzCounterBits,
                         ::testing::Values(std::uint8_t{1},
                                           std::uint8_t{2},
                                           std::uint8_t{3},
                                           std::uint8_t{4}));

/**
 * Cross-scheme dataflow equivalence: renaming the same stream through
 * both schemes must produce the same *logical* dependence structure —
 * each consumer reads the value produced by the same earlier
 * instruction (or the initial state), regardless of physical names.
 */
TEST(CrossScheme, LogicalDataflowIdentical)
{
    InstGen gen(7);
    std::vector<trace::DynInst> insts;
    for (int i = 0; i < 600; ++i)
        insts.push_back(gen.next());

    auto producerTrace = [&](auto &rn) {
        // For every instruction and source slot, record which earlier
        // instruction's dest tag it matches (-1 = architectural).
        std::map<std::string, int> producerOf;  // tag -> inst index
        std::vector<std::vector<int>> result;
        int idx = 0;
        for (const auto &di : insts) {
            auto r = rn.rename(di);
            if (!r.success)
                break;
            // Repairs move a value to a fresh register: the fresh tag
            // logically carries the original producer's value.
            for (int k = 0; k < r.numRepairs; ++k) {
                const auto &rep = r.repairList[static_cast<size_t>(k)];
                auto it = producerOf.find(rep.fromTag.toString());
                producerOf[rep.toTag.toString()] =
                    it == producerOf.end() ? -1 : it->second;
            }
            std::vector<int> row;
            for (int s = 0; s < r.numSrcTags; ++s) {
                const auto &tag = r.srcTags[static_cast<size_t>(s)];
                if (!tag.valid()) {
                    row.push_back(-2);
                    continue;
                }
                auto it = producerOf.find(tag.toString());
                row.push_back(it == producerOf.end() ? -1 : it->second);
            }
            result.push_back(row);
            if (r.hasDest)
                producerOf[r.destTag.toString()] = idx;
            rn.commit(r);   // commit immediately: pure dataflow check
            ++idx;
        }
        return result;
    };

    BaselineRenamer base(BaselineParams{128, 128});
    ReuseRenamerParams rp;
    rp.intBanks = {96, 16, 8, 8};
    rp.fpBanks = {96, 16, 8, 8};
    ReuseRenamer reuse(rp);

    auto a = producerTrace(base);
    auto b = producerTrace(reuse);
    ASSERT_EQ(a.size(), insts.size());
    ASSERT_EQ(b.size(), insts.size());
    EXPECT_EQ(a, b) << "the schemes disagree about who produced a "
                       "consumed value";
}

/**
 * The factory's absence contract: an unregistered name is a typed
 * nullptr from the probe (what the sweep-matrix parser leans on to
 * fail at config-parse time) — never a crash or a junk scheme.  The
 * fatal lookup lists what *is* registered so the message from a bench
 * typo is actionable.
 */
TEST(SchemeRegistry, UnknownSchemeIsTypedAbsence)
{
    EXPECT_EQ(rename::findRenameScheme("no-such-scheme"), nullptr);
    EXPECT_EQ(rename::findRenameScheme(""), nullptr);
    EXPECT_NE(rename::findRenameScheme("baseline"), nullptr);
    EXPECT_NE(rename::findRenameScheme("reuse"), nullptr);

    const auto names = rename::registeredRenameSchemes();
    EXPECT_GE(names.size(), 2u);

    EXPECT_EXIT(rename::renameScheme("no-such-scheme"),
                ::testing::ExitedWithCode(1),
                "unknown rename scheme 'no-such-scheme'.*registered:"
                ".*baseline.*reuse");
}

/**
 * Scheme hot-swap: alternating schemes between runs on one workload —
 * what a sweep matrix does constantly — must leave no state behind in
 * the factory or the trace cache; a config rerun later is bit-identical
 * to its first run.
 */
TEST(SchemeRegistry, HotSwapBetweenRunsIsStateless)
{
    const auto &w = workloads::workload("int_crc");
    auto runWith = [&](const char *scheme) {
        harness::RunConfig cfg = harness::schemeConfig(scheme, 56);
        cfg.maxInsts = 10'000;
        return harness::runOn(w, cfg);
    };

    auto base1 = runWith("baseline");
    auto prop1 = runWith("reuse");
    auto base2 = runWith("baseline");
    auto prop2 = runWith("reuse");

    EXPECT_EQ(base1.sim.cycles, base2.sim.cycles);
    EXPECT_EQ(base1.allocations, base2.allocations);
    EXPECT_EQ(base1.renameStalls, base2.renameStalls);
    EXPECT_EQ(prop1.sim.cycles, prop2.sim.cycles);
    EXPECT_EQ(prop1.allocations, prop2.allocations);
    EXPECT_EQ(prop1.reuses, prop2.reuses);
    EXPECT_EQ(prop1.repairs, prop2.repairs);

    // The two schemes really ran as themselves: reuse shares, the
    // baseline never does.
    EXPECT_GT(prop1.reuses, 0.0);
    EXPECT_EQ(base1.reuses, 0.0);
}

} // namespace
