// Unit tests for the branch prediction unit: direction predictor
// learning, BTB behaviour, RAS push/pop, and squash restore.

#include <gtest/gtest.h>

#include "bpred/bpred.hh"

namespace {

using namespace rrs;
using namespace rrs::bpred;
using isa::BranchKind;

TEST(BTBTest, MissThenHit)
{
    BTB btb(64, 4);
    EXPECT_EQ(btb.lookup(0x1000), invalidAddr);
    btb.update(0x1000, 0x2000);
    EXPECT_EQ(btb.lookup(0x1000), 0x2000u);
}

TEST(BTBTest, LruEvictionWithinSet)
{
    BTB btb(8, 2);   // 4 sets x 2 ways
    // Three PCs mapping to the same set (stride = sets * instBytes).
    Addr a = 0x1000, b = 0x1000 + 4 * 4, c = 0x1000 + 8 * 4;
    btb.update(a, 0xa);
    btb.update(b, 0xb);
    btb.update(c, 0xc);   // evicts a (LRU)
    EXPECT_EQ(btb.lookup(a), invalidAddr);
    EXPECT_EQ(btb.lookup(b), 0xbu);
    EXPECT_EQ(btb.lookup(c), 0xcu);
}

TEST(RasTest, PushPopNesting)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(RasTest, RestoreAfterSquash)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    auto tos = ras.tos();
    ras.push(0x200);
    ras.pop();
    ras.pop();
    ras.restore(tos);
    EXPECT_EQ(ras.top(), 0x100u);
}

TEST(BranchPredictorTest, LearnsAlwaysTaken)
{
    BPredParams bp;
    bp.kind = DirPredictor::Bimodal;   // history-independent learning
    BranchPredictor pred(bp);
    const Addr pc = 0x4000, target = 0x5000;
    // Warm up: train taken a few times.
    for (int i = 0; i < 4; ++i) {
        auto p = pred.predict(pc, BranchKind::Cond);
        pred.update(pc, BranchKind::Cond, true, target, p.historySnapshot);
        pred.correctHistory(p, true);
    }
    auto p = pred.predict(pc, BranchKind::Cond);
    EXPECT_TRUE(p.taken);
    EXPECT_EQ(p.target, target);
}

TEST(BranchPredictorTest, GshareConvergesOnAlwaysTaken)
{
    BPredParams bp;
    bp.kind = DirPredictor::GShare;
    BranchPredictor pred(bp);
    const Addr pc = 0x4000, target = 0x5000;
    // With gshare the history must fill with 1s before the index
    // stabilises; allow a full warm-up.
    int correct_tail = 0;
    for (int i = 0; i < 40; ++i) {
        auto p = pred.predict(pc, BranchKind::Cond);
        if (i >= 20 && p.taken)
            ++correct_tail;
        pred.update(pc, BranchKind::Cond, true, target,
                    p.historySnapshot);
        pred.correctHistory(p, true);
    }
    EXPECT_EQ(correct_tail, 20);
}

TEST(BranchPredictorTest, BimodalLearnsBiasedPattern)
{
    BPredParams bp;
    bp.kind = DirPredictor::Bimodal;
    BranchPredictor pred(bp);
    const Addr pc = 0x4000;
    int correct = 0;
    for (int i = 0; i < 200; ++i) {
        bool actual = (i % 10) != 0;   // 90% taken
        auto p = pred.predict(pc, BranchKind::Cond);
        if (p.taken == actual)
            ++correct;
        pred.update(pc, BranchKind::Cond, actual, 0x5000,
                    p.historySnapshot);
        pred.correctHistory(p, actual);
    }
    EXPECT_GT(correct, 150);
}

TEST(BranchPredictorTest, GshareLearnsAlternatingPattern)
{
    BPredParams bp;
    bp.kind = DirPredictor::GShare;
    BranchPredictor pred(bp);
    const Addr pc = 0x4000;
    int correct = 0;
    const int n = 600;
    for (int i = 0; i < n; ++i) {
        bool actual = (i % 2) == 0;   // strict alternation
        auto p = pred.predict(pc, BranchKind::Cond);
        if (p.taken == actual)
            ++correct;
        pred.update(pc, BranchKind::Cond, actual, 0x5000,
                    p.historySnapshot);
        pred.correctHistory(p, actual);
    }
    // Gshare captures alternation via global history; bimodal cannot.
    EXPECT_GT(correct, n * 3 / 4);
}

TEST(BranchPredictorTest, CallPushesReturnPops)
{
    BPredParams bp;
    BranchPredictor pred(bp);
    const Addr call_pc = 0x4000;
    auto pc_after_call = call_pc + isa::instBytes;
    pred.update(call_pc, BranchKind::Call, true, 0x8000);
    auto pcall = pred.predict(call_pc, BranchKind::Call);
    EXPECT_TRUE(pcall.taken);
    EXPECT_EQ(pcall.target, 0x8000u);
    auto pret = pred.predict(0x8010, BranchKind::Return);
    EXPECT_EQ(pret.target, pc_after_call);
}

TEST(BranchPredictorTest, SquashRestoresHistoryAndRas)
{
    BPredParams bp;
    BranchPredictor pred(bp);
    pred.predict(0x4000, BranchKind::Call);   // pushes RAS
    auto snap = pred.predict(0x4100, BranchKind::Cond);
    pred.predict(0x4200, BranchKind::Call);   // speculative push
    pred.squash(snap);
    // After the squash the RAS top is the first call's return address.
    auto pret = pred.predict(0x5000, BranchKind::Return);
    EXPECT_EQ(pret.target, 0x4000u + isa::instBytes);
}

TEST(BranchPredictorTest, IndirectUsesBtb)
{
    BPredParams bp;
    BranchPredictor pred(bp);
    auto p1 = pred.predict(0x4000, BranchKind::Indirect);
    EXPECT_FALSE(p1.btbHit);
    pred.update(0x4000, BranchKind::Indirect, true, 0x9000);
    auto p2 = pred.predict(0x4000, BranchKind::Indirect);
    EXPECT_TRUE(p2.btbHit);
    EXPECT_EQ(p2.target, 0x9000u);
}

TEST(BranchPredictorTest, AccuracyStat)
{
    BPredParams bp;
    bp.kind = DirPredictor::Bimodal;
    BranchPredictor pred(bp);
    for (int i = 0; i < 10; ++i) {
        auto p = pred.predict(0x4000, BranchKind::Cond);
        bool actual = true;
        pred.recordResolution(BranchKind::Cond, p.taken == actual);
        pred.update(0x4000, BranchKind::Cond, actual, 0x5000,
                    p.historySnapshot);
        pred.correctHistory(p, actual);
    }
    EXPECT_GT(pred.condAccuracy(), 0.5);
}

} // namespace
