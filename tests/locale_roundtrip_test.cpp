// Locale-independence tests for every numeric parse path: parseDouble
// / parseDoublePrefix (common/strutils.hh) and the jsonlite number
// grammar (obs/jsonlite.hh) must read "3.14" as 3.14 no matter what
// locale the host process is in.  Both paths used to sit on
// std::strtod, which honours the global C locale: under a
// comma-decimal locale (de_DE style) "5.72" parsed as 5 and every
// stats-json / bench-json / sweep-matrix number silently truncated.
//
// The container may not ship any comma-decimal OS locale, so the C
// half of the setup is best-effort: the C++ half (a custom numpunct
// facet installed as the global std::locale) needs no OS support and
// always runs.

#include <gtest/gtest.h>

#include <clocale>
#include <locale>
#include <string>

#include "common/strutils.hh"
#include "obs/jsonlite.hh"

namespace {

using namespace rrs;

/** A numpunct facet that renders/reads decimals German-style. */
class CommaNumpunct : public std::numpunct<char>
{
  protected:
    char do_decimal_point() const override { return ','; }
    char do_thousands_sep() const override { return '.'; }
    std::string do_grouping() const override { return "\3"; }
};

/**
 * Push the process into a comma-decimal world for one test: the global
 * std::locale always (custom facet), the C locale when the host has a
 * comma-decimal one installed.  Restores both on destruction.
 */
class CommaLocaleGuard
{
  public:
    CommaLocaleGuard()
        : oldCpp(std::locale::global(
              std::locale(std::locale::classic(), new CommaNumpunct)))
    {
        const char *old = std::setlocale(LC_NUMERIC, nullptr);
        oldC = old ? old : "C";
        for (const char *cand :
             {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8",
              "fr_FR.utf8", "fr_FR"}) {
            if (std::setlocale(LC_NUMERIC, cand) != nullptr) {
                cLocaleSet = true;
                break;
            }
        }
    }

    ~CommaLocaleGuard()
    {
        std::setlocale(LC_NUMERIC, oldC.c_str());
        std::locale::global(oldCpp);
    }

    /** Did a real comma-decimal C locale take effect too? */
    bool hasCLocale() const { return cLocaleSet; }

  private:
    std::locale oldCpp;
    std::string oldC;
    bool cLocaleSet = false;
};

TEST(LocaleRoundTrip, ParseDoubleIgnoresGlobalLocale)
{
    CommaLocaleGuard guard;

    EXPECT_EQ(parseDouble("3.14"), 3.14);
    EXPECT_EQ(parseDouble("5.7209999"), 5.7209999);
    EXPECT_EQ(parseDouble("5.72e-06"), 5.72e-06);
    EXPECT_EQ(parseDouble("-0.5"), -0.5);
    EXPECT_EQ(parseDouble("+2.5"), 2.5);
    EXPECT_EQ(parseDouble("1e3"), 1000.0);
    // Comma is NOT a decimal separator in any config file we read.
    EXPECT_EQ(parseDouble("3,14"), std::nullopt);
    EXPECT_EQ(parseDouble("abc"), std::nullopt);
}

TEST(LocaleRoundTrip, ParseDoublePrefixIgnoresGlobalLocale)
{
    CommaLocaleGuard guard;

    const std::string in = "6.125e-2]";
    double v = 0;
    const char *end =
        parseDoublePrefix(in.data(), in.data() + in.size(), v);
    EXPECT_EQ(end, in.data() + 8);
    EXPECT_EQ(v, 6.125e-2);

    // A non-number consumes nothing.
    const std::string bad = ",5";
    EXPECT_EQ(parseDoublePrefix(bad.data(), bad.data() + bad.size(), v),
              bad.data());
}

TEST(LocaleRoundTrip, JsonNumbersSurviveCommaLocale)
{
    CommaLocaleGuard guard;

    obs::json::Value doc;
    std::string error;
    ASSERT_TRUE(obs::json::parse(
        R"({"ipc": 5.72e-06, "wall": 0.45, "n": 175000})", doc, &error))
        << error;
    ASSERT_NE(doc.find("ipc"), nullptr);
    EXPECT_EQ(doc.find("ipc")->num, 5.72e-06);
    EXPECT_EQ(doc.find("wall")->num, 0.45);
    EXPECT_EQ(doc.find("n")->num, 175000.0);
}

// The full write-then-read loop: values rendered with %.17g must parse
// back bit-exact even when the process locale would rather see commas.
TEST(LocaleRoundTrip, RenderedDoublesRoundTripBitExact)
{
    CommaLocaleGuard guard;

    for (double v : {5.7209999, 5.72e-06, 0.3333333333333333,
                     1.0 / 175000.0, 123456.789}) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        // snprintf itself must not have localised the decimal point
        // for the artifact files to stay machine-readable; %g is only
        // locale-sensitive through LC_NUMERIC, which the C++-side
        // facet does not touch.
        if (guard.hasCLocale() && std::string(buf).find(',') !=
                                      std::string::npos)
            GTEST_SKIP() << "host printf localises %g; parse paths are "
                            "covered by the literal-input tests";
        auto parsed = parseDouble(buf);
        ASSERT_TRUE(parsed.has_value()) << buf;
        EXPECT_EQ(*parsed, v) << buf;
    }
}

} // namespace
