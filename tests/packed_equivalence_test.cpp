// Property test for the pre-decoded trace columns (trace/packed.hh):
// for every workload, every PackedTrace column and attribute bit must
// agree field-by-field with the DynInst records it was derived from —
// the packed view is a pure re-encoding, never a reinterpretation.
// The same columns must survive a codec v2 round trip (the stored
// packed digest proves the load-side rebuild matches) and must be the
// view ReplayStream hands the core, stable across reset() and
// re-construction.

#include <gtest/gtest.h>

#include <vector>

#include "trace/packed.hh"
#include "trace/recorded.hh"
#include "trace/tracefile.hh"
#include "workloads/workloads.hh"

namespace {

using namespace rrs;
using trace::DynInst;
using trace::PackedTrace;

constexpr std::uint64_t kCap = 20'000;

bool
bit(const std::vector<std::uint64_t> &bv, std::size_t i)
{
    return (bv[i / 64] >> (i % 64)) & 1;
}

// The rename-allocation predicate, restated independently of the
// packer: an instruction allocates a physical register iff it has a
// dest and that dest is not the hardwired integer zero register.
bool
refWritesReg(const DynInst &di)
{
    return di.si.info().hasDest &&
           !(di.si.dest.cls == RegClass::Int &&
             di.si.dest.idx == isa::zeroReg);
}

// Every packed column and attribute bit vs the DynInst records, one
// record at a time, against the OpInfo table (the packer's input).
void
expectPackedMatchesRecords(const PackedTrace &p,
                           const std::vector<DynInst> &records)
{
    ASSERT_EQ(p.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        const DynInst &di = records[i];
        const isa::OpInfo &info = di.si.info();
        const isa::PackedMeta &m = p.meta(i);

        // Compact classifier bytes vs the authoritative OpInfo.
        EXPECT_EQ(m.cls, info.cls) << i;
        EXPECT_EQ(m.branch, info.branch) << i;
        EXPECT_EQ(m.memBytes, info.memBytes) << i;

        // Static attribute bits.
        EXPECT_EQ(m.isLoad(), di.si.load()) << i;
        EXPECT_EQ(m.isStore(), di.si.store()) << i;
        EXPECT_EQ(m.isControl(), di.si.control()) << i;
        EXPECT_EQ(m.hasDest(), info.hasDest) << i;

        // Per-record bits stamped on top of the static ones.
        EXPECT_EQ(p.taken(i), di.taken) << i;
        EXPECT_EQ((m.attrs & isa::instattr::writesReg) != 0,
                  refWritesReg(di))
            << i;

        // Plain columns.
        EXPECT_EQ(p.seq(i), di.seq) << i;
        EXPECT_EQ(p.pc(i), di.pc) << i;
        EXPECT_EQ(p.nextPc(i), di.nextPc) << i;
        EXPECT_EQ(p.effAddr(i), di.effAddr) << i;

        // Operand lists round-trip through the register byte codec.
        EXPECT_EQ(p.dest(i), di.si.dest) << i;
        for (unsigned s = 0; s < 3; ++s)
            EXPECT_EQ(p.src(i, s), di.si.srcs[s]) << i << " src " << s;
        EXPECT_EQ(p.numSrcs(i), di.si.numSrcs()) << i;

        // Bitvector bits agree with the per-record attribute bits.
        EXPECT_EQ(bit(p.loadBits(), i), m.isLoad()) << i;
        EXPECT_EQ(bit(p.storeBits(), i), m.isStore()) << i;
        EXPECT_EQ(bit(p.controlBits(), i), m.isControl()) << i;
        EXPECT_EQ(bit(p.hasDestBits(), i), m.hasDest()) << i;
        EXPECT_EQ(bit(p.takenBits(), i), di.taken) << i;
        EXPECT_EQ(bit(p.writesRegBits(), i), refWritesReg(di)) << i;
    }

    // Population counts close the loop on the bitvector encoding.
    std::uint64_t loads = 0, stores = 0, branches = 0, taken = 0;
    for (const DynInst &di : records) {
        loads += di.si.load();
        stores += di.si.store();
        branches += di.si.control();
        taken += di.taken;
    }
    EXPECT_EQ(PackedTrace::countBits(p.loadBits()), loads);
    EXPECT_EQ(PackedTrace::countBits(p.storeBits()), stores);
    EXPECT_EQ(PackedTrace::countBits(p.controlBits()), branches);
    EXPECT_EQ(PackedTrace::countBits(p.takenBits()), taken);
}

class EveryWorkloadPacked : public ::testing::TestWithParam<const char *>
{
};

TEST_P(EveryWorkloadPacked, ColumnsMatchRecords)
{
    const auto &w = workloads::workload(GetParam());
    trace::TracePtr t = workloads::captureTrace(w, kCap);
    ASSERT_FALSE(t->empty());

    const PackedTrace &p = t->packed();
    expectPackedMatchesRecords(p, t->insts());

    // packed() is built once and memoised: same object every call.
    EXPECT_EQ(&t->packed(), &p);

    // Packing is a pure function of the records: a fresh build from
    // the same records digests identically.
    PackedTrace rebuilt(t->insts());
    EXPECT_EQ(rebuilt.digest(), p.digest());
}

TEST_P(EveryWorkloadPacked, SurvivesCodecRoundTrip)
{
    const auto &w = workloads::workload(GetParam());
    trace::TracePtr t = workloads::captureTrace(w, kCap);

    const std::string path = ::testing::TempDir() + "packed_rt_" +
                             w.name + ".rrstrace";
    trace::writeTraceFile(path, *t);
    trace::TracePtr back = trace::readTraceFile(path);
    ASSERT_TRUE(back);

    // The reader verified the stored packed digest itself; check the
    // rebuilt columns against the original anyway, field by field.
    EXPECT_EQ(back->packed().digest(), t->packed().digest());
    expectPackedMatchesRecords(back->packed(), t->insts());
}

TEST_P(EveryWorkloadPacked, ReplayStreamServesPackedView)
{
    const auto &w = workloads::workload(GetParam());
    trace::TracePtr t = workloads::captureTrace(w, kCap);

    // The stream's packed view is the trace's own packed columns, and
    // cursor() indexes them in lockstep with next().
    trace::ReplayStream stream(t);
    ASSERT_NE(stream.packedView(), nullptr);
    EXPECT_EQ(stream.packedView(), &t->packed());
    std::size_t i = 0;
    while (true) {
        EXPECT_EQ(stream.cursor(), i);
        auto di = stream.next();
        if (!di)
            break;
        EXPECT_EQ(di->seq, stream.packedView()->seq(i)) << i;
        ++i;
    }
    EXPECT_EQ(i, t->size());

    // reset() rewinds the cursor but never invalidates the view...
    stream.reset();
    EXPECT_EQ(stream.cursor(), 0u);
    EXPECT_EQ(stream.packedView(), &t->packed());

    // ...and a re-constructed stream shares the same columns (the
    // pack happened once, at capture).
    trace::ReplayStream rebuilt(t);
    EXPECT_EQ(rebuilt.packedView(), &t->packed());
}

INSTANTIATE_TEST_SUITE_P(
    Suite, EveryWorkloadPacked,
    ::testing::Values("int_sort", "int_hash", "int_crc", "int_sieve",
                      "int_match", "int_graph", "int_lz", "fp_matmul",
                      "fp_fir", "fp_jacobi", "fp_nbody", "fp_horner",
                      "fp_chain", "fp_blur", "media_adpcm", "media_dct",
                      "media_sobel", "media_g711", "cog_gmm", "cog_dnn",
                      "cog_knn"));

TEST(PackedTrace, EmulatorStreamsFallBackToNullView)
{
    // A live emulator has no packed columns; the core must get the
    // documented nullptr and fall back to the one-time classifier.
    const auto &w = workloads::workload("int_crc");
    auto e = workloads::makeEmulator(w, 1'000);
    EXPECT_EQ(e->packedView(), nullptr);
}

TEST(PackedTrace, EmptyTracePacksToEmptyColumns)
{
    PackedTrace p(std::vector<DynInst>{});
    EXPECT_TRUE(p.empty());
    EXPECT_EQ(p.size(), 0u);
    EXPECT_EQ(PackedTrace::countBits(p.loadBits()), 0u);
}

} // namespace
