// Round-trip and cross-component property tests:
//  - assembler/disassembler round trip over generated instructions;
//  - every workload's disassembly re-assembles to an equivalent
//    program;
//  - a no-wrong-path core with interrupts (regression for the fetch
//    stall sentinel surviving a flush).

#include <gtest/gtest.h>

#include "common/random.hh"
#include "harness/experiment.hh"
#include "isa/assembler.hh"

namespace {

using namespace rrs;
using namespace rrs::isa;

/** Operand-compatible random instruction for round-trip testing. */
StaticInst
randomInst(Random &rng)
{
    // Pick non-control, non-fp-imm opcodes (labels and float text
    // formatting round-trip differently by design).
    static const Opcode ops[] = {
        Opcode::Add,  Opcode::Sub,  Opcode::Mul,  Opcode::Div,
        Opcode::And,  Opcode::Orr,  Opcode::Eor,  Opcode::Lsl,
        Opcode::Addi, Opcode::Subi, Opcode::Andi, Opcode::Lsli,
        Opcode::Mov,  Opcode::Movz, Opcode::Ldr,  Opcode::Ldrb,
        Opcode::Str,  Opcode::Strw, Opcode::Fldr, Opcode::Fstr,
        Opcode::Fadd, Opcode::Fmul, Opcode::Fmadd, Opcode::Fcvt,
        Opcode::Fcvti, Opcode::Feq, Opcode::Nop,
    };
    StaticInst si;
    si.op = ops[rng.below(sizeof(ops) / sizeof(ops[0]))];
    const OpInfo &inf = si.info();
    auto reg = [&](RegClass cls) {
        return RegId{cls, static_cast<LogRegIndex>(rng.below(31))};
    };
    if (inf.hasDest)
        si.dest = reg(inf.destCls);
    for (int s = 0; s < inf.numSrcs; ++s)
        si.srcs[static_cast<std::size_t>(s)] = reg(inf.srcCls[s]);
    if (inf.hasImm)
        si.imm = rng.between(-256, 255) & ~7;   // legal mem offsets
    return si;
}

bool
sameInst(const StaticInst &a, const StaticInst &b)
{
    if (a.op != b.op || !(a.dest == b.dest) || a.imm != b.imm)
        return false;
    for (int s = 0; s < a.numSrcs(); ++s) {
        if (!(a.srcs[static_cast<std::size_t>(s)] ==
              b.srcs[static_cast<std::size_t>(s)]))
            return false;
    }
    return true;
}

TEST(RoundTrip, DisassembleThenAssemble)
{
    Random rng(2024);
    for (int i = 0; i < 2000; ++i) {
        StaticInst si = randomInst(rng);
        std::string text = si.toString() + "\n";
        Program p = assemble(text);
        ASSERT_EQ(p.size(), 1u) << text;
        EXPECT_TRUE(sameInst(si, p.text[0]))
            << "round trip changed: " << text << " -> "
            << p.text[0].toString();
    }
}

TEST(RoundTrip, WorkloadsDisassembleCleanly)
{
    // Every instruction of every workload must produce non-empty,
    // re-parsable text (branch targets render as raw addresses, so we
    // only check the mnemonic re-parses).
    for (const auto &w : workloads::allWorkloads()) {
        const isa::Program &p = workloads::program(w);
        for (const auto &si : p.text) {
            std::string text = si.toString();
            ASSERT_FALSE(text.empty());
            auto mnemonic = text.substr(0, text.find(' '));
            EXPECT_TRUE(opcodeFromName(mnemonic).has_value())
                << w.name << ": " << text;
        }
    }
}

TEST(Regression, NoWrongPathPlusInterruptsDoesNotHang)
{
    // A mispredicted branch stalls fetch when wrong-path modelling is
    // off; a timer interrupt that flushes it must unblock fetch.
    const auto &w = workloads::workload("int_sort");
    harness::RunConfig cfg = harness::reuseConfig(64);
    cfg.maxInsts = 20'000;
    cfg.core.modelWrongPath = false;
    cfg.core.interruptInterval = 800;
    auto out = harness::runOn(w, cfg);
    EXPECT_EQ(out.sim.committedInsts, 20'000u);
}

TEST(Regression, StressEverythingAtOnce)
{
    // Faults + interrupts + no wrong path + tiny register file + tiny
    // queues: the pipeline must still retire the exact stream.
    const auto &w = workloads::workload("media_adpcm");
    harness::RunConfig cfg = harness::reuseConfig(48);
    cfg.maxInsts = 15'000;
    cfg.core.modelWrongPath = false;
    cfg.core.interruptInterval = 700;
    cfg.core.loadFaultProbability = 0.03;
    cfg.core.robEntries = 16;
    cfg.core.iqEntries = 8;
    auto out = harness::runOn(w, cfg);
    EXPECT_EQ(out.sim.committedInsts, 15'000u);
}

} // namespace
