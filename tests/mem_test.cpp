// Unit tests for the memory hierarchy: caches (hits, misses, LRU,
// MSHRs), the stride prefetcher, the TLB and the DRAM timing model.

#include <gtest/gtest.h>

#include "mem/memsystem.hh"

namespace {

using namespace rrs;
using namespace rrs::mem;

TEST(DramTest, RowHitFasterThanMiss)
{
    DramParams dp;
    Dram dram(dp);
    Tick t1 = dram.access(0, 0);          // row miss (closed)
    Tick t2 = dram.access(1, t1) - t1;    // same row: hit
    Tick first = t1;
    EXPECT_LT(t2, first);
}

TEST(DramTest, RowConflictSlowest)
{
    DramParams dp;
    dp.ranks = 1;
    dp.banksPerRank = 1;   // force conflicts
    Dram dram(dp);
    Tick now = 20000;      // away from the refresh window
    Tick t1 = dram.access(0, now);
    Tick hit = dram.access(1, t1) - t1;
    // Different row in the same bank: conflict (precharge + activate).
    Tick conflict = dram.access(dp.rowBytes / 64 * 64 + dp.rowBytes, t1) - t1;
    EXPECT_GT(conflict, hit);
}

TEST(DramTest, BankParallelism)
{
    DramParams dp;
    Dram dram(dp);
    Tick now = 20000;
    // Two accesses to different banks overlap except for the bus.
    Tick t1 = dram.access(0, now);
    Tick t2 = dram.access(dp.rowBytes, now);   // next bank
    EXPECT_LT(t2 - now, (t1 - now) * 2);
}

TEST(CacheTest, HitAfterMiss)
{
    DramParams dp;
    Dram dram(dp);
    CacheParams cp{"l", 1024, 2, 64, 1, 4};
    Cache c(cp, nullptr, &dram);

    Tick t1 = c.access(0x100, false, 0);
    EXPECT_GT(t1, 1u);   // miss went to DRAM
    EXPECT_EQ(c.missCount(), 1u);
    Tick t2 = c.access(0x108, false, t1);   // same line
    EXPECT_EQ(t2, t1 + 1);                  // hit latency 1
    EXPECT_EQ(c.hitCount(), 1u);
}

TEST(CacheTest, LruEviction)
{
    DramParams dp;
    Dram dram(dp);
    // 2 sets x 2 ways x 64B = 256B cache.
    CacheParams cp{"l", 256, 2, 64, 1, 4};
    Cache c(cp, nullptr, &dram);

    Tick now = 0;
    now = c.access(0x000, false, now);   // set 0
    now = c.access(0x080, false, now);   // set 0 (2 sets: 0x80 = set 0? line 2 % 2 = 0)
    now = c.access(0x100, false, now);   // set 0: evicts 0x000
    now = c.access(0x000, false, now);
    EXPECT_EQ(c.missCount(), 4u);        // re-miss after eviction
}

TEST(CacheTest, WritebackCountsDirtyEvictions)
{
    DramParams dp;
    Dram dram(dp);
    CacheParams cp{"l", 128, 1, 64, 1, 4};   // direct-mapped, 2 lines
    Cache c(cp, nullptr, &dram);
    Tick now = 0;
    now = c.access(0x000, true, now);    // dirty line in set 0
    now = c.access(0x080, false, now);   // evicts it (set 0 again)
    EXPECT_GE(c.missCount(), 2u);
}

TEST(CacheTest, HierarchyL2FasterThanDram)
{
    MemSystemParams mp;
    MemSystem ms(mp);
    Tick cold = ms.dataAccess(0x1000, 0x200000, false, 0);
    // Evict nothing; L1 hit now.
    Tick l1 = ms.dataAccess(0x1000, 0x200000, false, cold) - cold;
    EXPECT_LE(l1, 2u);
    EXPECT_LT(l1, cold);
}

TEST(CacheTest, MshrMergeGivesPendingLatency)
{
    DramParams dp;
    Dram dram(dp);
    CacheParams cp{"l", 1024, 2, 64, 1, 4};
    Cache c(cp, nullptr, &dram);
    Tick done1 = c.access(0x100, false, 1000);
    // A second access to the same line while the fill is in flight
    // completes with the fill, not with a fresh DRAM trip.
    Tick done2 = c.access(0x110, false, 1001);
    EXPECT_LE(done2, done1 + 1);
}

TEST(PrefetcherTest, DetectsConstantStride)
{
    Prefetcher pf(16, 1);
    Addr pc = 0x4000;
    EXPECT_TRUE(pf.observe(pc, 0x1000).empty());
    EXPECT_TRUE(pf.observe(pc, 0x1040).empty());   // stride learned
    EXPECT_TRUE(pf.observe(pc, 0x1080).empty());   // confidence 1
    auto v = pf.observe(pc, 0x10c0);               // confidence 2: fire
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], 0x1100u);
}

TEST(PrefetcherTest, RandomPatternStaysQuiet)
{
    Prefetcher pf(16, 1);
    Addr pc = 0x4000;
    Addr addrs[] = {0x1000, 0x5340, 0x2780, 0x9100, 0x0040, 0x7777};
    std::size_t fired = 0;
    for (Addr a : addrs)
        fired += pf.observe(pc, a).size();
    EXPECT_EQ(fired, 0u);
}

TEST(PrefetcherTest, PrefetchTurnsMissIntoHit)
{
    MemSystemParams mp;
    MemSystem ms(mp);
    Addr pc = 0x4000;
    Tick now = 0;
    // Establish the stride, then check a later access hits.
    for (int i = 0; i < 8; ++i)
        now = ms.dataAccess(pc, 0x100000 + 64 * static_cast<Addr>(i),
                            false, now);
    std::uint64_t misses_before = ms.l1d().missCount();
    now = ms.dataAccess(pc, 0x100000 + 64 * 8, false, now);
    EXPECT_EQ(ms.l1d().missCount(), misses_before);   // prefetched
}

TEST(TlbTest, HitAfterWalk)
{
    TlbParams tp;
    Tlb tlb(tp);
    auto r1 = tlb.translate(0x123456);
    EXPECT_FALSE(r1.hit);
    EXPECT_EQ(r1.latency, tp.walkLatency);
    auto r2 = tlb.translate(0x123000);
    EXPECT_TRUE(r2.hit);
    EXPECT_EQ(r2.latency, 0u);
}

TEST(TlbTest, LruCapacity)
{
    TlbParams tp;
    tp.entries = 2;
    Tlb tlb(tp);
    tlb.translate(0x1000);
    tlb.translate(0x2000);
    tlb.translate(0x3000);   // evicts page 1
    EXPECT_FALSE(tlb.translate(0x1000).hit);
    EXPECT_EQ(tlb.missCount(), 4u);
}

TEST(MemSystemTest, ResetClearsTimingState)
{
    MemSystemParams mp;
    MemSystem ms(mp);
    Tick cold1 = ms.dataAccess(0x1000, 0x300000, false, 0);
    ms.resetState();
    Tick cold2 = ms.dataAccess(0x1000, 0x300000, false, 0);
    EXPECT_EQ(cold1, cold2);   // identical cold behaviour after reset
}

TEST(MemSystemTest, FetchPathUsesL1I)
{
    MemSystemParams mp;
    MemSystem ms(mp);
    Tick t1 = ms.fetchAccess(0x10000, 0);
    Tick t2 = ms.fetchAccess(0x10010, t1);
    EXPECT_EQ(t2 - t1, 1u);   // same line: L1I hit
}

} // namespace
