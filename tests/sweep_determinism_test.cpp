// Differential test for the parallel sweep engine: the same sweep must
// produce bit-identical Outcomes no matter how many threads execute it.
// This is the determinism contract documented in harness/sweep.hh.

#include <gtest/gtest.h>

#include <vector>

#include "harness/sweep.hh"

namespace {

using namespace rrs;
using harness::Outcome;
using harness::SweepItem;
using harness::SweepRunner;

// The reference 8-config sweep: two workloads x two register-file
// sizes x {baseline, reuse}.  One reuse entry also samples the Fig. 9
// occupancy series so the vector payload is covered.
std::vector<SweepItem>
referenceSweep()
{
    constexpr std::uint64_t insts = 20'000;
    std::vector<SweepItem> items;
    for (const char *name : {"int_crc", "fp_fir"}) {
        const auto &w = workloads::workload(name);
        for (std::uint32_t regs : {56u, 96u}) {
            auto base = harness::baselineConfig(regs);
            base.maxInsts = insts;
            items.push_back(harness::sweepItem(w, base));
            auto prop = harness::reuseConfig(regs);
            prop.maxInsts = insts;
            bool sample = items.size() == 1;
            items.push_back(harness::sweepItem(w, prop, sample));
        }
    }
    return items;
}

void
expectOutcomeEq(const Outcome &a, const Outcome &b, std::size_t idx)
{
    SCOPED_TRACE("sweep entry " + std::to_string(idx));
    EXPECT_EQ(a.sim.cycles, b.sim.cycles);
    EXPECT_EQ(a.sim.committedInsts, b.sim.committedInsts);
    EXPECT_EQ(a.sim.committedOps, b.sim.committedOps);
    EXPECT_EQ(a.condAccuracy, b.condAccuracy);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.exceptions, b.exceptions);
    EXPECT_EQ(a.allocations, b.allocations);
    EXPECT_EQ(a.reuses, b.reuses);
    EXPECT_EQ(a.repairs, b.repairs);
    EXPECT_EQ(a.renameStalls, b.renameStalls);
    EXPECT_EQ(a.fig12.reuseCorrect, b.fig12.reuseCorrect);
    EXPECT_EQ(a.fig12.reuseWrong, b.fig12.reuseWrong);
    EXPECT_EQ(a.fig12.noReuseCorrect, b.fig12.noReuseCorrect);
    EXPECT_EQ(a.fig12.noReuseWrong, b.fig12.noReuseWrong);
    EXPECT_EQ(a.sharedAtLeast1, b.sharedAtLeast1);
    EXPECT_EQ(a.sharedAtLeast2, b.sharedAtLeast2);
    EXPECT_EQ(a.sharedAtLeast3, b.sharedAtLeast3);
}

TEST(SweepDeterminism, BitIdenticalAcrossThreadCounts)
{
    auto items = referenceSweep();
    ASSERT_EQ(items.size(), 8u);

    SweepRunner one(1);
    auto ref = one.outcomes(items);
    ASSERT_EQ(ref.size(), items.size());

    for (unsigned threads : {2u, 4u}) {
        SweepRunner runner(threads);
        auto got = runner.outcomes(items);
        ASSERT_EQ(got.size(), ref.size()) << "threads=" << threads;
        for (std::size_t i = 0; i < ref.size(); ++i) {
            SCOPED_TRACE("threads=" + std::to_string(threads));
            expectOutcomeEq(ref[i], got[i], i);
        }
    }
}

TEST(SweepDeterminism, RepeatedRunsAreIdentical)
{
    auto items = referenceSweep();
    SweepRunner runner(4);
    auto first = runner.outcomes(items);
    auto second = runner.outcomes(items);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        expectOutcomeEq(first[i], second[i], i);
}

// The engine's seed rule: entry i runs with sweepSeed(config seed, i).
// A serial runOn with the same derived seed must reproduce the sweep's
// result exactly — the pool adds nothing to the numbers.
TEST(SweepDeterminism, MatchesSerialRunWithDerivedSeed)
{
    auto items = referenceSweep();
    SweepRunner runner(4);
    auto swept = runner.run(items);

    for (std::size_t i : {std::size_t{0}, std::size_t{5}}) {
        auto cfg = items[i].config;
        cfg.core.seed = harness::sweepSeed(cfg.core.seed, i);
        auto serial =
            harness::runOn(*items[i].workload, cfg, items[i].sampleSharing);
        expectOutcomeEq(serial, swept[i].outcome, i);
    }
}

TEST(SweepDeterminism, SeedDerivationIsStableAndDistinct)
{
    EXPECT_EQ(harness::sweepSeed(12345, 0), harness::sweepSeed(12345, 0));
    EXPECT_NE(harness::sweepSeed(12345, 0), harness::sweepSeed(12345, 1));
    EXPECT_NE(harness::sweepSeed(12345, 1), harness::sweepSeed(12345, 2));
    EXPECT_NE(harness::sweepSeed(12345, 0), harness::sweepSeed(54321, 0));
}

TEST(SweepSummary, CountsAndThroughput)
{
    auto items = referenceSweep();
    SweepRunner runner(2);
    auto results = runner.run(items);
    const auto &s = runner.summary();

    EXPECT_EQ(s.runs, items.size());
    EXPECT_EQ(s.threads, 2u);
    EXPECT_GT(s.wallSeconds, 0.0);
    EXPECT_GT(s.runsPerSec(), 0.0);
    EXPECT_GT(s.instsPerSec(), 0.0);

    std::uint64_t insts = 0;
    double wall = 0;
    for (const auto &r : results) {
        insts += r.outcome.sim.committedInsts;
        wall += r.wallSeconds;
        EXPECT_GT(r.wallSeconds, 0.0);
    }
    EXPECT_EQ(s.instsCommitted, insts);
    EXPECT_NEAR(s.runSecondsTotal, wall, 1e-9);
    EXPECT_GE(s.runSecondsMax, s.runSecondsMin);
}

} // namespace
