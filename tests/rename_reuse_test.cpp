// Unit tests for the proposed renamer: physical register sharing,
// versioned tags, the PRT read bit / counter, the register type
// predictor interplay, single-use misprediction repair, reference-
// counted release, and squash recovery.

#include <gtest/gtest.h>

#include "rename/reuse.hh"

namespace {

using namespace rrs;
using namespace rrs::rename;

trace::DynInst
makeInst(isa::Opcode op, isa::RegId dest, isa::RegId s0 = {},
         isa::RegId s1 = {}, Addr pc = 0x1000)
{
    trace::DynInst di;
    di.si.op = op;
    di.si.dest = dest;
    di.si.srcs[0] = s0;
    di.si.srcs[1] = s1;
    di.pc = pc;
    return di;
}

trace::DynInst
addInst(int d, int a, int b, Addr pc = 0x1000)
{
    return makeInst(isa::Opcode::Add,
                    isa::intReg(static_cast<LogRegIndex>(d)),
                    isa::intReg(static_cast<LogRegIndex>(a)),
                    isa::intReg(static_cast<LogRegIndex>(b)), pc);
}

trace::DynInst
movzInst(int d, Addr pc = 0x2000)
{
    return makeInst(isa::Opcode::Movz,
                    isa::intReg(static_cast<LogRegIndex>(d)), {}, {}, pc);
}

/** Params whose free registers all live in the 3-shadow-cell bank, so
 *  reuse mechanics can be tested without predictor warmup. */
ReuseRenamerParams
bigShadowParams()
{
    ReuseRenamerParams p;
    p.intBanks = {32, 0, 0, 16};
    p.fpBanks = {32, 0, 0, 16};
    return p;
}

TEST(ReuseRenamer, RedefiningChainSharesOneRegister)
{
    ReuseRenamer rn(bigShadowParams());
    auto free0 = rn.freeRegs(RegClass::Int);

    // I1: add r1 <- r2, r3   (fresh register P)
    auto r1 = rn.rename(addInst(1, 2, 3));
    ASSERT_TRUE(r1.success);
    EXPECT_FALSE(r1.reused);
    EXPECT_EQ(rn.freeRegs(RegClass::Int), free0 - 1);

    // I4: add r1 <- r1, r4   (sole + redefining consumer: reuse, v1)
    auto r4 = rn.rename(addInst(1, 1, 4));
    ASSERT_TRUE(r4.success);
    EXPECT_TRUE(r4.reused);
    EXPECT_EQ(r4.destTag.reg, r1.destTag.reg);
    EXPECT_EQ(r4.destTag.version, 1);
    EXPECT_EQ(r4.srcTags[0], r1.destTag);
    EXPECT_EQ(rn.freeRegs(RegClass::Int), free0 - 1);  // no allocation

    // I5: mul r1 <- r1, r1   (reads the same reg twice, still one
    // consumer: reuse, v2)
    auto r5 = rn.rename(makeInst(isa::Opcode::Mul, isa::intReg(1),
                                 isa::intReg(1), isa::intReg(1)));
    ASSERT_TRUE(r5.success);
    EXPECT_TRUE(r5.reused);
    EXPECT_EQ(r5.destTag.version, 2);
    EXPECT_EQ(r5.srcTags[0], r4.destTag);
    EXPECT_EQ(r5.srcTags[1], r4.destTag);

    // I6: mul r1 <- r1, r3   (reuse, v3 — counter saturates after)
    auto r6 = rn.rename(addInst(1, 1, 3));
    ASSERT_TRUE(r6.success);
    EXPECT_TRUE(r6.reused);
    EXPECT_EQ(r6.destTag.version, 3);

    // I7: add r1 <- r1, r4   (counter saturated: fresh register)
    auto r7 = rn.rename(addInst(1, 1, 4));
    ASSERT_TRUE(r7.success);
    EXPECT_FALSE(r7.reused);
    EXPECT_NE(r7.destTag.reg, r6.destTag.reg);
    EXPECT_EQ(rn.freeRegs(RegClass::Int), free0 - 2);
}

TEST(ReuseRenamer, ReadBitBlocksSecondConsumer)
{
    ReuseRenamer rn(bigShadowParams());
    auto r1 = rn.rename(addInst(1, 2, 3));
    // First consumer, not redefining and predictor cold: no reuse, but
    // it sets the read bit.
    auto r2 = rn.rename(addInst(5, 1, 4));
    ASSERT_TRUE(r2.success);
    EXPECT_FALSE(r2.reused);
    // Second consumer that *does* redefine: read bit already set, so
    // the guaranteed-reuse rule cannot fire.
    auto r3 = rn.rename(addInst(1, 1, 4));
    ASSERT_TRUE(r3.success);
    EXPECT_FALSE(r3.reused);
    EXPECT_EQ(r3.srcTags[0], r1.destTag);
}

TEST(ReuseRenamer, BankShadowCapacityLimitsReuse)
{
    // All free registers have exactly one shadow cell.
    ReuseRenamerParams p;
    p.intBanks = {32, 16, 0, 0};
    p.fpBanks = {32, 16, 0, 0};
    ReuseRenamer rn(p);

    auto r1 = rn.rename(addInst(1, 2, 3));
    auto r2 = rn.rename(addInst(1, 1, 3));   // v1 (uses the shadow cell)
    ASSERT_TRUE(r2.reused);
    auto r3 = rn.rename(addInst(1, 1, 3));   // no shadow cell left
    ASSERT_TRUE(r3.success);
    EXPECT_FALSE(r3.reused);
    EXPECT_NE(r3.destTag.reg, r1.destTag.reg);
}

TEST(ReuseRenamer, CounterBitsAblation)
{
    // 1-bit counter: version saturates at 1 even with 3 shadow cells.
    auto p = bigShadowParams();
    p.counterBits = 1;
    ReuseRenamer rn(p);
    EXPECT_EQ(rn.maxVersions(), 2u);

    rn.rename(addInst(1, 2, 3));
    auto r2 = rn.rename(addInst(1, 1, 3));
    EXPECT_TRUE(r2.reused);
    auto r3 = rn.rename(addInst(1, 1, 3));
    EXPECT_FALSE(r3.reused);
}

TEST(ReuseRenamer, ReuseDisabledAblationBehavesLikeBaseline)
{
    auto p = bigShadowParams();
    p.reuseEnabled = false;
    ReuseRenamer rn(p);
    rn.rename(addInst(1, 2, 3));
    auto r2 = rn.rename(addInst(1, 1, 3));
    EXPECT_FALSE(r2.reused);
}

TEST(ReuseRenamer, NonRedefReuseRequiresPredictor)
{
    ReuseRenamer rn(bigShadowParams());
    const Addr producer_pc = 0x4000;

    // Cold predictor: first consumer that does not redefine gets no
    // reuse.
    auto r1 = rn.rename(movzInst(1, producer_pc));
    auto r2 = rn.rename(addInst(7, 1, 9));
    EXPECT_FALSE(r2.reused);
    EXPECT_NE(r2.destTag.reg, r1.destTag.reg);

    // Warm the producer's predictor entry: pretend reuse kept failing
    // for lack of shadow cells so the entry climbs above zero.
    auto &tp = rn.predictor();
    tp.trainOnShadowExhausted(tp.indexFor(producer_pc));

    auto r3 = rn.rename(movzInst(2, producer_pc));
    auto r4 = rn.rename(addInst(8, 2, 9));
    ASSERT_TRUE(r4.success);
    EXPECT_TRUE(r4.reused);
    EXPECT_EQ(r4.destTag.reg, r3.destTag.reg);
    EXPECT_EQ(r4.destTag.version, 1);
}

TEST(ReuseRenamer, SingleUseMispredictionTriggersRepair)
{
    ReuseRenamer rn(bigShadowParams());
    const Addr producer_pc = 0x4000;
    auto &tp = rn.predictor();
    tp.trainOnShadowExhausted(tp.indexFor(producer_pc));

    auto r1 = rn.rename(movzInst(1, producer_pc));
    auto r2 = rn.rename(addInst(7, 1, 9));     // speculative reuse of x1
    ASSERT_TRUE(r2.reused);

    // A second consumer of x1 arrives: misprediction.  The producer of
    // the current version (the reusing instruction) has executed, so
    // the old value sits in a shadow cell: 3 move uops.
    auto executed = [&](const PhysRegTag &) { return true; };
    auto r3 = rn.rename(addInst(8, 1, 9), executed);
    ASSERT_TRUE(r3.success);
    EXPECT_EQ(r3.numRepairs, 1);
    EXPECT_EQ(r3.repairUops, 3);
    EXPECT_EQ(r3.repairList[0].fromTag, r1.destTag);
    EXPECT_EQ(r3.repairList[0].toTag.version, 0);
    EXPECT_NE(r3.repairList[0].toTag.reg, r1.destTag.reg);
    // The consumer reads the repaired register.
    EXPECT_EQ(r3.srcTags[0], r3.repairList[0].toTag);
    // The map is re-pointed: further consumers need no repair.
    auto r4 = rn.rename(addInst(9, 1, 9));
    EXPECT_EQ(r4.numRepairs, 0);
    EXPECT_EQ(r4.srcTags[0], r3.repairList[0].toTag);
}

TEST(ReuseRenamer, RepairCostsOneUopIfProducerNotExecuted)
{
    ReuseRenamer rn(bigShadowParams());
    auto &tp = rn.predictor();
    tp.trainOnShadowExhausted(tp.indexFor(0x4000));
    rn.rename(movzInst(1, 0x4000));
    rn.rename(addInst(7, 1, 9));
    auto not_executed = [&](const PhysRegTag &) { return false; };
    auto r3 = rn.rename(addInst(8, 1, 9), not_executed);
    EXPECT_EQ(r3.repairUops, 1);
}

TEST(ReuseRenamer, SharedRegisterNotReleasedWhileStaleRefExists)
{
    ReuseRenamer rn(bigShadowParams());
    auto &tp = rn.predictor();
    tp.trainOnShadowExhausted(tp.indexFor(0x4000));

    auto free0 = rn.freeRegs(RegClass::Int);
    auto r1 = rn.rename(movzInst(1, 0x4000));    // x1 -> P
    auto r2 = rn.rename(addInst(7, 1, 9));       // x7 reuses P (v1)
    ASSERT_TRUE(r2.reused);
    auto r3 = rn.rename(movzInst(7, 0x5000));    // x7 redefined -> Q
    rn.commit(r1);
    rn.commit(r2);
    rn.commit(r3);
    // P and Q are in use; the identity registers originally mapped to
    // x1 and x7 were released by the commits, so the net free count is
    // back to free0 — but P must NOT be among the free ones: the
    // retirement map of x1 still names (P, v0), whose committed value
    // lives in a shadow cell.
    EXPECT_EQ(rn.freeRegs(RegClass::Int), free0);
    EXPECT_GE(rn.committedShadowValues(), 1u);

    // Redefine x1; once that commits, P finally dies (one alloc for the
    // new mapping, one release of P: net unchanged).
    auto r4 = rn.rename(movzInst(1, 0x6000));
    rn.commit(r4);
    EXPECT_EQ(rn.committedShadowValues(), 0u);
    EXPECT_EQ(rn.freeRegs(RegClass::Int), free0);
}

TEST(ReuseRenamer, CommitChainReleasesOnlyOldMapping)
{
    ReuseRenamer rn(bigShadowParams());
    auto free0 = rn.freeRegs(RegClass::Int);
    auto r1 = rn.rename(addInst(1, 2, 3));
    auto r2 = rn.rename(addInst(1, 1, 4));
    ASSERT_TRUE(r2.reused);
    rn.commit(r1);
    // Identity P1 (x1's original mapping) released at I1's commit.
    EXPECT_EQ(rn.freeRegs(RegClass::Int), free0);
    rn.commit(r2);
    // Reuse releases nothing further (release-on-rename semantics).
    EXPECT_EQ(rn.freeRegs(RegClass::Int), free0);
}

TEST(ReuseRenamer, SquashRestoresFullState)
{
    ReuseRenamer rn(bigShadowParams());
    auto &tp = rn.predictor();
    tp.trainOnShadowExhausted(tp.indexFor(0x4000));

    auto token = rn.historyPosition();
    auto free0 = rn.freeRegs(RegClass::Int);
    std::vector<PhysRegTag> maps0;
    for (LogRegIndex r = 0; r < isa::numLogRegs; ++r)
        maps0.push_back(rn.mapping(RegClass::Int, r));

    // A burst with allocation, redefining reuse, non-redef reuse and a
    // repair.
    rn.rename(movzInst(1, 0x4000));
    rn.rename(addInst(1, 1, 3));
    rn.rename(addInst(7, 1, 9));
    rn.rename(addInst(8, 1, 9), [](const PhysRegTag &) { return true; });
    rn.rename(addInst(2, 5, 6));

    auto recoveries = rn.squashTo(token);
    EXPECT_GE(recoveries, 1u);   // the undone reuses needed recovery
    EXPECT_EQ(rn.freeRegs(RegClass::Int), free0);
    for (LogRegIndex r = 0; r < isa::numLogRegs; ++r)
        EXPECT_EQ(rn.mapping(RegClass::Int, r), maps0[r]) << "reg " << r;
    // After restoration a fresh identical burst behaves identically.
    auto ra = rn.rename(movzInst(1, 0x4000));
    EXPECT_TRUE(ra.success);
}

TEST(ReuseRenamer, PartialSquashKeepsOlderReuse)
{
    ReuseRenamer rn(bigShadowParams());
    auto r1 = rn.rename(addInst(1, 2, 3));
    auto r2 = rn.rename(addInst(1, 1, 3));   // reuse v1
    ASSERT_TRUE(r2.reused);
    auto mid = rn.historyPosition();
    auto r3 = rn.rename(addInst(1, 1, 4));   // reuse v2
    ASSERT_TRUE(r3.reused);

    rn.squashTo(mid);
    EXPECT_EQ(rn.mapping(RegClass::Int, 1), r2.destTag);
    // Renaming the same instruction again reproduces version 2.
    auto r3b = rn.rename(addInst(1, 1, 4));
    EXPECT_TRUE(r3b.reused);
    EXPECT_EQ(r3b.destTag, r3.destTag);
    (void)r1;
}

TEST(ReuseRenamer, StallOnlyWhenNoFreeRegAndNoReuse)
{
    ReuseRenamerParams p;
    p.intBanks = {33, 0, 0, 0};   // one spare register, no shadow cells
    p.fpBanks = {33, 0, 0, 0};
    ReuseRenamer rn(p);

    auto r1 = rn.rename(addInst(1, 2, 3));
    ASSERT_TRUE(r1.success);
    EXPECT_EQ(rn.freeRegs(RegClass::Int), 0u);
    // No free register and bank-0 registers cannot be shared: stall.
    auto r2 = rn.rename(addInst(2, 1, 3));
    EXPECT_FALSE(r2.success);

    // Same situation but with shadow capacity: reuse avoids the stall.
    ReuseRenamerParams p2;
    p2.intBanks = {32, 0, 0, 1};
    p2.fpBanks = {33, 0, 0, 0};
    ReuseRenamer rn2(p2);
    auto q1 = rn2.rename(addInst(1, 2, 3));
    ASSERT_TRUE(q1.success);
    EXPECT_EQ(rn2.freeRegs(RegClass::Int), 0u);
    auto q2 = rn2.rename(addInst(1, 1, 3));   // redefining reuse
    EXPECT_TRUE(q2.success);
    EXPECT_TRUE(q2.reused);
}

TEST(ReuseRenamer, Figure12CountersAccumulate)
{
    ReuseRenamer rn(bigShadowParams());
    // Allocate and kill registers through interleaved commits so
    // releases happen and the classification counters move.  The free
    // register count must return to its initial value minus the four
    // live mappings' churn (each logical register always holds exactly
    // one committed mapping).
    auto free0 = rn.freeRegs(RegClass::Int);
    for (int i = 0; i < 50; ++i) {
        auto r = rn.rename(movzInst(1 + (i % 4), 0x7000 + 16 * i));
        ASSERT_TRUE(r.success);
        rn.commit(r);
    }
    // Four logical registers moved from identity (bank 0) registers to
    // bank-3 registers; everything else was released.
    EXPECT_EQ(rn.freeRegs(RegClass::Int), free0);
    EXPECT_EQ(rn.committedShadowValues(), 0u);
}

TEST(ReuseRenamer, ShadowOccupancyIntrospection)
{
    ReuseRenamer rn(bigShadowParams());
    EXPECT_EQ(rn.bankInUse(RegClass::Int, 0), 32u);
    EXPECT_EQ(rn.bankInUse(RegClass::Int, 3), 0u);
    rn.rename(addInst(1, 2, 3));
    EXPECT_EQ(rn.bankInUse(RegClass::Int, 3), 1u);
    rn.rename(addInst(1, 1, 3));
    EXPECT_EQ(rn.sharedAtLeast(RegClass::Int, 1), 1u);
    EXPECT_EQ(rn.sharedAtLeast(RegClass::Int, 2), 0u);
}

TEST(ReuseRenamer, FpChainSharesToo)
{
    ReuseRenamer rn(bigShadowParams());
    auto f1 = rn.rename(makeInst(isa::Opcode::Fadd, isa::fpReg(1),
                                 isa::fpReg(2), isa::fpReg(3)));
    auto f2 = rn.rename(makeInst(isa::Opcode::Fmul, isa::fpReg(1),
                                 isa::fpReg(1), isa::fpReg(4)));
    ASSERT_TRUE(f2.success);
    EXPECT_TRUE(f2.reused);
    EXPECT_EQ(f2.destTag.cls, RegClass::Float);
    EXPECT_EQ(f2.destTag.reg, f1.destTag.reg);
}

TEST(ReuseRenamer, CrossClassNeverReuses)
{
    ReuseRenamer rn(bigShadowParams());
    // fcvt f1 <- x1: source int, dest fp; sharing is impossible.
    rn.rename(movzInst(1));
    auto r = rn.rename(makeInst(isa::Opcode::Fcvt, isa::fpReg(1),
                                isa::intReg(1)));
    ASSERT_TRUE(r.success);
    EXPECT_FALSE(r.reused);
}

} // namespace
