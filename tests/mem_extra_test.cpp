// Additional memory-hierarchy coverage: DRAM refresh windows and bus
// serialisation, cache writeback accounting, prefetcher degrees, and
// hierarchy interactions under mixed access patterns.

#include <gtest/gtest.h>

#include "mem/memsystem.hh"

namespace {

using namespace rrs;
using namespace rrs::mem;

TEST(DramExtra, RefreshWindowDelaysAccess)
{
    DramParams dp;
    Dram dram(dp);
    // An access landing inside the refresh window waits it out.
    Tick in_refresh = dram.access(0, 10) - 10;
    Dram dram2(dp);
    Tick outside = dram2.access(0, dp.refreshCycles + 100) -
                   (dp.refreshCycles + 100);
    EXPECT_GT(in_refresh, outside);
}

TEST(DramExtra, BusSerialisesBackToBackBursts)
{
    DramParams dp;
    Dram dram(dp);
    Tick now = 20000;
    // Same bank, same row: row hit each time, but the shared data bus
    // spaces the completions by at least the burst length.
    Tick t1 = dram.access(0, now);
    Tick t2 = dram.access(64, now);
    Tick t3 = dram.access(128, now);
    EXPECT_GE(t2, t1 + dp.burst);
    EXPECT_GE(t3, t2 + dp.burst);
}

TEST(DramExtra, ResetStateClearsRowBuffers)
{
    DramParams dp;
    Dram dram(dp);
    Tick now = 20000;
    Tick cold = dram.access(0, now) - now;
    dram.access(1, now + 1000);
    dram.resetState();
    Tick cold2 = dram.access(0, now) - now;
    EXPECT_EQ(cold, cold2);
}

TEST(CacheExtra, WritebackOnlyForDirtyLines)
{
    DramParams dp;
    Dram dram(dp);
    CacheParams cp{"l", 128, 1, 64, 1, 4};   // direct mapped, 2 sets
    Cache c(cp, nullptr, &dram);
    Tick now = 0;
    // Clean line evicted: no writeback counted; stats via hit/miss.
    now = c.access(0x000, false, now);
    now = c.access(0x080, false, now);   // evicts clean 0x000
    std::uint64_t misses_clean = c.missCount();
    EXPECT_EQ(misses_clean, 2u);
    // Dirty eviction path still functions (exercised via write).
    now = c.access(0x000, true, now);    // miss, dirty
    now = c.access(0x080, false, now);   // evicts dirty line
    EXPECT_EQ(c.missCount(), 4u);
}

TEST(CacheExtra, ContainsReflectsFillTiming)
{
    DramParams dp;
    Dram dram(dp);
    CacheParams cp{"l", 1024, 2, 64, 1, 4};
    Cache c(cp, nullptr, &dram);
    Tick done = c.access(0x200, false, 100);
    // While the fill is in flight the line is present but not usable.
    EXPECT_FALSE(c.contains(0x200, 101));
    EXPECT_TRUE(c.contains(0x200, done));
    EXPECT_FALSE(c.contains(0x999000, done));
}

TEST(CacheExtra, PrefetchDoesNotEvictPendingDemand)
{
    DramParams dp;
    Dram dram(dp);
    CacheParams cp{"l", 1024, 2, 64, 1, 2};   // only 2 MSHRs
    Cache c(cp, nullptr, &dram);
    Tick d1 = c.access(0x100, false, 0);
    Tick d2 = c.access(0x900, false, 0);
    // MSHRs are busy: a prefetch must be dropped, not stall anything.
    c.prefetch(0x2000, 1);
    EXPECT_FALSE(c.contains(0x2000, d1 + d2));
}

TEST(PrefetcherExtra, DegreeTwoIssuesTwoAddresses)
{
    Prefetcher pf(16, 2);
    Addr pc = 0x4000;
    pf.observe(pc, 0x1000);
    pf.observe(pc, 0x1040);
    pf.observe(pc, 0x1080);
    auto v = pf.observe(pc, 0x10c0);
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0], 0x1100u);
    EXPECT_EQ(v[1], 0x1140u);
}

TEST(PrefetcherExtra, NegativeStrideWorks)
{
    Prefetcher pf(16, 1);
    Addr pc = 0x4000;
    pf.observe(pc, 0x2000);
    pf.observe(pc, 0x1fc0);
    pf.observe(pc, 0x1f80);
    auto v = pf.observe(pc, 0x1f40);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], 0x1f00u);
}

TEST(PrefetcherExtra, TableConflictRelearns)
{
    Prefetcher pf(1, 1);   // every PC aliases to one entry
    pf.observe(0x4000, 0x1000);
    pf.observe(0x4000, 0x1040);
    // A different PC steals the entry.
    pf.observe(0x5000, 0x9000);
    // The original PC must re-establish itself without firing bogus
    // prefetches.
    auto v = pf.observe(0x4000, 0x1080);
    EXPECT_TRUE(v.empty());
}

TEST(MemSystemExtra, StridedSweepBeatsRandomSweep)
{
    MemSystemParams mp;
    MemSystem strided(mp);
    MemSystem random(mp);
    Tick t_str = 0, t_rnd = 0;
    // 512 accesses over a 256 KB footprint (L2-resident, L1-missing).
    std::uint64_t lcg = 7;
    for (int i = 0; i < 512; ++i) {
        t_str = strided.dataAccess(0x100, 0x400000 +
                                   64 * static_cast<Addr>(i), false,
                                   t_str);
        lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
        t_rnd = random.dataAccess(0x100, 0x400000 +
                                  ((lcg >> 33) % (256 * 1024) & ~63ULL),
                                  false, t_rnd);
    }
    // The stride prefetcher turns the linear sweep into hits.
    EXPECT_LT(t_str, t_rnd);
}

TEST(MemSystemExtra, TlbMissesChargeWalks)
{
    MemSystemParams mp;
    mp.stridePrefetcher = false;
    MemSystem ms(mp);
    // Touch 64 distinct pages: more than the 48-entry TLB holds.
    Tick now = 0;
    for (int i = 0; i < 64; ++i) {
        now = ms.dataAccess(0x100, 0x1000000 +
                            4096 * static_cast<Addr>(i), false, now);
    }
    EXPECT_EQ(ms.tlb().missCount(), 64u);
    // Revisit the first pages: they were evicted, walking again.
    std::uint64_t before = ms.tlb().missCount();
    now = ms.dataAccess(0x100, 0x1000000, false, now);
    EXPECT_EQ(ms.tlb().missCount(), before + 1);
}

} // namespace
