// Sweep-matrix parsing: the declarative (schemes x rf_sizes) grids the
// benches iterate.  Every malformed document must die at parse time
// with a diagnostic that names the problem — never mid-sweep — and the
// non-fatal probe (tryParseSweepMatrix) must report the same message
// without touching its output on failure.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "harness/sweepmatrix.hh"
#include "rename/scheme.hh"

namespace {

using namespace rrs;
using harness::SweepMatrix;

std::string
probeError(const std::string &text)
{
    SweepMatrix m;
    std::string error;
    EXPECT_FALSE(harness::tryParseSweepMatrix(text, m, error));
    return error;
}

// --- fatal path: a bad matrix kills the bench before any run starts --

TEST(SweepMatrixDeath, MalformedJson)
{
    EXPECT_EXIT(harness::parseSweepMatrix("{ not json"),
                ::testing::ExitedWithCode(1), "sweep matrix:");
}

TEST(SweepMatrixDeath, RootMustBeObject)
{
    EXPECT_EXIT(harness::parseSweepMatrix("[1, 2, 3]"),
                ::testing::ExitedWithCode(1),
                "document root must be an object");
}

TEST(SweepMatrixDeath, UnknownScheme)
{
    EXPECT_EXIT(
        harness::parseSweepMatrix(
            R"({"schemes": ["tomasulo67"], "rf_sizes": [64]})"),
        ::testing::ExitedWithCode(1),
        "unknown rename scheme 'tomasulo67'.*registered:.*baseline");
}

TEST(SweepMatrixDeath, UnknownParameterKey)
{
    EXPECT_EXIT(
        harness::parseSweepMatrix(
            R"({"schemes": [{"scheme": "reuse",
                             "params": {"warp_factor": 9}}],
                "rf_sizes": [64]})"),
        ::testing::ExitedWithCode(1),
        "scheme 'reuse' has no parameter 'warp_factor'.*keys:");
}

TEST(SweepMatrixDeath, EmptySchemes)
{
    EXPECT_EXIT(
        harness::parseSweepMatrix(R"({"schemes": [], "rf_sizes": [64]})"),
        ::testing::ExitedWithCode(1),
        "'schemes' must be a non-empty array");
}

TEST(SweepMatrixDeath, MissingSizes)
{
    EXPECT_EXIT(
        harness::parseSweepMatrix(R"({"schemes": ["baseline"]})"),
        ::testing::ExitedWithCode(1),
        "'rf_sizes' must be a non-empty array");
}

TEST(SweepMatrixDeath, DuplicateTopLevelKey)
{
    EXPECT_EXIT(
        harness::parseSweepMatrix(
            R"({"schemes": ["baseline"], "rf_sizes": [48],
                "rf_sizes": [64]})"),
        ::testing::ExitedWithCode(1),
        "duplicate key 'rf_sizes' in the matrix");
}

TEST(SweepMatrixDeath, MissingFile)
{
    EXPECT_EXIT(
        harness::loadSweepMatrixFile("/nonexistent/matrix.json"),
        ::testing::ExitedWithCode(1), "cannot open sweep matrix file");
}

// --- non-fatal probe: same diagnostics, untouched output -------------

TEST(SweepMatrixErrors, ProbeReportsWithoutDying)
{
    EXPECT_NE(probeError("{ not json").find("sweep matrix:"),
              std::string::npos);
    EXPECT_NE(probeError(R"({"schemes": ["baseline"], "rf_sizes": []})")
                  .find("'rf_sizes' must be a non-empty array"),
              std::string::npos);
    EXPECT_NE(probeError(R"({"schemes": ["baseline"],
                             "rf_sizes": [0]})")
                  .find("positive integers"),
              std::string::npos);
    EXPECT_NE(probeError(R"({"schemes": ["baseline"], "rf_sizes": [64],
                             "frobnicate": 1})")
                  .find("unknown key 'frobnicate'"),
              std::string::npos);
    EXPECT_NE(probeError(R"({"schemes": [{"scheme": "reuse",
                                          "params": {"counter_bits": 2,
                                                     "counter_bits": 3}}],
                             "rf_sizes": [64]})")
                  .find("duplicate key 'counter_bits' in the params of "
                        "scheme 'reuse'"),
              std::string::npos);
    EXPECT_NE(probeError(R"({"schemes": [{"label": "no name"}],
                             "rf_sizes": [64]})")
                  .find("need a string 'scheme' member"),
              std::string::npos);
    EXPECT_NE(probeError(R"({"schemes": [{"scheme": "reuse",
                                          "params": {"counter_bits":
                                                     "two"}}],
                             "rf_sizes": [64]})")
                  .find("must be a number or bool"),
              std::string::npos);
}

TEST(SweepMatrixErrors, OutputUntouchedOnFailure)
{
    SweepMatrix m;
    m.cap = 777;
    m.suite = "specint";
    std::string error;
    EXPECT_FALSE(harness::tryParseSweepMatrix("{", m, error));
    EXPECT_EQ(m.cap, 777u);
    EXPECT_EQ(m.suite, "specint");
    EXPECT_TRUE(m.schemes.empty());
}

// --- happy path ------------------------------------------------------

TEST(SweepMatrixParse, FullDocument)
{
    const auto m = harness::parseSweepMatrix(R"({
        "schemes": ["baseline",
                    {"scheme": "reuse", "label": "2-bit",
                     "params": {"counter_bits": 2,
                                "reuse_non_redef": false}}],
        "rf_sizes": [48, 64],
        "cap": 5000,
        "sample_sharing": true,
        "suite": "specfp",
        "audit": false
    })");

    ASSERT_EQ(m.schemes.size(), 2u);
    EXPECT_EQ(m.schemes[0].scheme, "baseline");
    EXPECT_EQ(m.schemes[0].label, "baseline");  // defaults to the key
    EXPECT_TRUE(m.schemes[0].params.empty());
    EXPECT_EQ(m.schemes[1].scheme, "reuse");
    EXPECT_EQ(m.schemes[1].label, "2-bit");
    ASSERT_EQ(m.schemes[1].params.size(), 2u);
    EXPECT_EQ(m.schemes[1].params[0].first, "counter_bits");
    EXPECT_EQ(m.schemes[1].params[0].second, 2.0);
    EXPECT_EQ(m.schemes[1].params[1].first, "reuse_non_redef");
    EXPECT_EQ(m.schemes[1].params[1].second, 0.0);  // bool -> 0/1
    EXPECT_EQ(m.rfSizes, (std::vector<std::uint32_t>{48, 64}));
    EXPECT_EQ(m.cap, 5000u);
    EXPECT_TRUE(m.sampleSharing);
    EXPECT_EQ(m.suite, "specfp");
    EXPECT_FALSE(m.audit);
}

TEST(SweepMatrixParse, MatrixConfigAppliesOverrides)
{
    const auto m = harness::parseSweepMatrix(R"({
        "schemes": [{"scheme": "reuse",
                     "params": {"counter_bits": 3,
                                "predictor_entries": 128}}],
        "rf_sizes": [64],
        "cap": 4000,
        "audit": false
    })");
    auto cfg = harness::matrixConfig(m.schemes[0], 64, m, 99);
    EXPECT_EQ(cfg.scheme, "reuse");
    EXPECT_EQ(cfg.rename.reuse.counterBits, 3);
    EXPECT_EQ(cfg.rename.reuse.predictor.entries, 128u);
    EXPECT_EQ(cfg.maxInsts, 4000u);       // matrix cap wins
    EXPECT_TRUE(cfg.obs.auditDisabled);   // audit: false forces it off

    // Without a matrix cap the caller's default applies.
    auto m2 = m;
    m2.cap = 0;
    EXPECT_EQ(harness::matrixConfig(m2.schemes[0], 64, m2, 99).maxInsts,
              99u);
}

TEST(SweepMatrixParse, ExpansionOrderIsWorkloadSizeScheme)
{
    const auto m = harness::parseSweepMatrix(R"({
        "schemes": ["baseline", "reuse"],
        "rf_sizes": [56, 96],
        "cap": 1000
    })");
    // Static: SweepItem keeps pointers into this list.
    static const std::vector<workloads::Workload> ws = {
        workloads::workload("int_crc"), workloads::workload("fp_fir")};
    auto items = harness::expandSweepMatrix(m, ws, 0);
    ASSERT_EQ(items.size(), 8u);   // 2 workloads x 2 sizes x 2 schemes

    std::size_t i = 0;
    for (const auto &w : ws) {
        for (std::uint32_t size : {56u, 96u}) {
            for (const char *scheme : {"baseline", "reuse"}) {
                SCOPED_TRACE("item " + std::to_string(i));
                EXPECT_EQ(items[i].workload->name, w.name);
                EXPECT_EQ(items[i].config.scheme, scheme);
                EXPECT_EQ(items[i].config.maxInsts, 1000u);
                (void)size;
                ++i;
            }
        }
    }
}

TEST(SweepMatrixParse, SamplingBlock)
{
    const auto m = harness::parseSweepMatrix(R"({
        "schemes": ["baseline"],
        "rf_sizes": [64],
        "sampling": {"warm": 1024, "detailed": 512, "period": 4096}
    })");
    EXPECT_TRUE(m.sampling.enabled());
    EXPECT_EQ(m.sampling.warm, 1024u);
    EXPECT_EQ(m.sampling.detailed, 512u);
    EXPECT_EQ(m.sampling.period, 4096u);

    // The block flows into every expanded RunConfig; its absence means
    // exact simulation.
    auto cfg = harness::matrixConfig(m.schemes[0], 64, m, 1000);
    EXPECT_TRUE(cfg.sampling.enabled());
    EXPECT_EQ(cfg.sampling.period, 4096u);
    const auto exact = harness::parseSweepMatrix(
        R"({"schemes": ["baseline"], "rf_sizes": [64]})");
    EXPECT_FALSE(exact.sampling.enabled());
    EXPECT_FALSE(
        harness::matrixConfig(exact.schemes[0], 64, exact, 1000)
            .sampling.enabled());
}

TEST(SweepMatrixErrors, SamplingBlockDiagnostics)
{
    const char *shell = R"({"schemes": ["baseline"], "rf_sizes": [64],
                            "sampling": %s})";
    auto probe = [&shell](const char *block) {
        char doc[512];
        std::snprintf(doc, sizeof(doc), shell, block);
        SweepMatrix m;
        std::string error;
        EXPECT_FALSE(harness::tryParseSweepMatrix(doc, m, error));
        return error;
    };
    EXPECT_NE(probe("7").find("must be an object"), std::string::npos);
    EXPECT_NE(probe(R"({"detailed": 512, "period": 4096,
                        "cadence": 1})")
                  .find("unknown sampling key 'cadence'"),
              std::string::npos);
    EXPECT_NE(probe(R"({"detailed": 0, "period": 4096})")
                  .find("positive integer"),
              std::string::npos);
    EXPECT_NE(probe(R"({"warm": -1, "detailed": 512, "period": 4096})")
                  .find("non-negative integer"),
              std::string::npos);
    EXPECT_NE(probe(R"({"detailed": 512})")
                  .find("positive 'detailed' and 'period'"),
              std::string::npos);
    EXPECT_NE(probe(R"({"warm": 4000, "detailed": 512,
                        "period": 4096})")
                  .find("'period' must cover warm + detailed"),
              std::string::npos);
    EXPECT_NE(probe(R"({"detailed": 512, "period": 4096,
                        "period": 8192})")
                  .find("duplicate key 'period' in the sampling block"),
              std::string::npos);
}

TEST(SweepMatrixParse, LoadFromFile)
{
    const std::string path =
        ::testing::TempDir() + "sweepmatrix_test_matrix.json";
    {
        std::ofstream out(path);
        out << R"({"schemes": ["reuse"], "rf_sizes": [72]})";
    }
    const auto m = harness::loadSweepMatrixFile(path);
    ASSERT_EQ(m.schemes.size(), 1u);
    EXPECT_EQ(m.schemes[0].scheme, "reuse");
    EXPECT_EQ(m.rfSizes, (std::vector<std::uint32_t>{72}));
    std::remove(path.c_str());
}

} // namespace
