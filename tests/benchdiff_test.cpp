// BENCH_*.json perf baselines (harness/benchjson.hh): render/load
// round-trip, atomic writes, and the regression-diff gate's exit-code
// contract — exact drift fails, noisy drift warns, schema mismatch is
// a clean error.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/benchjson.hh"
#include "obs/jsonlite.hh"

namespace {

using namespace rrs;
using harness::BenchDiffOptions;
using harness::BenchResult;
using harness::RunRecord;

BenchResult
sampleResult()
{
    BenchResult r;
    r.bench = "fig11_ipc";
    r.gitSha = "abc123";
    r.buildType = "Release";
    r.threads = 4;
    r.runs.push_back(RunRecord{"int_sort", "baseline", 20000, 25000,
                               0.01});
    r.runs.push_back(RunRecord{"int_sort", "reuse", 20000, 24000,
                               0.01});
    r.runs.push_back(RunRecord{"fp_fir", "baseline", 20000, 26000,
                               0.02});
    r.instsTotal = 60000;
    r.cyclesTotal = 75000;
    r.wallSeconds = 0.5;
    r.runsPerSec = 6.0;
    r.minstPerSec = 0.12;
    r.traceHits = 1;
    r.traceMisses = 2;
    r.instsCaptured = 40000;
    r.instsReplayed = 60000;
    r.footer = "sweep: 3 runs in 0.50 s on 4 threads\n"
               "trace cache: 1 hit / 2 misses\n";
    r.phases.push_back({"simulate", 3, 0.45, 140000, 160000, 170000});
    return r;
}

TEST(BenchJson, RenderLoadRoundTrip)
{
    const BenchResult r = sampleResult();
    const std::string path =
        testing::TempDir() + "/roundtrip/BENCH_fig11_ipc.json";
    std::string error;
    ASSERT_TRUE(harness::tryWriteBenchJson(path, r, error)) << error;

    BenchResult back;
    ASSERT_TRUE(harness::loadBenchJson(path, back, error)) << error;
    EXPECT_EQ(back.schemaVersion, harness::benchSchemaVersion);
    EXPECT_EQ(back.bench, r.bench);
    EXPECT_EQ(back.gitSha, r.gitSha);
    EXPECT_EQ(back.buildType, r.buildType);
    EXPECT_EQ(back.threads, r.threads);
    ASSERT_EQ(back.runs.size(), r.runs.size());
    for (std::size_t i = 0; i < r.runs.size(); ++i) {
        EXPECT_EQ(back.runs[i].workload, r.runs[i].workload);
        EXPECT_EQ(back.runs[i].scheme, r.runs[i].scheme);
        EXPECT_EQ(back.runs[i].insts, r.runs[i].insts);
        EXPECT_EQ(back.runs[i].cycles, r.runs[i].cycles);
    }
    EXPECT_EQ(back.instsTotal, r.instsTotal);
    EXPECT_EQ(back.cyclesTotal, r.cyclesTotal);
    EXPECT_DOUBLE_EQ(back.wallSeconds, r.wallSeconds);
    EXPECT_EQ(back.traceHits, r.traceHits);
    EXPECT_EQ(back.traceMisses, r.traceMisses);
    EXPECT_EQ(back.footer, r.footer);     // embedded newlines survive
    ASSERT_EQ(back.phases.size(), 1u);
    EXPECT_EQ(back.phases[0].path, "simulate");
    EXPECT_EQ(back.phases[0].count, 3u);
    EXPECT_DOUBLE_EQ(back.phases[0].p95Us, 160000);

    // tmp+rename left no turd behind.
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(BenchJson, WriteCreatesMissingParentDirs)
{
    const std::string path =
        testing::TempDir() + "/bench/deeply/nested/BENCH_x.json";
    std::string error;
    ASSERT_TRUE(harness::tryWriteBenchJson(path, sampleResult(), error))
        << error;
    EXPECT_TRUE(std::filesystem::exists(path));
}

TEST(BenchJson, LoadRejectsMalformedInput)
{
    const std::string path = testing::TempDir() + "/garbage.json";
    std::ofstream(path) << "this is not json";
    BenchResult out;
    std::string error;
    EXPECT_FALSE(harness::loadBenchJson(path, out, error));
    EXPECT_FALSE(error.empty());

    std::ofstream(path) << "{\"hello\": 1}";
    EXPECT_FALSE(harness::loadBenchJson(path, out, error));
    EXPECT_NE(error.find("schema_version"), std::string::npos);
}

TEST(BenchDiff, SelfDiffIsClean)
{
    const BenchResult r = sampleResult();
    std::ostringstream os;
    EXPECT_EQ(harness::diffBenchResults(r, r, {}, os), 0);
    EXPECT_NE(os.str().find("exact metrics: OK"), std::string::npos);
}

TEST(BenchDiff, InjectedIpcRegressionFails)
{
    const BenchResult base = sampleResult();
    BenchResult cur = base;
    cur.runs[1].cycles += 500;    // IPC regression on int_sort/reuse
    std::ostringstream os;
    EXPECT_EQ(harness::diffBenchResults(base, cur, {}, os), 1);
    EXPECT_NE(os.str().find("EXACT DRIFT"), std::string::npos);
    EXPECT_NE(os.str().find("int_sort"), std::string::npos);
    EXPECT_NE(os.str().find("cycles"), std::string::npos);
}

TEST(BenchDiff, InstructionCountDriftFails)
{
    const BenchResult base = sampleResult();
    BenchResult cur = base;
    cur.runs[0].insts -= 1;
    std::ostringstream os;
    EXPECT_EQ(harness::diffBenchResults(base, cur, {}, os), 1);
    EXPECT_NE(os.str().find("insts"), std::string::npos);
}

TEST(BenchDiff, RunCountMismatchFails)
{
    const BenchResult base = sampleResult();
    BenchResult cur = base;
    cur.runs.pop_back();
    std::ostringstream os;
    EXPECT_EQ(harness::diffBenchResults(base, cur, {}, os), 1);
    EXPECT_NE(os.str().find("run count"), std::string::npos);
}

TEST(BenchDiff, ThroughputDriftOnlyWarnsByDefault)
{
    const BenchResult base = sampleResult();
    BenchResult cur = base;
    cur.wallSeconds = base.wallSeconds * 3;   // huge, but noisy
    cur.runsPerSec = base.runsPerSec / 3;
    std::ostringstream os;
    EXPECT_EQ(harness::diffBenchResults(base, cur, {}, os), 0);
    EXPECT_NE(os.str().find("warn-only"), std::string::npos);
    EXPECT_EQ(os.str().find("EXACT DRIFT"), std::string::npos);
}

TEST(BenchDiff, ThroughputThresholdGates)
{
    const BenchResult base = sampleResult();
    BenchResult cur = base;
    cur.wallSeconds = base.wallSeconds * 1.5;  // +50%
    BenchDiffOptions opts;
    opts.throughputThresholdPct = 10;
    std::ostringstream os;
    EXPECT_EQ(harness::diffBenchResults(base, cur, opts, os), 1);
    EXPECT_NE(os.str().find("REGRESSION"), std::string::npos);

    opts.throughputThresholdPct = 80;          // inside the budget
    std::ostringstream ok;
    EXPECT_EQ(harness::diffBenchResults(base, cur, opts, ok), 0);
}

TEST(BenchDiff, SchemaMismatchIsCleanError)
{
    const BenchResult base = sampleResult();
    BenchResult cur = base;
    cur.schemaVersion = harness::benchSchemaVersion + 1;
    std::ostringstream os;
    EXPECT_EQ(harness::diffBenchResults(base, cur, {}, os), 2);
    EXPECT_NE(os.str().find("schema version mismatch"),
              std::string::npos);
    // A schema error reports nothing else: the formats don't compare.
    EXPECT_EQ(os.str().find("EXACT"), std::string::npos);
}

TEST(BenchDiff, MarkdownModeEmitsPipeTable)
{
    const BenchResult base = sampleResult();
    BenchResult cur = base;
    cur.runs[0].cycles += 7;
    BenchDiffOptions opts;
    opts.markdown = true;
    std::ostringstream os;
    EXPECT_EQ(harness::diffBenchResults(base, cur, opts, os), 1);
    EXPECT_NE(os.str().find("| workload |"), std::string::npos);
    EXPECT_NE(os.str().find("| int_sort |"), std::string::npos);
}

TEST(BenchDiff, PhaseProfileDeltaIsWarnOnly)
{
    const BenchResult base = sampleResult();
    BenchResult cur = base;
    cur.phases[0].seconds = base.phases[0].seconds * 2;   // +100% host time
    cur.phases.push_back({"simulate/drain", 3, 0.05, 100, 200, 300});
    std::ostringstream os;
    // Host wall clock per phase never gates: still exit 0.
    EXPECT_EQ(harness::diffBenchResults(base, cur, {}, os), 0);
    const std::string text = os.str();
    EXPECT_NE(text.find("phase profile"), std::string::npos) << text;
    EXPECT_NE(text.find("simulate"), std::string::npos);
    EXPECT_NE(text.find("+100.0%"), std::string::npos) << text;
    // The phase present only on the current side is flagged as new.
    EXPECT_NE(text.find("simulate/drain"), std::string::npos);
    EXPECT_NE(text.find("new"), std::string::npos);
}

TEST(BenchDiff, PhaseProfileDeltaMarkdownTable)
{
    const BenchResult base = sampleResult();
    BenchResult cur = base;
    cur.phases[0].seconds *= 1.5;
    BenchDiffOptions opts;
    opts.markdown = true;
    std::ostringstream os;
    EXPECT_EQ(harness::diffBenchResults(base, cur, opts, os), 0);
    const std::string text = os.str();
    EXPECT_NE(text.find("| phase |"), std::string::npos) << text;
    EXPECT_NE(text.find("| simulate |"), std::string::npos);
    EXPECT_NE(text.find("+50.0%"), std::string::npos);
}

TEST(BenchDiff, NoPhasesMeansNoPhaseTable)
{
    BenchResult base = sampleResult();
    BenchResult cur = base;
    base.phases.clear();
    cur.phases.clear();
    std::ostringstream os;
    EXPECT_EQ(harness::diffBenchResults(base, cur, {}, os), 0);
    EXPECT_EQ(os.str().find("phase profile"), std::string::npos);
}

TEST(BenchDiff, TinyIpcKeepsItsExponentInDriftRows)
{
    // A run whose IPC is far below 1e-3 (1 inst in 175000 cycles).
    // The drift table used to truncate the %.17g form at 8 chars,
    // printing "5.714285" — a million times the actual 5.71e-06.
    BenchResult base = sampleResult();
    base.runs[0].insts = 1;
    base.runs[0].cycles = 175000;
    BenchResult cur = base;
    cur.runs[0].cycles = 174000;
    std::ostringstream os;
    EXPECT_EQ(harness::diffBenchResults(base, cur, {}, os), 1);
    const std::string text = os.str();
    EXPECT_NE(text.find("e-06"), std::string::npos) << text;
    EXPECT_EQ(text.find("5.714285 "), std::string::npos) << text;
}

harness::SampledSummary
sampledStats(double mean, double ci)
{
    harness::SampledSummary sm;
    sm.enabled = true;
    sm.windows = 16;
    sm.meanIpc = mean;
    sm.stddevIpc = ci / 1.96 * 4.0;   // n = 16 -> sqrt(n) = 4
    sm.ci95Ipc = ci;
    sm.medianIpc = mean;
    sm.detailedInsts = 16384;
    sm.detailedCycles =
        static_cast<std::uint64_t>(16384.0 / mean);
    sm.warmInsts = 16384;
    sm.skippedInsts = 98304;
    return sm;
}

TEST(BenchJson, SampledRowsRoundTrip)
{
    BenchResult r = sampleResult();
    r.runs[1].sampled = sampledStats(0.83, 0.021);
    const std::string path =
        testing::TempDir() + "/sampled/BENCH_fig11_ipc.json";
    std::string error;
    ASSERT_TRUE(harness::tryWriteBenchJson(path, r, error)) << error;

    BenchResult back;
    ASSERT_TRUE(harness::loadBenchJson(path, back, error)) << error;
    ASSERT_EQ(back.runs.size(), r.runs.size());
    EXPECT_FALSE(back.runs[0].sampled.enabled);
    const harness::SampledSummary &sm = back.runs[1].sampled;
    ASSERT_TRUE(sm.enabled);
    EXPECT_EQ(sm.windows, 16u);
    EXPECT_DOUBLE_EQ(sm.meanIpc, 0.83);
    EXPECT_DOUBLE_EQ(sm.ci95Ipc, 0.021);
    EXPECT_DOUBLE_EQ(sm.medianIpc, 0.83);
    EXPECT_EQ(sm.detailedInsts, 16384u);
    EXPECT_EQ(sm.warmInsts, 16384u);
    EXPECT_EQ(sm.skippedInsts, 98304u);
}

TEST(BenchDiff, SampledRowsGateOnCiOverlapNotExactEquality)
{
    BenchResult base = sampleResult();
    for (auto &run : base.runs)
        run.sampled = sampledStats(0.80, 0.02);
    BenchResult cur = base;
    // Different detailed aggregates AND a slightly different mean:
    // inside the summed CIs, so this must be clean.
    cur.runs[0].cycles += 1234;
    cur.runs[0].sampled = sampledStats(0.83, 0.02);
    std::ostringstream os;
    EXPECT_EQ(harness::diffBenchResults(base, cur, {}, os), 0);
    EXPECT_NE(os.str().find("exact metrics: OK"), std::string::npos);

    // Push the mean outside base.ci + cur.ci: now it is drift.
    cur.runs[0].sampled = sampledStats(0.85, 0.02);
    std::ostringstream bad;
    EXPECT_EQ(harness::diffBenchResults(base, cur, {}, bad), 1);
    EXPECT_NE(bad.str().find("mean_ipc"), std::string::npos)
        << bad.str();
}

TEST(BenchDiff, SampledModeMismatchIsDrift)
{
    BenchResult base = sampleResult();
    BenchResult cur = base;
    cur.runs[2].sampled = sampledStats(0.77, 0.02);
    std::ostringstream os;
    EXPECT_EQ(harness::diffBenchResults(base, cur, {}, os), 1);
    EXPECT_NE(os.str().find("mode changed"), std::string::npos)
        << os.str();
}

TEST(BenchJson, MetricSchemaSurvivesRender)
{
    BenchResult r = sampleResult();
    r.metricSchema = "{\n    \"sweep.totalRuns\": {\"kind\": "
                     "\"counter\", \"unit\": \"runs\", \"desc\": "
                     "\"runs\"}\n  }";
    const std::string body = harness::renderBenchJson(r);
    EXPECT_NE(body.find("\"metric_schema\""), std::string::npos);
    EXPECT_NE(body.find("sweep.totalRuns"), std::string::npos);

    // The loader tolerates (and currently skips) the schema block, and
    // an empty schema still renders valid JSON.
    const std::string path =
        testing::TempDir() + "/BENCH_schema.json";
    std::string error;
    ASSERT_TRUE(harness::tryWriteBenchJson(path, r, error)) << error;
    BenchResult back;
    ASSERT_TRUE(harness::loadBenchJson(path, back, error)) << error;
    EXPECT_EQ(back.bench, r.bench);

    r.metricSchema.clear();
    ASSERT_TRUE(harness::tryWriteBenchJson(path, r, error)) << error;
    ASSERT_TRUE(harness::loadBenchJson(path, back, error)) << error;
}

// The --json diff report: a machine-readable document carrying the
// same verdicts and exit codes as text mode (both render one
// collectBenchDiff report, so they can never disagree), that parses
// back with the in-tree JSON reader.
TEST(BenchDiffJson, RoundTripsAndAgreesWithTextMode)
{
    const BenchResult base = sampleResult();
    BenchResult cur = sampleResult();
    cur.runs[1].cycles += 100;   // exact drift: fails both modes

    const BenchDiffOptions opts;
    const harness::BenchDiffReport report =
        harness::collectBenchDiff(base, cur, opts);
    std::ostringstream text;
    EXPECT_EQ(harness::diffBenchResults(base, cur, opts, text),
              report.exitCode);
    EXPECT_EQ(report.exitCode, 1);
    EXPECT_EQ(report.verdict(), std::string("drift"));

    const std::string body = harness::renderBenchDiffJson(report);
    obs::json::Value doc;
    std::string error;
    ASSERT_TRUE(obs::json::parse(body, doc, &error)) << error;
    EXPECT_EQ(doc.at("bench").str, base.bench);
    EXPECT_EQ(static_cast<int>(doc.at("exit_code").num),
              report.exitCode);
    EXPECT_EQ(doc.at("verdict").str, report.verdict());
    const obs::json::Value &drift = doc.at("exact_drift");
    ASSERT_FALSE(drift.arr.empty());
    bool sawCycles = false;
    for (const auto &row : drift.arr)
        sawCycles = sawCycles || row.at("metric").str == "cycles";
    EXPECT_TRUE(sawCycles);

    // A clean self-diff reports exit code 0 in both modes too.
    const harness::BenchDiffReport clean =
        harness::collectBenchDiff(base, base, opts);
    EXPECT_EQ(clean.exitCode, 0);
    obs::json::Value cleanDoc;
    ASSERT_TRUE(obs::json::parse(harness::renderBenchDiffJson(clean),
                                 cleanDoc, &error))
        << error;
    EXPECT_EQ(cleanDoc.at("verdict").str, std::string("clean"));
    EXPECT_TRUE(cleanDoc.at("exact_drift").arr.empty());
}

} // namespace
