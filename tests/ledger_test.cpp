// The experiment ledger (harness/ledger.hh): node-key canonical form,
// digest stability, entry JSON round-trip, corruption rejection, the
// content-addressed store, and the two-ledger drift report's gating
// rules (exact nodes bit-for-bit, sampled nodes on CI overlap).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "harness/ledger.hh"

namespace {

using namespace rrs;
using harness::Ledger;
using harness::LedgerDiff;
using harness::LedgerEntry;
using harness::NodeSpec;

NodeSpec
sampleSpec()
{
    NodeSpec s;
    s.workload = "int_sort";
    s.suite = "specint";
    s.sourceHash = 0x1234'5678'9abc'def0ull;
    s.scheme = "reuse";
    s.label = "proposed";
    s.params = {{"predictor_bits", 2.0}, {"table_entries", 512.0}};
    s.regs = 64;
    s.cap = 150'000;
    s.seed = 0xfeed'beef'cafe'f00dull;
    return s;
}

LedgerEntry
sampleEntry()
{
    LedgerEntry e;
    e.spec = sampleSpec();
    e.run.workload = e.spec.workload;
    e.run.scheme = e.spec.scheme;
    e.run.insts = 150'000;
    e.run.cycles = 200'000;
    e.stalls.counts[0] = 120'000;
    e.stalls.counts[2] = 50'000;
    e.stalls.counts[6] = 30'000;
    e.allocations = 90'000;
    e.reuses = 12'000;
    e.repairs = 42;
    e.renameStalls = 1'000;
    return e;
}

std::string
tempLedgerDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + "/" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

TEST(NodeKey, CanonicalForm)
{
    const std::string key = harness::nodeKey(sampleSpec());
    EXPECT_EQ(key,
              "ledger=1;bench=2;w=int_sort;src=123456789abcdef0;"
              "suite=specint;scheme=reuse;regs=64;cap=150000;"
              "params=predictor_bits:2,table_entries:512;"
              "sampling=0:0:0:256:2;seed=feedbeefcafef00d");
}

TEST(NodeKey, LabelIsNotPartOfTheIdentity)
{
    NodeSpec a = sampleSpec();
    NodeSpec b = sampleSpec();
    b.label = "renamed column";
    EXPECT_EQ(harness::nodeDigest(a), harness::nodeDigest(b));
}

TEST(NodeKey, EveryIdentityFieldChangesTheDigest)
{
    const std::uint64_t base = harness::nodeDigest(sampleSpec());
    auto differs = [&base](NodeSpec s) {
        return harness::nodeDigest(s) != base;
    };
    {
        NodeSpec s = sampleSpec();
        s.workload = "fp_fir";
        EXPECT_TRUE(differs(s)) << "workload";
    }
    {
        NodeSpec s = sampleSpec();
        s.sourceHash ^= 1;   // a one-line kernel edit
        EXPECT_TRUE(differs(s)) << "sourceHash";
    }
    {
        NodeSpec s = sampleSpec();
        s.scheme = "baseline";
        EXPECT_TRUE(differs(s)) << "scheme";
    }
    {
        NodeSpec s = sampleSpec();
        s.params[0].second = 3.0;
        EXPECT_TRUE(differs(s)) << "params";
    }
    {
        NodeSpec s = sampleSpec();
        s.regs = 96;
        EXPECT_TRUE(differs(s)) << "regs";
    }
    {
        NodeSpec s = sampleSpec();
        s.cap = 2'000;
        EXPECT_TRUE(differs(s)) << "cap";
    }
    {
        NodeSpec s = sampleSpec();
        s.sampling.warm = 256;
        s.sampling.detailed = 128;
        s.sampling.period = 512;
        EXPECT_TRUE(differs(s)) << "sampling";
    }
    {
        NodeSpec s = sampleSpec();
        s.seed ^= 1;
        EXPECT_TRUE(differs(s)) << "seed";
    }
}

TEST(NodeKey, DigestHexIsFixedWidth)
{
    EXPECT_EQ(harness::digestHex(0), "0000000000000000");
    EXPECT_EQ(harness::digestHex(0xabcull), "0000000000000abc");
    EXPECT_EQ(harness::digestHex(~0ull), "ffffffffffffffff");
}

TEST(LedgerEntryJson, RoundTrip)
{
    const LedgerEntry e = sampleEntry();
    const std::string text = harness::renderLedgerEntryJson(e);

    LedgerEntry back;
    std::string error;
    ASSERT_TRUE(harness::parseLedgerEntryJson(text, back, error))
        << error;
    EXPECT_EQ(back.spec.workload, e.spec.workload);
    EXPECT_EQ(back.spec.suite, e.spec.suite);
    EXPECT_EQ(back.spec.sourceHash, e.spec.sourceHash);
    EXPECT_EQ(back.spec.scheme, e.spec.scheme);
    EXPECT_EQ(back.spec.label, e.spec.label);
    EXPECT_EQ(back.spec.params, e.spec.params);
    EXPECT_EQ(back.spec.regs, e.spec.regs);
    EXPECT_EQ(back.spec.cap, e.spec.cap);
    EXPECT_EQ(back.spec.seed, e.spec.seed);
    EXPECT_EQ(back.run.insts, e.run.insts);
    EXPECT_EQ(back.run.cycles, e.run.cycles);
    for (int c = 0; c < obs::numCycleCauses; ++c)
        EXPECT_EQ(back.stalls.counts[c], e.stalls.counts[c]) << c;
    EXPECT_EQ(back.reuses, e.reuses);
    EXPECT_EQ(back.repairs, e.repairs);

    // Rendering the parsed entry reproduces the bytes: the node files
    // are canonical, so ledger diffs can compare bytes.
    EXPECT_EQ(harness::renderLedgerEntryJson(back), text);
}

TEST(LedgerEntryJson, WallClockIsNeverStored)
{
    // Entries must be byte-stable across machines; a wall-clock field
    // with a real value would break that.
    LedgerEntry e = sampleEntry();
    e.run.wallSeconds = 1.5;   // pretend a caller forgot to zero it
    harness::Outcome o;
    o.sim.committedInsts = e.run.insts;
    o.sim.cycles = e.run.cycles;
    const LedgerEntry built = harness::makeLedgerEntry(e.spec, o);
    EXPECT_EQ(built.run.wallSeconds, 0.0);

    const std::string text = harness::renderLedgerEntryJson(built);
    EXPECT_NE(text.find("\"wall_seconds\": 0"), std::string::npos);
    EXPECT_EQ(text.find("git_sha"), std::string::npos);
    EXPECT_EQ(text.find("timestamp"), std::string::npos);
}

TEST(LedgerEntryJson, RejectsDigestMismatch)
{
    // A hand-edited identity field no longer matches the stored
    // digest; trusting the entry would poison every figure above it.
    std::string text = harness::renderLedgerEntryJson(sampleEntry());
    const std::size_t pos = text.find("\"regs\": 64");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 10, "\"regs\": 65");

    LedgerEntry back;
    std::string error;
    EXPECT_FALSE(harness::parseLedgerEntryJson(text, back, error));
    EXPECT_NE(error.find("digest"), std::string::npos) << error;
}

TEST(LedgerEntryJson, RejectsGarbage)
{
    LedgerEntry back;
    std::string error;
    EXPECT_FALSE(harness::parseLedgerEntryJson("{", back, error));
    EXPECT_FALSE(harness::parseLedgerEntryJson("{}", back, error));
    EXPECT_FALSE(harness::parseLedgerEntryJson(
        "{\"ledger_schema\": 999}", back, error));
}

TEST(LedgerStore, StoreLoadList)
{
    const Ledger ledger(tempLedgerDir("ledger_store"));
    const LedgerEntry e = sampleEntry();
    const std::string hex =
        harness::digestHex(harness::nodeDigest(e.spec));

    EXPECT_FALSE(ledger.has(hex));
    std::string error;
    ASSERT_TRUE(ledger.store(hex, e, error)) << error;
    EXPECT_TRUE(ledger.has(hex));

    LedgerEntry back;
    ASSERT_TRUE(ledger.tryLoad(hex, back, error)) << error;
    EXPECT_EQ(back.run.cycles, e.run.cycles);

    // A second, different node; listNodes returns both, sorted.
    LedgerEntry e2 = sampleEntry();
    e2.spec.regs = 96;
    const std::string hex2 =
        harness::digestHex(harness::nodeDigest(e2.spec));
    ASSERT_TRUE(ledger.store(hex2, e2, error)) << error;
    std::vector<std::string> nodes = ledger.listNodes();
    ASSERT_EQ(nodes.size(), 2u);
    EXPECT_LT(nodes[0], nodes[1]);

    EXPECT_FALSE(ledger.tryLoad("0000000000000000", back, error));
}

TEST(LedgerDiffTest, ExactNodesGateBitForBit)
{
    const Ledger base(tempLedgerDir("diff_base"));
    const Ledger cur(tempLedgerDir("diff_cur"));
    const LedgerEntry e = sampleEntry();
    const std::string hex =
        harness::digestHex(harness::nodeDigest(e.spec));
    std::string error;
    ASSERT_TRUE(base.store(hex, e, error)) << error;
    ASSERT_TRUE(cur.store(hex, e, error)) << error;
    EXPECT_TRUE(harness::diffLedgers(base, cur).clean());

    // One cycle of drift in an exact node fails the gate, and the
    // stall row names where the cycles went.
    LedgerEntry drifted = e;
    drifted.run.cycles += 1;
    drifted.stalls.counts[2] += 1;
    ASSERT_TRUE(cur.store(hex, drifted, error)) << error;
    const LedgerDiff d = harness::diffLedgers(base, cur);
    ASSERT_FALSE(d.clean());
    bool sawCycles = false, sawStall = false;
    for (const auto &row : d.drift) {
        sawCycles = sawCycles || row.metric == "cycles";
        sawStall = sawStall || row.metric.rfind("stall.", 0) == 0;
    }
    EXPECT_TRUE(sawCycles);
    EXPECT_TRUE(sawStall);
}

TEST(LedgerDiffTest, SampledNodesGateOnCiOverlap)
{
    const Ledger base(tempLedgerDir("diff_sampled_base"));
    const Ledger cur(tempLedgerDir("diff_sampled_cur"));
    LedgerEntry e = sampleEntry();
    e.spec.sampling.warm = 256;
    e.spec.sampling.detailed = 128;
    e.spec.sampling.period = 512;
    e.run.sampled.enabled = true;
    e.run.sampled.windows = 16;
    e.run.sampled.meanIpc = 0.80;
    e.run.sampled.ci95Ipc = 0.05;
    const std::string hex =
        harness::digestHex(harness::nodeDigest(e.spec));
    std::string error;
    ASSERT_TRUE(base.store(hex, e, error)) << error;

    // Within the summed CI: noise, not drift.
    LedgerEntry within = e;
    within.run.sampled.meanIpc = 0.86;
    ASSERT_TRUE(cur.store(hex, within, error)) << error;
    EXPECT_TRUE(harness::diffLedgers(base, cur).clean());

    // Beyond it: drift on the mean-IPC metric.
    LedgerEntry far = e;
    far.run.sampled.meanIpc = 1.00;
    ASSERT_TRUE(cur.store(hex, far, error)) << error;
    const LedgerDiff d = harness::diffLedgers(base, cur);
    ASSERT_EQ(d.drift.size(), 1u);
    EXPECT_EQ(d.drift[0].metric, "mean_ipc");
}

TEST(LedgerDiffTest, NodeSetDifferenceIsReported)
{
    const Ledger base(tempLedgerDir("diff_sets_base"));
    const Ledger cur(tempLedgerDir("diff_sets_cur"));
    const LedgerEntry e = sampleEntry();
    LedgerEntry e2 = sampleEntry();
    e2.spec.regs = 96;
    std::string error;
    ASSERT_TRUE(base.store(
        harness::digestHex(harness::nodeDigest(e.spec)), e, error));
    ASSERT_TRUE(cur.store(
        harness::digestHex(harness::nodeDigest(e2.spec)), e2, error));
    const LedgerDiff d = harness::diffLedgers(base, cur);
    EXPECT_EQ(d.onlyBase.size(), 1u);
    EXPECT_EQ(d.onlyCur.size(), 1u);
    EXPECT_FALSE(d.clean());
}

} // namespace
