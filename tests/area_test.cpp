// Tests for the CACTI-lite area model: calibration against the paper's
// Table II, port/shadow scaling properties, and equal-area solving.

#include <gtest/gtest.h>

#include "area/area.hh"

namespace {

using namespace rrs::area;

TEST(AreaModel, ReproducesTableIIRegisterFiles)
{
    AreaModel m;
    // Paper Table II: 128 x 64-bit int RF = 0.2834 mm2,
    //                 128 x 128-bit fp RF = 0.4988 mm2.
    EXPECT_NEAR(m.regFileArea(128, 64), 0.2834, 0.03);
    EXPECT_NEAR(m.regFileArea(128, 128), 0.4988, 0.05);
}

TEST(AreaModel, ReproducesTableIIOverheads)
{
    AreaModel m;
    // PRT ~5.08e-4, IQ overhead ~1.48e-3, predictor ~3.1e-3 (mm2).
    EXPECT_NEAR(m.prtArea(128, 2), 5.08e-4, 3e-4);
    EXPECT_NEAR(m.iqOverheadArea(40, 4), 1.48e-3, 8e-4);
    EXPECT_NEAR(m.predictorArea(512, 2), 3.1e-3, 1e-3);
    // Total overhead stays small vs the register files (paper: ~5e-3).
    double total = m.prtArea(128, 2) + m.iqOverheadArea(40, 4) +
                   m.predictorArea(512, 2);
    EXPECT_LT(total, 0.02 * (0.2834 + 0.4988));
}

TEST(AreaModel, ShadowCellsArePortIndependent)
{
    AreaConstants c;
    AreaModel few(c, PortConfig{2, 1});
    AreaModel many(c, PortConfig{12, 6});
    EXPECT_DOUBLE_EQ(few.shadowCellArea(), many.shadowCellArea());
    EXPECT_LT(few.bitCellArea(), many.bitCellArea());
    // The paper's argument: relative shadow overhead shrinks as ports
    // grow.
    EXPECT_LT(many.shadowCellArea() / many.bitCellArea(),
              few.shadowCellArea() / few.bitCellArea());
}

TEST(AreaModel, BankedFileAccountsShadow)
{
    AreaModel m;
    double plain = m.regFileArea(40, 64, 0);
    double banked = m.bankedRegFileArea({28, 4, 4, 4}, 64);
    // Same register count; banked adds 4*1+4*2+4*3 = 24 shadow cells.
    EXPECT_GT(banked, plain);
    EXPECT_NEAR(banked - plain, 24 * 64 * m.shadowCellArea(), 1e-9);
}

TEST(AreaModel, ShadowCheaperThanRegularCell)
{
    AreaModel m;
    EXPECT_LT(m.shadowCellArea(), 0.5 * m.bitCellArea());
}

TEST(AreaModel, EqualAreaSolverFitsBudget)
{
    AreaModel m;
    std::array<std::uint32_t, 4> shadow = {0, 8, 3, 3};
    std::uint32_t n0 = m.equalAreaBank0(64, 64, shadow, 0.0);
    ASSERT_GT(n0, 0u);
    std::array<std::uint32_t, 4> banks = {n0, 8, 3, 3};
    // The solved configuration fits, and one more register would not.
    EXPECT_LE(m.bankedRegFileArea(banks, 64), m.regFileArea(64, 64));
    banks[0] = n0 + 1;
    EXPECT_GT(m.bankedRegFileArea(banks, 64), m.regFileArea(64, 64));
}

TEST(AreaModel, EqualAreaSolverRespectsOverheadAndMin)
{
    AreaModel m;
    std::array<std::uint32_t, 4> shadow = {0, 8, 3, 3};
    std::uint32_t with_overhead =
        m.equalAreaBank0(64, 64, shadow, 0.01);
    std::uint32_t without = m.equalAreaBank0(64, 64, shadow, 0.0);
    EXPECT_LT(with_overhead, without);
    // Impossible budgets return zero.
    EXPECT_EQ(m.equalAreaBank0(4, 64, {0, 64, 64, 64}, 0.0), 0u);
}

TEST(AreaModel, MonotoneInRegsBitsPorts)
{
    AreaModel m;
    EXPECT_LT(m.regFileArea(48, 64), m.regFileArea(64, 64));
    EXPECT_LT(m.regFileArea(64, 64), m.regFileArea(64, 128));
    EXPECT_LT(m.sramArea(128, 2, 1), m.sramArea(128, 2, 4));
}

} // namespace
