// Tests for the top-down cycle accounting: on real workloads, under
// both renaming schemes, every simulated cycle is charged to exactly
// one cause and the causes sum to the run's total cycles.

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "obs/stallcause.hh"
#include "workloads/workloads.hh"

namespace {

using namespace rrs;
using obs::CycleCause;

constexpr std::uint64_t insts = 30'000;

harness::Outcome
runWorkload(const std::string &name, harness::RunConfig cfg)
{
    cfg.maxInsts = insts;
    return harness::runOn(workloads::workload(name), cfg);
}

class StallAttribution
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(StallAttribution, CausesSumToCyclesBaseline)
{
    auto out = runWorkload(GetParam(), harness::baselineConfig(64));
    EXPECT_EQ(out.stalls.sum(), out.sim.cycles);
    EXPECT_GT(out.stalls.commitCycles(), 0u);
}

TEST_P(StallAttribution, CausesSumToCyclesReuse)
{
    auto out = runWorkload(GetParam(), harness::reuseConfig(64));
    EXPECT_EQ(out.stalls.sum(), out.sim.cycles);
    EXPECT_GT(out.stalls.commitCycles(), 0u);
}

TEST_P(StallAttribution, RollupsPartitionTheSum)
{
    auto out = runWorkload(GetParam(), harness::baselineConfig(64));
    const auto &s = out.stalls;
    // commit + drain + frontend + backend is the whole taxonomy: the
    // rollups are a partition, not an overlapping summary.
    EXPECT_EQ(s.commitCycles() + s.drainCycles() + s.frontendCycles() +
                  s.backendCycles(),
              s.sum());
}

INSTANTIATE_TEST_SUITE_P(Workloads, StallAttribution,
                         ::testing::Values("fp_matmul", "int_sort",
                                           "media_dct"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

TEST(StallAttribution, PressureShiftsCyclesIntoRenameNoReg)
{
    // A tiny register file must show free-list stall cycles that a
    // large one does not.
    auto small = runWorkload("fp_matmul", harness::baselineConfig(40));
    auto large = runWorkload("fp_matmul", harness::baselineConfig(128));
    EXPECT_GT(small.stalls.of(CycleCause::RenameNoReg),
              large.stalls.of(CycleCause::RenameNoReg));
}

TEST(StallAttribution, EveryWorkloadHoldsTheInvariant)
{
    // The acceptance bar: all 21 workloads, shortened runs.
    for (const auto &w : workloads::allWorkloads()) {
        harness::RunConfig cfg = harness::baselineConfig(64);
        cfg.maxInsts = 5'000;
        auto out = harness::runOn(w, cfg);
        EXPECT_EQ(out.stalls.sum(), out.sim.cycles) << w.name;
    }
}

} // namespace
