// Unit tests for the functional emulator: arithmetic semantics, memory,
// control flow, trace records, and stream restartability.

#include <gtest/gtest.h>

#include "emu/emulator.hh"
#include "isa/assembler.hh"

namespace {

using namespace rrs;
using namespace rrs::isa;
using rrs::emu::Emulator;
using rrs::emu::SparseMemory;

Emulator
makeEmu(const Program &p, std::uint64_t cap = UINT64_MAX)
{
    return Emulator(p, "test", cap);
}

TEST(SparseMemoryTest, ReadUnmappedIsZero)
{
    SparseMemory m;
    EXPECT_EQ(m.read(0x1234, 8), 0u);
    EXPECT_EQ(m.mappedPages(), 0u);
}

TEST(SparseMemoryTest, WriteReadRoundTrip)
{
    SparseMemory m;
    m.write(0x1000, 0xdeadbeefcafebabeULL, 8);
    EXPECT_EQ(m.read(0x1000, 8), 0xdeadbeefcafebabeULL);
    EXPECT_EQ(m.read(0x1000, 1), 0xbeu);
    EXPECT_EQ(m.read(0x1004, 4), 0xdeadbeefu);
}

TEST(SparseMemoryTest, CrossPageAccess)
{
    SparseMemory m;
    Addr a = SparseMemory::pageBytes - 4;
    m.write(a, 0x1122334455667788ULL, 8);
    EXPECT_EQ(m.read(a, 8), 0x1122334455667788ULL);
    EXPECT_EQ(m.mappedPages(), 2u);
}

TEST(EmulatorTest, Arithmetic)
{
    Program p = assemble(R"(
        movz x1, #10
        movz x2, #3
        add x3, x1, x2
        sub x4, x1, x2
        mul x5, x1, x2
        div x6, x1, x2
        rem x7, x1, x2
        halt
    )");
    auto e = makeEmu(p);
    e.run();
    EXPECT_EQ(e.intReg(3), 13u);
    EXPECT_EQ(e.intReg(4), 7u);
    EXPECT_EQ(e.intReg(5), 30u);
    EXPECT_EQ(e.intReg(6), 3u);
    EXPECT_EQ(e.intReg(7), 1u);
}

TEST(EmulatorTest, DivisionByZeroFollowsArmSemantics)
{
    Program p = assemble(R"(
        movz x1, #10
        movz x2, #0
        div x3, x1, x2
        rem x4, x1, x2
        halt
    )");
    auto e = makeEmu(p);
    e.run();
    EXPECT_EQ(e.intReg(3), 0u);
    EXPECT_EQ(e.intReg(4), 10u);
}

TEST(EmulatorTest, ZeroRegisterReadsZeroAndDiscardsWrites)
{
    Program p = assemble(R"(
        movz x1, #5
        add xzr, x1, x1
        add x2, xzr, x1
        halt
    )");
    auto e = makeEmu(p);
    e.run();
    EXPECT_EQ(e.intReg(zeroReg), 0u);
    EXPECT_EQ(e.intReg(2), 5u);
}

TEST(EmulatorTest, ShiftsAndLogic)
{
    Program p = assemble(R"(
        movz x1, #0xf0
        lsli x2, x1, #4
        lsri x3, x1, #4
        movz x4, #-16
        asri x5, x4, #2
        andi x6, x1, #0x30
        orri x7, x1, #0x0f
        eori x8, x1, #0xff
        halt
    )");
    auto e = makeEmu(p);
    e.run();
    EXPECT_EQ(e.intReg(2), 0xf00u);
    EXPECT_EQ(e.intReg(3), 0xfu);
    EXPECT_EQ(static_cast<std::int64_t>(e.intReg(5)), -4);
    EXPECT_EQ(e.intReg(6), 0x30u);
    EXPECT_EQ(e.intReg(7), 0xffu);
    EXPECT_EQ(e.intReg(8), 0x0fu);
}

TEST(EmulatorTest, LoadsAndStores)
{
    Program p = assemble(R"(
        .data
    buf:
        .word 0
        .text
        movz x1, =buf
        movz x2, #0x1234
        str x2, [x1]
        ldr x3, [x1]
        strb x2, [x1, #8]
        ldrb x4, [x1, #8]
        strw x2, [x1, #16]
        ldrw x5, [x1, #16]
        halt
    )");
    auto e = makeEmu(p);
    e.run();
    EXPECT_EQ(e.intReg(3), 0x1234u);
    EXPECT_EQ(e.intReg(4), 0x34u);
    EXPECT_EQ(e.intReg(5), 0x1234u);
}

TEST(EmulatorTest, DataSegmentLoaded)
{
    Program p = assemble(R"(
        .data
    arr:
        .word 42, 43
        .text
        movz x1, =arr
        ldr x2, [x1]
        ldr x3, [x1, #8]
        halt
    )");
    auto e = makeEmu(p);
    e.run();
    EXPECT_EQ(e.intReg(2), 42u);
    EXPECT_EQ(e.intReg(3), 43u);
}

TEST(EmulatorTest, FloatingPoint)
{
    Program p = assemble(R"(
        fmovi f1, #1.5
        fmovi f2, #2.0
        fadd f3, f1, f2
        fmul f4, f1, f2
        fmadd f5, f1, f2, f3
        movz x1, #9
        fcvt f6, x1
        fsqrt f7, f6
        fcvti x2, f7
        flt x3, f1, f2
        halt
    )");
    auto e = makeEmu(p);
    e.run();
    EXPECT_DOUBLE_EQ(e.fpReg(3), 3.5);
    EXPECT_DOUBLE_EQ(e.fpReg(4), 3.0);
    EXPECT_DOUBLE_EQ(e.fpReg(5), 6.5);
    EXPECT_DOUBLE_EQ(e.fpReg(7), 3.0);
    EXPECT_EQ(e.intReg(2), 3u);
    EXPECT_EQ(e.intReg(3), 1u);
}

TEST(EmulatorTest, LoopExecutesCorrectCount)
{
    // Sum 1..10.
    Program p = assemble(R"(
        movz x1, #10
        movz x2, #0
    loop:
        add x2, x2, x1
        subi x1, x1, #1
        bne x1, xzr, loop
        halt
    )");
    auto e = makeEmu(p);
    e.run();
    EXPECT_EQ(e.intReg(2), 55u);
}

TEST(EmulatorTest, CallAndReturn)
{
    Program p = assemble(R"(
        movz x1, #5
        bl double_it
        mov x3, x2
        halt
    double_it:
        add x2, x1, x1
        ret
    )");
    auto e = makeEmu(p);
    e.run();
    EXPECT_EQ(e.intReg(3), 10u);
}

TEST(EmulatorTest, IndirectJump)
{
    Program p = assemble(R"(
        movz x1, =dest
        br x1
        movz x2, #1
        halt
    dest:
        movz x2, #2
        halt
    )");
    auto e = makeEmu(p);
    e.run();
    EXPECT_EQ(e.intReg(2), 2u);
}

TEST(EmulatorTest, TraceRecordsBranchOutcomes)
{
    Program p = assemble(R"(
        movz x1, #2
    loop:
        subi x1, x1, #1
        bne x1, xzr, loop
        halt
    )");
    auto e = makeEmu(p);
    trace::DynInst di;
    std::vector<trace::DynInst> tr;
    while (e.step(di))
        tr.push_back(di);
    // movz, subi, bne(taken), subi, bne(not taken), halt
    ASSERT_EQ(tr.size(), 6u);
    EXPECT_TRUE(tr[2].taken);
    EXPECT_EQ(tr[2].nextPc, p.symbols.at("loop"));
    EXPECT_FALSE(tr[4].taken);
    EXPECT_EQ(tr[5].si.op, Opcode::Halt);
    // Sequence numbers are dense.
    for (std::size_t i = 0; i < tr.size(); ++i)
        EXPECT_EQ(tr[i].seq, i);
}

TEST(EmulatorTest, TraceRecordsEffectiveAddresses)
{
    Program p = assemble(R"(
        movz x1, =buf
        str x1, [x1, #8]
        ldr x2, [x1, #8]
        halt
        .data
    buf:
        .space 64
    )");
    auto e = makeEmu(p);
    trace::DynInst di;
    std::vector<trace::DynInst> tr;
    while (e.step(di))
        tr.push_back(di);
    Addr buf = p.symbols.at("buf");
    EXPECT_EQ(tr[1].effAddr, buf + 8);
    EXPECT_EQ(tr[2].effAddr, buf + 8);
}

TEST(EmulatorTest, InstructionCapEndsStream)
{
    Program p = assemble(R"(
    loop:
        b loop
    )");
    auto e = makeEmu(p, 100);
    EXPECT_EQ(e.run(), 100u);
    EXPECT_TRUE(e.halted());
}

TEST(EmulatorTest, ResetReplaysIdenticalStream)
{
    Program p = assemble(R"(
        movz x1, #3
    loop:
        muli x2, x1, #7
        subi x1, x1, #1
        bne x1, xzr, loop
        halt
    )");
    auto e = makeEmu(p);
    std::vector<Addr> first;
    while (auto di = e.next())
        first.push_back(di->pc);
    e.reset();
    std::vector<Addr> second;
    while (auto di = e.next())
        second.push_back(di->pc);
    EXPECT_EQ(first, second);
    EXPECT_FALSE(first.empty());
}

TEST(EmulatorTest, StackPointerInitialised)
{
    Program p = assemble(R"(
        addi sp, sp, #-16
        str sp, [sp]
        halt
    )");
    auto e = makeEmu(p);
    e.run();
    EXPECT_EQ(e.intReg(28), stackBase - 16);
}

} // namespace
