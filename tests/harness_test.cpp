// Tests for the experiment harness: config construction, equal-area
// mapping, outcome extraction, and suite aggregation.

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace {

using namespace rrs;
using namespace rrs::harness;

TEST(Harness, TableIIIPresetsMatchPaper)
{
    const auto &rows = tableIIIPresets();
    ASSERT_EQ(rows.size(), 7u);
    EXPECT_EQ(rows[0].baselineRegs, 48u);
    EXPECT_EQ(rows[0].banks, (rename::BankConfig{28, 4, 4, 4}));
    EXPECT_EQ(rows[6].baselineRegs, 112u);
    EXPECT_EQ(rows[6].banks, (rename::BankConfig{75, 8, 8, 8}));
}

TEST(Harness, TunedRowsFitEqualArea)
{
    area::AreaModel model;
    for (const auto &row : tunedEqualAreaRows()) {
        double budget = model.regFileArea(row.baselineRegs, 64);
        double used = model.bankedRegFileArea(row.banks, 64);
        EXPECT_LE(used, budget * 1.001)
            << "row " << row.baselineRegs << " exceeds its area budget";
        // And it is not wastefully small either: adding two more
        // registers would overflow the budget.
        auto bigger = row.banks;
        bigger[0] += 2;
        EXPECT_GT(model.bankedRegFileArea(bigger, 64), budget);
    }
}

TEST(Harness, EqualAreaLookupExactAndNearest)
{
    EXPECT_EQ(equalAreaBanks(48, true), (rename::BankConfig{28, 4, 4, 4}));
    EXPECT_EQ(equalAreaBanks(48, false),
              tunedEqualAreaRows()[0].banks);
    // Nearest row for a non-preset size.
    EXPECT_EQ(equalAreaBanks(50, true), (rename::BankConfig{28, 4, 4, 4}));
}

TEST(Harness, SolveEqualAreaTracksPreset)
{
    area::AreaModel model;
    rename::BankConfig solved =
        solveEqualAreaBanks(model, 64, 64, false);
    // Shadow banks follow the preset shape; bank0 is solver-derived
    // and must be close to the stored row.
    rename::BankConfig stored = equalAreaBanks(64, false);
    EXPECT_EQ(solved[1], stored[1]);
    EXPECT_NEAR(static_cast<double>(solved[0]),
                static_cast<double>(stored[0]), 2.0);
}

TEST(Harness, RunOnProducesConsistentOutcome)
{
    auto cfg = baselineConfig(96);
    cfg.maxInsts = 30'000;
    auto out = runOn(workloads::workload("int_crc"), cfg);
    EXPECT_EQ(out.sim.committedInsts, 30'000u);
    EXPECT_GT(out.sim.ipc(), 0.1);
    EXPECT_GT(out.allocations, 0);
    EXPECT_EQ(out.reuses, 0);   // baseline never reuses
}

TEST(Harness, ReuseConfigActuallyReuses)
{
    auto cfg = reuseConfig(64);
    cfg.maxInsts = 30'000;
    auto out = runOn(workloads::workload("fp_horner"), cfg);
    EXPECT_EQ(out.sim.committedInsts, 30'000u);
    EXPECT_GT(out.reuses, 1000);
    EXPECT_GT(out.fig12.total(), 0);
}

TEST(Harness, SharingSamplerCollectsSeries)
{
    auto cfg = reuseConfig(64);
    cfg.maxInsts = 30'000;
    auto out = runOn(workloads::workload("fp_horner"), cfg, true);
    EXPECT_FALSE(out.sharedAtLeast1.empty());
    // sharedAtLeast is monotone in depth at every sample.
    for (std::size_t i = 0; i < out.sharedAtLeast1.size(); ++i) {
        EXPECT_GE(out.sharedAtLeast1[i], out.sharedAtLeast2[i]);
        EXPECT_GE(out.sharedAtLeast2[i], out.sharedAtLeast3[i]);
    }
}

TEST(Harness, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Harness, RunsAreDeterministic)
{
    auto cfg = reuseConfig(56);
    cfg.maxInsts = 20'000;
    auto a = runOn(workloads::workload("int_graph"), cfg);
    auto b = runOn(workloads::workload("int_graph"), cfg);
    EXPECT_EQ(a.sim.cycles, b.sim.cycles);
    EXPECT_EQ(a.reuses, b.reuses);
}

} // namespace
